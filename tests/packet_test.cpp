// Packet substrate: kinds, wire sizes, combinations.
#include "packet/combination.h"
#include "packet/packet.h"

#include <gtest/gtest.h>

namespace thinair::packet {
namespace {

TEST(Packet, WireSizeAddsHeader) {
  Packet p{.kind = Kind::kData,
           .source = NodeId{1},
           .round = RoundId{0},
           .seq = PacketSeq{0},
           .payload = Payload(100, 0)};
  EXPECT_EQ(p.wire_size(), 100 + Packet::header_size());
}

TEST(Packet, KindNames) {
  EXPECT_EQ(to_string(Kind::kData), "data");
  EXPECT_EQ(to_string(Kind::kCoded), "coded");
  EXPECT_EQ(to_string(Kind::kReport), "report");
  EXPECT_EQ(to_string(Kind::kAnnouncement), "announcement");
  EXPECT_EQ(to_string(Kind::kAck), "ack");
  EXPECT_EQ(to_string(Kind::kCipher), "cipher");
}

TEST(Packet, NodeIdOrdering) {
  EXPECT_LT(NodeId{1}, NodeId{2});
  EXPECT_EQ(NodeId{3}, NodeId{3});
}

TEST(Combination, AddSkipsZeroCoefficients) {
  Combination c;
  c.add(0, gf::kZero);
  EXPECT_TRUE(c.empty());
  c.add(1, gf::kOne);
  EXPECT_EQ(c.terms().size(), 1u);
}

TEST(Combination, ApplyXorsPayloads) {
  const std::vector<Payload> inputs{{1, 2}, {3, 4}, {5, 6}};
  Combination c;
  c.add(0, gf::kOne);
  c.add(2, gf::kOne);
  const Payload out = c.apply(inputs, 2);
  EXPECT_EQ(out, (Payload{1 ^ 5, 2 ^ 6}));
}

TEST(Combination, ApplyUsesCoefficients) {
  const std::vector<Payload> inputs{{2}, {3}};
  Combination c;
  c.add(0, gf::GF256(3));
  c.add(1, gf::GF256(2));
  const Payload out = c.apply(inputs, 1);
  const gf::GF256 want = gf::GF256(3) * gf::GF256(2) + gf::GF256(2) * gf::GF256(3);
  EXPECT_EQ(out[0], want.value());
}

TEST(Combination, ApplyValidatesInputs) {
  const std::vector<Payload> inputs{{1, 2}};
  Combination c;
  c.add(3, gf::kOne);
  EXPECT_THROW((void)c.apply(inputs, 2), std::out_of_range);

  Combination c2;
  c2.add(0, gf::kOne);
  EXPECT_THROW((void)c2.apply(inputs, 3), std::invalid_argument);
}

TEST(Combination, DenseRowPlacesCoefficients) {
  Combination c;
  c.add(1, gf::GF256(7));
  c.add(4, gf::GF256(9));
  const auto row = c.dense_row(6);
  EXPECT_EQ(row, (std::vector<std::uint8_t>{0, 7, 0, 0, 9, 0}));
  EXPECT_THROW((void)c.dense_row(3), std::out_of_range);
}

TEST(Combination, SerializedSizeFormula) {
  Combination c;
  c.add(0, gf::kOne);
  c.add(1, gf::kOne);
  EXPECT_EQ(c.serialized_size(), 2u + 2u * 5u);
}

}  // namespace
}  // namespace thinair::packet
