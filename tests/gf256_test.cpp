// GF(2^8) field axioms and table consistency.
#include "gf/gf256.h"

#include <gtest/gtest.h>

namespace thinair::gf {
namespace {

TEST(GF256, AdditionIsXor) {
  EXPECT_EQ(GF256(0x57) + GF256(0x83), GF256(0x57 ^ 0x83));
  EXPECT_EQ(GF256(0xFF) + GF256(0xFF), kZero);
}

TEST(GF256, AdditiveIdentityAndSelfInverse) {
  for (unsigned v = 0; v < 256; ++v) {
    const GF256 a(static_cast<std::uint8_t>(v));
    EXPECT_EQ(a + kZero, a);
    EXPECT_EQ(a + a, kZero);
    EXPECT_EQ(a - a, kZero);
  }
}

TEST(GF256, MultiplicativeIdentity) {
  for (unsigned v = 0; v < 256; ++v) {
    const GF256 a(static_cast<std::uint8_t>(v));
    EXPECT_EQ(a * kOne, a);
    EXPECT_EQ(kOne * a, a);
  }
}

TEST(GF256, MultiplicationByZero) {
  for (unsigned v = 0; v < 256; ++v) {
    const GF256 a(static_cast<std::uint8_t>(v));
    EXPECT_EQ(a * kZero, kZero);
    EXPECT_EQ(kZero * a, kZero);
  }
}

TEST(GF256, KnownProducts) {
  // Reference values for the 0x11D polynomial.
  EXPECT_EQ(GF256(0x02) * GF256(0x02), GF256(0x04));
  EXPECT_EQ(GF256(0x80) * GF256(0x02), GF256(0x1D));  // wraps the modulus
  EXPECT_EQ(GF256(0x02).pow(8), GF256(0x1D));
}

TEST(GF256, MultiplicationCommutes) {
  for (unsigned a = 0; a < 256; a += 7)
    for (unsigned b = 0; b < 256; b += 5)
      EXPECT_EQ(GF256(static_cast<std::uint8_t>(a)) *
                    GF256(static_cast<std::uint8_t>(b)),
                GF256(static_cast<std::uint8_t>(b)) *
                    GF256(static_cast<std::uint8_t>(a)));
}

TEST(GF256, MultiplicationAssociates) {
  const GF256 a(0x13), b(0x9E), c(0x47);
  EXPECT_EQ((a * b) * c, a * (b * c));
}

TEST(GF256, DistributesOverAddition) {
  for (unsigned a = 1; a < 256; a += 11)
    for (unsigned b = 0; b < 256; b += 13) {
      const GF256 fa(static_cast<std::uint8_t>(a));
      const GF256 fb(static_cast<std::uint8_t>(b));
      const GF256 fc(0xA5);
      EXPECT_EQ(fa * (fb + fc), fa * fb + fa * fc);
    }
}

TEST(GF256, EveryNonzeroElementHasInverse) {
  for (unsigned v = 1; v < 256; ++v) {
    const GF256 a(static_cast<std::uint8_t>(v));
    EXPECT_EQ(a * a.inv(), kOne) << "v=" << v;
    EXPECT_EQ(a / a, kOne);
  }
}

TEST(GF256, AlphaIsPrimitive) {
  // alpha = 0x02 must generate all 255 nonzero elements.
  std::array<bool, 256> seen{};
  GF256 p = kOne;
  for (unsigned i = 0; i < 255; ++i) {
    EXPECT_FALSE(seen[p.value()]) << "cycle shorter than 255 at " << i;
    seen[p.value()] = true;
    p = p * GF256(0x02);
  }
  EXPECT_EQ(p, kOne);  // full cycle
}

TEST(GF256, PowMatchesRepeatedMultiplication) {
  const GF256 a(0x35);
  GF256 acc = kOne;
  for (unsigned e = 0; e < 300; ++e) {
    EXPECT_EQ(a.pow(e), acc) << "e=" << e;
    acc = acc * a;
  }
}

TEST(GF256, PowOfZero) {
  EXPECT_EQ(kZero.pow(0), kOne);  // 0^0 == 1 by convention
  EXPECT_EQ(kZero.pow(5), kZero);
}

TEST(GF256, AlphaPowWrapsAt255) {
  EXPECT_EQ(GF256::alpha_pow(0), kOne);
  EXPECT_EQ(GF256::alpha_pow(255), kOne);
  EXPECT_EQ(GF256::alpha_pow(256), GF256(0x02));
}

TEST(GF256, AxpyAccumulates) {
  std::vector<std::uint8_t> x{1, 2, 3, 4};
  std::vector<std::uint8_t> y{10, 20, 30, 40};
  const std::vector<std::uint8_t> y0 = y;
  axpy(GF256(0x03), x.data(), y.data(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_EQ(GF256(y[i]), GF256(y0[i]) + GF256(0x03) * GF256(x[i]));
}

TEST(GF256, AxpyWithZeroCoefficientIsNoop) {
  std::vector<std::uint8_t> x{9, 9, 9};
  std::vector<std::uint8_t> y{1, 2, 3};
  axpy(kZero, x.data(), y.data(), x.size());
  EXPECT_EQ(y, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(GF256, AxpyWithOneIsXor) {
  std::vector<std::uint8_t> x{0xF0, 0x0F};
  std::vector<std::uint8_t> y{0xFF, 0xFF};
  axpy(kOne, x.data(), y.data(), x.size());
  EXPECT_EQ(y, (std::vector<std::uint8_t>{0x0F, 0xF0}));
}

TEST(GF256, ScaleMatchesElementwiseMul) {
  std::vector<std::uint8_t> y{1, 2, 3, 0, 255};
  const std::vector<std::uint8_t> y0 = y;
  scale(GF256(0x1D), y.data(), y.size());
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_EQ(GF256(y[i]), GF256(0x1D) * GF256(y0[i]));
}

TEST(GF256, ScaleByZeroClears) {
  std::vector<std::uint8_t> y{1, 2, 3};
  scale(kZero, y.data(), y.size());
  EXPECT_EQ(y, (std::vector<std::uint8_t>{0, 0, 0}));
}

// Property sweep: division inverts multiplication for all pairs.
class GF256DivisionSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(GF256DivisionSweep, DivisionInvertsMultiplication) {
  const GF256 b(static_cast<std::uint8_t>(GetParam()));
  for (unsigned a = 0; a < 256; ++a) {
    const GF256 fa(static_cast<std::uint8_t>(a));
    EXPECT_EQ((fa * b) / b, fa);
  }
}

INSTANTIATE_TEST_SUITE_P(AllNonzeroDivisors, GF256DivisionSweep,
                         ::testing::Values(1u, 2u, 3u, 29u, 53u, 128u, 200u,
                                           254u, 255u));

}  // namespace
}  // namespace thinair::gf
