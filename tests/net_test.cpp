// Broadcast medium, ledger accounting, reception trace and reliable
// broadcast/unicast.
#include <gtest/gtest.h>

#include "channel/erasure.h"
#include "net/medium.h"
#include "net/reliable.h"

namespace thinair::net {
namespace {

packet::Packet data_packet(std::uint16_t src, std::size_t bytes) {
  return packet::Packet{.kind = packet::Kind::kData,
                        .source = packet::NodeId{src},
                        .round = packet::RoundId{0},
                        .seq = packet::PacketSeq{0},
                        .payload = packet::Payload(bytes, 0xAB)};
}

TEST(NodeSet, InsertContainsSize) {
  NodeSet s;
  EXPECT_TRUE(s.empty());
  s.insert(packet::NodeId{3});
  s.insert(packet::NodeId{3});
  s.insert(packet::NodeId{10});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(packet::NodeId{3}));
  EXPECT_FALSE(s.contains(packet::NodeId{4}));
  EXPECT_THROW(s.insert(packet::NodeId{64}), std::out_of_range);
}

TEST(Ledger, AccumulatesByClass) {
  Ledger l;
  l.add(TrafficClass::kData, 100, 0.001);
  l.add(TrafficClass::kData, 50, 0.0005);
  l.add(TrafficClass::kAck, 10, 0.0001);
  EXPECT_EQ(l.bytes(TrafficClass::kData), 150u);
  EXPECT_EQ(l.frames(TrafficClass::kData), 2u);
  EXPECT_EQ(l.total_bytes(), 160u);
  EXPECT_EQ(l.total_bits(), 1280u);
  EXPECT_NEAR(l.total_airtime_s(), 0.0016, 1e-12);
  EXPECT_EQ(l.data_plane_bytes(), 150u);
}

TEST(Ledger, SinceComputesDelta) {
  Ledger l;
  l.add(TrafficClass::kData, 100, 0.1);
  const Ledger snap = l;
  l.add(TrafficClass::kCoded, 30, 0.05);
  const Ledger delta = l.since(snap);
  EXPECT_EQ(delta.bytes(TrafficClass::kData), 0u);
  EXPECT_EQ(delta.bytes(TrafficClass::kCoded), 30u);

  Ledger unrelated;
  unrelated.add(TrafficClass::kData, 500, 1.0);
  EXPECT_THROW((void)l.since(unrelated), std::invalid_argument);
}

TEST(Medium, PerfectChannelDeliversToAll) {
  channel::IidErasure ch(0.0);
  SimMedium medium(ch, channel::Rng(1));
  for (std::uint16_t i = 0; i < 4; ++i)
    medium.attach(packet::NodeId{i}, Role::kTerminal);
  const auto tx = medium.transmit(packet::NodeId{0}, data_packet(0, 100),
                                  TrafficClass::kData);
  EXPECT_EQ(tx.delivered.size(), 3u);  // everyone except the sender
  EXPECT_FALSE(tx.delivered.contains(packet::NodeId{0}));
}

TEST(Medium, DeadChannelDeliversToNone) {
  channel::IidErasure ch(1.0);
  SimMedium medium(ch, channel::Rng(2));
  medium.attach(packet::NodeId{0}, Role::kTerminal);
  medium.attach(packet::NodeId{1}, Role::kTerminal);
  const auto tx = medium.transmit(packet::NodeId{0}, data_packet(0, 10),
                                  TrafficClass::kData);
  EXPECT_TRUE(tx.delivered.empty());
}

TEST(Medium, ClockAdvancesByAirtime) {
  channel::IidErasure ch(0.0);
  MacParams mac;
  SimMedium medium(ch, channel::Rng(3), mac);
  medium.attach(packet::NodeId{0}, Role::kTerminal);
  medium.attach(packet::NodeId{1}, Role::kTerminal);
  const double before = medium.now();
  const auto tx = medium.transmit(packet::NodeId{0}, data_packet(0, 100),
                                  TrafficClass::kData);
  const double want_airtime =
      mac.per_frame_overhead_s + (100.0 + 16.0) * 8.0 / mac.data_rate_bps;
  EXPECT_NEAR(tx.airtime_s, want_airtime, 1e-12);
  EXPECT_NEAR(medium.now() - before, want_airtime + mac.inter_frame_gap_s,
              1e-12);
}

TEST(Medium, SlotDerivedFromClock) {
  channel::IidErasure ch(0.0);
  MacParams mac;
  mac.slot_duration_s = 0.010;
  SimMedium medium(ch, channel::Rng(4), mac);
  medium.attach(packet::NodeId{0}, Role::kTerminal);
  EXPECT_EQ(medium.slot(), 0u);
  medium.wait(0.025);
  EXPECT_EQ(medium.slot(), 2u);
  medium.wait_for_next_slot();
  EXPECT_EQ(medium.slot(), 3u);
}

TEST(Medium, LedgerChargesWireBytes) {
  channel::IidErasure ch(0.0);
  SimMedium medium(ch, channel::Rng(5));
  medium.attach(packet::NodeId{0}, Role::kTerminal);
  medium.attach(packet::NodeId{1}, Role::kTerminal);
  medium.transmit(packet::NodeId{0}, data_packet(0, 100), TrafficClass::kData);
  EXPECT_EQ(medium.ledger().bytes(TrafficClass::kData),
            100u + packet::Packet::header_size());
}

TEST(Medium, TraceRecordsDeliveryAndSlot) {
  channel::IidErasure ch(0.0);
  SimMedium medium(ch, channel::Rng(6));
  medium.attach(packet::NodeId{0}, Role::kTerminal);
  medium.attach(packet::NodeId{1}, Role::kTerminal);
  medium.transmit(packet::NodeId{0}, data_packet(0, 42), TrafficClass::kData);
  ASSERT_EQ(medium.trace().entries().size(), 1u);
  const TraceEntry& e = medium.trace().entries()[0];
  EXPECT_EQ(e.payload_bytes, 42u);
  EXPECT_TRUE(e.delivered.contains(packet::NodeId{1}));
  EXPECT_FALSE(e.reliable);
}

TEST(Medium, RejectsUnknownSourceAndReattach) {
  channel::IidErasure ch(0.0);
  SimMedium medium(ch, channel::Rng(7));
  medium.attach(packet::NodeId{0}, Role::kTerminal);
  EXPECT_THROW(medium.attach(packet::NodeId{0}, Role::kTerminal),
               std::invalid_argument);
  EXPECT_THROW(medium.transmit(packet::NodeId{9}, data_packet(9, 1),
                               TrafficClass::kData),
               std::invalid_argument);
}

TEST(Medium, RolesSeparateTerminalsFromEavesdroppers) {
  channel::IidErasure ch(0.0);
  SimMedium medium(ch, channel::Rng(8));
  medium.attach(packet::NodeId{0}, Role::kTerminal);
  medium.attach(packet::NodeId{1}, Role::kEavesdropper);
  medium.attach(packet::NodeId{2}, Role::kTerminal);
  EXPECT_EQ(medium.terminals().size(), 2u);
  EXPECT_EQ(medium.eavesdroppers().size(), 1u);
  EXPECT_EQ(medium.eavesdroppers()[0], packet::NodeId{1});
}

TEST(Reliable, BroadcastReachesAllTerminals) {
  channel::IidErasure ch(0.5);
  SimMedium medium(ch, channel::Rng(9));
  for (std::uint16_t i = 0; i < 5; ++i)
    medium.attach(packet::NodeId{i}, Role::kTerminal);
  const auto result = reliable_broadcast(medium, packet::NodeId{0},
                                         data_packet(0, 100),
                                         TrafficClass::kCoded);
  for (std::uint16_t i = 1; i < 5; ++i)
    EXPECT_TRUE(result.delivered.contains(packet::NodeId{i}));
  EXPECT_GE(result.attempts, 1u);
}

TEST(Reliable, TraceMarksAllAttemptsReliable) {
  channel::IidErasure ch(0.6);
  SimMedium medium(ch, channel::Rng(10));
  medium.attach(packet::NodeId{0}, Role::kTerminal);
  medium.attach(packet::NodeId{1}, Role::kTerminal);
  reliable_broadcast(medium, packet::NodeId{0}, data_packet(0, 20),
                     TrafficClass::kControl);
  for (const TraceEntry& e : medium.trace().entries())
    EXPECT_TRUE(e.reliable);
}

TEST(Reliable, AcksAreCharged) {
  channel::IidErasure ch(0.0);
  SimMedium medium(ch, channel::Rng(11));
  medium.attach(packet::NodeId{0}, Role::kTerminal);
  medium.attach(packet::NodeId{1}, Role::kTerminal);
  medium.attach(packet::NodeId{2}, Role::kTerminal);
  reliable_broadcast(medium, packet::NodeId{0}, data_packet(0, 10),
                     TrafficClass::kControl);
  EXPECT_EQ(medium.ledger().frames(TrafficClass::kAck), 2u);
}

TEST(Reliable, ExhaustionThrows) {
  channel::IidErasure ch(1.0);
  SimMedium medium(ch, channel::Rng(12));
  medium.attach(packet::NodeId{0}, Role::kTerminal);
  medium.attach(packet::NodeId{1}, Role::kTerminal);
  ReliableParams params;
  params.max_attempts = 5;
  EXPECT_THROW(reliable_broadcast(medium, packet::NodeId{0},
                                  data_packet(0, 10), TrafficClass::kControl,
                                  params),
               std::runtime_error);
}

TEST(Reliable, UnicastStopsAtDestination) {
  channel::IidErasure ch(0.3);
  SimMedium medium(ch, channel::Rng(13));
  for (std::uint16_t i = 0; i < 4; ++i)
    medium.attach(packet::NodeId{i}, Role::kTerminal);
  const auto result =
      reliable_unicast(medium, packet::NodeId{0}, packet::NodeId{2},
                       data_packet(0, 10), TrafficClass::kCipher);
  EXPECT_TRUE(result.delivered.contains(packet::NodeId{2}));
  EXPECT_THROW(reliable_unicast(medium, packet::NodeId{0}, packet::NodeId{9},
                                data_packet(0, 10), TrafficClass::kCipher),
               std::invalid_argument);
}

TEST(Reliable, NoReceiversTerminatesImmediately) {
  channel::IidErasure ch(1.0);
  SimMedium medium(ch, channel::Rng(14));
  medium.attach(packet::NodeId{0}, Role::kTerminal);
  const auto result = reliable_broadcast(medium, packet::NodeId{0},
                                         data_packet(0, 10),
                                         TrafficClass::kControl);
  EXPECT_EQ(result.attempts, 0u);
}

}  // namespace
}  // namespace thinair::net
