// The round opener (phase 1 steps 1-2 over the medium): reception
// bookkeeping, reports on the air, slot recording.
#include "core/round.h"

#include <gtest/gtest.h>

#include "channel/erasure.h"
#include "packet/arena.h"
#include "packet/serialize.h"

namespace thinair::core {
namespace {

packet::NodeId T(std::uint16_t v) { return packet::NodeId{v}; }

std::vector<std::uint8_t> bytes_of(packet::ConstByteSpan s) {
  return {s.begin(), s.end()};
}

TEST(OpenRound, PerfectChannelEveryoneGetsEverything) {
  channel::IidErasure ch(0.0);
  net::SimMedium medium(ch, channel::Rng(1));
  for (std::uint16_t i = 0; i < 3; ++i)
    medium.attach(T(i), net::Role::kTerminal);
  medium.attach(T(3), net::Role::kEavesdropper);

  packet::PayloadArena arena;
  const RoundContext ctx = open_round(medium, T(0), packet::RoundId{0}, 20, 8, arena);
  EXPECT_EQ(ctx.receivers.size(), 2u);
  for (std::size_t ri = 0; ri < 2; ++ri) {
    EXPECT_EQ(ctx.rx_indices[ri].size(), 20u);
    for (const auto& p : ctx.rx_payloads[ri]) EXPECT_FALSE(p.empty());
  }
  EXPECT_EQ(ctx.eve_indices.size(), 20u);
  EXPECT_EQ(ctx.table.received_count(T(1)), 20u);
}

TEST(OpenRound, DeadChannelNothingReceivedReportsStillFlow) {
  channel::IidErasure ch(1.0);
  net::SimMedium medium(ch, channel::Rng(2));
  medium.attach(T(0), net::Role::kTerminal);
  medium.attach(T(1), net::Role::kTerminal);
  // A fully dead channel would stall the *reliable* report broadcast, so
  // use a per-link model: data from Alice dies, everything else flows.
  channel::PerLinkErasure per(0.0);
  per.set(T(0), T(1), 1.0);
  net::SimMedium medium2(per, channel::Rng(3));
  medium2.attach(T(0), net::Role::kTerminal);
  medium2.attach(T(1), net::Role::kTerminal);

  packet::PayloadArena arena;
  const RoundContext ctx =
      open_round(medium2, T(0), packet::RoundId{0}, 10, 8, arena);
  EXPECT_TRUE(ctx.rx_indices[0].empty());
  EXPECT_TRUE(ctx.table.classes().empty());
}

TEST(OpenRound, PayloadsMatchWhatWasSent) {
  channel::IidErasure ch(0.3);
  net::SimMedium medium(ch, channel::Rng(4));
  medium.attach(T(0), net::Role::kTerminal);
  medium.attach(T(1), net::Role::kTerminal);

  packet::PayloadArena arena;
  const RoundContext ctx = open_round(medium, T(0), packet::RoundId{0}, 30, 16, arena);
  for (std::uint32_t i : ctx.rx_indices[0]) {
    ASSERT_FALSE(ctx.rx_payloads[0][i].empty());
    EXPECT_EQ(bytes_of(ctx.rx_payloads[0][i]), bytes_of(ctx.x_payloads[i]));
    // Receiver views alias Alice's storage — no per-receiver copies.
    EXPECT_EQ(ctx.rx_payloads[0][i].data(), ctx.x_payloads[i].data());
  }
  // Missed packets have no payload.
  for (std::uint32_t i = 0; i < 30; ++i) {
    const bool got = std::find(ctx.rx_indices[0].begin(),
                               ctx.rx_indices[0].end(),
                               i) != ctx.rx_indices[0].end();
    EXPECT_EQ(!ctx.rx_payloads[0][i].empty(), got);
  }
}

TEST(OpenRound, SlotsRecordedModuloPatternCount) {
  channel::IidErasure ch(0.2);
  net::MacParams mac;
  mac.slot_duration_s = 0.004;  // a few packets per slot
  net::SimMedium medium(ch, channel::Rng(5), mac);
  medium.attach(T(0), net::Role::kTerminal);
  medium.attach(T(1), net::Role::kTerminal);

  packet::PayloadArena arena;
  const RoundContext ctx = open_round(medium, T(0), packet::RoundId{0}, 60, 100, arena);
  ASSERT_EQ(ctx.slot_of.size(), 60u);
  for (std::size_t s : ctx.slot_of) EXPECT_LT(s, 9u);
  // The x-burst spans multiple slots, so several patterns appear.
  std::set<std::size_t> distinct(ctx.slot_of.begin(), ctx.slot_of.end());
  EXPECT_GE(distinct.size(), 3u);
  // Slots are non-decreasing modulo wrap (time moves forward).
  EXPECT_EQ(ctx.slot_of.front(), 0u);
}

TEST(OpenRound, ReportsAreOnTheAirAndParseable) {
  channel::IidErasure ch(0.4);
  net::SimMedium medium(ch, channel::Rng(6));
  for (std::uint16_t i = 0; i < 3; ++i)
    medium.attach(T(i), net::Role::kTerminal);

  packet::PayloadArena arena;
  const RoundContext ctx = open_round(medium, T(0), packet::RoundId{7}, 25, 8, arena);
  (void)ctx;
  std::size_t reports = 0;
  for (const net::TraceEntry& e : medium.trace().entries()) {
    if (e.kind != packet::Kind::kReport) continue;
    EXPECT_TRUE(e.reliable);
    ++reports;
  }
  EXPECT_GE(reports, 2u);  // two receivers, at least one frame each
  // Ledger shows control traffic for the reports.
  EXPECT_GT(medium.ledger().bytes(net::TrafficClass::kControl), 0u);
  EXPECT_EQ(medium.ledger().frames(net::TrafficClass::kData), 25u);
}

TEST(OpenRound, EveUnionAcrossAntennas) {
  channel::PerLinkErasure per(0.0);
  // Antenna 2 hears nothing, antenna 3 hears everything: union = all.
  per.set(T(0), T(2), 1.0);
  per.set(T(0), T(3), 0.0);
  net::SimMedium medium(per, channel::Rng(7));
  medium.attach(T(0), net::Role::kTerminal);
  medium.attach(T(1), net::Role::kTerminal);
  medium.attach(T(2), net::Role::kEavesdropper);
  medium.attach(T(3), net::Role::kEavesdropper);

  packet::PayloadArena arena;
  const RoundContext ctx = open_round(medium, T(0), packet::RoundId{0}, 12, 8, arena);
  EXPECT_EQ(ctx.eve_indices.size(), 12u);
}

}  // namespace
}  // namespace thinair::core
