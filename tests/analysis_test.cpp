// Eavesdropper view, leakage metric and the Figure-1 closed forms.
#include <gtest/gtest.h>

#include "analysis/efficiency.h"
#include "analysis/eve_view.h"
#include "analysis/leakage.h"

namespace thinair::analysis {
namespace {

TEST(EveView, StartsIgnorant) {
  const EveView eve(10);
  EXPECT_EQ(eve.knowledge_rank(), 0u);
  EXPECT_EQ(eve.universe(), 10u);
}

TEST(EveView, ObservationsAccumulate) {
  EveView eve(5);
  eve.observe_x(0);
  eve.observe_x({1, 1, 2});  // duplicates do not double-count
  EXPECT_EQ(eve.knowledge_rank(), 3u);
}

TEST(EveView, EquivocationCountsUnknownDimensions) {
  EveView eve(4);
  eve.observe_x(0);
  gf::Matrix secret(2, 4);
  secret.set(0, 0, gf::kOne);  // known
  secret.set(1, 2, gf::kOne);  // unknown
  EXPECT_EQ(eve.equivocation(secret), 1u);
}

TEST(EveView, CombinationObservationsLeakSpans) {
  EveView eve(3);
  gf::Matrix z(1, 3);
  z.set(0, 0, gf::kOne);
  z.set(0, 1, gf::kOne);
  eve.observe_combinations(z);
  // x0 + x1 is known; x0 alone is not.
  gf::Matrix s1(1, 3);
  s1.set(0, 0, gf::kOne);
  s1.set(0, 1, gf::kOne);
  EXPECT_EQ(eve.equivocation(s1), 0u);
  gf::Matrix s2(1, 3);
  s2.set(0, 0, gf::kOne);
  EXPECT_EQ(eve.equivocation(s2), 1u);
}

TEST(Leakage, ReportFields) {
  EveView eve(4);
  eve.observe_x(0);
  gf::Matrix secret(2, 4);
  secret.set(0, 0, gf::kOne);
  secret.set(1, 3, gf::kOne);
  const LeakageReport rep = compute_leakage(eve, secret);
  EXPECT_EQ(rep.secret_dims, 2u);
  EXPECT_EQ(rep.hidden_dims, 1u);
  EXPECT_EQ(rep.leaked_dims, 1u);
  EXPECT_DOUBLE_EQ(rep.reliability, 0.5);
}

TEST(Leakage, GuessProbabilities) {
  LeakageReport rep;
  rep.secret_dims = 2;
  rep.hidden_dims = 2;
  rep.reliability = 1.0;
  EXPECT_DOUBLE_EQ(rep.per_bit_guess_probability(), 0.5);
  // The paper's n=6 example: r = 0.2 -> per-bit 2^-0.2 ~ 0.87, and an
  // 800-bit packet is guessed with probability ~ 0.
  rep.reliability = 0.2;
  EXPECT_NEAR(rep.per_bit_guess_probability(), 0.87, 0.01);
  EXPECT_LT(rep.full_guess_probability(800), 1e-40);
}

TEST(Leakage, EmptySecretIsVacuouslyReliable) {
  const EveView eve(4);
  const LeakageReport rep = compute_leakage(eve, gf::Matrix(0, 4));
  EXPECT_DOUBLE_EQ(rep.reliability, 1.0);
  EXPECT_EQ(rep.secret_dims, 0u);
}

TEST(Efficiency, SecretAndPoolFractions) {
  EXPECT_DOUBLE_EQ(expected_secret_fraction(0.5), 0.25);
  EXPECT_DOUBLE_EQ(expected_pool_fraction(0.5, 2), 0.25);
  EXPECT_NEAR(expected_pool_fraction(0.5, 4), 0.5 * (1 - 0.125), 1e-12);
}

TEST(Efficiency, GroupClosedFormKnownValues) {
  // n = 2 reduces to p(1-p): maximum 0.25 at p = 0.5 (the top of the
  // paper's Figure 1 axis).
  EXPECT_DOUBLE_EQ(group_efficiency(0.5, 2), 0.25);
  // n -> infinity: p(1-p)/(1+p^2) = 0.2 at p = 0.5.
  EXPECT_DOUBLE_EQ(group_efficiency_inf(0.5), 0.2);
}

TEST(Efficiency, GroupDecreasesWithNButStaysPositive) {
  double prev = 1.0;
  for (std::size_t n : {2u, 3u, 6u, 10u, 50u}) {
    const double e = group_efficiency(0.5, n);
    EXPECT_LT(e, prev + 1e-12);
    EXPECT_GT(e, 0.19);
    prev = e;
  }
  EXPECT_NEAR(group_efficiency(0.5, 200), group_efficiency_inf(0.5), 1e-9);
}

TEST(Efficiency, UnicastCollapsesWithN) {
  EXPECT_DOUBLE_EQ(unicast_efficiency(0.5, 2), 0.25);
  EXPECT_NEAR(unicast_efficiency(0.5, 3), 0.2, 1e-12);
  EXPECT_NEAR(unicast_efficiency(0.5, 10), 0.25 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(unicast_efficiency_inf(0.5), 0.0);
  // Strictly decreasing in n.
  for (std::size_t n = 3; n < 12; ++n)
    EXPECT_LT(unicast_efficiency(0.5, n), unicast_efficiency(0.5, n - 1));
}

TEST(Efficiency, GroupBeatsUnicastForLargeGroups) {
  for (double p : {0.2, 0.5, 0.8})
    for (std::size_t n : {3u, 6u, 10u})
      EXPECT_GT(group_efficiency(p, n) + 1e-12, unicast_efficiency(p, n));
}

TEST(Efficiency, EdgesAreZero) {
  EXPECT_DOUBLE_EQ(group_efficiency(0.0, 5), 0.0);
  EXPECT_DOUBLE_EQ(group_efficiency(1.0, 5), 0.0);
  EXPECT_DOUBLE_EQ(unicast_efficiency(0.0, 5), 0.0);
}

TEST(Efficiency, InputValidation) {
  EXPECT_THROW((void)group_efficiency(-0.1, 3), std::invalid_argument);
  EXPECT_THROW((void)group_efficiency(0.5, 1), std::invalid_argument);
  EXPECT_THROW((void)unicast_efficiency(1.5, 3), std::invalid_argument);
}

// Property: the group curve is concave-ish with a single interior peak —
// verify it is unimodal on a grid for several n.
class UnimodalSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(UnimodalSweep, GroupEfficiencyUnimodalInP) {
  const std::size_t n = GetParam();
  int sign_changes = 0;
  double prev = group_efficiency(0.02, n);
  bool rising = true;
  for (double p = 0.04; p < 1.0; p += 0.02) {
    const double e = group_efficiency(p, n);
    const bool now_rising = e >= prev;
    if (rising && !now_rising) ++sign_changes;
    if (!rising && now_rising) sign_changes += 100;  // must never re-rise
    rising = now_rising;
    prev = e;
  }
  EXPECT_EQ(sign_changes, 1);
}

INSTANTIATE_TEST_SUITE_P(Ns, UnimodalSweep,
                         ::testing::Values(2u, 3u, 6u, 10u, 30u));

}  // namespace
}  // namespace thinair::analysis
