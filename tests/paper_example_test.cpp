// The worked examples from the paper, reproduced end to end.
//
// Sec. 3.1: Alice transmits 10 x-packets; Bob receives x1,x3,x5,x7,x9; Eve
// receives x1,x3,x5,x6,x8,x10. Alice and Bob can distil exactly 2 secret
// packets, and the "wrong" combinations the paper warns about leak half
// the secret.
//
// Sec. 3.2: Alice/Bob/Calvin share a 3-packet y-pool with M1 = M2 = 2;
// one broadcast z-packet redistributes it and 2 s-packets emerge that Eve
// knows nothing about.
#include <gtest/gtest.h>

#include "analysis/eve_view.h"
#include "analysis/leakage.h"
#include "channel/rng.h"
#include "core/phase1.h"
#include "core/phase2.h"

namespace thinair::core {
namespace {

packet::NodeId T(std::uint16_t v) { return packet::NodeId{v}; }

// Paper indices are 1-based (x1..x10); ours 0-based.
constexpr std::uint32_t X(std::uint32_t paper_index) {
  return paper_index - 1;
}

std::vector<packet::Payload> random_payloads(std::size_t n, std::size_t size,
                                             std::uint64_t seed) {
  channel::Rng rng(seed);
  std::vector<packet::Payload> out(n);
  for (auto& p : out) {
    p.resize(size);
    for (auto& b : p) b = rng.next_byte();
  }
  return out;
}

class Paper31Example : public ::testing::Test {
 protected:
  Paper31Example() : table_(T(0), {T(1)}, 10) {
    table_.set_received(T(1), bob_);
  }

  std::vector<std::uint32_t> bob_{X(1), X(3), X(5), X(7), X(9)};
  std::vector<std::uint32_t> eve_{X(1), X(3), X(5), X(6), X(8), X(10)};
  ReceptionTable table_;
};

TEST_F(Paper31Example, AliceAndBobShareFivePacketsEveMissesTwo) {
  const OracleEstimator est(eve_, 10);
  net::NodeSet exempt;
  exempt.insert(T(0));
  exempt.insert(T(1));
  // Of Bob's five packets Eve misses exactly x7 and x9.
  EXPECT_EQ(est.missed_within(bob_, exempt), 2u);
}

TEST_F(Paper31Example, ProtocolDistilsExactlyTwoSecretPackets) {
  const OracleEstimator est(eve_, 10);
  const Phase1Result p1 = run_phase1(table_, est, PoolStrategy::kClassShared);
  EXPECT_EQ(p1.build.pool.size(), 2u);        // M1 = 2
  EXPECT_EQ(p1.build.pool.count_for(T(1)), 2u);
  EXPECT_EQ(p1.build.pool.group_secret_size(), 2u);

  // Eve cannot reconstruct either y-packet: her view leaves both unknown.
  analysis::EveView eve(10);
  eve.observe_x(eve_);
  EXPECT_EQ(eve.equivocation(p1.build.pool.rows()), 2u);

  // And Bob really can: end-to-end payload check.
  const auto x = random_payloads(10, 100, 1);
  const auto y = all_y_contents(p1.build.pool, x, 100);
  std::vector<std::optional<packet::Payload>> bob_x(10);
  for (std::uint32_t i : bob_) bob_x[i] = x[i];
  const auto bob_y = reconstruct_y(p1.build.pool, T(1), bob_x, 100);
  for (std::size_t j = 0; j < y.size(); ++j) {
    ASSERT_TRUE(bob_y[j].has_value());
    EXPECT_EQ(*bob_y[j], y[j]);
  }
}

TEST_F(Paper31Example, PaperGoodCombinationsAreSecret) {
  // y1 = x1 + x5 + x9, y2 = x3 + x7 (the paper's working example).
  gf::Matrix good(2, 10);
  good.set(0, X(1), gf::kOne);
  good.set(0, X(5), gf::kOne);
  good.set(0, X(9), gf::kOne);
  good.set(1, X(3), gf::kOne);
  good.set(1, X(7), gf::kOne);

  analysis::EveView eve(10);
  eve.observe_x(eve_);
  const auto rep = analysis::compute_leakage(eve, good);
  EXPECT_EQ(rep.hidden_dims, 2u);
  EXPECT_DOUBLE_EQ(rep.reliability, 1.0);
}

TEST_F(Paper31Example, PaperBadCombinationsLeakHalfTheSecret) {
  // y'1 = x1 + x3 + x5 (Eve knows all three!), y'2 = x7 + x9.
  gf::Matrix bad(2, 10);
  bad.set(0, X(1), gf::kOne);
  bad.set(0, X(3), gf::kOne);
  bad.set(0, X(5), gf::kOne);
  bad.set(1, X(7), gf::kOne);
  bad.set(1, X(9), gf::kOne);

  analysis::EveView eve(10);
  eve.observe_x(eve_);
  const auto rep = analysis::compute_leakage(eve, bad);
  EXPECT_EQ(rep.leaked_dims, 1u);
  EXPECT_DOUBLE_EQ(rep.reliability, 0.5);  // "recover half of the secret"
}

// Sec. 3.2's three-terminal example, built exactly as printed: the pool is
// {y1 (Bob+Calvin), y2 (Bob), y3 (Calvin)} over an abstract y-space.
class Paper32Example : public ::testing::Test {
 protected:
  Paper32Example() : pool_(3, {T(1), T(2)}) {
    // Identify the y-universe with 3 abstract source packets so y_j = u_j.
    const auto unit = [](std::uint32_t i) {
      packet::Combination c;
      c.add(i, gf::kOne);
      return c;
    };
    net::NodeSet both, bob, calvin;
    both.insert(T(1));
    both.insert(T(2));
    bob.insert(T(1));
    calvin.insert(T(2));
    pool_.add({unit(0), both});    // y1
    pool_.add({unit(1), bob});     // y2
    pool_.add({unit(2), calvin});  // y3
  }

  YPool pool_;
};

TEST_F(Paper32Example, PoolShapeMatchesPaper) {
  EXPECT_EQ(pool_.size(), 3u);                 // M = 3
  EXPECT_EQ(pool_.count_for(T(1)), 2u);        // M1 = 2 (y1, y2)
  EXPECT_EQ(pool_.count_for(T(2)), 2u);        // M2 = 2 (y1, y3)
  EXPECT_EQ(pool_.group_secret_size(), 2u);    // L = min = 2
}

TEST_F(Paper32Example, OneZPacketRedistributesTwoSPacketsEmerge) {
  const Phase2Plan plan = plan_phase2(pool_);
  EXPECT_EQ(plan.h.rows(), 1u);  // M - L = 1 z-packet (paper: y2 + y3)
  EXPECT_EQ(plan.c.rows(), 2u);  // L = 2 s-packets

  const auto y = random_payloads(3, 100, 2);
  const auto z = make_z_payloads(plan, y, 100);
  const auto s = make_s_payloads(plan, y, 100);

  // Bob holds y1, y2; Calvin holds y1, y3; both repair and agree.
  for (auto [known_a, known_b] : {std::pair{0, 1}, std::pair{0, 2}}) {
    std::vector<std::optional<packet::Payload>> own(3);
    own[static_cast<std::size_t>(known_a)] = y[static_cast<std::size_t>(known_a)];
    own[static_cast<std::size_t>(known_b)] = y[static_cast<std::size_t>(known_b)];
    const auto full = recover_all_y(plan, own, z, 100);
    EXPECT_EQ(full, y);
    EXPECT_EQ(make_s_payloads(plan, full, 100), s);
  }

  // Eve: "knows nothing about any of the y-packets" but hears the z
  // broadcast; the s-packets must remain jointly uniform to her.
  gf::LinearSpace eve(3);
  eve.insert_rows(plan.h);
  EXPECT_EQ(eve.residual_rank(plan.c), 2u);

  // And phase 2 does not create secrecy out of nothing: Eve's knowledge
  // of y2 would surface in the metric.
  gf::LinearSpace eve2(3);
  eve2.insert_rows(plan.h);
  EXPECT_TRUE(eve2.insert_unit(1));  // Eve somehow knows y2
  EXPECT_LT(eve2.residual_rank(plan.c), 2u);
}

}  // namespace
}  // namespace thinair::core
