// One-time MACs and the authenticator lifecycle (active-adversary
// extension).
#include <gtest/gtest.h>

#include "auth/authenticator.h"
#include "auth/onetime_mac.h"
#include "channel/rng.h"

namespace thinair::auth {
namespace {

std::vector<std::uint8_t> bytes(std::size_t n, std::uint64_t seed) {
  channel::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = rng.next_byte();
  return out;
}

MacKey key(std::uint64_t seed) {
  const auto b = bytes(MacKey::kBytes, seed);
  return MacKey::from_bytes(b);
}

TEST(OneTimeMac, VerifyAcceptsGenuineTag) {
  const auto msg = bytes(100, 1);
  const MacKey k = key(2);
  EXPECT_TRUE(verify_mac(k, msg, compute_mac(k, msg)));
}

TEST(OneTimeMac, RejectsTamperedMessage) {
  auto msg = bytes(64, 3);
  const MacKey k = key(4);
  const MacTag tag = compute_mac(k, msg);
  for (std::size_t i : {std::size_t{0}, msg.size() / 2, msg.size() - 1}) {
    auto tampered = msg;
    tampered[i] ^= 0x01;
    EXPECT_FALSE(verify_mac(k, tampered, tag));
  }
}

TEST(OneTimeMac, RejectsWrongKey) {
  const auto msg = bytes(32, 5);
  const MacTag tag = compute_mac(key(6), msg);
  EXPECT_FALSE(verify_mac(key(7), msg, tag));
}

TEST(OneTimeMac, LengthExtensionChangesTag) {
  const auto msg = bytes(24, 8);
  auto extended = msg;
  extended.push_back(0x00);  // appending even a zero byte must change it
  const MacKey k = key(9);
  EXPECT_NE(compute_mac(k, msg).value, compute_mac(k, extended).value);
}

TEST(OneTimeMac, EmptyMessageIsWellDefined) {
  const MacKey k = key(10);
  const MacTag tag = compute_mac(k, {});
  EXPECT_TRUE(verify_mac(k, {}, tag));
  EXPECT_FALSE(verify_mac(k, bytes(1, 11), tag));
}

TEST(OneTimeMac, KeyFromBytesNeeds16) {
  const auto b = bytes(10, 12);
  EXPECT_THROW((void)MacKey::from_bytes(b), std::invalid_argument);
}

TEST(OneTimeMac, TagDistributionLooksUniform) {
  // Coarse sanity: across many keys the tag of a fixed message should not
  // collide or cluster in the low bits.
  const auto msg = bytes(40, 13);
  std::set<std::uint64_t> tags;
  int low_zero = 0;
  for (std::uint64_t s = 0; s < 200; ++s) {
    const MacTag t = compute_mac(key(1000 + s), msg);
    tags.insert(t.value);
    low_zero += (t.value & 1) == 0;
  }
  EXPECT_EQ(tags.size(), 200u);
  EXPECT_GT(low_zero, 60);
  EXPECT_LT(low_zero, 140);
}

TEST(Authenticator, SignVerifyRoundTrip) {
  Authenticator auth(bytes(64, 20));
  const auto msg = auth.sign({1, 2, 3});
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(auth.verify(*msg));
}

TEST(Authenticator, KeysAreOneTimeNoReplay) {
  Authenticator auth(bytes(64, 21));
  const auto msg = auth.sign({9, 9});
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(auth.verify(*msg));
  EXPECT_FALSE(auth.verify(*msg));  // replay must fail
}

TEST(Authenticator, OutOfOrderRejected) {
  Authenticator auth(bytes(64, 22));
  const auto m0 = auth.sign({0});
  const auto m1 = auth.sign({1});
  ASSERT_TRUE(m0 && m1);
  EXPECT_FALSE(auth.verify(*m1));  // m0 must come first
  EXPECT_TRUE(auth.verify(*m0));
  EXPECT_TRUE(auth.verify(*m1));
}

TEST(Authenticator, ForgeryRejected) {
  Authenticator auth(bytes(64, 23));
  auto msg = auth.sign({5, 5, 5});
  ASSERT_TRUE(msg.has_value());
  msg->body[0] ^= 0xFF;
  EXPECT_FALSE(auth.verify(*msg));
}

TEST(Authenticator, ExhaustionAndRefill) {
  Authenticator auth(bytes(MacKey::kBytes, 24));  // exactly one key
  EXPECT_TRUE(auth.sign({1}).has_value());
  EXPECT_FALSE(auth.sign({2}).has_value());  // pool exhausted
  auth.refill(bytes(MacKey::kBytes * 2, 25));
  EXPECT_TRUE(auth.sign({3}).has_value());
  EXPECT_TRUE(auth.sign({4}).has_value());
  EXPECT_FALSE(auth.sign({5}).has_value());
}

TEST(Authenticator, BootstrapThenProtocolRefillLifecycle) {
  // The paper's model: small bootstrap secret, then the protocol's output
  // keeps the authenticator alive indefinitely.
  Authenticator alice(bytes(MacKey::kBytes, 26));
  Authenticator bob(bytes(MacKey::kBytes, 26));  // same bootstrap

  const auto m = alice.sign({42});
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(bob.verify(*m));

  const auto fresh = bytes(160, 27);  // 10 new keys from a protocol run
  alice.refill(fresh);
  bob.refill(fresh);
  for (int i = 0; i < 10; ++i) {
    const auto mi = alice.sign({static_cast<std::uint8_t>(i)});
    ASSERT_TRUE(mi.has_value());
    EXPECT_TRUE(bob.verify(*mi));
  }
}

}  // namespace
}  // namespace thinair::auth
