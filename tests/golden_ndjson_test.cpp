// Golden NDJSON regression suite: the kernel-independence contract as a
// ctest gate, not just a CI cmp step.
//
// The runtime promises that a scenario's full NDJSON stream is a pure
// function of (spec, master seed): independent of the GF(2^8) kernel,
// the thread count, and the work-stealing schedule. The CI workflow
// checks that property by cmp-ing runs against each other; this suite
// pins it harder, as SHA-256 digests of the complete fig1/fig2/headline
// runs. Any change to the simulation's bytes — an estimator tweak, a
// kernel bug, an accidental reorder — fails here first, naming the
// scenario and both digests.
//
// Refreshing the goldens after an INTENTIONAL result change (and only
// then — see the "Known deviation" section of the README for the bar a
// result change must clear): run this binary with
// THINAIR_PRINT_GOLDENS=1, which prints the current digests in the
// kGolden table's format, and paste them below.
#include <gtest/gtest.h>

#include <tuple>

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "gf/kernels.h"
#include "runtime/engine.h"
#include "runtime/result_sink.h"
#include "runtime/scenarios.h"
#include "util/sha256.h"

namespace thinair {
namespace {

constexpr std::uint64_t kGoldenSeed = 42;

struct Golden {
  const char* scenario;
  const char* sha256;  // of the full NDJSON stream at kGoldenSeed
};

// Digests of the complete runs (every case, footer included) at master
// seed 42. Pinned against the PR 4 binary; byte-identical across every
// registered kernel and any thread count by the determinism contract.
constexpr Golden kGolden[] = {
    {"fig1",
     "561ea7599ec8522beb2b7397b233454ac7198264bff859daab65bed6e65b59fe"},
    {"fig2",
     "978065da505a77aa99908dc9370245f191e152fe761247e93bcd52b8d29cf2b4"},
    {"headline",
     "3c72d8ac7041b21abfef50ecff27a0dc366caf08664d3ce73ae84125d8ac163e"},
};

// Restores the dispatched kernel after a test that overrides it.
struct KernelGuard {
  ~KernelGuard() { std::ignore = gf::set_active_kernel("auto"); }
};

std::string run_ndjson(const std::string& scenario_name,
                       std::size_t threads) {
  runtime::register_builtin_scenarios();
  const runtime::Scenario* scenario =
      runtime::ScenarioRegistry::instance().find(scenario_name);
  if (scenario == nullptr) {
    ADD_FAILURE() << "unknown scenario " << scenario_name;
    return {};
  }
  std::ostringstream ndjson;
  runtime::ResultSink sink(scenario->name, &ndjson);
  runtime::RunOptions options;
  options.threads = threads;
  options.master_seed = kGoldenSeed;
  runtime::run_scenario(*scenario, options, sink);
  return ndjson.str();
}

bool print_goldens_requested() {
  const char* env = std::getenv("THINAIR_PRINT_GOLDENS");
  return env != nullptr && *env != '\0' && *env != '0';
}

void expect_golden(const Golden& golden, const std::string& ndjson,
                   const std::string& context) {
  const std::string got = util::sha256_hex(ndjson);
  if (print_goldens_requested()) {
    std::printf("    {\"%s\",\n     \"%s\"},\n", golden.scenario,
                got.c_str());
    return;
  }
  EXPECT_EQ(got, golden.sha256)
      << golden.scenario << " (" << context << "): full-run NDJSON drifted "
      << "from the pinned golden. If the change is intentional, refresh "
      << "with THINAIR_PRINT_GOLDENS=1 (see the comment atop this file).";
}

// The cheapest scenario crosses every registered kernel and two thread
// counts: the full kernel x schedule matrix against one pinned digest.
TEST(GoldenNdjson, Fig1FullRunAcrossKernelsAndThreads) {
  const Golden& golden = kGolden[0];
  KernelGuard guard;
  for (const gf::Kernel* k : gf::all_kernels()) {
    SCOPED_TRACE(k->name);
    ASSERT_TRUE(gf::set_active_kernel(k->name));
    expect_golden(golden, run_ndjson("fig1", 1),
                  std::string(k->name) + ", 1 thread");
    if (print_goldens_requested()) return;  // one print is enough
    expect_golden(golden, run_ndjson("fig1", 8),
                  std::string(k->name) + ", 8 threads");
  }
}

// The two heavyweight scenarios run on the dispatched kernel, once
// single-threaded and once on a work-stealing schedule.
TEST(GoldenNdjson, Fig2FullRun) {
  expect_golden(kGolden[1], run_ndjson("fig2", 1), "dispatched, 1 thread");
  if (print_goldens_requested()) return;
  expect_golden(kGolden[1], run_ndjson("fig2", 5), "dispatched, 5 threads");
}

TEST(GoldenNdjson, HeadlineFullRun) {
  expect_golden(kGolden[2], run_ndjson("headline", 1),
                "dispatched, 1 thread");
  if (print_goldens_requested()) return;
  expect_golden(kGolden[2], run_ndjson("headline", 5),
                "dispatched, 5 threads");
}

// The hash itself is pinned by FIPS 180-4 test vectors, so a golden
// mismatch can never be the hash's fault.
TEST(GoldenNdjson, Sha256KnownAnswers) {
  EXPECT_EQ(util::sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(util::sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      util::sha256_hex(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  // Streaming in odd-sized chunks crosses block boundaries.
  util::Sha256 h;
  const std::string million(1000000, 'a');
  for (std::size_t i = 0; i < million.size(); i += 977)
    h.update(std::string_view(million).substr(i, 977));
  EXPECT_EQ(h.hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

}  // namespace
}  // namespace thinair
