// The declarative scenario layer: spec parsing and serialisation
// (round-trip guarantee, golden error messages), dotted-path overrides,
// compile() validation, and the determinism contract for spec-defined
// scenarios (byte-identical NDJSON at 1 vs 8 threads).
#include <gtest/gtest.h>

#include <sstream>

#include "runtime/engine.h"
#include "runtime/scenarios.h"
#include "runtime/spec_parse.h"
#include "testbed/sweep.h"

namespace thinair::runtime {
namespace {

// A placement-free spec exercising most knobs; cheap enough to execute.
ScenarioSpec small_iid_spec() {
  SessionSpec session;
  session.x_packets = 40;
  session.rounds = 2;
  return ScenarioSpec{}
      .with_name("small-iid")
      .with_description("iid smoke sweep")
      .on_iid(0.3)
      .sweep_p({0.2, 0.5})
      .with_n({2, 3})
      .with_session(session)
      .with_estimator(core::EstimatorKind::kLooFraction)
      .with_repeats(2);
}

// ------------------------------------------------------------ round trips

TEST(SpecParse, BuiltinSpecsRoundTrip) {
  for (const ScenarioSpec& spec :
       {fig1_spec(), fig2_spec(), headline_spec()}) {
    const std::string text = serialize_spec(spec);
    EXPECT_EQ(parse_spec(text), spec) << text;
    // Serialisation is canonical: a second round trip is a fixed point.
    EXPECT_EQ(serialize_spec(parse_spec(text)), text);
  }
}

TEST(SpecParse, FeaturefulSpecRoundTrips) {
  ScenarioSpec spec = small_iid_spec();
  spec.output.baseline = Baseline::kBoth;
  spec.output.metrics = MetricSet::kEfficiency;
  spec.output.analytic = true;
  spec.estimator.k_antennas = 2;
  spec.mac.data_rate_bps = 2e6;
  EXPECT_EQ(parse_spec(serialize_spec(spec)), spec);

  ScenarioSpec testbed = ScenarioSpec{}
                             .with_name("cells")
                             .on_testbed()
                             .at_cells({0, 4}, 8)
                             .with_estimator(core::EstimatorKind::kGeometry);
  testbed.topology.positions = {{0.5, 0.5}, {2.0, 1.6}};
  testbed.topology.eve_position = channel::Vec2{3.0, 3.0};
  testbed.channel.testbed.interference_enabled = false;
  EXPECT_EQ(parse_spec(serialize_spec(testbed)), testbed);

  ScenarioSpec per_link =
      ScenarioSpec{}
          .with_name("links")
          .on_per_link(0.1, {{0, 1, 0.5}, {1, 0, 0.25}})
          .with_n({3})
          .with_estimator(core::EstimatorKind::kLeaveOneOut);
  EXPECT_EQ(parse_spec(serialize_spec(per_link)), per_link);
}

TEST(SpecParse, RangeSugarAndComments) {
  const ScenarioSpec spec = parse_spec(
      "name = \"r\"  # trailing comment\n"
      "\n"
      "[topology]\n"
      "n = 3..5\n"
      "[sweep]\n"
      "p = 0.1:0.3:0.1\n"
      "[channel]\n"
      "model = \"iid\"\n");
  EXPECT_EQ(spec.topology.n_values, (std::vector<std::size_t>{3, 4, 5}));
  ASSERT_EQ(spec.sweep.p_values.size(), 3u);
  EXPECT_DOUBLE_EQ(spec.sweep.p_values[0], 0.1);
  EXPECT_DOUBLE_EQ(spec.sweep.p_values[2], 0.1 + 2 * 0.1);
  EXPECT_EQ(spec.channel.model, channel::ChannelModelKind::kIid);
}

TEST(SpecParse, RangeEndpointsClampAndHugeRangesAreRejected) {
  // lo + i*step with an endpoint clamp: 0:1:0.05 must end exactly on 1
  // (not 1.0000000000000002, which the probability check would reject).
  const ScenarioSpec spec = parse_spec(
      "[channel]\nmodel = \"iid\"\n[sweep]\np = 0:1:0.05\n");
  ASSERT_EQ(spec.sweep.p_values.size(), 21u);
  EXPECT_EQ(spec.sweep.p_values.front(), 0.0);
  EXPECT_EQ(spec.sweep.p_values.back(), 1.0);

  // A typo'd range is a diagnostic, not a multi-GB allocation.
  EXPECT_THROW((void)parse_spec("[topology]\nn = 3..4000000000\n"),
               SpecError);
  EXPECT_THROW((void)parse_spec("[sweep]\np = 0:1:1e-9\n"), SpecError);
}

// ---------------------------------------------------- golden error output

void expect_parse_error(const std::string& text, const std::string& message) {
  try {
    (void)parse_spec(text);
    FAIL() << "no error for: " << text;
  } catch (const SpecError& e) {
    EXPECT_STREQ(e.what(), message.c_str()) << "for: " << text;
  }
}

TEST(SpecParse, GoldenErrorMessages) {
  expect_parse_error("[channel]\nfrequency = 2.4\n",
                     "line 2: channel.frequency: unknown key");
  expect_parse_error("[channel]\np = banana\n",
                     "line 2: channel.p: expected a number, got 'banana'");
  expect_parse_error("[channel]\np = 1.5\n",
                     "line 2: channel.p: 1.5 outside [0, 1]");
  expect_parse_error("[channel]\n[topology]\n[channel]\n",
                     "line 3: duplicate section [channel]");
  expect_parse_error("[chanel]\n", "line 1: unknown section [chanel]");
  expect_parse_error("wat\n",
                     "line 1: expected 'key = value' or '[section]', got "
                     "'wat'");
  expect_parse_error("oops = 1\n",
                     "line 1: oops: unknown key (top level has only name and "
                     "description)");
  expect_parse_error(
      "[estimator]\nseries = [\"psychic\"]\n",
      "line 2: estimator.series: unknown estimator 'psychic' (one of: "
      "oracle, leave-one-out, k-subset, fraction, loo-fraction, "
      "slot-fraction, geometry)");
  expect_parse_error("[topology]\nn = [3, 4\n",
                     "line 2: topology.n: unterminated list [3, 4");
  expect_parse_error("[topology]\neve_cell = 9\n",
                     "line 2: topology.eve_cell: cell 9 outside [0, 8]");
  expect_parse_error("[session]\nrotate_alice = maybe\n",
                     "line 2: session.rotate_alice: expected true/false (or "
                     "on/off), got 'maybe'");
  expect_parse_error("name = \"unterminated\n",
                     "line 1: name: unterminated string \"unterminated");
}

// --------------------------------------------------- [run] execution pinning

TEST(SpecParse, RunSectionPinsSeedAndThreads) {
  const ScenarioSpec spec = parse_spec("[run]\nseed = 12345\nthreads = 8\n");
  ASSERT_TRUE(spec.run.seed.has_value());
  EXPECT_EQ(*spec.run.seed, 12345u);
  ASSERT_TRUE(spec.run.threads.has_value());
  EXPECT_EQ(*spec.run.threads, 8u);

  // An unpinned spec serializes with no [run] section at all — absence
  // must round-trip as faithfully as presence.
  const ScenarioSpec bare = parse_spec("");
  EXPECT_FALSE(bare.run.seed.has_value());
  EXPECT_FALSE(bare.run.threads.has_value());
  EXPECT_EQ(serialize_spec(bare).find("[run]"), std::string::npos);

  // Partial pinning emits only the pinned key.
  ScenarioSpec seed_only;
  seed_only.run.seed = 7;
  const std::string text = serialize_spec(seed_only);
  EXPECT_NE(text.find("[run]\nseed = 7\n"), std::string::npos);
  EXPECT_EQ(text.find("threads"), std::string::npos);
  EXPECT_EQ(parse_spec(text), seed_only);

  expect_parse_error("[run]\nthreads = 1025\n",
                     "line 2: run.threads: at most 1024 threads (0 = auto)");
  expect_parse_error("[run]\nseed = banana\n",
                     "line 2: run.seed: expected a non-negative integer, got "
                     "'banana'");
}

// ---------------------------------------------------------- --set overrides

TEST(SpecOverride, DottedPathsAssignFields) {
  ScenarioSpec spec = fig2_spec();
  apply_override(spec, "channel.interference", "off");
  EXPECT_FALSE(spec.channel.testbed.interference_enabled);
  apply_override(spec, "topology.n", "[3, 4]");
  EXPECT_EQ(spec.topology.n_values, (std::vector<std::size_t>{3, 4}));
  apply_override(spec, "name", "\"fig2-ablated\"");
  EXPECT_EQ(spec.name, "fig2-ablated");
  apply_override(spec, "estimator.series", "[\"slot-fraction:8\"]");
  ASSERT_EQ(spec.estimator.series.size(), 1u);
  EXPECT_EQ(spec.estimator.series[0].max_placements, 8u);

  EXPECT_THROW(apply_override(spec, "channel.frequency", "2.4"), SpecError);
  EXPECT_THROW(apply_override(spec, "chanel.p", "0.5"), SpecError);
  EXPECT_THROW(apply_override(spec, "channel.p", "nope"), SpecError);
}

// ------------------------------------------------------ compile validation

void expect_compile_error(const ScenarioSpec& spec,
                          const std::string& message_part) {
  try {
    (void)compile(spec);
    FAIL() << "compile accepted an invalid spec";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(message_part), std::string::npos)
        << e.what();
  }
}

TEST(SpecCompile, RejectsInconsistentSpecs) {
  expect_compile_error(ScenarioSpec{}, "name is empty");

  ScenarioSpec spec = small_iid_spec();
  spec.estimator.series.clear();
  expect_compile_error(spec, "estimator.series is empty");

  spec = small_iid_spec();
  spec.estimator.series[0].kind = core::EstimatorKind::kGeometry;
  expect_compile_error(spec, "'geometry' requires channel.model = testbed");

  spec = small_iid_spec();
  spec.output.analytic = true;  // metrics stay kSession
  expect_compile_error(spec, "output.analytic requires");

  spec = fig2_spec();
  spec.sweep.p_values = {0.5};
  expect_compile_error(spec, "sweep.p requires channel.model = iid");

  spec = fig2_spec();
  spec.topology.n_values = {9};
  expect_compile_error(spec, "outside [2, 8]");

  spec = fig2_spec();
  spec.topology.cells = {0, 0, 1};
  expect_compile_error(spec, "explicit placement is invalid");

  spec = small_iid_spec();
  spec.topology.cells = {0, 1};
  expect_compile_error(spec, "require channel.model = testbed");

  // Node ids are 16-bit (Eve takes id n): compile must catch the
  // overflow, not let Medium::attach abort the run.
  spec = small_iid_spec();
  spec.topology.n_values = {70000};
  expect_compile_error(spec, "must be <= 65534");

  spec = small_iid_spec().on_per_link(1.5, {}).sweep_p({});
  expect_compile_error(spec, "channel.default_p outside [0, 1]");

  spec = small_iid_spec().on_per_link(0.1, {{0, 1, 2.0}}).sweep_p({});
  expect_compile_error(spec, "channel.links probability outside [0, 1]");

  spec = small_iid_spec();
  spec.estimator.k_antennas = 0;
  expect_compile_error(spec, "estimator.k_antennas must be >= 1");
}

// ------------------------------------------------- compiled scenario shape

TEST(SpecCompile, PlanAxesMatchTheSpec) {
  const Scenario s = compile(small_iid_spec());
  ASSERT_NE(s.spec, nullptr);
  EXPECT_EQ(*s.spec, small_iid_spec());
  const SweepPlan plan = s.plan();
  // 2 n x 2 p x 2 repeats.
  EXPECT_EQ(plan.size(), 8u);
  const auto axes = plan.axis_summaries();
  ASSERT_EQ(axes.size(), 3u);
  EXPECT_EQ(axes[0].name, "n");
  EXPECT_EQ(axes[1].name, "p");
  EXPECT_EQ(axes[2].name, "rep");
  EXPECT_EQ(axes[1].values, (std::vector<double>{0.2, 0.5}));
}

// ---------------------------------------------------- sweep.key axis

TEST(SpecParse, KeySweepRoundTrips) {
  ScenarioSpec spec = small_iid_spec().sweep_key("session.x_packets", {30, 90});
  const std::string text = serialize_spec(spec);
  EXPECT_NE(text.find("key = \"session.x_packets\""), std::string::npos);
  EXPECT_NE(text.find("values = [30, 90]"), std::string::npos);
  EXPECT_EQ(parse_spec(text), spec);
  EXPECT_EQ(serialize_spec(parse_spec(text)), text);

  // Absent key axis stays absent (no "key =" line at all).
  EXPECT_EQ(serialize_spec(small_iid_spec()).find("key ="),
            std::string::npos);
}

TEST(SpecCompile, KeySweepIsTheSlowestAxisAndAppliesPerValue) {
  // Sweep the group size through the generic axis; the base n list is
  // shadowed by the override, and the group labels prove each variant
  // really ran with its own value.
  ScenarioSpec spec = small_iid_spec().sweep_key("topology.n", {2, 3});
  spec.topology.n_values = {5};  // replaced per value by the key axis
  spec.sweep.p_values = {0.2};
  spec.sweep.repeats = 1;
  const Scenario s = compile(spec);
  const SweepPlan plan = s.plan();
  ASSERT_EQ(plan.size(), 2u);
  // The key parameter leads every point, under its dotted name.
  EXPECT_EQ(plan.at(0)[0], (Param{"topology.n", 2.0}));
  EXPECT_EQ(plan.at(1)[0], (Param{"topology.n", 3.0}));
  const auto cases = run_scenario_collect(s, RunOptions{});
  ASSERT_EQ(cases.size(), 2u);
  EXPECT_EQ(cases[0].second.group, "n=2");
  EXPECT_EQ(cases[1].second.group, "n=3");
}

TEST(SpecCompile, KeySweepConcatenatesUnevenVariantGrids) {
  // A key that changes the plan's *shape* per value: the placement cap
  // makes variant grids of 1 and 2 cases. Concatenation must cover both
  // exactly — this is why the key axis compiles to explicit points, not
  // a cartesian prefix.
  ScenarioSpec spec = ScenarioSpec{}
                          .with_name("uneven")
                          .on_testbed()
                          .with_n({3})
                          .with_estimator(core::EstimatorKind::kGeometry)
                          .sweep_key("topology.max_placements", {1, 2});
  const SweepPlan plan = compile(spec).plan();
  ASSERT_EQ(plan.size(), 3u);  // cap 1 -> 1 placement, cap 2 -> 2
  EXPECT_EQ(plan.at(0)[0], (Param{"topology.max_placements", 1.0}));
  EXPECT_EQ(plan.at(1)[0], (Param{"topology.max_placements", 2.0}));
  EXPECT_EQ(plan.at(2)[0], (Param{"topology.max_placements", 2.0}));
  EXPECT_EQ(param(plan.at(2), "placement"), 1.0);
}

TEST(SpecCompile, KeySweepRejectsBadAxes) {
  ScenarioSpec spec = small_iid_spec();
  spec.sweep.key = "session.x_packets";  // values left empty
  expect_compile_error(spec, "sweep.key and sweep.values must be set together");

  spec = small_iid_spec();
  spec.sweep.values = {1, 2};  // key left empty
  expect_compile_error(spec, "sweep.key and sweep.values must be set together");

  spec = small_iid_spec().sweep_key("sweep.repeats", {1, 2});
  expect_compile_error(spec, "sweep.key cannot target 'sweep.repeats'");

  spec = small_iid_spec().sweep_key("run.seed", {1, 2});
  expect_compile_error(spec, "sweep.key cannot target 'run.seed'");

  spec = small_iid_spec().sweep_key("session.x_packets", {30, 30});
  expect_compile_error(spec, "sweep.values has duplicate 30");

  // A value the key cannot hold fails at compile, with the override
  // machinery's message inside.
  spec = small_iid_spec().sweep_key("session.x_packets", {90.5});
  expect_compile_error(spec, "sweep.key:");

  spec = small_iid_spec().sweep_key("session.banana", {1});
  expect_compile_error(spec, "unknown key");
}

TEST(SpecCompile, ExplicitCellsRunEndToEnd) {
  ScenarioSpec spec = ScenarioSpec{}
                          .with_name("two-terminals")
                          .on_testbed()
                          .at_cells({0, 4}, 8)
                          .with_estimator(core::EstimatorKind::kGeometry);
  spec.session.x_packets = 36;
  spec.session.rounds = 1;
  const Scenario s = compile(spec);
  EXPECT_EQ(s.plan().size(), 1u);
  const auto cases = run_scenario_collect(s, RunOptions{});
  ASSERT_EQ(cases.size(), 1u);
  EXPECT_EQ(cases[0].second.group, "n=2");
  EXPECT_GE(metric(cases[0].second, "reliability"), 0.0);
}

TEST(SpecCompile, ExplicitPositionsDeriveCells) {
  // Positions only: cells come from the grid, Eve from her coordinates.
  ScenarioSpec spec;
  spec.with_name("positions")
      .on_testbed()
      .with_estimator(core::EstimatorKind::kSlotFraction);
  spec.topology.positions = {{0.5, 0.5}, {3.0, 0.5}, {0.5, 3.0}};
  spec.topology.eve_position = channel::Vec2{3.0, 3.0};
  spec.session.x_packets = 36;
  spec.session.rounds = 1;
  const Scenario s = compile(spec);
  const auto cases = run_scenario_collect(s, RunOptions{});
  ASSERT_EQ(cases.size(), 1u);
  EXPECT_EQ(cases[0].second.group, "n=3");
}

// --------------------------------------------------- determinism contract

std::string run_ndjson(const Scenario& s, std::size_t threads) {
  std::ostringstream out;
  ResultSink sink(s.name, &out);
  RunOptions options;
  options.threads = threads;
  options.master_seed = 21;
  (void)run_scenario(s, options, sink);
  return out.str();
}

TEST(SpecDeterminism, NdjsonByteIdenticalAcrossThreadCounts) {
  // The acceptance property for the whole declarative layer: a scenario
  // that exists only as a parsed spec file is byte-identical at 1 vs 8
  // threads.
  const ScenarioSpec spec = parse_spec(serialize_spec(small_iid_spec()));
  const Scenario s = compile(spec);
  const std::string one = run_ndjson(s, 1);
  EXPECT_EQ(std::count(one.begin(), one.end(), '\n'), 8);
  EXPECT_EQ(one, run_ndjson(s, 8));
}

TEST(SpecDeterminism, KeySweepByteIdenticalAcrossThreadCounts) {
  // The generic axis dispatches per case through per-value variants; the
  // dispatch must not disturb the contract (and the spec, key included,
  // must survive the text round trip first).
  ScenarioSpec spec = small_iid_spec().sweep_key("session.x_packets", {20, 40});
  spec.sweep.p_values = {0.2};
  spec.sweep.repeats = 1;
  const Scenario s = compile(parse_spec(serialize_spec(spec)));
  const std::string one = run_ndjson(s, 1);
  EXPECT_EQ(std::count(one.begin(), one.end(), '\n'), 4);
  EXPECT_NE(one.find("\"session.x_packets\":20"), std::string::npos);
  EXPECT_EQ(one, run_ndjson(s, 8));
}

// ------------------------------------------------------- truncation marks

TEST(Truncation, FooterAndSummaryNote) {
  const Scenario s = compile(small_iid_spec());
  std::ostringstream out;
  ResultSink sink(s.name, &out);
  RunOptions options;
  options.limit = 3;
  const RunStats stats = run_scenario(s, options, sink);
  EXPECT_TRUE(stats.truncated());
  EXPECT_EQ(stats.plan_cases, 8u);
  const std::string ndjson = out.str();
  EXPECT_NE(ndjson.find("\"truncated\":true,\"cases\":3,\"plan_cases\":8"),
            std::string::npos);
  std::ostringstream summary;
  sink.print_summary(summary);
  EXPECT_NE(summary.str().find("first 3 of 8 cases"), std::string::npos);

  // Full runs stay footer-free (byte-compat with pre-footer output).
  std::ostringstream full;
  ResultSink full_sink(s.name, &full);
  (void)run_scenario(s, RunOptions{}, full_sink);
  EXPECT_EQ(full.str().find("truncated"), std::string::npos);
}

// ------------------------------------------------------ built-in pinning

TEST(BuiltinSpecs, Fig1FirstCasePinned) {
  // Golden line: the exact bytes the pre-spec (PR 3) binary emitted for
  // fig1 case 0 at master seed 1. Guards the byte-identity guarantee the
  // declarative rebase made (seeds, params, group labels, metric names
  // and doubles formatting all pinned at once).
  register_builtin_scenarios();
  const Scenario* fig1 = ScenarioRegistry::instance().find(kFig1Scenario);
  ASSERT_NE(fig1, nullptr);
  std::ostringstream out;
  ResultSink sink(fig1->name, &out);
  RunOptions options;
  options.limit = 1;
  (void)run_scenario(*fig1, options, sink);
  const std::string line = out.str().substr(0, out.str().find('\n'));
  EXPECT_EQ(line,
            "{\"scenario\":\"fig1\",\"index\":0,\"seed\":"
            "10451216379200822465,\"group\":\"n=2\",\"params\":{\"n\":2,"
            "\"p\":0.1},\"metrics\":{\"group_analytic\":0.09000000000000001,"
            "\"group_sim\":0.095,\"unicast_analytic\":0.09000000000000001,"
            "\"unicast_sim\":0.08333333333333333}}");
}

TEST(BuiltinSpecs, RunSweepStillMatchesSpecPath) {
  // run_sweep is now a wrapper over the same compile() path; pin the
  // wiring by checking group labels and per-n case counts land intact.
  testbed::SweepConfig cfg;
  cfg.n_min = 7;
  cfg.n_max = 8;
  cfg.max_placements = 4;
  cfg.session.x_packets_per_round = 36;
  cfg.session.rounds = 1;
  const testbed::SweepResult r = run_sweep(cfg);
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].n, 7u);
  EXPECT_EQ(r.rows[1].n, 8u);
  EXPECT_EQ(r.rows[0].experiments, 4u);
}

}  // namespace
}  // namespace thinair::runtime
