// In-process exercise of the thinaird core: NodeSessions pumped against a
// SessionHub with no sockets involved. Covers multi-party key equality,
// cross-run determinism, heavy loss, relay loss + kNack recovery, idle
// expiry through the timer wheel, and the hub counters.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "netd/hub.h"
#include "netd/node_session.h"
#include "netd/timer_wheel.h"
#include "netd/wire.h"

namespace thinair::netd {
namespace {

// Drives N NodeSessions against one hub on a shared fake clock. Datagrams
// flow synchronously; the optional drop hooks simulate UDP loss on either
// direction so the ARQ / kNack machinery actually has work to do.
class LoopHarness {
 public:
  explicit LoopHarness(HubConfig config) : hub(std::move(config)) {}

  void add_node(NodeConfig config) {
    index_of_[config.node] = nodes_.size();
    nodes_.push_back(std::make_unique<NodeSession>(config));
  }

  // Returns true when every node reached kDone before `deadline_s` of
  // virtual time elapsed.
  bool run(double deadline_s = 600.0, double dt = 0.02) {
    for (auto& n : nodes_) n->start(now_);
    while (now_ < deadline_s) {
      while (step()) {
      }
      if (all_done()) return true;
      for (const auto& n : nodes_)
        if (n->failed()) {
          ADD_FAILURE() << "node failed: " << n->error();
          return false;
        }
      now_ += dt;
      for (auto& n : nodes_) n->on_tick(now_);
      std::vector<Outgoing> out;
      hub.on_tick(now_, out);
      route(out);
    }
    return false;
  }

  [[nodiscard]] const NodeSession& node(std::size_t i) const {
    return *nodes_[i];
  }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  SessionHub hub;
  // Return true to drop. Called once per datagram in each direction.
  std::function<bool(const Outgoing&)> drop_to_client;
  std::function<bool(const std::vector<std::uint8_t>&)> drop_to_hub;

 private:
  bool step() {
    bool any = false;
    std::vector<std::uint8_t> dgram;
    std::vector<Outgoing> out;
    for (auto& n : nodes_) {
      while (n->poll_datagram(dgram)) {
        any = true;
        if (drop_to_hub && drop_to_hub(dgram)) continue;
        out.clear();
        hub.on_datagram(dgram, now_, out);
        route(out);
      }
    }
    return any;
  }

  void route(const std::vector<Outgoing>& out) {
    for (const Outgoing& o : out) {
      if (drop_to_client && drop_to_client(o)) continue;
      const auto it = index_of_.find(o.node);
      if (it != index_of_.end())
        nodes_[it->second]->on_datagram(o.datagram, now_);
    }
  }

  [[nodiscard]] bool all_done() const {
    for (const auto& n : nodes_)
      if (!n->done()) return false;
    return true;
  }

  std::vector<std::unique_ptr<NodeSession>> nodes_;
  std::map<std::uint16_t, std::size_t> index_of_;
  double now_ = 0.0;
};

NodeConfig make_node(std::uint16_t id, std::uint16_t members,
                     std::uint64_t session = 0xA11CE) {
  NodeConfig c;
  c.session_id = session;
  c.node = id;
  c.members = members;
  // Enough x-packets that the loo-fraction estimator leaves a nonzero
  // secret even with four terminals' reception classes to separate.
  c.x_packets_per_round = members > 2 ? 32 : 16;
  c.payload_bytes = 16;
  c.payload_seed = 1000 + id;
  return c;
}

std::vector<std::vector<std::uint8_t>> run_session(
    HubConfig hc, std::uint16_t members,
    LoopHarness** harness_out = nullptr) {
  static std::unique_ptr<LoopHarness> keep;  // outlive for stats queries
  keep = std::make_unique<LoopHarness>(std::move(hc));
  for (std::uint16_t id = 0; id < members; ++id)
    keep->add_node(make_node(id, members));
  EXPECT_TRUE(keep->run()) << "session did not complete";
  std::vector<std::vector<std::uint8_t>> secrets;
  for (std::size_t i = 0; i < keep->size(); ++i)
    secrets.push_back(keep->node(i).secret());
  if (harness_out != nullptr) *harness_out = keep.get();
  return secrets;
}

TEST(NetdLoop, TwoPartyKeysMatch) {
  const auto secrets = run_session(HubConfig{}, 2);
  ASSERT_EQ(secrets.size(), 2u);
  EXPECT_FALSE(secrets[0].empty());
  EXPECT_EQ(secrets[0], secrets[1]);
}

TEST(NetdLoop, FourPartyKeysMatch) {
  const auto secrets = run_session(HubConfig{}, 4);
  ASSERT_EQ(secrets.size(), 4u);
  EXPECT_FALSE(secrets[0].empty());
  for (std::size_t i = 1; i < secrets.size(); ++i)
    EXPECT_EQ(secrets[0], secrets[i]) << "node " << i << " disagrees";
}

TEST(NetdLoop, DeterministicAcrossRuns) {
  HubConfig hc;
  hc.seed = 42;
  const auto a = run_session(hc, 3);
  const auto b = run_session(hc, 3);
  EXPECT_EQ(a, b);

  HubConfig other = hc;
  other.seed = 43;
  const auto c = run_session(other, 3);
  EXPECT_NE(a[0], c[0]) << "different hub seeds must draw different erasures";
}

TEST(NetdLoop, SurvivesHeavyLoss) {
  HubConfig hc;
  hc.loss_p = 0.3;
  const auto secrets = run_session(hc, 3);
  EXPECT_FALSE(secrets[0].empty());
  EXPECT_EQ(secrets[0], secrets[1]);
  EXPECT_EQ(secrets[0], secrets[2]);
}

TEST(NetdLoop, RecoversFromDroppedRelays) {
  LoopHarness h{HubConfig{}};
  h.add_node(make_node(0, 2));
  h.add_node(make_node(1, 2));
  // Drop every 5th hub->client datagram: relays develop gaps (kNack
  // recovery) and acks vanish (ARQ retransmit must kick in).
  std::size_t counter = 0;
  h.drop_to_client = [&counter](const Outgoing&) {
    return ++counter % 5 == 0;
  };
  ASSERT_TRUE(h.run());
  EXPECT_EQ(h.node(0).secret(), h.node(1).secret());
  EXPECT_FALSE(h.node(0).secret().empty());
  EXPECT_GT(h.hub.stats().nack_retransmits.load(), 0u);
}

TEST(NetdLoop, RecoversFromDroppedClientFrames) {
  LoopHarness h{HubConfig{}};
  h.add_node(make_node(0, 2));
  h.add_node(make_node(1, 2));
  std::size_t counter = 0;
  h.drop_to_hub = [&counter](const std::vector<std::uint8_t>&) {
    return ++counter % 7 == 0;
  };
  ASSERT_TRUE(h.run());
  EXPECT_EQ(h.node(0).secret(), h.node(1).secret());
  EXPECT_FALSE(h.node(0).secret().empty());
}

TEST(NetdLoop, LossyDeliveryActuallyErases) {
  // With loss and several rounds, at least one kData frame must miss at
  // least one peer — otherwise the "lossy" channel is not lossy and the
  // scheme's secrecy premise is void. Check via the session ledger.
  LoopHarness* h = nullptr;
  HubConfig hc;
  hc.loss_p = 0.4;
  (void)run_session(hc, 2, &h);
  ASSERT_NE(h, nullptr);
  EXPECT_GT(h->hub.stats().frames_relayed.load(), 0u);
}

TEST(NetdNode, RelayBeforeReadyIsBufferedNotFatal) {
  // A kRelay can reach a joining node before (or instead of) the single
  // kReady datagram — UDP reorders, and a forged datagram with a matching
  // session id is always possible. With the roster still empty this used
  // to divide by zero in alice_of(); it must buffer instead.
  NodeSession node(make_node(0, 2));
  node.start(0.0);
  Frame relay;
  relay.header.type = static_cast<std::uint8_t>(FrameType::kRelay);
  relay.header.session = 0xA11CE;
  relay.header.node = 1;
  relay.header.phase = static_cast<std::uint8_t>(WirePhase::kXData);
  relay.header.aux = 0;  // relay-stream seq
  relay.payload.assign(16, 0xAB);
  node.on_datagram(encode(relay), 0.1);
  EXPECT_FALSE(node.failed());
  EXPECT_EQ(node.state(), NodeSession::State::kJoining);
}

TEST(NetdLoop, SurvivesLostReady) {
  // kReady is sent exactly once per member; if it vanishes, the joining
  // node's periodic attach replay must pull a fresh copy out of the hub.
  LoopHarness h{HubConfig{}};
  h.add_node(make_node(0, 2));
  h.add_node(make_node(1, 2));
  std::size_t dropped = 0;
  h.drop_to_client = [&dropped](const Outgoing& o) {
    const DecodeResult d = decode(o.datagram);
    if (d.frame.has_value() &&
        static_cast<FrameType>(d.frame->header.type) == FrameType::kReady &&
        dropped < 2) {
      ++dropped;
      return true;  // both members' first kReady vanish
    }
    return false;
  };
  ASSERT_TRUE(h.run());
  EXPECT_EQ(dropped, 2u);
  EXPECT_EQ(h.node(0).secret(), h.node(1).secret());
  EXPECT_FALSE(h.node(0).secret().empty());
}

TEST(NetdHub, NackPastRingRepliesError) {
  HubConfig hc;
  hc.relay_window = 4;
  SessionHub hub(hc);
  std::vector<Outgoing> out;
  auto send = [&](const Frame& f) {
    out.clear();
    hub.on_datagram(encode(f), 0.0, out);
  };

  Frame attach;
  attach.header.type = static_cast<std::uint8_t>(FrameType::kAttach);
  attach.header.session = 5;
  attach.header.aux = 2;
  attach.header.node = 0;
  send(attach);
  attach.header.node = 1;
  send(attach);

  // Eight reliable broadcasts from node 0: node 1's relay ring (depth 4)
  // evicts relay seqs 0-3.
  for (std::uint32_t i = 0; i < 8; ++i) {
    Frame ctrl;
    ctrl.header.type = static_cast<std::uint8_t>(FrameType::kCtrl);
    ctrl.header.session = 5;
    ctrl.header.node = 0;
    ctrl.header.seq = i;
    send(ctrl);
  }

  // A NACK for an evicted seq must fail fast with kError, not silently
  // resend nothing and leave the member re-NACKing forever.
  Frame nack;
  nack.header.type = static_cast<std::uint8_t>(FrameType::kNack);
  nack.header.session = 5;
  nack.header.node = 1;
  nack.header.aux = 0;
  send(nack);
  bool saw_error = false;
  for (const Outgoing& o : out) {
    const DecodeResult d = decode(o.datagram);
    ASSERT_TRUE(d.frame.has_value());
    if (static_cast<FrameType>(d.frame->header.type) == FrameType::kError &&
        o.node == 1)
      saw_error = true;
  }
  EXPECT_TRUE(saw_error);

  // A NACK still inside the ring retransmits the tail as before.
  nack.header.aux = 6;
  send(nack);
  std::size_t relays = 0;
  for (const Outgoing& o : out) {
    const DecodeResult d = decode(o.datagram);
    if (d.frame.has_value() &&
        static_cast<FrameType>(d.frame->header.type) == FrameType::kRelay)
      ++relays;
  }
  EXPECT_EQ(relays, 2u) << "expected seqs 6 and 7 resent";
}

TEST(NetdHub, SessionExpiresWhenIdle) {
  HubConfig hc;
  hc.idle_timeout_s = 1.0;
  SessionHub hub(hc);

  Frame attach;
  attach.header.type = static_cast<std::uint8_t>(FrameType::kAttach);
  attach.header.session = 99;
  attach.header.node = 0;
  attach.header.aux = 2;  // expect a second member that never arrives
  std::vector<Outgoing> out;
  hub.on_datagram(encode(attach), 0.0, out);
  ASSERT_EQ(hub.session_count(), 1u);

  out.clear();
  hub.on_tick(0.5, out);
  EXPECT_EQ(hub.session_count(), 1u) << "expired before the timeout";

  out.clear();
  hub.on_tick(5.0, out);
  EXPECT_EQ(hub.session_count(), 0u);
  EXPECT_EQ(hub.stats().sessions_expired.load(), 1u);
  bool saw_expired = false;
  for (const Outgoing& o : out) {
    const DecodeResult d = decode(o.datagram);
    ASSERT_TRUE(d.frame.has_value());
    if (static_cast<FrameType>(d.frame->header.type) == FrameType::kExpired &&
        o.node == 0 && o.session == 99)
      saw_expired = true;
  }
  EXPECT_TRUE(saw_expired);
}

TEST(NetdHub, ActivityDefersExpiry) {
  HubConfig hc;
  hc.idle_timeout_s = 1.0;
  SessionHub hub(hc);

  Frame attach;
  attach.header.type = static_cast<std::uint8_t>(FrameType::kAttach);
  attach.header.session = 7;
  attach.header.node = 0;
  attach.header.aux = 2;
  std::vector<Outgoing> out;
  hub.on_datagram(encode(attach), 0.0, out);

  // Keep touching the session: re-attach (idempotent) every 0.6s. The stale
  // wheel entries must lazily reschedule instead of expiring it.
  for (int i = 1; i <= 5; ++i) {
    out.clear();
    hub.on_tick(0.6 * i, out);
    hub.on_datagram(encode(attach), 0.6 * i, out);
    ASSERT_EQ(hub.session_count(), 1u) << "expired at t=" << 0.6 * i;
  }
  out.clear();
  hub.on_tick(3.0 + hc.idle_timeout_s + 0.5, out);
  EXPECT_EQ(hub.session_count(), 0u);
}

TEST(NetdHub, CountsSessionsAndFrames) {
  LoopHarness* h = nullptr;
  (void)run_session(HubConfig{}, 2, &h);
  ASSERT_NE(h, nullptr);
  const HubStats& s = h->hub.stats();
  EXPECT_GT(s.datagrams_in.load(), 0u);
  EXPECT_GT(s.frames_relayed.load(), 0u);
  EXPECT_EQ(s.sessions_opened.load(), 1u);
  EXPECT_EQ(s.sessions_closed.load(), 1u);
  EXPECT_EQ(s.decode_errors.load(), 0u);
  EXPECT_EQ(h->hub.session_count(), 0u) << "kBye should close the session";
}

TEST(NetdHub, RejectsGarbageAndCountsIt) {
  SessionHub hub(HubConfig{});
  std::vector<Outgoing> out;
  const std::vector<std::uint8_t> garbage = {0xDE, 0xAD, 0xBE, 0xEF};
  hub.on_datagram(garbage, 0.0, out);
  EXPECT_EQ(hub.stats().decode_errors.load(), 1u);
  EXPECT_TRUE(out.empty());
}

// attach/bye churn must recycle the pooled session records: after the
// first cycle, opening a session costs a reset(), not a construction.
TEST(NetdHub, AttachByeChurnRecyclesSessionRecords) {
  SessionHub hub(HubConfig{});
  std::vector<Outgoing> out;
  const auto control = [](FrameType t, std::uint64_t session,
                          std::uint16_t node, std::uint32_t aux) {
    Frame f;
    f.header.type = static_cast<std::uint8_t>(t);
    f.header.session = session;
    f.header.node = node;
    f.header.aux = aux;
    return encode(f);
  };

  constexpr std::size_t kCycles = 512;
  for (std::size_t i = 0; i < kCycles; ++i) {
    const std::uint64_t id = 1 + i;
    for (std::uint16_t node = 0; node < 2; ++node) {
      out.clear();
      hub.on_datagram(control(FrameType::kAttach, id, node, 2), 0.0, out);
    }
    ASSERT_EQ(hub.session_count(), 1u);
    for (std::uint16_t node = 0; node < 2; ++node) {
      out.clear();
      hub.on_datagram(control(FrameType::kBye, id, node, 0), 0.0, out);
    }
    ASSERT_EQ(hub.session_count(), 0u);
  }

  const runtime::PoolCounters c = hub.session_pool_counters();
  EXPECT_EQ(c.acquired, kCycles);
  EXPECT_EQ(c.released, kCycles);
  EXPECT_EQ(c.constructed, 1u) << "churn rebuilt records instead of recycling";
  EXPECT_GE(c.hit_rate(), 0.99);
  EXPECT_EQ(hub.stats().sessions_opened.load(), kCycles);
  EXPECT_EQ(hub.stats().sessions_closed.load(), kCycles);
}

// Pumps two externally owned NodeSessions against a hub to completion and
// returns the (agreed) secret — the reuse test below runs the same pair
// twice through reset().
std::vector<std::uint8_t> pump_pair(SessionHub& hub, NodeSession& n0,
                                    NodeSession& n1) {
  NodeSession* nodes[2] = {&n0, &n1};
  double now = 0.0;
  std::vector<std::uint8_t> dgram;
  std::vector<Outgoing> out;
  const auto route = [&](const std::vector<Outgoing>& msgs) {
    for (const Outgoing& o : msgs)
      if (o.node < 2) nodes[o.node]->on_datagram(o.datagram, now);
  };
  n0.start(now);
  n1.start(now);
  while (now < 600.0) {
    bool any = true;
    while (any) {
      any = false;
      for (NodeSession* n : nodes)
        while (n->poll_datagram(dgram)) {
          any = true;
          out.clear();
          hub.on_datagram(dgram, now, out);
          route(out);
        }
    }
    if (n0.done() && n1.done()) break;
    for (NodeSession* n : nodes)
      if (n->failed()) {
        ADD_FAILURE() << "node failed: " << n->error();
        return {};
      }
    now += 0.02;
    for (NodeSession* n : nodes) n->on_tick(now);
    out.clear();
    hub.on_tick(now, out);
    route(out);
  }
  EXPECT_TRUE(n0.done() && n1.done()) << "session did not complete";
  EXPECT_EQ(n0.secret(), n1.secret());
  return n0.secret();
}

// The NodeSession reset contract: a reused terminal on a fresh hub at the
// same seed derives exactly the bytes its first (freshly constructed)
// lifecycle did.
TEST(NetdNode, ResetRestoresConstructionEquivalentState) {
  NodeSession a(make_node(0, 2));
  NodeSession b(make_node(1, 2));
  HubConfig hc;
  hc.seed = 77;

  SessionHub first_hub(hc);
  const std::vector<std::uint8_t> first = pump_pair(first_hub, a, b);
  EXPECT_FALSE(first.empty());

  a.reset(make_node(0, 2));
  b.reset(make_node(1, 2));
  EXPECT_TRUE(a.secret().empty()) << "reset kept the previous secret";
  SessionHub second_hub(hc);
  EXPECT_EQ(pump_pair(second_hub, a, b), first);
}

TEST(TimerWheel, FiresAtDeadline) {
  TimerWheel wheel(0.5, 8);
  wheel.schedule(1, 1.0);
  wheel.schedule(2, 2.0);
  EXPECT_EQ(wheel.size(), 2u);

  auto due = wheel.advance(0.9);
  EXPECT_TRUE(due.empty());
  due = wheel.advance(1.1);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].id, 1u);
  due = wheel.advance(5.0);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].id, 2u);
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheel, EntriesBeyondOneLapSurvive) {
  TimerWheel wheel(0.1, 4);  // lap = 0.4s
  wheel.schedule(9, 10.0);   // many laps out
  for (double t = 0.1; t < 9.9; t += 0.1)
    EXPECT_TRUE(wheel.advance(t).empty()) << "fired early at t=" << t;
  const auto due = wheel.advance(10.5);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].id, 9u);
}

TEST(TimerWheel, LargeJumpWalksAtMostOneLap) {
  TimerWheel wheel(0.5, 8);
  wheel.schedule(3, 2.0);
  // A huge clock jump must still collect everything due, exactly once.
  const auto due = wheel.advance(1e6);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].id, 3u);
  EXPECT_TRUE(wheel.advance(2e6).empty());
}

}  // namespace
}  // namespace thinair::netd
