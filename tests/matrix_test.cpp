// Dense GF(2^8) matrix algebra: multiplication, elimination, rank,
// inversion and solving — the machinery every protocol phase leans on.
#include "gf/matrix.h"

#include <gtest/gtest.h>

#include <utility>

#include "channel/rng.h"

namespace thinair::gf {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  channel::Rng rng(seed);
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m.set(i, j, GF256(rng.next_byte()));
  return m;
}

TEST(Matrix, InitializerListAndAccessors) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.at(0, 2), GF256(3));
  EXPECT_EQ(m.at(1, 0), GF256(4));
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, IdentityIsMultiplicativeNeutral) {
  const Matrix a = random_matrix(5, 5, 1);
  EXPECT_EQ(a.mul(Matrix::identity(5)), a);
  EXPECT_EQ(Matrix::identity(5).mul(a), a);
}

TEST(Matrix, MulDimensionMismatchThrows) {
  const Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a.mul(b), std::invalid_argument);
}

TEST(Matrix, MulMatchesManualComputation) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix c = a.mul(b);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j) {
      const GF256 want = a.at(i, 0) * b.at(0, j) + a.at(i, 1) * b.at(1, j);
      EXPECT_EQ(c.at(i, j), want);
    }
}

TEST(Matrix, MulAssociates) {
  const Matrix a = random_matrix(4, 6, 2);
  const Matrix b = random_matrix(6, 3, 3);
  const Matrix c = random_matrix(3, 5, 4);
  EXPECT_EQ(a.mul(b).mul(c), a.mul(b.mul(c)));
}

TEST(Matrix, TransposeInvolution) {
  const Matrix a = random_matrix(3, 7, 5);
  EXPECT_EQ(a.transpose().transpose(), a);
  EXPECT_EQ(a.transpose().rows(), 7u);
}

TEST(Matrix, VstackHstackShapes) {
  const Matrix a = random_matrix(2, 4, 6);
  const Matrix b = random_matrix(3, 4, 7);
  const Matrix v = a.vstack(b);
  EXPECT_EQ(v.rows(), 5u);
  EXPECT_EQ(v.at(2, 1), b.at(0, 1));

  const Matrix c = random_matrix(2, 3, 8);
  const Matrix h = a.hstack(c);
  EXPECT_EQ(h.cols(), 7u);
  EXPECT_EQ(h.at(1, 6), c.at(1, 2));
}

TEST(Matrix, VstackMismatchThrows) {
  EXPECT_THROW(Matrix(2, 3).vstack(Matrix(2, 4)), std::invalid_argument);
  EXPECT_THROW(Matrix(2, 3).hstack(Matrix(3, 3)), std::invalid_argument);
}

TEST(Matrix, SelectColumnsAndRows) {
  const Matrix a{{1, 2, 3}, {4, 5, 6}};
  const std::vector<std::size_t> cols{2, 0};
  const Matrix s = a.select_columns(cols);
  EXPECT_EQ(s.at(0, 0), GF256(3));
  EXPECT_EQ(s.at(1, 1), GF256(4));

  const std::vector<std::size_t> rows{1};
  const Matrix r = a.select_rows(rows);
  EXPECT_EQ(r.rows(), 1u);
  EXPECT_EQ(r.at(0, 0), GF256(4));
}

TEST(Matrix, SelectOutOfRangeThrows) {
  const Matrix a(2, 2);
  const std::vector<std::size_t> bad{5};
  EXPECT_THROW(a.select_columns(bad), std::out_of_range);
  EXPECT_THROW(a.select_rows(bad), std::out_of_range);
}

TEST(Matrix, RankOfIdentityAndZero) {
  EXPECT_EQ(Matrix::identity(6).rank(), 6u);
  EXPECT_EQ(Matrix::zero(4, 4).rank(), 0u);
}

TEST(Matrix, RankDetectsDependentRows) {
  Matrix m(3, 3);
  // row2 = row0 + row1.
  const Matrix base{{1, 2, 3}, {4, 5, 6}};
  for (std::size_t j = 0; j < 3; ++j) {
    m.set(0, j, base.at(0, j));
    m.set(1, j, base.at(1, j));
    m.set(2, j, base.at(0, j) + base.at(1, j));
  }
  EXPECT_EQ(m.rank(), 2u);
}

TEST(Matrix, RowReduceGivesPivots) {
  Matrix m{{0, 1, 2}, {0, 0, 3}};
  const auto pivots = m.row_reduce();
  ASSERT_EQ(pivots.size(), 2u);
  EXPECT_EQ(pivots[0], 1u);
  EXPECT_EQ(pivots[1], 2u);
  // Reduced form: pivot entries are 1, everything above/below is 0.
  EXPECT_EQ(m.at(0, 1), kOne);
  EXPECT_EQ(m.at(0, 2), kZero);
  EXPECT_EQ(m.at(1, 2), kOne);
}

TEST(Matrix, InverseRoundTrip) {
  for (std::uint64_t seed = 10; seed < 15; ++seed) {
    Matrix a = random_matrix(6, 6, seed);
    const auto inv = a.inverse();
    if (!inv.has_value()) continue;  // singular random draw
    EXPECT_EQ(a.mul(*inv), Matrix::identity(6));
    EXPECT_EQ(inv->mul(a), Matrix::identity(6));
  }
}

TEST(Matrix, InverseOfSingularIsNullopt) {
  Matrix a(3, 3);  // zero matrix
  EXPECT_FALSE(a.inverse().has_value());
  EXPECT_FALSE(Matrix(2, 3).inverse().has_value());  // non-square
}

TEST(Matrix, SolveUniqueSystem) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix x{{7}, {9}};
  const Matrix b = a.mul(x);
  const auto solved = a.solve(b);
  ASSERT_TRUE(solved.has_value());
  EXPECT_EQ(*solved, x);
}

TEST(Matrix, SolveTallFullColumnRank) {
  // Overdetermined but consistent: 3 equations, 2 unknowns.
  const Matrix a{{1, 0}, {0, 1}, {1, 1}};
  const Matrix x{{5}, {6}};
  const Matrix b = a.mul(x);
  const auto solved = a.solve(b);
  ASSERT_TRUE(solved.has_value());
  EXPECT_EQ(*solved, x);
}

TEST(Matrix, SolveInconsistentReturnsNullopt) {
  const Matrix a{{1, 0}, {1, 0}};
  const Matrix b{{1}, {2}};  // contradictory equations
  EXPECT_FALSE(a.solve(b).has_value());
}

TEST(Matrix, SolveUnderdeterminedReturnsNullopt) {
  const Matrix a{{1, 2}};  // one equation, two unknowns
  const Matrix b{{3}};
  EXPECT_FALSE(a.solve(b).has_value());
}

TEST(Matrix, InvertibleMatchesRank) {
  const Matrix id = Matrix::identity(4);
  EXPECT_TRUE(id.invertible());
  EXPECT_FALSE(Matrix::zero(4, 4).invertible());
  EXPECT_FALSE(Matrix(3, 4).invertible());
}

// Arena-backed storage: same algebra, storage carved from a
// PayloadArena; copies always re-own on the heap so only the original
// aliases the arena.
TEST(Matrix, ArenaBackedMatchesHeapBacked) {
  packet::PayloadArena arena;
  const Matrix heap = random_matrix(7, 9, 42);
  Matrix onarena(7, 9, arena);
  for (std::size_t i = 0; i < 7; ++i)
    for (std::size_t j = 0; j < 9; ++j) onarena.set(i, j, heap.at(i, j));
  EXPECT_EQ(onarena, heap);
  EXPECT_EQ(onarena.rank(), heap.rank());

  // A copy survives the arena being rewound.
  const Matrix copy = onarena;
  const Matrix rhs = random_matrix(9, 5, 43);
  const Matrix product = onarena.mul(rhs, arena);
  EXPECT_EQ(product, heap.mul(rhs));
  arena.reset();
  EXPECT_EQ(copy, heap);
}

TEST(Matrix, ArenaBackedRowReduceMatchesHeap) {
  packet::PayloadArena arena;
  for (std::uint64_t seed = 1; seed < 6; ++seed) {
    const Matrix heap = random_matrix(10, 14, seed);
    Matrix a(10, 14, arena);
    Matrix b = heap;
    for (std::size_t i = 0; i < 10; ++i)
      for (std::size_t j = 0; j < 14; ++j) a.set(i, j, heap.at(i, j));
    EXPECT_EQ(a.row_reduce(), b.row_reduce());
    EXPECT_EQ(a, b);
    arena.reset();
  }
}

TEST(Matrix, MoveAndAssignPreserveContents) {
  const Matrix src = random_matrix(5, 6, 77);
  Matrix moved = src;
  Matrix stolen = std::move(moved);
  EXPECT_EQ(stolen, src);
  Matrix assigned;
  assigned = stolen;
  EXPECT_EQ(assigned, src);
  assigned = std::move(stolen);
  EXPECT_EQ(assigned, src);
}

// Property sweep: for random square matrices, rank(A) == rank(A^T).
class MatrixRankSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatrixRankSweep, RankEqualsTransposeRank) {
  const Matrix a = random_matrix(8, 8, GetParam());
  EXPECT_EQ(a.rank(), a.transpose().rank());
}

TEST_P(MatrixRankSweep, MulByInvertiblePreservesRank) {
  const Matrix a = random_matrix(6, 9, GetParam() + 100);
  Matrix p = random_matrix(6, 6, GetParam() + 200);
  if (!p.invertible()) return;
  EXPECT_EQ(p.mul(a).rank(), a.rank());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixRankSweep,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u, 26u));

}  // namespace
}  // namespace thinair::gf
