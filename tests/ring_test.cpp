// SPSC ring torture tests: wraparound, capacity-1, full-ring
// backpressure, and a producer/consumer stress run on separate threads.
// This suite is the primary ThreadSanitizer target for the ring's
// acquire/release argument (CI builds it with THINAIR_SANITIZE=thread).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "runtime/spsc_ring.h"

namespace thinair::runtime {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(0).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1024).capacity(), 1024u);
  EXPECT_EQ(SpscRing<int>(1025).capacity(), 2048u);
}

TEST(SpscRing, PushPopSingleThreadWithWraparound) {
  SpscRing<int> ring(4);
  int out = 0;
  // Many times around a tiny ring: cursors keep counting up (they are
  // never reset), so this exercises index wrap through the mask.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(ring.try_push(int{i}));
    EXPECT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, CapacityOneAlternatesFullAndEmpty) {
  SpscRing<int> ring(1);
  int out = 0;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(ring.try_push(int{i}));
    EXPECT_FALSE(ring.try_push(int{-1}));  // full at one element
    EXPECT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
    EXPECT_FALSE(ring.try_pop(out));  // empty again
  }
}

TEST(SpscRing, TryPushFailureLeavesValueIntact) {
  SpscRing<std::unique_ptr<int>> ring(1);
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(7)));
  auto extra = std::make_unique<int>(9);
  EXPECT_FALSE(ring.try_push(std::move(extra)));
  ASSERT_NE(extra, nullptr);  // untouched on failure
  EXPECT_EQ(*extra, 9);
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(*out, 7);
  ASSERT_TRUE(ring.try_push(std::move(extra)));  // move-only flows through
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(*out, 9);
}

TEST(SpscRing, BlockingPushBackpressuresThroughTinyRing) {
  // A fast producer forcing 10k values through a capacity-2 ring must
  // block (spin) rather than drop or reorder; the slow consumer sees
  // the exact sequence.
  constexpr std::uint64_t kValues = 10000;
  SpscRing<std::uint64_t> ring(2);
  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kValues; ++i) ring.push(i);
  });
  std::uint64_t expected = 0;
  std::uint64_t out = 0;
  while (expected < kValues) {
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    } else {
      // On a 1-core runner an empty-ring busy-spin would eat the whole
      // scheduler quantum while the producer is parked; yield instead.
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, TwoThreadTortureKeepsSequenceAndSum) {
  // 300k values through a mid-size ring, both sides free-running; the
  // consumer checks ordering and a checksum so a torn or duplicated
  // slot cannot slip through. TSan checks the memory-ordering argument.
  constexpr std::uint64_t kValues = 300'000;
  SpscRing<std::uint64_t> ring(64);
  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kValues; ++i) ring.push(i * 2654435761u);
  });
  std::uint64_t sum = 0;
  std::uint64_t n = 0;
  std::uint64_t out = 0;
  while (n < kValues) {
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, n * 2654435761u);
      sum += out;
      ++n;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  std::uint64_t expected_sum = 0;
  for (std::uint64_t i = 0; i < kValues; ++i) expected_sum += i * 2654435761u;
  EXPECT_EQ(sum, expected_sum);
}

TEST(SpscRing, StringsSurviveTransit) {
  SpscRing<std::string> ring(8);
  std::thread producer([&ring] {
    for (int i = 0; i < 5000; ++i)
      ring.push("payload-" + std::to_string(i));
  });
  std::string out;
  for (int i = 0; i < 5000;) {
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, "payload-" + std::to_string(i));
      ++i;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
}

}  // namespace
}  // namespace thinair::runtime
