// GF(2^64) field axioms for the authentication substrate.
#include "gf/gf2_64.h"

#include <gtest/gtest.h>

namespace thinair::gf {
namespace {

TEST(GF64, AdditionIsXor) {
  EXPECT_EQ(GF64(0xF0F0) + GF64(0x0FF0), GF64(0xFF00));
  EXPECT_EQ(GF64(12345) + GF64(12345), GF64(0));
}

TEST(GF64, MultiplicativeIdentityAndZero) {
  const GF64 a(0x123456789ABCDEF0ULL);
  EXPECT_EQ(a * GF64(1), a);
  EXPECT_EQ(a * GF64(0), GF64(0));
}

TEST(GF64, MultiplicationByXShifts) {
  // Below the modulus boundary, multiplying by x doubles the value.
  EXPECT_EQ(GF64(0x10) * GF64(2), GF64(0x20));
  // At the boundary it wraps through the reduction polynomial 0x1B.
  EXPECT_EQ(GF64(0x8000000000000000ULL) * GF64(2), GF64(0x1B));
}

TEST(GF64, MultiplicationCommutesAndAssociates) {
  const GF64 a(0xDEADBEEFCAFEF00DULL), b(0x1234567811223344ULL),
      c(0x0F0E0D0C0B0A0908ULL);
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ((a * b) * c, a * (b * c));
}

TEST(GF64, DistributesOverAddition) {
  const GF64 a(0x3141592653589793ULL), b(0x2718281828459045ULL),
      c(0x1618033988749894ULL);
  EXPECT_EQ(a * (b + c), a * b + a * c);
}

TEST(GF64, InverseRoundTrip) {
  for (std::uint64_t v :
       {1ULL, 2ULL, 0x1BULL, 0xDEADBEEFULL, ~0ULL, 0x8000000000000001ULL}) {
    const GF64 a(v);
    EXPECT_EQ(a * a.inv(), GF64(1)) << v;
    EXPECT_EQ(a / a, GF64(1));
  }
}

TEST(GF64, PowMatchesRepeatedMultiplication) {
  const GF64 a(0xABCDEF);
  GF64 acc(1);
  for (unsigned e = 0; e < 20; ++e) {
    EXPECT_EQ(a.pow(e), acc);
    acc = acc * a;
  }
}

TEST(GF64, FermatLittleTheorem) {
  // a^(2^64 - 1) == 1 for a != 0.
  const GF64 a(0x9E3779B97F4A7C15ULL);
  EXPECT_EQ(a.pow(~std::uint64_t{0}), GF64(1));
}

}  // namespace
}  // namespace thinair::gf
