// Artificial interference: the 9 noise patterns and the paper's 5-of-9
// jamming guarantee.
#include "channel/interference.h"

#include <gtest/gtest.h>

#include "channel/testbed_channel.h"

namespace thinair::channel {
namespace {

TEST(Interference, NinePatternsCycle) {
  const InterferenceSchedule sched{CellGrid{}};
  for (std::size_t s = 0; s < 18; ++s) {
    const NoisePattern p = sched.pattern(s);
    EXPECT_EQ(p.row, (s % 9) / 3);
    EXPECT_EQ(p.col, (s % 9) % 3);
  }
}

TEST(Interference, JammedIffRowOrColumnMatches) {
  const NoisePattern p{1, 2};
  EXPECT_TRUE(InterferenceSchedule::is_jammed(CellIndex{3}, p));   // row 1
  EXPECT_TRUE(InterferenceSchedule::is_jammed(CellIndex{2}, p));   // col 2
  EXPECT_TRUE(InterferenceSchedule::is_jammed(CellIndex{5}, p));   // both
  EXPECT_FALSE(InterferenceSchedule::is_jammed(CellIndex{0}, p));
  EXPECT_FALSE(InterferenceSchedule::is_jammed(CellIndex{7}, p));
}

TEST(Interference, EveryCellJammedInExactlyFivePatterns) {
  // The design guarantee of Sec. 4: wherever Eve stands, 5 of the 9
  // rotating patterns jam her cell (3 row + 3 column - 1 overlap).
  for (std::size_t c = 0; c < CellGrid::kCells; ++c)
    EXPECT_EQ(InterferenceSchedule::patterns_jamming(CellIndex{c}), 5u)
        << "cell " << c;
}

TEST(Interference, AntennasSitOnPerimeter) {
  const CellGrid grid;
  const InterferenceSchedule sched{grid};
  for (std::size_t r = 0; r < 3; ++r) {
    const auto ants = sched.row_antennas(r);
    EXPECT_DOUBLE_EQ(ants[0].x, 0.0);
    EXPECT_DOUBLE_EQ(ants[1].x, grid.side());
  }
  for (std::size_t c = 0; c < 3; ++c) {
    const auto ants = sched.col_antennas(c);
    EXPECT_DOUBLE_EQ(ants[0].y, 0.0);
    EXPECT_DOUBLE_EQ(ants[1].y, grid.side());
  }
}

TEST(Interference, InBeamPowerExceedsSidelobe) {
  const CellGrid grid;
  const InterferenceSchedule sched{grid};
  const LogDistancePathLoss pl;
  // Slot 0 jams row 0 and column 0. A receiver in cell 0 (in both beams)
  // must see far more interference than one in cell 8 (in neither).
  const double in_beam = sched.interference_mw(grid.center(CellIndex{0}), 0, pl);
  const double out_beam = sched.interference_mw(grid.center(CellIndex{8}), 0, pl);
  EXPECT_GT(in_beam, out_beam * 10.0);
}

TEST(TestbedChannel, JammedCellsLoseMorePackets) {
  TestbedChannel ch;
  ch.place_in_cell(packet::NodeId{0}, CellIndex{4});  // tx in centre
  ch.place_in_cell(packet::NodeId{1}, CellIndex{0});
  // Slot 0 jams row 0 + col 0: cell 0 jammed. Slot 8 jams row 2 + col 2:
  // cell 0 clear.
  const double per_jam =
      ch.erasure_probability({packet::NodeId{0}, packet::NodeId{1}, 0});
  const double per_clear =
      ch.erasure_probability({packet::NodeId{0}, packet::NodeId{1}, 8});
  EXPECT_GT(per_jam, 0.7);
  EXPECT_LT(per_clear, 0.3);
}

TEST(TestbedChannel, InterferenceDisabledMeansCleanChannel) {
  TestbedChannel::Config cfg;
  cfg.interference_enabled = false;
  TestbedChannel ch(cfg);
  ch.place_in_cell(packet::NodeId{0}, CellIndex{4});
  ch.place_in_cell(packet::NodeId{1}, CellIndex{0});
  for (std::size_t s = 0; s < 9; ++s)
    EXPECT_LE(ch.erasure_probability({packet::NodeId{0}, packet::NodeId{1}, s}),
              cfg.sinr.floor + 1e-9);
}

TEST(TestbedChannel, UnplacedNodeThrows) {
  TestbedChannel ch;
  ch.place_in_cell(packet::NodeId{0}, CellIndex{4});
  EXPECT_THROW(
      (void)ch.erasure_probability({packet::NodeId{0}, packet::NodeId{9}, 0}),
      std::out_of_range);
}

TEST(TestbedChannel, SinrSymmetricInDistance) {
  TestbedChannel ch;
  ch.place_in_cell(packet::NodeId{0}, CellIndex{0});
  ch.place_in_cell(packet::NodeId{1}, CellIndex{8});
  // Same distance both ways; with no jamming difference for the diagonal
  // pair in slot 4 (jams row 1 / col 1 — neither corner), SINR matches.
  EXPECT_NEAR(ch.link_sinr_db(packet::NodeId{0}, packet::NodeId{1}, 4),
              ch.link_sinr_db(packet::NodeId{1}, packet::NodeId{0}, 4), 1e-9);
}

}  // namespace
}  // namespace thinair::channel
