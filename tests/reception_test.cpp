// Reception table: reports, set operations and the class partition.
#include "core/reception.h"

#include <gtest/gtest.h>

namespace thinair::core {
namespace {

packet::NodeId T(std::uint16_t v) { return packet::NodeId{v}; }

ReceptionTable small_table() {
  // Alice = 0; receivers 1, 2, 3; universe of 6 x-packets.
  ReceptionTable t(T(0), {T(1), T(2), T(3)}, 6);
  t.set_received(T(1), {0, 1, 2, 3});
  t.set_received(T(2), {2, 3, 4});
  t.set_received(T(3), {3, 4, 5});
  return t;
}

TEST(ReceptionTable, BasicAccessors) {
  const ReceptionTable t = small_table();
  EXPECT_EQ(t.universe(), 6u);
  EXPECT_EQ(t.alice(), T(0));
  EXPECT_EQ(t.received_count(T(1)), 4u);
  EXPECT_TRUE(t.has(T(2), 4));
  EXPECT_FALSE(t.has(T(2), 0));
  EXPECT_EQ(t.received(T(3)), (std::vector<std::uint32_t>{3, 4, 5}));
}

TEST(ReceptionTable, AliceAmongReceiversThrows) {
  EXPECT_THROW(ReceptionTable(T(0), {T(0), T(1)}, 4), std::invalid_argument);
}

TEST(ReceptionTable, UnknownReceiverThrows) {
  const ReceptionTable t = small_table();
  EXPECT_THROW((void)t.received(T(9)), std::out_of_range);
}

TEST(ReceptionTable, IndexOutOfUniverseThrows) {
  ReceptionTable t(T(0), {T(1)}, 4);
  EXPECT_THROW(t.set_received(T(1), {4}), std::out_of_range);
}

TEST(ReceptionTable, SetReceivedOverwrites) {
  ReceptionTable t(T(0), {T(1)}, 4);
  t.set_received(T(1), {0, 1});
  t.set_received(T(1), {3});
  EXPECT_EQ(t.received(T(1)), (std::vector<std::uint32_t>{3}));
}

TEST(ReceptionTable, MissedByCountsSetDifference) {
  const ReceptionTable t = small_table();
  // R1 = {0,1,2,3}, R2 = {2,3,4}: R1 \ R2 = {0,1}.
  EXPECT_EQ(t.missed_by(T(1), T(2)), 2u);
  EXPECT_EQ(t.missed_by(T(2), T(1)), 1u);  // {4}
  EXPECT_EQ(t.missed_by(T(1), T(1)), 0u);
}

TEST(ReceptionTable, ClassesPartitionReceivedPackets) {
  const ReceptionTable t = small_table();
  const auto classes = t.classes();
  // Patterns: x0,x1 -> {1}; x2 -> {1,2}; x3 -> {1,2,3}; x4 -> {2,3};
  // x5 -> {3}. Five classes, and every received packet appears once.
  EXPECT_EQ(classes.size(), 5u);
  std::size_t total = 0;
  for (const auto& c : classes) total += c.indices.size();
  EXPECT_EQ(total, 6u);
}

TEST(ReceptionTable, ClassesSortedMostSharedFirst) {
  const ReceptionTable t = small_table();
  const auto classes = t.classes();
  for (std::size_t i = 1; i < classes.size(); ++i)
    EXPECT_GE(classes[i - 1].members.size(), classes[i].members.size());
  EXPECT_EQ(classes.front().members.size(), 3u);
  EXPECT_EQ(classes.front().indices, (std::vector<std::uint32_t>{3}));
}

TEST(ReceptionTable, ClassesExcludeUnreceivedPackets) {
  ReceptionTable t(T(0), {T(1), T(2)}, 5);
  t.set_received(T(1), {0});
  t.set_received(T(2), {0});
  const auto classes = t.classes();
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0].indices, (std::vector<std::uint32_t>{0}));
}

TEST(ReceptionTable, EmptyReportsYieldNoClasses) {
  ReceptionTable t(T(0), {T(1), T(2)}, 8);
  t.set_received(T(1), {});
  t.set_received(T(2), {});
  EXPECT_TRUE(t.classes().empty());
}

TEST(ReceptionTable, LargeUniverseBitmapWords) {
  ReceptionTable t(T(0), {T(1)}, 200);
  std::vector<std::uint32_t> all;
  for (std::uint32_t i = 0; i < 200; i += 3) all.push_back(i);
  t.set_received(T(1), all);
  EXPECT_EQ(t.received_count(T(1)), all.size());
  EXPECT_TRUE(t.has(T(1), 198));
  EXPECT_FALSE(t.has(T(1), 199));
}

}  // namespace
}  // namespace thinair::core
