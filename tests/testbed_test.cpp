// Testbed scenario: layout, placement enumeration, experiments and sweeps.
#include <gtest/gtest.h>

#include "testbed/experiment.h"
#include "testbed/placements.h"
#include "testbed/sweep.h"

namespace thinair::testbed {
namespace {

TEST(Layout, PlacementValidity) {
  Placement p;
  p.terminal_cells = {channel::CellIndex{0}, channel::CellIndex{1}};
  p.eve_cell = channel::CellIndex{2};
  EXPECT_TRUE(p.valid());

  p.eve_cell = channel::CellIndex{1};  // collides with a terminal
  EXPECT_FALSE(p.valid());

  p.eve_cell = channel::CellIndex{12};  // off the grid
  EXPECT_FALSE(p.valid());

  p.eve_cell = channel::CellIndex{2};
  p.terminal_cells.push_back(channel::CellIndex{0});  // duplicate terminal
  EXPECT_FALSE(p.valid());
}

TEST(Layout, BuildChannelPlacesEveryNode) {
  Placement p;
  p.terminal_cells = {channel::CellIndex{0}, channel::CellIndex{4}};
  p.eve_cell = channel::CellIndex{8};
  const channel::TestbedChannel ch = build_channel(p);
  EXPECT_EQ(ch.cell_of(terminal_node(0)).value, 0u);
  EXPECT_EQ(ch.cell_of(terminal_node(1)).value, 4u);
  EXPECT_EQ(ch.cell_of(eve_node(2)).value, 8u);
}

TEST(Placements, CountsMatchBinomials) {
  EXPECT_EQ(placement_count(3), 9u * 56u);
  EXPECT_EQ(placement_count(8), 9u * 1u);
  EXPECT_THROW((void)placement_count(0), std::invalid_argument);
  EXPECT_THROW((void)placement_count(9), std::invalid_argument);
}

TEST(Placements, EnumerationIsCompleteAndValid) {
  for (std::size_t n : {3u, 8u}) {
    const auto all = enumerate_placements(n);
    EXPECT_EQ(all.size(), placement_count(n));
    for (const Placement& p : all) {
      EXPECT_TRUE(p.valid());
      EXPECT_EQ(p.n_terminals(), n);
    }
  }
}

TEST(Placements, EnumerationHasNoDuplicates) {
  const auto all = enumerate_placements(4);
  std::set<std::string> seen;
  for (const Placement& p : all) {
    std::string key = std::to_string(p.eve_cell.value) + ":";
    for (auto c : p.terminal_cells) key += std::to_string(c.value) + ",";
    EXPECT_TRUE(seen.insert(key).second) << key;
  }
}

TEST(Placements, SamplingCapsAndCoversEveCells) {
  const auto sample = sample_placements(3, 18);
  EXPECT_EQ(sample.size(), 18u);
  std::set<std::size_t> eve_cells;
  for (const Placement& p : sample) eve_cells.insert(p.eve_cell.value);
  EXPECT_GE(eve_cells.size(), 5u);  // spread across the grid
  // max_count 0 or large returns everything.
  EXPECT_EQ(sample_placements(8, 0).size(), 9u);
  EXPECT_EQ(sample_placements(8, 100).size(), 9u);
}

TEST(Experiment, DeterministicGivenSeed) {
  ExperimentConfig cfg;
  cfg.placement = enumerate_placements(3)[10];
  cfg.session.x_packets_per_round = 45;
  cfg.seed = 5;
  const ExperimentResult a = run_experiment(cfg);
  const ExperimentResult b = run_experiment(cfg);
  EXPECT_EQ(a.session.secret, b.session.secret);
  EXPECT_DOUBLE_EQ(a.reliability(), b.reliability());
}

TEST(Experiment, InvalidPlacementThrows) {
  ExperimentConfig cfg;
  cfg.placement.terminal_cells = {channel::CellIndex{0},
                                  channel::CellIndex{0}};
  cfg.placement.eve_cell = channel::CellIndex{1};
  EXPECT_THROW((void)run_experiment(cfg), std::invalid_argument);
}

TEST(Experiment, FillsOccupiedCellsForGeometry) {
  ExperimentConfig cfg;
  cfg.placement = enumerate_placements(4)[0];
  cfg.session.x_packets_per_round = 45;
  cfg.seed = 6;
  // Defaults to the geometry estimator, which requires occupied cells —
  // run_experiment must fill them from the placement.
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_EQ(r.n_terminals, 4u);
  EXPECT_EQ(r.session.rounds.size(), 4u);  // full rotation
}

TEST(Experiment, UnicastVariantRuns) {
  ExperimentConfig cfg;
  cfg.placement = enumerate_placements(4)[3];
  cfg.session.x_packets_per_round = 45;
  cfg.seed = 7;
  const ExperimentResult r = run_unicast_experiment(cfg);
  EXPECT_EQ(r.n_terminals, 4u);
  EXPECT_GE(r.reliability(), 0.0);
  EXPECT_LE(r.reliability(), 1.0);
}

TEST(Sweep, ProducesOneRowPerGroupSize) {
  SweepConfig cfg;
  cfg.n_min = 3;
  cfg.n_max = 5;
  cfg.max_placements = 4;
  cfg.session.x_packets_per_round = 45;
  const SweepResult r = run_sweep(cfg);
  ASSERT_EQ(r.rows.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(r.rows[i].n, 3 + i);
    EXPECT_EQ(r.rows[i].experiments, 4u);
    EXPECT_EQ(r.rows[i].reliability.count(), 4u);
    EXPECT_GE(r.rows[i].rel_min(), 0.0);
    EXPECT_LE(r.rows[i].rel_p50(), 1.0);
    EXPECT_GE(r.rows[i].rel_p95(), r.rows[i].rel_min() - 1e-12);
  }
}

TEST(Sweep, ValidatesRange) {
  SweepConfig cfg;
  cfg.n_min = 1;
  EXPECT_THROW((void)run_sweep(cfg), std::invalid_argument);
  cfg.n_min = 5;
  cfg.n_max = 4;
  EXPECT_THROW((void)run_sweep(cfg), std::invalid_argument);
}

TEST(Sweep, GeometryEstimatorIsSafeAcrossPlacements) {
  // The library's soundness claim, measured: the geometry bound keeps
  // median reliability at 1.0.
  SweepConfig cfg;
  cfg.n_min = 4;
  cfg.n_max = 4;
  cfg.max_placements = 10;
  cfg.session.x_packets_per_round = 90;
  cfg.seed = 99;
  const SweepResult r = run_sweep(cfg);
  EXPECT_DOUBLE_EQ(r.rows[0].rel_p50(), 1.0);
  EXPECT_GE(r.rows[0].rel_min(), 0.8);
}

TEST(Sweep, InterferenceOffKillsTheSecretRate) {
  SweepConfig on, off;
  on.n_min = on.n_max = 4;
  on.max_placements = 4;
  on.session.x_packets_per_round = 45;
  off = on;
  off.channel.interference_enabled = false;
  const double rate_on = run_sweep(on).rows[0].secret_rate_bps.mean();
  const double rate_off = run_sweep(off).rows[0].secret_rate_bps.mean();
  EXPECT_GT(rate_on, 10.0 * (rate_off + 1.0));
}

}  // namespace
}  // namespace thinair::testbed
