// The scenario runtime: seed derivation, plan expansion, the
// work-stealing pool, result reordering, and the engine's headline
// guarantee — a sweep's NDJSON is byte-identical at any thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <set>
#include <sstream>
#include <thread>

#include "channel/rng.h"
#include "runtime/engine.h"
#include "runtime/scenarios.h"
#include "runtime/seed.h"
#include "runtime/task_pool.h"
#include "testbed/sweep.h"

namespace thinair::runtime {
namespace {

// ----------------------------------------------------------------- seeds

TEST(Seed, DeterministicAndDistinct) {
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(derive_seed(42, i));
  EXPECT_EQ(seen.size(), 1000u);  // no collisions across indices
  EXPECT_NE(derive_seed(1, 5), derive_seed(2, 5));  // master matters
  EXPECT_NE(derive_seed2(1, 5), derive_seed(1, 5));  // second stream differs
}

TEST(Seed, IndependentOfNeighbours) {
  // Adjacent indices must not produce correlated low bits (SplitMix's
  // whole point). Crude check: parity of the seeds is not constant.
  int ones = 0;
  for (std::uint64_t i = 0; i < 64; ++i)
    ones += static_cast<int>(derive_seed(7, i) & 1);
  EXPECT_GT(ones, 16);
  EXPECT_LT(ones, 48);
}

// ------------------------------------------------------------------ plan

TEST(SweepPlan, CartesianExpansion) {
  SweepPlan plan;
  plan.add_axis("a", {1, 2, 3});
  plan.add_axis("b", {10, 20});
  ASSERT_EQ(plan.size(), 6u);
  // Last axis fastest-varying.
  EXPECT_EQ(plan.at(0), (Params{{"a", 1}, {"b", 10}}));
  EXPECT_EQ(plan.at(1), (Params{{"a", 1}, {"b", 20}}));
  EXPECT_EQ(plan.at(5), (Params{{"a", 3}, {"b", 20}}));
  EXPECT_THROW((void)plan.at(6), std::out_of_range);
}

TEST(SweepPlan, ExplicitPoints) {
  SweepPlan plan;
  plan.add_point({{"x", 1}});
  plan.add_point({{"x", 5}, {"y", 2}});
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_DOUBLE_EQ(param(plan.at(1), "y"), 2.0);
  EXPECT_THROW(plan.add_axis("z", {1}), std::logic_error);
}

TEST(SweepPlan, RejectsBadAxes) {
  SweepPlan plan;
  EXPECT_THROW(plan.add_axis("a", {}), std::invalid_argument);
  plan.add_axis("a", {1});
  EXPECT_THROW(plan.add_axis("a", {2}), std::invalid_argument);
  EXPECT_THROW(plan.add_point({{"x", 1}}), std::logic_error);
  EXPECT_THROW((void)param(plan.at(0), "missing"), std::out_of_range);
  EXPECT_EQ(SweepPlan{}.size(), 0u);
}

// ------------------------------------------------------------------ pool

TEST(TaskPool, RunsEveryTask) {
  std::atomic<int> count{0};
  {
    TaskPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);
    for (int i = 0; i < 500; ++i)
      pool.submit([&count] { count.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 500);
  }
}

TEST(TaskPool, StealsAcrossWorkers) {
  // All real work lands in a few long tasks; with 4 workers and
  // round-robin dealing, finishing 64 tasks promptly requires stealing.
  std::atomic<int> count{0};
  std::set<std::thread::id> tids;
  std::mutex mu;
  {
    TaskPool pool(4);
    for (int i = 0; i < 64; ++i)
      pool.submit([&] {
        {
          std::lock_guard lock(mu);
          tids.insert(std::this_thread::get_id());
        }
        count.fetch_add(1);
      });
    pool.wait_idle();
  }
  EXPECT_EQ(count.load(), 64);
  EXPECT_GE(tids.size(), 1u);  // >1 on multicore machines; 1-core CI is ok
}

TEST(TaskPool, ForEachIndexCoversEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(1000);
  TaskPool pool(3);
  pool.for_each_index(hits.size(),
                      [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskPool, ForEachIndexRunsOnCallerToo) {
  // Jam the only worker behind a gate task: every index must then be
  // swept by the calling thread itself. The last index opens the gate
  // so for_each_index's internal drain can complete.
  TaskPool pool(1);
  std::atomic<bool> release{false};
  pool.submit([&] {
    while (!release.load()) std::this_thread::yield();
  });
  std::atomic<int> count{0};
  std::set<std::thread::id> tids;
  std::mutex mu;
  pool.for_each_index(64, [&](std::size_t) {
    {
      std::lock_guard lock(mu);
      tids.insert(std::this_thread::get_id());
    }
    if (count.fetch_add(1) + 1 == 64) release.store(true);
  });
  EXPECT_EQ(count.load(), 64);
  ASSERT_EQ(tids.size(), 1u);
  EXPECT_TRUE(tids.contains(std::this_thread::get_id()));
}

TEST(TaskPool, ForEachIndexHandlesEmptyAndSmallRanges) {
  TaskPool pool(4);
  std::atomic<int> count{0};
  pool.for_each_index(0, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  pool.for_each_index(2, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 2);
}

TEST(TaskPool, SubmitFromInsideATask) {
  std::atomic<int> count{0};
  TaskPool pool(2);
  pool.submit([&] {
    for (int i = 0; i < 10; ++i) pool.submit([&count] { count.fetch_add(1); });
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 10);
}

// ------------------------------------------------------------------ sink

TEST(ResultSink, ReordersOutOfOrderPushes) {
  std::ostringstream out;
  ResultSink sink("s", &out);
  const auto spec = [](std::size_t i) {
    return CaseSpec{i, derive_seed(1, i), {{"i", static_cast<double>(i)}}};
  };
  const auto result = [](double v) {
    return CaseResult{"g", {{"m", v}}};
  };
  sink.push(spec(2), result(2));
  EXPECT_TRUE(out.str().empty());  // waiting for 0 and 1
  sink.push(spec(0), result(0));
  sink.push(spec(1), result(1));
  sink.finish();
  EXPECT_EQ(sink.cases(), 3u);

  std::string line;
  std::istringstream lines(out.str());
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_NE(line.find("\"index\":" + std::to_string(i)), std::string::npos);
  }
  ASSERT_EQ(sink.summaries().size(), 1u);
  EXPECT_EQ(sink.summaries()[0].cases, 3u);
  EXPECT_DOUBLE_EQ(sink.summaries()[0].metrics.at("m").mean(), 1.0);
}

TEST(ResultSink, RejectsDuplicatesAndGaps) {
  {
    // Duplicate pushes are detected on the drainer (push itself is a
    // wait-free enqueue) and surface when finish() joins it.
    ResultSink sink("s", nullptr);
    sink.push(CaseSpec{0, 0, {}}, CaseResult{});
    sink.push(CaseSpec{0, 0, {}}, CaseResult{});
    EXPECT_THROW(sink.finish(), std::logic_error);
  }
  {
    ResultSink sink("s", nullptr);
    sink.push(CaseSpec{0, 0, {}}, CaseResult{});
    sink.push(CaseSpec{2, 0, {}}, CaseResult{});
    EXPECT_THROW(sink.finish(), std::logic_error);  // case 1 missing
  }
}

TEST(ResultSink, DestructionWithoutFinishIsClean) {
  // The error-unwind path: a sink abandoned mid-run (engine rethrowing a
  // case exception) must stop its drainer without touching the stream.
  std::ostringstream out;
  {
    ResultSink sink("s", &out);
    sink.push(CaseSpec{1, 0, {}}, CaseResult{});  // case 0 never arrives
  }
  EXPECT_TRUE(out.str().empty());
}

TEST(ResultSink, StressRandomPushOrderMatchesSingleThreadedBytes) {
  // Thousands of cases pushed from several threads in shuffled order
  // must produce byte-identical NDJSON (and summaries) to an in-order
  // single-threaded reference push — the determinism contract exercised
  // directly at the sink layer, through the rings and the drainer.
  constexpr std::size_t kCases = 4000;
  constexpr std::size_t kThreads = 4;
  const auto spec = [](std::size_t i) {
    return CaseSpec{i, derive_seed(3, i),
                    {{"i", static_cast<double>(i)}, {"x", 0.5 * i}}};
  };
  const auto result = [](std::size_t i) {
    return CaseResult{i % 3 == 0 ? "a" : "b",
                      {{"m", 1.0 / (1.0 + i)}, {"n", static_cast<double>(i)}}};
  };

  std::ostringstream ref_out;
  ResultSink ref("stress", &ref_out);
  for (std::size_t i = 0; i < kCases; ++i) ref.push(spec(i), result(i));
  ref.finish();

  std::ostringstream out;
  ResultSink sink("stress", &out);
  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      // Each thread owns a disjoint residue class, pushed in an order
      // shuffled by a thread-specific RNG.
      std::vector<std::size_t> mine;
      for (std::size_t i = t; i < kCases; i += kThreads) mine.push_back(i);
      std::mt19937 shuffle_rng(static_cast<unsigned>(17 + t));
      std::shuffle(mine.begin(), mine.end(), shuffle_rng);
      for (const std::size_t i : mine) sink.push(spec(i), result(i));
    });
  }
  for (std::thread& p : producers) p.join();
  sink.finish();

  EXPECT_EQ(sink.cases(), kCases);
  EXPECT_EQ(out.str(), ref_out.str());
  ASSERT_EQ(sink.summaries().size(), ref.summaries().size());
  for (std::size_t g = 0; g < sink.summaries().size(); ++g) {
    EXPECT_EQ(sink.summaries()[g].group, ref.summaries()[g].group);
    EXPECT_EQ(sink.summaries()[g].cases, ref.summaries()[g].cases);
  }
}

TEST(ResultSink, FormatDoubleRoundTrips) {
  EXPECT_EQ(format_double(0.25), "0.25");
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(std::stod(format_double(1.0 / 3.0)), 1.0 / 3.0);
}

// ---------------------------------------------------------------- engine

// A cheap synthetic scenario: every case draws from its own seeded Rng,
// so any scheduling leak between cases would change the output.
Scenario synthetic_scenario(std::size_t cases) {
  Scenario s;
  s.name = "synthetic";
  s.description = "test";
  s.plan = [cases] {
    SweepPlan plan;
    std::vector<double> is(cases);
    for (std::size_t i = 0; i < cases; ++i) is[i] = static_cast<double>(i);
    plan.add_axis("i", is);
    return plan;
  };
  s.run = [](const CaseSpec& spec) {
    channel::Rng rng(spec.seed);
    CaseResult result;
    result.group = spec.index % 2 == 0 ? "even" : "odd";
    result.metrics = {{"u", rng.next_double()},
                      {"v", static_cast<double>(rng.next_below(1000))}};
    return result;
  };
  return s;
}

std::string run_to_ndjson(const Scenario& s, std::size_t threads) {
  std::ostringstream out;
  ResultSink sink(s.name, &out);
  RunOptions options;
  options.threads = threads;
  options.master_seed = 99;
  const RunStats stats = run_scenario(s, options, sink);
  EXPECT_EQ(stats.cases, sink.cases());
  EXPECT_EQ(stats.threads, threads);
  return out.str();
}

TEST(Engine, NdjsonIsByteIdenticalAcrossThreadCounts) {
  const Scenario s = synthetic_scenario(64);
  const std::string one = run_to_ndjson(s, 1);
  EXPECT_EQ(std::count(one.begin(), one.end(), '\n'), 64);
  EXPECT_EQ(one, run_to_ndjson(s, 8));
  EXPECT_EQ(one, run_to_ndjson(s, 3));
}

TEST(RunStats, CasesPerSecond) {
  RunStats stats;
  stats.cases = 10;
  stats.wall_s = 2.0;
  EXPECT_DOUBLE_EQ(stats.cases_per_s(), 5.0);
  stats.wall_s = 0.0;  // degenerate clock resolution: no division by zero
  EXPECT_DOUBLE_EQ(stats.cases_per_s(), 0.0);
}

TEST(Engine, LimitTruncatesThePlan) {
  const Scenario s = synthetic_scenario(64);
  ResultSink sink(s.name, nullptr);
  RunOptions options;
  options.limit = 5;
  const RunStats stats = run_scenario(s, options, sink);
  EXPECT_EQ(stats.cases, 5u);
  EXPECT_EQ(sink.cases(), 5u);
}

TEST(Engine, CaseExceptionsPropagate) {
  Scenario s = synthetic_scenario(8);
  s.run = [](const CaseSpec& spec) -> CaseResult {
    if (spec.index == 3) throw std::runtime_error("boom");
    return CaseResult{};
  };
  for (const std::size_t threads : {1u, 4u}) {
    ResultSink sink(s.name, nullptr);
    RunOptions options;
    options.threads = threads;
    EXPECT_THROW((void)run_scenario(s, options, sink), std::runtime_error);
  }
}

TEST(Engine, CollectReturnsCasesInIndexOrder) {
  const Scenario s = synthetic_scenario(16);
  RunOptions options;
  options.threads = 4;
  options.master_seed = 7;
  const auto cases = run_scenario_collect(s, options);
  ASSERT_EQ(cases.size(), 16u);
  for (std::size_t i = 0; i < cases.size(); ++i) {
    EXPECT_EQ(cases[i].first.index, i);
    EXPECT_EQ(cases[i].first.seed, derive_seed(7, i));
    EXPECT_DOUBLE_EQ(param(cases[i].first.params, "i"),
                     static_cast<double>(i));
  }
}

// -------------------------------------------------------------- registry

TEST(Registry, BuiltinsRegisterOnceAndList) {
  register_builtin_scenarios();
  register_builtin_scenarios();  // idempotent
  ScenarioRegistry& registry = ScenarioRegistry::instance();
  ASSERT_NE(registry.find(kFig1Scenario), nullptr);
  ASSERT_NE(registry.find(kFig2Scenario), nullptr);
  ASSERT_NE(registry.find(kHeadlineScenario), nullptr);
  EXPECT_EQ(registry.find("nope"), nullptr);
  const auto all = registry.list();
  EXPECT_GE(all.size(), 3u);
  for (std::size_t i = 1; i < all.size(); ++i)
    EXPECT_LT(all[i - 1]->name, all[i]->name);  // sorted
  EXPECT_THROW(registry.add(Scenario{}), std::invalid_argument);
  Scenario dup;
  dup.name = kFig1Scenario;
  dup.plan = [] { return SweepPlan{}; };
  dup.run = [](const CaseSpec&) { return CaseResult{}; };
  EXPECT_THROW(registry.add(std::move(dup)), std::invalid_argument);
}

TEST(Registry, BuiltinPlansAreWellFormed) {
  register_builtin_scenarios();
  const ScenarioRegistry& registry = ScenarioRegistry::instance();
  EXPECT_EQ(registry.find(kFig1Scenario)->plan().size(), 36u);  // 4 n x 9 p
  EXPECT_EQ(registry.find(kHeadlineScenario)->plan().size(), 1971u);
  EXPECT_GT(registry.find(kFig2Scenario)->plan().size(), 200u);
}

// ------------------------------------------------- end-to-end determinism

TEST(Determinism, TestbedSweepMatchesAcrossThreadCounts) {
  testbed::SweepConfig cfg;
  cfg.n_min = 3;
  cfg.n_max = 4;
  cfg.max_placements = 6;
  cfg.session.x_packets_per_round = 45;
  cfg.seed = 11;

  cfg.threads = 1;
  const testbed::SweepResult one = run_sweep(cfg);
  cfg.threads = 8;
  const testbed::SweepResult eight = run_sweep(cfg);

  ASSERT_EQ(one.rows.size(), eight.rows.size());
  for (std::size_t i = 0; i < one.rows.size(); ++i) {
    EXPECT_EQ(one.rows[i].n, eight.rows[i].n);
    EXPECT_EQ(one.rows[i].experiments, eight.rows[i].experiments);
    // Sample-for-sample identical, not just equal in aggregate.
    EXPECT_EQ(one.rows[i].reliability.samples(),
              eight.rows[i].reliability.samples());
    EXPECT_EQ(one.rows[i].efficiency.samples(),
              eight.rows[i].efficiency.samples());
  }
}

TEST(Determinism, Fig1ScenarioNdjsonStableUnderThreads) {
  register_builtin_scenarios();
  const Scenario* fig1 = ScenarioRegistry::instance().find(kFig1Scenario);
  ASSERT_NE(fig1, nullptr);

  const auto run = [&](std::size_t threads) {
    std::ostringstream out;
    ResultSink sink(fig1->name, &out);
    RunOptions options;
    options.threads = threads;
    options.master_seed = 5;
    options.limit = 6;  // keep the unit test cheap
    (void)run_scenario(*fig1, options, sink);
    return out.str();
  };
  const std::string one = run(1);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, run(8));
}

}  // namespace
}  // namespace thinair::runtime
