// The retargetable GF(2^8) kernel layer (gf/kernels.h) and the payload
// arena (packet/arena.h): every kernel must produce byte-identical output
// for every coefficient, length and alignment — that equivalence is what
// lets the runtime promise kernel-independent NDJSON — and the arena must
// hand out stable, aligned, reusable spans.
#include "gf/kernels.h"

#include <gtest/gtest.h>

#include <tuple>

#include <algorithm>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "channel/rng.h"
#include "gf/encode.h"
#include "gf/gather.h"
#include "packet/arena.h"
#include "packet/combination.h"
#include "runtime/engine.h"
#include "runtime/scenarios.h"

namespace thinair {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  channel::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = rng.next_byte();
  return out;
}

// Restores the dispatched kernel after a test that overrides it.
struct KernelGuard {
  ~KernelGuard() { std::ignore = gf::set_active_kernel("auto"); }
};

TEST(Kernels, RegistryHasScalarAndPortable) {
  ASSERT_GE(gf::all_kernels().size(), 2u);
  EXPECT_STREQ(gf::all_kernels()[0]->name, "scalar");
  EXPECT_STREQ(gf::all_kernels()[1]->name, "portable");
  EXPECT_FALSE(gf::set_active_kernel("no-such-kernel"));
  EXPECT_TRUE(gf::set_active_kernel("scalar"));
  KernelGuard guard;
  EXPECT_STREQ(gf::active_kernel().name, "scalar");
  EXPECT_TRUE(gf::set_active_kernel("auto"));
}

// The satellite differential test: all 256 coefficients x a size ladder
// spanning 0..8 KiB x unaligned offsets, each kernel against the scalar
// reference, for all three vtable entries.
TEST(Kernels, DifferentialEquivalenceAllCoefficients) {
  const gf::Kernel& ref = gf::scalar_kernel();
  constexpr std::size_t kSizes[] = {0,  1,  2,   3,   7,   8,    9,   15,
                                    16, 17, 31,  32,  33,  63,   64,  65,
                                    100, 255, 256, 1000, 4096, 8192};
  constexpr std::size_t kOffsets[] = {0, 1, 3};
  constexpr std::size_t kMax = 8192 + 8;

  const std::vector<std::uint8_t> x_base = random_bytes(kMax, 11);
  const std::vector<std::uint8_t> y_base = random_bytes(kMax, 22);

  for (const gf::Kernel* k : gf::all_kernels()) {
    if (k == &ref) continue;
    SCOPED_TRACE(k->name);
    for (unsigned c = 0; c < 256; ++c) {
      const auto cc = static_cast<std::uint8_t>(c);
      for (const std::size_t n : kSizes) {
        // Rotate through offsets with c so the full cross product is
        // covered over the coefficient loop without tripling the runtime.
        const std::size_t off = kOffsets[c % std::size(kOffsets)];
        const std::uint8_t* x = x_base.data() + off;

        std::vector<std::uint8_t> want(y_base.begin(), y_base.end());
        std::vector<std::uint8_t> got(y_base.begin(), y_base.end());

        ref.axpy(cc, x, want.data() + off, n);
        k->axpy(cc, x, got.data() + off, n);
        ASSERT_EQ(want, got) << "axpy c=" << c << " n=" << n;

        ref.mul_row(cc, x, want.data() + off, n);
        k->mul_row(cc, x, got.data() + off, n);
        ASSERT_EQ(want, got) << "mul_row c=" << c << " n=" << n;

        // In-place mul_row (the gf::scale path).
        ref.mul_row(cc, want.data() + off, want.data() + off, n);
        k->mul_row(cc, got.data() + off, got.data() + off, n);
        ASSERT_EQ(want, got) << "mul_row in-place c=" << c << " n=" << n;

        ref.xor_into(x, want.data() + off, n);
        k->xor_into(x, got.data() + off, n);
        ASSERT_EQ(want, got) << "xor_into n=" << n;
      }
    }
  }
}

// The fused multi-row satellite test: for every kernel, mad_multi over
// k in 1..kMaxFusedRows rows must be byte-identical to k repeated axpy
// calls, across a 0..8 KiB size ladder, unaligned offsets, and
// coefficient patterns that include 0 (skipped rows) and 1 (xor rows).
TEST(Kernels, MadMultiEqualsRepeatedAxpy) {
  const gf::Kernel& ref = gf::scalar_kernel();
  constexpr std::size_t kSizes[] = {0,  1,   7,   8,    15,  16,  17,
                                    31, 32,  33,  63,   64,  65,  100,
                                    255, 256, 1000, 4096, 8192};
  constexpr std::size_t kOffsets[] = {0, 1, 3};
  constexpr std::size_t kMax = 8192 + 8;
  const std::vector<std::uint8_t> x_base = random_bytes(kMax, 55);

  channel::Rng coeff_rng(66);
  for (const gf::Kernel* kernel : gf::all_kernels()) {
    SCOPED_TRACE(kernel->name);
    for (std::size_t k = 1; k <= gf::kMaxFusedRows; ++k) {
      for (const std::size_t n : kSizes) {
        for (const std::size_t off : kOffsets) {
          std::uint8_t c[gf::kMaxFusedRows];
          for (std::size_t r = 0; r < k; ++r) {
            // Exercise the special values alongside random coefficients.
            const std::uint8_t roll = coeff_rng.next_byte();
            c[r] = roll < 32 ? std::uint8_t{0}
                   : roll < 64 ? std::uint8_t{1}
                               : coeff_rng.next_byte();
          }
          std::vector<std::vector<std::uint8_t>> want, got;
          std::uint8_t* ys[gf::kMaxFusedRows];
          for (std::size_t r = 0; r < k; ++r) {
            want.push_back(random_bytes(kMax, 100 + r));
            got.push_back(want.back());
          }
          const std::uint8_t* x = x_base.data() + off;
          for (std::size_t r = 0; r < k; ++r)
            ref.axpy(c[r], x, want[r].data() + off, n);
          for (std::size_t r = 0; r < k; ++r) ys[r] = got[r].data() + off;
          kernel->mad_multi(c, k, x, ys, n);
          ASSERT_EQ(want, got) << "k=" << k << " n=" << n << " off=" << off;
        }
      }
    }
  }
}

// The gather-direction differential satellite: for every kernel,
// dot_multi over k in 1..kMaxFusedRows inputs must be byte-identical to
// k repeated axpy calls into the shared output, across a 0..8 KiB size
// ladder, unaligned offsets, and coefficient patterns that include 0
// (skipped inputs) and 1 (xor inputs).
TEST(Kernels, DotMultiEqualsRepeatedAxpy) {
  const gf::Kernel& ref = gf::scalar_kernel();
  constexpr std::size_t kSizes[] = {0,  1,   7,   8,    15,  16,  17,
                                    31, 32,  33,  63,   64,  65,  100,
                                    255, 256, 1000, 4096, 8192};
  constexpr std::size_t kOffsets[] = {0, 1, 3};
  constexpr std::size_t kMax = 8192 + 8;

  channel::Rng coeff_rng(77);
  for (const gf::Kernel* kernel : gf::all_kernels()) {
    SCOPED_TRACE(kernel->name);
    for (std::size_t k = 1; k <= gf::kMaxFusedRows; ++k) {
      for (const std::size_t n : kSizes) {
        for (const std::size_t off : kOffsets) {
          std::uint8_t c[gf::kMaxFusedRows];
          for (std::size_t r = 0; r < k; ++r) {
            // Exercise the special values alongside random coefficients.
            const std::uint8_t roll = coeff_rng.next_byte();
            c[r] = roll < 32 ? std::uint8_t{0}
                   : roll < 64 ? std::uint8_t{1}
                               : coeff_rng.next_byte();
          }
          std::vector<std::vector<std::uint8_t>> ins;
          const std::uint8_t* xs[gf::kMaxFusedRows];
          for (std::size_t r = 0; r < k; ++r) {
            ins.push_back(random_bytes(kMax, 200 + r));
            xs[r] = ins.back().data() + off;
          }
          std::vector<std::uint8_t> want = random_bytes(kMax, 99);
          std::vector<std::uint8_t> got = want;
          for (std::size_t r = 0; r < k; ++r)
            ref.axpy(c[r], xs[r], want.data() + off, n);
          kernel->dot_multi(c, k, xs, got.data() + off, n);
          ASSERT_EQ(want, got) << "k=" << k << " n=" << n << " off=" << off;
        }
      }
    }
  }
}

// An all-zero coefficient block must leave the output untouched and must
// never dereference the inputs (empty-span convention of reconstruct_y).
TEST(Kernels, DotMultiAllZeroCoefficientsLeaveOutputUntouched) {
  const std::size_t n = 1024;
  std::uint8_t c[gf::kMaxFusedRows] = {};  // all zero
  const std::uint8_t* xs[gf::kMaxFusedRows] = {};  // null: must not be read
  for (const gf::Kernel* kernel : gf::all_kernels()) {
    SCOPED_TRACE(kernel->name);
    const std::vector<std::uint8_t> before = random_bytes(n, 5);
    std::vector<std::uint8_t> y = before;
    kernel->dot_multi(c, gf::kMaxFusedRows, xs, y.data(), n);
    EXPECT_EQ(y, before);
  }
}

// dot_multi must also tile batches larger than kMaxFusedRows on its own.
TEST(Kernels, DotMultiTilesLargeBatches) {
  const std::size_t k = 2 * gf::kMaxFusedRows + 3;
  const std::size_t n = 777;
  std::vector<std::uint8_t> c;
  for (std::size_t r = 0; r < k; ++r)
    c.push_back(static_cast<std::uint8_t>(r * 13 % 256));
  std::vector<std::vector<std::uint8_t>> ins;
  std::vector<const std::uint8_t*> xs(k);
  for (std::size_t r = 0; r < k; ++r) {
    ins.push_back(random_bytes(n, 400 + r));
    xs[r] = ins.back().data();
  }
  for (const gf::Kernel* kernel : gf::all_kernels()) {
    SCOPED_TRACE(kernel->name);
    std::vector<std::uint8_t> want = random_bytes(n, 17);
    std::vector<std::uint8_t> got = want;
    for (std::size_t r = 0; r < k; ++r)
      gf::scalar_kernel().axpy(c[r], xs[r], want.data(), n);
    kernel->dot_multi(c.data(), k, xs.data(), got.data(), n);
    EXPECT_EQ(want, got);
  }
}

// mad_multi must also tile batches larger than kMaxFusedRows on its own.
TEST(Kernels, MadMultiTilesLargeBatches) {
  const std::size_t k = 2 * gf::kMaxFusedRows + 3;
  const std::size_t n = 777;
  const std::vector<std::uint8_t> x = random_bytes(n, 7);
  std::vector<std::uint8_t> c;
  for (std::size_t r = 0; r < k; ++r)
    c.push_back(static_cast<std::uint8_t>(r * 13 % 256));
  for (const gf::Kernel* kernel : gf::all_kernels()) {
    SCOPED_TRACE(kernel->name);
    std::vector<std::vector<std::uint8_t>> want, got;
    std::vector<std::uint8_t*> ys(k);
    for (std::size_t r = 0; r < k; ++r) {
      want.push_back(random_bytes(n, 300 + r));
      got.push_back(want.back());
      gf::scalar_kernel().axpy(c[r], x.data(), want[r].data(), n);
    }
    for (std::size_t r = 0; r < k; ++r) ys[r] = got[r].data();
    kernel->mad_multi(c.data(), k, x.data(), ys.data(), n);
    EXPECT_EQ(want, got);
  }
}

// gf::encode vs the naive row-by-row axpy evaluation, on a matrix with
// zero rows, zero columns and dense blocks mixed.
TEST(Encode, MatchesRowByRowAxpy) {
  packet::PayloadArena arena;
  channel::Rng rng(88);
  const std::size_t rows = 21, cols = 13, payload = 300;
  gf::Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      if (rng.bernoulli(0.7)) m.set(i, j, gf::GF256(rng.next_byte()));
  std::vector<std::vector<std::uint8_t>> in_data;
  std::vector<packet::ConstByteSpan> ins;
  for (std::size_t j = 0; j < cols; ++j) {
    in_data.push_back(random_bytes(payload, 500 + j));
    ins.push_back(in_data.back());
  }

  std::vector<std::vector<std::uint8_t>> want(
      rows, std::vector<std::uint8_t>(payload, 0));
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      gf::axpy(m.at(i, j), ins[j].data(), want[i].data(), payload);

  const std::vector<packet::ConstByteSpan> got =
      gf::encode(m, ins, payload, arena);
  ASSERT_EQ(got.size(), rows);
  for (std::size_t i = 0; i < rows; ++i)
    EXPECT_TRUE(std::equal(want[i].begin(), want[i].end(), got[i].begin(),
                           got[i].end()))
        << "row " << i;

  // Shape and size mismatches are rejected.
  std::vector<packet::ConstByteSpan> short_ins(ins.begin(), ins.end() - 1);
  EXPECT_THROW((void)gf::encode(m, short_ins, payload, arena),
               std::invalid_argument);
  std::vector<packet::ConstByteSpan> bad = ins;
  bad[0] = bad[0].subspan(1);
  EXPECT_THROW((void)gf::encode(m, bad, payload, arena),
               std::invalid_argument);
}

// gf::gather vs the naive coefficient-by-coefficient axpy evaluation,
// under every registered kernel (the wrapper dispatches through the
// active kernel's dot_multi), with zero coefficients over empty spans.
TEST(Gather, MatchesRepeatedAxpyUnderEveryKernel) {
  packet::PayloadArena arena;
  channel::Rng rng(123);
  const std::size_t cols = 37, payload = 600;  // > one kMaxFusedRows tile
  std::vector<std::uint8_t> coeffs(cols);
  for (std::size_t j = 0; j < cols; ++j)
    coeffs[j] = rng.bernoulli(0.25) ? std::uint8_t{0} : rng.next_byte();

  std::vector<std::vector<std::uint8_t>> in_data(cols);
  std::vector<std::span<const std::uint8_t>> ins(cols);
  for (std::size_t j = 0; j < cols; ++j) {
    if (coeffs[j] == 0) continue;  // dead inputs stay empty spans
    in_data[j] = random_bytes(payload, 700 + j);
    ins[j] = in_data[j];
  }

  std::vector<std::uint8_t> want(payload, 0);
  for (std::size_t j = 0; j < cols; ++j)
    if (coeffs[j] != 0)
      gf::scalar_kernel().axpy(coeffs[j], ins[j].data(), want.data(),
                               payload);

  KernelGuard guard;
  for (const gf::Kernel* k : gf::all_kernels()) {
    SCOPED_TRACE(k->name);
    ASSERT_TRUE(gf::set_active_kernel(k->name));
    // Accumulating form seeds the output (the repair-path shape)...
    std::vector<std::uint8_t> seeded = random_bytes(payload, 3);
    std::vector<std::uint8_t> got = seeded;
    gf::gather(coeffs, ins, got);
    for (std::size_t i = 0; i < payload; ++i)
      ASSERT_EQ(got[i], want[i] ^ seeded[i]) << i;
    // ... and the arena form allocates a zeroed output itself.
    const std::span<const std::uint8_t> fresh =
        gf::gather(coeffs, ins, payload, arena);
    EXPECT_TRUE(std::equal(want.begin(), want.end(), fresh.begin(),
                           fresh.end()));
  }

  // Shape and size mismatches are rejected.
  std::vector<std::uint8_t> out(payload, 0);
  std::vector<std::span<const std::uint8_t>> short_ins(ins.begin(),
                                                       ins.end() - 1);
  EXPECT_THROW(gf::gather(coeffs, short_ins, out), std::invalid_argument);
  std::vector<std::span<const std::uint8_t>> bad = ins;
  for (std::size_t j = 0; j < cols; ++j)
    if (coeffs[j] != 0) {
      bad[j] = bad[j].subspan(1);
      break;
    }
  EXPECT_THROW(gf::gather(coeffs, bad, out), std::invalid_argument);
  EXPECT_THROW((void)gf::gather(coeffs, ins, 0, arena),
               std::invalid_argument);
}

TEST(Kernels, AxpyMatchesFieldDefinition) {
  // Spot-check the kernels against scalar field arithmetic directly.
  const std::vector<std::uint8_t> x = random_bytes(257, 33);
  for (const gf::Kernel* k : gf::all_kernels()) {
    SCOPED_TRACE(k->name);
    std::vector<std::uint8_t> y = random_bytes(257, 44);
    const std::vector<std::uint8_t> y0 = y;
    const gf::GF256 c{0x8E};
    k->axpy(c.value(), x.data(), y.data(), y.size());
    for (std::size_t i = 0; i < y.size(); ++i) {
      const gf::GF256 want = gf::GF256(y0[i]) + c * gf::GF256(x[i]);
      ASSERT_EQ(y[i], want.value()) << i;
    }
  }
}

TEST(PayloadArena, SpansAreStableAlignedAndZeroed) {
  packet::PayloadArena arena(/*block_bytes=*/64);  // force block growth
  std::vector<packet::ByteSpan> spans;
  for (std::size_t i = 0; i < 100; ++i) {
    packet::ByteSpan s = arena.alloc(24);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(s.data()) % 16, 0u);
    for (std::uint8_t b : s) EXPECT_EQ(b, 0);
    std::memset(s.data(), static_cast<int>(i + 1), s.size());
    spans.push_back(s);
  }
  // Growth must not have moved earlier spans.
  for (std::size_t i = 0; i < spans.size(); ++i)
    for (std::uint8_t b : spans[i]) ASSERT_EQ(b, i + 1);
  EXPECT_EQ(arena.bytes_allocated(), 100u * 24u);
}

TEST(PayloadArena, ResetReusesBlocks) {
  packet::PayloadArena arena(1 << 12);
  for (std::size_t i = 0; i < 64; ++i) (void)arena.alloc(100);
  const std::size_t cap = arena.capacity();
  EXPECT_GT(cap, 0u);
  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  for (std::size_t round = 0; round < 4; ++round) {
    arena.reset();
    for (std::size_t i = 0; i < 64; ++i) (void)arena.alloc(100);
    EXPECT_EQ(arena.capacity(), cap);  // steady state: no new blocks
  }
}

TEST(PayloadArena, OddSizedBlocksAndTailAllocsStayInBounds) {
  // Regression: an alignment bump near a block tail used to underflow the
  // remaining-space computation and hand out an out-of-bounds span.
  packet::PayloadArena arena(100);  // block size not a multiple of 16
  std::vector<std::pair<const std::uint8_t*, std::size_t>> got;
  const auto pound = [&] {
    for (std::size_t i = 0; i < 200; ++i) {
      const packet::ByteSpan s = arena.alloc(1 + (i % 29));
      std::memset(s.data(), 0xAB, s.size());  // ASan guards the bounds
      got.emplace_back(s.data(), s.size());
    }
  };
  pound();
  // Oversize block (n % 16 != 0), then reuse everything after reset.
  (void)arena.alloc(1003);
  arena.reset();
  got.clear();
  pound();
  // No two live spans may overlap.
  std::sort(got.begin(), got.end());
  for (std::size_t i = 1; i < got.size(); ++i)
    ASSERT_LE(reinterpret_cast<std::uintptr_t>(got[i - 1].first) +
                  got[i - 1].second,
              reinterpret_cast<std::uintptr_t>(got[i].first));
}

TEST(PayloadArena, AllocRowsHandsOutDistinctZeroedSpans) {
  packet::PayloadArena arena;
  const std::vector<packet::ByteSpan> rows = arena.alloc_rows(9, 100);
  ASSERT_EQ(rows.size(), 9u);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].size(), 100u);
    for (std::uint8_t b : rows[i]) ASSERT_EQ(b, 0);
    std::memset(rows[i].data(), static_cast<int>(i + 1), rows[i].size());
  }
  for (std::size_t i = 0; i < rows.size(); ++i)
    for (std::uint8_t b : rows[i]) ASSERT_EQ(b, i + 1);  // no overlap
  EXPECT_TRUE(arena.alloc_rows(0, 8).empty());
}

TEST(PayloadArena, MarkRewindReclaims) {
  packet::PayloadArena arena(1 << 12);
  (void)arena.alloc(100);
  const packet::PayloadArena::Mark m = arena.mark();
  const packet::ByteSpan a = arena.alloc(100);
  const std::uint8_t* where = a.data();
  arena.rewind(m);
  const packet::ByteSpan b = arena.alloc(100);
  EXPECT_EQ(b.data(), where);  // storage after the mark was reclaimed
  const packet::ByteSpan big = arena.alloc(1 << 14);  // oversize block path
  EXPECT_EQ(big.size(), std::size_t{1} << 14);
  EXPECT_EQ(arena.copy(packet::ConstByteSpan{}).size(), 0u);
  EXPECT_EQ(arena.alloc(0).size(), 0u);
}

TEST(Combination, ArenaApplyMatchesVectorApply) {
  packet::PayloadArena arena;
  const std::vector<packet::Payload> inputs = {
      random_bytes(32, 1), random_bytes(32, 2), random_bytes(32, 3)};
  std::vector<packet::ConstByteSpan> views(inputs.begin(), inputs.end());

  packet::Combination c;
  c.add(0, gf::GF256{3});
  c.add(2, gf::GF256{0x7F});

  const packet::Payload want = c.apply(inputs, 32);
  const packet::ConstByteSpan got =
      c.apply(std::span<const packet::ConstByteSpan>(views), 32, arena);
  EXPECT_TRUE(std::equal(want.begin(), want.end(), got.begin(), got.end()));

  // The zero-length fix: empty payloads are skipped without touching
  // in.data(), including inputs that are themselves empty vectors.
  const std::vector<packet::Payload> empty_inputs(3);
  EXPECT_EQ(c.apply(empty_inputs, 0), packet::Payload{});
  EXPECT_TRUE(c.apply(std::span<const packet::ConstByteSpan>(
                          std::vector<packet::ConstByteSpan>(3)),
                      0, arena)
                  .empty());
}

// End-to-end byte-identity: a full sweep through medium, sessions, pool,
// phases and sink must emit identical NDJSON under every kernel. This is
// the in-process version of the CI cross-kernel cmp.
TEST(Kernels, SweepNdjsonIsKernelInvariant) {
  runtime::register_builtin_scenarios();
  const runtime::Scenario* scenario =
      runtime::ScenarioRegistry::instance().find(runtime::kFig1Scenario);
  ASSERT_NE(scenario, nullptr);

  KernelGuard guard;
  std::string reference;
  for (const gf::Kernel* k : gf::all_kernels()) {
    SCOPED_TRACE(k->name);
    ASSERT_TRUE(gf::set_active_kernel(k->name));
    std::ostringstream ndjson;
    runtime::ResultSink sink(scenario->name, &ndjson);
    runtime::RunOptions options;
    options.threads = 2;
    options.master_seed = 7;
    options.limit = 4;
    runtime::run_scenario(*scenario, options, sink);
    if (reference.empty()) {
      reference = ndjson.str();
      ASSERT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(ndjson.str(), reference);
    }
  }
}

}  // namespace
}  // namespace thinair
