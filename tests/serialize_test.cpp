// Wire-format round trips for the control messages the efficiency metric
// charges.
#include "packet/serialize.h"

#include <gtest/gtest.h>

namespace thinair::packet {
namespace {

TEST(Serialize, ReportRoundTrip) {
  const ReceptionReport r{10, {0, 3, 5, 9}};
  const Payload bytes = encode(r);
  const auto back = decode_report(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, r);
}

TEST(Serialize, ReportEmptyAndFull) {
  const ReceptionReport empty{8, {}};
  EXPECT_EQ(decode_report(encode(empty)), empty);

  ReceptionReport full{8, {}};
  for (std::uint32_t i = 0; i < 8; ++i) full.received.push_back(i);
  EXPECT_EQ(decode_report(encode(full)), full);
}

TEST(Serialize, ReportSizeIsBitmap) {
  const ReceptionReport r{90, {1, 2, 3}};
  // 4 bytes universe + ceil(90/8) = 12 bytes bitmap.
  EXPECT_EQ(encode(r).size(), 4u + 12u);
}

TEST(Serialize, ReportRejectsTruncated) {
  const Payload bytes = encode(ReceptionReport{16, {1}});
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const Payload trunc(bytes.begin(),
                        bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(decode_report(trunc).has_value()) << "cut=" << cut;
  }
}

TEST(Serialize, ReportRejectsTrailingGarbage) {
  Payload bytes = encode(ReceptionReport{16, {1}});
  bytes.push_back(0xFF);
  EXPECT_FALSE(decode_report(bytes).has_value());
}

TEST(Serialize, AnnouncementRoundTrip) {
  Announcement a;
  Combination c1;
  c1.add(4, gf::GF256(0x53));
  c1.add(900, gf::GF256(0x01));
  Combination c2;
  c2.add(0, gf::GF256(0xFF));
  a.combinations = {c1, c2};

  const Payload bytes = encode(a);
  const auto back = decode_announcement(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, a);
}

TEST(Serialize, AnnouncementEmpty) {
  const Announcement a;
  const auto back = decode_announcement(encode(a));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->combinations.empty());
}

TEST(Serialize, AnnouncementSizeMatchesCombinationEstimate) {
  Announcement a;
  Combination c;
  c.add(1, gf::kOne);
  c.add(2, gf::kOne);
  c.add(3, gf::kOne);
  a.combinations = {c};
  EXPECT_EQ(encode(a).size(), 2u + c.serialized_size());
}

TEST(Serialize, AnnouncementRejectsTruncated) {
  Announcement a;
  Combination c;
  c.add(7, gf::GF256(2));
  a.combinations = {c, c};
  const Payload bytes = encode(a);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const Payload trunc(bytes.begin(),
                        bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(decode_announcement(trunc).has_value()) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace thinair::packet
