// Pooled session lifecycle: the reset contract under churn.
//
// runtime::ObjectPool promises that acquiring a recycled object is
// observably identical to constructing a fresh one — the property that
// lets the engine, the daemon and the churn bench recycle session state
// without perturbing a single output byte. This suite holds the pools to
// that contract directly: pooled-vs-fresh result equality, run()/reset()
// lifecycle semantics, a 10k-session churn over rotating configs and
// failure paths, arena watermark trimming, and (outside the sanitizers)
// zero net allocation once the pools are warm.
#include "runtime/object_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "channel/erasure.h"
#include "channel/rng.h"
#include "core/session.h"
#include "core/unicast.h"
#include "net/medium.h"
#include "runtime/engine.h"
#include "runtime/result_sink.h"
#include "runtime/scenarios.h"
#include "runtime/seed.h"

// The sanitizers interpose the global allocator (and deliberately never
// reuse addresses), so the counting check only runs in plain builds.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define THINAIR_ALLOC_COUNTING 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define THINAIR_ALLOC_COUNTING 0
#else
#define THINAIR_ALLOC_COUNTING 1
#endif
#else
#define THINAIR_ALLOC_COUNTING 1
#endif

// Live-allocation counter for the zero-net-allocation check. A relaxed
// atomic: the pooled loops below are single-threaded, but gtest and the
// runtime may allocate on other threads. At global scope so the
// replacement operator new/delete at the bottom of the file can see it.
std::atomic<std::int64_t> g_live_allocs{0};

namespace thinair {
namespace {

// ---------------------------------------------------------------- pool core

struct Counted {
  int value = 0;
  bool poisoned = false;
  explicit Counted(int v) : value(v) {}
  void reset(int v) {
    if (v < 0) throw std::invalid_argument("Counted: negative");
    value = v;
    poisoned = false;
  }
};

TEST(ObjectPool, AcquireConstructsThenRecycles) {
  runtime::ObjectPool<Counted> pool;
  Counted* a = pool.acquire(1);
  EXPECT_EQ(a->value, 1);
  EXPECT_EQ(pool.size(), 1u);
  pool.release(a);
  EXPECT_EQ(pool.available(), 1u);

  Counted* b = pool.acquire(2);
  EXPECT_EQ(b, a);  // recycled, not rebuilt
  EXPECT_EQ(b->value, 2);
  EXPECT_EQ(pool.size(), 1u);

  const runtime::PoolCounters c = pool.stats().snapshot();
  EXPECT_EQ(c.acquired, 2u);
  EXPECT_EQ(c.constructed, 1u);
  EXPECT_EQ(c.released, 1u);
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.5);
  pool.release(b);
}

TEST(ObjectPool, ResetThrowReturnsObjectToFreeList) {
  runtime::ObjectPool<Counted> pool;
  pool.release(pool.acquire(1));
  ASSERT_EQ(pool.available(), 1u);

  EXPECT_THROW((void)pool.acquire(-1), std::invalid_argument);
  // The failed acquire kept the object pooled and resettable...
  EXPECT_EQ(pool.available(), 1u);
  EXPECT_EQ(pool.stats().snapshot().reset_failures, 1u);
  // ...so the next valid acquire still recycles it.
  Counted* again = pool.acquire(7);
  EXPECT_EQ(again->value, 7);
  EXPECT_EQ(pool.size(), 1u);
  pool.release(again);
}

TEST(ObjectPool, HandleReleasesOnScopeExit) {
  runtime::ObjectPool<Counted> pool;
  {
    const auto h = pool.acquire_scoped(3);
    EXPECT_EQ(h->value, 3);
    EXPECT_EQ(pool.available(), 0u);
  }
  EXPECT_EQ(pool.available(), 1u);
}

TEST(ArenaPool, ReleaseTrimsToWatermark) {
  runtime::ArenaPool pool;
  // One fat epoch: far past the 64 KiB block minimum.
  {
    const auto arena = pool.acquire_scoped();
    for (int i = 0; i < 8; ++i) (void)arena->alloc(std::size_t{64} << 10);
  }
  const std::size_t fat = pool.capacity();
  EXPECT_GT(fat, std::size_t{256} << 10);

  // Small epochs decay the watermark; the release-time trim must hand the
  // fat blocks back instead of pinning the spike capacity forever.
  for (int epoch = 0; epoch < 32; ++epoch) {
    const auto arena = pool.acquire_scoped();
    (void)arena->alloc(512);
  }
  EXPECT_LT(pool.capacity(), fat);
  EXPECT_GT(pool.trimmed_bytes(), 0u);
}

// ---------------------------------------------------------- session reuse

struct Net {
  channel::IidErasure channel;
  net::SimMedium medium;

  Net(double p, std::size_t n, std::uint64_t seed)
      : channel(p), medium(channel, channel::Rng(seed)) {
    for (std::size_t i = 0; i < n; ++i)
      medium.attach(packet::NodeId{static_cast<std::uint16_t>(i)},
                    net::Role::kTerminal);
    medium.attach(packet::NodeId{static_cast<std::uint16_t>(n)},
                  net::Role::kEavesdropper);
  }
};

core::SessionConfig small_config(std::size_t n_packets = 12,
                                 std::size_t payload = 16,
                                 std::size_t rounds = 1) {
  core::SessionConfig cfg;
  cfg.x_packets_per_round = n_packets;
  cfg.payload_bytes = payload;
  cfg.rounds = rounds;
  cfg.estimator.kind = core::EstimatorKind::kLooFraction;
  return cfg;
}

void expect_same_result(const core::SessionResult& got,
                        const core::SessionResult& want,
                        const std::string& context) {
  EXPECT_EQ(got.secret, want.secret) << context;
  EXPECT_EQ(got.duration_s, want.duration_s) << context;
  ASSERT_EQ(got.rounds.size(), want.rounds.size()) << context;
  for (std::size_t i = 0; i < got.rounds.size(); ++i) {
    EXPECT_EQ(got.rounds[i].pool_size, want.rounds[i].pool_size) << context;
    EXPECT_EQ(got.rounds[i].secret_bits, want.rounds[i].secret_bits)
        << context;
    EXPECT_EQ(got.rounds[i].data_packets, want.rounds[i].data_packets)
        << context;
  }
  EXPECT_EQ(got.ledger.total_bits(), want.ledger.total_bits()) << context;
}

// The heart of the contract: a session recycled through the pool derives
// exactly the bytes a freshly constructed session would, across changing
// media, seeds and configs.
TEST(SessionPool, PooledGroupSessionMatchesFreshConstruction) {
  runtime::ObjectPool<core::GroupSecretSession> pool;
  for (std::uint64_t i = 0; i < 8; ++i) {
    const std::uint64_t seed = runtime::derive_seed(99, i);
    const core::SessionConfig cfg =
        small_config(8 + 4 * (i % 3), 8 << (i % 2));

    Net pooled_net(0.3, 3, seed);
    const auto pooled = pool.acquire_scoped(pooled_net.medium, cfg);
    const core::SessionResult got = pooled->run();

    Net fresh_net(0.3, 3, seed);
    core::GroupSecretSession fresh(fresh_net.medium, cfg);
    expect_same_result(got, fresh.run(), "cycle " + std::to_string(i));
  }
  EXPECT_EQ(pool.size(), 1u);  // one object served every cycle
}

TEST(SessionPool, PooledUnicastSessionMatchesFreshConstruction) {
  runtime::ObjectPool<core::UnicastSession> pool;
  for (std::uint64_t i = 0; i < 4; ++i) {
    const std::uint64_t seed = runtime::derive_seed(7, i);
    Net pooled_net(0.4, 4, seed);
    const auto pooled = pool.acquire_scoped(pooled_net.medium, small_config());
    const core::SessionResult got = pooled->run();

    Net fresh_net(0.4, 4, seed);
    core::UnicastSession fresh(fresh_net.medium, small_config());
    expect_same_result(got, fresh.run(), "cycle " + std::to_string(i));
  }
  EXPECT_EQ(pool.size(), 1u);
}

// Repeated run() continues the same lifecycle (round counter and virtual
// clock advance); reset() — not construction — is what restarts it.
TEST(SessionPool, RunContinuesAndResetRestarts) {
  Net net(0.5, 3, 1234);
  core::GroupSecretSession session(net.medium, small_config(16, 16, 2));
  const core::SessionResult first = session.run();
  const core::SessionResult second = session.run();

  // The second run consumed later rounds of the same virtual clock: fresh
  // erasure draws, continuing round ids — not a replay of the first.
  EXPECT_NE(first.secret, second.secret);

  // reset() on an identical fresh medium restores first-run bytes.
  Net net2(0.5, 3, 1234);
  session.reset(net2.medium, small_config(16, 16, 2));
  expect_same_result(session.run(), first, "after reset");
}

TEST(SessionPool, ResetValidatesBeforeMutating) {
  Net net(0.5, 3, 55);
  core::GroupSecretSession session(net.medium, small_config());
  const core::SessionResult want = [&] {
    Net probe(0.5, 3, 55);
    core::GroupSecretSession fresh(probe.medium, small_config());
    return fresh.run();
  }();

  core::SessionConfig bad = small_config();
  bad.x_packets_per_round = 0;
  EXPECT_THROW(session.reset(net.medium, bad), std::invalid_argument);

  // The failed reset left the session fully usable with its prior state.
  const core::SessionResult got = session.run();
  expect_same_result(got, want, "run after failed reset");
}

// ------------------------------------------------------------- 10k churn

TEST(SessionPool, TenThousandSessionChurn) {
  constexpr std::size_t kCycles = 10'000;
  channel::IidErasure channel(0.25);

  runtime::WorkerPools pools;
  std::size_t with_secret = 0;
  std::size_t failures = 0;

  for (std::size_t i = 0; i < kCycles; ++i) {
    const std::uint64_t seed = runtime::derive_seed(2026, i);
    const std::size_t n_terminals = 2 + i % 3;

    net::SimMedium medium(channel, channel::Rng(seed));
    for (std::size_t t = 0; t < n_terminals; ++t)
      medium.attach(packet::NodeId{static_cast<std::uint16_t>(t)},
                    net::Role::kTerminal);
    medium.attach(packet::NodeId{static_cast<std::uint16_t>(n_terminals)},
                  net::Role::kEavesdropper);

    core::SessionConfig cfg =
        small_config(4 + 4 * (i % 3), std::size_t{8} << (i % 3));
    const auto arena = pools.arenas.acquire_scoped();
    cfg.arena = arena.get();

    // Every 97th cycle exercises the failure path: an invalid config must
    // throw out of acquire without leaking the pooled slot.
    if (i % 97 == 96) {
      core::SessionConfig bad = cfg;
      bad.payload_bytes = 0;
      const std::size_t free_before = pools.group_sessions.available();
      EXPECT_THROW((void)pools.group_sessions.acquire(medium, bad),
                   std::invalid_argument);
      EXPECT_EQ(pools.group_sessions.available(), free_before);
      ++failures;
      continue;
    }

    if (i % 5 == 4) {
      const auto session = pools.unicast_sessions.acquire_scoped(medium, cfg);
      if (!session->run().secret.empty()) ++with_secret;
    } else {
      const auto session = pools.group_sessions.acquire_scoped(medium, cfg);
      if (!session->run().secret.empty()) ++with_secret;
    }
  }

  EXPECT_GT(with_secret, 0u);
  EXPECT_GT(failures, 0u);

  // Serial churn needs exactly one object per pool; everything else is
  // free-list reuse.
  EXPECT_EQ(pools.group_sessions.size(), 1u);
  EXPECT_EQ(pools.unicast_sessions.size(), 1u);
  EXPECT_EQ(pools.arenas.size(), 1u);
  EXPECT_GE(pools.group_sessions.stats().snapshot().hit_rate(), 0.99);
  EXPECT_GE(pools.arenas.stats().snapshot().hit_rate(), 0.99);
  EXPECT_EQ(pools.group_sessions.stats().snapshot().reset_failures,
            failures);
}

// ------------------------------------------------- zero net allocation

TEST(SessionPool, WarmChurnIsAllocationFree) {
#if THINAIR_ALLOC_COUNTING
  channel::IidErasure channel(0.25);
  runtime::WorkerPools pools;

  const auto cycle = [&](std::size_t i) {
    net::SimMedium medium(channel, channel::Rng(runtime::derive_seed(3, i)));
    for (std::uint16_t t = 0; t < 3; ++t)
      medium.attach(packet::NodeId{t}, net::Role::kTerminal);
    medium.attach(packet::NodeId{3}, net::Role::kEavesdropper);
    core::SessionConfig cfg = small_config(8 + 4 * (i % 2), 16);
    const auto arena = pools.arenas.acquire_scoped();
    cfg.arena = arena.get();
    const auto session = pools.group_sessions.acquire_scoped(medium, cfg);
    (void)session->run();
  };

  // Warm up over every config variant the measured loop will use, plus
  // slack for lazily grown containers to reach steady-state capacity.
  for (std::size_t i = 0; i < 64; ++i) cycle(i);

  const std::int64_t before = g_live_allocs.load(std::memory_order_relaxed);
  for (std::size_t i = 64; i < 1064; ++i) cycle(i);
  const std::int64_t after = g_live_allocs.load(std::memory_order_relaxed);

  // Transient (alloc, free) pairs inside a cycle are fine — the medium is
  // rebuilt per cycle by design. What pooling forbids is *net* growth.
  EXPECT_LE(after - before, 0)
      << "warm pooled churn leaked " << (after - before)
      << " live allocations over 1000 cycles";
#else
  GTEST_SKIP() << "allocation counting is disabled under the sanitizers";
#endif
}

// ------------------------------------------- engine reuse, byte equality

// worker_pools() is thread_local, so a second engine run on the same
// threads genuinely recycles the first run's session objects. The NDJSON
// must not notice.
TEST(SessionPool, EngineRunTwiceSameBytes) {
  runtime::register_builtin_scenarios();
  const runtime::Scenario* scenario =
      runtime::ScenarioRegistry::instance().find("headline");
  ASSERT_NE(scenario, nullptr);

  const auto run_once = [&] {
    std::ostringstream ndjson;
    runtime::ResultSink sink(scenario->name, &ndjson);
    runtime::RunOptions options;
    options.threads = 1;
    options.master_seed = 42;
    options.limit = 6;
    runtime::run_scenario(*scenario, options, sink);
    return ndjson.str();
  };

  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace thinair

#if THINAIR_ALLOC_COUNTING
// Counting overloads of the global allocator, defined after all other
// code so nothing above accidentally depends on them being active.
void* operator new(std::size_t n) {
  g_live_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept {
  if (p != nullptr) {
    g_live_allocs.fetch_sub(1, std::memory_order_relaxed);
    std::free(p);
  }
}

void operator delete(void* p, std::size_t) noexcept { operator delete(p); }

void* operator new[](std::size_t n) { return operator new(n); }

void operator delete[](void* p) noexcept { operator delete(p); }

void operator delete[](void* p, std::size_t) noexcept { operator delete(p); }
#endif
