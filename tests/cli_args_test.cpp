// The strict CLI numeric parsers (util/parse.h): the regression suite for
// the `--threads -1` wraparound bug. strtoull-style leniency — skipped
// whitespace, sign prefixes, trailing garbage, silent 64-bit wraparound —
// must all be rejected.
#include "util/parse.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace thinair {
namespace {

TEST(ParseU64, AcceptsPlainDecimal) {
  std::uint64_t v = 99;
  EXPECT_TRUE(util::parse_u64("0", v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(util::parse_u64("42", v));
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(util::parse_u64("007", v));
  EXPECT_EQ(v, 7u);
  EXPECT_TRUE(util::parse_u64("18446744073709551615", v));  // 2^64 - 1
  EXPECT_EQ(v, std::numeric_limits<std::uint64_t>::max());
}

TEST(ParseU64, RejectsSignsTheWraparoundBug) {
  // strtoull parses "-1" as 2^64 - 1; that must never get through.
  std::uint64_t v = 123;
  EXPECT_FALSE(util::parse_u64("-1", v));
  EXPECT_FALSE(util::parse_u64("-0", v));
  EXPECT_FALSE(util::parse_u64("+1", v));
  EXPECT_FALSE(util::parse_u64("+", v));
  EXPECT_FALSE(util::parse_u64("-", v));
  EXPECT_EQ(v, 123u) << "failed parse must not clobber the output";
}

TEST(ParseU64, RejectsGarbageWhitespaceAndEmpty) {
  std::uint64_t v = 0;
  EXPECT_FALSE(util::parse_u64("", v));
  EXPECT_FALSE(util::parse_u64("banana", v));
  EXPECT_FALSE(util::parse_u64("12x", v));
  EXPECT_FALSE(util::parse_u64("x12", v));
  EXPECT_FALSE(util::parse_u64(" 12", v));
  EXPECT_FALSE(util::parse_u64("12 ", v));
  EXPECT_FALSE(util::parse_u64("1 2", v));
  EXPECT_FALSE(util::parse_u64("0x10", v));
  EXPECT_FALSE(util::parse_u64("1e3", v));
  EXPECT_FALSE(util::parse_u64("1.0", v));
}

TEST(ParseU64, RejectsOverflow) {
  std::uint64_t v = 7;
  EXPECT_FALSE(util::parse_u64("18446744073709551616", v));  // 2^64
  EXPECT_FALSE(util::parse_u64("99999999999999999999", v));
  EXPECT_FALSE(util::parse_u64("340282366920938463463374607431768211456", v));
  EXPECT_EQ(v, 7u);
}

TEST(ParseU64In, EnforcesInclusiveBounds) {
  std::uint64_t v = 9;
  EXPECT_TRUE(util::parse_u64_in("0", 0, 1024, v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(util::parse_u64_in("1024", 0, 1024, v));
  EXPECT_EQ(v, 1024u);
  EXPECT_FALSE(util::parse_u64_in("1025", 0, 1024, v));
  EXPECT_FALSE(util::parse_u64_in("2", 3, 10, v));
  EXPECT_FALSE(util::parse_u64_in("-1", 0, 1024, v));
  EXPECT_FALSE(util::parse_u64_in("18446744073709551615", 0, 1024, v));
  EXPECT_EQ(v, 1024u) << "failed parse must not clobber the output";
}

}  // namespace
}  // namespace thinair
