// The y-pool: allocation invariants, reconstruction audiences and the
// secrecy property against the oracle adversary.
#include "core/pool.h"

#include <gtest/gtest.h>

#include <tuple>

#include "channel/rng.h"
#include "gf/linear_space.h"

namespace thinair::core {
namespace {

packet::NodeId T(std::uint16_t v) { return packet::NodeId{v}; }

ReceptionTable paper_like_table() {
  // Alice = 0; Bob = 1; Calvin = 2; 9 x-packets.
  ReceptionTable t(T(0), {T(1), T(2)}, 9);
  t.set_received(T(1), {0, 1, 2, 3, 4, 5});
  t.set_received(T(2), {0, 1, 2, 6, 7});
  return t;
}

TEST(YPool, CountsAndKnownIndicesFollowAudience) {
  YPool pool(4, {T(1), T(2)});
  packet::Combination c;
  c.add(0, gf::kOne);
  net::NodeSet both;
  both.insert(T(1));
  both.insert(T(2));
  pool.add({c, both});
  net::NodeSet only1;
  only1.insert(T(1));
  pool.add({c, only1});

  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.count_for(T(1)), 2u);
  EXPECT_EQ(pool.count_for(T(2)), 1u);
  EXPECT_EQ(pool.known_indices(T(2)), (std::vector<std::size_t>{0}));
  EXPECT_EQ(pool.group_secret_size(), 1u);
}

TEST(YPool, AddValidatesUniverse) {
  YPool pool(2, {T(1)});
  packet::Combination c;
  c.add(5, gf::kOne);
  EXPECT_THROW(pool.add({c, {}}), std::out_of_range);
}

TEST(YPool, RowsMatchCombinations) {
  YPool pool(3, {T(1)});
  packet::Combination c;
  c.add(0, gf::GF256(3));
  c.add(2, gf::GF256(7));
  pool.add({c, {}});
  const gf::Matrix rows = pool.rows();
  EXPECT_EQ(rows.at(0, 0), gf::GF256(3));
  EXPECT_EQ(rows.at(0, 1), gf::kZero);
  EXPECT_EQ(rows.at(0, 2), gf::GF256(7));
}

TEST(BuildPool, OracleAllocationMatchesEveMisses) {
  const ReceptionTable t = paper_like_table();
  // Eve received {0, 1, 6}: misses {2,3,4,5} of R1 and {2,7} of R2.
  const OracleEstimator est({0, 1, 6}, 9);
  const PoolBuildResult r =
      build_pool(t, est, PoolStrategy::kClassShared);

  EXPECT_EQ(r.ceilings, (std::vector<std::size_t>{4, 2}));
  EXPECT_EQ(r.pool.count_for(T(1)), 4u);
  EXPECT_EQ(r.pool.count_for(T(2)), 2u);
  EXPECT_EQ(r.pool.group_secret_size(), 2u);
  // Shared class {0,1,2} contributes y-packets both terminals reconstruct:
  // Eve missed x2 there, so exactly 1 shared y.
  std::size_t shared = 0;
  for (const auto& e : r.pool.entries())
    if (e.audience.contains(T(1)) && e.audience.contains(T(2))) ++shared;
  EXPECT_EQ(shared, 1u);
}

TEST(BuildPool, OraclePoolIsJointlyUniformForEve) {
  // The theorem the construction implements: with oracle caps every pool
  // row stays independent of Eve's view.
  const ReceptionTable t = paper_like_table();
  const std::vector<std::uint32_t> eve{0, 1, 6};
  const OracleEstimator est(eve, 9);
  const PoolBuildResult r = build_pool(t, est, PoolStrategy::kClassShared);

  gf::LinearSpace eve_space(9);
  for (std::uint32_t i : eve) std::ignore = eve_space.insert_unit(i);
  EXPECT_EQ(eve_space.residual_rank(r.pool.rows()), r.pool.size());
}

TEST(BuildPool, CapsNeverExceedClassSizes) {
  const ReceptionTable t = paper_like_table();
  const FractionEstimator est(0.9);
  const PoolBuildResult r = build_pool(t, est, PoolStrategy::kClassShared);
  for (const PoolAllocation& a : r.allocations) {
    EXPECT_LE(a.allocated, a.class_size);
    EXPECT_LE(a.allocated, a.cap);
  }
}

TEST(BuildPool, CeilingsBoundPerTerminalCounts) {
  const ReceptionTable t = paper_like_table();
  const FractionEstimator est(0.5);
  const PoolBuildResult r = build_pool(t, est, PoolStrategy::kClassShared);
  const auto& receivers = t.receivers();
  for (std::size_t i = 0; i < receivers.size(); ++i)
    EXPECT_LE(r.pool.count_for(receivers[i]), r.ceilings[i]);
}

TEST(BuildPool, ZeroEstimateMeansEmptyPool) {
  const ReceptionTable t = paper_like_table();
  const FractionEstimator est(0.0);
  const PoolBuildResult r = build_pool(t, est, PoolStrategy::kClassShared);
  EXPECT_EQ(r.pool.size(), 0u);
  EXPECT_EQ(r.pool.group_secret_size(), 0u);
}

TEST(BuildPool, EntriesAreReconstructibleByAudience) {
  const ReceptionTable t = paper_like_table();
  const FractionEstimator est(0.5);
  const PoolBuildResult r = build_pool(t, est, PoolStrategy::kClassShared);
  for (const auto& e : r.pool.entries())
    for (packet::NodeId rec : t.receivers()) {
      if (!e.audience.contains(rec)) continue;
      for (const packet::Term& term : e.combo.terms())
        EXPECT_TRUE(t.has(rec, term.index));
    }
}

TEST(BuildPool, TerminalMdsRowsSpanWholeReceptionSet) {
  const ReceptionTable t = paper_like_table();
  const FractionEstimator est(0.5);
  const PoolBuildResult r = build_pool(t, est, PoolStrategy::kTerminalMds);
  // Every row's support is a full reception set (count-robust codes).
  for (const auto& e : r.pool.entries()) {
    const std::size_t support = e.combo.terms().size();
    EXPECT_TRUE(support == t.received_count(T(1)) ||
                support == t.received_count(T(2)))
        << "support " << support;
  }
  EXPECT_EQ(r.pool.count_for(T(1)), 3u);  // floor(0.5 * 6)
  EXPECT_EQ(r.pool.count_for(T(2)), 2u);  // floor(0.5 * 5)
}

TEST(BuildPool, TerminalMdsDedupsIdenticalReceptions) {
  ReceptionTable t(T(0), {T(1), T(2)}, 6);
  t.set_received(T(1), {0, 1, 2, 3});
  t.set_received(T(2), {0, 1, 2, 3});  // identical -> identical rows
  const FractionEstimator est(0.5);
  const PoolBuildResult r = build_pool(t, est, PoolStrategy::kTerminalMds);
  EXPECT_EQ(r.pool.size(), 2u);  // merged, not 4
  EXPECT_EQ(r.pool.count_for(T(1)), 2u);
  EXPECT_EQ(r.pool.count_for(T(2)), 2u);
}

TEST(BuildPool, PoolNeverExceedsFieldLimit) {
  // 300 packets, everyone receives everything, fraction 1.0 would want
  // 300 y-packets; the pool must clamp at 255.
  std::vector<std::uint32_t> all;
  for (std::uint32_t i = 0; i < 300; ++i) all.push_back(i);
  ReceptionTable t(T(0), {T(1), T(2)}, 300);
  t.set_received(T(1), all);
  t.set_received(T(2), all);
  const FractionEstimator est(1.0);
  for (PoolStrategy s :
       {PoolStrategy::kClassShared, PoolStrategy::kTerminalMds}) {
    const PoolBuildResult r = build_pool(t, est, s);
    EXPECT_LE(r.pool.size(), 255u) << to_string(s);
    EXPECT_GT(r.pool.size(), 0u) << to_string(s);
  }
}

// Regression for the phantom-dedup bug: drive build_terminal_mds past the
// kPoolLimit budget (ceilings sum to 600 > 255, so quotas are scaled) with
// two receivers whose identical reception sets produce identical rows.
// Every row the second receiver would emit must be genuinely shared — not
// silently dropped against a map entry whose pool row was never added —
// and the truncation must be surfaced per receiver instead of silent.
TEST(BuildPool, TerminalMdsPastLimitSharesRowsAndReportsTruncation) {
  std::vector<std::uint32_t> all;
  for (std::uint32_t i = 0; i < 300; ++i) all.push_back(i);
  ReceptionTable t(T(0), {T(1), T(2)}, 300);
  t.set_received(T(1), all);
  t.set_received(T(2), all);
  const FractionEstimator est(1.0);  // wants 300 + 300 y-packets
  const PoolBuildResult r = build_pool(t, est, PoolStrategy::kTerminalMds);

  // Quotas scale to floor(300 * 255 / 600) = 127 each; receiver 2's rows
  // are all identical to receiver 1's, so the pool holds 127 shared rows.
  ASSERT_EQ(r.allocations.size(), 2u);
  EXPECT_EQ(r.pool.size(), 127u);
  EXPECT_EQ(r.allocations[0].allocated, 127u);
  EXPECT_EQ(r.allocations[1].allocated, 0u);  // all deduped, none dropped
  // No phantom drops: every row must be reconstructible by BOTH receivers.
  EXPECT_EQ(r.pool.count_for(T(1)), 127u);
  EXPECT_EQ(r.pool.count_for(T(2)), 127u);
  // The budget cut each receiver below its ceiling — loudly.
  EXPECT_TRUE(r.allocations[0].limit_hit);
  EXPECT_TRUE(r.allocations[1].limit_hit);
  EXPECT_EQ(r.ceilings, (std::vector<std::size_t>{300, 300}));
  EXPECT_EQ(r.allocations[0].cap, 127u);  // the scaled quota
}

// Overlapping prefixes: receiver 2's first rows coincide with receiver
// 1's Vandermonde rows over the same chunk and must be shared; its extra
// quota then mints new rows. Nothing may be dropped as a false duplicate.
TEST(BuildPool, TerminalMdsSharesPrefixRowsAcrossReceivers) {
  std::vector<std::uint32_t> small, big;
  for (std::uint32_t i = 0; i < 255; ++i) small.push_back(i);
  for (std::uint32_t i = 0; i < 300; ++i) big.push_back(i);
  ReceptionTable t(T(0), {T(1), T(2)}, 300);
  t.set_received(T(1), small);
  t.set_received(T(2), big);
  const FractionEstimator est(1.0);  // ceilings 255 + 300 = 555 > 255
  const PoolBuildResult r = build_pool(t, est, PoolStrategy::kTerminalMds);

  // Scaled quotas: floor(255*255/555) = 117, floor(300*255/555) = 137.
  // Receiver 2's first chunk is receiver 1's exact reception set, so its
  // first 117 rows are the same Vandermonde rows (row i depends only on
  // the chunk and i) and dedup must share them; 137 - 117 = 20 are new.
  ASSERT_EQ(r.allocations.size(), 2u);
  EXPECT_EQ(r.allocations[0].allocated, 117u);
  EXPECT_EQ(r.allocations[1].allocated, 20u);
  EXPECT_EQ(r.pool.size(), 137u);
  EXPECT_EQ(r.pool.count_for(T(1)), 137u);  // audience covers T1 everywhere
  EXPECT_EQ(r.pool.count_for(T(2)), 137u);
  EXPECT_TRUE(r.allocations[0].limit_hit);
  EXPECT_TRUE(r.allocations[1].limit_hit);
}

// Class-shared truncation is surfaced the same way.
TEST(BuildPool, ClassSharedReportsLimitHit) {
  std::vector<std::uint32_t> all;
  for (std::uint32_t i = 0; i < 300; ++i) all.push_back(i);
  ReceptionTable t(T(0), {T(1), T(2)}, 300);
  t.set_received(T(1), all);
  t.set_received(T(2), all);
  const FractionEstimator est(1.0);
  const PoolBuildResult r = build_pool(t, est, PoolStrategy::kClassShared);
  EXPECT_LE(r.pool.size(), 255u);
  ASSERT_FALSE(r.allocations.empty());
  bool any_hit = false;
  for (const PoolAllocation& a : r.allocations) any_hit |= a.limit_hit;
  EXPECT_TRUE(any_hit);

  // And with a comfortable budget, no limit is reported.
  const FractionEstimator small_est(0.1);
  const PoolBuildResult ok = build_pool(t, small_est, PoolStrategy::kClassShared);
  for (const PoolAllocation& a : ok.allocations) EXPECT_FALSE(a.limit_hit);
}

TEST(BuildPool, StrategyNames) {
  EXPECT_EQ(to_string(PoolStrategy::kClassShared), "class-shared");
  EXPECT_EQ(to_string(PoolStrategy::kTerminalMds), "terminal-mds");
}

// Property sweep: under the oracle, for random reception patterns, the
// pool is always jointly uniform from Eve's perspective and every
// terminal's count matches its ceiling.
class OraclePoolSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OraclePoolSweep, JointUniformityHolds) {
  channel::Rng rng(GetParam());
  const std::size_t n = 30;
  ReceptionTable t(T(0), {T(1), T(2), T(3)}, n);
  std::vector<std::uint32_t> eve;
  for (packet::NodeId r : {T(1), T(2), T(3)}) {
    std::vector<std::uint32_t> got;
    for (std::uint32_t i = 0; i < n; ++i)
      if (rng.bernoulli(0.6)) got.push_back(i);
    t.set_received(r, got);
  }
  for (std::uint32_t i = 0; i < n; ++i)
    if (rng.bernoulli(0.5)) eve.push_back(i);

  const OracleEstimator est(eve, n);
  const PoolBuildResult r = build_pool(t, est, PoolStrategy::kClassShared);

  gf::LinearSpace eve_space(n);
  for (std::uint32_t i : eve) std::ignore = eve_space.insert_unit(i);
  EXPECT_EQ(eve_space.residual_rank(r.pool.rows()), r.pool.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OraclePoolSweep,
                         ::testing::Range<std::uint64_t>(100, 112));

}  // namespace
}  // namespace thinair::core
