#!/usr/bin/env bash
# The distributed sweep through the real CLI: one cheap scenario run
# single-process, then fanned out over forked workers (healthy and with
# one worker killed mid-run), then over TCP with separately launched
# worker processes — every variant must produce byte-identical NDJSON.
#
#   usage: cli_dist_smoke.sh /path/to/thinair
set -u

THINAIR=${1:?usage: cli_dist_smoke.sh /path/to/thinair}
WORK=$(mktemp -d)
MASTER_PID=
cleanup() {
  [ -n "$MASTER_PID" ] && kill "$MASTER_PID" 2>/dev/null
  wait 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

# fig1 cut down to 8 quick cases: 2 n-values x 2 p-values x 2 repeats.
SPEC=(fig1 --set session.x_packets=30 --set session.rounds=1
      --set 'topology.n=[2,3]' --set 'sweep.p=[0.2,0.5]'
      --set sweep.repeats=2)

run() {
  local out=$1
  shift
  "$THINAIR" run "${SPEC[@]}" --seed 21 --quiet --out "$WORK/$out" "$@" \
    2>"$WORK/${out%.ndjson}.err" ||
    { cat "$WORK/${out%.ndjson}.err" >&2; fail "run writing $out exited nonzero"; }
  [ -s "$WORK/$out" ] || fail "$out is empty"
}

run t1.ndjson --threads 1
[ "$(wc -l <"$WORK/t1.ndjson")" -eq 8 ] || fail "expected 8 NDJSON lines"

run w1.ndjson --workers 1
cmp -s "$WORK/t1.ndjson" "$WORK/w1.ndjson" ||
  fail "--workers 1 bytes differ from --threads 1"

run w4.ndjson --workers 4 --shard-size 3
cmp -s "$WORK/t1.ndjson" "$WORK/w4.ndjson" ||
  fail "--workers 4 bytes differ from --threads 1"
echo "fork fan-out: 1 and 4 workers byte-identical to single-process"

# Kill worker 0 after 2 records: its shard forfeits and is re-run by a
# survivor; the dedup ledger keeps the merged bytes identical.
run kill.ndjson --workers 4 --shard-size 3 --test-kill-worker-after 2
cmp -s "$WORK/t1.ndjson" "$WORK/kill.ndjson" ||
  fail "bytes differ after a worker was killed mid-run"
echo "worker killed mid-shard: recovered byte-identically"

# The acceptance scenario by name: fig2 (testbed channel, 3-estimator
# axis), --limit kept small so the smoke stays fast. The truncation
# footer must survive the fan-out too.
for v in "--threads 1" "--workers 1" "--workers 4"; do
  # shellcheck disable=SC2086  # $v is two words by design
  "$THINAIR" run fig2 --seed 21 --limit 30 --quiet $v \
    --out "$WORK/fig2-${v##* }-${v:2:1}.ndjson" 2>/dev/null ||
    fail "fig2 $v exited nonzero"
done
cmp -s "$WORK/fig2-1-t.ndjson" "$WORK/fig2-1-w.ndjson" ||
  fail "fig2 --workers 1 bytes differ from --threads 1"
cmp -s "$WORK/fig2-1-t.ndjson" "$WORK/fig2-4-w.ndjson" ||
  fail "fig2 --workers 4 bytes differ from --threads 1"
echo "fig2 (limit 30): 1 and 4 workers byte-identical to single-process"

# The generic sweep.key axis through the fork path: a keyed spec is
# serialized into kHello and variant-expanded on the worker side.
"$THINAIR" run "${SPEC[@]}" --set sweep.key=session.x_packets \
  --set 'sweep.values=[20,30]' --seed 21 --quiet --threads 1 \
  --out "$WORK/key_t1.ndjson" 2>/dev/null ||
  fail "keyed run (--threads 1) exited nonzero"
"$THINAIR" run "${SPEC[@]}" --set sweep.key=session.x_packets \
  --set 'sweep.values=[20,30]' --seed 21 --quiet --workers 2 \
  --out "$WORK/key_w2.ndjson" 2>/dev/null ||
  fail "keyed run (--workers 2) exited nonzero"
cmp -s "$WORK/key_t1.ndjson" "$WORK/key_w2.ndjson" ||
  fail "sweep.key bytes differ between --threads 1 and --workers 2"
echo "sweep.key axis: distributed bytes identical"

# TCP mode: master on an ephemeral port, two separately launched workers.
"$THINAIR" sweep-master --listen 127.0.0.1:0 --workers 2 "${SPEC[@]}" \
  --seed 21 --quiet --shard-size 3 --out "$WORK/tcp.ndjson" \
  2>"$WORK/master.err" &
MASTER_PID=$!

PORT=
for _ in $(seq 50); do
  PORT=$(grep -oE 'listening on [0-9.]+:[0-9]+' "$WORK/master.err" 2>/dev/null |
         grep -oE '[0-9]+$')
  [ -n "$PORT" ] && break
  kill -0 "$MASTER_PID" 2>/dev/null || {
    cat "$WORK/master.err" >&2
    fail "sweep-master exited during startup"
  }
  sleep 0.1
done
[ -n "$PORT" ] || fail "sweep-master never reported its port"

"$THINAIR" sweep-worker --connect 127.0.0.1:"$PORT" &
W1_PID=$!
"$THINAIR" sweep-worker --connect 127.0.0.1:"$PORT" &
W2_PID=$!
wait "$W1_PID" || fail "TCP worker 1 exited nonzero"
wait "$W2_PID" || fail "TCP worker 2 exited nonzero"
wait "$MASTER_PID" || { cat "$WORK/master.err" >&2;
                        fail "sweep-master exited nonzero"; }
MASTER_PID=
cmp -s "$WORK/t1.ndjson" "$WORK/tcp.ndjson" ||
  fail "TCP-mode bytes differ from single-process"
echo "TCP master + 2 workers: byte-identical"

echo "PASS"
