// Fixture: every banned way of minting ambient entropy. Any one of these
// in src/ makes two runs with the same --seed diverge.
#include <cstdlib>
#include <ctime>
#include <random>

int draw_widths() {
  std::srand(42);                     // finding: srand
  int a = std::rand();                // finding: std::rand
  std::random_device rd;              // finding: random_device
  std::mt19937 gen(std::time(nullptr));  // finding: time-seeded engine
  return a + static_cast<int>(rd()) + static_cast<int>(gen());
}
