// Fixture: near-misses the rule must not fire on — deterministic seeded
// engines, identifiers containing 'rand', and the project RNG itself.
#include <cstdint>
#include <random>

struct Rng {
  explicit Rng(std::uint64_t seed) : gen_(seed) {}  // explicit seed: fine
  std::uint64_t next() { return gen_(); }
  std::mt19937_64 gen_;
};

std::uint64_t rand_like_name(std::uint64_t operand) {
  // 'operand', 'strand', 'randomize_label' must not match the rand() rule.
  std::uint64_t strand = operand * 2;
  return strand;
}
