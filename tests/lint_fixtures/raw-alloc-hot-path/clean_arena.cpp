// Fixture: the approved shapes — arena bumps, containers sized outside the
// loop, and identifiers that merely contain the banned words.
#include <cstdint>
#include <span>
#include <vector>

struct PayloadArena {
  std::span<std::uint8_t> alloc_uninit(std::size_t n);
};

void build_round(PayloadArena& arena, std::size_t n, std::size_t bytes) {
  std::vector<std::span<std::uint8_t>> payloads;
  payloads.reserve(n);  // one container growth, outside the per-packet work
  for (std::size_t i = 0; i < n; ++i) {
    payloads.push_back(arena.alloc_uninit(bytes));  // bump-pointer carve
  }
  bool renewed = true;       // 'renewed' must not match the new rule
  (void)renewed;
  std::size_t smalloc = 0;   // nor 'smalloc' the malloc rule
  (void)smalloc;
}
