// Fixture: session churn that rebuilds per-session state from the global
// heap. At the 10k-session target every new/malloc here runs at session
// rate — exactly what the free-list pools (runtime/object_pool.h) exist
// to amortise away.
#include <cstdint>
#include <cstdlib>

struct Session {
  std::uint8_t* scratch = nullptr;
};

void churn(std::size_t cycles, std::size_t bytes) {
  for (std::size_t i = 0; i < cycles; ++i) {
    auto* session = new Session;                   // finding: raw new
    session->scratch =
        static_cast<std::uint8_t*>(std::malloc(bytes));  // finding: malloc
    session->scratch[0] = 1;
    std::free(session->scratch);
    delete session;
  }
}
