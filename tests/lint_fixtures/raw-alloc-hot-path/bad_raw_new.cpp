// Fixture: raw allocation inside a per-round loop. Each new/malloc here is
// a global-heap round trip the PayloadArena exists to amortise away.
#include <cstdint>
#include <cstdlib>

void build_round(std::size_t n, std::size_t payload_bytes) {
  for (std::size_t i = 0; i < n; ++i) {
    auto* body = new std::uint8_t[payload_bytes];  // finding: raw new
    void* scratch = std::malloc(payload_bytes);    // finding: malloc
    body[0] = 1;
    std::free(scratch);
    delete[] body;
  }
}
