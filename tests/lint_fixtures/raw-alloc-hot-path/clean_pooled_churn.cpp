// Fixture: the approved churn shape — sessions recycled acquire/reset/
// release style from a free list, backing storage owned by smart pointers
// populated outside the steady-state loop.
#include <cstddef>
#include <memory>
#include <vector>

struct Session {
  void reset() {}
};

struct SessionPool {
  std::vector<std::unique_ptr<Session>> storage;
  std::vector<Session*> free_list;

  Session* acquire() {
    if (!free_list.empty()) {
      Session* s = free_list.back();
      free_list.pop_back();
      s->reset();  // recycled: construction-equivalent, allocation-free
      return s;
    }
    storage.push_back(std::make_unique<Session>());  // cold path only
    return storage.back().get();
  }

  void release(Session* s) { free_list.push_back(s); }
};

void churn(SessionPool& pool, std::size_t cycles) {
  for (std::size_t i = 0; i < cycles; ++i) {
    Session* s = pool.acquire();
    pool.release(s);
  }
}
