// Fixture: locale-sensitive number formatting in an emitter. Under
// LC_NUMERIC=de_DE these print "0,5" instead of "0.5" and the golden
// NDJSON hash breaks.
#include <iomanip>
#include <sstream>
#include <string>

std::string emit(double rate, int cases) {
  std::ostringstream os;                        // finding: ostringstream
  os << std::setprecision(17) << rate;          // finding: setprecision
  std::string line = os.str();
  line += std::to_string(cases);                // finding: to_string
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", rate);  // finding: snprintf
  return line + buf;
}
