// Fixture: the approved formatter — std::to_chars is locale-independent
// and round-trip exact (shortest representation), so output bytes are a
// pure function of the value.
#include <charconv>
#include <string>

void append_double(std::string& out, double value) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec == std::errc{}) out.append(buf, ptr);
}

void append_u64(std::string& out, unsigned long long value) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec == std::errc{}) out.append(buf, ptr);
}
