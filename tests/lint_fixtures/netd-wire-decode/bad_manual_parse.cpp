// Fixture: hand-rolled datagram parsing — exactly what let early daemon
// builds be confused by truncated and spoofed frames. All framing must go
// through wire::decode()'s total parse.
#include <cstdint>
#include <cstring>
#include <span>

struct RawHeader {
  std::uint32_t magic;
  std::uint16_t kind;
};

int classify(std::span<const std::uint8_t> datagram) {
  if (datagram.size() < 6) return -1;
  // finding: reinterpret_cast framing (also unaligned/endian-unsafe)
  const auto* h = reinterpret_cast<const RawHeader*>(datagram.data());
  if (h->magic != 0x54414EDFu) return -1;
  // finding: raw byte picking out of the datagram buffer
  return datagram[4] | (datagram[5] << 8);
}
