// Fixture: a distributed-sweep IO driver picking frame fields straight
// out of its receive buffer — the shape the dist/frame.h codec exists to
// forbid. Length prefixes and type bytes must come from decode_frame()'s
// total parse, never from raw stream indices.
#include <cstdint>
#include <vector>

int shard_first(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 6) return -1;
  // finding: raw byte picking out of the stream buffer
  const int body_len = bytes[0] | (bytes[1] << 8);
  if (body_len < 1) return -1;
  // finding: reinterpret_cast framing of wire data
  const auto* first = reinterpret_cast<const std::uint32_t*>(&bytes[5]);
  return static_cast<int>(*first);
}
