// Fixture: the approved shape — hand the whole datagram to wire::decode()
// and consume only the typed frame it returns. Payload-field access on the
// *decoded* frame is fine; the rule targets raw buffer bytes.
#include <cstdint>
#include <span>
#include <vector>

namespace wire {
struct Frame {
  std::uint16_t kind;
  std::vector<std::uint8_t> payload;
};
struct DecodeResult {
  bool ok;
  Frame frame;
};
DecodeResult decode(std::span<const std::uint8_t> datagram);
}  // namespace wire

int classify(std::span<const std::uint8_t> dgram) {
  const wire::DecodeResult decoded = wire::decode(dgram);
  if (!decoded.ok) return -1;
  const wire::Frame& f = decoded.frame;
  if (f.payload.size() < 2) return -1;
  return f.payload[0] | (f.payload[1] << 8);  // post-decode field: fine
}
