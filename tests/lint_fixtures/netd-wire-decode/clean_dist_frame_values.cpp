// Fixture: the approved distributed-sweep shape — feed received bytes to
// a FrameReader and consume only the typed frames it yields. Field access
// on the *decoded* frame is fine; the rule targets raw buffer indices.
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace dist {
struct ShardFrame {
  std::uint64_t first;
  std::uint64_t count;
};
class FrameReader {
 public:
  void feed(std::span<const std::uint8_t> data);
  std::optional<ShardFrame> next();
};
}  // namespace dist

std::uint64_t total_cases(dist::FrameReader& reader,
                          std::span<const std::uint8_t> received) {
  reader.feed(received);
  std::uint64_t cases = 0;
  while (auto shard = reader.next()) cases += shard->count;
  return cases;
}
