// Fixture: range-for over an unordered_map member — the canonical
// determinism bug. Emission order would follow the hash table's bucket
// layout, which varies across libstdc++ versions and load factors.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

struct Hub {
  std::unordered_map<std::uint64_t, std::string> sessions_;
  std::unordered_set<std::uint32_t> members_;

  void relay_all() {
    for (const auto& [id, s] : sessions_) {  // finding: unordered iteration
      (void)id;
      (void)s;
    }
  }

  void visit_members() {
    for (auto it = members_.begin(); it != members_.end(); ++it) {  // finding
      (void)*it;
    }
  }
};
