// Fixture: the approved shapes. Ordered containers iterate fine; unordered
// containers may be used for O(1) lookup/erase as long as nothing walks
// them; a justified suppression silences a deliberate order-insensitive
// walk (e.g. summing a counter).
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

struct Hub {
  std::map<std::uint64_t, std::string> members_;          // ordered: fine
  std::unordered_map<std::uint64_t, std::string> cache_;  // lookup only

  void relay_all() {
    for (const auto& [id, s] : members_) {  // std::map: deterministic order
      (void)id;
      (void)s;
    }
  }

  bool lookup(std::uint64_t id) { return cache_.find(id) != cache_.end(); }

  std::size_t total() {
    std::size_t n = 0;
    // Order-insensitive fold — justified suppression.
    for (const auto& kv : cache_) n += kv.second.size();  // thinair-lint: allow(unordered-iteration)
    return n;
  }
};
