// thinaird wire codec: encode/decode round trip and fuzz-style decode
// robustness (truncations, bad magic/version/type, oversized lengths,
// flipped bytes) — decode must stay total under ASan/UBSan.
#include <gtest/gtest.h>

#include <vector>

#include "channel/rng.h"
#include "netd/wire.h"

namespace thinair::netd {
namespace {

Frame random_frame(channel::Rng& rng) {
  Frame f;
  f.header.type = static_cast<std::uint8_t>(rng.next_below(kMaxFrameType + 1));
  f.header.flags = static_cast<std::uint8_t>(rng.next_u64());
  f.header.phase = static_cast<std::uint8_t>(rng.next_below(6));
  f.header.node = static_cast<std::uint16_t>(rng.next_u64());
  f.header.session = rng.next_u64();
  f.header.round = static_cast<std::uint32_t>(rng.next_u64());
  f.header.seq = static_cast<std::uint32_t>(rng.next_u64());
  f.header.aux = static_cast<std::uint32_t>(rng.next_u64());
  f.header.reserved = static_cast<std::uint16_t>(rng.next_u64());
  f.payload.resize(rng.next_below(300));
  for (auto& b : f.payload) b = rng.next_byte();
  return f;
}

TEST(Wire, HeaderSizeIsFixed) {
  const Frame f;
  EXPECT_EQ(encode(f).size(), kHeaderSize);
}

TEST(Wire, RoundTripDifferential) {
  channel::Rng rng(0xC0DEC);
  for (int i = 0; i < 2000; ++i) {
    Frame f = random_frame(rng);
    const std::vector<std::uint8_t> wire = encode(f);
    ASSERT_EQ(wire.size(), kHeaderSize + f.payload.size());
    const DecodeResult d = decode(wire);
    ASSERT_EQ(d.error, DecodeError::kNone) << to_string(d.error);
    ASSERT_TRUE(d.frame.has_value());
    // encode() stamps payload_len; mirror it before comparing.
    f.header.payload_len = static_cast<std::uint16_t>(f.payload.size());
    EXPECT_EQ(*d.frame, f);
    // Re-encode must be byte-identical.
    EXPECT_EQ(encode(*d.frame), wire);
  }
}

TEST(Wire, EncodeRejectsOversizedPayload) {
  Frame f;
  f.payload.resize(kMaxPayload + 1);
  EXPECT_THROW((void)encode(f), std::invalid_argument);
}

TEST(Wire, DecodeTooShort) {
  channel::Rng rng(7);
  const Frame f = random_frame(rng);
  const std::vector<std::uint8_t> wire = encode(f);
  for (std::size_t len = 0; len < kHeaderSize; ++len) {
    const DecodeResult d =
        decode(std::span<const std::uint8_t>(wire.data(), len));
    EXPECT_EQ(d.error, DecodeError::kTooShort);
    EXPECT_FALSE(d.frame.has_value());
  }
}

TEST(Wire, DecodeTruncatedAndExtendedPayloads) {
  channel::Rng rng(8);
  Frame f = random_frame(rng);
  f.payload.assign(64, 0x5A);
  const std::vector<std::uint8_t> wire = encode(f);
  // Any length mismatch between payload_len and the datagram is rejected.
  for (std::size_t cut = kHeaderSize; cut < wire.size(); ++cut) {
    const DecodeResult d =
        decode(std::span<const std::uint8_t>(wire.data(), cut));
    EXPECT_EQ(d.error, DecodeError::kLengthMismatch);
  }
  std::vector<std::uint8_t> extended = wire;
  extended.push_back(0);
  EXPECT_EQ(decode(extended).error, DecodeError::kLengthMismatch);
}

TEST(Wire, DecodeBadMagicVersionType) {
  Frame f;
  std::vector<std::uint8_t> wire = encode(f);
  {
    auto bad = wire;
    bad[0] ^= 0xFF;
    EXPECT_EQ(decode(bad).error, DecodeError::kBadMagic);
  }
  {
    auto bad = wire;
    bad[2] = kVersion + 1;
    EXPECT_EQ(decode(bad).error, DecodeError::kBadVersion);
  }
  {
    auto bad = wire;
    bad[3] = kMaxFrameType + 1;
    EXPECT_EQ(decode(bad).error, DecodeError::kBadType);
  }
}

TEST(Wire, DecodeOversizedLengthField) {
  Frame f;
  std::vector<std::uint8_t> wire = encode(f);
  // Claim a payload length beyond kMaxPayload without providing bytes.
  const std::uint16_t huge = static_cast<std::uint16_t>(kMaxPayload + 1);
  wire[28] = static_cast<std::uint8_t>(huge);
  wire[29] = static_cast<std::uint8_t>(huge >> 8);
  EXPECT_EQ(decode(wire).error, DecodeError::kOversized);
}

TEST(Wire, FuzzRandomBuffersNeverCrash) {
  channel::Rng rng(0xF022);
  std::size_t decoded = 0;
  for (int i = 0; i < 20000; ++i) {
    std::vector<std::uint8_t> buf(rng.next_below(96));
    for (auto& b : buf) b = rng.next_byte();
    const DecodeResult d = decode(buf);
    if (d.frame.has_value()) {
      ++decoded;
      EXPECT_EQ(d.error, DecodeError::kNone);
    } else {
      EXPECT_NE(d.error, DecodeError::kNone);
    }
  }
  // Random bytes essentially never form a valid frame (magic + version).
  EXPECT_LT(decoded, 5u);
}

TEST(Wire, FuzzFlippedFieldsOnValidFrames) {
  channel::Rng rng(0xF1E1D);
  for (int i = 0; i < 4000; ++i) {
    const Frame f = random_frame(rng);
    std::vector<std::uint8_t> wire = encode(f);
    // Flip 1-4 random bytes anywhere in the datagram.
    const std::size_t flips = 1 + rng.next_below(4);
    for (std::size_t k = 0; k < flips; ++k)
      wire[rng.next_below(wire.size())] ^= static_cast<std::uint8_t>(
          1u << rng.next_below(8));
    const DecodeResult d = decode(wire);  // must not crash; any verdict ok
    if (d.frame.has_value()) {
      // Whatever decoded must re-encode to the same bytes (header integrity).
      EXPECT_EQ(encode(*d.frame), wire);
    }
  }
}

}  // namespace
}  // namespace thinair::netd
