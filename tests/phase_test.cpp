// Phase 1 and phase 2 as pure functions: announcement contents, Alice- and
// terminal-side evaluation, z-repair and s-agreement.
#include <gtest/gtest.h>

#include <tuple>

#include "channel/rng.h"
#include "core/phase1.h"
#include "core/phase2.h"
#include "gf/linear_space.h"

namespace thinair::core {
namespace {

packet::NodeId T(std::uint16_t v) { return packet::NodeId{v}; }

std::vector<packet::Payload> random_payloads(std::size_t n, std::size_t size,
                                             std::uint64_t seed) {
  channel::Rng rng(seed);
  std::vector<packet::Payload> out(n);
  for (auto& p : out) {
    p.resize(size);
    for (auto& b : p) b = rng.next_byte();
  }
  return out;
}

struct Fixture {
  ReceptionTable table{T(0), {T(1), T(2)}, 9};
  std::vector<std::uint32_t> eve{0, 1, 6};
  std::vector<packet::Payload> x = random_payloads(9, 16, 77);

  Fixture() {
    table.set_received(T(1), {0, 1, 2, 3, 4, 5});
    table.set_received(T(2), {0, 1, 2, 6, 7});
  }

  [[nodiscard]] Phase1Result phase1() const {
    const OracleEstimator est(eve, 9);
    return run_phase1(table, est, PoolStrategy::kClassShared);
  }

  [[nodiscard]] std::vector<std::optional<packet::Payload>> rx_payloads(
      packet::NodeId t) const {
    std::vector<std::optional<packet::Payload>> out(9);
    for (std::uint32_t i : table.received(t)) out[i] = x[i];
    return out;
  }
};

TEST(Phase1, AnnouncementListsEveryPoolEntry) {
  const Fixture f;
  const Phase1Result r = f.phase1();
  EXPECT_EQ(r.announcement.combinations.size(), r.build.pool.size());
  EXPECT_EQ(r.announcement.combinations, r.build.pool.combinations());
}

TEST(Phase1, AliceAndTerminalAgreeOnYContents) {
  const Fixture f;
  const Phase1Result r = f.phase1();
  const auto alice_y = all_y_contents(r.build.pool, f.x, 16);

  for (packet::NodeId t : {T(1), T(2)}) {
    const auto own = reconstruct_y(r.build.pool, t, f.rx_payloads(t), 16);
    const auto known = r.build.pool.known_indices(t);
    for (std::size_t j = 0; j < r.build.pool.size(); ++j) {
      const bool should_know =
          std::find(known.begin(), known.end(), j) != known.end();
      EXPECT_EQ(own[j].has_value(), should_know);
      if (should_know) {
        EXPECT_EQ(*own[j], alice_y[j]);
      }
    }
  }
}

TEST(Phase1, PayloadSizeMismatchThrows) {
  const Fixture f;
  const Phase1Result r = f.phase1();
  EXPECT_THROW((void)all_y_contents(r.build.pool, f.x, 7),
               std::invalid_argument);
  std::vector<packet::Payload> short_x(4);
  EXPECT_THROW((void)all_y_contents(r.build.pool, short_x, 16),
               std::invalid_argument);
}

TEST(Phase2, PlanShapes) {
  const Fixture f;
  const Phase1Result p1 = f.phase1();
  const Phase2Plan plan = plan_phase2(p1.build.pool);
  const std::size_t m = p1.build.pool.size();
  const std::size_t l = p1.build.pool.group_secret_size();
  EXPECT_EQ(plan.pool_size, m);
  EXPECT_EQ(plan.group_size, l);
  EXPECT_EQ(plan.h.rows(), m - l);
  EXPECT_EQ(plan.c.rows(), l);
  EXPECT_EQ(plan.z_announcement.combinations.size(), m - l);
  EXPECT_EQ(plan.s_announcement.combinations.size(), l);
  EXPECT_EQ(secret_bits(plan, 16), l * 16 * 8);
}

TEST(Phase2, HStackCIsInvertible) {
  // The construction's secrecy hinge: [H; C] must be a bijection of the
  // y-space.
  const Fixture f;
  const Phase2Plan plan = plan_phase2(f.phase1().build.pool);
  EXPECT_TRUE(plan.h.vstack(plan.c).invertible());
}

TEST(Phase2, EveryTerminalRecoversAllYAndTheSameSecret) {
  const Fixture f;
  const Phase1Result p1 = f.phase1();
  const Phase2Plan plan = plan_phase2(p1.build.pool);
  const auto y = all_y_contents(p1.build.pool, f.x, 16);
  const auto z = make_z_payloads(plan, y, 16);
  const auto s = make_s_payloads(plan, y, 16);
  ASSERT_EQ(s.size(), plan.group_size);

  for (packet::NodeId t : {T(1), T(2)}) {
    const auto own = reconstruct_y(p1.build.pool, t, f.rx_payloads(t), 16);
    const auto full = recover_all_y(plan, own, z, 16);
    EXPECT_EQ(full, y);
    EXPECT_EQ(make_s_payloads(plan, full, 16), s);
  }
}

TEST(Phase2, EmptyPoolYieldsEmptyPlan) {
  const YPool pool(5, {T(1)});
  const Phase2Plan plan = plan_phase2(pool);
  EXPECT_EQ(plan.group_size, 0u);
  EXPECT_EQ(plan.h.rows(), 0u);
  EXPECT_EQ(plan.c.rows(), 0u);
}

TEST(Phase2, FullKnowledgeNeedsNoZPackets) {
  // Both terminals can rebuild every y: M == L, zero z-packets.
  ReceptionTable t(T(0), {T(1), T(2)}, 4);
  t.set_received(T(1), {0, 1, 2, 3});
  t.set_received(T(2), {0, 1, 2, 3});
  const OracleEstimator est({}, 4);  // Eve missed everything
  const auto build = build_pool(t, est, PoolStrategy::kClassShared);
  const Phase2Plan plan = plan_phase2(build.pool);
  EXPECT_EQ(plan.pool_size, plan.group_size);
  EXPECT_EQ(plan.h.rows(), 0u);

  const auto x = random_payloads(4, 8, 5);
  const auto y = all_y_contents(build.pool, x, 8);
  const auto z = make_z_payloads(plan, y, 8);
  EXPECT_TRUE(z.empty());
  std::vector<std::optional<packet::Payload>> own(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) own[i] = y[i];
  EXPECT_EQ(recover_all_y(plan, own, z, 8), y);
}

TEST(Phase2, RecoverValidatesInputs) {
  const Fixture f;
  const Phase1Result p1 = f.phase1();
  const Phase2Plan plan = plan_phase2(p1.build.pool);
  const auto y = all_y_contents(p1.build.pool, f.x, 16);
  const auto z = make_z_payloads(plan, y, 16);

  std::vector<std::optional<packet::Payload>> wrong_size(
      p1.build.pool.size() + 1);
  EXPECT_THROW((void)recover_all_y(plan, wrong_size, z, 16),
               std::invalid_argument);

  std::vector<std::optional<packet::Payload>> none(p1.build.pool.size());
  if (plan.h.rows() < plan.pool_size) {  // more unknowns than z-packets
    EXPECT_THROW((void)recover_all_y(plan, none, z, 16),
                 std::invalid_argument);
  }
}

TEST(Phase2, SecretIsUniformGivenZForIgnorantEve) {
  // The paper's key point: when Eve knows nothing of the y-packets, the
  // public z contents give her nothing about the s-packets.
  const Fixture f;
  const Phase1Result p1 = f.phase1();
  const Phase2Plan plan = plan_phase2(p1.build.pool);
  const gf::Matrix g = p1.build.pool.rows();

  gf::LinearSpace eve(9);
  for (std::uint32_t i : f.eve) std::ignore = eve.insert_unit(i);
  if (plan.h.rows() > 0) eve.insert_rows(plan.h.mul(g));
  EXPECT_EQ(eve.residual_rank(plan.c.mul(g)), plan.group_size);
}

// Property sweep: random reception patterns, oracle estimates — all
// terminals always decode the same secret and Eve's equivocation is
// always exactly L.
class PhaseSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PhaseSweep, EndToEndAgreementAndSecrecy) {
  channel::Rng rng(GetParam());
  const std::size_t n = 24;
  ReceptionTable table(T(0), {T(1), T(2), T(3)}, n);
  for (packet::NodeId t : {T(1), T(2), T(3)}) {
    std::vector<std::uint32_t> got;
    for (std::uint32_t i = 0; i < n; ++i)
      if (rng.bernoulli(0.7)) got.push_back(i);
    table.set_received(t, got);
  }
  std::vector<std::uint32_t> eve;
  for (std::uint32_t i = 0; i < n; ++i)
    if (rng.bernoulli(0.5)) eve.push_back(i);

  const OracleEstimator est(eve, n);
  const Phase1Result p1 = run_phase1(table, est, PoolStrategy::kClassShared);
  const Phase2Plan plan = plan_phase2(p1.build.pool);
  if (plan.group_size == 0) return;

  const auto x = random_payloads(n, 8, GetParam() + 1);
  const auto y = all_y_contents(p1.build.pool, x, 8);
  const auto z = make_z_payloads(plan, y, 8);
  const auto s = make_s_payloads(plan, y, 8);

  for (packet::NodeId t : {T(1), T(2), T(3)}) {
    std::vector<std::optional<packet::Payload>> own_x(n);
    for (std::uint32_t i : table.received(t)) own_x[i] = x[i];
    const auto own_y = reconstruct_y(p1.build.pool, t, own_x, 8);
    const auto full = recover_all_y(plan, own_y, z, 8);
    EXPECT_EQ(make_s_payloads(plan, full, 8), s);
  }

  gf::LinearSpace eve_space(n);
  for (std::uint32_t i : eve) std::ignore = eve_space.insert_unit(i);
  const gf::Matrix g = p1.build.pool.rows();
  if (plan.h.rows() > 0) eve_space.insert_rows(plan.h.mul(g));
  EXPECT_EQ(eve_space.residual_rank(plan.c.mul(g)), plan.group_size);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PhaseSweep,
                         ::testing::Range<std::uint64_t>(500, 516));

}  // namespace
}  // namespace thinair::core
