// Statistics (the Figure-2 aggregations) and the table printer; plus the
// secret pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "core/secret.h"
#include "util/ksubset.h"
#include "util/stats.h"
#include "util/table.h"

namespace thinair {
namespace {

TEST(Summary, BasicMoments) {
  util::Summary s;
  s.add_all({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
}

TEST(Summary, EmptyThrows) {
  const util::Summary s;
  EXPECT_THROW((void)s.min(), std::logic_error);
  EXPECT_THROW((void)s.mean(), std::logic_error);
  EXPECT_THROW((void)s.quantile(0.5), std::logic_error);
}

TEST(Summary, QuantileInterpolates) {
  util::Summary s;
  s.add_all({0.0, 10.0});
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 10.0);
  EXPECT_THROW((void)s.quantile(1.5), std::invalid_argument);
}

TEST(Summary, ExceededByIsThePapersPercentile) {
  util::Summary s;
  // 10 experiments: reliability 0.1, 0.2, ..., 1.0.
  for (int i = 1; i <= 10; ++i) s.add(i / 10.0);
  // Value achieved in at least 50% of experiments: 6 samples are >= 0.5,
  // 5 are >= 0.6 -> the largest v with >= 5 samples above is 0.6.
  EXPECT_DOUBLE_EQ(s.exceeded_by(0.5), 0.6);
  // 95% of 10 -> 10 samples needed -> the minimum.
  EXPECT_DOUBLE_EQ(s.exceeded_by(0.95), 0.1);
  // All samples: the minimum again.
  EXPECT_DOUBLE_EQ(s.exceeded_by(1.0), 0.1);
}

TEST(Summary, ExceededByOnConstantSamples) {
  util::Summary s;
  for (int i = 0; i < 7; ++i) s.add(1.0);
  EXPECT_DOUBLE_EQ(s.exceeded_by(0.5), 1.0);
  EXPECT_DOUBLE_EQ(s.exceeded_by(0.95), 1.0);
}

TEST(Summary, StddevOfSingletonIsZero) {
  util::Summary s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Table, RendersAlignedColumns) {
  util::Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os, 0);
  const std::string out = os.str();
  EXPECT_NE(out.find("name   value"), std::string::npos);
  EXPECT_NE(out.find("alpha  1"), std::string::npos);
  EXPECT_NE(out.find("-----  -----"), std::string::npos);
}

TEST(Table, ValidatesShape) {
  EXPECT_THROW(util::Table({}), std::invalid_argument);
  util::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableFmt, FixedPrecision) {
  EXPECT_EQ(util::fmt(0.0376, 3), "0.038");
  EXPECT_EQ(util::fmt(1.0, 2), "1.00");
  EXPECT_EQ(util::fmt(-2.5, 1), "-2.5");
}

TEST(SecretPool, DepositAndDraw) {
  core::SecretPool pool;
  pool.deposit({1, 2, 3, 4, 5});
  EXPECT_EQ(pool.available(), 5u);
  const auto k = pool.draw(3);
  ASSERT_TRUE(k.has_value());
  EXPECT_EQ(*k, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(pool.available(), 2u);
}

TEST(SecretPool, RefusesPartialKeys) {
  core::SecretPool pool;
  pool.deposit({1, 2});
  EXPECT_FALSE(pool.draw(3).has_value());
  EXPECT_EQ(pool.available(), 2u);  // nothing consumed on failure
}

TEST(SecretPool, DrawsAreDisjoint) {
  core::SecretPool pool;
  pool.deposit({1, 2, 3, 4});
  const auto a = pool.draw(2);
  const auto b = pool.draw(2);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(*a, (std::vector<std::uint8_t>{1, 2}));
  EXPECT_EQ(*b, (std::vector<std::uint8_t>{3, 4}));
  EXPECT_EQ(pool.total_deposited(), 4u);
}

TEST(SecretPool, Key128Helper) {
  core::SecretPool pool;
  pool.deposit(std::vector<std::uint8_t>(20, 7));
  EXPECT_TRUE(pool.draw_key128().has_value());
  EXPECT_FALSE(pool.draw_key128().has_value());
}

// Exhaustive check of the shared k-subset walker: for every (n, k) with
// n <= 8, the enumerated subsets must match, in order and count, the
// subsets generated from std::prev_permutation over a selection mask
// (prev_permutation of a descending-sorted mask yields k-subsets in
// lexicographic position order).
TEST(NextKSubset, MatchesPrevPermutationExhaustively) {
  for (std::size_t n = 0; n <= 8; ++n) {
    for (std::size_t k = 0; k <= n; ++k) {
      // Reference enumeration via permutations of a {1 x k, 0 x (n-k)} mask.
      std::vector<std::vector<std::size_t>> want;
      std::vector<int> mask(n, 0);
      for (std::size_t i = 0; i < k; ++i) mask[i] = 1;
      do {
        std::vector<std::size_t> subset;
        for (std::size_t i = 0; i < n; ++i)
          if (mask[i] == 1) subset.push_back(i);
        want.push_back(std::move(subset));
      } while (std::prev_permutation(mask.begin(), mask.end()));

      std::vector<std::vector<std::size_t>> got;
      std::vector<std::size_t> pick(k);
      for (std::size_t i = 0; i < k; ++i) pick[i] = i;
      do {
        got.emplace_back(pick.begin(), pick.end());
      } while (util::next_k_subset(pick, n));

      EXPECT_EQ(got, want) << "n=" << n << " k=" << k;
    }
  }
}

TEST(NextKSubset, LastSubsetStopsAndStaysPut) {
  std::vector<std::size_t> pick{2, 3, 4};  // the last 3-subset of [0, 5)
  EXPECT_FALSE(util::next_k_subset(pick, 5));
  EXPECT_EQ(pick, (std::vector<std::size_t>{2, 3, 4}));
  std::vector<std::size_t> empty;
  EXPECT_FALSE(util::next_k_subset(empty, 4));  // k == 0: one empty subset
}

}  // namespace
}  // namespace thinair
