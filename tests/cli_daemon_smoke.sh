#!/usr/bin/env bash
# Two-process (and four-process) key agreement through the thinair CLI:
# start thinaird on an ephemeral port, run one `thinair client` process per
# terminal, and require every process to print the identical key.
#
#   usage: cli_daemon_smoke.sh /path/to/thinair
set -u

THINAIR=${1:?usage: cli_daemon_smoke.sh /path/to/thinair}
WORK=$(mktemp -d)
SERVE_PID=
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null
  wait 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

"$THINAIR" serve --port 0 --seed 2026 >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!

PORT=
for _ in $(seq 50); do
  PORT=$(grep -oE 'listening on [0-9.]+:[0-9]+' "$WORK/serve.log" 2>/dev/null |
         grep -oE '[0-9]+$')
  [ -n "$PORT" ] && break
  kill -0 "$SERVE_PID" 2>/dev/null || fail "daemon exited during startup"
  sleep 0.1
done
[ -n "$PORT" ] || fail "daemon never reported its port"

run_group() {
  local session=$1 members=$2
  local pids=() node rc=0
  for node in $(seq 0 $((members - 1))); do
    "$THINAIR" client --port "$PORT" --session "$session" --node "$node" \
      --members "$members" --quiet \
      >"$WORK/key_${session}_${node}.txt" 2>"$WORK/err_${session}_${node}.txt" &
    pids+=($!)
  done
  for node in $(seq 0 $((members - 1))); do
    wait "${pids[$node]}" || {
      echo "client $node (session $session) failed:" >&2
      cat "$WORK/err_${session}_${node}.txt" >&2
      rc=1
    }
  done
  [ "$rc" -eq 0 ] || fail "a client of session $session exited nonzero"
  for node in $(seq 1 $((members - 1))); do
    cmp -s "$WORK/key_${session}_0.txt" "$WORK/key_${session}_${node}.txt" ||
      fail "session $session: node $node derived a different key"
  done
  [ -s "$WORK/key_${session}_0.txt" ] || fail "session $session: empty key"
  # A key line is hex plus newline; require a real secret, not just "\n".
  [ "$(wc -c <"$WORK/key_${session}_0.txt")" -gt 16 ] ||
    fail "session $session: key too short"
  echo "session $session: $members clients agree" \
       "($(($(wc -c <"$WORK/key_${session}_0.txt") / 2)) bytes)"
}

run_group 21 2
run_group 41 4

echo "PASS"
