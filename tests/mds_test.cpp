// MDS constructions: the any-k-columns-invertible property is the entire
// security and repair foundation of the y/z/s constructions.
#include "gf/mds.h"

#include <gtest/gtest.h>

namespace thinair::gf::mds {
namespace {

TEST(Mds, VandermondeShapeAndFirstRow) {
  const Matrix g = vandermonde(3, 7);
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_EQ(g.cols(), 7u);
  for (std::size_t j = 0; j < 7; ++j) EXPECT_EQ(g.at(0, j), kOne);
  // Second row holds the evaluation points alpha^j.
  for (std::size_t j = 0; j < 7; ++j)
    EXPECT_EQ(g.at(1, j), GF256::alpha_pow(static_cast<unsigned>(j)));
}

TEST(Mds, VandermondePreconditions) {
  EXPECT_THROW(vandermonde(5, 3), std::invalid_argument);
  EXPECT_THROW(vandermonde(1, 256), std::invalid_argument);
  EXPECT_NO_THROW(vandermonde(255, 255));
}

TEST(Mds, VandermondeSquareInvertible) {
  for (std::size_t n : {1u, 2u, 5u, 17u, 64u}) {
    EXPECT_TRUE(vandermonde_square(n).invertible()) << "n=" << n;
  }
}

TEST(Mds, CauchyEverySquareSubmatrixInvertible) {
  const Matrix g = cauchy(3, 5);
  // All 1x1, plus sampled 2x2 and 3x3 submatrices must be invertible —
  // the stronger-than-MDS Cauchy property.
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 5; ++j)
      EXPECT_FALSE(g.at(i, j).is_zero());
  for (std::size_t r1 = 0; r1 < 3; ++r1)
    for (std::size_t r2 = r1 + 1; r2 < 3; ++r2)
      for (std::size_t c1 = 0; c1 < 5; ++c1)
        for (std::size_t c2 = c1 + 1; c2 < 5; ++c2) {
          const std::vector<std::size_t> rows{r1, r2}, cols{c1, c2};
          EXPECT_TRUE(g.select_rows(rows).select_columns(cols).invertible());
        }
}

TEST(Mds, CauchyPrecondition) {
  EXPECT_THROW(cauchy(200, 100), std::invalid_argument);
  EXPECT_NO_THROW(cauchy(128, 128));
}

TEST(Mds, SystematicFormHasIdentityPrefix) {
  const Matrix g = systematic(3, 6);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_EQ(g.at(i, j), i == j ? kOne : kZero);
}

TEST(Mds, IsMdsAcceptsVandermondeRejectsCorrupted) {
  const Matrix good = vandermonde(3, 6);
  EXPECT_TRUE(is_mds(good));

  Matrix bad = good;
  // Duplicate a column: those 3 columns can no longer be independent.
  for (std::size_t i = 0; i < 3; ++i) bad.set(i, 1, bad.at(i, 0));
  EXPECT_FALSE(is_mds(bad));
}

TEST(Mds, SystematicIsStillMds) { EXPECT_TRUE(is_mds(systematic(3, 7))); }

// The property phase 1 consumes: ANY k columns of the k x n generator are
// invertible, i.e. an adversary missing any n-k inputs learns nothing and
// a decoder holding any k inputs can reconstruct.
class AnyColumnsSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(AnyColumnsSweep, EveryKColumnSubsetInvertible) {
  const auto [k, n] = GetParam();
  EXPECT_TRUE(is_mds(vandermonde(k, n))) << "k=" << k << " n=" << n;
}

TEST_P(AnyColumnsSweep, CauchyIsAlsoMds) {
  const auto [k, n] = GetParam();
  EXPECT_TRUE(is_mds(cauchy(k, n))) << "k=" << k << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    SmallCodes, AnyColumnsSweep,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 8},
                      std::pair<std::size_t, std::size_t>{2, 6},
                      std::pair<std::size_t, std::size_t>{2, 12},
                      std::pair<std::size_t, std::size_t>{3, 8},
                      std::pair<std::size_t, std::size_t>{4, 8},
                      std::pair<std::size_t, std::size_t>{5, 7},
                      std::pair<std::size_t, std::size_t>{6, 6}));

// Consecutive-row Vandermonde blocks (rows 0..r-1) restricted to any r
// columns stay invertible — the z-repair argument in phase 2.
TEST(Mds, TopRowsAnyColumnsInvertible) {
  const Matrix v = vandermonde_square(9);
  for (std::size_t r = 1; r <= 4; ++r) {
    std::vector<std::size_t> rows(r);
    for (std::size_t i = 0; i < r; ++i) rows[i] = i;
    const Matrix h = v.select_rows(rows);
    // Sample several r-column subsets.
    const std::vector<std::vector<std::size_t>> col_sets{
        {0, 1, 2, 3}, {5, 6, 7, 8}, {0, 2, 4, 8}, {1, 3, 5, 7}};
    for (const auto& cols : col_sets) {
      const std::vector<std::size_t> use(cols.begin(),
                                         cols.begin() + static_cast<long>(r));
      EXPECT_EQ(h.select_columns(use).rank(), r);
    }
  }
}

}  // namespace
}  // namespace thinair::gf::mds
