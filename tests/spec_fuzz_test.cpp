// Randomized round-trip fuzz for the spec front-end: ~500 seeded random
// ScenarioSpecs must survive parse(describe(S)) == S, serialize as a
// fixed point, and stay bit-identical when every serialized value is
// --set back onto them (override idempotence). This is the property the
// `thinair describe` / `--spec` / `--set` surface is built on; the
// hand-picked cases live in spec_test.cpp, this suite walks the space.
#include "runtime/spec_parse.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "channel/rng.h"
#include "runtime/result_sink.h"  // format_double

namespace thinair::runtime {
namespace {

// All random values are chosen exactly representable (small integers
// scaled by powers of two), so equality after a text round-trip cannot
// hinge on double-formatting corner cases — the serializer's
// shortest-round-trip contract is tested separately by the built-in
// suite; here the generator stays conservative so a failure always means
// a front-end bug.

double rnd_prob(channel::Rng& rng) {
  return static_cast<double>(rng.next_byte() % 65) / 64.0;
}

double rnd_double(channel::Rng& rng, double lo, double hi) {
  const double t = static_cast<double>(rng.next_byte()) / 256.0;
  // Snap to 1/16 steps: exactly representable and within [lo, hi].
  const double v = lo + t * (hi - lo);
  return lo + static_cast<double>(static_cast<int>((v - lo) * 16.0)) / 16.0;
}

std::size_t rnd_int(channel::Rng& rng, std::size_t lo, std::size_t hi) {
  return lo + rng.next_byte() % (hi - lo + 1);
}

bool rnd_bool(channel::Rng& rng) { return rng.next_byte() % 2 == 0; }

std::string rnd_string(channel::Rng& rng) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 "
      "-_.:,;!?#[]=\"\\";
  std::string out;
  const std::size_t len = rng.next_byte() % 24;
  for (std::size_t i = 0; i < len; ++i) {
    const std::uint8_t roll = rng.next_byte();
    if (roll < 8) {
      out += '\n';  // exercises the \n escape
    } else {
      out += kAlphabet[roll % (sizeof(kAlphabet) - 1)];
    }
  }
  return out;
}

ScenarioSpec random_spec(std::uint64_t seed) {
  channel::Rng rng(seed);
  ScenarioSpec s;
  s.name = rnd_string(rng);
  s.description = rnd_string(rng);

  // Channel: every model kind, every knob the grammar exposes.
  const auto& models = channel::channel_model_names();
  s.channel.model =
      *channel::channel_model_from_string(models[rng.next_byte() %
                                                 models.size()]);
  s.channel.iid_p = rnd_prob(rng);
  s.channel.default_p = rnd_prob(rng);
  const std::size_t n_links = rng.next_byte() % 4;
  for (std::size_t i = 0; i < n_links; ++i)
    s.channel.links.push_back(channel::LinkErasure{
        static_cast<std::uint16_t>(rng.next_byte() % 16),
        static_cast<std::uint16_t>(rng.next_byte() % 16), rnd_prob(rng)});
  // Perfect-square area: side = sqrt(k^2) = k and k * k = area, both
  // exact, so the area <-> side conversion cannot drift.
  const double side = static_cast<double>(rnd_int(rng, 5, 40));
  s.channel.testbed.grid = channel::CellGrid(side * side);
  s.channel.testbed.interference_enabled = rnd_bool(rng);
  s.channel.testbed.pathloss.tx_power_dbm = rnd_double(rng, -10.0, 30.0);
  s.channel.testbed.pathloss.ref_loss_db = rnd_double(rng, 20.0, 60.0);
  s.channel.testbed.pathloss.exponent = rnd_double(rng, 2.0, 5.0);
  s.channel.testbed.pathloss.min_distance_m = rnd_double(rng, 0.5, 2.0);
  s.channel.testbed.interferer.tx_power_dbm = rnd_double(rng, -10.0, 30.0);
  s.channel.testbed.interferer.sidelobe_rejection_db =
      rnd_double(rng, 0.0, 30.0);
  s.channel.testbed.sinr.noise_floor_dbm = rnd_double(rng, -100.0, -80.0);
  s.channel.testbed.sinr.per_threshold_db = rnd_double(rng, 0.0, 10.0);
  s.channel.testbed.sinr.per_scale_db = rnd_double(rng, 1.0, 8.0);
  s.channel.testbed.sinr.floor = rnd_prob(rng) / 2.0;
  s.channel.testbed.sinr.ceiling =
      0.5 + rnd_prob(rng) / 2.0;  // keep ceiling >= floor

  // Topology: n lists (possibly empty), caps, cells, positions.
  s.topology.n_values.clear();
  const std::size_t n_count = rng.next_byte() % 5;
  for (std::size_t i = 0; i < n_count; ++i)
    s.topology.n_values.push_back(rnd_int(rng, 2, 8));
  s.topology.max_placements = rnd_int(rng, 0, 200);
  const std::size_t n_cells = rng.next_byte() % 5;
  for (std::size_t i = 0; i < n_cells; ++i)
    s.topology.cells.push_back(rng.next_byte() % channel::CellGrid::kCells);
  s.topology.eve_cell = rng.next_byte() % channel::CellGrid::kCells;
  const std::size_t n_pos = rng.next_byte() % 3;
  for (std::size_t i = 0; i < n_pos; ++i)
    s.topology.positions.push_back(channel::Vec2{
        rnd_double(rng, 0.0, 30.0), rnd_double(rng, 0.0, 30.0)});
  if (rnd_bool(rng))
    s.topology.eve_position =
        channel::Vec2{rnd_double(rng, 0.0, 30.0), rnd_double(rng, 0.0, 30.0)};

  // Session.
  s.session.x_packets = rnd_int(rng, 1, 255);
  s.session.payload_bytes = rnd_int(rng, 1, 255);
  s.session.rounds = rnd_int(rng, 0, 12);
  s.session.rotate_alice = rnd_bool(rng);
  s.session.pool = rnd_bool(rng) ? core::PoolStrategy::kClassShared
                                 : core::PoolStrategy::kTerminalMds;

  // Estimator axis: 1..3 series over every kind, with and without caps.
  const auto& kinds = core::estimator_kind_names();
  s.estimator.series.clear();
  const std::size_t n_series = rnd_int(rng, 1, 3);  // empty is a parse error
  for (std::size_t i = 0; i < n_series; ++i)
    s.estimator.series.push_back(EstimatorSeries{
        *core::estimator_kind_from_string(
            kinds[rng.next_byte() % kinds.size()]),
        rnd_int(rng, 0, 60)});
  s.estimator.k_antennas = rnd_int(rng, 1, 4);
  s.estimator.fraction_delta = rnd_prob(rng);
  s.estimator.safety = rnd_prob(rng);

  // Sweep / output / mac.
  const std::size_t n_p = rng.next_byte() % 6;
  for (std::size_t i = 0; i < n_p; ++i)
    s.sweep.p_values.push_back(rnd_prob(rng));
  s.sweep.repeats = rnd_int(rng, 1, 30);
  if (rng.next_byte() % 4 == 0) {
    // The generic key axis: realistic dotted paths (the round trip does
    // not compile the spec, so the target's validity is irrelevant here,
    // but quoting/dots must survive the text form).
    static constexpr const char* kKeys[] = {
        "session.x_packets", "channel.p", "estimator.k_antennas",
        "mac.slot_s"};
    s.sweep.key = kKeys[rng.next_byte() % 4];
    const std::size_t n_vals = rnd_int(rng, 1, 4);
    for (std::size_t i = 0; i < n_vals; ++i)
      s.sweep.values.push_back(static_cast<double>(i + 1) +
                               static_cast<double>(rng.next_byte() % 4) / 4.0);
  }
  const Baseline baselines[] = {Baseline::kGroup, Baseline::kUnicast,
                                Baseline::kBoth};
  s.output.baseline = baselines[rng.next_byte() % 3];
  s.output.metrics = rnd_bool(rng) ? MetricSet::kSession
                                   : MetricSet::kEfficiency;
  s.output.analytic = rnd_bool(rng);
  s.mac.data_rate_bps = static_cast<double>(rnd_int(rng, 1, 100)) * 1e5;
  s.mac.per_frame_overhead_s =
      static_cast<double>(rnd_int(rng, 0, 64)) / 1048576.0;
  s.mac.inter_frame_gap_s =
      static_cast<double>(rnd_int(rng, 0, 64)) / 1048576.0;
  s.mac.slot_duration_s = static_cast<double>(rnd_int(rng, 1, 64)) / 1024.0;

  // Run pinning: walk all four presence states (unset / seed-only /
  // threads-only / both) — the [run] section is emitted conditionally,
  // so absence must round-trip as faithfully as presence.
  if (rnd_bool(rng)) s.run.seed = rng.next_u64();
  if (rnd_bool(rng)) s.run.threads = rnd_int(rng, 0, 16);
  return s;
}

// Replay every serialized "key = value" line of `text` onto `spec` as a
// dotted-path override, tracking the section context exactly as a user's
// --set would name it.
void apply_all_serialized_overrides(ScenarioSpec& spec,
                                    const std::string& text) {
  std::string section;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    if (line.front() == '[') {
      section = line.substr(1, line.size() - 2);
      continue;
    }
    const std::size_t eq = line.find('=');
    ASSERT_NE(eq, std::string::npos) << line;
    std::string key = line.substr(0, eq);
    while (!key.empty() && key.back() == ' ') key.pop_back();
    const std::string value = line.substr(eq + 1);
    const std::string path = section.empty() ? key : section + "." + key;
    ASSERT_NO_THROW(apply_override(spec, path, value))
        << path << " = " << value;
  }
}

TEST(SpecFuzz, FiveHundredRandomSpecsRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const ScenarioSpec spec = random_spec(seed);
    const std::string text = serialize_spec(spec);

    // parse(describe(S)) == S ...
    ScenarioSpec parsed;
    ASSERT_NO_THROW(parsed = parse_spec(text));
    ASSERT_EQ(parsed, spec);

    // ... describe is a fixed point ...
    ASSERT_EQ(serialize_spec(parsed), text);

    // ... and --set of every serialized value is idempotent.
    apply_all_serialized_overrides(parsed, text);
    ASSERT_EQ(parsed, spec);
  }
}

// Overrides on a random spec change exactly the named field and applying
// the OLD serialized value restores bit-equality (the --set round trip
// the CLI's describe -> edit -> run loop depends on).
TEST(SpecFuzz, OverrideThenRestoreIsIdentity) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const ScenarioSpec spec = random_spec(seed);
    ScenarioSpec mutated = spec;
    apply_override(mutated, "session.x_packets", "13");
    apply_override(mutated, "channel.p", "0.125");
    EXPECT_NE(mutated, spec);
    apply_override(mutated, "session.x_packets",
                   std::to_string(spec.session.x_packets));
    apply_override(mutated, "channel.p",
                   format_double(spec.channel.iid_p));
    EXPECT_EQ(mutated, spec);
  }
}

}  // namespace
}  // namespace thinair::runtime
