// Sec. 3.3 estimators: oracle, counts, fractions, slots and geometry.
#include "core/estimator.h"

#include <gtest/gtest.h>

namespace thinair::core {
namespace {

packet::NodeId T(std::uint16_t v) { return packet::NodeId{v}; }

ReceptionTable table3() {
  ReceptionTable t(T(0), {T(1), T(2), T(3)}, 10);
  t.set_received(T(1), {0, 1, 2, 3, 4, 5});
  t.set_received(T(2), {0, 2, 4, 6, 8});
  t.set_received(T(3), {1, 3, 5, 7, 9});
  return t;
}

net::NodeSet exempt(std::initializer_list<std::uint16_t> ids) {
  net::NodeSet s;
  for (auto v : ids) s.insert(T(v));
  return s;
}

TEST(OracleEstimator, CountsExactMisses) {
  const OracleEstimator est({0, 1, 2}, 10);  // Eve got x0..x2
  EXPECT_EQ(est.missed_within({0, 1, 2}, {}), 0u);
  EXPECT_EQ(est.missed_within({3, 4, 5}, {}), 3u);
  EXPECT_EQ(est.missed_within({2, 3}, {}), 1u);
}

TEST(OracleEstimator, RejectsOutOfUniverse) {
  EXPECT_THROW(OracleEstimator({12}, 10), std::out_of_range);
}

TEST(FractionEstimator, FlooredFraction) {
  const FractionEstimator est(0.3);
  EXPECT_EQ(est.missed_within({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, {}), 3u);
  EXPECT_EQ(est.missed_within({0, 1, 2}, {}), 0u);  // floor(0.9)
  EXPECT_THROW(FractionEstimator(1.5), std::invalid_argument);
}

TEST(KSubsetEstimator, LeaveOneOutTakesWorstSingleHypothesis) {
  const ReceptionTable t = table3();
  const KSubsetEstimator est(t, 1);
  // Set = R1 = {0..5}. Hypotheses (exempting Alice and T1): T2 missed
  // {1,3,5} of it -> 3; T3 missed {0,2,4} -> 3. Bound = 3.
  EXPECT_EQ(est.missed_within(t.received(T(1)), exempt({0, 1})), 3u);
}

TEST(KSubsetEstimator, TwoAntennaUnionIsStricter) {
  const ReceptionTable t = table3();
  const KSubsetEstimator est1(t, 1);
  const KSubsetEstimator est2(t, 2);
  // With T2 and T3 pooled, their union covers all of R1: bound 0.
  EXPECT_EQ(est2.missed_within(t.received(T(1)), exempt({0, 1})), 0u);
  EXPECT_LE(est2.missed_within(t.received(T(1)), exempt({0, 1})),
            est1.missed_within(t.received(T(1)), exempt({0, 1})));
}

TEST(KSubsetEstimator, NoCandidatesMeansZero) {
  const ReceptionTable t = table3();
  const KSubsetEstimator est(t, 1);
  EXPECT_EQ(est.missed_within({6, 7}, exempt({0, 1, 2, 3})), 0u);
}

TEST(KSubsetEstimator, KZeroThrows) {
  const ReceptionTable t = table3();
  EXPECT_THROW(KSubsetEstimator(t, 0), std::invalid_argument);
}

TEST(LooFractionEstimator, UsesWorstMissRate) {
  const ReceptionTable t = table3();
  const LooFractionEstimator est(t, 1.0);
  // Miss rates: T1 misses 4/10, T2 and T3 miss 5/10; min = 0.4.
  EXPECT_DOUBLE_EQ(est.delta(), 0.4);
  EXPECT_EQ(est.missed_within({0, 1, 2, 3, 4}, {}), 2u);  // floor(2.0)
}

TEST(LooFractionEstimator, SafetyDerates) {
  const ReceptionTable t = table3();
  const LooFractionEstimator est(t, 0.5);
  EXPECT_DOUBLE_EQ(est.delta(), 0.2);
  EXPECT_THROW(LooFractionEstimator(t, 0.0), std::invalid_argument);
}

TEST(SlotFractionEstimator, PerSlotBounds) {
  // Universe 10: slots 0 = {0..4}, 1 = {5..9}.
  ReceptionTable t(T(0), {T(1), T(2)}, 10);
  t.set_received(T(1), {0, 1, 2, 3, 4});        // missed nothing in slot 0
  t.set_received(T(2), {0, 1, 2, 3, 4, 5, 6});  // missed 3/5 in slot 1
  const std::vector<std::size_t> slot_of{0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  const SlotFractionEstimator est(t, slot_of, 1.0);
  // Slot 0: min miss = 0 (T1 got all). Slot 1: T1 missed 5/5, T2 3/5 ->
  // min 0.6.
  EXPECT_EQ(est.missed_within({0, 1, 2, 3, 4}, {}), 0u);
  EXPECT_EQ(est.missed_within({5, 6, 7, 8, 9}, {}), 3u);
  EXPECT_EQ(est.missed_within({0, 5}, {}), 0u);  // floor(0.6)
}

TEST(SlotFractionEstimator, EmptySlotMapDegeneratesToGlobal) {
  const ReceptionTable t = table3();
  const SlotFractionEstimator est(t, {}, 1.0);
  // One global slot: min miss rate = 0.4 (T1).
  EXPECT_EQ(est.missed_within({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, {}), 4u);
}

TEST(GeometryEstimator, SingleFreeCellGivesExactPattern) {
  // n=8-style: occupied cells 0..7, free cell 8 (row 2, col 2). Eve's
  // hypothesis is unique. Universe 9, one packet per slot (slot i = i).
  ReceptionTable t(T(0), {T(1)}, 9);
  // Receiver in cell 1 (row 0, col 1): jammed in slots with row 0 (0,1,2)
  // or col 1 (1,4,7) -> jammed {0,1,2,4,7}. Say it missed exactly those.
  t.set_received(T(1), {3, 5, 6, 8});
  std::vector<std::size_t> slot_of{0, 1, 2, 3, 4, 5, 6, 7, 8};
  const GeometryEstimator est(t, slot_of, {0, 1, 2, 3, 4, 5, 6, 7}, {1},
                              1.0);
  EXPECT_EQ(est.candidate_cells(), (std::vector<std::size_t>{8}));
  EXPECT_DOUBLE_EQ(est.jam_rate(), 1.0);
  EXPECT_DOUBLE_EQ(est.clear_rate(), 0.0);
  // Cell 8 (row 2, col 2) is jammed in slots {2,5,6,7,8}: those packets
  // count with jam_rate 1, others with clear_rate 0.
  EXPECT_EQ(est.missed_within({2, 5, 6, 7, 8}, {}), 5u);
  EXPECT_EQ(est.missed_within({0, 1, 3, 4}, {}), 0u);
}

TEST(GeometryEstimator, MoreFreeCellsMoreConservative) {
  ReceptionTable t(T(0), {T(1)}, 9);
  t.set_received(T(1), {3, 5, 6, 8});
  std::vector<std::size_t> slot_of{0, 1, 2, 3, 4, 5, 6, 7, 8};
  const GeometryEstimator tight(t, slot_of, {0, 1, 2, 3, 4, 5, 6, 7}, {1},
                                1.0);
  const GeometryEstimator loose(t, slot_of, {0, 1}, {1}, 1.0);
  const std::vector<std::uint32_t> all{0, 1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_LE(loose.missed_within(all, {}), tight.missed_within(all, {}));
}

TEST(GeometryEstimator, NoFreeCellThrows) {
  ReceptionTable t(T(0), {T(1)}, 4);
  t.set_received(T(1), {0});
  EXPECT_THROW(GeometryEstimator(t, {0, 0, 0, 0},
                                 {0, 1, 2, 3, 4, 5, 6, 7, 8}, {1}, 1.0),
               std::invalid_argument);
}

TEST(BuildEstimator, DispatchesAllKinds) {
  const ReceptionTable t = table3();
  for (EstimatorKind kind :
       {EstimatorKind::kOracle, EstimatorKind::kLeaveOneOut,
        EstimatorKind::kKSubset, EstimatorKind::kFraction,
        EstimatorKind::kLooFraction, EstimatorKind::kSlotFraction}) {
    EstimatorSpec spec;
    spec.kind = kind;
    const auto est = build_estimator(spec, t, {0, 1}, {});
    ASSERT_NE(est, nullptr);
    EXPECT_FALSE(est->name().empty());
  }
}

TEST(BuildEstimator, GeometryNeedsCells) {
  const ReceptionTable t = table3();
  EstimatorSpec spec;
  spec.kind = EstimatorKind::kGeometry;
  spec.occupied_cells = {0, 1, 2, 3};
  const auto est = build_estimator(spec, t, {}, {}, {1, 2, 3});
  EXPECT_EQ(est->name(), "geometry");
}

}  // namespace
}  // namespace thinair::core
