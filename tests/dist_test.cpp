// The distributed-sweep subsystem, tested without a single socket:
// shard arithmetic (exact cover at every (n, size) combination), the
// frame codec (round trips, strict/total decoding under truncation and
// corruption, FrameReader streaming), and the sans-io SweepMaster /
// SweepWorker cores driven frame-by-frame through an in-process pump —
// including the fault paths (worker death mid-shard, lost records,
// retry cap, timeouts, handshake rejection) and the acceptance
// property: the merged NDJSON is byte-identical to a single-process
// run even when a worker dies after delivering half a shard.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "channel/rng.h"
#include "dist/frame.h"
#include "dist/master.h"
#include "dist/shard.h"
#include "dist/worker.h"
#include "runtime/engine.h"
#include "runtime/result_sink.h"
#include "runtime/scenario_spec.h"
#include "runtime/spec_parse.h"
#include "util/mutex.h"
#include "util/sha256.h"

namespace thinair::dist {
namespace {

using runtime::ResultSink;
using runtime::RunOptions;
using runtime::Scenario;
using runtime::ScenarioSpec;
using runtime::SessionSpec;

// ----------------------------------------------------------- shard math

TEST(Shards, ExactCoverAtEveryCombination) {
  // make_shards must return an ordered, disjoint, exact cover of
  // [0, n) for every combination — the master's dedup vector and the
  // sink's push-exactly-once contract both lean on this.
  const std::uint64_t case_counts[] = {0, 1, 2, 5, 7, 64, 100, 1000};
  const std::uint64_t sizes[] = {1, 2, 3, 7, 64, 4096};
  for (const std::uint64_t n : case_counts) {
    for (const std::uint64_t size : sizes) {
      SCOPED_TRACE("n=" + std::to_string(n) + " size=" + std::to_string(size));
      const std::vector<Shard> shards = make_shards(n, size);
      std::uint64_t next = 0;
      for (const Shard& s : shards) {
        EXPECT_EQ(s.first, next);
        EXPECT_GT(s.count, 0u);
        EXPECT_LE(s.count, size);
        next += s.count;
      }
      EXPECT_EQ(next, n);
      const std::uint64_t expected = n == 0 ? 0 : (n + size - 1) / size;
      EXPECT_EQ(shards.size(), expected);
    }
  }
}

TEST(Shards, ZeroShardSizeThrows) {
  EXPECT_THROW((void)make_shards(10, 0), std::invalid_argument);
}

TEST(Shards, DefaultShardSizeIsSaneEverywhere) {
  // Never 0 (degenerate inputs included), never above the clamp, and
  // aiming for about 8 shards per worker in the comfortable regime.
  EXPECT_GE(default_shard_size(0, 0), 1u);
  EXPECT_GE(default_shard_size(0, 4), 1u);
  EXPECT_GE(default_shard_size(17, 0), 1u);
  const std::uint64_t case_counts[] = {1, 100, 10000, 1000000};
  const std::uint64_t worker_counts[] = {1, 2, 8, 64};
  for (const std::uint64_t n : case_counts) {
    for (const std::uint64_t w : worker_counts) {
      const std::uint64_t size = default_shard_size(n, w);
      EXPECT_GE(size, 1u);
      EXPECT_LE(size, 4096u);
    }
  }
  // 800 cases over 4 workers: 8 shards per worker = 25 cases per shard.
  EXPECT_EQ(default_shard_size(800, 4), 25u);
}

// ---------------------------------------------------------- frame codec

std::vector<Frame> all_frame_kinds() {
  HelloFrame hello;
  hello.master_seed = 0xdeadbeefcafe1234ULL;
  hello.n_cases = 42;
  hello.spec_sha256 = std::string(64, 'a');
  hello.spec_text = "[session]\nx_packets = 90\n";
  RecordFrame record;
  record.case_index = 7;
  record.group = "n=3";
  record.metrics = {{"reliability", 0x3FF0000000000000ULL},
                    {"secret_rate_bps", 0x40590C0000000000ULL},
                    {"nan_metric", 0x7FF8000000000001ULL},  // a quiet NaN
                    {"negzero", 0x8000000000000000ULL}};    // -0.0
  return {Frame{std::move(hello)},
          Frame{ShardFrame{128, 64}},
          Frame{std::move(record)},
          Frame{ShardDoneFrame{128, 64}},
          Frame{ByeFrame{}},
          Frame{ErrorFrame{"worker: spec parse failed"}}};
}

TEST(FrameCodec, EveryFrameTypeRoundTrips) {
  for (const Frame& frame : all_frame_kinds()) {
    SCOPED_TRACE(static_cast<int>(frame.type()));
    const std::vector<std::uint8_t> bytes = encode_frame(frame);
    const DecodeResult result = decode_frame(bytes);
    ASSERT_EQ(result.error, DecodeError::kNone);
    ASSERT_TRUE(result.frame.has_value());
    EXPECT_EQ(result.consumed, bytes.size());
    EXPECT_EQ(*result.frame, frame);
  }
}

TEST(FrameCodec, EveryTruncationIsNeedMoreAndConsumesNothing) {
  // Strict totality, half one: a stream that ends mid-frame is never an
  // error and never consumes bytes — the reader just waits. Every
  // proper prefix of every frame type must say exactly that.
  for (const Frame& frame : all_frame_kinds()) {
    const std::vector<std::uint8_t> bytes = encode_frame(frame);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      const DecodeResult result = decode_frame(std::span(bytes.data(), len));
      EXPECT_EQ(result.error, DecodeError::kNeedMore)
          << "type " << static_cast<int>(frame.type()) << " prefix " << len;
      EXPECT_EQ(result.consumed, 0u);
      EXPECT_FALSE(result.frame.has_value());
    }
  }
}

std::vector<std::uint8_t> raw_frame(std::uint32_t body_len,
                                    std::vector<std::uint8_t> body) {
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 4; ++i)
    bytes.push_back(static_cast<std::uint8_t>(body_len >> (8 * i)));
  for (const std::uint8_t b : body) bytes.push_back(b);
  return bytes;
}

TEST(FrameCodec, OversizedLengthPrefixIsRejectedBeforeBuffering) {
  // A hostile length prefix must be classified from the 4-byte header
  // alone — the driver drops the connection instead of allocating.
  const auto bytes =
      raw_frame(static_cast<std::uint32_t>(kMaxFrameBody) + 1, {});
  const DecodeResult result = decode_frame(bytes);
  EXPECT_EQ(result.error, DecodeError::kOversized);
}

TEST(FrameCodec, UnknownTypeByteIsRejected) {
  const auto bytes = raw_frame(1, {kMaxFrameType + 1});
  const DecodeResult result = decode_frame(bytes);
  EXPECT_EQ(result.error, DecodeError::kBadType);
}

TEST(FrameCodec, TrailingBytesInsideTheBodyAreRejected) {
  // kBye has an empty body; declaring one extra byte means the fields
  // end before the body does — kTrailing, not a silent skip.
  const auto bytes =
      raw_frame(2, {static_cast<std::uint8_t>(FrameType::kBye), 0x00});
  const DecodeResult result = decode_frame(bytes);
  EXPECT_EQ(result.error, DecodeError::kTrailing);
}

TEST(FrameCodec, FieldPastTheBodyIsMalformed) {
  // A kError whose string length runs past the declared body.
  const auto bytes =
      raw_frame(5, {static_cast<std::uint8_t>(FrameType::kError), 0xFF, 0x00,
                    0x00, 0x00});
  const DecodeResult result = decode_frame(bytes);
  EXPECT_EQ(result.error, DecodeError::kMalformed);
}

TEST(FrameCodec, MetricCountBoundIsEnforced) {
  // body: type + u64 case_index + u32 group_len + u32 metric_count.
  std::vector<std::uint8_t> body = {
      static_cast<std::uint8_t>(FrameType::kRecord)};
  for (int i = 0; i < 8; ++i) body.push_back(0);  // case_index
  for (int i = 0; i < 4; ++i) body.push_back(0);  // group ""
  const auto count = static_cast<std::uint32_t>(kMaxMetricsPerRecord) + 1;
  for (int i = 0; i < 4; ++i)
    body.push_back(static_cast<std::uint8_t>(count >> (8 * i)));
  const auto bytes =
      raw_frame(static_cast<std::uint32_t>(body.size()), std::move(body));
  const DecodeResult result = decode_frame(bytes);
  EXPECT_EQ(result.error, DecodeError::kMalformed);
}

TEST(FrameCodec, CorruptionFuzzNeverCrashesAndNeverOverreads) {
  // Flip one byte of a valid frame at every position: decode must stay
  // total — any verdict is fine except an out-of-bounds read (the
  // sanitizers' department) or a result that claims more bytes than
  // exist. Then pure-noise buffers, same contract.
  channel::Rng rng(99);
  for (const Frame& frame : all_frame_kinds()) {
    const std::vector<std::uint8_t> bytes = encode_frame(frame);
    for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
      std::vector<std::uint8_t> mutated = bytes;
      mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.next_byte() % 255);
      const DecodeResult result = decode_frame(mutated);
      EXPECT_LE(result.consumed, mutated.size());
      EXPECT_EQ(result.frame.has_value(), result.error == DecodeError::kNone);
    }
  }
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> noise(rng.next_byte() % 64);
    for (auto& b : noise) b = rng.next_byte();
    const DecodeResult result = decode_frame(noise);
    EXPECT_LE(result.consumed, noise.size());
  }
}

TEST(FrameReaderTest, ReassemblesOneByteAtATime) {
  // The stream boundary torture test: a whole conversation fed a single
  // byte per feed() call must come out intact, in order.
  const std::vector<Frame> frames = all_frame_kinds();
  std::vector<std::uint8_t> stream;
  for (const Frame& frame : frames) {
    const auto bytes = encode_frame(frame);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  FrameReader reader;
  std::vector<Frame> decoded;
  for (const std::uint8_t byte : stream) {
    reader.feed(std::span(&byte, 1));
    while (auto frame = reader.next()) decoded.push_back(std::move(*frame));
  }
  EXPECT_EQ(reader.error(), DecodeError::kNone);
  ASSERT_EQ(decoded.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i)
    EXPECT_EQ(decoded[i], frames[i]) << i;
}

TEST(FrameReaderTest, LatchesAProtocolViolationForever) {
  FrameReader reader;
  reader.feed(raw_frame(1, {kMaxFrameType + 1}));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.error(), DecodeError::kBadType);
  // Even a valid frame after the violation stays unread: the stream is
  // poisoned and the connection must be dropped.
  reader.feed(encode_frame(Frame{ByeFrame{}}));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.error(), DecodeError::kBadType);
}

TEST(WireRecord, BitExactDoubleRoundTrip) {
  // to_wire/from_wire must move metric doubles as bit patterns: -0.0,
  // denormals and infinities all survive, so the master formats exactly
  // the double the worker computed.
  runtime::CaseResult result;
  result.group = "n=4";
  result.metrics = {{"a", 1.0},
                    {"b", -0.0},
                    {"c", 5e-324},  // smallest denormal
                    {"d", std::numeric_limits<double>::infinity()}};
  const RecordFrame wire = to_wire(123, result);
  EXPECT_EQ(wire.case_index, 123u);
  const runtime::CaseResult back = from_wire(wire);
  EXPECT_EQ(back.group, result.group);
  ASSERT_EQ(back.metrics.size(), result.metrics.size());
  for (std::size_t i = 0; i < result.metrics.size(); ++i) {
    EXPECT_EQ(back.metrics[i].name, result.metrics[i].name);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back.metrics[i].value),
              std::bit_cast<std::uint64_t>(result.metrics[i].value));
  }
  // A NaN payload straight through the wire struct: bit_cast both ways
  // must preserve it even though the double compares unequal to itself.
  RecordFrame nan_wire;
  nan_wire.metrics = {{"nan", 0x7FF8DEADBEEF0001ULL}};
  const runtime::CaseResult nan_back = from_wire(nan_wire);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(nan_back.metrics[0].value),
            0x7FF8DEADBEEF0001ULL);
}

// --------------------------------------------- sans-io master <-> worker

// A cheap spec: 8 cases (2 p-values x 2 n x 2 repeats), milliseconds to
// run, exercising the group axis.
ScenarioSpec pump_spec() {
  SessionSpec session;
  session.x_packets = 30;
  session.rounds = 1;
  return ScenarioSpec{}
      .with_name("dist-pump")
      .on_iid(0.3)
      .sweep_p({0.2, 0.5})
      .with_n({2, 3})
      .with_session(session)
      .with_estimator(core::EstimatorKind::kLooFraction)
      .with_repeats(2);
}

std::string reference_ndjson(const Scenario& scenario,
                             const RunOptions& options) {
  std::ostringstream out;
  ResultSink sink(scenario.name, &out);
  (void)run_scenario(scenario, options, sink);
  return out.str();
}

// The in-process IO driver: owns the master, a sink and a set of live
// SweepWorkers, and moves frames both ways until the conversation
// quiesces. Every public method claims the master's loop role for its
// own scope (the Role is a runtime no-op; the claim is what the
// -Wthread-safety analysis checks), so tests read as fault scripts:
// connect / connect_wedged / connect_partial / kill / tick.
class Pump {
 public:
  Pump(const Scenario& scenario, const RunOptions& options,
       const MasterTuning& tuning)
      : sink_(scenario.name, &ndjson_),
        master_(scenario, options, tuning, &sink_) {}

  /// A healthy worker: handshakes and runs whatever it is handed.
  void connect(WorkerId id) {
    const util::RoleLock role(master_.loop_role());
    workers_.emplace(id, SweepWorker{});
    std::vector<MasterOutput> out;
    master_.on_worker_connected(id, now_s_, &out);
    deliver(std::move(out), std::nullopt);
  }

  /// Like connect, but every kRecord the worker sends is lost in
  /// transit — the master sees a kShardDone with missing records.
  void connect_dropping_records(WorkerId id) {
    const util::RoleLock role(master_.loop_role());
    workers_.emplace(id, SweepWorker{});
    std::vector<MasterOutput> out;
    master_.on_worker_connected(id, now_s_, &out);
    deliver(std::move(out), id);
  }

  /// A worker that handshakes, accepts its shard assignment, and then
  /// goes silent: the master holds it kRunning forever (until a kill
  /// or a timeout forfeits the shard).
  void connect_wedged(WorkerId id) {
    const util::RoleLock role(master_.loop_role());
    workers_.emplace(id, SweepWorker{});
    std::vector<MasterOutput> hello_out;
    master_.on_worker_connected(id, now_s_, &hello_out);
    ASSERT_EQ(hello_out.size(), 1u);
    std::vector<Frame> replies;
    workers_.at(id).on_frame(hello_out[0].frame, &replies);
    ASSERT_EQ(replies.size(), 1u);  // the hello ack
    std::vector<MasterOutput> swallowed;
    master_.on_frame(id, replies[0], now_s_, &swallowed);
  }

  /// A worker that runs its first shard but whose connection dies after
  /// `n_records` kRecord frames — no kShardDone, a partially delivered
  /// shard. Follow with kill(id).
  void connect_partial(WorkerId id, std::size_t n_records) {
    const util::RoleLock role(master_.loop_role());
    workers_.emplace(id, SweepWorker{});
    std::vector<MasterOutput> hello_out;
    master_.on_worker_connected(id, now_s_, &hello_out);
    ASSERT_EQ(hello_out.size(), 1u);
    std::vector<Frame> replies;
    workers_.at(id).on_frame(hello_out[0].frame, &replies);
    ASSERT_EQ(replies.size(), 1u);
    std::vector<MasterOutput> shard_out;
    master_.on_frame(id, replies[0], now_s_, &shard_out);
    ASSERT_EQ(shard_out.size(), 1u);
    ASSERT_EQ(shard_out[0].frame.type(), FrameType::kShard);
    replies.clear();
    workers_.at(id).on_frame(shard_out[0].frame, &replies);
    ASSERT_GT(replies.size(), n_records);  // records + kShardDone
    std::vector<MasterOutput> ignored;
    for (std::size_t i = 0; i < n_records; ++i)
      master_.on_frame(id, replies[i], now_s_, &ignored);
  }

  /// A connection whose hello ack carries the wrong spec hash. Returns
  /// the master's closing kError message ("" if none came back).
  std::string connect_bad_hello(WorkerId id) {
    const util::RoleLock role(master_.loop_role());
    std::vector<MasterOutput> hello_out;
    master_.on_worker_connected(id, now_s_, &hello_out);
    HelloFrame bad_ack;
    bad_ack.spec_sha256 = std::string(64, 'f');
    std::vector<MasterOutput> reply;
    master_.on_frame(id, Frame{std::move(bad_ack)}, now_s_, &reply);
    for (const MasterOutput& output : reply)
      if (output.to == id && output.frame.type() == FrameType::kError &&
          output.close)
        return std::get<ErrorFrame>(output.frame.body).message;
    return {};
  }

  /// The worker's process dies: its pending frames vanish with it.
  void kill(WorkerId id) {
    const util::RoleLock role(master_.loop_role());
    workers_.erase(id);
    std::vector<MasterOutput> out;
    master_.on_worker_closed(id, now_s_, &out);
    deliver(std::move(out), std::nullopt);
  }

  void tick(double delta_s) {
    const util::RoleLock role(master_.loop_role());
    now_s_ += delta_s;
    std::vector<MasterOutput> out;
    master_.on_tick(now_s_, &out);
    deliver(std::move(out), std::nullopt);
  }

  bool done() {
    const util::RoleLock role(master_.loop_role());
    return master_.done();
  }
  bool failed() {
    const util::RoleLock role(master_.loop_role());
    return master_.failed();
  }
  std::string error() {
    const util::RoleLock role(master_.loop_role());
    return master_.error();
  }
  std::size_t completed_shards() {
    const util::RoleLock role(master_.loop_role());
    return master_.shard_round_trips_s().size();
  }
  std::size_t cases() {
    const util::RoleLock role(master_.loop_role());
    return master_.cases();
  }
  std::size_t plan_cases() {
    const util::RoleLock role(master_.loop_role());
    return master_.plan_cases();
  }

  /// Finish the sink and hand back the merged NDJSON bytes (the same
  /// truncation footer the real runner writes for --limit runs).
  std::string finish() {
    {
      const util::RoleLock role(master_.loop_role());
      if (master_.cases() < master_.plan_cases())
        sink_.mark_truncated(master_.cases(), master_.plan_cases());
    }
    sink_.finish();
    return ndjson_.str();
  }

 private:
  /// Deliver master outputs to workers and worker replies back to the
  /// master until nothing moves. `drop_records_from` discards that
  /// worker's kRecord replies — frames lost in a dying connection.
  void deliver(std::vector<MasterOutput> pending,
               std::optional<WorkerId> drop_records_from)
      THINAIR_REQUIRES(master_.loop_role()) {
    while (!pending.empty()) {
      std::vector<MasterOutput> next;
      for (const MasterOutput& output : pending) {
        const auto it = workers_.find(output.to);
        if (it == workers_.end()) continue;
        std::vector<Frame> replies;
        it->second.on_frame(output.frame, &replies);
        const bool closed = output.close || it->second.finished();
        for (const Frame& reply : replies) {
          if (drop_records_from && *drop_records_from == output.to &&
              reply.type() == FrameType::kRecord)
            continue;
          master_.on_frame(output.to, reply, now_s_, &next);
        }
        if (closed) {
          workers_.erase(output.to);
          master_.on_worker_closed(output.to, now_s_, &next);
        }
      }
      pending = std::move(next);
    }
  }

  std::ostringstream ndjson_;
  ResultSink sink_;
  SweepMaster master_;
  std::map<WorkerId, SweepWorker> workers_;
  double now_s_ = 10.0;
};

TEST(SweepMasterTest, SpeclessScenarioIsRejected) {
  runtime::Scenario scenario;  // no spec: nothing to put in kHello
  std::ostringstream out;
  ResultSink sink("x", &out);
  EXPECT_THROW(SweepMaster(scenario, RunOptions{}, MasterTuning{}, &sink),
               std::invalid_argument);
}

TEST(SweepMasterTest, SingleWorkerMatchesSingleProcessBytes) {
  const Scenario scenario = compile(pump_spec());
  RunOptions options;
  options.threads = 1;
  options.master_seed = 21;
  MasterTuning tuning;
  tuning.shard_size = 3;  // 8 cases -> shards of 3, 3, 2

  Pump pump(scenario, options, tuning);
  pump.connect(1);
  EXPECT_TRUE(pump.done());
  EXPECT_FALSE(pump.failed());
  EXPECT_EQ(pump.completed_shards(), 3u);
  EXPECT_EQ(pump.finish(), reference_ndjson(scenario, options));
}

TEST(SweepMasterTest, FourWorkersMatchSingleProcessBytes) {
  const Scenario scenario = compile(pump_spec());
  RunOptions options;
  options.threads = 1;
  options.master_seed = 21;
  MasterTuning tuning;
  tuning.shard_size = 1;  // maximum interleaving: 8 shards, 4 workers

  Pump pump(scenario, options, tuning);
  for (WorkerId id = 1; id <= 4; ++id) pump.connect(id);
  EXPECT_TRUE(pump.done());
  EXPECT_FALSE(pump.failed());
  EXPECT_EQ(pump.completed_shards(), 8u);
  EXPECT_EQ(pump.finish(), reference_ndjson(scenario, options));
}

TEST(SweepMasterTest, LimitTruncatesThePlan) {
  const Scenario scenario = compile(pump_spec());
  RunOptions options;
  options.threads = 1;
  options.master_seed = 21;
  options.limit = 5;
  MasterTuning tuning;
  tuning.shard_size = 2;

  Pump pump(scenario, options, tuning);
  EXPECT_EQ(pump.cases(), 5u);
  EXPECT_EQ(pump.plan_cases(), 8u);
  pump.connect(1);
  EXPECT_TRUE(pump.done());
  EXPECT_EQ(pump.finish(), reference_ndjson(scenario, options));
}

TEST(SweepMasterTest, LostRecordsForfeitTheShardAndTheBytesStillMatch) {
  // Worker 2's records all vanish in transit, so its kShardDone arrives
  // with cases missing: the master must drop it and requeue the shard
  // instead of trusting the "done". Worker 3 (healthy) and the requeued
  // work still merge to the reference bytes; wedged worker 1 holds
  // shard 0 hostage until a kill forfeits it to the survivor.
  const Scenario scenario = compile(pump_spec());
  RunOptions options;
  options.threads = 1;
  options.master_seed = 21;
  MasterTuning tuning;
  tuning.shard_size = 4;  // 2 shards

  Pump pump(scenario, options, tuning);
  pump.connect_wedged(1);            // holds shard [0, 4)
  pump.connect_dropping_records(2);  // shard [4, 8): records lost, dropped
  EXPECT_FALSE(pump.done());
  EXPECT_FALSE(pump.failed());
  pump.connect(3);  // healthy survivor re-runs shard [4, 8), then idles
  EXPECT_FALSE(pump.done());
  pump.kill(1);  // shard [0, 4) forfeits straight to the idle survivor
  EXPECT_TRUE(pump.done());
  EXPECT_FALSE(pump.failed());
  EXPECT_EQ(pump.finish(), reference_ndjson(scenario, options));
}

TEST(SweepMasterTest, PartialRecordsAreDeduplicatedOnReassignment) {
  // Worker 1 dies after delivering 2 of its 4 records. The shard is
  // requeued and re-run whole by worker 2, so records 0 and 1 arrive
  // twice — the dedup ledger must drop the duplicates (the sink's
  // push-exactly-once contract) and the bytes must not notice.
  const Scenario scenario = compile(pump_spec());
  RunOptions options;
  options.threads = 1;
  options.master_seed = 21;
  MasterTuning tuning;
  tuning.shard_size = 4;

  Pump pump(scenario, options, tuning);
  pump.connect_partial(1, 2);  // shard [0, 4): records 0, 1 delivered
  pump.connect(2);             // runs shard [4, 8), then idles
  EXPECT_FALSE(pump.done());
  pump.kill(1);  // forfeits [0, 4); worker 2 re-runs it whole
  EXPECT_TRUE(pump.done());
  EXPECT_FALSE(pump.failed());
  EXPECT_EQ(pump.finish(), reference_ndjson(scenario, options));
}

TEST(SweepMasterTest, RetryCapFailsTheRunLoudly) {
  // Shard 0 is assigned three times (the cap) and its holder dies every
  // time; the run must fail with the shard named, not spin forever.
  const Scenario scenario = compile(pump_spec());
  RunOptions options;
  options.threads = 1;
  MasterTuning tuning;
  tuning.shard_size = 4;
  tuning.max_shard_attempts = 3;

  Pump pump(scenario, options, tuning);
  pump.connect_wedged(1);  // attempt 1 of shard [0, 4)
  pump.connect_wedged(2);  // holds shard [4, 8) so the queue stays empty
  pump.kill(1);            // requeued, no idle worker to take it
  EXPECT_FALSE(pump.failed());
  pump.connect_wedged(3);  // attempt 2
  pump.kill(3);
  EXPECT_FALSE(pump.failed());
  pump.connect_wedged(4);  // attempt 3 — the cap
  pump.kill(4);
  EXPECT_TRUE(pump.failed());
  EXPECT_NE(pump.error().find("failed after 3 attempt(s)"), std::string::npos)
      << pump.error();
}

TEST(SweepMasterTest, AllWorkersGoneFailsTheRun) {
  const Scenario scenario = compile(pump_spec());
  RunOptions options;
  options.threads = 1;
  MasterTuning tuning;
  tuning.shard_size = 4;
  tuning.max_shard_attempts = 100;  // never the cap; die of loneliness

  Pump pump(scenario, options, tuning);
  pump.connect_wedged(1);
  pump.kill(1);
  EXPECT_TRUE(pump.failed());
  EXPECT_NE(pump.error().find("no workers left"), std::string::npos)
      << pump.error();
}

TEST(SweepMasterTest, TimedOutShardIsReassignedToALiveWorker) {
  const Scenario scenario = compile(pump_spec());
  RunOptions options;
  options.threads = 1;
  options.master_seed = 21;
  MasterTuning tuning;
  tuning.shard_size = 8;  // one shard holds the whole run
  tuning.shard_timeout_s = 5.0;

  Pump pump(scenario, options, tuning);
  pump.connect_wedged(1);  // accepts the shard, goes silent
  pump.connect(2);         // idle: the queue is empty, the shard is out
  EXPECT_FALSE(pump.done());
  pump.tick(1.0);  // 1s elapsed: under the 5s timeout, nothing moves
  EXPECT_FALSE(pump.done());
  pump.tick(10.0);  // 11s: worker 1 forfeits; worker 2 picks the shard up
  EXPECT_TRUE(pump.done());
  EXPECT_FALSE(pump.failed());
  EXPECT_EQ(pump.completed_shards(), 1u);
  EXPECT_EQ(pump.finish(), reference_ndjson(scenario, options));
}

TEST(SweepMasterTest, SpecHashMismatchDropsTheWorker) {
  const Scenario scenario = compile(pump_spec());
  RunOptions options;
  options.threads = 1;
  MasterTuning tuning;

  Pump pump(scenario, options, tuning);
  const std::string message = pump.connect_bad_hello(1);
  EXPECT_NE(message.find("spec hash mismatch"), std::string::npos) << message;
  // Its only worker flunked the handshake with the whole queue
  // outstanding, so the run fails rather than waiting forever.
  EXPECT_TRUE(pump.failed());
}

// ------------------------------------------------------------ the worker

Frame master_hello(const Scenario& scenario, std::uint64_t n_cases) {
  const std::string text = runtime::serialize_spec(*scenario.spec);
  HelloFrame hello;
  hello.master_seed = 21;
  hello.n_cases = n_cases;
  hello.spec_text = text;
  hello.spec_sha256 = util::sha256_hex(text);
  return Frame{std::move(hello)};
}

TEST(SweepWorkerTest, AnswersHelloWithItsOwnRoundTripHash) {
  const Scenario scenario = compile(pump_spec());
  const std::string text = runtime::serialize_spec(*scenario.spec);
  SweepWorker worker;
  std::vector<Frame> out;
  worker.on_frame(master_hello(scenario, 8), &out);
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].type(), FrameType::kHello);
  const auto& ack = std::get<HelloFrame>(out[0].body);
  // Canonical serialization: the worker's round trip reproduces the
  // master's bytes, so the hashes agree and the reply carries no spec.
  EXPECT_EQ(ack.spec_sha256, util::sha256_hex(text));
  EXPECT_TRUE(ack.spec_text.empty());
  EXPECT_FALSE(worker.finished());
}

TEST(SweepWorkerTest, RunsAShardAndReportsEveryCase) {
  const Scenario scenario = compile(pump_spec());
  SweepWorker worker;
  std::vector<Frame> out;
  worker.on_frame(master_hello(scenario, 8), &out);
  out.clear();
  worker.on_frame(Frame{ShardFrame{2, 3}}, &out);
  ASSERT_EQ(out.size(), 4u);  // 3 kRecord + 1 kShardDone
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(out[i].type(), FrameType::kRecord);
    EXPECT_EQ(std::get<RecordFrame>(out[i].body).case_index, 2 + i);
  }
  ASSERT_EQ(out[3].type(), FrameType::kShardDone);
  EXPECT_EQ(std::get<ShardDoneFrame>(out[3].body),
            (ShardDoneFrame{2, 3}));
  EXPECT_EQ(worker.records_emitted(), 3u);
  EXPECT_FALSE(worker.finished());
}

TEST(SweepWorkerTest, RejectsAnUnparseableSpec) {
  HelloFrame hello;
  hello.spec_text = "[session\nbroken";
  hello.spec_sha256 = util::sha256_hex(hello.spec_text);
  SweepWorker worker;
  std::vector<Frame> out;
  worker.on_frame(Frame{std::move(hello)}, &out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back().type(), FrameType::kError);
  EXPECT_TRUE(worker.finished());
  EXPECT_FALSE(worker.error().empty());
}

TEST(SweepWorkerTest, RejectsAShardPastThePlan) {
  const Scenario scenario = compile(pump_spec());
  SweepWorker worker;
  std::vector<Frame> out;
  worker.on_frame(master_hello(scenario, 8), &out);
  out.clear();
  worker.on_frame(Frame{ShardFrame{6, 10}}, &out);  // [6, 16) > 8 cases
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back().type(), FrameType::kError);
  EXPECT_TRUE(worker.finished());
}

TEST(SweepWorkerTest, ShardBeforeHelloIsAProtocolError) {
  SweepWorker worker;
  std::vector<Frame> out;
  worker.on_frame(Frame{ShardFrame{0, 1}}, &out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back().type(), FrameType::kError);
  EXPECT_TRUE(worker.finished());
}

TEST(SweepWorkerTest, ByeFinishesCleanly) {
  SweepWorker worker;
  std::vector<Frame> out;
  worker.on_frame(Frame{ByeFrame{}}, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(worker.finished());
  EXPECT_TRUE(worker.error().empty());
}

}  // namespace
}  // namespace thinair::dist
