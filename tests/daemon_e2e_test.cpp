// End-to-end over real UDP loopback: a thinaird daemon on a background
// thread, clients in their own threads. Verifies (a) live clients derive
// byte-identical keys, (b) the live run reproduces the in-process
// reference bit-for-bit under the same hub seed (the hub's erasure draws
// are a pure function of seed, roster and frame order), and (c) the
// unmodified GroupSecretSession produces the same secret over SocketMedium
// (live daemon) as over HubMedium (in-process hub).
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/session.h"
#include "netd/client.h"
#include "netd/daemon.h"
#include "netd/hub.h"
#include "netd/node_session.h"
#include "netd/socket_medium.h"

namespace thinair::netd {
namespace {

NodeConfig make_node(std::uint16_t id, std::uint16_t members,
                     std::uint64_t session) {
  NodeConfig c;
  c.session_id = session;
  c.node = id;
  c.members = members;
  c.x_packets_per_round = members > 2 ? 32 : 16;
  c.payload_bytes = 16;
  c.payload_seed = 1000 + id;
  return c;
}

// The in-process reference: the same NodeSessions pumped synchronously
// against a hub with the same config — no sockets, no threads. The hub's
// draw sequence depends only on (seed, roster, kData frame order), and
// rounds are lockstep, so this must equal the live run byte-for-byte.
std::vector<std::vector<std::uint8_t>> reference_secrets(
    const HubConfig& hc, const std::vector<NodeConfig>& configs) {
  SessionHub hub(hc);
  std::vector<std::unique_ptr<NodeSession>> nodes;
  for (const NodeConfig& c : configs)
    nodes.push_back(std::make_unique<NodeSession>(c));
  double now = 0.0;
  for (auto& n : nodes) n->start(now);
  std::vector<std::uint8_t> dgram;
  std::vector<Outgoing> out;
  for (int iter = 0; iter < 200000; ++iter) {
    bool any = false;
    for (auto& n : nodes) {
      while (n->poll_datagram(dgram)) {
        any = true;
        out.clear();
        hub.on_datagram(dgram, now, out);
        for (const Outgoing& o : out)
          for (std::size_t p = 0; p < nodes.size(); ++p)
            if (configs[p].node == o.node && !nodes[p]->done())
              nodes[p]->on_datagram(o.datagram, now);
      }
    }
    bool all_done = true;
    for (const auto& n : nodes) {
      EXPECT_FALSE(n->failed()) << n->error();
      all_done = all_done && n->done();
    }
    if (all_done) break;
    if (!any) {
      now += 0.02;
      for (auto& n : nodes) n->on_tick(now);
    }
  }
  std::vector<std::vector<std::uint8_t>> secrets;
  for (const auto& n : nodes) {
    EXPECT_TRUE(n->done()) << "reference run did not complete";
    secrets.push_back(n->secret());
  }
  return secrets;
}

// Daemon on a background thread for the duration of one test.
class DaemonThread {
 public:
  explicit DaemonThread(HubConfig hc) {
    DaemonConfig dc;
    dc.hub = std::move(hc);
    daemon_ = std::make_unique<Daemon>(dc);  // binds here; port() is valid
    thread_ = std::thread([this] { daemon_->run(); });
  }
  ~DaemonThread() {
    daemon_->stop();
    thread_.join();
  }
  [[nodiscard]] std::uint16_t port() const { return daemon_->port(); }
  [[nodiscard]] const Daemon& daemon() const { return *daemon_; }

 private:
  std::unique_ptr<Daemon> daemon_;
  std::thread thread_;
};

std::vector<ClientResult> run_clients(std::uint16_t port,
                                      const std::vector<NodeConfig>& configs) {
  std::vector<ClientResult> results(configs.size());
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < configs.size(); ++i)
    threads.emplace_back([&, i] {
      ClientConfig cc;
      cc.port = port;
      cc.node = configs[i];
      results[i] = run_client(cc);
    });
  for (auto& t : threads) t.join();
  return results;
}

TEST(DaemonE2E, TwoClientsAgreeAndMatchReference) {
  HubConfig hc;
  hc.seed = 77;
  const std::uint64_t sid = 0xE2E2;
  const std::vector<NodeConfig> configs = {make_node(0, 2, sid),
                                           make_node(1, 2, sid)};

  DaemonThread daemon(hc);
  const auto results = run_clients(daemon.port(), configs);
  ASSERT_TRUE(results[0].ok) << results[0].error;
  ASSERT_TRUE(results[1].ok) << results[1].error;
  EXPECT_FALSE(results[0].secret.empty());
  EXPECT_EQ(results[0].secret, results[1].secret);
  EXPECT_EQ(results[0].rounds, 2u);

  const auto reference = reference_secrets(hc, configs);
  ASSERT_EQ(reference.size(), 2u);
  EXPECT_EQ(results[0].secret, reference[0])
      << "live daemon run diverged from the in-process simulation";
}

TEST(DaemonE2E, FourClientsAgreeAndMatchReference) {
  HubConfig hc;
  hc.seed = 1234;
  const std::uint64_t sid = 0xE2E4;
  std::vector<NodeConfig> configs;
  for (std::uint16_t id = 0; id < 4; ++id)
    configs.push_back(make_node(id, 4, sid));

  DaemonThread daemon(hc);
  const auto results = run_clients(daemon.port(), configs);
  for (std::size_t i = 0; i < results.size(); ++i)
    ASSERT_TRUE(results[i].ok) << "client " << i << ": " << results[i].error;
  EXPECT_FALSE(results[0].secret.empty());
  for (std::size_t i = 1; i < results.size(); ++i)
    EXPECT_EQ(results[0].secret, results[i].secret);

  const auto reference = reference_secrets(hc, configs);
  EXPECT_EQ(results[0].secret, reference[0]);
}

TEST(DaemonE2E, TwoConcurrentSessionsStayIsolated) {
  HubConfig hc;
  hc.seed = 5;
  DaemonThread daemon(hc);

  std::vector<NodeConfig> a = {make_node(0, 2, 100), make_node(1, 2, 100)};
  std::vector<NodeConfig> b = {make_node(0, 2, 200), make_node(1, 2, 200)};
  std::vector<ClientResult> ra, rb;
  std::thread ta([&] { ra = run_clients(daemon.port(), a); });
  std::thread tb([&] { rb = run_clients(daemon.port(), b); });
  ta.join();
  tb.join();

  ASSERT_TRUE(ra[0].ok && ra[1].ok && rb[0].ok && rb[1].ok);
  EXPECT_EQ(ra[0].secret, ra[1].secret);
  EXPECT_EQ(rb[0].secret, rb[1].secret);
  // Per-session Rng streams derive from (hub seed, session id): different
  // sessions must not share draws even with identical rosters and payloads.
  EXPECT_NE(ra[0].secret, rb[0].secret);
}

TEST(DaemonE2E, SocketMediumMatchesHubMedium) {
  HubConfig hc;
  hc.seed = 31337;
  const std::uint64_t sid = 0x50CC;

  core::SessionConfig scfg;
  scfg.x_packets_per_round = 24;
  scfg.payload_bytes = 16;
  scfg.rounds = 2;
  // No placement oracle exists on a live network face; size the secret
  // from measured reception alone (matches the daemon-path NodeSession).
  scfg.estimator.kind = core::EstimatorKind::kLooFraction;

  // In-process reference: same hub code, direct calls.
  std::vector<std::uint8_t> ref_secret;
  {
    SessionHub hub(hc);
    HubMedium medium(hub, sid, channel::Rng(99));
    medium.attach(packet::NodeId{0}, net::Role::kTerminal);
    medium.attach(packet::NodeId{1}, net::Role::kTerminal);
    core::GroupSecretSession session(medium, scfg);
    ref_secret = session.run().secret;
  }
  ASSERT_FALSE(ref_secret.empty());

  // Live daemon: the same unmodified GroupSecretSession over UDP.
  DaemonThread daemon(hc);
  SocketMedium medium("127.0.0.1", daemon.port(), sid, channel::Rng(99));
  medium.attach(packet::NodeId{0}, net::Role::kTerminal);
  medium.attach(packet::NodeId{1}, net::Role::kTerminal);
  core::GroupSecretSession session(medium, scfg);
  const core::SessionResult live = session.run();

  EXPECT_EQ(live.secret, ref_secret)
      << "SocketMedium diverged from HubMedium under identical seeds";
  // The virtual-airtime accounting must agree too (same frames, same rates).
  EXPECT_GT(live.duration_s, 0.0);
}

TEST(DaemonE2E, UsesEpollWhereAvailable) {
  DaemonThread daemon(HubConfig{});
#ifdef __linux__
  EXPECT_TRUE(daemon.daemon().using_epoll());
#endif
  SUCCEED();
}

}  // namespace
}  // namespace thinair::netd
