// End-to-end protocol sessions over the simulated network.
#include "core/session.h"

#include <gtest/gtest.h>

#include "channel/erasure.h"
#include "core/unicast.h"

namespace thinair::core {
namespace {

struct Net {
  channel::IidErasure channel;
  net::SimMedium medium;

  Net(double p, std::size_t n, std::uint64_t seed)
      : channel(p), medium(channel, channel::Rng(seed)) {
    for (std::size_t i = 0; i < n; ++i)
      medium.attach(packet::NodeId{static_cast<std::uint16_t>(i)},
                    net::Role::kTerminal);
    medium.attach(packet::NodeId{static_cast<std::uint16_t>(n)},
                  net::Role::kEavesdropper);
  }
};

SessionConfig oracle_config(std::size_t rounds = 2) {
  SessionConfig cfg;
  cfg.x_packets_per_round = 60;
  cfg.payload_bytes = 32;
  cfg.rounds = rounds;
  cfg.estimator.kind = EstimatorKind::kOracle;
  cfg.pool_strategy = PoolStrategy::kClassShared;
  return cfg;
}

TEST(Session, ProducesSecretWithOracleReliabilityOne) {
  Net net(0.5, 3, 42);
  GroupSecretSession session(net.medium, oracle_config());
  const SessionResult r = session.run();
  EXPECT_GT(r.secret_bits(), 0u);
  // Oracle caps make the pool provably uniform for Eve: reliability is
  // exactly 1 in every round.
  for (const RoundOutcome& round : r.rounds)
    EXPECT_DOUBLE_EQ(round.leakage.reliability, 1.0);
  EXPECT_DOUBLE_EQ(r.reliability(), 1.0);
}

TEST(Session, SecretLengthMatchesRoundOutcomes) {
  Net net(0.4, 4, 43);
  GroupSecretSession session(net.medium, oracle_config(3));
  const SessionResult r = session.run();
  std::size_t want_bits = 0;
  for (const RoundOutcome& round : r.rounds) want_bits += round.secret_bits;
  EXPECT_EQ(r.secret_bits(), want_bits);
  ASSERT_EQ(r.rounds.size(), 3u);
}

TEST(Session, RotatesAlice) {
  Net net(0.5, 3, 44);
  SessionConfig cfg = oracle_config(3);
  GroupSecretSession session(net.medium, cfg);
  const SessionResult r = session.run();
  EXPECT_EQ(r.rounds[0].alice, packet::NodeId{0});
  EXPECT_EQ(r.rounds[1].alice, packet::NodeId{1});
  EXPECT_EQ(r.rounds[2].alice, packet::NodeId{2});
}

TEST(Session, FixedAliceWhenRotationDisabled) {
  Net net(0.5, 3, 45);
  SessionConfig cfg = oracle_config(3);
  cfg.rotate_alice = false;
  GroupSecretSession session(net.medium, cfg);
  const SessionResult r = session.run();
  for (const RoundOutcome& round : r.rounds)
    EXPECT_EQ(round.alice, packet::NodeId{0});
}

TEST(Session, DefaultRoundsEqualTerminalCount) {
  Net net(0.5, 4, 46);
  SessionConfig cfg = oracle_config();
  cfg.rounds = 0;
  GroupSecretSession session(net.medium, cfg);
  EXPECT_EQ(session.run().rounds.size(), 4u);
}

TEST(Session, LedgerCoversAllTrafficClasses) {
  Net net(0.5, 3, 47);
  GroupSecretSession session(net.medium, oracle_config());
  const SessionResult r = session.run();
  EXPECT_GT(r.ledger.bytes(net::TrafficClass::kData), 0u);
  EXPECT_GT(r.ledger.bytes(net::TrafficClass::kControl), 0u);
  EXPECT_GT(r.ledger.total_bytes(), 0u);
  EXPECT_GT(r.duration_s, 0.0);
  EXPECT_GT(r.efficiency(), 0.0);
  EXPECT_LT(r.efficiency(), 1.0);
  EXPECT_GT(r.secret_rate_bps(), 0.0);
}

TEST(Session, RepeatedRunsReportDeltas) {
  Net net(0.5, 3, 48);
  GroupSecretSession session(net.medium, oracle_config(1));
  const SessionResult r1 = session.run();
  const SessionResult r2 = session.run();
  // Ledgers are per-run, so totals are comparable in magnitude (not
  // cumulative).
  EXPECT_LT(r2.ledger.total_bytes(), 2 * r1.ledger.total_bytes() + 1);
  EXPECT_GT(r2.ledger.total_bytes(), 0u);
}

TEST(Session, PerfectChannelYieldsNoSecret) {
  // Nobody misses anything => Eve misses nothing => no secret material,
  // but the protocol must terminate cleanly.
  Net net(0.0, 3, 49);
  GroupSecretSession session(net.medium, oracle_config(1));
  const SessionResult r = session.run();
  EXPECT_EQ(r.secret_bits(), 0u);
  EXPECT_DOUBLE_EQ(r.reliability(), 1.0);  // vacuous but well-defined
}

TEST(Session, DataEfficiencyMatchesRoundAccounting) {
  Net net(0.5, 3, 50);
  GroupSecretSession session(net.medium, oracle_config(2));
  const SessionResult r = session.run();
  std::size_t packets = 0;
  for (const RoundOutcome& round : r.rounds) {
    EXPECT_EQ(round.data_packets,
              round.universe + round.pool_size - round.group_packets);
    packets += round.data_packets;
  }
  if (packets > 0) {
    EXPECT_NEAR(r.data_efficiency(32),
                static_cast<double>(r.secret_bits()) /
                    static_cast<double>(packets * 32 * 8),
                1e-12);
  }
}

TEST(Session, ValidatesConfig) {
  Net net(0.5, 2, 51);
  SessionConfig bad = oracle_config();
  bad.x_packets_per_round = 0;
  EXPECT_THROW(GroupSecretSession(net.medium, bad), std::invalid_argument);
  bad = oracle_config();
  bad.payload_bytes = 0;
  EXPECT_THROW(GroupSecretSession(net.medium, bad), std::invalid_argument);
}

TEST(Session, NeedsTwoTerminals) {
  channel::IidErasure ch(0.5);
  net::SimMedium medium(ch, channel::Rng(52));
  medium.attach(packet::NodeId{0}, net::Role::kTerminal);
  EXPECT_THROW(GroupSecretSession(medium, oracle_config()),
               std::invalid_argument);
}

TEST(Unicast, ProducesSecretWithOracleReliabilityOne) {
  Net net(0.5, 4, 53);
  UnicastSession session(net.medium, oracle_config());
  const SessionResult r = session.run();
  EXPECT_GT(r.secret_bits(), 0u);
  EXPECT_DOUBLE_EQ(r.reliability(), 1.0);
}

TEST(Unicast, TransmitsCipherTraffic) {
  Net net(0.5, 4, 54);
  UnicastSession session(net.medium, oracle_config());
  const SessionResult r = session.run();
  EXPECT_GT(r.ledger.bytes(net::TrafficClass::kCipher), 0u);
  EXPECT_EQ(r.ledger.bytes(net::TrafficClass::kCoded), 0u);  // no z-packets
}

TEST(Unicast, DataPacketAccountingIncludesCiphers) {
  Net net(0.5, 4, 55);
  UnicastSession session(net.medium, oracle_config(1));
  const SessionResult r = session.run();
  const RoundOutcome& round = r.rounds[0];
  // N x-packets plus (n - 2) * L ciphertexts for n = 4 terminals.
  EXPECT_EQ(round.data_packets,
            round.universe + 2 * round.group_packets);
}

TEST(Unicast, LessEfficientThanGroupForLargerGroups) {
  // Figure 1's message, at one operating point: 6 terminals, p = 0.5.
  double group_eff = 0.0, unicast_eff = 0.0;
  {
    Net net(0.5, 6, 56);
    GroupSecretSession session(net.medium, oracle_config(4));
    group_eff = session.run().data_efficiency(32);
  }
  {
    Net net(0.5, 6, 56);
    UnicastSession session(net.medium, oracle_config(4));
    unicast_eff = session.run().data_efficiency(32);
  }
  EXPECT_GT(group_eff, unicast_eff);
}

// The reliability mechanism itself: a fraction estimator that is too
// optimistic must produce measurable leakage (reliability < 1), because
// the secret is sized beyond what Eve actually missed.
TEST(Session, OverconfidentEstimatorLeaks) {
  Net net(0.3, 3, 57);  // Eve receives 70% of everything
  SessionConfig cfg = oracle_config(4);
  cfg.estimator.kind = EstimatorKind::kFraction;
  cfg.estimator.fraction_delta = 0.9;  // claims Eve misses 90%
  GroupSecretSession session(net.medium, cfg);
  const SessionResult r = session.run();
  EXPECT_LT(r.reliability(), 0.9);
  EXPECT_GT(r.secret_bits(), 0u);
}

TEST(Session, ConservativeFractionEstimatorStaysSafe) {
  Net net(0.5, 3, 58);
  SessionConfig cfg = oracle_config(4);
  cfg.estimator.kind = EstimatorKind::kFraction;
  cfg.estimator.fraction_delta = 0.2;  // well under the true 0.5
  GroupSecretSession session(net.medium, cfg);
  const SessionResult r = session.run();
  EXPECT_GT(r.secret_bits(), 0u);
  EXPECT_GT(r.reliability(), 0.95);
}

// Multi-antenna Eve: two eavesdropper nodes are scored as one adversary
// holding the union of receptions, so reliability cannot improve.
TEST(Session, MultiAntennaEveSeesMore) {
  double one_eff, one_rel, two_rel;
  {
    Net net(0.5, 3, 59);
    SessionConfig cfg = oracle_config(3);
    cfg.estimator.kind = EstimatorKind::kFraction;
    cfg.estimator.fraction_delta = 0.45;
    GroupSecretSession session(net.medium, cfg);
    const auto r = session.run();
    one_eff = r.efficiency();
    one_rel = r.reliability();
  }
  {
    channel::IidErasure ch(0.5);
    net::SimMedium medium(ch, channel::Rng(59));
    for (std::uint16_t i = 0; i < 3; ++i)
      medium.attach(packet::NodeId{i}, net::Role::kTerminal);
    medium.attach(packet::NodeId{3}, net::Role::kEavesdropper);
    medium.attach(packet::NodeId{4}, net::Role::kEavesdropper);
    SessionConfig cfg = oracle_config(3);
    cfg.estimator.kind = EstimatorKind::kFraction;
    cfg.estimator.fraction_delta = 0.45;
    GroupSecretSession session(medium, cfg);
    const auto r = session.run();
    two_rel = r.reliability();
    (void)one_eff;
  }
  EXPECT_LE(two_rel, one_rel + 1e-9);
}

}  // namespace
}  // namespace thinair::core
