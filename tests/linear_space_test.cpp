// Incremental row-space maintenance — the engine of the secrecy analysis.
#include "gf/linear_space.h"

#include <gtest/gtest.h>

#include "gf/mds.h"

namespace thinair::gf {
namespace {

std::vector<std::uint8_t> vec(std::initializer_list<unsigned> vs) {
  std::vector<std::uint8_t> out;
  for (unsigned v : vs) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

TEST(LinearSpace, StartsEmpty) {
  const LinearSpace s(5);
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.dim(), 5u);
}

TEST(LinearSpace, InsertIndependentGrowsRank) {
  LinearSpace s(3);
  EXPECT_TRUE(s.insert(vec({1, 0, 0})));
  EXPECT_TRUE(s.insert(vec({0, 1, 0})));
  EXPECT_EQ(s.rank(), 2u);
}

TEST(LinearSpace, InsertDependentReturnsFalse) {
  LinearSpace s(3);
  EXPECT_TRUE(s.insert(vec({1, 2, 3})));
  EXPECT_TRUE(s.insert(vec({0, 1, 1})));
  // 1*(1,2,3) + 2*(0,1,1): over GF(2^8), 2*(0,1,1) = (0,2,2), sum (1,0,1).
  EXPECT_FALSE(s.insert(vec({1, 0, 1})));
  EXPECT_EQ(s.rank(), 2u);
}

TEST(LinearSpace, ZeroVectorNeverGrows) {
  LinearSpace s(4);
  EXPECT_FALSE(s.insert(vec({0, 0, 0, 0})));
}

TEST(LinearSpace, WrongLengthThrows) {
  LinearSpace s(3);
  EXPECT_THROW((void)s.insert(vec({1, 2})), std::invalid_argument);
  EXPECT_THROW((void)s.contains(vec({1, 2, 3, 4})), std::invalid_argument);
}

TEST(LinearSpace, InsertUnitAndContains) {
  LinearSpace s(4);
  EXPECT_TRUE(s.insert_unit(2));
  EXPECT_TRUE(s.contains(vec({0, 0, 7, 0})));   // scaled unit
  EXPECT_FALSE(s.contains(vec({1, 0, 0, 0})));
  EXPECT_THROW((void)s.insert_unit(9), std::out_of_range);
}

TEST(LinearSpace, RankNeverExceedsDim) {
  LinearSpace s(3);
  const Matrix m = mds::vandermonde(3, 3).vstack(mds::cauchy(2, 3));
  s.insert_rows(m);
  EXPECT_EQ(s.rank(), 3u);
}

TEST(LinearSpace, InsertRowsCountsIndependentOnes) {
  LinearSpace s(4);
  Matrix m(3, 4);
  m.set(0, 0, kOne);
  m.set(1, 0, GF256(3));  // dependent on row 0
  m.set(2, 1, kOne);
  EXPECT_EQ(s.insert_rows(m), 2u);
}

TEST(LinearSpace, ResidualRankIsEquivocation) {
  LinearSpace s(4);
  EXPECT_TRUE(s.insert_unit(0));
  Matrix secret(2, 4);
  secret.set(0, 0, kOne);  // fully known given unit 0
  secret.set(1, 3, kOne);  // unknown
  EXPECT_EQ(s.residual_rank(secret), 1u);
  // Residual queries must not mutate the space.
  EXPECT_EQ(s.rank(), 1u);
}

TEST(LinearSpace, ResidualRankZeroWhenContained) {
  LinearSpace s(3);
  EXPECT_TRUE(s.insert(vec({1, 1, 0})));
  EXPECT_TRUE(s.insert(vec({0, 1, 1})));
  Matrix m(1, 3);
  m.set(0, 0, kOne);
  m.set(0, 2, kOne);  // (1,0,1) = (1,1,0)+(0,1,1)
  EXPECT_EQ(s.residual_rank(m), 0u);
}

TEST(LinearSpace, BasisIsRowReducedAndSpansInserted) {
  LinearSpace s(4);
  EXPECT_TRUE(s.insert(vec({2, 4, 6, 8})));
  EXPECT_TRUE(s.insert(vec({0, 0, 5, 5})));
  const Matrix b = s.basis();
  EXPECT_EQ(b.rows(), 2u);
  EXPECT_TRUE(s.contains(vec({2, 4, 6, 8})));
  EXPECT_TRUE(s.contains(vec({0, 0, 5, 5})));
  // Basis rows are normalised: leading entries are 1.
  EXPECT_EQ(b.at(0, 0), kOne);
  EXPECT_EQ(b.at(1, 2), kOne);
}

// Regression for the shared gather-path elimination (reduce() now batches
// basis rows through dot_multi, reading every coefficient up front):
// inserting rows dependent on the existing basis must never grow it, in
// any insertion order, including rows that mix many basis rows at once.
TEST(LinearSpace, DependentInsertsNeverGrowBasis) {
  const std::size_t dim = 24;
  const Matrix g = mds::vandermonde(10, dim);
  LinearSpace s(dim);
  EXPECT_EQ(s.insert_rows(g), 10u);

  // Every GF(2^8)-combination of basis rows reduces to zero — try dense
  // combinations touching all 10 rows (the fused path flushes two full
  // kMaxFusedRows blocks here), sparse ones, and scaled single rows.
  for (unsigned trial = 0; trial < 32; ++trial) {
    std::vector<std::uint8_t> v(dim, 0);
    for (std::size_t r = 0; r < g.rows(); ++r) {
      const auto c = GF256(static_cast<std::uint8_t>(
          (trial * 37 + r * 11 + 1) % 256));
      if (trial % 3 == 1 && r % 2 == 0) continue;  // sparse mixes
      for (std::size_t j = 0; j < dim; ++j)
        v[j] = (GF256(v[j]) + c * g.at(r, j)).value();
    }
    EXPECT_FALSE(s.insert(v)) << "trial " << trial;
    EXPECT_EQ(s.rank(), 10u);
  }
  // The basis stays fully reduced: re-inserting its own rows is a no-op.
  const Matrix b = s.basis();
  for (std::size_t i = 0; i < b.rows(); ++i) EXPECT_FALSE(s.insert(b.row(i)));
}

// Rank queries must be observably side-effect-free: residual_rank and
// contains leave basis bytes, rank and pivot structure untouched.
TEST(LinearSpace, RankQueriesAreSideEffectFree) {
  const std::size_t dim = 16;
  LinearSpace s(dim);
  s.insert_rows(mds::vandermonde(5, dim));
  const Matrix before = s.basis();

  const Matrix probe = mds::cauchy(7, dim);
  const std::size_t r1 = s.residual_rank(probe);
  const std::size_t r2 = s.residual_rank(probe);
  EXPECT_EQ(r1, r2);  // repeatable
  EXPECT_EQ(r1, before.vstack(probe).rank() - before.rows());
  (void)s.contains(probe.row(0));
  EXPECT_EQ(s.rank(), 5u);
  EXPECT_EQ(s.basis(), before);

  // residual_rank caps at dim - rank regardless of how many probe rows
  // arrive (the fresh-candidate elimination half of the shared path).
  const Matrix wide = mds::vandermonde(dim, dim);
  EXPECT_EQ(s.residual_rank(wide), dim - 5u);
  EXPECT_EQ(s.basis(), before);
}

// Cross-check the gather-based elimination against dense rank: for
// random row sets, rank(space) computed incrementally must equal
// Matrix::rank of the stacked rows, and residual_rank must equal
// rank([basis; m]) - rank(basis).
TEST(LinearSpace, AgreesWithDenseRankArithmetic) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const std::size_t dim = 20;
    Matrix rows(12, dim);
    // Deterministic pseudo-random fill with plenty of dependent rows.
    std::uint64_t state = seed * 0x9E3779B97F4A7C15ull;
    const auto next = [&state] {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      return static_cast<std::uint8_t>(state >> 32);
    };
    for (std::size_t i = 0; i < rows.rows(); ++i) {
      if (i >= 6 && next() % 2 == 0) {
        // Copy a scaled earlier row: guaranteed dependent.
        const GF256 c(static_cast<std::uint8_t>(next() | 1));
        for (std::size_t j = 0; j < dim; ++j)
          rows.set(i, j, c * rows.at(i % 6, j));
        continue;
      }
      for (std::size_t j = 0; j < dim; ++j)
        rows.set(i, j, GF256(next() % 4 == 0 ? next() : 0));
    }
    LinearSpace s(dim);
    s.insert_rows(rows);
    EXPECT_EQ(s.rank(), rows.rank()) << "seed " << seed;

    const Matrix probe = mds::vandermonde(5, dim);
    const std::size_t expect =
        s.basis().vstack(probe).rank() - s.rank();
    EXPECT_EQ(s.residual_rank(probe), expect) << "seed " << seed;
  }
}

// Property: inserting the rows of an MDS generator one by one grows rank
// by exactly one each time (they are always independent).
class MdsInsertSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MdsInsertSweep, GeneratorRowsAllIndependent) {
  const std::size_t k = GetParam();
  const Matrix g = mds::vandermonde(k, 10);
  LinearSpace s(10);
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_TRUE(s.insert(g.row(i)));
    EXPECT_EQ(s.rank(), i + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, MdsInsertSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 10u));

}  // namespace
}  // namespace thinair::gf
