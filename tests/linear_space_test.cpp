// Incremental row-space maintenance — the engine of the secrecy analysis.
#include "gf/linear_space.h"

#include <gtest/gtest.h>

#include "gf/mds.h"

namespace thinair::gf {
namespace {

std::vector<std::uint8_t> vec(std::initializer_list<unsigned> vs) {
  std::vector<std::uint8_t> out;
  for (unsigned v : vs) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

TEST(LinearSpace, StartsEmpty) {
  const LinearSpace s(5);
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.dim(), 5u);
}

TEST(LinearSpace, InsertIndependentGrowsRank) {
  LinearSpace s(3);
  EXPECT_TRUE(s.insert(vec({1, 0, 0})));
  EXPECT_TRUE(s.insert(vec({0, 1, 0})));
  EXPECT_EQ(s.rank(), 2u);
}

TEST(LinearSpace, InsertDependentReturnsFalse) {
  LinearSpace s(3);
  EXPECT_TRUE(s.insert(vec({1, 2, 3})));
  EXPECT_TRUE(s.insert(vec({0, 1, 1})));
  // 1*(1,2,3) + 2*(0,1,1): over GF(2^8), 2*(0,1,1) = (0,2,2), sum (1,0,1).
  EXPECT_FALSE(s.insert(vec({1, 0, 1})));
  EXPECT_EQ(s.rank(), 2u);
}

TEST(LinearSpace, ZeroVectorNeverGrows) {
  LinearSpace s(4);
  EXPECT_FALSE(s.insert(vec({0, 0, 0, 0})));
}

TEST(LinearSpace, WrongLengthThrows) {
  LinearSpace s(3);
  EXPECT_THROW((void)s.insert(vec({1, 2})), std::invalid_argument);
  EXPECT_THROW((void)s.contains(vec({1, 2, 3, 4})), std::invalid_argument);
}

TEST(LinearSpace, InsertUnitAndContains) {
  LinearSpace s(4);
  EXPECT_TRUE(s.insert_unit(2));
  EXPECT_TRUE(s.contains(vec({0, 0, 7, 0})));   // scaled unit
  EXPECT_FALSE(s.contains(vec({1, 0, 0, 0})));
  EXPECT_THROW((void)s.insert_unit(9), std::out_of_range);
}

TEST(LinearSpace, RankNeverExceedsDim) {
  LinearSpace s(3);
  const Matrix m = mds::vandermonde(3, 3).vstack(mds::cauchy(2, 3));
  s.insert_rows(m);
  EXPECT_EQ(s.rank(), 3u);
}

TEST(LinearSpace, InsertRowsCountsIndependentOnes) {
  LinearSpace s(4);
  Matrix m(3, 4);
  m.set(0, 0, kOne);
  m.set(1, 0, GF256(3));  // dependent on row 0
  m.set(2, 1, kOne);
  EXPECT_EQ(s.insert_rows(m), 2u);
}

TEST(LinearSpace, ResidualRankIsEquivocation) {
  LinearSpace s(4);
  s.insert_unit(0);
  Matrix secret(2, 4);
  secret.set(0, 0, kOne);  // fully known given unit 0
  secret.set(1, 3, kOne);  // unknown
  EXPECT_EQ(s.residual_rank(secret), 1u);
  // Residual queries must not mutate the space.
  EXPECT_EQ(s.rank(), 1u);
}

TEST(LinearSpace, ResidualRankZeroWhenContained) {
  LinearSpace s(3);
  s.insert(vec({1, 1, 0}));
  s.insert(vec({0, 1, 1}));
  Matrix m(1, 3);
  m.set(0, 0, kOne);
  m.set(0, 2, kOne);  // (1,0,1) = (1,1,0)+(0,1,1)
  EXPECT_EQ(s.residual_rank(m), 0u);
}

TEST(LinearSpace, BasisIsRowReducedAndSpansInserted) {
  LinearSpace s(4);
  s.insert(vec({2, 4, 6, 8}));
  s.insert(vec({0, 0, 5, 5}));
  const Matrix b = s.basis();
  EXPECT_EQ(b.rows(), 2u);
  EXPECT_TRUE(s.contains(vec({2, 4, 6, 8})));
  EXPECT_TRUE(s.contains(vec({0, 0, 5, 5})));
  // Basis rows are normalised: leading entries are 1.
  EXPECT_EQ(b.at(0, 0), kOne);
  EXPECT_EQ(b.at(1, 2), kOne);
}

// Property: inserting the rows of an MDS generator one by one grows rank
// by exactly one each time (they are always independent).
class MdsInsertSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MdsInsertSweep, GeneratorRowsAllIndependent) {
  const std::size_t k = GetParam();
  const Matrix g = mds::vandermonde(k, 10);
  LinearSpace s(10);
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_TRUE(s.insert(g.row(i)));
    EXPECT_EQ(s.rank(), i + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, MdsInsertSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 10u));

}  // namespace
}  // namespace thinair::gf
