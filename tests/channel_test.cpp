// Channel substrate: RNG determinism, geometry, path loss, SINR mapping,
// erasure models.
#include <gtest/gtest.h>

#include "channel/erasure.h"
#include "channel/geometry.h"
#include "channel/pathloss.h"
#include "channel/rng.h"
#include "channel/sinr.h"

namespace thinair::channel {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool differ = false;
  for (int i = 0; i < 10; ++i) differ |= (a.next_u64() != b.next_u64());
  EXPECT_TRUE(differ);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(13), 13u);
  EXPECT_THROW((void)rng.next_below(0), std::invalid_argument);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliApproximatesP) {
  Rng rng(10);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(11);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Geometry, DistanceEuclidean) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(Geometry, PaperGridDimensions) {
  const CellGrid grid;  // 14 m^2
  EXPECT_NEAR(grid.side(), 3.7417, 1e-3);
  EXPECT_NEAR(grid.cell_side(), 1.2472, 1e-3);
  // The paper's 1.75 m minimum distance is the cell diagonal.
  EXPECT_NEAR(grid.min_distance(), 1.7638, 1e-3);
}

TEST(Geometry, CellCentersRoundTrip) {
  const CellGrid grid;
  for (std::size_t i = 0; i < CellGrid::kCells; ++i) {
    const CellIndex cell{i};
    EXPECT_EQ(grid.cell_of(grid.center(cell)).value, i);
  }
}

TEST(Geometry, CellOfClampsOutside) {
  const CellGrid grid;
  EXPECT_EQ(grid.cell_of({-1.0, -1.0}).value, 0u);
  EXPECT_EQ(grid.cell_of({100.0, 100.0}).value, 8u);
}

TEST(Geometry, RowColDecomposition) {
  EXPECT_EQ(CellIndex{0}.row(), 0u);
  EXPECT_EQ(CellIndex{5}.row(), 1u);
  EXPECT_EQ(CellIndex{5}.col(), 2u);
  EXPECT_EQ(CellIndex{8}.row(), 2u);
}

TEST(Geometry, InvalidAreaThrows) {
  EXPECT_THROW(CellGrid(0.0), std::invalid_argument);
  EXPECT_THROW(CellGrid(-3.0), std::invalid_argument);
}

TEST(PathLoss, DecreasesWithDistance) {
  const LogDistancePathLoss pl;
  EXPECT_GT(pl.rx_power_dbm(1.0), pl.rx_power_dbm(2.0));
  EXPECT_GT(pl.rx_power_dbm(2.0), pl.rx_power_dbm(4.0));
}

TEST(PathLoss, ReferenceValueAtOneMetre) {
  const LogDistancePathLoss pl;
  EXPECT_NEAR(pl.rx_power_dbm(1.0),
              pl.params().tx_power_dbm - pl.params().ref_loss_db, 1e-9);
}

TEST(PathLoss, ExponentSlope) {
  PathLossParams p;
  p.exponent = 2.0;
  const LogDistancePathLoss pl(p);
  // doubling distance costs 10*2*log10(2) ~ 6.02 dB.
  EXPECT_NEAR(pl.rx_power_dbm(1.0) - pl.rx_power_dbm(2.0), 6.02, 0.01);
}

TEST(PathLoss, MinDistanceClamp) {
  const LogDistancePathLoss pl;
  EXPECT_DOUBLE_EQ(pl.rx_power_dbm(0.0), pl.rx_power_dbm(0.05));
}

TEST(PathLoss, DbLinearRoundTrip) {
  for (double db : {-90.0, -40.0, 0.0, 10.0})
    EXPECT_NEAR(linear_to_db(db_to_linear(db)), db, 1e-9);
  EXPECT_THROW((void)linear_to_db(0.0), std::invalid_argument);
}

TEST(Sinr, PerMonotoneDecreasing) {
  const SinrParams p;
  double prev = 1.0;
  for (double s = -20.0; s <= 40.0; s += 2.0) {
    const double per = packet_error_rate(s, p);
    EXPECT_LE(per, prev);
    prev = per;
  }
}

TEST(Sinr, PerClampedToFloorAndCeiling) {
  const SinrParams p;
  EXPECT_DOUBLE_EQ(packet_error_rate(100.0, p), p.floor);
  EXPECT_DOUBLE_EQ(packet_error_rate(-100.0, p), p.ceiling);
}

TEST(Sinr, HalfLossAtThreshold) {
  const SinrParams p;
  EXPECT_NEAR(packet_error_rate(p.per_threshold_db, p), 0.5, 1e-9);
}

TEST(Sinr, SinrDbComputation) {
  SinrParams p;
  p.noise_floor_dbm = -90.0;
  // signal -60 dBm over pure noise floor: SINR = 30 dB.
  EXPECT_NEAR(sinr_db(db_to_linear(-60.0), 0.0, p), 30.0, 1e-9);
  // Interference at the same level as the signal: SINR ~ 0 dB (minus the
  // negligible noise contribution).
  EXPECT_NEAR(sinr_db(db_to_linear(-60.0), db_to_linear(-60.0), p), 0.0,
              0.01);
}

TEST(Erasure, IidBounds) {
  EXPECT_THROW(IidErasure(-0.1), std::invalid_argument);
  EXPECT_THROW(IidErasure(1.1), std::invalid_argument);
  const IidErasure e(0.4);
  EXPECT_DOUBLE_EQ(
      e.erasure_probability({packet::NodeId{0}, packet::NodeId{1}, 0}), 0.4);
}

TEST(Erasure, PerLinkOverridesDefault) {
  PerLinkErasure e(0.1);
  e.set(packet::NodeId{0}, packet::NodeId{1}, 0.9);
  EXPECT_DOUBLE_EQ(
      e.erasure_probability({packet::NodeId{0}, packet::NodeId{1}, 0}), 0.9);
  EXPECT_DOUBLE_EQ(
      e.erasure_probability({packet::NodeId{1}, packet::NodeId{0}, 0}), 0.1);
}

TEST(Erasure, DrawMatchesProbability) {
  const IidErasure e(1.0);
  Rng rng(5);
  EXPECT_TRUE(e.erased(rng, {packet::NodeId{0}, packet::NodeId{1}, 0}));
  const IidErasure never(0.0);
  EXPECT_FALSE(never.erased(rng, {packet::NodeId{0}, packet::NodeId{1}, 0}));
}

}  // namespace
}  // namespace thinair::channel
