// The active adversary of Sec. 2, end to end.
//
// A passive Eve only listens; an active Eve can also *impersonate* a
// terminal. The classic attack on this protocol is report forgery: Eve
// replaces terminal T's reception report with her own reception set, so
// Alice builds T's y-packets out of packets Eve holds — and the "secret"
// shared with T (and anything phase 2 distils from it) is transparent to
// Eve. These tests demonstrate the attack against the raw protocol and the
// defence the paper prescribes: one-time-MAC authentication of the public
// discussion, bootstrapped from a small initial secret and refilled by the
// protocol's own output.
#include <gtest/gtest.h>

#include "analysis/eve_view.h"
#include "analysis/leakage.h"
#include "auth/authenticator.h"
#include "channel/rng.h"
#include "core/phase1.h"
#include "core/phase2.h"
#include "packet/serialize.h"

namespace thinair::core {
namespace {

packet::NodeId T(std::uint16_t v) { return packet::NodeId{v}; }

struct Scenario {
  std::size_t universe = 40;
  std::vector<std::uint32_t> honest_r1;  // what T1 actually received
  std::vector<std::uint32_t> eve;        // what Eve received

  Scenario() {
    channel::Rng rng(99);
    for (std::uint32_t i = 0; i < universe; ++i) {
      if (rng.bernoulli(0.6)) honest_r1.push_back(i);
      if (rng.bernoulli(0.5)) eve.push_back(i);
    }
  }

  /// Run phase 1+2 with the given report for T1 and score Eve's knowledge
  /// of the group secret.
  [[nodiscard]] double reliability_with_report(
      const std::vector<std::uint32_t>& r1_report) const {
    ReceptionTable table(T(0), {T(1)}, universe);
    table.set_received(T(1), r1_report);
    const OracleEstimator est(eve, universe);
    const Phase1Result p1 = run_phase1(table, est, PoolStrategy::kClassShared);
    const Phase2Plan plan = plan_phase2(p1.build.pool);
    if (plan.group_size == 0) return 1.0;

    analysis::EveView view(universe);
    view.observe_x(eve);
    const gf::Matrix g = p1.build.pool.rows();
    if (plan.h.rows() > 0) view.observe_combinations(plan.h.mul(g));
    return analysis::compute_leakage(view, plan.c.mul(g)).reliability;
  }
};

TEST(ActiveAdversary, HonestRunIsSecret) {
  const Scenario s;
  EXPECT_DOUBLE_EQ(s.reliability_with_report(s.honest_r1), 1.0);
}

TEST(ActiveAdversary, ForgedReportPoisonsTheSecret) {
  // Eve impersonates T1 and reports *her own* reception set. The oracle
  // estimate is now self-referential garbage: every "secret" packet is
  // built from packets Eve holds.
  const Scenario s;
  // The estimator believes Eve missed what she missed of *her* set: the
  // attack works because Alice keys the construction off the forged set.
  ReceptionTable table(T(0), {T(1)}, s.universe);
  table.set_received(T(1), s.eve);  // forged: T1 "received" Eve's packets
  // Alice still sizes against the *honest* channel estimate (she cannot
  // know the report is forged) — use a fraction estimator as she would.
  const FractionEstimator est(0.4);
  const Phase1Result p1 = run_phase1(table, est, PoolStrategy::kClassShared);
  const Phase2Plan plan = plan_phase2(p1.build.pool);
  ASSERT_GT(plan.group_size, 0u);

  analysis::EveView view(s.universe);
  view.observe_x(s.eve);
  const gf::Matrix g = p1.build.pool.rows();
  if (plan.h.rows() > 0) view.observe_combinations(plan.h.mul(g));
  const auto rep = analysis::compute_leakage(view, plan.c.mul(g));
  // Everything is built over Eve's own reception set: total leakage.
  EXPECT_DOUBLE_EQ(rep.reliability, 0.0);
}

TEST(ActiveAdversary, AuthenticationDetectsForgedReport) {
  const Scenario s;

  // T1 and Alice share bootstrap key material (Sec. 2: unavoidable for
  // the *first* contact; later keys come from the protocol itself).
  std::vector<std::uint8_t> bootstrap(64, 0x5A);
  auth::Authenticator t1(bootstrap);
  auth::Authenticator alice(bootstrap);

  // Honest signed report.
  const packet::ReceptionReport honest{
      static_cast<std::uint32_t>(s.universe), s.honest_r1};
  const auto signed_report = t1.sign(packet::encode(honest));
  ASSERT_TRUE(signed_report.has_value());

  // Eve intercepts and substitutes her forged body, keeping the tag.
  auth::AuthenticatedMessage forged = *signed_report;
  const packet::ReceptionReport fake{static_cast<std::uint32_t>(s.universe),
                                     s.eve};
  forged.body = packet::encode(fake);

  EXPECT_FALSE(alice.verify(forged));        // forgery rejected
  EXPECT_TRUE(alice.verify(*signed_report)); // the honest one still lands
}

TEST(ActiveAdversary, ReplayedReportRejected) {
  // Replaying an old (genuinely signed) report from a previous round must
  // fail too: one-time keys advance monotonically.
  std::vector<std::uint8_t> bootstrap(64, 0x3C);
  auth::Authenticator t1(bootstrap);
  auth::Authenticator alice(bootstrap);

  const auto round1 = t1.sign({1, 2, 3});
  const auto round2 = t1.sign({4, 5, 6});
  ASSERT_TRUE(round1 && round2);
  EXPECT_TRUE(alice.verify(*round1));
  EXPECT_TRUE(alice.verify(*round2));
  EXPECT_FALSE(alice.verify(*round1));  // replay of round 1
}

TEST(ActiveAdversary, ProtocolOutputSustainsAuthentication) {
  // Close the loop: run a (simulated) phase over a table, deposit the
  // secret into the authenticators, and keep signing — the system needs
  // the bootstrap only once.
  const Scenario s;
  ReceptionTable table(T(0), {T(1)}, s.universe);
  table.set_received(T(1), s.honest_r1);
  const OracleEstimator est(s.eve, s.universe);
  const Phase1Result p1 = run_phase1(table, est, PoolStrategy::kClassShared);
  const Phase2Plan plan = plan_phase2(p1.build.pool);
  ASSERT_GT(plan.group_size, 0u);

  channel::Rng rng(7);
  std::vector<packet::Payload> x(s.universe);
  for (auto& p : x) {
    p.resize(32);
    for (auto& b : p) b = rng.next_byte();
  }
  const auto y = all_y_contents(p1.build.pool, x, 32);
  const auto secret_packets = make_s_payloads(plan, y, 32);
  std::vector<std::uint8_t> secret;
  for (const auto& p : secret_packets)
    secret.insert(secret.end(), p.begin(), p.end());
  ASSERT_GE(secret.size(), auth::MacKey::kBytes);

  auth::Authenticator t1(std::vector<std::uint8_t>(auth::MacKey::kBytes, 1));
  auth::Authenticator alice(std::vector<std::uint8_t>(auth::MacKey::kBytes, 1));
  EXPECT_TRUE(alice.verify(*t1.sign({0})));  // bootstrap key spent

  t1.refill(secret);
  alice.refill(secret);
  for (std::uint8_t i = 0; i < 3; ++i) {
    const auto m = t1.sign({i});
    ASSERT_TRUE(m.has_value());
    EXPECT_TRUE(alice.verify(*m));
  }
}

}  // namespace
}  // namespace thinair::core
