#!/usr/bin/env python3
"""Compare a fresh BENCH_engine.json against the checked-in snapshot.

Usage: check_bench_engine.py BASELINE FRESH [--tolerance FRAC]

Prints per-thread-count deltas so the engine's throughput trajectory is
visible in every PR's CI log. Absolute cases/s moves with the runner
hardware, so what *fails* the check is:

  - structural drift: a missing field, a malformed file, an empty
    thread sweep, or p50 > p99;
  - a 1-thread throughput drop beyond --tolerance (default 0.10) vs the
    snapshot — meaningful when baseline and fresh run on the same class
    of machine (the container snapshot vs a container re-run); CI
    passes a loose tolerance because its runners differ from the
    snapshot machine;
  - scaling collapse: on a clearly multi-core runner (>= 4 hardware
    threads) the max-thread sweep must beat 1-thread by >= 1.5x — the
    lock-free result path's whole reason to exist. (The 2x acceptance
    figure holds on dedicated multi-core hardware; 1.5 leaves margin
    for shared CI vCPUs.)
  - slab regression in the reorder probe: the drainer's reorder buffer
    is backed by a slab arena (runtime/slab_alloc.h); the block-reversed
    probe must show the free list actually recycling (>= 50% hit rate
    once the run is much longer than one block) and chunk growth bounded
    by the reorder window, not by total case count.
"""

import argparse
import json
import sys

MIN_MULTICORE_SCALING = 1.5
MULTICORE_THREADS = 4


def fail(msg):
    print(f"check_bench_engine: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def per_thread(doc):
    return {e["threads"]: e["cases_per_s"] for e in doc["threads"]}


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional 1-thread throughput drop "
                             "vs the snapshot (default 0.10)")
    opts = parser.parse_args()

    try:
        with open(opts.baseline) as f:
            base = json.load(f)
        with open(opts.fresh) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load inputs: {e}")
    tolerance = opts.tolerance

    for key in ("bench", "cases", "hardware_threads", "push_p50_ns",
                "push_p99_ns", "threads", "speedup_max_vs_1"):
        if key not in fresh:
            fail(f"fresh output lost the '{key}' field")
    if fresh["bench"] != "micro_engine":
        fail(f"unexpected bench '{fresh['bench']}'")
    if not fresh["threads"]:
        fail("empty thread sweep")
    for entry in fresh["threads"]:
        for key in ("threads", "cases_per_s"):
            if key not in entry:
                fail(f"thread entry lost the '{key}' field")
        if entry["cases_per_s"] <= 0:
            fail(f"non-positive cases/s at {entry['threads']} threads")
    if fresh["push_p50_ns"] > fresh["push_p99_ns"]:
        fail("push p50 > p99: latency percentiles are malformed")

    if "reorder" not in fresh:
        fail("fresh output lost the 'reorder' probe")
    reorder = fresh["reorder"]
    for key in ("block", "cases", "cases_per_s", "peak_pending",
                "slab_chunks", "slab_reserved_bytes", "slab_acquires",
                "slab_freelist_hits"):
        if key not in reorder:
            fail(f"reorder probe lost the '{key}' field")
    if reorder["cases_per_s"] <= 0:
        fail("non-positive reorder probe throughput")
    if reorder["peak_pending"] + 1 < min(reorder["block"], reorder["cases"]):
        fail(f"reorder peak_pending {reorder['peak_pending']} below the "
             f"forced window ({reorder['block']}-case blocks): the probe "
             "is not exercising the reorder buffer")
    if reorder["slab_acquires"] < reorder["peak_pending"]:
        fail("slab acquires below peak_pending: stats are malformed")
    if reorder["cases"] >= 4 * reorder["block"]:
        hit_rate = reorder["slab_freelist_hits"] / max(reorder["slab_acquires"], 1)
        if hit_rate < 0.5:
            fail(f"slab free-list hit rate {hit_rate:.2f} < 0.5: the reorder "
                 "buffer is allocating instead of recycling")
        # Chunks must cover the window, not the whole run: allow 4x slack
        # over the peak window's worth of nodes at a generous 512 B/node.
        window_bytes = reorder["peak_pending"] * 512
        if reorder["slab_reserved_bytes"] > max(4 * window_bytes, 1 << 20):
            fail(f"slab reserved {reorder['slab_reserved_bytes']} bytes for a "
                 f"{reorder['peak_pending']}-record window: chunk growth is "
                 "tracking case count, not the reorder window")

    b, f = per_thread(base), per_thread(fresh)
    print("[engine cases/s]")
    for threads in sorted(f):
        ref = b.get(threads)
        delta = "" if ref in (None, 0) else \
            f"  {100.0 * (f[threads] - ref) / ref:+6.1f}% vs snapshot"
        print(f"  threads {threads:>3}: {f[threads]:12.0f} cases/s{delta}")
    print(f"[push] p50 {fresh['push_p50_ns']:.0f} ns, "
          f"p99 {fresh['push_p99_ns']:.0f} ns "
          f"(snapshot {base['push_p50_ns']:.0f}/{base['push_p99_ns']:.0f})")
    print(f"[scaling] max-vs-1: {fresh['speedup_max_vs_1']:.2f}x on "
          f"{fresh['hardware_threads']} hardware threads "
          f"(snapshot {base['speedup_max_vs_1']:.2f}x)")
    hits = reorder["slab_freelist_hits"] / max(reorder["slab_acquires"], 1)
    print(f"[reorder] {reorder['cases_per_s']:.0f} cases/s through a "
          f"{reorder['block']}-case window: peak {reorder['peak_pending']} "
          f"pending, {reorder['slab_chunks']} slab chunk(s) "
          f"({reorder['slab_reserved_bytes'] // 1024} KiB), "
          f"{100 * hits:.1f}% free-list hits")

    if 1 in f and 1 in b and b[1] > 0:
        drop = (b[1] - f[1]) / b[1]
        if drop > tolerance:
            fail(f"1-thread throughput regressed {100 * drop:.1f}% "
                 f"(> {100 * tolerance:.0f}% tolerance): "
                 "the result path got slower")
    if fresh["hardware_threads"] >= MULTICORE_THREADS and \
            fresh["speedup_max_vs_1"] < MIN_MULTICORE_SCALING:
        fail(f"only {fresh['speedup_max_vs_1']:.2f}x scaling on "
             f"{fresh['hardware_threads']} hardware threads "
             f"(< {MIN_MULTICORE_SCALING}x): workers are serialising "
             "somewhere on the result path")
    print("check_bench_engine: OK")


if __name__ == "__main__":
    main()
