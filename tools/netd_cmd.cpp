#include "netd_cmd.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "netd/client.h"
#include "netd/daemon.h"
#include "util/parse.h"

namespace thinair::tools {

namespace {

netd::Daemon* g_daemon = nullptr;

void on_signal(int) {
  if (g_daemon != nullptr) g_daemon->stop();
}

bool parse_double(const char* text, double& out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == nullptr || *end != '\0' || v < 0.0) return false;
  out = v;
  return true;
}

int flag_error(const char* flag, const char* value) {
  std::fprintf(stderr, "%s %s: bad or missing value\n", flag,
               value == nullptr ? "(missing)" : value);
  return 2;
}

}  // namespace

void netd_usage(const char* argv0) {
  std::fprintf(
      stderr,
      "       %s serve [--host H] [--port P] [--loss P] [--seed S]\n"
      "           [--idle-timeout SEC] [--max-sessions K]\n"
      "       %s client --session ID --node N --members M [--host H]\n"
      "           [--port P] [--packets N] [--payload-bytes B] [--rounds R]\n"
      "           [--payload-seed S] [--deadline SEC] [--quiet]\n",
      argv0, argv0);
}

int cmd_serve(int argc, char** argv) {
  netd::DaemonConfig config;
  config.port = 7464;  // "TH" on a phone keypad; --port 0 asks the kernel
  bool port_set = false;
  for (int i = 0; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    ++i;
    std::uint64_t n = 0;
    if (flag == "--host" && value != nullptr) {
      config.host = value;
    } else if (flag == "--port" && util::parse_u64_in(value ? value : "", 0,
                                                      65535, n)) {
      config.port = static_cast<std::uint16_t>(n);
      port_set = true;
    } else if (flag == "--loss") {
      double p = 0.0;
      if (!parse_double(value, p) || p >= 1.0) return flag_error("--loss", value);
      config.hub.loss_p = p;
    } else if (flag == "--seed" && util::parse_u64(value ? value : "", n)) {
      config.hub.seed = n;
    } else if (flag == "--idle-timeout") {
      if (!parse_double(value, config.hub.idle_timeout_s) ||
          config.hub.idle_timeout_s <= 0.0)
        return flag_error("--idle-timeout", value);
    } else if (flag == "--max-sessions" &&
               util::parse_u64(value ? value : "", n)) {
      config.hub.max_sessions = n;
    } else {
      return flag_error(flag.c_str(), value);
    }
  }
  (void)port_set;

  try {
    netd::Daemon daemon(config);
    g_daemon = &daemon;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    daemon.run([&] {
      // Parse-friendly readiness line (the smoke test greps the port).
      std::printf("thinaird listening on %s:%u (%s)\n", config.host.c_str(),
                  daemon.port(), daemon.using_epoll() ? "epoll" : "poll");
      std::fflush(stdout);
    });
    g_daemon = nullptr;
    const netd::HubStats& s = daemon.hub().stats();
    std::fprintf(stderr,
                 "thinaird: %llu datagrams, %llu relays, %llu sessions opened "
                 "(%llu closed, %llu expired), %llu decode errors\n",
                 static_cast<unsigned long long>(s.datagrams_in.load()),
                 static_cast<unsigned long long>(s.frames_relayed.load()),
                 static_cast<unsigned long long>(s.sessions_opened.load()),
                 static_cast<unsigned long long>(s.sessions_closed.load()),
                 static_cast<unsigned long long>(s.sessions_expired.load()),
                 static_cast<unsigned long long>(s.decode_errors.load()));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "thinaird: %s\n", e.what());
    return 1;
  }
  return 0;
}

int cmd_client(int argc, char** argv) {
  netd::ClientConfig config;
  config.port = 7464;
  bool quiet = false;
  bool have_session = false;
  bool have_node = false;
  for (int i = 0; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--quiet") {
      quiet = true;
      continue;
    }
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    ++i;
    std::uint64_t n = 0;
    if (flag == "--host" && value != nullptr) {
      config.host = value;
    } else if (flag == "--port" &&
               util::parse_u64_in(value ? value : "", 1, 65535, n)) {
      config.port = static_cast<std::uint16_t>(n);
    } else if (flag == "--session" && util::parse_u64(value ? value : "", n)) {
      config.node.session_id = n;
      have_session = true;
    } else if (flag == "--node" &&
               util::parse_u64_in(value ? value : "", 0, 31, n)) {
      config.node.node = static_cast<std::uint16_t>(n);
      have_node = true;
    } else if (flag == "--members" &&
               util::parse_u64_in(value ? value : "", 2, 32, n)) {
      config.node.members = static_cast<std::uint16_t>(n);
    } else if (flag == "--packets" &&
               util::parse_u64_in(value ? value : "", 1, 4096, n)) {
      config.node.x_packets_per_round = n;
    } else if (flag == "--payload-bytes" &&
               util::parse_u64_in(value ? value : "", 1, 8192, n)) {
      config.node.payload_bytes = n;
    } else if (flag == "--rounds" && util::parse_u64(value ? value : "", n)) {
      config.node.rounds = n;
    } else if (flag == "--payload-seed" &&
               util::parse_u64(value ? value : "", n)) {
      config.node.payload_seed = n;
    } else if (flag == "--deadline") {
      if (!parse_double(value, config.deadline_s) || config.deadline_s <= 0.0)
        return flag_error("--deadline", value);
    } else {
      return flag_error(flag.c_str(), value);
    }
  }
  if (!have_session || !have_node) {
    std::fprintf(stderr, "client: --session and --node are required\n");
    return 2;
  }
  // Distinct default payload streams per node: every terminal plays Alice
  // in some round, and two Alices sharing a stream would correlate rounds.
  if (config.node.payload_seed == netd::NodeConfig{}.payload_seed)
    config.node.payload_seed ^= 0x9E3779B97F4A7C15ULL * (config.node.node + 1);

  netd::ClientResult result;
  try {
    result = netd::run_client(config);
  } catch (const std::exception& e) {  // socket setup/teardown errors
    std::fprintf(stderr, "client: %s\n", e.what());
    return 1;
  }
  if (!result.ok) {
    std::fprintf(stderr, "client: %s\n", result.error.c_str());
    return 1;
  }
  if (!quiet)
    std::fprintf(stderr, "client: %zu rounds, %zu secret bytes\n",
                 result.rounds, result.secret.size());
  // The key, hex on stdout — two clients' outputs must diff clean.
  for (const std::uint8_t b : result.secret) std::printf("%02x", b);
  std::printf("\n");
  return 0;
}

}  // namespace thinair::tools
