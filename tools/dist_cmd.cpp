#include "dist_cmd.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "dist/runner.h"
#include "dist/stream.h"
#include "run_common.h"
#include "runtime/result_sink.h"
#include "util/parse.h"

namespace thinair::tools {

namespace {

/// "HOST:PORT" -> (host, port). Reports and returns false on anything
/// else (missing colon, non-numeric or out-of-range port).
bool split_host_port(const std::string& text, std::string& host,
                     std::uint16_t& port) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0) {
    std::fprintf(stderr, "want HOST:PORT, got '%s'\n", text.c_str());
    return false;
  }
  std::uint64_t p = 0;
  if (!util::parse_u64_in(text.c_str() + colon + 1, 0, 65535, p)) {
    std::fprintf(stderr, "bad port in '%s'\n", text.c_str());
    return false;
  }
  host = text.substr(0, colon);
  port = static_cast<std::uint16_t>(p);
  return true;
}

}  // namespace

int cmd_sweep_master(int argc, char** argv) {
  RunArgs args;
  if (!parse_run_args(argc, argv, args)) return 2;
  if (args.listen.empty()) {
    std::fprintf(stderr, "sweep-master needs --listen HOST:PORT\n");
    return 2;
  }
  if (args.workers == 0) {
    std::fprintf(stderr,
                 "sweep-master needs --workers N (how many to wait for)\n");
    return 2;
  }
  std::string host;
  std::uint16_t port = 0;
  if (!split_host_port(args.listen, host, port)) return 2;

  const std::optional<runtime::Scenario> scenario =
      resolve_scenario(args.spec);
  if (!scenario.has_value()) return 1;
  const runtime::RunOptions options = pinned_options(*scenario, args);

  std::ofstream file;
  std::ostream* ndjson = nullptr;
  if (!open_ndjson(args.out, file, ndjson)) return 1;

  dist::MasterTuning tuning;
  tuning.shard_size = args.shard_size;
  tuning.shard_timeout_s = args.shard_timeout_s;

  try {
    dist::TcpListener listener(host, port);
    // The smoke test greps this line for the ephemeral port.
    std::fprintf(stderr, "sweep-master: listening on %s:%u (waiting for %zu "
                 "worker(s))\n",
                 host.c_str(), listener.port(), args.workers);
    runtime::ResultSink sink(scenario->name, ndjson);
    const runtime::RunStats stats = dist::run_distributed_listen(
        *scenario, options, tuning, listener, args.workers, sink, &std::cerr);
    print_run_tail(*scenario, sink, stats, args.quiet, ndjson == &std::cout,
                   "worker");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep-master failed: %s\n", e.what());
    return 1;
  }
  return 0;
}

int cmd_sweep_worker(int argc, char** argv) {
  std::string connect;
  std::uint64_t connect_fd = 0;
  bool have_fd = false;
  std::uint64_t exit_after = 0;
  for (int i = 0; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (flag == "--connect" && value != nullptr) {
      connect = value;
      ++i;
    } else if (flag == "--connect-fd" && value != nullptr &&
               util::parse_u64_in(value, 0, 1 << 20, connect_fd)) {
      have_fd = true;
      ++i;
    } else if (flag == "--exit-after-records" && value != nullptr &&
               util::parse_u64(value, exit_after)) {
      ++i;
    } else {
      std::fprintf(stderr, "sweep-worker: bad flag %s\n", flag.c_str());
      return 2;
    }
  }
  if (connect.empty() == !have_fd) {
    std::fprintf(stderr,
                 "sweep-worker needs exactly one of --connect HOST:PORT or "
                 "--connect-fd N\n");
    return 2;
  }

  try {
    if (have_fd)
      return dist::run_worker_on_fd(
          dist::StreamSocket(static_cast<int>(connect_fd)),
          static_cast<std::size_t>(exit_after));
    std::string host;
    std::uint16_t port = 0;
    if (!split_host_port(connect, host, port)) return 2;
    return dist::run_worker_connect(host, port,
                                    static_cast<std::size_t>(exit_after));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep-worker failed: %s\n", e.what());
    return 1;
  }
}

void dist_usage(const char* argv0) {
  std::fprintf(
      stderr,
      "       %s sweep-master --listen HOST:PORT --workers N\n"
      "           NAME|--spec FILE [run flags] [--shard-size K]\n"
      "           [--shard-timeout SECONDS]\n"
      "       %s sweep-worker --connect HOST:PORT\n",
      argv0, argv0);
}

}  // namespace thinair::tools
