#pragma once
// The distributed-sweep thinair subcommands:
//
//   thinair sweep-master — shard one scenario across TCP workers
//   thinair sweep-worker — run shards for a master (TCP or inherited fd)
//
// `thinair run NAME --workers N` (the local fork/exec mode) lives in
// cmd_run; these are the explicit multi-machine faces of the same
// src/dist/ subsystem. Both return a process exit code.

namespace thinair::tools {

int cmd_sweep_master(int argc, char** argv);
int cmd_sweep_worker(int argc, char** argv);

/// Append the sweep-master/sweep-worker usage lines to the main usage.
void dist_usage(const char* argv0);

}  // namespace thinair::tools
