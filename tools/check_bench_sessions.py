#!/usr/bin/env python3
"""Compare a fresh BENCH_sessions.json against the checked-in snapshot.

Usage: check_bench_sessions.py BASELINE FRESH [--tolerance FRAC]

Absolute sessions/s moves with the runner hardware, so throughput deltas
are printed for the CI log but only sanity-checked loosely. What *fails*
the check is the pooled-lifecycle contract itself:

  - structural drift: a missing field or a malformed file;
  - incomplete churn: completed != sessions, or zero cycles verified
    against fresh construction;
  - a cold pool: hit rate below 0.99 means create/destroy is constructing
    instead of recycling — the free list is broken;
  - an untrimmed arena: trimmed_bytes == 0 means the spike phase's fat
    blocks were retained forever — the watermark policy is broken;
  - RSS growth over the final half of the run beyond the bench's own
    recorded fraction bound — pooled steady state must not leak;
  - a throughput collapse beyond --tolerance (default 0.50, loose: CI
    runners differ wildly from the snapshot machine) vs the snapshot.
"""

import argparse
import json
import sys

MIN_HIT_RATE = 0.99
MAX_RSS_GROWTH = 0.05


def fail(msg):
    print(f"check_bench_sessions: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--tolerance", type=float, default=0.50,
                        help="allowed fractional sessions/s drop vs the "
                             "snapshot (default 0.50)")
    opts = parser.parse_args()

    try:
        with open(opts.baseline) as f:
            base = json.load(f)
        with open(opts.fresh) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load inputs: {e}")

    for key in ("bench", "sessions", "completed", "with_nonzero_secret",
                "verified_vs_fresh", "sessions_per_s", "wall_s",
                "pool_acquired", "pool_constructed", "pool_hit_rate",
                "arena_trimmed_bytes", "arena_capacity_bytes",
                "rss_mid_kb", "rss_final_kb",
                "rss_growth_final_half_frac"):
        if key not in fresh:
            fail(f"fresh output lost the '{key}' field")
    if fresh["bench"] != "micro_sessions":
        fail(f"unexpected bench '{fresh['bench']}'")

    if fresh["completed"] != fresh["sessions"]:
        fail(f"only {fresh['completed']}/{fresh['sessions']} cycles completed")
    if fresh["verified_vs_fresh"] == 0:
        fail("no cycles were verified against fresh construction")
    if fresh["pool_acquired"] < fresh["sessions"]:
        fail("pool acquired fewer objects than sessions ran: stats are "
             "malformed")
    if fresh["pool_hit_rate"] < MIN_HIT_RATE:
        fail(f"pool hit rate {fresh['pool_hit_rate']:.4f} < {MIN_HIT_RATE}: "
             "session churn is constructing instead of recycling")
    if fresh["arena_trimmed_bytes"] == 0:
        fail("arena trimmed 0 bytes: the watermark trim policy never fired")
    if fresh["rss_growth_final_half_frac"] > MAX_RSS_GROWTH:
        fail(f"RSS grew {100 * fresh['rss_growth_final_half_frac']:.1f}% over "
             f"the final half (> {100 * MAX_RSS_GROWTH:.0f}%): pooled steady "
             "state is leaking")

    ref = base.get("sessions_per_s", 0)
    delta = "" if not ref else \
        f"  ({100.0 * (fresh['sessions_per_s'] - ref) / ref:+.1f}% vs snapshot)"
    print(f"[churn] {fresh['completed']} cycles, "
          f"{fresh['sessions_per_s']:.0f} sessions/s{delta}")
    print(f"[pool]  hit rate {fresh['pool_hit_rate']:.6f} "
          f"({fresh['pool_constructed']} constructed / "
          f"{fresh['pool_acquired']} acquired), "
          f"{fresh['verified_vs_fresh']} cycles verified vs fresh")
    print(f"[arena] {fresh['arena_capacity_bytes'] // 1024} KiB retained, "
          f"{fresh['arena_trimmed_bytes'] // 1024} KiB trimmed")
    print(f"[rss]   {fresh['rss_mid_kb']} -> {fresh['rss_final_kb']} KiB "
          f"({100 * fresh['rss_growth_final_half_frac']:+.2f}% final half)")

    if ref > 0:
        drop = (ref - fresh["sessions_per_s"]) / ref
        if drop > opts.tolerance:
            fail(f"sessions/s regressed {100 * drop:.1f}% "
                 f"(> {100 * opts.tolerance:.0f}% tolerance): the session "
                 "lifecycle got slower")
    print("check_bench_sessions: OK")


if __name__ == "__main__":
    main()
