// thinair — the scenario-runtime driver, the single entry point for
// running the paper's sweeps at scale:
//
//   $ thinair list
//   $ thinair run fig2 --threads 8 --seed 42 --out fig2.ndjson
//   $ thinair run fig2 --set channel.interference=off --limit 20
//   $ thinair run --spec examples/specs/fig2_iid.toml --out -
//   $ thinair describe headline
//
// `run` executes every case of a scenario — a registered name, a spec
// file (--spec), or either with dotted-path overrides (--set key=value) —
// on the work-stealing engine and writes one NDJSON line per case to
// --out ("-" = stdout), then prints per-group summary aggregates. Output
// is bit-identical for any --threads value: case seeds derive from
// (--seed, case index) and rows are emitted in case-index order. Timing
// goes to stderr so stdout stays byte-comparable across runs. `describe`
// dumps the resolved spec back out in spec-file syntax (a parse
// round-trip), and `list` shows each scenario's parameter axes.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "gf/kernels.h"
#include "netd_cmd.h"
#include "runtime/engine.h"
#include "runtime/result_sink.h"
#include "runtime/scenarios.h"
#include "runtime/spec_parse.h"
#include "util/parse.h"

namespace {

using namespace thinair;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s list\n"
      "       %s describe NAME|--spec FILE [--set key=value]...\n"
      "       %s run NAME|--spec FILE [--set key=value]...\n"
      "           [--threads N] [--seed S] [--out FILE|-] [--limit K]\n"
      "           [--quiet] [--kernel scalar|portable|ssse3|avx2|gfni|auto]\n"
      "       %s kernels\n",
      argv0, argv0, argv0, argv0);
  tools::netd_usage(argv0);
  std::fprintf(
      stderr,
      "--spec runs a scenario composed in a spec file (docs/scenarios.md);\n"
      "--set overrides one spec key by dotted path, e.g. channel.p=0.3.\n"
      "--kernel (or THINAIR_GF_KERNEL) retargets the GF(2^8) bulk kernels;\n"
      "output is byte-identical across kernels.\n"
      "serve/client run a live key agreement over UDP (docs/daemon.md).\n");
  return 2;
}

int cmd_kernels() {
  // One row per registered kernel; every kernel implements the full
  // vtable (axpy/mul_row/xor_into + the fused mad_multi scatter and
  // dot_multi gather), so the second column documents the fusion both
  // directions dispatch to.
  for (const gf::Kernel* k : gf::all_kernels())
    std::printf("%-9s fused: mad_multi+dot_multi (x%zu)%s\n", k->name,
                gf::kMaxFusedRows,
                k == &gf::active_kernel() ? "  (active)" : "");
  return 0;
}

std::string axis_display(const runtime::SweepPlan::AxisSummary& axis) {
  std::string out = axis.name + " in ";
  if (axis.values.size() <= 6) {
    out += "{";
    for (std::size_t i = 0; i < axis.values.size(); ++i)
      out += (i > 0 ? ", " : "") + runtime::format_double(axis.values[i]);
    return out + "}";
  }
  return out + "[" + runtime::format_double(axis.min()) + " .. " +
         runtime::format_double(axis.max()) + "] (" +
         std::to_string(axis.values.size()) + " values)";
}

int cmd_list() {
  for (const runtime::Scenario* s :
       runtime::ScenarioRegistry::instance().list()) {
    const runtime::SweepPlan plan = s->plan();
    std::printf("%-10s %6zu cases  %s\n", s->name.c_str(), plan.size(),
                s->description.c_str());
    std::string axes;
    for (const runtime::SweepPlan::AxisSummary& axis : plan.axis_summaries())
      axes += (axes.empty() ? "" : "; ") + axis_display(axis);
    if (!axes.empty()) std::printf("%24s axes: %s\n", "", axes.c_str());
  }
  return 0;
}

/// How a run/describe names its scenario: a registered name, a spec
/// file, or either plus --set overrides.
struct SpecArgs {
  std::string scenario;   // registered name ("" with --spec)
  std::string spec_file;  // --spec FILE
  std::vector<std::pair<std::string, std::string>> overrides;
};

/// Resolve the scenario a SpecArgs names, compiling specs and applying
/// overrides. Prints the failure to stderr and returns nullopt on error.
std::optional<runtime::Scenario> resolve_scenario(const SpecArgs& args) {
  runtime::ScenarioSpec spec;
  if (!args.spec_file.empty()) {
    std::ifstream file(args.spec_file);
    if (!file) {
      std::fprintf(stderr, "cannot read spec file %s\n",
                   args.spec_file.c_str());
      return std::nullopt;
    }
    std::ostringstream text;
    text << file.rdbuf();
    try {
      spec = runtime::parse_spec(text.str());
    } catch (const runtime::SpecError& e) {
      std::fprintf(stderr, "%s: %s\n", args.spec_file.c_str(), e.what());
      return std::nullopt;
    }
  } else {
    const runtime::Scenario* registered =
        runtime::ScenarioRegistry::instance().find(args.scenario);
    if (registered == nullptr) {
      std::fprintf(stderr, "unknown scenario '%s' (see `thinair list`)\n",
                   args.scenario.c_str());
      return std::nullopt;
    }
    if (args.overrides.empty()) return *registered;
    if (registered->spec == nullptr) {
      std::fprintf(stderr,
                   "scenario '%s' is hand-written (no spec); --set needs a "
                   "spec-defined scenario\n",
                   args.scenario.c_str());
      return std::nullopt;
    }
    spec = *registered->spec;
  }

  for (const auto& [key, value] : args.overrides) {
    try {
      runtime::apply_override(spec, key, value);
    } catch (const runtime::SpecError& e) {
      std::fprintf(stderr, "--set %s=%s: %s\n", key.c_str(), value.c_str(),
                   e.what());
      return std::nullopt;
    }
  }
  try {
    return runtime::compile(spec);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "invalid spec: %s\n", e.what());
    return std::nullopt;
  }
}

struct RunArgs {
  SpecArgs spec;
  runtime::RunOptions options;
  std::string out;     // empty = no NDJSON, "-" = stdout
  bool quiet = false;  // suppress the summary table
  // Whether the flag was given explicitly: a spec's [run] section pins
  // seed/threads only when the corresponding flag is absent (flags win).
  bool seed_given = false;
  bool threads_given = false;
};

/// Strict decimal parse (util::parse_u64) — rejects empty strings,
/// whitespace, '+'/'-' signs, trailing garbage and 64-bit overflow, so
/// `--seed banana` and `--threads -1` fail loudly instead of silently
/// running seed 0 or requesting 2^64 - 1 threads.
bool parse_u64(const char* text, std::uint64_t& out) {
  return text != nullptr && util::parse_u64(text, out);
}

/// Shared by run and describe: scenario NAME / --spec / --set. Returns
/// -1 when `flag` is not a spec-selection argument.
int parse_spec_arg(SpecArgs& args, const std::string& flag,
                   const char* value) {
  if (flag == "--spec") {
    if (value == nullptr) return 1;
    args.spec_file = value;
    return 0;
  }
  if (flag == "--set") {
    if (value == nullptr) return 1;
    const std::string assignment = value;
    const std::size_t eq = assignment.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "--set %s: want key=value\n", value);
      return 1;
    }
    args.overrides.emplace_back(assignment.substr(0, eq),
                                assignment.substr(eq + 1));
    return 0;
  }
  if (!flag.starts_with("--")) {
    if (!args.scenario.empty()) {
      std::fprintf(stderr, "two scenario names: %s and %s\n",
                   args.scenario.c_str(), flag.c_str());
      return 1;
    }
    args.scenario = flag;
    return 0;
  }
  return -1;
}

bool parse_run_args(int argc, char** argv, RunArgs& args) {
  for (int i = 0; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const auto bad_number = [&flag](const char* v) {
      std::fprintf(stderr, "%s: not a number: %s\n", flag.c_str(),
                   v == nullptr ? "(missing)" : v);
      return false;
    };
    if (flag == "--spec" || flag == "--set" || !flag.starts_with("--")) {
      const char* v = flag.starts_with("--") ? value() : nullptr;
      if (parse_spec_arg(args.spec, flag, v) != 0) return false;
    } else if (flag == "--quiet") {
      args.quiet = true;
    } else if (flag == "--threads") {
      std::uint64_t n = 0;
      const char* v = value();
      if (v == nullptr ||
          !util::parse_u64_in(v, 0, runtime::kMaxRunThreads, n)) {
        std::fprintf(stderr,
                     "--threads %s: want an integer in [0, %zu] (0 = auto)\n",
                     v == nullptr ? "(missing)" : v, runtime::kMaxRunThreads);
        return false;
      }
      args.options.threads = n;
      args.threads_given = true;
    } else if (flag == "--seed") {
      const char* v = value();
      if (!parse_u64(v, args.options.master_seed)) return bad_number(v);
      args.seed_given = true;
    } else if (flag == "--limit") {
      std::uint64_t n = 0;
      const char* v = value();
      if (!parse_u64(v, n)) return bad_number(v);
      args.options.limit = n;
    } else if (flag == "--out") {
      const char* v = value();
      if (v == nullptr) return false;
      args.out = v;
    } else if (flag == "--kernel") {
      const char* v = value();
      if (v == nullptr || !gf::set_active_kernel(v)) {
        std::fprintf(stderr,
                     "--kernel %s: unknown or unsupported on this CPU "
                     "(see `thinair kernels`)\n",
                     v == nullptr ? "(missing)" : v);
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return args.spec.scenario.empty() != args.spec.spec_file.empty();
}

int cmd_run(const RunArgs& args) {
  const std::optional<runtime::Scenario> scenario =
      resolve_scenario(args.spec);
  if (!scenario.has_value()) return 1;

  // Spec-level execution pinning ([run] seed/threads): the spec decides
  // unless the flag was given explicitly. Hand-written scenarios have no
  // spec and keep the CLI defaults.
  runtime::RunOptions options = args.options;
  if (scenario->spec != nullptr) {
    const runtime::RunSpec& pinned = scenario->spec->run;
    if (!args.seed_given && pinned.seed.has_value())
      options.master_seed = *pinned.seed;
    if (!args.threads_given && pinned.threads.has_value())
      options.threads = *pinned.threads;
  }

  std::ofstream file;
  std::ostream* ndjson = nullptr;
  if (args.out == "-") {
    ndjson = &std::cout;
  } else if (!args.out.empty()) {
    file.open(args.out, std::ios::trunc);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", args.out.c_str());
      return 1;
    }
    ndjson = &file;
  }

  runtime::ResultSink sink(scenario->name, ndjson);
  runtime::RunStats stats;
  try {
    stats = runtime::run_scenario(*scenario, options, sink);
  } catch (const std::exception& e) {
    // The engine funnels worker exceptions back to this thread; report
    // them as an error instead of letting main() terminate.
    std::fprintf(stderr, "run failed: %s\n", e.what());
    return 1;
  }

  if (!args.quiet && ndjson != &std::cout) {
    std::printf("%s — %s\n\n", scenario->name.c_str(),
                scenario->description.c_str());
    sink.print_summary(std::cout);
  }
  if (stats.truncated())
    std::fprintf(stderr,
                 "warning: --limit truncated %s: ran %zu of %zu cases; "
                 "group summaries are partial\n",
                 scenario->name.c_str(), stats.cases, stats.plan_cases);
  std::fprintf(stderr, "%zu cases on %zu thread(s) in %.2fs (%.1f cases/s)\n",
               stats.cases, stats.threads, stats.wall_s, stats.cases_per_s());
  return 0;
}

int cmd_describe(int argc, char** argv) {
  SpecArgs args;
  for (int i = 0; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value =
        flag.starts_with("--") && i + 1 < argc ? argv[++i] : nullptr;
    if (parse_spec_arg(args, flag, value) != 0) return 2;
  }
  if (args.scenario.empty() == args.spec_file.empty()) return 2;

  const std::optional<runtime::Scenario> scenario = resolve_scenario(args);
  if (!scenario.has_value()) return 1;
  if (scenario->spec == nullptr) {
    std::fprintf(stderr, "scenario '%s' is hand-written (no spec)\n",
                 scenario->name.c_str());
    return 1;
  }
  std::fputs(runtime::serialize_spec(*scenario->spec).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  runtime::register_builtin_scenarios();

  const std::string command = argv[1];
  if (command == "list") return cmd_list();
  if (command == "kernels") return cmd_kernels();
  if (command == "describe") {
    const int rc = cmd_describe(argc - 2, argv + 2);
    return rc == 2 ? usage(argv[0]) : rc;
  }
  if (command == "run") {
    RunArgs args;
    if (!parse_run_args(argc - 2, argv + 2, args)) return usage(argv[0]);
    return cmd_run(args);
  }
  if (command == "serve") {
    const int rc = tools::cmd_serve(argc - 2, argv + 2);
    return rc == 2 ? usage(argv[0]) : rc;
  }
  if (command == "client") {
    const int rc = tools::cmd_client(argc - 2, argv + 2);
    return rc == 2 ? usage(argv[0]) : rc;
  }
  return usage(argv[0]);
}
