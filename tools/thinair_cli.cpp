// thinair — the scenario-runtime driver, the single entry point for
// running the paper's sweeps at scale:
//
//   $ thinair list
//   $ thinair run fig2 --threads 8 --seed 42 --out fig2.ndjson
//   $ thinair run fig1 --limit 10 --out -
//
// `run` executes every case of the named scenario on the work-stealing
// engine and writes one NDJSON line per case to --out ("-" = stdout),
// then prints per-group summary aggregates. Output is bit-identical for
// any --threads value: case seeds derive from (--seed, case index) and
// rows are emitted in case-index order. Timing goes to stderr so stdout
// stays byte-comparable across runs.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "gf/kernels.h"
#include "runtime/engine.h"
#include "runtime/scenarios.h"
#include "util/parse.h"

namespace {

using namespace thinair;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s list\n"
               "       %s run SCENARIO [--threads N] [--seed S]\n"
               "           [--out FILE|-] [--limit K] [--quiet]\n"
               "           [--kernel scalar|portable|ssse3|avx2|gfni|auto]\n"
               "       %s kernels\n"
               "--kernel (or THINAIR_GF_KERNEL) retargets the GF(2^8) bulk\n"
               "kernels; output is byte-identical across kernels.\n",
               argv0, argv0, argv0);
  return 2;
}

int cmd_kernels() {
  for (const gf::Kernel* k : gf::all_kernels())
    std::printf("%s%s\n", k->name,
                k == &gf::active_kernel() ? "  (active)" : "");
  return 0;
}

int cmd_list() {
  for (const runtime::Scenario* s :
       runtime::ScenarioRegistry::instance().list()) {
    const std::size_t cases = s->plan().size();
    std::printf("%-10s %6zu cases  %s\n", s->name.c_str(), cases,
                s->description.c_str());
  }
  return 0;
}

struct RunArgs {
  std::string scenario;
  runtime::RunOptions options;
  std::string out;     // empty = no NDJSON, "-" = stdout
  bool quiet = false;  // suppress the summary table
};

/// Strict decimal parse (util::parse_u64) — rejects empty strings,
/// whitespace, '+'/'-' signs, trailing garbage and 64-bit overflow, so
/// `--seed banana` and `--threads -1` fail loudly instead of silently
/// running seed 0 or requesting 2^64 - 1 threads.
bool parse_u64(const char* text, std::uint64_t& out) {
  return text != nullptr && util::parse_u64(text, out);
}

bool parse_run_args(int argc, char** argv, RunArgs& args) {
  if (argc < 1) return false;
  args.scenario = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const auto bad_number = [&flag](const char* v) {
      std::fprintf(stderr, "%s: not a number: %s\n", flag.c_str(),
                   v == nullptr ? "(missing)" : v);
      return false;
    };
    if (flag == "--quiet") {
      args.quiet = true;
    } else if (flag == "--threads") {
      std::uint64_t n = 0;
      const char* v = value();
      if (v == nullptr ||
          !util::parse_u64_in(v, 0, runtime::kMaxRunThreads, n)) {
        std::fprintf(stderr,
                     "--threads %s: want an integer in [0, %zu] (0 = auto)\n",
                     v == nullptr ? "(missing)" : v, runtime::kMaxRunThreads);
        return false;
      }
      args.options.threads = n;
    } else if (flag == "--seed") {
      const char* v = value();
      if (!parse_u64(v, args.options.master_seed)) return bad_number(v);
    } else if (flag == "--limit") {
      std::uint64_t n = 0;
      const char* v = value();
      if (!parse_u64(v, n)) return bad_number(v);
      args.options.limit = n;
    } else if (flag == "--out") {
      const char* v = value();
      if (v == nullptr) return false;
      args.out = v;
    } else if (flag == "--kernel") {
      const char* v = value();
      if (v == nullptr || !gf::set_active_kernel(v)) {
        std::fprintf(stderr,
                     "--kernel %s: unknown or unsupported on this CPU "
                     "(see `thinair kernels`)\n",
                     v == nullptr ? "(missing)" : v);
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

int cmd_run(const RunArgs& args) {
  const runtime::Scenario* scenario =
      runtime::ScenarioRegistry::instance().find(args.scenario);
  if (scenario == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s' (see `thinair list`)\n",
                 args.scenario.c_str());
    return 1;
  }

  std::ofstream file;
  std::ostream* ndjson = nullptr;
  if (args.out == "-") {
    ndjson = &std::cout;
  } else if (!args.out.empty()) {
    file.open(args.out, std::ios::trunc);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", args.out.c_str());
      return 1;
    }
    ndjson = &file;
  }

  runtime::ResultSink sink(scenario->name, ndjson);
  const runtime::RunStats stats =
      runtime::run_scenario(*scenario, args.options, sink);

  if (!args.quiet && ndjson != &std::cout) {
    std::printf("%s — %s\n\n", scenario->name.c_str(),
                scenario->description.c_str());
    sink.print_summary(std::cout);
  }
  std::fprintf(stderr, "%zu cases on %zu thread(s) in %.2fs (%.1f cases/s)\n",
               stats.cases, stats.threads, stats.wall_s, stats.cases_per_s());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  runtime::register_builtin_scenarios();

  const std::string command = argv[1];
  if (command == "list") return cmd_list();
  if (command == "kernels") return cmd_kernels();
  if (command == "run") {
    RunArgs args;
    if (!parse_run_args(argc - 2, argv + 2, args)) return usage(argv[0]);
    return cmd_run(args);
  }
  return usage(argv[0]);
}
