// thinair — the scenario-runtime driver, the single entry point for
// running the paper's sweeps at scale:
//
//   $ thinair list
//   $ thinair run fig2 --threads 8 --seed 42 --out fig2.ndjson
//   $ thinair run fig2 --workers 4 --out fig2.ndjson
//   $ thinair run fig2 --set channel.interference=off --limit 20
//   $ thinair run --spec examples/specs/fig2_iid.toml --out -
//   $ thinair describe headline
//
// `run` executes every case of a scenario — a registered name, a spec
// file (--spec), or either with dotted-path overrides (--set key=value) —
// on the work-stealing engine and writes one NDJSON line per case to
// --out ("-" = stdout), then prints per-group summary aggregates. Output
// is bit-identical for any --threads value AND any --workers value:
// case seeds derive from (--seed, case index) and rows are emitted in
// case-index order. --workers N runs the sweep across N forked worker
// processes (docs/distributed.md); sweep-master/sweep-worker are the
// multi-machine flavour of the same split. Timing goes to stderr so
// stdout stays byte-comparable across runs. `describe` dumps the
// resolved spec back out in spec-file syntax (a parse round-trip), and
// `list` shows each scenario's parameter axes.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "dist_cmd.h"
#include "dist/runner.h"
#include "gf/kernels.h"
#include "netd_cmd.h"
#include "run_common.h"
#include "runtime/engine.h"
#include "runtime/result_sink.h"
#include "runtime/scenarios.h"
#include "runtime/spec_parse.h"

namespace {

using namespace thinair;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s list\n"
      "       %s describe NAME|--spec FILE [--set key=value]...\n"
      "       %s run NAME|--spec FILE [--set key=value]...\n"
      "           [--threads N | --workers N] [--seed S] [--out FILE|-]\n"
      "           [--limit K] [--quiet] [--shard-size K]\n"
      "           [--kernel scalar|portable|ssse3|avx2|gfni|auto]\n"
      "       %s kernels\n",
      argv0, argv0, argv0, argv0);
  tools::netd_usage(argv0);
  tools::dist_usage(argv0);
  std::fprintf(
      stderr,
      "--spec runs a scenario composed in a spec file (docs/scenarios.md);\n"
      "--set overrides one spec key by dotted path, e.g. channel.p=0.3.\n"
      "--workers N forks N local worker processes; output is byte-identical\n"
      "to any --threads run (docs/distributed.md).\n"
      "--kernel (or THINAIR_GF_KERNEL) retargets the GF(2^8) bulk kernels;\n"
      "output is byte-identical across kernels.\n"
      "serve/client run a live key agreement over UDP (docs/daemon.md).\n");
  return 2;
}

int cmd_kernels() {
  // One row per registered kernel; every kernel implements the full
  // vtable (axpy/mul_row/xor_into + the fused mad_multi scatter and
  // dot_multi gather), so the second column documents the fusion both
  // directions dispatch to.
  for (const gf::Kernel* k : gf::all_kernels())
    std::printf("%-9s fused: mad_multi+dot_multi (x%zu)%s\n", k->name,
                gf::kMaxFusedRows,
                k == &gf::active_kernel() ? "  (active)" : "");
  return 0;
}

std::string axis_display(const runtime::SweepPlan::AxisSummary& axis) {
  std::string out = axis.name + " in ";
  if (axis.values.size() <= 6) {
    out += "{";
    for (std::size_t i = 0; i < axis.values.size(); ++i)
      out += (i > 0 ? ", " : "") + runtime::format_double(axis.values[i]);
    return out + "}";
  }
  return out + "[" + runtime::format_double(axis.min()) + " .. " +
         runtime::format_double(axis.max()) + "] (" +
         std::to_string(axis.values.size()) + " values)";
}

int cmd_list() {
  for (const runtime::Scenario* s :
       runtime::ScenarioRegistry::instance().list()) {
    const runtime::SweepPlan plan = s->plan();
    std::printf("%-10s %6zu cases  %s\n", s->name.c_str(), plan.size(),
                s->description.c_str());
    std::string axes;
    for (const runtime::SweepPlan::AxisSummary& axis : plan.axis_summaries())
      axes += (axes.empty() ? "" : "; ") + axis_display(axis);
    if (!axes.empty()) std::printf("%24s axes: %s\n", "", axes.c_str());
  }
  return 0;
}

int cmd_run(const tools::RunArgs& args) {
  if (!args.listen.empty()) {
    std::fprintf(stderr, "--listen belongs to sweep-master, not run\n");
    return 2;
  }
  const std::optional<runtime::Scenario> scenario =
      tools::resolve_scenario(args.spec);
  if (!scenario.has_value()) return 1;
  const runtime::RunOptions options = tools::pinned_options(*scenario, args);

  std::ofstream file;
  std::ostream* ndjson = nullptr;
  if (!tools::open_ndjson(args.out, file, ndjson)) return 1;

  runtime::ResultSink sink(scenario->name, ndjson);
  runtime::RunStats stats;
  try {
    if (args.workers > 0) {
      dist::MasterTuning tuning;
      tuning.shard_size = args.shard_size;
      tuning.shard_timeout_s = args.shard_timeout_s;
      dist::LocalSpawnOptions spawn;
      spawn.workers = args.workers;
      spawn.kill_worker0_after_records = args.test_kill_worker_after;
      stats = dist::run_distributed_local(*scenario, options, tuning, spawn,
                                          sink);
    } else {
      stats = runtime::run_scenario(*scenario, options, sink);
    }
  } catch (const std::exception& e) {
    // The engine funnels worker exceptions back to this thread; report
    // them as an error instead of letting main() terminate.
    std::fprintf(stderr, "run failed: %s\n", e.what());
    return 1;
  }

  tools::print_run_tail(*scenario, sink, stats, args.quiet,
                        ndjson == &std::cout,
                        args.workers > 0 ? "worker" : "thread");
  return 0;
}

int cmd_describe(int argc, char** argv) {
  tools::SpecArgs args;
  for (int i = 0; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value =
        flag.starts_with("--") && i + 1 < argc ? argv[++i] : nullptr;
    if (tools::parse_spec_arg(args, flag, value) != 0) return 2;
  }
  if (args.scenario.empty() == args.spec_file.empty()) return 2;

  const std::optional<runtime::Scenario> scenario =
      tools::resolve_scenario(args);
  if (!scenario.has_value()) return 1;
  if (scenario->spec == nullptr) {
    std::fprintf(stderr, "scenario '%s' is hand-written (no spec)\n",
                 scenario->name.c_str());
    return 1;
  }
  std::fputs(runtime::serialize_spec(*scenario->spec).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  runtime::register_builtin_scenarios();

  const std::string command = argv[1];
  if (command == "list") return cmd_list();
  if (command == "kernels") return cmd_kernels();
  if (command == "describe") {
    const int rc = cmd_describe(argc - 2, argv + 2);
    return rc == 2 ? usage(argv[0]) : rc;
  }
  if (command == "run") {
    tools::RunArgs args;
    if (!tools::parse_run_args(argc - 2, argv + 2, args)) return usage(argv[0]);
    const int rc = cmd_run(args);
    return rc == 2 ? usage(argv[0]) : rc;
  }
  if (command == "serve") {
    const int rc = tools::cmd_serve(argc - 2, argv + 2);
    return rc == 2 ? usage(argv[0]) : rc;
  }
  if (command == "client") {
    const int rc = tools::cmd_client(argc - 2, argv + 2);
    return rc == 2 ? usage(argv[0]) : rc;
  }
  if (command == "sweep-master") {
    const int rc = tools::cmd_sweep_master(argc - 2, argv + 2);
    return rc == 2 ? usage(argv[0]) : rc;
  }
  if (command == "sweep-worker") {
    const int rc = tools::cmd_sweep_worker(argc - 2, argv + 2);
    return rc == 2 ? usage(argv[0]) : rc;
  }
  return usage(argv[0]);
}
