#pragma once
// Shared scenario-selection and run-flag parsing for the thinair CLI:
// `run` and `sweep-master` accept the same surface (NAME | --spec FILE,
// --set overrides, --seed/--threads/--limit/--out/...), so the argument
// grammar and the spec-resolution pipeline live here once. Split out of
// thinair_cli.cpp when the distributed commands landed.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "runtime/engine.h"
#include "runtime/result_sink.h"
#include "runtime/scenario.h"

namespace thinair::tools {

/// How a run/describe names its scenario: a registered name, a spec
/// file, or either plus --set overrides.
struct SpecArgs {
  std::string scenario;   // registered name ("" with --spec)
  std::string spec_file;  // --spec FILE
  std::vector<std::pair<std::string, std::string>> overrides;
};

/// Resolve the scenario a SpecArgs names, compiling specs and applying
/// overrides. Prints the failure to stderr and returns nullopt on error.
std::optional<runtime::Scenario> resolve_scenario(const SpecArgs& args);

/// Shared by run/describe/sweep-master: scenario NAME / --spec / --set.
/// Returns -1 when `flag` is not a spec-selection argument, 0 on
/// success, 1 on error (already reported).
int parse_spec_arg(SpecArgs& args, const std::string& flag,
                   const char* value);

struct RunArgs {
  SpecArgs spec;
  runtime::RunOptions options;
  std::string out;     // empty = no NDJSON, "-" = stdout
  bool quiet = false;  // suppress the summary table
  // Whether the flag was given explicitly: a spec's [run] section pins
  // seed/threads only when the corresponding flag is absent (flags win).
  bool seed_given = false;
  bool threads_given = false;

  // -- distributed-run surface --
  std::size_t workers = 0;      // --workers N; 0 = single-process engine
  std::uint64_t shard_size = 0;  // --shard-size; 0 = auto
  double shard_timeout_s = 300.0;  // --shard-timeout SECONDS; 0 = off
  std::string listen;           // --listen HOST:PORT (sweep-master only)
  /// Hidden test hook: worker 0 exits mid-shard after K records, so the
  /// smoke tests exercise reassignment deterministically.
  std::size_t test_kill_worker_after = 0;
};

/// Parse run-style flags into `args`. Returns false (after reporting to
/// stderr) on any malformed flag, or when the scenario selection is not
/// exactly one of NAME / --spec.
bool parse_run_args(int argc, char** argv, RunArgs& args);

/// Spec-level execution pinning ([run] seed/threads): the spec decides
/// unless the flag was given explicitly.
runtime::RunOptions pinned_options(const runtime::Scenario& scenario,
                                   const RunArgs& args);

/// Open --out ("-" = stdout, "" = none) into `file`, returning the
/// stream to hand the sink (nullptr = aggregate only). Reports and
/// returns false on open failure.
bool open_ndjson(const std::string& out, std::ofstream& file,
                 std::ostream*& ndjson);

/// The post-run tail every run-like command prints: summary table
/// (unless quiet or NDJSON went to stdout), truncation warning, and the
/// timing line with `unit` ("thread" for the engine, "worker process"
/// for distributed runs).
void print_run_tail(const runtime::Scenario& scenario,
                    const runtime::ResultSink& sink,
                    const runtime::RunStats& stats, bool quiet,
                    bool ndjson_to_stdout, const char* unit);

}  // namespace thinair::tools
