#!/usr/bin/env python3
"""Compare a fresh BENCH_gf.json against the checked-in snapshot.

Usage: check_bench_gf.py BASELINE FRESH

Prints a per-kernel delta table so the perf trajectory is visible in
the CI log of every PR. Absolute GB/s moves with the runner hardware,
so throughput deltas are informational; what *fails* the check is
structural drift (a kernel or field disappearing from the output, a
malformed file) and an implausible collapse of the headline speedup —
the dispatched SIMD kernel dropping to scalar-class throughput, which
no runner variance explains.
"""

import json
import sys

# The SIMD dispatch is the whole point of the kernel layer; even the
# slowest runner shows the best kernel well over 2x scalar at 1 KiB
# (container reference: ~38x). Below this, dispatch is broken.
MIN_BEST_VS_SCALAR = 2.0


def kernel_map(entries):
    return {e["name"]: e["gb_per_s"] for e in entries}


def fail(msg):
    print(f"check_bench_gf: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    try:
        with open(sys.argv[1]) as f:
            base = json.load(f)
        with open(sys.argv[2]) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load inputs: {e}")

    for key in ("bench", "kernels", "mad_multi", "dot_multi",
                "speedup_1k_best_vs_scalar", "fused_encode", "fused_gather"):
        if key not in fresh:
            fail(f"fresh output lost the '{key}' field")
    if fresh["bench"] != "micro_gf":
        fail(f"unexpected bench '{fresh['bench']}'")

    for section in ("kernels", "mad_multi", "dot_multi"):
        b, f = kernel_map(base[section]), kernel_map(fresh[section])
        missing = sorted(set(b) - set(f))
        if missing:
            fail(f"{section}: kernels missing from fresh run: {missing} "
                 "(registered-kernel regression)")
        print(f"[{section}]")
        for name in f:
            for size, val in f[name].items():
                ref = b.get(name, {}).get(size)
                delta = "" if ref in (None, 0) else \
                    f"  {100.0 * (val - ref) / ref:+6.1f}% vs snapshot"
                print(f"  {name:>8} {size:>8}: {val:8.3f} GB/s{delta}")

    speedup = fresh["speedup_1k_best_vs_scalar"]
    print(f"[headline] best-vs-scalar @1KiB: {speedup:.2f}x "
          f"(snapshot {base['speedup_1k_best_vs_scalar']:.2f}x)")
    if speedup < MIN_BEST_VS_SCALAR:
        fail(f"best kernel only {speedup:.2f}x scalar at 1 KiB "
             f"(< {MIN_BEST_VS_SCALAR}x): SIMD dispatch regressed")
    print("check_bench_gf: OK")


if __name__ == "__main__":
    main()
