#!/usr/bin/env python3
"""Compare a fresh BENCH_dist.json against the checked-in snapshot.

Usage: check_bench_dist.py BASELINE FRESH

Prints per-worker-count deltas so the distributed sweep's throughput
trajectory is visible in every PR's CI log. micro_dist itself already
exits nonzero unless every fan-out's NDJSON was byte-identical to the
single-process run, so by the time this script sees a fresh file the
correctness gate has passed; what fails *here* is structural drift:

  - a missing field, a malformed file, or an empty worker sweep;
  - byte_identical anything but true (belt and braces — micro_dist
    refuses to write the file otherwise);
  - non-positive throughput, shard p50 > p99, or a worker count whose
    shard tally does not cover the plan (shards * implied size < cases
    would mean the master lost work without noticing).

Deliberately NO scaling assertion: the CI container runs on one core,
where 4 workers time-slice one CPU and fork/IPC overhead makes the
fan-out *slower* than 1 worker. The numbers are for reading, not
gating; docs/distributed.md explains what to expect on real hardware.
"""

import argparse
import json
import sys

REQUIRED_RUN_KEYS = ("workers", "wall_s", "cases_per_s", "shards",
                     "shard_p50_ms", "shard_p99_ms")


def fail(msg):
    print(f"check_bench_dist: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def per_workers(doc):
    return {r["workers"]: r["cases_per_s"] for r in doc["runs"]}


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    opts = parser.parse_args()

    try:
        with open(opts.baseline) as f:
            base = json.load(f)
        with open(opts.fresh) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load inputs: {e}")

    for key in ("bench", "cases", "byte_identical", "runs"):
        if key not in fresh:
            fail(f"fresh output lost the '{key}' field")
    if fresh["bench"] != "micro_dist":
        fail(f"unexpected bench '{fresh['bench']}'")
    if fresh["byte_identical"] is not True:
        fail("byte_identical is not true: the fan-out changed output bytes")
    if not fresh["runs"]:
        fail("empty worker sweep")
    if fresh["cases"] <= 0:
        fail("non-positive case count")

    for run in fresh["runs"]:
        for key in REQUIRED_RUN_KEYS:
            if key not in run:
                fail(f"run entry lost the '{key}' field")
        w = run["workers"]
        if run["cases_per_s"] <= 0:
            fail(f"non-positive cases/s at {w} worker(s)")
        if run["shards"] <= 0:
            fail(f"no completed shards at {w} worker(s)")
        if run["shard_p50_ms"] > run["shard_p99_ms"]:
            fail(f"shard p50 > p99 at {w} worker(s): percentiles malformed")

    b, f = per_workers(base), per_workers(fresh)
    print(f"[dist cases/s over {fresh['cases']} cases]")
    for workers in sorted(f):
        ref = b.get(workers)
        delta = "" if ref in (None, 0) else \
            f"  {100.0 * (f[workers] - ref) / ref:+6.1f}% vs snapshot"
        print(f"  workers {workers:>2}: {f[workers]:12.0f} cases/s{delta}")
    for run in fresh["runs"]:
        print(f"[shards] workers {run['workers']}: {run['shards']} shards, "
              f"round-trip p50 {run['shard_p50_ms']:.2f} ms / "
              f"p99 {run['shard_p99_ms']:.2f} ms")
    print("check_bench_dist: OK (byte-identical at every worker count)")


if __name__ == "__main__":
    main()
