#include "run_common.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "gf/kernels.h"
#include "runtime/spec_parse.h"
#include "util/parse.h"

namespace thinair::tools {

namespace {

/// Strict decimal parse (util::parse_u64) — rejects empty strings,
/// whitespace, '+'/'-' signs, trailing garbage and 64-bit overflow, so
/// `--seed banana` and `--threads -1` fail loudly instead of silently
/// running seed 0 or requesting 2^64 - 1 threads.
bool parse_u64(const char* text, std::uint64_t& out) {
  return text != nullptr && util::parse_u64(text, out);
}

/// Strict non-negative double for --shard-timeout.
bool parse_seconds(const char* text, double& out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == nullptr || *end != '\0' || !(v >= 0.0)) return false;
  out = v;
  return true;
}

}  // namespace

std::optional<runtime::Scenario> resolve_scenario(const SpecArgs& args) {
  runtime::ScenarioSpec spec;
  if (!args.spec_file.empty()) {
    std::ifstream file(args.spec_file);
    if (!file) {
      std::fprintf(stderr, "cannot read spec file %s\n",
                   args.spec_file.c_str());
      return std::nullopt;
    }
    std::ostringstream text;
    text << file.rdbuf();
    try {
      spec = runtime::parse_spec(text.str());
    } catch (const runtime::SpecError& e) {
      std::fprintf(stderr, "%s: %s\n", args.spec_file.c_str(), e.what());
      return std::nullopt;
    }
  } else {
    const runtime::Scenario* registered =
        runtime::ScenarioRegistry::instance().find(args.scenario);
    if (registered == nullptr) {
      std::fprintf(stderr, "unknown scenario '%s' (see `thinair list`)\n",
                   args.scenario.c_str());
      return std::nullopt;
    }
    if (args.overrides.empty()) return *registered;
    if (registered->spec == nullptr) {
      std::fprintf(stderr,
                   "scenario '%s' is hand-written (no spec); --set needs a "
                   "spec-defined scenario\n",
                   args.scenario.c_str());
      return std::nullopt;
    }
    spec = *registered->spec;
  }

  for (const auto& [key, value] : args.overrides) {
    try {
      runtime::apply_override(spec, key, value);
    } catch (const runtime::SpecError& e) {
      std::fprintf(stderr, "--set %s=%s: %s\n", key.c_str(), value.c_str(),
                   e.what());
      return std::nullopt;
    }
  }
  try {
    return runtime::compile(spec);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "invalid spec: %s\n", e.what());
    return std::nullopt;
  }
}

int parse_spec_arg(SpecArgs& args, const std::string& flag,
                   const char* value) {
  if (flag == "--spec") {
    if (value == nullptr) return 1;
    args.spec_file = value;
    return 0;
  }
  if (flag == "--set") {
    if (value == nullptr) return 1;
    const std::string assignment = value;
    const std::size_t eq = assignment.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "--set %s: want key=value\n", value);
      return 1;
    }
    args.overrides.emplace_back(assignment.substr(0, eq),
                                assignment.substr(eq + 1));
    return 0;
  }
  if (!flag.starts_with("--")) {
    if (!args.scenario.empty()) {
      std::fprintf(stderr, "two scenario names: %s and %s\n",
                   args.scenario.c_str(), flag.c_str());
      return 1;
    }
    args.scenario = flag;
    return 0;
  }
  return -1;
}

bool parse_run_args(int argc, char** argv, RunArgs& args) {
  for (int i = 0; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const auto bad_number = [&flag](const char* v) {
      std::fprintf(stderr, "%s: not a number: %s\n", flag.c_str(),
                   v == nullptr ? "(missing)" : v);
      return false;
    };
    if (flag == "--spec" || flag == "--set" || !flag.starts_with("--")) {
      const char* v = flag.starts_with("--") ? value() : nullptr;
      if (parse_spec_arg(args.spec, flag, v) != 0) return false;
    } else if (flag == "--quiet") {
      args.quiet = true;
    } else if (flag == "--threads") {
      std::uint64_t n = 0;
      const char* v = value();
      if (v == nullptr ||
          !util::parse_u64_in(v, 0, runtime::kMaxRunThreads, n)) {
        std::fprintf(stderr,
                     "--threads %s: want an integer in [0, %zu] (0 = auto)\n",
                     v == nullptr ? "(missing)" : v, runtime::kMaxRunThreads);
        return false;
      }
      args.options.threads = n;
      args.threads_given = true;
    } else if (flag == "--seed") {
      const char* v = value();
      if (!parse_u64(v, args.options.master_seed)) return bad_number(v);
      args.seed_given = true;
    } else if (flag == "--limit") {
      std::uint64_t n = 0;
      const char* v = value();
      if (!parse_u64(v, n)) return bad_number(v);
      args.options.limit = n;
    } else if (flag == "--out") {
      const char* v = value();
      if (v == nullptr) return false;
      args.out = v;
    } else if (flag == "--kernel") {
      const char* v = value();
      if (v == nullptr || !gf::set_active_kernel(v)) {
        std::fprintf(stderr,
                     "--kernel %s: unknown or unsupported on this CPU "
                     "(see `thinair kernels`)\n",
                     v == nullptr ? "(missing)" : v);
        return false;
      }
    } else if (flag == "--workers") {
      std::uint64_t n = 0;
      const char* v = value();
      // Same ceiling as threads: more local processes than that is a typo.
      if (v == nullptr ||
          !util::parse_u64_in(v, 0, runtime::kMaxRunThreads, n)) {
        std::fprintf(stderr,
                     "--workers %s: want an integer in [0, %zu] "
                     "(0 = in-process engine)\n",
                     v == nullptr ? "(missing)" : v, runtime::kMaxRunThreads);
        return false;
      }
      args.workers = n;
    } else if (flag == "--shard-size") {
      std::uint64_t n = 0;
      const char* v = value();
      if (!parse_u64(v, n)) return bad_number(v);
      args.shard_size = n;
    } else if (flag == "--shard-timeout") {
      const char* v = value();
      if (!parse_seconds(v, args.shard_timeout_s)) return bad_number(v);
    } else if (flag == "--listen") {
      const char* v = value();
      if (v == nullptr) return false;
      args.listen = v;
    } else if (flag == "--test-kill-worker-after") {
      std::uint64_t n = 0;
      const char* v = value();
      if (!parse_u64(v, n)) return bad_number(v);
      args.test_kill_worker_after = n;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return args.spec.scenario.empty() != args.spec.spec_file.empty();
}

runtime::RunOptions pinned_options(const runtime::Scenario& scenario,
                                   const RunArgs& args) {
  runtime::RunOptions options = args.options;
  if (scenario.spec != nullptr) {
    const runtime::RunSpec& pinned = scenario.spec->run;
    if (!args.seed_given && pinned.seed.has_value())
      options.master_seed = *pinned.seed;
    if (!args.threads_given && pinned.threads.has_value())
      options.threads = *pinned.threads;
  }
  return options;
}

bool open_ndjson(const std::string& out, std::ofstream& file,
                 std::ostream*& ndjson) {
  ndjson = nullptr;
  if (out == "-") {
    ndjson = &std::cout;
  } else if (!out.empty()) {
    file.open(out, std::ios::trunc);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", out.c_str());
      return false;
    }
    ndjson = &file;
  }
  return true;
}

void print_run_tail(const runtime::Scenario& scenario,
                    const runtime::ResultSink& sink,
                    const runtime::RunStats& stats, bool quiet,
                    bool ndjson_to_stdout, const char* unit) {
  if (!quiet && !ndjson_to_stdout) {
    std::printf("%s — %s\n\n", scenario.name.c_str(),
                scenario.description.c_str());
    sink.print_summary(std::cout);
  }
  if (stats.truncated())
    std::fprintf(stderr,
                 "warning: --limit truncated %s: ran %zu of %zu cases; "
                 "group summaries are partial\n",
                 scenario.name.c_str(), stats.cases, stats.plan_cases);
  std::fprintf(stderr, "%zu cases on %zu %s(s) in %.2fs (%.1f cases/s)\n",
               stats.cases, stats.threads, unit, stats.wall_s,
               stats.cases_per_s());
}

}  // namespace thinair::tools
