#pragma once
// The daemon-facing thinair subcommands:
//
//   thinair serve  — run thinaird (the UDP session daemon) until SIGINT
//   thinair client — join a session as one terminal and print the key
//
// Split out of thinair_cli.cpp so the scenario runtime and the network
// face stay independently readable. Both return a process exit code.

namespace thinair::tools {

int cmd_serve(int argc, char** argv);
int cmd_client(int argc, char** argv);

/// Append the serve/client usage lines to the main usage text.
void netd_usage(const char* argv0);

}  // namespace thinair::tools
