#!/usr/bin/env python3
"""thinair_lint: project-invariant linter for the thinair codebase.

Compilers check the language; this checks the *project*. Each rule here
encodes an invariant that the determinism contract (byte-identical NDJSON
at any thread count / kernel / build) or the daemon's robustness argument
depends on, but that no general-purpose tool knows to look for:

  unordered-iteration   Iteration order of std::unordered_{map,set} is
                        implementation-defined, so iterating one in a
                        relay/emission/accounting path silently breaks
                        run-to-run determinism. Ordered containers
                        (std::map / sorted vectors) only.
  rng-discipline        All randomness flows from the seeded deterministic
                        generator in src/channel/rng.h. std::rand,
                        std::random_device and time-seeding reintroduce
                        ambient entropy and are banned outside that file.
  ndjson-float-format   The NDJSON emitter must format numbers with
                        std::to_chars: locale-sensitive iostream/to_string
                        formatting can change bytes under a different
                        locale, breaking the golden-SHA gate.
  raw-alloc-hot-path    Payload memory in the per-round hot paths comes
                        from PayloadArena bumps; raw new/malloc there
                        defeats the arena and fragments the round loop.
  netd-wire-decode      Daemon and distributed-sweep code consume wire
                        bytes only through a total decoder (netd/wire.h's
                        decode(), dist/frame.h's decode_frame) plus the
                        socket wrappers (netd/udp, dist/stream). Ad-hoc
                        byte picking or reinterpret_cast framing bypasses
                        the validated parse that the anti-spoofing and
                        fault-tolerance arguments rest on.

Usage:
  thinair_lint.py --compile-commands build/compile_commands.json
  thinair_lint.py [FILE...]               # lint explicit files
  thinair_lint.py --self-test tests/lint_fixtures

Driven off compile_commands.json the linter checks every translation
unit CMake builds, plus all headers under src/. Findings print as
"file:line: [rule] message" and make the exit status 1.

Suppression: append "// thinair-lint: allow(<rule>)" to the offending
line. Use sparingly and justify in an adjacent comment, exactly like a
NOLINT. The fixture suite (tests/lint_fixtures/) proves via --self-test
that every rule fires on known-bad code and stays quiet on clean code.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

# --------------------------------------------------------------------------
# Source preparation


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving layout.

    Every stripped character becomes a space so byte offsets and line
    numbers in the result match the original file. A crude scanner is
    enough: the codebase has no raw string literals or trigraphs.
    """
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            i += 1
        else:
            i += 1
    return "".join(out)


_ALLOW_RE = re.compile(r"thinair-lint:\s*allow\(([a-z0-9-]+)\)")


def allowed_rules_by_line(text: str) -> dict[int, set[str]]:
    """Per-line suppressions, read from the raw text (they live in comments)."""
    allows: dict[int, set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        for m in _ALLOW_RE.finditer(line):
            allows.setdefault(lineno, set()).add(m.group(1))
    return allows


def find_unordered_names(code: str) -> set[str]:
    """Names of variables/members declared as std::unordered_{map,set}.

    Balances angle brackets from the template-argument opener so nested
    templates and multi-argument maps resolve to the right identifier.
    """
    names: set[str] = set()
    for m in re.finditer(r"\bunordered_(?:map|set)\s*<", code):
        i = m.end()  # just past '<'
        depth = 1
        while i < len(code) and depth > 0:
            if code[i] == "<":
                depth += 1
            elif code[i] == ">":
                depth -= 1
            i += 1
        tail = code[i:]
        dm = re.match(r"\s*&?\s*([A-Za-z_]\w*)", tail)
        if dm and dm.group(1) not in {"const", "operator"}:
            names.add(dm.group(1))
    return names


# --------------------------------------------------------------------------
# Rules

Finding = tuple[int, str]  # (line, message)


def rule_unordered_iteration(code: str) -> list[Finding]:
    findings: list[Finding] = []
    names = find_unordered_names(code)
    if not names:
        return findings
    name_alt = "|".join(re.escape(x) for x in sorted(names))
    range_for = re.compile(
        r"for\s*\([^;()]*:\s*(?:this->)?(" + name_alt + r")\b"
    )
    iter_for = re.compile(
        r"for\s*\(.*\b(" + name_alt + r")\s*\.\s*c?begin\s*\("
    )
    for lineno, line in enumerate(code.splitlines(), start=1):
        m = range_for.search(line) or iter_for.search(line)
        if m:
            findings.append(
                (
                    lineno,
                    f"iterating unordered container '{m.group(1)}': order is "
                    "implementation-defined and breaks emission determinism; "
                    "use std::map or iterate a sorted key list",
                )
            )
    return findings


_RNG_RE = re.compile(
    r"\bstd::rand\b|\bstd::srand\b|(?<![\w:])srand\s*\(|(?<![\w:])rand\s*\(\s*\)"
    r"|\brandom_device\b|\bmt19937(?:_64)?\b[^;]*\btime\s*\("
)


def rule_rng_discipline(code: str) -> list[Finding]:
    findings: list[Finding] = []
    for lineno, line in enumerate(code.splitlines(), start=1):
        m = _RNG_RE.search(line)
        if m:
            findings.append(
                (
                    lineno,
                    f"'{m.group(0).strip()}' introduces ambient entropy; all "
                    "randomness must flow from the seeded generator in "
                    "src/channel/rng.h",
                )
            )
    return findings


_FLOAT_FMT_RE = re.compile(
    r"\bstd::to_string\b|\bostringstream\b|\bstringstream\b"
    r"|\bsetprecision\b|\bsnprintf\b|(?<![\w:])sprintf\b|\bstd::format\b"
)


def rule_ndjson_float_format(code: str) -> list[Finding]:
    findings: list[Finding] = []
    for lineno, line in enumerate(code.splitlines(), start=1):
        m = _FLOAT_FMT_RE.search(line)
        if m:
            findings.append(
                (
                    lineno,
                    f"'{m.group(0)}' in the NDJSON emitter: locale-sensitive "
                    "formatting can change output bytes; format numbers with "
                    "std::to_chars (see append_double/append_u64)",
                )
            )
    return findings


_RAW_ALLOC_RE = re.compile(
    r"(?<![\w:])new\b(?!\s*\()"  # 'new T' but not placement 'new (ptr) T'
    r"|(?<![\w:])(?:std\s*::\s*)?(?:malloc|calloc|realloc)\s*\("
)


def rule_raw_alloc_hot_path(code: str) -> list[Finding]:
    findings: list[Finding] = []
    for lineno, line in enumerate(code.splitlines(), start=1):
        m = _RAW_ALLOC_RE.search(line)
        if m:
            findings.append(
                (
                    lineno,
                    f"raw allocation '{m.group(0).strip()}' in an arena-backed "
                    "hot path; carve payload memory from PayloadArena (or use "
                    "a container owned outside the round loop)",
                )
            )
    return findings


_WIRE_CAST_RE = re.compile(r"\breinterpret_cast\b")
# Indexing/offset reads into the raw datagram span. Raw receive buffers in
# netd are consistently named 'datagram', 'bytes' or 'buf'; the only code
# allowed to pick bytes out of them is wire.cpp's decode().
_WIRE_INDEX_RE = re.compile(r"\b(datagram|bytes|buf)\s*\[")


def rule_netd_wire_decode(code: str) -> list[Finding]:
    findings: list[Finding] = []
    for lineno, line in enumerate(code.splitlines(), start=1):
        m = _WIRE_CAST_RE.search(line)
        if m:
            findings.append(
                (
                    lineno,
                    "reinterpret_cast on daemon data: datagrams are consumed "
                    "only through wire::decode()'s validated total parse",
                )
            )
            continue
        m = _WIRE_INDEX_RE.search(line)
        if m:
            findings.append(
                (
                    lineno,
                    f"raw byte access '{m.group(0)}...]' on a datagram buffer: "
                    "parse through wire::decode() so framing stays total and "
                    "spoof-resistant",
                )
            )
    return findings


class Rule:
    def __init__(self, name, check, scope, exclude=()):
        self.name = name
        self.check = check
        self.scope = scope  # regexes over repo-relative posix paths
        self.exclude = exclude

    def applies_to(self, relpath: str) -> bool:
        if any(re.search(p, relpath) for p in self.exclude):
            return False
        return any(re.search(p, relpath) for p in self.scope)


RULES = [
    Rule(
        "unordered-iteration",
        rule_unordered_iteration,
        # Relay / emission / accounting paths where iteration order reaches
        # observable output (NDJSON lines, datagram fan-out, key material).
        scope=[r"^src/netd/", r"^src/runtime/", r"^src/core/", r"^src/analysis/"],
    ),
    Rule(
        "rng-discipline",
        rule_rng_discipline,
        scope=[r"^src/", r"^tools/"],
        exclude=[r"^src/channel/rng\.(h|cpp)$"],
    ),
    Rule(
        "ndjson-float-format",
        rule_ndjson_float_format,
        # The NDJSON emitter proper. Everything else may use to_string for
        # error text; only these files produce golden-hashed output bytes.
        scope=[r"^src/runtime/result_sink\.(h|cpp)$"],
    ),
    Rule(
        "raw-alloc-hot-path",
        rule_raw_alloc_hot_path,
        # The pooled session-lifecycle paths (runtime/object_pool.h, the
        # hub's session records, the daemon's NodeSessions) are hot at the
        # churn target too: create/destroy recycles pooled objects and
        # arena blocks, so a raw new/malloc there defeats the pools the
        # same way it defeats the arena in the round loop.
        scope=[
            r"^src/gf/",
            r"^src/core/",
            r"^src/packet/",
            r"^src/runtime/object_pool\.h$",
            r"^src/netd/hub\.(h|cpp)$",
            r"^src/netd/node_session\.(h|cpp)$",
        ],
    ),
    Rule(
        "netd-wire-decode",
        rule_netd_wire_decode,
        # The distributed-sweep subsystem adopts the same discipline: IO
        # drivers and the master/worker cores handle decoded Frame
        # values, never raw stream indices.
        scope=[r"^src/netd/", r"^src/dist/"],
        # wire.cpp and dist/frame.cpp ARE the decoders; udp.{h,cpp} and
        # dist/stream.{h,cpp} wrap the socket syscalls whose sockaddr
        # API requires reinterpret_cast.
        exclude=[
            r"^src/netd/wire\.(h|cpp)$",
            r"^src/netd/udp\.(h|cpp)$",
            r"^src/dist/frame\.(h|cpp)$",
            r"^src/dist/stream\.(h|cpp)$",
        ],
    ),
]

RULES_BY_NAME = {r.name: r for r in RULES}


# --------------------------------------------------------------------------
# Driving


def lint_file(path: Path, relpath: str, only_rule: str | None = None):
    """Returns [(relpath, line, rule, message)] for one file."""
    try:
        raw = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        print(f"thinair_lint: cannot read {path}: {e}", file=sys.stderr)
        return []
    code = strip_comments_and_strings(raw)
    allows = allowed_rules_by_line(raw)
    results = []
    rules = [RULES_BY_NAME[only_rule]] if only_rule else RULES
    for rule in rules:
        if only_rule is None and not rule.applies_to(relpath):
            continue
        for lineno, message in rule.check(code):
            if rule.name in allows.get(lineno, set()):
                continue
            results.append((relpath, lineno, rule.name, message))
    return results


def gather_files(args, repo_root: Path) -> list[Path]:
    files: set[Path] = set()
    if args.compile_commands:
        db = json.loads(Path(args.compile_commands).read_text())
        for entry in db:
            p = Path(entry["directory"], entry["file"]).resolve()
            files.add(p)
    for f in args.files:
        files.add(Path(f).resolve())
    if not args.compile_commands and not args.files:
        print(
            "thinair_lint: pass --compile-commands, --self-test or files",
            file=sys.stderr,
        )
        sys.exit(2)
    if args.compile_commands:
        # compile_commands only lists translation units; headers carry the
        # same invariants (inline accessors, templates), so sweep them too.
        for pat in ("src/**/*.h", "tools/**/*.h"):
            files.update(p.resolve() for p in repo_root.glob(pat))
    in_scope = []
    for p in sorted(files):
        try:
            rel = p.relative_to(repo_root).as_posix()
        except ValueError:
            continue  # outside the repo (system headers etc.)
        if rel.startswith(("src/", "tools/")):
            in_scope.append(p)
    return in_scope


def run_self_test(fixtures_dir: Path) -> int:
    """Prove each rule fires on bad_* fixtures and stays quiet on clean_*.

    Fixture layout: <fixtures_dir>/<rule-name>/{bad_*.cpp,clean_*.cpp}.
    Path scoping is bypassed — each fixture is checked against exactly its
    directory's rule, so the fixtures test detection, not scoping.
    """
    failures = 0
    checked = 0
    for rule_dir in sorted(p for p in fixtures_dir.iterdir() if p.is_dir()):
        rule_name = rule_dir.name
        if rule_name not in RULES_BY_NAME:
            print(f"FAIL {rule_dir}: no rule named '{rule_name}'")
            failures += 1
            continue
        fixtures = sorted(rule_dir.glob("*.cpp"))
        if not any(f.name.startswith("bad_") for f in fixtures) or not any(
            f.name.startswith("clean_") for f in fixtures
        ):
            print(f"FAIL {rule_dir}: need at least one bad_*.cpp and one clean_*.cpp")
            failures += 1
            continue
        for fix in fixtures:
            checked += 1
            rel = fix.name
            found = lint_file(fix, rel, only_rule=rule_name)
            if fix.name.startswith("bad_"):
                if not found:
                    print(f"FAIL {rule_name}/{fix.name}: expected a finding, got none")
                    failures += 1
                else:
                    print(f"ok   {rule_name}/{fix.name}: fired {len(found)}x")
            elif fix.name.startswith("clean_"):
                if found:
                    print(f"FAIL {rule_name}/{fix.name}: expected clean, got:")
                    for _, line, rname, msg in found:
                        print(f"       {fix.name}:{line}: [{rname}] {msg}")
                    failures += 1
                else:
                    print(f"ok   {rule_name}/{fix.name}: quiet")
            else:
                print(f"FAIL {rule_dir}: unrecognised fixture name {fix.name}")
                failures += 1
    missing = set(RULES_BY_NAME) - {
        p.name for p in fixtures_dir.iterdir() if p.is_dir()
    }
    if missing:
        print(f"FAIL: rules without fixtures: {', '.join(sorted(missing))}")
        failures += 1
    print(
        f"self-test: {checked} fixtures, {len(RULES)} rules, "
        f"{failures} failure(s)"
    )
    return 1 if failures else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--compile-commands", help="path to compile_commands.json")
    ap.add_argument(
        "--self-test",
        metavar="FIXTURES_DIR",
        help="run the fixture suite instead of linting the project",
    )
    ap.add_argument(
        "--repo-root",
        default=str(Path(__file__).resolve().parent.parent),
        help="repository root for scope matching (default: tools/..)",
    )
    ap.add_argument("files", nargs="*", help="explicit files to lint")
    args = ap.parse_args()

    if args.self_test:
        return run_self_test(Path(args.self_test))

    repo_root = Path(args.repo_root).resolve()
    findings = []
    files = gather_files(args, repo_root)
    for path in files:
        rel = path.relative_to(repo_root).as_posix()
        findings.extend(lint_file(path, rel))
    for rel, line, rule, msg in findings:
        print(f"{rel}:{line}: [{rule}] {msg}")
    if findings:
        print(f"thinair_lint: {len(findings)} finding(s) in {len(files)} files")
        return 1
    print(f"thinair_lint: clean ({len(files)} files, {len(RULES)} rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
