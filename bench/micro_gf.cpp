// Micro-benchmarks for the finite-field substrate: the per-byte cost of
// packet combining (axpy), matrix products, rank computation and MDS
// encoding — the operations that dominate the protocol's CPU time on a
// real device.

#include <benchmark/benchmark.h>

#include "channel/rng.h"
#include "gf/gf256.h"
#include "gf/linear_space.h"
#include "gf/matrix.h"
#include "gf/mds.h"

namespace {

using namespace thinair;

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  channel::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = rng.next_byte();
  return out;
}

gf::Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  channel::Rng rng(seed);
  gf::Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j)
      m.set(i, j, gf::GF256(rng.next_byte()));
  return m;
}

void BM_Gf256Axpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_bytes(n, 1);
  auto y = random_bytes(n, 2);
  const gf::GF256 c(0x53);
  for (auto _ : state) {
    gf::axpy(c, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Gf256Axpy)->Arg(100)->Arg(1500)->Arg(65536);

void BM_Gf256Mul(benchmark::State& state) {
  const auto xs = random_bytes(4096, 3);
  std::size_t i = 0;
  for (auto _ : state) {
    const gf::GF256 a(xs[i & 4095]);
    const gf::GF256 b(xs[(i + 1) & 4095]);
    benchmark::DoNotOptimize(a * b);
    ++i;
  }
}
BENCHMARK(BM_Gf256Mul);

void BM_MatrixMul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const gf::Matrix a = random_matrix(n, n, 4);
  const gf::Matrix b = random_matrix(n, n, 5);
  for (auto _ : state) benchmark::DoNotOptimize(a.mul(b));
}
BENCHMARK(BM_MatrixMul)->Arg(16)->Arg(64)->Arg(128);

void BM_MatrixRank(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const gf::Matrix a = random_matrix(n, n, 6);
  for (auto _ : state) benchmark::DoNotOptimize(a.rank());
}
BENCHMARK(BM_MatrixRank)->Arg(32)->Arg(90)->Arg(180);

void BM_VandermondeBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(gf::mds::vandermonde(n / 2, n));
}
BENCHMARK(BM_VandermondeBuild)->Arg(32)->Arg(128)->Arg(255);

void BM_MdsEncodePacket(benchmark::State& state) {
  // Encoding one 100-byte y-packet from a 20-packet class.
  const gf::Matrix g = gf::mds::vandermonde(8, 20);
  std::vector<std::vector<std::uint8_t>> inputs;
  for (int i = 0; i < 20; ++i)
    inputs.push_back(random_bytes(100, 100 + static_cast<std::uint64_t>(i)));
  for (auto _ : state) {
    std::vector<std::uint8_t> out(100, 0);
    for (std::size_t j = 0; j < 20; ++j)
      gf::axpy(g.at(0, j), inputs[j].data(), out.data(), 100);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MdsEncodePacket);

void BM_LinearSpaceInsert(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const gf::Matrix rows = random_matrix(dim / 2, dim, 7);
  for (auto _ : state) {
    gf::LinearSpace space(dim);
    space.insert_rows(rows);
    benchmark::DoNotOptimize(space.rank());
  }
}
BENCHMARK(BM_LinearSpaceInsert)->Arg(90)->Arg(180);

}  // namespace

BENCHMARK_MAIN();
