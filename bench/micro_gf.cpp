// Micro-benchmarks for the finite-field substrate: the per-byte cost of
// packet combining (axpy), matrix products, rank computation and MDS
// encoding — the operations that dominate the protocol's CPU time on a
// real device.
//
// Besides the google-benchmark suite, the custom main() times axpy for
// every registered kernel (gf/kernels.h) at 64 B / 1 KiB / 8 KiB and
// writes BENCH_gf.json — the perf-trajectory artifact the CI and the
// ROADMAP track (speedup_1k = best kernel vs the scalar baseline).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "channel/rng.h"
#include "gf/encode.h"
#include "gf/gather.h"
#include "gf/gf256.h"
#include "gf/kernels.h"
#include "gf/linear_space.h"
#include "gf/matrix.h"
#include "gf/mds.h"

namespace {

using namespace thinair;

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  channel::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = rng.next_byte();
  return out;
}

gf::Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  channel::Rng rng(seed);
  gf::Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j)
      m.set(i, j, gf::GF256(rng.next_byte()));
  return m;
}

void BM_Gf256Axpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_bytes(n, 1);
  auto y = random_bytes(n, 2);
  const gf::GF256 c(0x53);
  for (auto _ : state) {
    gf::axpy(c, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Gf256Axpy)->Arg(100)->Arg(1500)->Arg(65536);

// Per-kernel axpy at the payload sizes the protocol actually moves:
// one paper payload rounds to 64 B, an MTU-ish 1 KiB, and an 8 KiB
// aggregate. Registered per registered kernel at runtime.
void BM_KernelAxpy(benchmark::State& state, const gf::Kernel* kernel,
                   std::size_t n) {
  const auto x = random_bytes(n, 1);
  auto y = random_bytes(n, 2);
  for (auto _ : state) {
    kernel->axpy(0x53, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

// Fused multi-row accumulate: k outputs per pass over the shared input.
// Bytes processed counts the k output rows (the same accounting as k
// repeated axpy calls, so the two GB/s figures are directly comparable).
void BM_KernelMadMulti(benchmark::State& state, const gf::Kernel* kernel,
                       std::size_t k, std::size_t n) {
  const auto x = random_bytes(n, 1);
  std::vector<std::vector<std::uint8_t>> rows;
  std::vector<std::uint8_t*> ys;
  std::vector<std::uint8_t> c;
  for (std::size_t r = 0; r < k; ++r) {
    rows.push_back(random_bytes(n, 2 + r));
    c.push_back(static_cast<std::uint8_t>(0x53 + r));
  }
  for (auto& row : rows) ys.push_back(row.data());
  for (auto _ : state) {
    kernel->mad_multi(c.data(), k, x.data(), ys.data(), n);
    benchmark::DoNotOptimize(ys.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * n));
}

// Shared operand set for every gather-direction measurement below: k
// scaled input rows against one accumulator row.
struct DotOperands {
  std::vector<std::vector<std::uint8_t>> rows;
  std::vector<const std::uint8_t*> xs;
  std::vector<std::uint8_t> c;
  std::vector<std::uint8_t> y;

  DotOperands(std::size_t k, std::size_t n) : y(random_bytes(n, 1)) {
    for (std::size_t r = 0; r < k; ++r) {
      rows.push_back(random_bytes(n, 2 + r));
      c.push_back(static_cast<std::uint8_t>(0x53 + r));
    }
    for (auto& row : rows) xs.push_back(row.data());
  }
};

// Fused gather: one output accumulated from k inputs per pass. Bytes
// processed counts the k scaled input rows, matching the accounting of k
// repeated axpy calls into the shared output.
void BM_KernelDotMulti(benchmark::State& state, const gf::Kernel* kernel,
                       std::size_t k, std::size_t n) {
  DotOperands op(k, n);
  for (auto _ : state) {
    kernel->dot_multi(op.c.data(), k, op.xs.data(), op.y.data(), n);
    benchmark::DoNotOptimize(op.y.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * n));
}

constexpr std::size_t kKernelPayloadSizes[] = {64, 1024, 8192};
constexpr std::size_t kFusedRowCounts[] = {4, 8};
constexpr std::size_t kFusedPayloadSizes[] = {1024, 8192};

void register_kernel_benchmarks() {
  for (const gf::Kernel* k : gf::all_kernels()) {
    for (const std::size_t n : kKernelPayloadSizes)
      benchmark::RegisterBenchmark(
          (std::string("BM_KernelAxpy/") + k->name + "/" + std::to_string(n))
              .c_str(),
          [k, n](benchmark::State& s) { BM_KernelAxpy(s, k, n); });
    for (const std::size_t rows : kFusedRowCounts)
      for (const std::size_t n : kFusedPayloadSizes) {
        benchmark::RegisterBenchmark(
            (std::string("BM_KernelMadMulti/") + k->name + "/k" +
             std::to_string(rows) + "/" + std::to_string(n))
                .c_str(),
            [k, rows, n](benchmark::State& s) {
              BM_KernelMadMulti(s, k, rows, n);
            });
        benchmark::RegisterBenchmark(
            (std::string("BM_KernelDotMulti/") + k->name + "/k" +
             std::to_string(rows) + "/" + std::to_string(n))
                .c_str(),
            [k, rows, n](benchmark::State& s) {
              BM_KernelDotMulti(s, k, rows, n);
            });
      }
  }
}

// ------------------------------------------------------ BENCH_gf.json
// Self-timed (steady_clock) so the artifact does not depend on the
// benchmark library's reporters: repeat axpy over a buffer until ~40 ms
// of wall time has elapsed, take GB/s from the total bytes moved.

double measure_axpy_gbps(const gf::Kernel& kernel, std::size_t n) {
  const auto x = random_bytes(n, 1);
  auto y = random_bytes(n, 2);
  const auto run = [&](std::size_t reps) {
    for (std::size_t i = 0; i < reps; ++i)
      kernel.axpy(0x53, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  };
  run(64);  // warm up tables and caches
  using clock = std::chrono::steady_clock;
  std::size_t reps = 256;
  double best_gbps = 0.0;
  for (int trial = 0; trial < 3; ++trial) {
    double elapsed = 0.0;
    std::size_t done = 0;
    while (elapsed < 0.04) {
      const auto t0 = clock::now();
      run(reps);
      elapsed +=
          std::chrono::duration<double>(clock::now() - t0).count();
      done += reps;
    }
    const double gbps =
        static_cast<double>(done) * static_cast<double>(n) / elapsed / 1e9;
    if (gbps > best_gbps) best_gbps = gbps;
  }
  return best_gbps;
}

// Fused multi-row encode (or, with fused == false, the k-repeated-axpy
// baseline it replaces) over k rows of n bytes; GB/s counts the k output
// rows so both figures are directly comparable.
double measure_mad_gbps(const gf::Kernel& kernel, std::size_t k,
                        std::size_t n, bool fused) {
  const auto x = random_bytes(n, 1);
  std::vector<std::vector<std::uint8_t>> rows;
  std::vector<std::uint8_t*> ys;
  std::vector<std::uint8_t> c;
  for (std::size_t r = 0; r < k; ++r) {
    rows.push_back(random_bytes(n, 2 + r));
    c.push_back(static_cast<std::uint8_t>(0x53 + r));
  }
  for (auto& row : rows) ys.push_back(row.data());
  const auto run = [&](std::size_t reps) {
    for (std::size_t i = 0; i < reps; ++i) {
      if (fused) {
        kernel.mad_multi(c.data(), k, x.data(), ys.data(), n);
      } else {
        for (std::size_t r = 0; r < k; ++r)
          kernel.axpy(c[r], x.data(), ys[r], n);
      }
    }
    benchmark::DoNotOptimize(ys.data());
  };
  run(64);
  using clock = std::chrono::steady_clock;
  const std::size_t reps = 256;
  double best_gbps = 0.0;
  for (int trial = 0; trial < 3; ++trial) {
    double elapsed = 0.0;
    std::size_t done = 0;
    while (elapsed < 0.04) {
      const auto t0 = clock::now();
      run(reps);
      elapsed += std::chrono::duration<double>(clock::now() - t0).count();
      done += reps;
    }
    const double gbps = static_cast<double>(done) *
                        static_cast<double>(k * n) / elapsed / 1e9;
    if (gbps > best_gbps) best_gbps = gbps;
  }
  return best_gbps;
}

// Fused gather of one output row from k inputs of n bytes; GB/s counts
// the k scaled inputs (the accounting of k repeated axpy calls, so the
// figure is directly comparable with the axpy table above).
double measure_dot_gbps(const gf::Kernel& kernel, std::size_t k,
                        std::size_t n) {
  DotOperands op(k, n);
  const auto run = [&](std::size_t reps) {
    for (std::size_t i = 0; i < reps; ++i)
      kernel.dot_multi(op.c.data(), k, op.xs.data(), op.y.data(), n);
    benchmark::DoNotOptimize(op.y.data());
  };
  run(64);
  using clock = std::chrono::steady_clock;
  const std::size_t reps = 256;
  double best_gbps = 0.0;
  for (int trial = 0; trial < 3; ++trial) {
    double elapsed = 0.0;
    std::size_t done = 0;
    while (elapsed < 0.04) {
      const auto t0 = clock::now();
      run(reps);
      elapsed += std::chrono::duration<double>(clock::now() - t0).count();
      done += reps;
    }
    const double gbps = static_cast<double>(done) *
                        static_cast<double>(k * n) / elapsed / 1e9;
    if (gbps > best_gbps) best_gbps = gbps;
  }
  return best_gbps;
}

// The rebased encode path end to end: k output rows from n_inputs
// payloads — gf::encode's row-block tiling (each input streamed once per
// block) against the pre-fusion formulation (one axpy pass over every
// input per output row). GB/s counts the k output rows. This is the
// ISSUE 3 acceptance comparison: the input set (128 KiB at the default
// shape) exceeds L1, which is exactly where re-streaming it k times
// hurts.
struct EncodePair {
  double fused_gbps = 0.0;
  double row_by_row_gbps = 0.0;
};

EncodePair measure_encode_pair(const gf::Kernel& kernel, std::size_t k,
                               std::size_t n_inputs, std::size_t payload) {
  channel::Rng rng(9);
  gf::Matrix m(k, n_inputs);
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < n_inputs; ++j) {
      const std::uint8_t c = rng.next_byte();
      m.set(i, j, gf::GF256(c == 0 ? std::uint8_t{1} : c));
    }
  std::vector<std::vector<std::uint8_t>> in_data;
  std::vector<std::span<const std::uint8_t>> ins;
  for (std::size_t j = 0; j < n_inputs; ++j) {
    in_data.push_back(random_bytes(payload, 10 + j));
    ins.push_back(in_data.back());
  }
  std::vector<std::vector<std::uint8_t>> out_data(
      k, std::vector<std::uint8_t>(payload, 0));
  std::vector<std::span<std::uint8_t>> outs(out_data.begin(),
                                            out_data.end());
  const auto run_fused = [&] { gf::encode(m, ins, outs, payload); };
  const auto run_rowwise = [&] {
    for (std::size_t i = 0; i < k; ++i)
      for (std::size_t j = 0; j < n_inputs; ++j)
        kernel.axpy(m.at(i, j).value(), ins[j].data(), outs[i].data(),
                    payload);
  };
  using clock = std::chrono::steady_clock;
  const auto window = [&](const auto& run) {
    double elapsed = 0.0;
    std::size_t done = 0;
    while (elapsed < 0.05) {
      const auto t0 = clock::now();
      for (int r = 0; r < 16; ++r) run();
      elapsed += std::chrono::duration<double>(clock::now() - t0).count();
      done += 16;
    }
    return static_cast<double>(done) * static_cast<double>(k * payload) /
           elapsed / 1e9;
  };
  run_fused();
  run_rowwise();
  // Alternate the two measurement windows so noisy-neighbor interference
  // (this is often a shared box) lands on both sides, not just one.
  EncodePair best;
  for (int trial = 0; trial < 5; ++trial) {
    best.fused_gbps = std::max(best.fused_gbps, window(run_fused));
    best.row_by_row_gbps = std::max(best.row_by_row_gbps, window(run_rowwise));
  }
  return best;
}

// The gather-side acceptance comparison: fused dot_multi against k
// repeated axpy calls into the shared output, same k and payload, both
// L1-resident on the dispatched kernel (gf::gather is a thin tiling
// wrapper over dot_multi, so this IS the decode path's inner loop; larger
// input sets only bury the fusion win under L2 stream bandwidth that
// both formulations pay identically). Windows alternate between the two
// sides so noisy-neighbor interference lands on both.
EncodePair measure_dot_pair(const gf::Kernel& kernel, std::size_t k,
                            std::size_t n) {
  DotOperands op(k, n);
  const auto run_fused = [&] {
    kernel.dot_multi(op.c.data(), k, op.xs.data(), op.y.data(), n);
    benchmark::DoNotOptimize(op.y.data());
  };
  const auto run_rowwise = [&] {
    for (std::size_t r = 0; r < k; ++r)
      kernel.axpy(op.c[r], op.xs[r], op.y.data(), n);
    benchmark::DoNotOptimize(op.y.data());
  };
  using clock = std::chrono::steady_clock;
  const auto window = [&](const auto& run) {
    double elapsed = 0.0;
    std::size_t done = 0;
    while (elapsed < 0.04) {
      const auto t0 = clock::now();
      for (int r = 0; r < 256; ++r) run();
      elapsed += std::chrono::duration<double>(clock::now() - t0).count();
      done += 256;
    }
    return static_cast<double>(done) * static_cast<double>(k * n) / elapsed /
           1e9;
  };
  run_fused();
  run_rowwise();
  EncodePair best;
  for (int trial = 0; trial < 5; ++trial) {
    best.fused_gbps = std::max(best.fused_gbps, window(run_fused));
    best.row_by_row_gbps = std::max(best.row_by_row_gbps, window(run_rowwise));
  }
  return best;
}

int write_bench_json(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  double scalar_1k = 0.0;
  double best_1k = 0.0;
  std::fprintf(f, "{\n  \"bench\": \"micro_gf\",\n  \"op\": \"axpy\",\n");
  std::fprintf(f, "  \"active_kernel\": \"%s\",\n  \"kernels\": [\n",
               gf::active_kernel().name);
  const auto kernels = gf::all_kernels();
  for (std::size_t ki = 0; ki < kernels.size(); ++ki) {
    const gf::Kernel& k = *kernels[ki];
    std::fprintf(f, "    {\"name\": \"%s\", \"gb_per_s\": {", k.name);
    for (std::size_t si = 0; si < std::size(kKernelPayloadSizes); ++si) {
      const std::size_t n = kKernelPayloadSizes[si];
      const double gbps = measure_axpy_gbps(k, n);
      if (n == 1024) {
        if (std::string_view(k.name) == "scalar") scalar_1k = gbps;
        if (gbps > best_1k) best_1k = gbps;
      }
      std::fprintf(f, "%s\"%zu\": %.3f", si == 0 ? "" : ", ", n, gbps);
      std::fprintf(stderr, "axpy %-8s %5zu B  %7.3f GB/s\n", k.name, n,
                   gbps);
    }
    std::fprintf(f, "}}%s\n", ki + 1 < kernels.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"mad_multi\": [\n");

  // Raw fused-accumulate throughput at k in {4, 8} for every kernel.
  for (std::size_t ki = 0; ki < kernels.size(); ++ki) {
    const gf::Kernel& k = *kernels[ki];
    std::fprintf(f, "    {\"name\": \"%s\", \"gb_per_s\": {", k.name);
    bool first = true;
    for (const std::size_t rows : kFusedRowCounts) {
      for (const std::size_t n : kFusedPayloadSizes) {
        const double fused = measure_mad_gbps(k, rows, n, true);
        std::fprintf(f, "%s\"k%zu/%zu\": %.3f", first ? "" : ", ", rows, n,
                     fused);
        first = false;
        std::fprintf(stderr, "mad_multi %-8s k=%zu %5zu B  %7.3f GB/s\n",
                     k.name, rows, n, fused);
      }
    }
    std::fprintf(f, "}}%s\n", ki + 1 < kernels.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"dot_multi\": [\n");

  // Raw fused-gather throughput at k in {4, 8} for every kernel.
  for (std::size_t ki = 0; ki < kernels.size(); ++ki) {
    const gf::Kernel& k = *kernels[ki];
    std::fprintf(f, "    {\"name\": \"%s\", \"gb_per_s\": {", k.name);
    bool first = true;
    for (const std::size_t rows : kFusedRowCounts) {
      for (const std::size_t n : kFusedPayloadSizes) {
        const double fused = measure_dot_gbps(k, rows, n);
        std::fprintf(f, "%s\"k%zu/%zu\": %.3f", first ? "" : ", ", rows, n,
                     fused);
        first = false;
        std::fprintf(stderr, "dot_multi %-8s k=%zu %5zu B  %7.3f GB/s\n",
                     k.name, rows, n, fused);
      }
    }
    std::fprintf(f, "}}%s\n", ki + 1 < kernels.size() ? "," : "");
  }

  // The acceptance comparison: the fused encode path (k = 8 output rows,
  // 1 KiB payloads, 128 inputs) against the pre-fusion row-by-row axpy
  // formulation, both on the dispatched (best) kernel.
  const gf::Kernel& best = gf::active_kernel();
  constexpr std::size_t kEncK = 8, kEncInputs = 128, kEncPayload = 1024;
  const EncodePair enc =
      measure_encode_pair(best, kEncK, kEncInputs, kEncPayload);
  const double enc_fused = enc.fused_gbps;
  const double enc_rowwise = enc.row_by_row_gbps;
  const double enc_speedup = enc_rowwise > 0.0 ? enc_fused / enc_rowwise : 0.0;

  // The gather-side acceptance comparison: fused dot_multi vs k repeated
  // axpy into the shared output at k = 8, 1 KiB, on the dispatched
  // kernel.
  const EncodePair gat = measure_dot_pair(best, kEncK, kEncPayload);
  const double gat_speedup =
      gat.row_by_row_gbps > 0.0 ? gat.fused_gbps / gat.row_by_row_gbps : 0.0;

  const double speedup = scalar_1k > 0.0 ? best_1k / scalar_1k : 0.0;
  std::fprintf(f, "  ],\n  \"speedup_1k_best_vs_scalar\": %.2f,\n",
               speedup);
  std::fprintf(f,
               "  \"fused_encode\": {\"kernel\": \"%s\", \"k\": %zu, "
               "\"inputs\": %zu, \"payload\": %zu, \"fused_gb_per_s\": "
               "%.3f, \"row_by_row_gb_per_s\": %.3f},\n",
               best.name, kEncK, kEncInputs, kEncPayload, enc_fused,
               enc_rowwise);
  std::fprintf(f, "  \"fused_encode_speedup_k8_1k\": %.2f,\n", enc_speedup);
  std::fprintf(f,
               "  \"fused_gather\": {\"kernel\": \"%s\", \"k\": %zu, "
               "\"payload\": %zu, \"fused_gb_per_s\": %.3f, "
               "\"repeated_axpy_gb_per_s\": %.3f},\n",
               best.name, kEncK, kEncPayload, gat.fused_gbps,
               gat.row_by_row_gbps);
  std::fprintf(f, "  \"fused_gather_speedup\": %.2f\n}\n", gat_speedup);
  std::fclose(f);
  std::fprintf(stderr, "1 KiB best-vs-scalar speedup: %.2fx\n", speedup);
  std::fprintf(stderr,
               "fused encode k=8, 1 KiB x 128 inputs vs row-by-row (%s): "
               "%.2fx\n",
               best.name, enc_speedup);
  std::fprintf(stderr,
               "fused gather dot_multi k=8, 1 KiB vs repeated axpy (%s): "
               "%.2fx -> %s\n",
               best.name, gat_speedup, path);
  return 0;
}

void BM_Gf256Mul(benchmark::State& state) {
  const auto xs = random_bytes(4096, 3);
  std::size_t i = 0;
  for (auto _ : state) {
    const gf::GF256 a(xs[i & 4095]);
    const gf::GF256 b(xs[(i + 1) & 4095]);
    benchmark::DoNotOptimize(a * b);
    ++i;
  }
}
BENCHMARK(BM_Gf256Mul);

void BM_MatrixMul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const gf::Matrix a = random_matrix(n, n, 4);
  const gf::Matrix b = random_matrix(n, n, 5);
  for (auto _ : state) benchmark::DoNotOptimize(a.mul(b));
}
BENCHMARK(BM_MatrixMul)->Arg(16)->Arg(64)->Arg(128);

void BM_MatrixRank(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const gf::Matrix a = random_matrix(n, n, 6);
  for (auto _ : state) benchmark::DoNotOptimize(a.rank());
}
BENCHMARK(BM_MatrixRank)->Arg(32)->Arg(90)->Arg(180);

void BM_VandermondeBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(gf::mds::vandermonde(n / 2, n));
}
BENCHMARK(BM_VandermondeBuild)->Arg(32)->Arg(128)->Arg(255);

void BM_MdsEncodePacket(benchmark::State& state) {
  // Encoding one 100-byte y-packet from a 20-packet class.
  const gf::Matrix g = gf::mds::vandermonde(8, 20);
  std::vector<std::vector<std::uint8_t>> inputs;
  for (int i = 0; i < 20; ++i)
    inputs.push_back(random_bytes(100, 100 + static_cast<std::uint64_t>(i)));
  for (auto _ : state) {
    std::vector<std::uint8_t> out(100, 0);
    for (std::size_t j = 0; j < 20; ++j)
      gf::axpy(g.at(0, j), inputs[j].data(), out.data(), 100);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MdsEncodePacket);

void BM_LinearSpaceInsert(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const gf::Matrix rows = random_matrix(dim / 2, dim, 7);
  for (auto _ : state) {
    gf::LinearSpace space(dim);
    space.insert_rows(rows);
    benchmark::DoNotOptimize(space.rank());
  }
}
BENCHMARK(BM_LinearSpaceInsert)->Arg(90)->Arg(180);

}  // namespace

// Custom main: the google-benchmark suite, then the BENCH_gf.json
// artifact (path overridable with the BENCH_GF_JSON env var).
int main(int argc, char** argv) {
  register_kernel_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const char* path = std::getenv("BENCH_GF_JSON");
  return write_bench_json(path != nullptr ? path : "BENCH_gf.json");
}
