// Ablation B: role rotation (Sec. 3.2, "avoiding the worst-case
// scenario"). With a fixed Alice, the group's secret rate is hostage to
// Alice's position relative to the interference corridors and to the
// weakest Alice-terminal channel; rotating the role averages positions and
// lets every terminal contribute rounds where its own channels are good.

#include <cstdio>
#include <iostream>

#include "testbed/sweep.h"
#include "util/table.h"

int main() {
  using namespace thinair;

  std::printf("Ablation: rotating vs fixed Alice (n = 6, geometry)\n\n");

  util::Table t({"alice", "rel(min)", "rel(avg)", "eff(min)", "eff(avg)"});
  for (bool rotate : {true, false}) {
    testbed::SweepConfig cfg;
    cfg.n_min = 6;
    cfg.n_max = 6;
    cfg.max_placements = 20;
    cfg.session.rotate_alice = rotate;
    cfg.session.rounds = 6;  // same number of rounds in both arms
    cfg.seed = 1234;

    const testbed::SweepResult sweep = run_sweep(cfg);
    const testbed::SweepRow& row = sweep.rows.front();
    t.add_row({rotate ? "rotating" : "fixed", util::fmt(row.rel_min(), 2),
               util::fmt(row.rel_avg(), 2), util::fmt(row.efficiency.min(), 4),
               util::fmt(row.efficiency.mean(), 4)});
  }
  t.print(std::cout);

  std::printf(
      "\nReading: the minimum efficiency across placements is the paper's\n"
      "worst case; rotation lifts it because no single badly-placed Alice\n"
      "determines every round.\n");
  return 0;
}
