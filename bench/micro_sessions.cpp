// micro_sessions — session lifecycle churn through the object pools.
//
// Cycles a full create → run-rounds → extract-key → destroy session
// lifecycle at least one million times, drawing every per-session object
// from runtime::ObjectPool / runtime::ArenaPool the way the engine's
// workers do. The bench is the proof that pooled reuse is (a) correct —
// the first cycles are replayed against freshly constructed sessions and
// must produce byte-identical secrets — and (b) allocation-free in steady
// state: VmRSS is sampled throughout and must not grow across the final
// half of the run. An early payload-spike phase inflates the arena so the
// release-time watermark trim has something to reclaim; the run fails
// unless trimmed bytes are observed.
//
// Writes BENCH_sessions.json (path overridable with the BENCH_SESSIONS_JSON
// env var) and exits nonzero on verify mismatch, RSS growth past the
// tolerance, or a cold pool (hit rate below 0.99).
//
//   usage: micro_sessions [--sessions K] [--packets N] [--payload B]
//                         [--rss-tol FRAC]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "channel/erasure.h"
#include "channel/rng.h"
#include "core/session.h"
#include "net/medium.h"
#include "runtime/object_pool.h"
#include "runtime/seed.h"

namespace {

using namespace thinair;

double monotonic_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Options {
  std::size_t sessions = 1'000'000;
  std::size_t packets = 8;     // N per round; tiny — the bench measures
                               // lifecycle overhead, not GF(2^8) math
  std::size_t payload = 16;    // steady-state payload bytes
  double rss_tol = 0.05;       // allowed RSS growth over the final half
};

// Resident set size in KiB, from /proc/self/status. ru_maxrss only ever
// rises, so the steady-state check samples the live value instead.
std::size_t rss_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kb = static_cast<std::size_t>(std::strtoull(line + 6, nullptr, 10));
      break;
    }
  }
  std::fclose(f);
  return kb;
}

core::SessionConfig cycle_config(const Options& opt, std::size_t i,
                                 packet::PayloadArena* arena) {
  core::SessionConfig cfg;
  cfg.x_packets_per_round = opt.packets;
  // The first cycles run fat payloads so the arena grows well past its
  // one-block minimum (64 KiB); the watermark trim must claw that back.
  cfg.payload_bytes = i < 16 ? 32768 : opt.payload;
  cfg.rounds = 1;
  // The default kGeometry estimator needs per-terminal cell positions the
  // bench has no geometry for; loo-fraction is the paper's Sec. 3.3
  // default strategy and runs on the reception table alone.
  cfg.estimator.kind = core::EstimatorKind::kLooFraction;
  cfg.arena = arena;
  return cfg;
}

int run_bench(const Options& opt) {
  const std::uint64_t base_seed = 2026;
  channel::IidErasure channel(0.2);

  runtime::ObjectPool<core::GroupSecretSession> sessions;
  runtime::ArenaPool arenas;

  const std::size_t verify_cycles = std::min<std::size_t>(opt.sessions, 256);
  std::size_t completed = 0;
  std::size_t with_secret = 0;
  std::size_t verified = 0;

  // RSS is sampled on a fixed cycle grid; the steady-state check compares
  // the midpoint sample with the final one, so leaks that accumulate per
  // cycle show up as growth over the back half no matter how slow.
  const std::size_t sample_every = std::max<std::size_t>(opt.sessions / 64, 1);
  std::vector<std::size_t> rss_samples;

  const double t0 = monotonic_s();
  for (std::size_t i = 0; i < opt.sessions; ++i) {
    const std::uint64_t seed = runtime::derive_seed(base_seed, i);

    net::SimMedium medium(channel, channel::Rng(seed));
    for (std::uint16_t node = 0; node < 2; ++node)
      medium.attach(packet::NodeId{node}, net::Role::kTerminal);
    medium.attach(packet::NodeId{2}, net::Role::kEavesdropper);

    const auto arena = arenas.acquire_scoped();
    const auto session =
        sessions.acquire_scoped(medium, cycle_config(opt, i, arena.get()));
    const core::SessionResult r = session->run();

    ++completed;
    if (!r.secret.empty()) ++with_secret;

    if (i < verify_cycles) {
      // Replay the cycle with a freshly constructed session on its own
      // medium (same seed) and a null arena: pooled reuse must not change
      // a single output byte.
      net::SimMedium fresh_medium(channel, channel::Rng(seed));
      for (std::uint16_t node = 0; node < 2; ++node)
        fresh_medium.attach(packet::NodeId{node}, net::Role::kTerminal);
      fresh_medium.attach(packet::NodeId{2}, net::Role::kEavesdropper);
      core::GroupSecretSession fresh(fresh_medium,
                                     cycle_config(opt, i, nullptr));
      const core::SessionResult want = fresh.run();
      if (r.secret != want.secret || r.duration_s != want.duration_s ||
          r.rounds.size() != want.rounds.size()) {
        std::fprintf(stderr,
                     "micro_sessions: cycle %zu: pooled result differs from "
                     "fresh construction\n",
                     i);
        return 1;
      }
      ++verified;
    }

    if (i % sample_every == 0) rss_samples.push_back(rss_kb());
  }
  const double wall_s = monotonic_s() - t0;
  rss_samples.push_back(rss_kb());

  const std::size_t rss_mid = rss_samples[rss_samples.size() / 2];
  const std::size_t rss_final = rss_samples.back();
  const double rss_growth =
      rss_mid > 0 ? (static_cast<double>(rss_final) -
                     static_cast<double>(rss_mid)) /
                        static_cast<double>(rss_mid)
                  : 0.0;

  const runtime::PoolCounters sc = sessions.stats().snapshot();
  const double rate = wall_s > 0.0 ? completed / wall_s : 0.0;

  const char* path = std::getenv("BENCH_SESSIONS_JSON");
  if (path == nullptr) path = "BENCH_sessions.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"micro_sessions\",\n"
               "  \"sessions\": %zu,\n"
               "  \"completed\": %zu,\n"
               "  \"with_nonzero_secret\": %zu,\n"
               "  \"verified_vs_fresh\": %zu,\n"
               "  \"x_packets_per_round\": %zu,\n"
               "  \"payload_bytes\": %zu,\n"
               "  \"sessions_per_s\": %.1f,\n"
               "  \"wall_s\": %.2f,\n"
               "  \"pool_acquired\": %llu,\n"
               "  \"pool_constructed\": %llu,\n"
               "  \"pool_hit_rate\": %.6f,\n"
               "  \"arena_trimmed_bytes\": %llu,\n"
               "  \"arena_capacity_bytes\": %zu,\n"
               "  \"rss_mid_kb\": %zu,\n"
               "  \"rss_final_kb\": %zu,\n"
               "  \"rss_growth_final_half_frac\": %.6f\n"
               "}\n",
               opt.sessions, completed, with_secret, verified, opt.packets,
               opt.payload, rate, wall_s,
               static_cast<unsigned long long>(sc.acquired),
               static_cast<unsigned long long>(sc.constructed),
               sc.hit_rate(),
               static_cast<unsigned long long>(arenas.trimmed_bytes()),
               arenas.capacity(), rss_mid, rss_final, rss_growth);
  std::fclose(f);

  std::fprintf(stderr,
               "micro_sessions: %zu cycles, %.0f sessions/s, %.2fs wall, "
               "hit rate %.4f, rss %zu -> %zu KiB (%+.2f%%)\n",
               completed, rate, wall_s, sc.hit_rate(), rss_mid, rss_final,
               rss_growth * 100.0);

  bool ok = true;
  if (verified != verify_cycles) ok = false;
  if (sc.hit_rate() < 0.99) {
    std::fprintf(stderr, "micro_sessions: FAILED: pool hit rate %.4f < 0.99\n",
                 sc.hit_rate());
    ok = false;
  }
  if (arenas.trimmed_bytes() == 0) {
    std::fprintf(stderr,
                 "micro_sessions: FAILED: watermark trim reclaimed nothing "
                 "(spike phase should have inflated the arena)\n");
    ok = false;
  }
  if (rss_growth > opt.rss_tol) {
    std::fprintf(stderr,
                 "micro_sessions: FAILED: RSS grew %.2f%% over the final "
                 "half (tolerance %.2f%%)\n",
                 rss_growth * 100.0, opt.rss_tol * 100.0);
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    ++i;
    if (flag == "--sessions" && value != nullptr) {
      opt.sessions = static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--packets" && value != nullptr) {
      opt.packets = static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--payload" && value != nullptr) {
      opt.payload = static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--rss-tol" && value != nullptr) {
      opt.rss_tol = std::strtod(value, nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: micro_sessions [--sessions K] [--packets N] "
                   "[--payload B] [--rss-tol FRAC]\n");
      return 2;
    }
  }
  if (opt.sessions == 0 || opt.packets == 0 || opt.payload == 0) return 2;
  return run_bench(opt);
}
