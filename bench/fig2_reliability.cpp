// Regenerates Figure 2: reliability of the protocol as a function of the
// number of terminals n = 3..8, on the simulated 14 m^2 / 3x3-cell testbed
// with rotating artificial interference.
//
// Per n we run one experiment per node placement (every way of putting n
// terminals and Eve into distinct cells; the paper does the same) and
// report the paper's four series:
//   minimum (diamonds), 95th percentile*, average (circles), and 50th
//   percentile* (squares) — *the paper's percentiles are "the minimum
//   reliability achieved during 95% / 50% of the experiments".
//
// Series are shown for the geometry estimator (our sound default — the
// setting that reproduces the paper's headline r_min(n=8) = 1) and for the
// paper's literal leave-one-out count estimator, whose accuracy improves
// with n (the paper's stated mechanism for Figure 2's trend).
//
// The experiment grid is the registered "fig2" scenario executed on the
// scenario runtime (src/runtime/): every (estimator, n, placement) case
// is an independent parallel task with an index-derived seed, so the
// numbers are identical at any thread count. This file is presentation
// only.

#include <cstdio>
#include <iostream>
#include <string>

#include "core/estimator.h"
#include "runtime/engine.h"
#include "runtime/scenarios.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace thinair;

// The fig2 scenario's "estimator" parameter codes, in registration order.
const char* estimator_label(std::size_t code) {
  static const core::EstimatorKind kKinds[] = {
      core::EstimatorKind::kGeometry, core::EstimatorKind::kLeaveOneOut,
      core::EstimatorKind::kSlotFraction};
  return core::to_string(kKinds[code]).data();
}

}  // namespace

int main() {
  std::printf(
      "Figure 2 — reliability vs number of terminals (3x3-cell testbed,\n"
      "rotating row/column interference, one experiment per placement)\n\n");

  runtime::register_builtin_scenarios();
  const runtime::Scenario* scenario =
      runtime::ScenarioRegistry::instance().find(runtime::kFig2Scenario);

  runtime::RunOptions options;
  options.master_seed = 20121029;  // HotNets'12
  runtime::RunStats stats;
  const auto cases = runtime::run_scenario_collect(*scenario, options, &stats);

  // Cases arrive in index order: estimator series major, n ascending,
  // placements within. Fold each (estimator, n) run into one table row.
  const auto header = [] {
    return util::Table({"n", "experiments", "min", "p95", "avg", "p50",
                        "eff(avg)", "kbps@1Mbps"});
  };
  util::Table t = header();
  std::size_t series = static_cast<std::size_t>(-1);
  std::size_t group_n = 0;
  util::Summary rel, eff;
  const auto flush_row = [&] {
    if (rel.empty()) return;
    t.add_row({std::to_string(group_n), std::to_string(rel.count()),
               util::fmt(rel.min(), 2), util::fmt(rel.exceeded_by(0.95), 2),
               util::fmt(rel.mean(), 2), util::fmt(rel.exceeded_by(0.50), 2),
               util::fmt(eff.mean(), 4), util::fmt(eff.mean() * 1000.0, 1)});
    rel = util::Summary();
    eff = util::Summary();
  };
  const auto flush_series = [&] {
    flush_row();
    if (t.rows() == 0) return;
    t.print(std::cout);
    std::printf("\n");
    t = header();
  };
  for (const auto& [spec, result] : cases) {
    const auto est =
        static_cast<std::size_t>(runtime::param(spec.params, "estimator"));
    const auto n = static_cast<std::size_t>(runtime::param(spec.params, "n"));
    if (est != series) {
      flush_series();
      series = est;
      group_n = n;
      std::printf("%s estimator\n", estimator_label(est));
    } else if (n != group_n) {
      flush_row();
      group_n = n;
    }
    rel.add(runtime::metric(result, "reliability"));
    eff.add(runtime::metric(result, "efficiency"));
  }
  flush_series();

  std::printf(
      "Paper shape check: with the sound estimator the 50th percentile is\n"
      "1.00 for every n and minimum reliability reaches 1.00 at n = 8; the\n"
      "count-based empirical estimator shows why conservatism is needed —\n"
      "its reliability degrades when fewer terminals provide hypotheses.\n");
  std::fprintf(stderr, "[%zu cases on %zu thread(s), %.2fs]\n", stats.cases,
               stats.threads, stats.wall_s);
  return 0;
}
