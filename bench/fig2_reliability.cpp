// Regenerates Figure 2: reliability of the protocol as a function of the
// number of terminals n = 3..8, on the simulated 14 m^2 / 3x3-cell testbed
// with rotating artificial interference.
//
// Per n we run one experiment per node placement (every way of putting n
// terminals and Eve into distinct cells; the paper does the same) and
// report the paper's four series:
//   minimum (diamonds), 95th percentile*, average (circles), and 50th
//   percentile* (squares) — *the paper's percentiles are "the minimum
//   reliability achieved during 95% / 50% of the experiments".
//
// Series are shown for the geometry estimator (our sound default — the
// setting that reproduces the paper's headline r_min(n=8) = 1) and for the
// paper's literal leave-one-out count estimator, whose accuracy improves
// with n (the paper's stated mechanism for Figure 2's trend).

#include <cstdio>
#include <iostream>

#include "testbed/sweep.h"
#include "util/table.h"

namespace {

using namespace thinair;

void run_series(const char* title, core::EstimatorKind kind,
                std::size_t max_placements) {
  testbed::SweepConfig cfg;
  cfg.n_min = 3;
  cfg.n_max = 8;
  cfg.max_placements = max_placements;
  cfg.session.estimator.kind = kind;
  cfg.seed = 20121029;  // HotNets'12

  const testbed::SweepResult result = run_sweep(cfg);

  std::printf("%s\n", title);
  util::Table t({"n", "experiments", "min", "p95", "avg", "p50",
                 "eff(avg)", "kbps@1Mbps"});
  for (const testbed::SweepRow& row : result.rows) {
    t.add_row({std::to_string(row.n), std::to_string(row.experiments),
               util::fmt(row.rel_min(), 2), util::fmt(row.rel_p95(), 2),
               util::fmt(row.rel_avg(), 2), util::fmt(row.rel_p50(), 2),
               util::fmt(row.efficiency.mean(), 4),
               util::fmt(row.efficiency.mean() * 1000.0, 1)});
  }
  t.print(std::cout);
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "Figure 2 — reliability vs number of terminals (3x3-cell testbed,\n"
      "rotating row/column interference, one experiment per placement)\n\n");

  run_series("geometry estimator (sound free-cell bound; library default)",
             core::EstimatorKind::kGeometry, 60);
  run_series("leave-one-out count estimator (paper's Sec. 3.3 strategy)",
             core::EstimatorKind::kLeaveOneOut, 24);
  run_series("slot-fraction estimator (per-pattern empirical bound)",
             core::EstimatorKind::kSlotFraction, 24);

  std::printf(
      "Paper shape check: with the sound estimator the 50th percentile is\n"
      "1.00 for every n and minimum reliability reaches 1.00 at n = 8; the\n"
      "count-based empirical estimator shows why conservatism is needed —\n"
      "its reliability degrades when fewer terminals provide hypotheses.\n");
  return 0;
}
