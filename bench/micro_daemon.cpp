// micro_daemon — thinaird under session load.
//
// Starts one daemon (real UDP on loopback) and drives N concurrent
// two-party key-agreement sessions against it from a multiplexed client
// pool: one non-blocking socket per terminal, all serviced by a single
// epoll loop, every session in flight at once. Writes BENCH_daemon.json
// (path overridable with the BENCH_DAEMON_JSON env var):
//
//   sessions, completed, p50/p99 time-to-key, sessions/sec, epoll
//
// and exits nonzero unless every session completed with matching keys —
// so the CI smoke run doubles as a correctness check. Defaults to 1000
// concurrent sessions (the load target); --sessions overrides.
//
//   usage: micro_daemon [--sessions K] [--packets N] [--deadline SEC]

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "netd/daemon.h"
#include "netd/node_session.h"
#include "netd/poller.h"
#include "netd/udp.h"

namespace {

using namespace thinair;

double monotonic_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Options {
  std::size_t sessions = 1000;
  std::size_t packets = 12;  // N per round; small keeps the focus on the
                             // daemon's relay path, not GF(2^8) math
  double deadline_s = 120.0;
  // Filled in by clamp_to_fd_limit before the run starts.
  std::size_t requested_sessions = 0;
  std::size_t fd_limit = 0;
  bool fd_clamped = false;
};

// The client pool opens one socket per terminal (2 per session), so an
// unchecked --sessions dies on EMFILE mid-run — after the daemon thread
// is up and half the pool is built. Probe RLIMIT_NOFILE up front: raise
// the soft limit to the hard limit if that is enough, otherwise clamp
// the session count (loudly) so the run completes and reports honestly.
// Records the limit in effect and whether sessions shrank in `opt`.
void clamp_to_fd_limit(Options& opt) {
  opt.requested_sessions = opt.sessions;
  // daemon socket + epoll fd + stdio + JSON output + slack
  constexpr std::size_t kOverheadFds = 16;
  rlimit rl{};
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return;
  const std::size_t needed = opt.sessions * 2 + kOverheadFds;
  if (rl.rlim_cur < needed && rl.rlim_max > rl.rlim_cur) {
    rlimit raised = rl;
    raised.rlim_cur = rl.rlim_max == RLIM_INFINITY
                          ? static_cast<rlim_t>(needed)
                          : std::min<rlim_t>(rl.rlim_max,
                                             static_cast<rlim_t>(needed));
    if (setrlimit(RLIMIT_NOFILE, &raised) == 0) rl = raised;
  }
  const std::size_t limit = static_cast<std::size_t>(rl.rlim_cur);
  opt.fd_limit = limit;
  if (limit < needed) {
    const std::size_t fit = limit > kOverheadFds ? (limit - kOverheadFds) / 2
                                                 : 0;
    std::fprintf(stderr,
                 "micro_daemon: WARNING: RLIMIT_NOFILE=%zu cannot hold %zu "
                 "sessions (2 fds each + %zu overhead); clamping --sessions "
                 "%zu -> %zu. Raise `ulimit -n` to run the full load.\n",
                 limit, opt.sessions, kOverheadFds, opt.sessions, fit);
    opt.sessions = fit;
    opt.fd_clamped = true;
  }
}

// One terminal: its socket, its protocol state machine, its timing.
struct ClientSlot {
  netd::UdpSocket socket;
  std::unique_ptr<netd::NodeSession> session;
  std::size_t session_index = 0;
  bool counted_done = false;
};

struct SessionTiming {
  double start_s = 0.0;
  double done_s = -1.0;
  std::size_t nodes_done = 0;
};

int run_bench(const Options& opt) {
  netd::DaemonConfig dconfig;
  dconfig.hub.seed = 2026;
  dconfig.hub.idle_timeout_s = opt.deadline_s;  // no expiry under load
  netd::Daemon daemon(dconfig);
  std::thread daemon_thread([&daemon] { daemon.run(); });
  const sockaddr_in daemon_addr = netd::make_addr("127.0.0.1", daemon.port());

  // Build the client pool: two terminals per session, one socket each,
  // all registered with one poller.
  const std::size_t n_clients = opt.sessions * 2;
  std::vector<ClientSlot> clients;
  clients.reserve(n_clients);
  std::vector<SessionTiming> timings(opt.sessions);
  netd::Poller poller;
  std::vector<std::size_t> by_fd;  // fd -> client index
  for (std::size_t s = 0; s < opt.sessions; ++s) {
    for (std::uint16_t node = 0; node < 2; ++node) {
      netd::NodeConfig nc;
      nc.session_id = 1 + s;
      nc.node = node;
      nc.members = 2;
      nc.x_packets_per_round = opt.packets;
      nc.payload_bytes = 16;
      nc.rounds = 1;
      nc.payload_seed = 0x1000 + s * 2 + node;
      // Under thousands of in-flight sessions one relay can take a while;
      // keep retransmits patient so the daemon is load-tested, not DoSed.
      nc.rto_s = 0.25;
      nc.probe_s = 1.0;
      nc.max_retries = static_cast<std::size_t>(opt.deadline_s / nc.rto_s);
      ClientSlot slot;
      slot.socket = netd::UdpSocket::bind("127.0.0.1", 0);
      slot.session = std::make_unique<netd::NodeSession>(nc);
      slot.session_index = s;
      const int fd = slot.socket.fd();
      poller.add(fd);
      if (static_cast<std::size_t>(fd) >= by_fd.size())
        by_fd.resize(fd + 1, SIZE_MAX);
      by_fd[fd] = clients.size();
      clients.push_back(std::move(slot));
    }
  }

  const double t0 = monotonic_s();
  for (std::size_t s = 0; s < opt.sessions; ++s) timings[s].start_s = t0;

  std::vector<std::uint8_t> dgram;
  const auto flush = [&](ClientSlot& c) {
    while (c.session->poll_datagram(dgram))
      (void)c.socket.send_to(daemon_addr, dgram);
  };
  for (ClientSlot& c : clients) {
    c.session->start(t0);
    flush(c);
  }

  std::size_t done_clients = 0;
  std::size_t failed = 0;
  const auto note_progress = [&](ClientSlot& c, double now) {
    if (c.counted_done || !(c.session->done() || c.session->failed())) return;
    c.counted_done = true;
    ++done_clients;
    if (c.session->failed()) {
      ++failed;
      std::fprintf(stderr, "session %zu node failed: %s\n", c.session_index,
                   c.session->error().c_str());
      return;
    }
    SessionTiming& t = timings[c.session_index];
    if (++t.nodes_done == 2) t.done_s = now;
  };

  std::vector<int> ready;
  sockaddr_in from{};
  double last_tick = t0;
  while (done_clients < n_clients) {
    double now = monotonic_s();
    if (now - t0 > opt.deadline_s) break;
    ready.clear();
    poller.wait(20, ready);
    now = monotonic_s();
    for (const int fd : ready) {
      ClientSlot& c = clients[by_fd[static_cast<std::size_t>(fd)]];
      while (c.socket.recv_from(dgram, from))
        c.session->on_datagram(dgram, now);
      flush(c);
      note_progress(c, now);
    }
    if (now - last_tick >= 0.05) {
      last_tick = now;
      for (ClientSlot& c : clients) {
        if (c.counted_done) continue;
        c.session->on_tick(now);
        flush(c);
        note_progress(c, now);
      }
    }
  }
  const double wall_s = monotonic_s() - t0;

  daemon.stop();
  daemon_thread.join();

  // Completed = both nodes done AND keys byte-identical. A zero-length
  // key is a legitimate outcome (the estimator judged the round to carry
  // no extractable secrecy), so count agreement, and report how many
  // sessions actually extracted bits.
  std::size_t completed = 0;
  std::size_t with_secret = 0;
  std::vector<double> ttk_ms;
  for (std::size_t s = 0; s < opt.sessions; ++s) {
    const SessionTiming& t = timings[s];
    if (t.done_s < 0.0) continue;
    const auto& a = *clients[s * 2].session;
    const auto& b = *clients[s * 2 + 1].session;
    if (a.secret() != b.secret()) {
      std::fprintf(stderr, "session %zu: key mismatch\n", s);
      ++failed;
      continue;
    }
    ++completed;
    if (!a.secret().empty()) ++with_secret;
    ttk_ms.push_back((t.done_s - t.start_s) * 1e3);
  }
  std::sort(ttk_ms.begin(), ttk_ms.end());
  const auto pct = [&](double p) {
    if (ttk_ms.empty()) return 0.0;
    const std::size_t i = static_cast<std::size_t>(
        p * static_cast<double>(ttk_ms.size() - 1) + 0.5);
    return ttk_ms[i];
  };
  const double p50 = pct(0.50), p99 = pct(0.99);
  const double rate = wall_s > 0.0 ? completed / wall_s : 0.0;
  const netd::HubStats& hs = daemon.hub().stats();

  const char* path = std::getenv("BENCH_DAEMON_JSON");
  if (path == nullptr) path = "BENCH_daemon.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"micro_daemon\",\n"
               "  \"sessions\": %zu,\n"
               "  \"requested_sessions\": %zu,\n"
               "  \"fd_limit\": %zu,\n"
               "  \"fd_clamped\": %s,\n"
               "  \"completed\": %zu,\n"
               "  \"with_nonzero_secret\": %zu,\n"
               "  \"x_packets_per_round\": %zu,\n"
               "  \"p50_time_to_key_ms\": %.2f,\n"
               "  \"p99_time_to_key_ms\": %.2f,\n"
               "  \"sessions_per_s\": %.1f,\n"
               "  \"wall_s\": %.2f,\n"
               "  \"datagrams_in\": %llu,\n"
               "  \"frames_relayed\": %llu,\n"
               "  \"epoll\": %s\n"
               "}\n",
               opt.sessions, opt.requested_sessions, opt.fd_limit,
               opt.fd_clamped ? "true" : "false", completed, with_secret,
               opt.packets, p50, p99,
               rate, wall_s,
               static_cast<unsigned long long>(hs.datagrams_in.load()),
               static_cast<unsigned long long>(hs.frames_relayed.load()),
               daemon.using_epoll() ? "true" : "false");
  std::fclose(f);

  std::fprintf(stderr,
               "micro_daemon: %zu/%zu sessions, p50 %.1f ms, p99 %.1f ms, "
               "%.0f sessions/s, %.2fs wall (%s)\n",
               completed, opt.sessions, p50, p99, rate, wall_s,
               daemon.using_epoll() ? "epoll" : "poll");
  if (completed != opt.sessions || failed != 0) {
    std::fprintf(stderr, "micro_daemon: FAILED (%zu incomplete, %zu failed)\n",
                 opt.sessions - completed, failed);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    ++i;
    if (flag == "--sessions" && value != nullptr) {
      opt.sessions = static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--packets" && value != nullptr) {
      opt.packets = static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--deadline" && value != nullptr) {
      opt.deadline_s = std::strtod(value, nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: micro_daemon [--sessions K] [--packets N] "
                   "[--deadline SEC]\n");
      return 2;
    }
  }
  if (opt.sessions == 0 || opt.packets == 0) return 2;
  clamp_to_fd_limit(opt);
  if (opt.sessions == 0) {
    std::fprintf(stderr, "micro_daemon: fd limit too low for any session\n");
    return 1;
  }
  return run_bench(opt);
}
