// Ablation C: how the Sec. 3.3 estimator choice trades reliability against
// efficiency. The oracle is the unreachable ideal; the geometry bound is
// sound under the paper's placement rule; the empirical count and fraction
// bounds show the failure modes the paper's discussion anticipates
// (estimates too optimistic when hypotheses are scarce).

#include <cstdio>
#include <iostream>

#include "testbed/sweep.h"
#include "util/table.h"

int main() {
  using namespace thinair;

  struct Row {
    const char* name;
    core::EstimatorKind kind;
  };
  const Row kinds[] = {
      {"oracle (ideal)", core::EstimatorKind::kOracle},
      {"geometry (default)", core::EstimatorKind::kGeometry},
      {"slot-fraction", core::EstimatorKind::kSlotFraction},
      {"loo-fraction", core::EstimatorKind::kLooFraction},
      {"leave-one-out count", core::EstimatorKind::kLeaveOneOut},
      {"2-subset count", core::EstimatorKind::kKSubset},
      {"fixed fraction 0.3", core::EstimatorKind::kFraction},
  };

  std::printf(
      "Ablation: estimator strategy vs reliability and efficiency\n"
      "(testbed, n = 4 and n = 8, sampled placements)\n\n");

  for (std::size_t n : {std::size_t{4}, std::size_t{8}}) {
    std::printf("n = %zu terminals\n", n);
    util::Table t({"estimator", "rel(min)", "rel(avg)", "rel(p50)",
                   "eff(avg)", "secret bits/exp"});
    for (const Row& k : kinds) {
      testbed::SweepConfig cfg;
      cfg.n_min = n;
      cfg.n_max = n;
      cfg.max_placements = 16;
      cfg.session.estimator.kind = k.kind;
      if (k.kind == core::EstimatorKind::kKSubset)
        cfg.session.estimator.k_antennas = 2;
      cfg.seed = 7;

      const testbed::SweepResult sweep = run_sweep(cfg);
      const testbed::SweepRow& row = sweep.rows.front();
      const double bits =
          row.efficiency.count() == 0 ? 0.0 : row.secret_rate_bps.mean();
      (void)bits;
      double avg_secret_bits = 0.0;
      // secret bits per experiment = efficiency * total bits; approximate
      // with rate * duration is noisy, so report efficiency directly.
      (void)avg_secret_bits;
      t.add_row({k.name, util::fmt(row.rel_min(), 2),
                 util::fmt(row.rel_avg(), 2), util::fmt(row.rel_p50(), 2),
                 util::fmt(row.efficiency.mean(), 4),
                 util::fmt(row.secret_rate_bps.mean(), 0)});
    }
    t.print(std::cout);
    std::printf("\n");
  }

  std::printf(
      "Reading: the oracle shows the channel's secrecy capacity; geometry\n"
      "keeps reliability ~1 at a fraction of the oracle's efficiency; the\n"
      "count-based estimates buy efficiency by gambling on Eve's location,\n"
      "which is exactly the risk Sec. 3.3 discusses.\n");
  return 0;
}
