// micro_engine — the sweep engine under a sink-bound load.
//
// Runs a near-zero-work scenario (two metrics derived from the case
// seed by a handful of integer ops) so that end-to-end throughput is
// dominated by the result path: per-case scheduling, the workers'
// ring pushes, and the drainer's reorder/format/fold work. Measures
//
//   - cases/s at thread counts {1, 2, 4, ...} up to hardware
//     concurrency (best of --reps runs each), NDJSON formatting
//     included (the stream is a discarding buffer, so disk I/O noise
//     is excluded), and
//   - the p50/p99 latency of a single ResultSink::push call under a
//     steady single-producer stream.
//
// Writes BENCH_engine.json (path overridable with the BENCH_ENGINE_JSON
// env var) and exits nonzero unless every sweep emitted every case with
// the expected aggregate — the CI run doubles as a correctness check.
//
//   usage: micro_engine [--cases N] [--push-samples N] [--reps R]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ostream>
#include <streambuf>
#include <string>
#include <thread>
#include <vector>

#include "runtime/engine.h"
#include "runtime/result_sink.h"
#include "runtime/task_pool.h"

namespace {

using namespace thinair;

struct Options {
  std::size_t cases = 200000;
  std::size_t push_samples = 100000;
  int reps = 3;
};

// Swallows everything: keeps the drainer's formatting + buffered writes
// in the measurement while excluding filesystem variance.
struct NullBuf : std::streambuf {
  int_type overflow(int_type c) override { return traits_type::not_eof(c); }
  std::streamsize xsputn(const char*, std::streamsize n) override { return n; }
};

runtime::Scenario trivial_scenario(std::size_t cases) {
  runtime::Scenario s;
  s.name = "micro_engine";
  s.description = "near-zero-work cases; throughput is sink-bound";
  s.plan = [cases] {
    runtime::SweepPlan plan;
    std::vector<double> is(cases);
    for (std::size_t i = 0; i < cases; ++i) is[i] = static_cast<double>(i);
    plan.add_axis("i", is);
    return plan;
  };
  s.run = [](const runtime::CaseSpec& spec) {
    // A couple of integer mixes — cheap enough that the result path,
    // not the "experiment", sets the pace.
    std::uint64_t x = spec.seed * 0x9e3779b97f4a7c15ull;
    x ^= x >> 29;
    runtime::CaseResult result;
    result.group = spec.index % 4 == 0 ? "g0" : "g1";
    result.metrics = {
        {"u", static_cast<double>(x >> 11) * 0x1p-53},
        {"v", static_cast<double>(spec.index)},
    };
    return result;
  };
  return s;
}

double run_once(std::size_t cases, std::size_t threads) {
  NullBuf buf;
  std::ostream null_stream(&buf);
  runtime::ResultSink sink("micro_engine", &null_stream);
  runtime::RunOptions options;
  options.threads = threads;
  options.master_seed = 2026;
  const runtime::RunStats stats =
      runtime::run_scenario(trivial_scenario(cases), options, sink);
  if (sink.cases() != cases || sink.summaries().empty()) {
    std::fprintf(stderr, "micro_engine: sweep lost cases (%zu of %zu)\n",
                 sink.cases(), cases);
    std::exit(1);
  }
  return stats.cases_per_s();
}

struct PushLatency {
  double p50_ns = 0.0;
  double p99_ns = 0.0;
};

struct ReorderProbe {
  std::size_t block = 0;
  std::size_t cases = 0;
  double cases_per_s = 0.0;
  runtime::ResultSink::ReorderStats stats;
};

// Forces the reorder buffer to do real work: cases are pushed in
// block-reversed order (each kBlock-sized block back to front), so the
// drainer must park kBlock-1 records before the block's first index
// arrives and unblocks emission. Because the drainer pops pushes in
// order, the pending high-water mark is exactly kBlock-1 — and the
// blocks after the first should be served almost entirely from the
// slab arena's free list (the previous block's nodes), which is what
// the slab_* stats in BENCH_engine.json pin.
ReorderProbe measure_reorder(std::size_t cases) {
  constexpr std::size_t kBlock = 4096;
  NullBuf buf;
  std::ostream null_stream(&buf);
  runtime::ResultSink sink("reorder_probe", &null_stream);
  runtime::CaseResult result{"g", {{"u", 0.5}}};
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t block = 0; block < cases; block += kBlock) {
    const std::size_t end = std::min(block + kBlock, cases);
    for (std::size_t i = end; i > block; --i) {
      runtime::CaseSpec spec{i - 1, (i - 1) * 0x9e3779b97f4a7c15ull,
                             {{"i", static_cast<double>(i - 1)}}};
      sink.push(spec, result);
    }
  }
  sink.finish();
  const auto t1 = std::chrono::steady_clock::now();
  if (sink.cases() != cases) {
    std::fprintf(stderr, "micro_engine: reorder probe lost cases\n");
    std::exit(1);
  }
  ReorderProbe probe;
  probe.block = kBlock;
  probe.cases = cases;
  probe.cases_per_s = static_cast<double>(cases) /
                      std::chrono::duration<double>(t1 - t0).count();
  probe.stats = sink.reorder_stats();
  if (probe.stats.peak_pending + 1 < std::min(kBlock, cases)) {
    std::fprintf(stderr,
                 "micro_engine: reorder peak %zu below the forced window\n",
                 probe.stats.peak_pending);
    std::exit(1);
  }
  return probe;
}

PushLatency measure_push(std::size_t samples) {
  NullBuf buf;
  std::ostream null_stream(&buf);
  runtime::ResultSink sink("push_probe", &null_stream);
  std::vector<double> ns(samples);
  runtime::CaseResult result{"g", {{"u", 0.5}, {"v", 1.0}}};
  for (std::size_t i = 0; i < samples; ++i) {
    runtime::CaseSpec spec{i, i * 0x9e3779b97f4a7c15ull,
                           {{"i", static_cast<double>(i)}}};
    const auto t0 = std::chrono::steady_clock::now();
    sink.push(spec, result);
    const auto t1 = std::chrono::steady_clock::now();
    ns[i] = std::chrono::duration<double, std::nano>(t1 - t0).count();
  }
  sink.finish();
  if (sink.cases() != samples) {
    std::fprintf(stderr, "micro_engine: push probe lost cases\n");
    std::exit(1);
  }
  std::sort(ns.begin(), ns.end());
  PushLatency lat;
  lat.p50_ns = ns[samples / 2];
  lat.p99_ns = ns[samples - 1 - samples / 100];
  return lat;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--cases") == 0) {
      const char* v = next();
      if (v != nullptr) opt.cases = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--push-samples") == 0) {
      const char* v = next();
      if (v != nullptr) opt.push_samples = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      const char* v = next();
      if (v != nullptr) opt.reps = std::atoi(v);
    } else {
      std::fprintf(stderr,
                   "usage: micro_engine [--cases N] [--push-samples N] "
                   "[--reps R]\n");
      return 2;
    }
  }

  const std::size_t hw = runtime::TaskPool::hardware_threads();
  std::vector<std::size_t> thread_counts;
  for (std::size_t t = 1; t <= hw; t *= 2) thread_counts.push_back(t);
  if (thread_counts.back() != hw) thread_counts.push_back(hw);

  const PushLatency push = measure_push(opt.push_samples);
  std::printf("push latency over %zu samples: p50 %.0f ns, p99 %.0f ns\n",
              opt.push_samples, push.p50_ns, push.p99_ns);

  const ReorderProbe reorder = measure_reorder(opt.cases);
  std::printf(
      "reorder probe (block %zu): %12.0f cases/s, peak pending %zu, "
      "slab %zu chunk(s) / %zu KiB, %zu acquires, %zu freelist hits\n",
      reorder.block, reorder.cases_per_s, reorder.stats.peak_pending,
      reorder.stats.slab.chunks, reorder.stats.slab.reserved_bytes / 1024,
      reorder.stats.slab.acquires, reorder.stats.slab.freelist_hits);

  std::vector<double> cases_per_s(thread_counts.size(), 0.0);
  for (std::size_t k = 0; k < thread_counts.size(); ++k) {
    for (int rep = 0; rep < opt.reps; ++rep)  // best-of: shed scheduler noise
      cases_per_s[k] =
          std::max(cases_per_s[k], run_once(opt.cases, thread_counts[k]));
    std::printf("threads %2zu: %12.0f cases/s\n", thread_counts[k],
                cases_per_s[k]);
  }
  const double speedup = cases_per_s.back() / cases_per_s.front();
  std::printf("max-threads vs 1-thread: %.2fx (%zu hardware threads)\n",
              speedup, hw);

  const char* path = std::getenv("BENCH_ENGINE_JSON");
  if (path == nullptr) path = "BENCH_engine.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"micro_engine\",\n"
               "  \"cases\": %zu,\n"
               "  \"hardware_threads\": %zu,\n"
               "  \"push_p50_ns\": %.1f,\n"
               "  \"push_p99_ns\": %.1f,\n"
               "  \"threads\": [\n",
               opt.cases, hw, push.p50_ns, push.p99_ns);
  for (std::size_t k = 0; k < thread_counts.size(); ++k)
    std::fprintf(f, "    {\"threads\": %zu, \"cases_per_s\": %.1f}%s\n",
                 thread_counts[k], cases_per_s[k],
                 k + 1 < thread_counts.size() ? "," : "");
  std::fprintf(f,
               "  ],\n"
               "  \"speedup_max_vs_1\": %.3f,\n"
               "  \"reorder\": {\n"
               "    \"block\": %zu,\n"
               "    \"cases\": %zu,\n"
               "    \"cases_per_s\": %.1f,\n"
               "    \"peak_pending\": %zu,\n"
               "    \"slab_chunks\": %zu,\n"
               "    \"slab_reserved_bytes\": %zu,\n"
               "    \"slab_acquires\": %zu,\n"
               "    \"slab_freelist_hits\": %zu\n"
               "  }\n"
               "}\n",
               speedup, reorder.block, reorder.cases, reorder.cases_per_s,
               reorder.stats.peak_pending, reorder.stats.slab.chunks,
               reorder.stats.slab.reserved_bytes, reorder.stats.slab.acquires,
               reorder.stats.slab.freelist_hits);
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return 0;
}
