// Regenerates the Sec. 4 headline numbers and prints them next to the
// paper's measurements:
//   - n = 8: minimum efficiency 0.038 -> 38 secret kbps at 1 Mbps;
//   - n = 8: minimum reliability 1 ("Eve never learns anything");
//   - n = 6: minimum reliability 0.2 (Eve guesses a bit w.p. 2^-0.2);
//   - all n: the 50th percentile of reliability is 1.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "testbed/sweep.h"
#include "util/table.h"

int main() {
  using namespace thinair;

  testbed::SweepConfig cfg;
  cfg.n_min = 3;
  cfg.n_max = 8;
  cfg.max_placements = 0;  // every possible positioning, as in the paper
  cfg.seed = 20121029;

  const testbed::SweepResult sweep = run_sweep(cfg);
  const testbed::SweepRow* n6 = nullptr;
  const testbed::SweepRow* n8 = nullptr;
  bool p50_all_one = true;
  for (const testbed::SweepRow& row : sweep.rows) {
    if (row.n == 6) n6 = &row;
    if (row.n == 8) n8 = &row;
    if (row.rel_p50() < 1.0) p50_all_one = false;
  }

  std::printf("Sec. 4 headline numbers — paper vs this reproduction\n\n");
  util::Table t({"quantity", "paper", "measured"});
  t.add_row({"n=8 min efficiency", "0.038", util::fmt(n8->efficiency.min(), 3)});
  t.add_row({"n=8 secret kbps at 1 Mbps", "38",
             util::fmt(n8->efficiency.min() * 1000.0, 1)});
  t.add_row({"n=8 min reliability", "1.0", util::fmt(n8->rel_min(), 2)});
  t.add_row({"n=6 min reliability", "0.2", util::fmt(n6->rel_min(), 2)});
  t.add_row({"50th pct reliability = 1 for all n", "yes",
             p50_all_one ? "yes" : "no"});
  t.add_row({"n=8 Eve per-bit guess probability",
             util::fmt(std::exp2(-1.0), 2),
             util::fmt(std::exp2(-n8->rel_min()), 2)});
  t.print(std::cout);

  std::printf(
      "\nNotes: measured numbers come from the simulated testbed with the\n"
      "geometry estimator (the sound instantiation of Sec. 3.3). Absolute\n"
      "efficiency depends on the synthetic channel calibration; the paper's\n"
      "claims that survive reproduction are the *structure*: thousands of\n"
      "secret bits per second at n = 8 with minimum reliability 1, and a\n"
      "50th-percentile reliability of 1 at every group size.\n");
  return 0;
}
