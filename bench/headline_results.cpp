// Regenerates the Sec. 4 headline numbers and prints them next to the
// paper's measurements:
//   - n = 8: minimum efficiency 0.038 -> 38 secret kbps at 1 Mbps;
//   - n = 8: minimum reliability 1 ("Eve never learns anything");
//   - n = 6: minimum reliability 0.2 (Eve guesses a bit w.p. 2^-0.2);
//   - all n: the 50th percentile of reliability is 1.
//
// The full 1971-placement grid is the registered "headline" scenario
// executed on the scenario runtime (src/runtime/) — the same sweep
// `thinair run headline` exposes — so it parallelises across cores and
// prints identical numbers at any thread count.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "runtime/engine.h"
#include "runtime/scenarios.h"
#include "util/table.h"

int main() {
  using namespace thinair;

  runtime::register_builtin_scenarios();
  const runtime::Scenario* scenario =
      runtime::ScenarioRegistry::instance().find(runtime::kHeadlineScenario);

  runtime::RunOptions options;
  options.master_seed = 20121029;
  runtime::ResultSink sink(scenario->name, nullptr);
  const runtime::RunStats stats =
      runtime::run_scenario(*scenario, options, sink);

  const util::Summary* rel6 = nullptr;
  const util::Summary* rel8 = nullptr;
  const util::Summary* eff8 = nullptr;
  bool p50_all_one = true;
  for (const runtime::ResultSink::GroupSummary& g : sink.summaries()) {
    const util::Summary& rel = g.metrics.at("reliability");
    if (g.group == "n=6") rel6 = &rel;
    if (g.group == "n=8") {
      rel8 = &rel;
      eff8 = &g.metrics.at("efficiency");
    }
    if (rel.exceeded_by(0.50) < 1.0) p50_all_one = false;
  }

  std::printf("Sec. 4 headline numbers — paper vs this reproduction\n\n");
  util::Table t({"quantity", "paper", "measured"});
  t.add_row({"n=8 min efficiency", "0.038", util::fmt(eff8->min(), 3)});
  t.add_row(
      {"n=8 secret kbps at 1 Mbps", "38", util::fmt(eff8->min() * 1000.0, 1)});
  t.add_row({"n=8 min reliability", "1.0", util::fmt(rel8->min(), 2)});
  t.add_row({"n=6 min reliability", "0.2", util::fmt(rel6->min(), 2)});
  t.add_row({"50th pct reliability = 1 for all n", "yes",
             p50_all_one ? "yes" : "no"});
  t.add_row({"n=8 Eve per-bit guess probability", util::fmt(std::exp2(-1.0), 2),
             util::fmt(std::exp2(-rel8->min()), 2)});
  t.print(std::cout);

  std::printf(
      "\nNotes: measured numbers come from the simulated testbed with the\n"
      "geometry estimator (the sound instantiation of Sec. 3.3). Absolute\n"
      "efficiency depends on the synthetic channel calibration; the paper's\n"
      "claims that survive reproduction are the *structure*: thousands of\n"
      "secret bits per second at n = 8 with minimum reliability 1, and a\n"
      "50th-percentile reliability of 1 at every group size.\n");
  std::fprintf(stderr, "[%zu cases on %zu thread(s), %.2fs]\n", stats.cases,
               stats.threads, stats.wall_s);
  return 0;
}
