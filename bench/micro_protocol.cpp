// Micro-benchmarks for the protocol itself: the cost of phase 1's pool
// construction, phase 2's planning/decoding, and a full simulated round —
// what a deployment would spend per secret bit of CPU rather than of
// airtime.

#include <benchmark/benchmark.h>

#include "channel/erasure.h"
#include "core/phase1.h"
#include "core/phase2.h"
#include "core/session.h"
#include "net/medium.h"

namespace {

using namespace thinair;

core::ReceptionTable make_table(std::size_t n_receivers, std::size_t universe,
                                double p, std::uint64_t seed) {
  std::vector<packet::NodeId> receivers;
  for (std::size_t i = 1; i <= n_receivers; ++i)
    receivers.push_back(packet::NodeId{static_cast<std::uint16_t>(i)});
  core::ReceptionTable table(packet::NodeId{0}, receivers, universe);
  channel::Rng rng(seed);
  for (packet::NodeId r : receivers) {
    std::vector<std::uint32_t> got;
    for (std::uint32_t i = 0; i < universe; ++i)
      if (!rng.bernoulli(p)) got.push_back(i);
    table.set_received(r, got);
  }
  return table;
}

void BM_PoolBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const core::ReceptionTable table = make_table(n, 180, 0.5, 11);
  const core::FractionEstimator est(0.4);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::build_pool(table, est, core::PoolStrategy::kClassShared));
}
BENCHMARK(BM_PoolBuild)->Arg(2)->Arg(5)->Arg(7);

void BM_Phase2Plan(benchmark::State& state) {
  const core::ReceptionTable table = make_table(5, 180, 0.5, 12);
  const core::FractionEstimator est(0.4);
  const auto build =
      core::build_pool(table, est, core::PoolStrategy::kClassShared);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::plan_phase2(build.pool));
}
BENCHMARK(BM_Phase2Plan);

void BM_FullRoundIid(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  channel::IidErasure ch(0.5);
  net::SimMedium medium(ch, channel::Rng(13));
  for (std::size_t i = 0; i < n; ++i)
    medium.attach(packet::NodeId{static_cast<std::uint16_t>(i)},
                  net::Role::kTerminal);
  medium.attach(packet::NodeId{static_cast<std::uint16_t>(n)},
                net::Role::kEavesdropper);

  core::SessionConfig cfg;
  cfg.x_packets_per_round = 90;
  cfg.rounds = 1;
  cfg.estimator.kind = core::EstimatorKind::kLooFraction;
  core::GroupSecretSession session(medium, cfg);

  std::size_t secret_bits = 0;
  for (auto _ : state) {
    const core::SessionResult r = session.run();
    secret_bits += r.secret_bits();
    benchmark::DoNotOptimize(r.secret.data());
  }
  state.counters["secret_bits_per_round"] = benchmark::Counter(
      static_cast<double>(secret_bits),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_FullRoundIid)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
