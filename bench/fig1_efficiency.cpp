// Regenerates Figure 1: maximum efficiency of the group algorithm
// (continuous lines in the paper) and the unicast algorithm (dashed lines)
// as a function of the erasure probability, for n = 2, 3, 6, 10 and the
// n -> infinity limit.
//
// Two series per algorithm:
//   - the closed forms derived under the paper's simplifying assumptions
//     (symmetric i.i.d. erasures, oracle estimate of Eve's misses);
//   - Monte-Carlo protocol runs on the simulated broadcast network with
//     the oracle estimator, reported as data-plane efficiency (secret
//     packets / distinct data packets), the quantity the closed forms
//     model.
//
// The Monte-Carlo grid is the registered "fig1" scenario executed on the
// scenario runtime (src/runtime/) — every (n, p) case runs in parallel
// with a seed derived from its case index, so this program prints the
// same numbers at any thread count. This file is presentation only.

#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/efficiency.h"
#include "runtime/engine.h"
#include "runtime/scenarios.h"
#include "util/table.h"

int main() {
  using namespace thinair;

  std::printf(
      "Figure 1 — maximum efficiency vs erasure probability\n"
      "(group algorithm = paper's continuous lines; unicast = dashed)\n\n");

  runtime::register_builtin_scenarios();
  const runtime::Scenario* scenario =
      runtime::ScenarioRegistry::instance().find(runtime::kFig1Scenario);

  runtime::RunOptions options;
  options.master_seed = 42;
  runtime::RunStats stats;
  const auto cases = runtime::run_scenario_collect(*scenario, options, &stats);

  std::size_t group_n = 0;
  util::Table t({"p", "group(analytic)", "group(simulated)",
                 "unicast(analytic)", "unicast(simulated)"});
  const auto flush = [&] {
    if (t.rows() == 0) return;
    std::printf("n = %zu terminals\n", group_n);
    t.print(std::cout);
    std::printf("\n");
    t = util::Table({"p", "group(analytic)", "group(simulated)",
                     "unicast(analytic)", "unicast(simulated)"});
  };
  for (const auto& [spec, result] : cases) {
    const auto n = static_cast<std::size_t>(runtime::param(spec.params, "n"));
    if (n != group_n) {
      flush();
      group_n = n;
    }
    t.add_row({util::fmt(runtime::param(spec.params, "p"), 1),
               util::fmt(runtime::metric(result, "group_analytic")),
               util::fmt(runtime::metric(result, "group_sim")),
               util::fmt(runtime::metric(result, "unicast_analytic")),
               util::fmt(runtime::metric(result, "unicast_sim"))});
  }
  flush();

  std::printf("n -> infinity (analytic only)\n");
  util::Table inf({"p", "group(analytic)", "unicast(analytic)"});
  for (double p : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9})
    inf.add_row({util::fmt(p, 1), util::fmt(analysis::group_efficiency_inf(p)),
                 util::fmt(analysis::unicast_efficiency_inf(p))});
  inf.print(std::cout);

  std::printf(
      "\nPaper shape check: group efficiency peaks near p = 0.5 and stays\n"
      "bounded away from 0 as n grows (max 0.25 at n = 2, ~0.2 at n = inf);\n"
      "unicast efficiency collapses toward 0 as n grows.\n");
  std::fprintf(stderr, "[%zu cases on %zu thread(s), %.2fs]\n", stats.cases,
               stats.threads, stats.wall_s);
  return 0;
}
