// Regenerates Figure 1: maximum efficiency of the group algorithm
// (continuous lines in the paper) and the unicast algorithm (dashed lines)
// as a function of the erasure probability, for n = 2, 3, 6, 10 and the
// n -> infinity limit.
//
// Two series per algorithm:
//   - the closed forms derived under the paper's simplifying assumptions
//     (symmetric i.i.d. erasures, oracle estimate of Eve's misses);
//   - Monte-Carlo protocol runs on the simulated broadcast network with
//     the oracle estimator, reported as data-plane efficiency (secret
//     packets / distinct data packets), the quantity the closed forms
//     model.

#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/efficiency.h"
#include "channel/erasure.h"
#include "core/session.h"
#include "core/unicast.h"
#include "net/medium.h"
#include "util/table.h"

namespace {

using namespace thinair;

struct McResult {
  double group = 0.0;
  double unicast = 0.0;
};

McResult monte_carlo(double p, std::size_t n, std::uint64_t seed) {
  core::SessionConfig cfg;
  cfg.x_packets_per_round = 200;
  cfg.payload_bytes = 100;
  cfg.rounds = 6;
  cfg.estimator.kind = core::EstimatorKind::kOracle;
  cfg.pool_strategy = core::PoolStrategy::kClassShared;

  McResult out;
  {
    channel::IidErasure ch(p);
    net::Medium medium(ch, channel::Rng(seed));
    for (std::size_t i = 0; i < n; ++i)
      medium.attach(packet::NodeId{static_cast<std::uint16_t>(i)},
                    net::Role::kTerminal);
    medium.attach(packet::NodeId{static_cast<std::uint16_t>(n)},
                  net::Role::kEavesdropper);
    core::GroupSecretSession session(medium, cfg);
    out.group = session.run().data_efficiency(cfg.payload_bytes);
  }
  {
    channel::IidErasure ch(p);
    net::Medium medium(ch, channel::Rng(seed + 1));
    for (std::size_t i = 0; i < n; ++i)
      medium.attach(packet::NodeId{static_cast<std::uint16_t>(i)},
                    net::Role::kTerminal);
    medium.attach(packet::NodeId{static_cast<std::uint16_t>(n)},
                  net::Role::kEavesdropper);
    core::UnicastSession session(medium, cfg);
    out.unicast = session.run().data_efficiency(cfg.payload_bytes);
  }
  return out;
}

}  // namespace

int main() {
  std::printf(
      "Figure 1 — maximum efficiency vs erasure probability\n"
      "(group algorithm = paper's continuous lines; unicast = dashed)\n\n");

  const std::vector<std::size_t> ns{2, 3, 6, 10};
  const std::vector<double> ps{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};

  for (std::size_t n : ns) {
    std::printf("n = %zu terminals\n", n);
    util::Table t({"p", "group(analytic)", "group(simulated)",
                   "unicast(analytic)", "unicast(simulated)"});
    for (double p : ps) {
      const McResult mc = monte_carlo(p, n, 42);
      t.add_row({util::fmt(p, 1),
                 util::fmt(analysis::group_efficiency(p, n)),
                 util::fmt(mc.group),
                 util::fmt(analysis::unicast_efficiency(p, n)),
                 util::fmt(mc.unicast)});
    }
    t.print(std::cout);
    std::printf("\n");
  }

  std::printf("n -> infinity (analytic only)\n");
  util::Table t({"p", "group(analytic)", "unicast(analytic)"});
  for (double p : ps)
    t.add_row({util::fmt(p, 1), util::fmt(analysis::group_efficiency_inf(p)),
               util::fmt(analysis::unicast_efficiency_inf(p))});
  t.print(std::cout);

  std::printf(
      "\nPaper shape check: group efficiency peaks near p = 0.5 and stays\n"
      "bounded away from 0 as n grows (max 0.25 at n = 2, ~0.2 at n = inf);\n"
      "unicast efficiency collapses toward 0 as n grows.\n");
  return 0;
}
