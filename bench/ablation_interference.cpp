// Ablation A: the value of artificial interference (Sec. 3.3 / 4).
//
// The paper's jammers exist to guarantee that Eve misses a minimum
// fraction of packets wherever she stands. With the interferers switched
// off, the indoor line-of-sight channel is nearly lossless: everyone —
// including Eve — receives almost everything, and the achievable secret
// rate collapses toward zero (there is nothing Eve misses to distil).

#include <cstdio>
#include <iostream>

#include "testbed/sweep.h"
#include "util/table.h"

int main() {
  using namespace thinair;

  std::printf(
      "Ablation: artificial interference on vs off (geometry estimator)\n\n");

  util::Table t({"n", "interference", "rel(min)", "rel(p50)", "eff(avg)",
                 "secret rate (bps wall-clock)"});

  for (std::size_t n : {std::size_t{4}, std::size_t{8}}) {
    for (bool on : {true, false}) {
      testbed::SweepConfig cfg;
      cfg.n_min = n;
      cfg.n_max = n;
      cfg.max_placements = 12;
      cfg.channel.interference_enabled = on;
      cfg.seed = 99;

      const testbed::SweepResult sweep = run_sweep(cfg);
      const testbed::SweepRow& row = sweep.rows.front();
      t.add_row({std::to_string(n), on ? "on" : "off",
                 util::fmt(row.rel_min(), 2), util::fmt(row.rel_p50(), 2),
                 util::fmt(row.efficiency.mean(), 4),
                 util::fmt(row.secret_rate_bps.mean(), 0)});
    }
  }
  t.print(std::cout);

  std::printf(
      "\nReading: without jamming the broadcast channel barely erases\n"
      "anything, so the estimators find (correctly) that Eve misses ~no\n"
      "packets and the protocol generates ~no secret bits — the paper's\n"
      "motivation for engineering the channel conditions.\n");
  return 0;
}
