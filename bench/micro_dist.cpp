// micro_dist — the distributed sweep's fan-out overhead, measured.
//
// Runs one cheap spec-defined scenario through run_distributed_local at
// 1, 2 and 4 forked workers (the real fork/exec + socketpair path — the
// workers are `thinair sweep-worker` processes of the sibling CLI
// binary) and through run_scenario as the single-process reference.
// Writes BENCH_dist.json (path overridable with the BENCH_DIST_JSON env
// var):
//
//   cases, per-worker-count {wall_s, cases/s, shards, shard round-trip
//   p50/p99 ms}
//
// and exits nonzero unless every distributed run's NDJSON is
// byte-identical to the reference — the bench doubles as the
// acceptance check, exactly like micro_daemon. The container CI runs
// on one core, so the checker (tools/check_bench_dist.py) holds the
// numbers to structural sanity, not scaling.
//
//   usage: micro_dist [--cases K] [--binary /path/to/thinair]

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "dist/runner.h"
#include "runtime/engine.h"
#include "runtime/result_sink.h"
#include "runtime/scenario_spec.h"

namespace {

using namespace thinair;

struct Options {
  std::size_t cases = 2000;
  std::string binary;  // empty = <dir of this bench>/thinair
};

/// The sibling thinair CLI binary: workers are exec'd from it, so the
/// bench exercises the same code path as `thinair run --workers N`.
std::string sibling_thinair() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "thinair";
  buf[n] = '\0';
  std::string path(buf);
  const std::size_t slash = path.rfind('/');
  path.resize(slash == std::string::npos ? 0 : slash + 1);
  path += "thinair";
  return path;
}

/// A cheap iid scenario with a tunable case count: 4 grid points
/// (2 n-values x 2 p-values) x `cases / 4` repeats.
runtime::Scenario make_scenario(std::size_t cases) {
  runtime::SessionSpec session;
  session.x_packets = 30;
  session.rounds = 1;
  runtime::ScenarioSpec spec =
      runtime::ScenarioSpec{}
          .with_name("dist-bench")
          .on_iid(0.3)
          .sweep_p({0.2, 0.5})
          .with_n({2, 3})
          .with_session(session)
          .with_estimator(core::EstimatorKind::kLooFraction)
          .with_repeats(std::max<std::size_t>(cases / 4, 1));
  return runtime::compile(spec);
}

struct WorkerPoint {
  std::size_t workers = 0;
  double wall_s = 0.0;
  double cases_per_s = 0.0;
  std::size_t shards = 0;
  double shard_p50_ms = 0.0;
  double shard_p99_ms = 0.0;
};

double pct(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t i = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[i];
}

int run_bench(const Options& opt) {
  const runtime::Scenario scenario = make_scenario(opt.cases);
  runtime::RunOptions options;
  options.threads = 1;
  options.master_seed = 21;

  // Single-process reference bytes (and the determinism yardstick).
  std::ostringstream reference;
  std::size_t cases = 0;
  {
    runtime::ResultSink sink(scenario.name, &reference);
    cases = run_scenario(scenario, options, sink).cases;
  }

  dist::LocalSpawnOptions spawn;
  spawn.worker_binary = opt.binary.empty() ? sibling_thinair() : opt.binary;

  std::vector<WorkerPoint> points;
  for (const std::size_t workers : {1U, 2U, 4U}) {
    std::ostringstream ndjson;
    runtime::ResultSink sink(scenario.name, &ndjson);
    spawn.workers = workers;
    std::vector<double> shard_s;
    runtime::RunStats stats;
    try {
      stats = dist::run_distributed_local(scenario, options, {}, spawn, sink,
                                          &shard_s);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "micro_dist: %zu-worker run failed: %s\n", workers,
                   e.what());
      return 1;
    }
    if (ndjson.str() != reference.str()) {
      std::fprintf(stderr,
                   "micro_dist: FAILED — %zu-worker NDJSON differs from the "
                   "single-process bytes\n",
                   workers);
      return 1;
    }
    std::sort(shard_s.begin(), shard_s.end());
    WorkerPoint point;
    point.workers = workers;
    point.wall_s = stats.wall_s;
    point.cases_per_s =
        stats.wall_s > 0.0 ? static_cast<double>(cases) / stats.wall_s : 0.0;
    point.shards = shard_s.size();
    point.shard_p50_ms = pct(shard_s, 0.50) * 1e3;
    point.shard_p99_ms = pct(shard_s, 0.99) * 1e3;
    points.push_back(point);
    std::fprintf(stderr,
                 "micro_dist: %zu worker(s): %.0f cases/s over %zu shards "
                 "(shard p50 %.2f ms, p99 %.2f ms), %.2fs wall\n",
                 workers, point.cases_per_s, point.shards, point.shard_p50_ms,
                 point.shard_p99_ms, point.wall_s);
  }

  const char* path = std::getenv("BENCH_DIST_JSON");
  if (path == nullptr) path = "BENCH_dist.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"micro_dist\",\n"
               "  \"cases\": %zu,\n"
               "  \"byte_identical\": true,\n"
               "  \"runs\": [\n",
               cases);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const WorkerPoint& p = points[i];
    std::fprintf(f,
                 "    {\"workers\": %zu, \"wall_s\": %.3f, "
                 "\"cases_per_s\": %.1f, \"shards\": %zu, "
                 "\"shard_p50_ms\": %.3f, \"shard_p99_ms\": %.3f}%s\n",
                 p.workers, p.wall_s, p.cases_per_s, p.shards, p.shard_p50_ms,
                 p.shard_p99_ms, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    ++i;
    if (flag == "--cases" && value != nullptr) {
      opt.cases = static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--binary" && value != nullptr) {
      opt.binary = value;
    } else {
      std::fprintf(stderr, "usage: micro_dist [--cases K] [--binary PATH]\n");
      return 2;
    }
  }
  if (opt.cases == 0) return 2;
  return run_bench(opt);
}
