// Ablation D: y-pool construction. The class-shared pool (the paper's
// phase-2-compatible construction, our default) against the technical
// report's pair-wise construction (terminal-MDS) naively combined with the
// broadcast phase 2.
//
// This is a deliberately cautionary ablation: the pair-wise construction
// is count-robust for *each* terminal, but its per-terminal codes overlap
// in span, so the pool is redundant; phase 2 then broadcasts more coded
// packets than the joint secrecy budget and the group secret leaks. The
// numbers below demonstrate why the shared pool is not an optimisation but
// a correctness requirement of phase 2 (the paper's "key point" that phase
// 2 leaks nothing presumes a jointly-uniform pool).

#include <cstdio>
#include <iostream>

#include "testbed/sweep.h"
#include "util/table.h"

int main() {
  using namespace thinair;

  std::printf("Ablation: y-pool construction (n = 5, geometry estimator)\n\n");

  util::Table t({"pool", "rel(min)", "rel(avg)", "rel(p50)", "eff(avg)"});
  for (core::PoolStrategy s : {core::PoolStrategy::kClassShared,
                               core::PoolStrategy::kTerminalMds}) {
    testbed::SweepConfig cfg;
    cfg.n_min = 5;
    cfg.n_max = 5;
    cfg.max_placements = 16;
    cfg.session.pool_strategy = s;
    cfg.seed = 321;

    const testbed::SweepResult sweep = run_sweep(cfg);
    const testbed::SweepRow& row = sweep.rows.front();
    t.add_row({std::string(core::to_string(s)), util::fmt(row.rel_min(), 2),
               util::fmt(row.rel_avg(), 2), util::fmt(row.rel_p50(), 2),
               util::fmt(row.efficiency.mean(), 4)});
  }
  t.print(std::cout);

  std::printf(
      "\nReading: the pair-wise pool's redundant rows turn phase 2's public\n"
      "z-packets into a leak; the class-shared pool keeps the broadcast\n"
      "inside the joint secrecy budget.\n");
  return 0;
}
