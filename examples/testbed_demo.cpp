// The paper's deployment, as a runnable scenario: 8 terminals and Eve on
// the 14 m^2 3x3-cell grid, 6 perimeter jammers rotating through the 9
// noise patterns, 802.11g-like 1 Mbps MAC (Sec. 4).
//
//   $ ./examples/testbed_demo [placement-index 0..8]
//
// Prints the per-round protocol internals and the experiment's efficiency
// and reliability — the quantities behind Figure 2.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "testbed/experiment.h"
#include "testbed/placements.h"

int main(int argc, char** argv) {
  using namespace thinair;

  const auto placements = testbed::enumerate_placements(8);
  const std::size_t which =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) % placements.size() : 4;

  testbed::ExperimentConfig config;
  config.placement = placements[which];
  config.seed = 8;
  config.session.x_packets_per_round = 90;  // 10 packets per noise pattern

  std::printf("testbed: 14 m^2, 3x3 cells, Eve in cell %zu\n",
              config.placement.eve_cell.value);
  std::printf("terminals in cells:");
  for (auto c : config.placement.terminal_cells) std::printf(" %zu", c.value);
  std::printf("\nminimum Eve-terminal distance: %.2f m (cell diagonal)\n\n",
              channel::CellGrid{}.min_distance());

  const testbed::ExperimentResult result = testbed::run_experiment(config);

  std::printf("per-round outcomes (Alice role rotates):\n");
  for (const core::RoundOutcome& r : result.session.rounds)
    std::printf(
        "  alice=T%u  pool M=%2zu  group L=%2zu  secret=%5zu bits  "
        "reliability=%.2f\n",
        r.alice.value, r.pool_size, r.group_packets, r.secret_bits,
        r.leakage.reliability);

  std::printf("\ntraffic: ");
  std::cout << result.session.ledger << "\n";
  std::printf("secret      : %zu bits\n", result.session.secret_bits());
  std::printf("efficiency  : %.4f  (paper's n=8 headline: 0.038)\n",
              result.efficiency());
  std::printf("equiv. rate : %.1f secret kbps at 1 Mbps (paper: 38)\n",
              result.efficiency() * 1000.0);
  std::printf("reliability : %.3f (paper's n=8 headline: 1.0)\n",
              result.reliability());
  return 0;
}
