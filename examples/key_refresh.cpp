// Continuous key refresh — the application the paper's introduction
// motivates: use the stream of shared secret bits to keep re-keying the
// group's encryption, so no long-lived key material ever exists ([4]'s
// dynamic-secrets idea), and authenticate the control plane with one-time
// MACs fed from the same pool (the active-adversary defence of Sec. 2).
//
//   $ ./examples/key_refresh

#include <cstdio>
#include <string>

#include "auth/authenticator.h"
#include "channel/erasure.h"
#include "core/secret.h"
#include "core/session.h"
#include "net/medium.h"

namespace {

// Toy encryption for the demo: XOR with a fresh 16-byte key per message —
// one-time-pad semantics as long as keys are never reused, which the
// SecretPool guarantees by construction.
std::vector<std::uint8_t> xor_crypt(const std::string& text,
                                    const std::vector<std::uint8_t>& key) {
  std::vector<std::uint8_t> out(text.begin(), text.end());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<std::uint8_t>(out[i] ^ key[i % key.size()]);
  return out;
}

}  // namespace

int main() {
  using namespace thinair;

  channel::IidErasure channel(0.5);
  net::SimMedium medium(channel, channel::Rng(7));
  for (std::uint16_t id = 0; id < 4; ++id)
    medium.attach(packet::NodeId{id}, net::Role::kTerminal);
  medium.attach(packet::NodeId{4}, net::Role::kEavesdropper);

  core::SessionConfig config;
  config.x_packets_per_round = 120;
  config.rounds = 4;
  config.estimator.kind = core::EstimatorKind::kLooFraction;
  core::GroupSecretSession session(medium, config);

  // Every group member keeps an identical pool + authenticator; we model
  // one of each (the session already verified all terminals agree).
  core::SecretPool pool;
  auth::Authenticator sender({});
  auth::Authenticator receiver({});

  const std::string messages[] = {
      "flanking route clear at 0300",
      "supply drop moved to grid 7",
      "rotate to channel 11 after next burst",
  };

  std::size_t refreshed_keys = 0;
  for (const std::string& msg : messages) {
    // Refill from thin air whenever the pool runs low.
    while (pool.available() < 16 + auth::MacKey::kBytes) {
      const core::SessionResult r = session.run();
      pool.deposit(r.secret);
      std::printf("[refresh] +%zu secret bits (reliability %.2f)\n",
                  r.secret_bits(), r.reliability());
    }

    const auto key = pool.draw(16);
    const auto mac_key = pool.draw(auth::MacKey::kBytes);
    ++refreshed_keys;

    auto cipher = xor_crypt(msg, *key);
    sender.refill(*mac_key);
    receiver.refill(*mac_key);
    const auto signed_msg = sender.sign(cipher);

    std::printf("[send] key #%zu, %zu-byte ciphertext, tag %016llx\n",
                refreshed_keys, cipher.size(),
                static_cast<unsigned long long>(signed_msg->tag.value));

    // Receiver side: verify, then decrypt with the same drawn key.
    if (!receiver.verify(*signed_msg)) {
      std::printf("  !! authentication failed\n");
      return 1;
    }
    const auto plain = xor_crypt(
        std::string(signed_msg->body.begin(), signed_msg->body.end()), *key);
    std::printf("[recv] verified + decrypted: \"%s\"\n",
                std::string(plain.begin(), plain.end()).c_str());
  }

  std::printf(
      "\n%zu messages protected with %zu one-time keys; %zu secret bits "
      "left in the pool.\n",
      std::size(messages), refreshed_keys, pool.available() * 8);
  std::printf(
      "No RSA keypair, no master key: compromise yesterday's state and\n"
      "you still cannot read tomorrow's traffic.\n");
  return 0;
}
