// Quickstart: three terminals agree on a shared secret over a lossy
// broadcast channel while an eavesdropper listens in.
//
//   $ ./examples/quickstart
//
// Walks the public API end to end: build a channel, attach nodes to the
// medium, run a GroupSecretSession, inspect the secret and what Eve
// learned about it.

#include <cmath>
#include <cstdio>

#include "channel/erasure.h"
#include "core/session.h"
#include "net/medium.h"

int main() {
  using namespace thinair;

  // 1. A broadcast erasure channel: every transmitted packet is lost
  //    independently by each receiver with probability 0.5 (a noisy room).
  channel::IidErasure channel(0.5);

  // 2. The shared medium: three terminals (Alice, Bob, Calvin in the
  //    paper's naming) and one passive eavesdropper.
  net::SimMedium medium(channel, channel::Rng(/*seed=*/2012));
  for (std::uint16_t id = 0; id < 3; ++id)
    medium.attach(packet::NodeId{id}, net::Role::kTerminal);
  medium.attach(packet::NodeId{3}, net::Role::kEavesdropper);

  // 3. Configure the protocol. Each round one terminal plays Alice and
  //    broadcasts N x-packets; the estimator decides how much secrecy to
  //    distil from what Eve plausibly missed.
  core::SessionConfig config;
  config.x_packets_per_round = 120;
  config.payload_bytes = 100;           // the paper's packet size
  config.rounds = 3;                    // one full rotation
  config.estimator.kind = core::EstimatorKind::kLooFraction;

  core::GroupSecretSession session(medium, config);
  const core::SessionResult result = session.run();

  // 4. Every terminal now holds the same `result.secret` bytes. The
  //    session also measured exactly what Eve could infer.
  std::printf("group secret: %zu bits (%zu bytes)\n", result.secret_bits(),
              result.secret.size());
  std::printf("first bytes : ");
  for (std::size_t i = 0; i < std::min<std::size_t>(16, result.secret.size());
       ++i)
    std::printf("%02x", result.secret[i]);
  std::printf("...\n");

  std::printf("reliability : %.3f (Eve guesses each bit w.p. %.3f)\n",
              result.reliability(),
              std::exp2(-result.reliability()));
  std::printf("efficiency  : %.4f secret bits per transmitted bit\n",
              result.efficiency());
  std::printf("airtime     : %.3f s -> %.0f secret bits/s\n",
              result.duration_s, result.secret_rate_bps());

  for (const core::RoundOutcome& round : result.rounds)
    std::printf("  round: alice=T%u N=%zu M=%zu L=%zu reliability=%.2f\n",
                round.alice.value, round.universe, round.pool_size,
                round.group_packets, round.leakage.reliability);
  return 0;
}
