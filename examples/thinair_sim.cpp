// thinair_sim — a parameterized command-line driver for the simulator, the
// tool a downstream user reaches for first.
//
//   $ ./examples/thinair_sim --n 6 --packets 90 --estimator geometry
//         --placements 20 --seed 42        (one line)
//
// Runs testbed experiments for one group size and prints per-placement and
// aggregate reliability/efficiency. All flags are optional.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "testbed/sweep.h"
#include "util/table.h"

namespace {

using namespace thinair;

struct Options {
  std::size_t n = 6;
  std::size_t packets = 90;
  std::size_t placements = 12;
  std::size_t rounds = 0;  // 0 = full rotation
  std::uint64_t seed = 1;
  bool interference = true;
  bool rotate = true;
  bool unicast = false;
  bool verbose = false;
  core::EstimatorKind estimator = core::EstimatorKind::kGeometry;
  double safety = 0.75;
};

core::EstimatorKind parse_estimator(const std::string& name) {
  if (name == "oracle") return core::EstimatorKind::kOracle;
  if (name == "loo") return core::EstimatorKind::kLeaveOneOut;
  if (name == "ksubset") return core::EstimatorKind::kKSubset;
  if (name == "fraction") return core::EstimatorKind::kFraction;
  if (name == "loo-fraction") return core::EstimatorKind::kLooFraction;
  if (name == "slot-fraction") return core::EstimatorKind::kSlotFraction;
  if (name == "geometry") return core::EstimatorKind::kGeometry;
  std::fprintf(stderr, "unknown estimator '%s'\n", name.c_str());
  std::exit(2);
}

void usage() {
  std::printf(
      "thinair_sim: run secret-agreement experiments on the simulated "
      "testbed\n"
      "  --n K            group size, 2..8 (default 6)\n"
      "  --packets N      x-packets per round (default 90)\n"
      "  --placements P   placements to try, 0 = all (default 12)\n"
      "  --rounds R       rounds per experiment, 0 = one per terminal\n"
      "  --estimator E    oracle|loo|ksubset|fraction|loo-fraction|\n"
      "                   slot-fraction|geometry (default geometry)\n"
      "  --safety S       estimator safety factor (default 0.75)\n"
      "  --seed X         RNG seed (default 1)\n"
      "  --no-interference  switch the jammers off\n"
      "  --no-rotation      fixed Alice\n"
      "  --unicast          run the unicast baseline instead\n"
      "  --verbose          per-placement rows\n");
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--n") opt.n = std::strtoul(next(), nullptr, 10);
    else if (a == "--packets") opt.packets = std::strtoul(next(), nullptr, 10);
    else if (a == "--placements")
      opt.placements = std::strtoul(next(), nullptr, 10);
    else if (a == "--rounds") opt.rounds = std::strtoul(next(), nullptr, 10);
    else if (a == "--estimator") opt.estimator = parse_estimator(next());
    else if (a == "--safety") opt.safety = std::strtod(next(), nullptr);
    else if (a == "--seed") opt.seed = std::strtoull(next(), nullptr, 10);
    else if (a == "--no-interference") opt.interference = false;
    else if (a == "--no-rotation") opt.rotate = false;
    else if (a == "--unicast") opt.unicast = true;
    else if (a == "--verbose") opt.verbose = true;
    else if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", a.c_str());
      usage();
      std::exit(2);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  testbed::SweepConfig cfg;
  cfg.n_min = cfg.n_max = opt.n;
  cfg.max_placements = opt.placements;
  cfg.seed = opt.seed;
  cfg.unicast_baseline = opt.unicast;
  cfg.channel.interference_enabled = opt.interference;
  cfg.session.x_packets_per_round = opt.packets;
  cfg.session.rounds = opt.rounds;
  cfg.session.rotate_alice = opt.rotate;
  cfg.session.estimator.kind = opt.estimator;
  cfg.session.estimator.loo_safety = opt.safety;

  std::printf(
      "thinair_sim: n=%zu packets=%zu estimator=%s interference=%s "
      "algorithm=%s seed=%llu\n\n",
      opt.n, opt.packets, std::string(core::to_string(opt.estimator)).c_str(),
      opt.interference ? "on" : "off", opt.unicast ? "unicast" : "group",
      static_cast<unsigned long long>(opt.seed));

  if (opt.verbose) {
    // Per-placement rows, then the aggregate.
    const auto placements = testbed::sample_placements(opt.n, opt.placements);
    util::Table t({"placement", "eve cell", "reliability", "efficiency",
                   "secret bits"});
    channel::Rng seeder(opt.seed);
    for (std::size_t i = 0; i < placements.size(); ++i) {
      testbed::ExperimentConfig ec;
      ec.placement = placements[i];
      ec.session = cfg.session;
      ec.channel = cfg.channel;
      ec.seed = seeder.next_u64();
      const auto r = opt.unicast ? testbed::run_unicast_experiment(ec)
                                 : testbed::run_experiment(ec);
      t.add_row({std::to_string(i),
                 std::to_string(r.placement.eve_cell.value),
                 util::fmt(r.reliability(), 3), util::fmt(r.efficiency(), 4),
                 std::to_string(r.session.secret_bits())});
    }
    t.print(std::cout);
    std::printf("\n");
  }

  const testbed::SweepResult sweep = run_sweep(cfg);
  const testbed::SweepRow& row = sweep.rows.front();
  util::Table t({"experiments", "rel(min)", "rel(p95)", "rel(avg)",
                 "rel(p50)", "eff(min)", "eff(avg)", "kbps@1Mbps"});
  t.add_row({std::to_string(row.experiments), util::fmt(row.rel_min(), 3),
             util::fmt(row.rel_p95(), 3), util::fmt(row.rel_avg(), 3),
             util::fmt(row.rel_p50(), 3), util::fmt(row.efficiency.min(), 4),
             util::fmt(row.efficiency.mean(), 4),
             util::fmt(row.efficiency.mean() * 1000.0, 1)});
  t.print(std::cout);
  return 0;
}
