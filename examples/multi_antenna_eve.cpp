// The paper's hardest open challenge (Sec. 6): an adversary with multiple
// antennas. We model a k-antenna Eve as k eavesdropper nodes in distinct
// cells whose receptions are pooled, and measure how reliability degrades
// with k — plus the defence Sec. 3.3 proposes: size the secrets against
// k-subsets of terminals (the KSubset estimator).
//
//   $ ./examples/multi_antenna_eve

#include <cstdio>

#include "core/session.h"
#include "testbed/layout.h"
#include "testbed/placements.h"

namespace {

using namespace thinair;

struct Outcome {
  double reliability;
  double efficiency;
};

Outcome run(std::size_t eve_antennas, std::size_t defend_k,
            std::uint64_t seed) {
  // 5 terminals in cells 0..4; Eve's antennas take cells 5, 7, 8 — all at
  // least the minimum distance from every terminal.
  const std::size_t n = 5;
  testbed::Placement placement;
  for (std::size_t i = 0; i < n; ++i)
    placement.terminal_cells.push_back(channel::CellIndex{i});
  placement.eve_cell = channel::CellIndex{5};

  channel::TestbedChannel ch = testbed::build_channel(placement);
  const std::size_t antenna_cells[] = {5, 7, 8};
  net::SimMedium medium(ch, channel::Rng(seed));
  for (std::size_t i = 0; i < n; ++i)
    medium.attach(testbed::terminal_node(i), net::Role::kTerminal);
  for (std::size_t a = 0; a < eve_antennas; ++a) {
    const packet::NodeId antenna{static_cast<std::uint16_t>(n + a)};
    ch.place_in_cell(antenna, channel::CellIndex{antenna_cells[a]});
    medium.attach(antenna, net::Role::kEavesdropper);
  }

  core::SessionConfig cfg;
  cfg.x_packets_per_round = 90;
  cfg.estimator.kind = core::EstimatorKind::kGeometry;
  cfg.estimator.k_antennas = defend_k;  // free-cell k-subset hypotheses
  for (channel::CellIndex c : placement.terminal_cells)
    cfg.estimator.occupied_cells.push_back(c.value);

  core::GroupSecretSession session(medium, cfg);
  const core::SessionResult r = session.run();
  return {r.reliability(), r.efficiency()};
}

}  // namespace

int main() {
  std::printf(
      "Multi-antenna Eve on the testbed (5 terminals; antennas pooled)\n\n");
  std::printf("%-26s %-12s %-12s\n", "scenario", "reliability", "efficiency");

  for (std::size_t antennas = 1; antennas <= 3; ++antennas) {
    const Outcome o = run(antennas, 1, 42);
    std::printf("%zu antenna(s), default est.   %-12.3f %-12.4f\n", antennas,
                o.reliability, o.efficiency);
  }

  std::printf("\nDefending with the k-subset estimator (Sec. 3.3):\n");
  for (std::size_t k = 1; k <= 3; ++k) {
    const Outcome o = run(3, k, 42);
    std::printf("3 antennas, defend k=%zu       %-12.3f %-12.4f\n", k,
                o.reliability, o.efficiency);
  }

  std::printf(
      "\nReading: each extra antenna erodes the single-location secrecy\n"
      "assumption; defending against a k-antenna Eve costs efficiency, the\n"
      "trade-off the paper flags as its main open challenge.\n");
  return 0;
}
