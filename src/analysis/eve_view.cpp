#include "analysis/eve_view.h"

#include <tuple>

namespace thinair::analysis {

EveView::EveView(std::size_t universe) : space_(universe) {}

void EveView::observe_x(std::uint32_t index) {
  // Whether the observation grew Eve's span is irrelevant here; the
  // equivocation queries read the resulting rank directly.
  std::ignore = space_.insert_unit(index);
}

void EveView::observe_x(const std::vector<std::uint32_t>& indices) {
  for (std::uint32_t i : indices) observe_x(i);
}

void EveView::observe_combinations(const gf::Matrix& rows) {
  space_.insert_rows(rows);
}

void EveView::observe_coded(const gf::Matrix& rows, const gf::Matrix& basis,
                            packet::PayloadArena& arena) {
  space_.insert_rows(rows.mul(basis, arena));
}

std::size_t EveView::equivocation(const gf::Matrix& secret_rows) const {
  return space_.residual_rank(secret_rows);
}

}  // namespace thinair::analysis
