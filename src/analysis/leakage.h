#pragma once
// The paper's reliability metric (Sec. 4).
//
// "Reliability r means that Eve can correctly guess each bit of the shared
// group secret with probability 2^-r." With S the secret's combination
// matrix (L rows) and V Eve's view, the equivocation H(S | V) equals
// (rank([V; S]) - rank(V)) symbols; spreading it per secret bit gives
//   r = equivocation_dims / L          in [0, 1],
// r = 1 meaning Eve knows nothing and r = 0 meaning the secret leaked
// entirely. Eve's per-bit guessing probability is 2^-r and her probability
// of guessing an entire b-bit secret is 2^(-r*b).

#include <cstddef>

#include "analysis/eve_view.h"

namespace thinair::analysis {

struct LeakageReport {
  std::size_t secret_dims = 0;        // L (per-symbol dimensions)
  std::size_t hidden_dims = 0;        // equivocation
  std::size_t leaked_dims = 0;        // L - equivocation
  double reliability = 1.0;           // hidden / L (1.0 when L == 0)

  /// Probability that Eve guesses one secret bit correctly: 2^-r.
  [[nodiscard]] double per_bit_guess_probability() const;
  /// Probability that Eve guesses all `secret_bits` bits: 2^(-r*bits).
  [[nodiscard]] double full_guess_probability(std::size_t secret_bits) const;
};

/// Compare Eve's view with the secret's combination rows.
[[nodiscard]] LeakageReport compute_leakage(const EveView& view,
                                            const gf::Matrix& secret_rows);

}  // namespace thinair::analysis
