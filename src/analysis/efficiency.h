#pragma once
// Closed-form efficiency of the two algorithms under Figure 1's
// simplifying assumptions (Sec. 3.2): every terminal's channel from Alice
// and Eve's channel all erase i.i.d. with probability p, and Alice's
// estimate of Eve's misses is exact (the oracle estimator).
//
// Per transmitted x-packet:
//   - a given terminal shares it w.p. (1 - p), and Eve misses a shared one
//     w.p. p, so every pair-wise secret has expected size  L/N = p(1 - p);
//   - the y-pool covers every packet some terminal received and Eve
//     missed:                                   M/N = p(1 - p^(n-1)).
// The group algorithm transmits N x-packets plus (M - L) z-packets:
//   eff_group(p, n) = p(1-p) / (1 + p^2 (1 - p^(n-2))),
// which degrades gracefully to p(1-p)/(1+p^2) as n -> infinity.
// The unicast algorithm instead pads the group secret to each of the n - 2
// remaining terminals separately:
//   eff_unicast(p, n) = p(1-p) / (1 + (n-2) p(1-p))  ->  0 as n -> infinity
// — the scalability failure Figure 1 illustrates.

#include <cstddef>

namespace thinair::analysis {

/// Expected pair-wise secret size per x-packet: L/N = p(1-p).
[[nodiscard]] double expected_secret_fraction(double p);

/// Expected y-pool size per x-packet: M/N = p(1 - p^(n-1)).
[[nodiscard]] double expected_pool_fraction(double p, std::size_t n);

/// Maximum efficiency of the paper's (group) algorithm for n >= 2
/// terminals at erasure probability p.
[[nodiscard]] double group_efficiency(double p, std::size_t n);

/// Limit of group_efficiency as n -> infinity: p(1-p) / (1 + p^2).
[[nodiscard]] double group_efficiency_inf(double p);

/// Maximum efficiency of the unicast baseline for n >= 2 terminals.
[[nodiscard]] double unicast_efficiency(double p, std::size_t n);

/// Limit of unicast_efficiency as n -> infinity (identically 0 for p in
/// (0, 1)).
[[nodiscard]] double unicast_efficiency_inf(double p);

}  // namespace thinair::analysis
