#include "analysis/efficiency.h"

#include <cmath>
#include <stdexcept>

namespace thinair::analysis {

namespace {
void check_p(double p) {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("efficiency: p outside [0, 1]");
}
void check_n(std::size_t n) {
  if (n < 2) throw std::invalid_argument("efficiency: n < 2");
}
}  // namespace

double expected_secret_fraction(double p) {
  check_p(p);
  return p * (1.0 - p);
}

double expected_pool_fraction(double p, std::size_t n) {
  check_p(p);
  check_n(n);
  return p * (1.0 - std::pow(p, static_cast<double>(n - 1)));
}

double group_efficiency(double p, std::size_t n) {
  check_p(p);
  check_n(n);
  const double l = expected_secret_fraction(p);
  const double m = expected_pool_fraction(p, n);
  return l / (1.0 + m - l);
}

double group_efficiency_inf(double p) {
  check_p(p);
  return p * (1.0 - p) / (1.0 + p * p);
}

double unicast_efficiency(double p, std::size_t n) {
  check_p(p);
  check_n(n);
  const double l = expected_secret_fraction(p);
  return l / (1.0 + static_cast<double>(n - 2) * l);
}

double unicast_efficiency_inf(double p) {
  check_p(p);
  return 0.0;
}

}  // namespace thinair::analysis
