#include "analysis/leakage.h"

#include <cmath>

namespace thinair::analysis {

double LeakageReport::per_bit_guess_probability() const {
  return std::exp2(-reliability);
}

double LeakageReport::full_guess_probability(std::size_t secret_bits) const {
  return std::exp2(-reliability * static_cast<double>(secret_bits));
}

LeakageReport compute_leakage(const EveView& view,
                              const gf::Matrix& secret_rows) {
  LeakageReport report;
  report.secret_dims = secret_rows.rows();
  report.hidden_dims = view.equivocation(secret_rows);
  report.leaked_dims = report.secret_dims - report.hidden_dims;
  report.reliability =
      report.secret_dims == 0
          ? 1.0
          : static_cast<double>(report.hidden_dims) /
                static_cast<double>(report.secret_dims);
  return report;
}

}  // namespace thinair::analysis
