#pragma once
// Eve's exact knowledge, as linear algebra.
//
// In the erasure model every payload-bearing signal Eve can use is a
// *linear functional* of the round's N x-packet payloads (applied
// symbol-wise over GF(2^8)):
//   - an x-packet she received  -> a unit functional;
//   - a public z-packet content -> the z's combination row (z = H G x);
//   - a ciphertext of the unicast baseline -> secret row + pad row.
// Combination *identities* (reports, announcements) are public coefficients
// and carry no payload information, so they enter the analysis only through
// the matrices above. EveView accumulates the functionals in a LinearSpace;
// secrecy questions become rank queries.

#include <cstdint>
#include <vector>

#include "gf/linear_space.h"
#include "gf/matrix.h"
#include "packet/arena.h"

namespace thinair::analysis {

class EveView {
 public:
  /// `universe` = N, the number of x-packets in the round.
  explicit EveView(std::size_t universe);

  /// Eve received x-packet `index` off the air.
  void observe_x(std::uint32_t index);
  void observe_x(const std::vector<std::uint32_t>& indices);

  /// Eve learned the content of linear combinations of the x-packets
  /// (rows are combination vectors in x-space, e.g. H*G for z-packets).
  void observe_combinations(const gf::Matrix& rows);

  /// Eve learned coded contents rows * basis * x (e.g. phase 2's public
  /// z-broadcast: rows = H over y-space, basis = G over x-space). The
  /// product matrix is carved from `arena` — per-round scratch instead of
  /// a heap allocation per observation — and fed through the fused
  /// dot_multi gather product (each H*G row accumulates from blocks of
  /// G's rows), then insert()'s gather-based elimination.
  void observe_coded(const gf::Matrix& rows, const gf::Matrix& basis,
                     packet::PayloadArena& arena);

  [[nodiscard]] std::size_t universe() const { return space_.dim(); }
  /// Dimension of everything Eve knows.
  [[nodiscard]] std::size_t knowledge_rank() const { return space_.rank(); }

  /// How many of the secret's dimensions remain *unknown* to Eve:
  /// rank([view; secret_rows]) - rank(view). Equals the per-symbol
  /// equivocation H(S | Eve) in GF(2^8) symbols.
  [[nodiscard]] std::size_t equivocation(const gf::Matrix& secret_rows) const;

  [[nodiscard]] const gf::LinearSpace& space() const { return space_; }

 private:
  gf::LinearSpace space_;
};

}  // namespace thinair::analysis
