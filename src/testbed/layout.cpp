#include "testbed/layout.h"

#include <set>

namespace thinair::testbed {

bool Placement::valid() const {
  std::set<std::size_t> used;
  for (channel::CellIndex c : terminal_cells) {
    if (c.value >= channel::CellGrid::kCells) return false;
    if (!used.insert(c.value).second) return false;
  }
  if (eve_cell.value >= channel::CellGrid::kCells) return false;
  return !used.contains(eve_cell.value);
}

channel::TestbedChannel build_channel(const Placement& placement,
                                      channel::TestbedChannel::Config config) {
  channel::TestbedChannel ch(config);
  for (std::size_t i = 0; i < placement.terminal_cells.size(); ++i)
    ch.place_in_cell(terminal_node(i), placement.terminal_cells[i]);
  ch.place_in_cell(eve_node(placement.n_terminals()), placement.eve_cell);
  return ch;
}

}  // namespace thinair::testbed
