#include "testbed/sweep.h"

#include <stdexcept>
#include <string>

#include "runtime/engine.h"
#include "runtime/scenario_spec.h"

namespace thinair::testbed {

// run_sweep keeps its struct-config signature for the bench/example
// callers, but is now a thin wrapper over the declarative scenario layer:
// it builds a ScenarioSpec, compiles it through the same path as every
// `thinair run --spec` scenario, and reads the per-n aggregates back out
// of the sink. Case enumeration (n-major, then placement) and per-case
// seed derivation are identical to the previous hand-rolled plumbing, so
// results are sample-for-sample unchanged.
SweepResult run_sweep(const SweepConfig& config) {
  if (config.n_min < 2 || config.n_max > 8 || config.n_min > config.n_max)
    throw std::invalid_argument("run_sweep: n range outside [2, 8]");

  runtime::SessionSpec session;
  session.x_packets = config.session.x_packets_per_round;
  session.payload_bytes = config.session.payload_bytes;
  session.rounds = config.session.rounds;
  session.rotate_alice = config.session.rotate_alice;
  session.pool = config.session.pool_strategy;

  runtime::ScenarioSpec spec;
  spec.with_name("testbed-sweep")
      .on_testbed(config.channel)
      .with_n_range(config.n_min, config.n_max)
      .with_placement_cap(config.max_placements)
      .with_session(session)
      .with_estimator(config.session.estimator.kind)
      .with_baseline(config.unicast_baseline ? runtime::Baseline::kUnicast
                                             : runtime::Baseline::kGroup);
  spec.estimator.k_antennas = config.session.estimator.k_antennas;
  spec.estimator.fraction_delta = config.session.estimator.fraction_delta;
  spec.estimator.safety = config.session.estimator.loo_safety;
  spec.mac = config.mac;

  const runtime::Scenario scenario = runtime::compile(spec);
  runtime::ResultSink sink(scenario.name, nullptr);
  runtime::RunOptions options;
  options.threads = config.threads;
  options.master_seed = config.seed;
  run_scenario(scenario, options, sink);

  SweepResult result;
  for (const runtime::ResultSink::GroupSummary& g : sink.summaries()) {
    SweepRow row;
    row.n = std::stoul(g.group.substr(g.group.find('=') + 1));  // "n=3"
    row.experiments = g.cases;
    row.reliability = g.metrics.at("reliability");
    row.efficiency = g.metrics.at("efficiency");
    row.secret_rate_bps = g.metrics.at("secret_rate_bps");
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace thinair::testbed
