#include "testbed/sweep.h"

#include <stdexcept>
#include <string>

#include "runtime/engine.h"

namespace thinair::testbed {

SweepResult run_sweep(const SweepConfig& config) {
  if (config.n_min < 2 || config.n_max > 8 || config.n_min > config.n_max)
    throw std::invalid_argument("run_sweep: n range outside [2, 8]");

  // Flatten the (n, placement) grid so every experiment has a dense index
  // — the runtime derives its seed from that index, which makes the sweep
  // reproducible at any thread count.
  std::vector<ExperimentConfig> cases;
  for (std::size_t n = config.n_min; n <= config.n_max; ++n) {
    for (const Placement& p : sample_placements(n, config.max_placements)) {
      ExperimentConfig exp;
      exp.placement = p;
      exp.session = config.session;
      exp.channel = config.channel;
      exp.mac = config.mac;
      cases.push_back(std::move(exp));
    }
  }

  runtime::Scenario scenario;
  scenario.name = "testbed-sweep";
  scenario.plan = [&cases] {
    // The run function indexes `cases` directly, so the plan only needs
    // to supply the case count (and thereby the seed indices).
    runtime::SweepPlan plan;
    for (std::size_t i = 0; i < cases.size(); ++i) plan.add_point({});
    return plan;
  };
  scenario.run = [&cases, &config](const runtime::CaseSpec& spec) {
    ExperimentConfig exp = cases[spec.index];
    exp.seed = spec.seed;
    exp.session.arena = &runtime::worker_arena();
    const ExperimentResult r = config.unicast_baseline
                                   ? run_unicast_experiment(exp)
                                   : run_experiment(exp);
    runtime::CaseResult out;
    out.group = std::to_string(r.n_terminals);
    out.metrics = {{"reliability", r.reliability()},
                   {"efficiency", r.efficiency()},
                   {"secret_rate_bps", r.secret_rate_bps()}};
    return out;
  };

  runtime::ResultSink sink(scenario.name, nullptr);
  runtime::RunOptions options;
  options.threads = config.threads;
  options.master_seed = config.seed;
  run_scenario(scenario, options, sink);

  SweepResult result;
  for (const runtime::ResultSink::GroupSummary& g : sink.summaries()) {
    SweepRow row;
    row.n = static_cast<std::size_t>(std::stoul(g.group));
    row.experiments = g.cases;
    row.reliability = g.metrics.at("reliability");
    row.efficiency = g.metrics.at("efficiency");
    row.secret_rate_bps = g.metrics.at("secret_rate_bps");
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace thinair::testbed
