#include "testbed/sweep.h"

#include <stdexcept>

namespace thinair::testbed {

SweepResult run_sweep(const SweepConfig& config) {
  if (config.n_min < 2 || config.n_max > 8 || config.n_min > config.n_max)
    throw std::invalid_argument("run_sweep: n range outside [2, 8]");

  SweepResult result;
  channel::Rng seeder(config.seed);

  for (std::size_t n = config.n_min; n <= config.n_max; ++n) {
    SweepRow row;
    row.n = n;
    const std::vector<Placement> placements =
        sample_placements(n, config.max_placements);

    for (const Placement& p : placements) {
      ExperimentConfig exp;
      exp.placement = p;
      exp.session = config.session;
      exp.channel = config.channel;
      exp.mac = config.mac;
      exp.seed = seeder.next_u64();

      const ExperimentResult r = config.unicast_baseline
                                     ? run_unicast_experiment(exp)
                                     : run_experiment(exp);
      row.reliability.add(r.reliability());
      row.efficiency.add(r.efficiency());
      row.secret_rate_bps.add(r.secret_rate_bps());
      ++row.experiments;
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace thinair::testbed
