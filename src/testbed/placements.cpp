#include "testbed/placements.h"

#include <stdexcept>

namespace thinair::testbed {

namespace {

std::size_t binomial(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  std::size_t r = 1;
  for (std::size_t i = 0; i < k; ++i) r = r * (n - i) / (i + 1);
  return r;
}

}  // namespace

std::size_t placement_count(std::size_t n_terminals) {
  if (n_terminals == 0 || n_terminals > 8)
    throw std::invalid_argument("placement_count: n outside [1, 8]");
  return channel::CellGrid::kCells * binomial(8, n_terminals);
}

std::vector<Placement> enumerate_placements(std::size_t n_terminals) {
  if (n_terminals == 0 || n_terminals > 8)
    throw std::invalid_argument("enumerate_placements: n outside [1, 8]");

  std::vector<Placement> out;
  out.reserve(placement_count(n_terminals));

  for (std::size_t eve = 0; eve < channel::CellGrid::kCells; ++eve) {
    std::vector<std::size_t> free_cells;
    for (std::size_t c = 0; c < channel::CellGrid::kCells; ++c)
      if (c != eve) free_cells.push_back(c);

    // Lexicographic k-combinations of the 8 free cells.
    std::vector<std::size_t> pick(n_terminals);
    for (std::size_t i = 0; i < n_terminals; ++i) pick[i] = i;
    for (;;) {
      Placement p;
      p.eve_cell = channel::CellIndex{eve};
      for (std::size_t i : pick)
        p.terminal_cells.push_back(channel::CellIndex{free_cells[i]});
      out.push_back(std::move(p));

      // Advance.
      std::size_t i = n_terminals;
      while (i > 0) {
        --i;
        if (pick[i] != i + free_cells.size() - n_terminals) break;
        if (i == 0) goto next_eve;
      }
      if (pick[i] == i + free_cells.size() - n_terminals) goto next_eve;
      ++pick[i];
      for (std::size_t j = i + 1; j < n_terminals; ++j)
        pick[j] = pick[j - 1] + 1;
    }
  next_eve:;
  }
  return out;
}

std::vector<Placement> sample_placements(std::size_t n_terminals,
                                         std::size_t max_count) {
  std::vector<Placement> all = enumerate_placements(n_terminals);
  if (max_count == 0 || all.size() <= max_count) return all;
  std::vector<Placement> out;
  out.reserve(max_count);
  // Even stride keeps the sample spread across Eve cells (enumeration is
  // Eve-cell major).
  const double step =
      static_cast<double>(all.size()) / static_cast<double>(max_count);
  for (std::size_t i = 0; i < max_count; ++i)
    out.push_back(all[static_cast<std::size_t>(static_cast<double>(i) * step)]);
  return out;
}

}  // namespace thinair::testbed
