#pragma once
// Placement sweeps: the pipeline behind Figure 2 and the Sec. 4 headline
// numbers. For each group size n, run one experiment per node placement
// and aggregate reliability and efficiency.

#include <vector>

#include "testbed/experiment.h"
#include "testbed/placements.h"
#include "util/stats.h"

namespace thinair::testbed {

struct SweepConfig {
  std::size_t n_min = 3;
  std::size_t n_max = 8;
  /// Cap on placements per n (0 = every possible positioning).
  std::size_t max_placements = 0;
  core::SessionConfig session;
  channel::TestbedChannel::Config channel;
  net::MacParams mac;
  std::uint64_t seed = 1;
  bool unicast_baseline = false;  // run the Figure-1 baseline instead
  /// Worker threads for the runtime engine (0 = hardware concurrency).
  /// Results are bit-identical for every value: each experiment's seed
  /// derives from (seed, experiment index), never from run order.
  std::size_t threads = 0;
};

/// Aggregates for one group size: the four Figure-2 series plus
/// efficiency.
struct SweepRow {
  std::size_t n = 0;
  std::size_t experiments = 0;
  util::Summary reliability;
  util::Summary efficiency;
  util::Summary secret_rate_bps;

  [[nodiscard]] double rel_min() const { return reliability.min(); }
  [[nodiscard]] double rel_avg() const { return reliability.mean(); }
  /// Reliability achieved during 95% of the experiments (Fig. 2 triangles).
  [[nodiscard]] double rel_p95() const { return reliability.exceeded_by(0.95); }
  /// Reliability achieved during 50% of the experiments (Fig. 2 squares).
  [[nodiscard]] double rel_p50() const { return reliability.exceeded_by(0.50); }
};

struct SweepResult {
  std::vector<SweepRow> rows;  // one per n, ascending
};

[[nodiscard]] SweepResult run_sweep(const SweepConfig& config);

}  // namespace thinair::testbed
