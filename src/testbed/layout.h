#pragma once
// The paper's deployment (Sec. 4): a 14 m^2 indoor area divided into 9
// logical cells; n terminals and one adversary, each in its own cell;
// 6 WARP interferers along the perimeter rotating through 9 noise
// patterns. This header fixes the node-id convention and materialises a
// TestbedChannel from a placement.

#include <vector>

#include "channel/testbed_channel.h"
#include "packet/types.h"

namespace thinair::testbed {

/// Terminals are nodes 0..n-1; Eve is node n.
[[nodiscard]] inline packet::NodeId terminal_node(std::size_t i) {
  return packet::NodeId{static_cast<std::uint16_t>(i)};
}
[[nodiscard]] inline packet::NodeId eve_node(std::size_t n_terminals) {
  return packet::NodeId{static_cast<std::uint16_t>(n_terminals)};
}

/// Where everyone stands: one distinct cell per node (the paper's rule —
/// "each cell is occupied by at most one node").
struct Placement {
  std::vector<channel::CellIndex> terminal_cells;
  channel::CellIndex eve_cell{0};

  [[nodiscard]] std::size_t n_terminals() const {
    return terminal_cells.size();
  }

  /// True when all cells are distinct and Eve's cell is unused by
  /// terminals.
  [[nodiscard]] bool valid() const;
};

/// Build the testbed channel with every node placed at its cell centre.
[[nodiscard]] channel::TestbedChannel build_channel(
    const Placement& placement,
    channel::TestbedChannel::Config config = {});

}  // namespace thinair::testbed
