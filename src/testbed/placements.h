#pragma once
// Node-placement enumeration (Sec. 4: "We run one such experiment for each
// possible positioning of n terminals and Eve").
//
// A positioning = an Eve cell plus a set of n terminal cells among the
// remaining 8 (terminal identities are interchangeable, so order within
// the set does not matter). That gives 9 * C(8, n) placements per n —
// 504 for n = 3 down to 9 for n = 8. For quick runs a deterministic
// subsample is available.

#include <vector>

#include "channel/rng.h"
#include "testbed/layout.h"

namespace thinair::testbed {

/// Number of placements for n terminals: 9 * C(8, n). Requires n <= 8.
[[nodiscard]] std::size_t placement_count(std::size_t n_terminals);

/// All placements for n terminals, deterministic order (Eve cell major,
/// then lexicographic terminal-cell sets).
[[nodiscard]] std::vector<Placement> enumerate_placements(
    std::size_t n_terminals);

/// At most `max_count` placements: the full enumeration when it fits,
/// otherwise an evenly strided subsample (deterministic, covers all Eve
/// cells roughly uniformly).
[[nodiscard]] std::vector<Placement> sample_placements(std::size_t n_terminals,
                                                       std::size_t max_count);

}  // namespace thinair::testbed
