#pragma once
// One testbed experiment (Sec. 4): place n terminals and Eve, run one full
// protocol pass (every terminal plays Alice once, rotating through the 9
// noise patterns), and score efficiency + reliability.

#include <optional>
#include <vector>

#include "core/session.h"
#include "core/unicast.h"
#include "runtime/object_pool.h"
#include "testbed/layout.h"

namespace thinair::testbed {

struct ExperimentConfig {
  Placement placement;
  /// Optional explicit coordinates (metres) overriding the cell centres;
  /// aligned with placement.terminal_cells. The placement's cells stay
  /// authoritative for the interference schedule and the geometry
  /// estimator, so each position should lie inside its node's cell.
  std::vector<channel::Vec2> terminal_positions;
  std::optional<channel::Vec2> eve_position;
  core::SessionConfig session;  // rounds == 0 -> full rotation
  channel::TestbedChannel::Config channel;
  net::MacParams mac;  // defaults match the paper: 1 Mbps, 12 ms slots
  std::uint64_t seed = 1;
  /// When set, the experiment's session is acquired from these free-list
  /// pools instead of constructed (the engine passes its per-worker
  /// pools). Acquire is construction-equivalent (reset() contract), so
  /// results are byte-identical either way. Null = construct locally.
  runtime::ObjectPool<core::GroupSecretSession>* group_pool = nullptr;
  runtime::ObjectPool<core::UnicastSession>* unicast_pool = nullptr;
};

struct ExperimentResult {
  core::SessionResult session;
  std::size_t n_terminals = 0;
  Placement placement;

  [[nodiscard]] double reliability() const { return session.reliability(); }
  [[nodiscard]] double efficiency() const { return session.efficiency(); }
  [[nodiscard]] double secret_rate_bps() const {
    return session.secret_rate_bps();
  }
};

/// Run a single experiment. Deterministic given the config.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

/// Same, with the unicast baseline instead of the group algorithm.
[[nodiscard]] ExperimentResult run_unicast_experiment(
    const ExperimentConfig& config);

}  // namespace thinair::testbed
