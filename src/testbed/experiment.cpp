#include "testbed/experiment.h"

#include <stdexcept>
#include <type_traits>

#include "core/unicast.h"

namespace thinair::testbed {

namespace {

template <typename Session>
ExperimentResult run_with(const ExperimentConfig& config) {
  if (!config.placement.valid())
    throw std::invalid_argument("run_experiment: invalid placement");

  const std::size_t n = config.placement.n_terminals();
  if (!config.terminal_positions.empty() &&
      config.terminal_positions.size() != n)
    throw std::invalid_argument(
        "run_experiment: terminal_positions must align with the placement");

  channel::TestbedChannel ch = build_channel(config.placement, config.channel);
  for (std::size_t i = 0; i < config.terminal_positions.size(); ++i)
    ch.place(terminal_node(i), config.terminal_positions[i]);
  if (config.eve_position.has_value())
    ch.place(eve_node(n), *config.eve_position);
  net::SimMedium medium(ch, channel::Rng(config.seed), config.mac);
  for (std::size_t i = 0; i < n; ++i)
    medium.attach(terminal_node(i), net::Role::kTerminal);
  medium.attach(eve_node(n), net::Role::kEavesdropper);

  core::SessionConfig session_config = config.session;
  if (session_config.estimator.occupied_cells.empty())
    for (channel::CellIndex c : config.placement.terminal_cells)
      session_config.estimator.occupied_cells.push_back(c.value);

  runtime::ObjectPool<Session>* pool;
  if constexpr (std::is_same_v<Session, core::GroupSecretSession>)
    pool = config.group_pool;
  else
    pool = config.unicast_pool;
  if (pool != nullptr) {
    const auto session = pool->acquire_scoped(medium, session_config);
    return ExperimentResult{session->run(), n, config.placement};
  }
  Session session(medium, session_config);
  ExperimentResult result{session.run(), n, config.placement};
  return result;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  return run_with<core::GroupSecretSession>(config);
}

ExperimentResult run_unicast_experiment(const ExperimentConfig& config) {
  return run_with<core::UnicastSession>(config);
}

}  // namespace thinair::testbed
