#include "testbed/experiment.h"

#include <stdexcept>

#include "core/unicast.h"

namespace thinair::testbed {

namespace {

template <typename Session>
ExperimentResult run_with(const ExperimentConfig& config) {
  if (!config.placement.valid())
    throw std::invalid_argument("run_experiment: invalid placement");

  const std::size_t n = config.placement.n_terminals();
  channel::TestbedChannel ch = build_channel(config.placement, config.channel);
  net::Medium medium(ch, channel::Rng(config.seed), config.mac);
  for (std::size_t i = 0; i < n; ++i)
    medium.attach(terminal_node(i), net::Role::kTerminal);
  medium.attach(eve_node(n), net::Role::kEavesdropper);

  core::SessionConfig session_config = config.session;
  if (session_config.estimator.occupied_cells.empty())
    for (channel::CellIndex c : config.placement.terminal_cells)
      session_config.estimator.occupied_cells.push_back(c.value);

  Session session(medium, session_config);
  ExperimentResult result{session.run(), n, config.placement};
  return result;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  return run_with<core::GroupSecretSession>(config);
}

ExperimentResult run_unicast_experiment(const ExperimentConfig& config) {
  return run_with<core::UnicastSession>(config);
}

}  // namespace thinair::testbed
