#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace thinair::util {

void Summary::add(double v) { samples_.push_back(v); }

void Summary::add_all(const std::vector<double>& vs) {
  samples_.insert(samples_.end(), vs.begin(), vs.end());
}

std::vector<double> Summary::sorted() const {
  std::vector<double> s = samples_;
  std::sort(s.begin(), s.end());
  return s;
}

double Summary::min() const {
  if (empty()) throw std::logic_error("Summary::min: no samples");
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  if (empty()) throw std::logic_error("Summary::max: no samples");
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::mean() const {
  if (empty()) throw std::logic_error("Summary::mean: no samples");
  double sum = 0.0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::quantile(double q) const {
  if (empty()) throw std::logic_error("Summary::quantile: no samples");
  if (q < 0.0 || q > 1.0)
    throw std::invalid_argument("Summary::quantile: q outside [0, 1]");
  const std::vector<double> s = sorted();
  if (s.size() == 1) return s[0];
  const double pos = q * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return s[lo] * (1.0 - frac) + s[hi] * frac;
}

double Summary::exceeded_by(double fraction) const {
  if (empty()) throw std::logic_error("Summary::exceeded_by: no samples");
  if (fraction <= 0.0 || fraction > 1.0)
    throw std::invalid_argument("Summary::exceeded_by: fraction outside (0,1]");
  const std::vector<double> s = sorted();
  // We need the largest v with |{x : x >= v}| >= fraction * count. Taking
  // v = s[k] keeps count - k samples >= v, so the largest feasible k is
  // count - ceil(fraction * count).
  const auto need = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(s.size()) - 1e-9));
  return s[s.size() - need];
}

}  // namespace thinair::util
