#pragma once
// Annotated synchronisation wrappers for Clang Thread Safety Analysis.
//
// std::mutex and friends carry no capability attributes, so the analysis
// cannot follow them. These are zero-overhead wrappers (one inlined
// forwarding call each) that attach the attributes from
// util/thread_annotations.h:
//
//   util::Mutex      — a std::mutex that is a THINAIR_CAPABILITY.
//   util::MutexLock  — lock_guard with THINAIR_SCOPED_CAPABILITY, so the
//                      analysis knows the region between construction and
//                      destruction holds the mutex.
//   util::CondVar    — condition_variable_any over util::Mutex; wait()
//                      REQUIRES the mutex, matching the call contract.
//   util::Role       — a capability with no runtime state at all, for
//                      single-owner data: a region that calls acquire()
//                      claims the role (e.g. "I am the drainer thread"),
//                      and THINAIR_GUARDED_BY(role_) turns any touch
//                      outside such a region into a compile error. The
//                      happens-before edge itself comes from elsewhere
//                      (thread join, ctor ordering); the role makes the
//                      ownership *structure* checkable.
//
// CondVar uses condition_variable_any (wait takes any BasicLockable, so
// it can release a util::Mutex directly). Its extra bookkeeping versus
// std::condition_variable is a few tens of nanoseconds per wait — noise
// against tasks that run for milliseconds, and the wait paths it is used
// on (pool sleep/wake) are not hot.

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace thinair::util {

class THINAIR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() THINAIR_ACQUIRE() { mu_.lock(); }
  void unlock() THINAIR_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() THINAIR_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  std::mutex mu_;
};

/// RAII lock for util::Mutex — the only way code should hold one.
class THINAIR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) THINAIR_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() THINAIR_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable bound to util::Mutex. wait() must be called with
/// the mutex held (enforced statically); it releases the mutex while
/// blocked and reacquires before returning, per the usual contract.
/// Callers re-check their predicate in a while loop under the lock —
/// the predicate overload is deliberately absent so guarded reads stay
/// visible to the analysis instead of hiding inside a lambda.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) THINAIR_REQUIRES(mu) { cv_.wait(mu); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

/// A zero-size, zero-cost capability for single-owner state (see the
/// header comment). acquire()/release() are no-ops at runtime; they exist
/// so a code region can claim the role in a way the analysis tracks.
class THINAIR_CAPABILITY("role") Role {
 public:
  Role() = default;
  Role(const Role&) = delete;
  Role& operator=(const Role&) = delete;

  void acquire() const THINAIR_ACQUIRE() {}
  void release() const THINAIR_RELEASE() {}
};

/// RAII claim of a Role for the current scope.
class THINAIR_SCOPED_CAPABILITY RoleLock {
 public:
  explicit RoleLock(const Role* role) THINAIR_ACQUIRE(role) : role_(role) {
    role_->acquire();
  }
  ~RoleLock() THINAIR_RELEASE() { role_->release(); }

  RoleLock(const RoleLock&) = delete;
  RoleLock& operator=(const RoleLock&) = delete;

 private:
  const Role* role_;
};

}  // namespace thinair::util
