#include "util/parse.h"

#include <limits>

namespace thinair::util {

bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t v = 0;
  for (const char ch : text) {
    if (ch < '0' || ch > '9') return false;
    const std::uint64_t d = static_cast<std::uint64_t>(ch - '0');
    if (v > (kMax - d) / 10) return false;  // would overflow
    v = v * 10 + d;
  }
  out = v;
  return true;
}

bool parse_u64_in(std::string_view text, std::uint64_t min, std::uint64_t max,
                  std::uint64_t& out) {
  std::uint64_t v = 0;
  if (!parse_u64(text, v) || v < min || v > max) return false;
  out = v;
  return true;
}

}  // namespace thinair::util
