#pragma once
// Descriptive statistics for experiment sweeps.
//
// Figure 2 reports, per group size n, the minimum / average / 95th- and
// 50th-percentile reliability across experiments. The paper's "reliability
// achieved during 95% of the experiments" is the value exceeded (or met)
// by 95% of the samples — i.e. the 5th percentile from below — so the
// summary exposes `exceeded_by(fraction)` to avoid that ambiguity.

#include <cstddef>
#include <vector>

namespace thinair::util {

/// Accumulates samples; queries are O(n log n) on demand.
class Summary {
 public:
  void add(double v);
  void add_all(const std::vector<double>& vs);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;  // sample standard deviation

  /// q-th quantile, q in [0, 1], linear interpolation between order
  /// statistics.
  [[nodiscard]] double quantile(double q) const;

  /// Largest value v such that at least `fraction` of the samples are
  /// >= v (the paper's "minimum achieved during <fraction> of the
  /// experiments"). fraction in (0, 1].
  [[nodiscard]] double exceeded_by(double fraction) const;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  [[nodiscard]] std::vector<double> sorted() const;
  std::vector<double> samples_;
};

}  // namespace thinair::util
