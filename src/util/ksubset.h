#pragma once
// Lexicographic k-subset enumeration.
//
// Two estimators walk every k-subset of a candidate set (k-antenna Eve
// hypotheses: terminal subsets in KSubsetEstimator, free-cell subsets in
// GeometryEstimator). Both used to carry their own copy of the "next
// combination" step, one of them with a redundant double-checked
// termination test; this is the single shared implementation, exhaustively
// checked against std::prev_permutation in tests/util_test.cpp.

#include <cstddef>
#include <span>

namespace thinair::util {

/// Advance `pick` — a strictly increasing k-subset of [0, n) — to the
/// next subset in lexicographic order. Returns false (leaving `pick`
/// unchanged) when `pick` is already the last subset {n-k, ..., n-1}.
/// The canonical loop:
///
///   std::vector<std::size_t> pick(k);
///   std::iota(pick.begin(), pick.end(), 0);   // first subset
///   do { ... } while (next_k_subset(pick, n));
///
/// k == 0 enumerates exactly one (empty) subset. Requires k <= n and
/// `pick` strictly increasing with pick.back() < n.
bool next_k_subset(std::span<std::size_t> pick, std::size_t n);

}  // namespace thinair::util
