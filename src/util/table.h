#pragma once
// Minimal fixed-width console table printer for the bench binaries, so
// every regenerated figure/table prints aligned, copy-paste-friendly rows.

#include <iosfwd>
#include <string>
#include <vector>

namespace thinair::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; the cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Render with column padding, a header underline and `indent` leading
  /// spaces per line.
  void print(std::ostream& os, std::size_t indent = 2) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("0.038", "1.00", ...).
[[nodiscard]] std::string fmt(double value, int precision = 3);

}  // namespace thinair::util
