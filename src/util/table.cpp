#include "util/table.h"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace thinair::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os, std::size_t indent) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const std::string pad(indent, ' ');
  const auto print_row = [&](const std::vector<std::string>& row) {
    os << pad;
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 != row.size()) os << "  ";
    }
    os << "\n";
  };

  print_row(headers_);
  os << pad;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c], '-');
    if (c + 1 != widths.size()) os << "  ";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace thinair::util
