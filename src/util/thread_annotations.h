#pragma once
// Clang Thread Safety Analysis attribute macros.
//
// These wrap the `capability`-family attributes so lock discipline can be
// stated in the types and machine-checked at compile time: a member
// declared THINAIR_GUARDED_BY(mu_) cannot be touched on a code path that
// does not hold mu_, a function declared THINAIR_REQUIRES(mu_) cannot be
// called without it, and a THINAIR_SCOPED_CAPABILITY RAII type proves the
// acquire/release pairing. The analysis runs only under clang with
// -Wthread-safety (the CI static-analysis leg builds with it promoted to
// an error); everywhere else the macros expand to nothing, so annotated
// code costs zero on gcc/msvc.
//
// This is the static mirror of the runtime TSan job: TSan observes the
// interleavings that happened to execute, the analysis proves the locking
// argument for every path the compiler can see. See
// docs/static-analysis.md for how the layers fit together.
//
// Capabilities are not only mutexes — util/mutex.h also defines
// util::Role, a no-op capability for single-owner state (e.g. "only the
// drainer thread touches this"): acquiring the role marks the code region
// that claims ownership, and GUARDED_BY makes stray touches a compile
// error even though nothing is locked at runtime.

#if defined(__clang__) && !defined(SWIG)
#define THINAIR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define THINAIR_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// A type that models a capability (util::Mutex, util::Role).
#define THINAIR_CAPABILITY(x) THINAIR_THREAD_ANNOTATION(capability(x))

/// An RAII type whose lifetime equals a region holding a capability.
#define THINAIR_SCOPED_CAPABILITY THINAIR_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define THINAIR_GUARDED_BY(x) THINAIR_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define THINAIR_PT_GUARDED_BY(x) THINAIR_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function callable only while holding the listed capabilities.
#define THINAIR_REQUIRES(...) \
  THINAIR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function callable only while *not* holding them (deadlock guard).
#define THINAIR_EXCLUDES(...) \
  THINAIR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function that acquires the capability and returns holding it.
#define THINAIR_ACQUIRE(...) \
  THINAIR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases a held capability.
#define THINAIR_RELEASE(...) \
  THINAIR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `result`.
#define THINAIR_TRY_ACQUIRE(result, ...) \
  THINAIR_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Function returning a reference to a capability (lock accessors).
#define THINAIR_RETURN_CAPABILITY(x) \
  THINAIR_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code the analysis cannot model (e.g. init order).
/// Every use needs a written justification, same as a NOLINT.
#define THINAIR_NO_THREAD_SAFETY_ANALYSIS \
  THINAIR_THREAD_ANNOTATION(no_thread_safety_analysis)
