#include "util/ksubset.h"

namespace thinair::util {

bool next_k_subset(std::span<std::size_t> pick, std::size_t n) {
  const std::size_t k = pick.size();
  // Rightmost position not yet at its maximum value (i + n - k) can be
  // bumped; everything after it restarts densely.
  for (std::size_t i = k; i > 0;) {
    --i;
    if (pick[i] != i + n - k) {
      ++pick[i];
      for (std::size_t j = i + 1; j < k; ++j) pick[j] = pick[j - 1] + 1;
      return true;
    }
  }
  return false;
}

}  // namespace thinair::util
