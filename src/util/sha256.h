#pragma once
// Minimal SHA-256 (FIPS 180-4) for golden-artifact pinning.
//
// The runtime's determinism contract says a scenario's full NDJSON output
// is a pure function of (spec, master seed) — independent of kernel,
// thread count and case schedule. The golden-regression suite pins that
// contract as one 64-hex-character digest per scenario instead of
// megabytes of checked-in NDJSON; this is the hash it uses. Not a
// cryptographic dependency of the protocol itself (the paper's secrets
// need no hashing) — just a fingerprint, implemented here so the tests
// stay free of external libraries.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace thinair::util {

/// Streaming SHA-256. update() any number of times, then digest()/hex().
/// Finalisation is idempotent — repeated digest()/hex() calls return the
/// same value — but update() after finalising is a programming error
/// (asserted in debug builds, ignored in release).
class Sha256 {
 public:
  Sha256();

  void update(std::span<const std::uint8_t> data);
  void update(std::string_view text);

  /// Finalise (first call) and return the 32-byte digest.
  [[nodiscard]] std::array<std::uint8_t, 32> digest();

  /// Finalise and return the digest as 64 lowercase hex characters.
  [[nodiscard]] std::string hex();

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[8];
  std::uint64_t total_bytes_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
  bool finalized_ = false;
  std::array<std::uint8_t, 32> final_digest_{};
};

/// One-shot convenience: SHA-256 of `text` as lowercase hex.
[[nodiscard]] std::string sha256_hex(std::string_view text);

}  // namespace thinair::util
