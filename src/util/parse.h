#pragma once
// Strict numeric argument parsing.
//
// The CLI used to lean on strtoull, which quietly skips leading
// whitespace and accepts a sign: `--threads -1` wrapped to 2^64 - 1 and
// `--seed -1` silently ran a huge seed. These parsers accept decimal
// digits only — no whitespace, no '+'/'-', no trailing garbage, and no
// silent wraparound on overflow — and live in the library so they can be
// unit-tested (tests/cli_args_test.cpp).

#include <cstdint>
#include <string_view>

namespace thinair::util {

/// Parse `text` as a base-10 std::uint64_t. Returns false — leaving `out`
/// untouched — unless `text` is one or more decimal digits whose value
/// fits 64 bits.
[[nodiscard]] bool parse_u64(std::string_view text, std::uint64_t& out);

/// parse_u64 plus an inclusive [min, max] range check.
[[nodiscard]] bool parse_u64_in(std::string_view text, std::uint64_t min,
                                std::uint64_t max, std::uint64_t& out);

}  // namespace thinair::util
