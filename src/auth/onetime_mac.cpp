#include "auth/onetime_mac.h"

#include <stdexcept>

namespace thinair::auth {

namespace {

std::uint64_t load_le64(std::span<const std::uint8_t> bytes) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bytes.size() && i < 8; ++i)
    v |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  return v;
}

}  // namespace

MacKey MacKey::from_bytes(std::span<const std::uint8_t> bytes16) {
  if (bytes16.size() < kBytes)
    throw std::invalid_argument("MacKey::from_bytes: need 16 bytes");
  return MacKey{gf::GF64(load_le64(bytes16.subspan(0, 8))),
                gf::GF64(load_le64(bytes16.subspan(8, 8)))};
}

MacTag compute_mac(MacKey key, std::span<const std::uint8_t> msg) {
  // Horner evaluation of m_1 a + m_2 a^2 + ... + m_len a^len + len*a^(len+1):
  // process chunks in reverse so each step multiplies by a once.
  const std::size_t chunks = (msg.size() + 7) / 8;
  gf::GF64 acc(msg.size());  // length block, coefficient of a^(chunks+1)
  for (std::size_t c = chunks; c-- > 0;) {
    acc = acc * key.a;
    const std::size_t off = c * 8;
    const std::size_t len = std::min<std::size_t>(8, msg.size() - off);
    acc += gf::GF64(load_le64(msg.subspan(off, len)));
  }
  acc = acc * key.a;  // every message chunk gets degree >= 1
  return MacTag{(acc + key.b).value()};
}

bool verify_mac(MacKey key, std::span<const std::uint8_t> msg, MacTag tag) {
  // Single comparison of 64-bit words; no data-dependent early exit.
  return compute_mac(key, msg).value == tag.value;
}

}  // namespace thinair::auth
