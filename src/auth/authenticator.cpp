#include "auth/authenticator.h"

namespace thinair::auth {

Authenticator::Authenticator(std::vector<std::uint8_t> bootstrap) {
  pool_.deposit(bootstrap);
}

void Authenticator::refill(const std::vector<std::uint8_t>& secret_bytes) {
  pool_.deposit(secret_bytes);
}

std::size_t Authenticator::keys_available() const {
  return drawn_.size() - std::min<std::size_t>(drawn_.size(), next_sign_) +
         pool_.available() / MacKey::kBytes;
}

std::optional<MacKey> Authenticator::key_for(std::uint64_t sequence) {
  while (drawn_.size() <= sequence) {
    auto bytes = pool_.draw(MacKey::kBytes);
    if (!bytes.has_value()) return std::nullopt;
    drawn_.push_back(MacKey::from_bytes(*bytes));
  }
  return drawn_[sequence];
}

std::optional<AuthenticatedMessage> Authenticator::sign(
    std::vector<std::uint8_t> body) {
  const auto key = key_for(next_sign_);
  if (!key.has_value()) return std::nullopt;
  AuthenticatedMessage msg{std::move(body), next_sign_, {}};
  msg.tag = compute_mac(*key, msg.body);
  ++next_sign_;
  return msg;
}

bool Authenticator::verify(const AuthenticatedMessage& msg) {
  // One-time keys: only the next expected sequence may verify, so replayed
  // or reordered traffic is rejected outright.
  if (msg.sequence != next_verify_) return false;
  const auto key = key_for(msg.sequence);
  if (!key.has_value()) return false;
  if (!verify_mac(*key, msg.body, msg.tag)) return false;
  ++next_verify_;
  return true;
}

}  // namespace thinair::auth
