#pragma once
// Unconditionally secure one-time message authentication.
//
// The paper's active-adversary defence (Sec. 2, detailed in [9]) needs the
// terminals to authenticate the protocol's public discussion so Eve cannot
// impersonate a terminal, *without* reintroducing computational
// assumptions. The classic tool is the polynomial-evaluation one-time MAC:
// with a fresh key (a, b) in GF(2^64)^2 per message,
//     tag(m) = b + sum_{i=1..len} m_i * a^i,
// an adversary who sees one (message, tag) pair forges any other message's
// tag with probability at most len / 2^64 — information-theoretically,
// matching the secrecy model of the rest of the system. Keys are drawn
// from previously agreed secret bits (16 bytes per message).

#include <cstdint>
#include <span>

#include "gf/gf2_64.h"

namespace thinair::auth {

struct MacKey {
  gf::GF64 a;
  gf::GF64 b;

  /// Keys are consumed from the secret pool as raw bytes (little endian,
  /// 16 bytes).
  static MacKey from_bytes(std::span<const std::uint8_t> bytes16);

  /// Bytes of secret material one key consumes.
  static constexpr std::size_t kBytes = 16;

  friend bool operator==(MacKey, MacKey) = default;
};

struct MacTag {
  std::uint64_t value = 0;
  friend bool operator==(MacTag, MacTag) = default;
};

/// Authenticate an arbitrary byte string (chunked into 8-byte GF(2^64)
/// coefficients; the length is mixed in to prevent extension forgeries).
[[nodiscard]] MacTag compute_mac(MacKey key, std::span<const std::uint8_t> msg);

/// Constant-pattern verification.
[[nodiscard]] bool verify_mac(MacKey key, std::span<const std::uint8_t> msg,
                              MacTag tag);

}  // namespace thinair::auth
