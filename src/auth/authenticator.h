#pragma once
// Message authentication for the protocol's control plane.
//
// Against an *active* Eve the terminals must authenticate reception
// reports, announcements and z-packets, or Eve could impersonate a
// terminal (Sec. 2). The paper notes the bootstrap is fundamentally
// unavoidable: the group shares a small initial secret when it first
// meets; every later message consumes a fresh one-time MAC key drawn from
// the SecretPool that the protocol itself keeps refilling — so the system
// becomes self-sustaining ("any shared secrets subsequently generated do
// not depend in any way on the bootstrap information").
//
// The Authenticator wraps that lifecycle: seed it with bootstrap bytes,
// refill it with protocol output, and tag/verify messages. Both sides must
// consume keys in the same order (the protocol's messages are strictly
// ordered, so a per-session counter suffices).

#include <cstdint>
#include <optional>
#include <vector>

#include "auth/onetime_mac.h"
#include "core/secret.h"

namespace thinair::auth {

struct AuthenticatedMessage {
  std::vector<std::uint8_t> body;
  std::uint64_t sequence = 0;  // key index used
  MacTag tag;
};

class Authenticator {
 public:
  /// `bootstrap` seeds the key pool (the small initial shared secret).
  explicit Authenticator(std::vector<std::uint8_t> bootstrap);

  /// Add freshly agreed secret bytes (protocol output) to the key pool.
  void refill(const std::vector<std::uint8_t>& secret_bytes);

  /// Keys still available.
  [[nodiscard]] std::size_t keys_available() const;

  /// Tag a message, consuming one key. Returns std::nullopt when the pool
  /// is exhausted (callers must then run more protocol rounds).
  [[nodiscard]] std::optional<AuthenticatedMessage> sign(
      std::vector<std::uint8_t> body);

  /// Verify a message, consuming the *same* key sequence. Out-of-order
  /// sequences fail (keys are one-time; replays must not verify).
  [[nodiscard]] bool verify(const AuthenticatedMessage& msg);

 private:
  [[nodiscard]] std::optional<MacKey> key_for(std::uint64_t sequence);

  core::SecretPool pool_;
  std::uint64_t next_sign_ = 0;
  std::uint64_t next_verify_ = 0;
  // Keys already drawn from the pool, indexed by sequence; sign/verify may
  // interleave so both sides of a simulated pair can share one instance in
  // tests.
  std::vector<MacKey> drawn_;
};

}  // namespace thinair::auth
