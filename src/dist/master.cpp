#include "dist/master.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "runtime/seed.h"
#include "runtime/spec_parse.h"
#include "util/sha256.h"

namespace thinair::dist {

namespace {

std::string shard_name(const Shard& shard) {
  // Built with += — gcc 12's -Wrestrict misfires on
  // operator+(const char*, std::string&&) chains.
  std::string name = "[";
  name += std::to_string(shard.first);
  name += ", ";
  name += std::to_string(shard.first + shard.count);
  name += ")";
  return name;
}

}  // namespace

SweepMaster::SweepMaster(const runtime::Scenario& scenario,
                         const runtime::RunOptions& options,
                         const MasterTuning& tuning,
                         runtime::ResultSink* sink)
    : sink_(sink),
      master_seed_(options.master_seed),
      timeout_s_(tuning.shard_timeout_s),
      max_attempts_(std::max(tuning.max_shard_attempts, 1)) {
  // Spec check before touching scenario.plan: a hand-written Scenario
  // may carry an empty plan function alongside its null spec.
  if (scenario.spec == nullptr)
    throw std::invalid_argument(
        "distributed run needs a spec-defined scenario (the spec is the "
        "wire format); '" +
        scenario.name + "' is hand-written");
  plan_ = scenario.plan();
  n_cases_ = plan_.size();
  if (options.limit != 0 && options.limit < n_cases_)
    n_cases_ = options.limit;
  spec_text_ = runtime::serialize_spec(*scenario.spec);
  spec_sha_ = util::sha256_hex(spec_text_);
  const std::uint64_t shard_size =
      tuning.shard_size != 0
          ? tuning.shard_size
          : default_shard_size(n_cases_, tuning.workers_hint);
  for (const Shard& shard : make_shards(n_cases_, shard_size))
    queue_.push_back(shard);
  pushed_.assign(n_cases_, false);
}

void SweepMaster::on_worker_connected(WorkerId id, double now_s,
                                      std::vector<MasterOutput>* out) {
  (void)now_s;
  workers_[id] = WorkerInfo{};
  HelloFrame hello;
  hello.proto_version = kProtoVersion;
  hello.master_seed = master_seed_;
  hello.n_cases = n_cases_;
  hello.spec_sha256 = spec_sha_;
  hello.spec_text = spec_text_;
  out->push_back(MasterOutput{id, Frame{std::move(hello)}, failed_});
}

void SweepMaster::on_frame(WorkerId id, const Frame& frame, double now_s,
                           std::vector<MasterOutput>* out) {
  const auto it = workers_.find(id);
  if (it == workers_.end() || it->second.state == WorkerState::kGone) return;
  WorkerInfo& info = it->second;

  switch (frame.type()) {
    case FrameType::kHello: {
      const auto& hello = std::get<HelloFrame>(frame.body);
      if (info.state != WorkerState::kAwaitHello) {
        drop_worker(id, out, "unexpected kHello");
        break;
      }
      if (hello.proto_version != kProtoVersion) {
        drop_worker(id, out,
                    "protocol version mismatch: master " +
                        std::to_string(kProtoVersion) + ", worker " +
                        std::to_string(hello.proto_version));
        break;
      }
      if (hello.spec_sha256 != spec_sha_) {
        drop_worker(id, out,
                    "spec hash mismatch (worker round-trips the spec to "
                    "different bytes — binary or grammar skew)");
        break;
      }
      info.state = WorkerState::kIdle;
      assign_or_idle(id, now_s, out);
      break;
    }
    case FrameType::kRecord: {
      const auto& record = std::get<RecordFrame>(frame.body);
      if (info.state != WorkerState::kRunning ||
          record.case_index < info.shard.first ||
          record.case_index >= info.shard.first + info.shard.count) {
        const Shard shard = info.shard;
        const bool was_running = info.state == WorkerState::kRunning;
        drop_worker(id, out, "kRecord outside the assigned shard");
        if (was_running) forfeit_shard(shard, now_s, out);
        break;
      }
      accept_record(id, record, now_s, out);
      break;
    }
    case FrameType::kShardDone: {
      const auto& done_frame = std::get<ShardDoneFrame>(frame.body);
      if (info.state != WorkerState::kRunning ||
          done_frame.first != info.shard.first ||
          done_frame.count != info.shard.count) {
        const Shard shard = info.shard;
        const bool was_running = info.state == WorkerState::kRunning;
        drop_worker(id, out, "kShardDone does not match the assigned shard");
        if (was_running) forfeit_shard(shard, now_s, out);
        break;
      }
      if (!shard_complete(info.shard)) {
        // Stream order guarantees every record precedes its kShardDone,
        // so an incomplete shard here means the worker skipped cases.
        const Shard shard = info.shard;
        drop_worker(id, out, "kShardDone with missing records");
        forfeit_shard(shard, now_s, out);
        break;
      }
      shard_s_.push_back(now_s - info.assigned_at);
      info.state = WorkerState::kIdle;
      assign_or_idle(id, now_s, out);
      break;
    }
    case FrameType::kError: {
      const auto& err = std::get<ErrorFrame>(frame.body);
      const Shard shard = info.shard;
      const bool was_running = info.state == WorkerState::kRunning;
      info.state = WorkerState::kGone;
      out->push_back(MasterOutput{id, Frame{ByeFrame{}}, true});
      if (was_running) forfeit_shard(shard, now_s, out);
      if (!done() && !failed_ && live_workers() == 0)
        fail_run("worker reported: " + err.message, out);
      break;
    }
    case FrameType::kShard:
    case FrameType::kBye: {
      const Shard shard = info.shard;
      const bool was_running = info.state == WorkerState::kRunning;
      drop_worker(id, out, "unexpected frame type from worker");
      if (was_running) forfeit_shard(shard, now_s, out);
      break;
    }
  }

  if (!done() && !failed_ && live_workers() == 0)
    fail_run("no workers left with " +
                 std::to_string(n_cases_ - n_pushed_) +
                 " case(s) outstanding",
             out);
}

void SweepMaster::on_worker_closed(WorkerId id, double now_s,
                                   std::vector<MasterOutput>* out) {
  const auto it = workers_.find(id);
  if (it == workers_.end() || it->second.state == WorkerState::kGone) return;
  const bool was_running = it->second.state == WorkerState::kRunning;
  const Shard shard = it->second.shard;
  it->second.state = WorkerState::kGone;
  if (was_running) forfeit_shard(shard, now_s, out);
  if (!done() && !failed_ && live_workers() == 0)
    fail_run("no workers left with " +
                 std::to_string(n_cases_ - n_pushed_) +
                 " case(s) outstanding",
             out);
}

void SweepMaster::on_tick(double now_s, std::vector<MasterOutput>* out) {
  if (failed_ || timeout_s_ <= 0.0) return;
  // Collect first: forfeit/drop mutate workers_ state (not the map
  // itself, but keep the scan free of reentrancy anyway).
  std::vector<WorkerId> timed_out;
  for (const auto& [id, info] : workers_)
    if (info.state == WorkerState::kRunning &&
        now_s - info.assigned_at > timeout_s_)
      timed_out.push_back(id);
  for (WorkerId id : timed_out) {
    const Shard shard = workers_[id].shard;
    drop_worker(id, out,
                "shard " + shard_name(shard) + " timed out after " +
                    std::to_string(timeout_s_) + "s");
    forfeit_shard(shard, now_s, out);
  }
  if (!timed_out.empty() && !done() && !failed_ && live_workers() == 0)
    fail_run("no workers left with " +
                 std::to_string(n_cases_ - n_pushed_) +
                 " case(s) outstanding",
             out);
}

void SweepMaster::assign_or_idle(WorkerId id, double now_s,
                                 std::vector<MasterOutput>* out) {
  if (failed_) return;
  WorkerInfo& info = workers_[id];
  if (queue_.empty()) {
    if (done() && !bye_sent_) broadcast_bye(out);
    return;
  }
  const Shard shard = queue_.front();
  queue_.pop_front();
  ++attempts_[shard.first];
  info.state = WorkerState::kRunning;
  info.shard = shard;
  info.assigned_at = now_s;
  out->push_back(
      MasterOutput{id, Frame{ShardFrame{shard.first, shard.count}}, false});
}

void SweepMaster::forfeit_shard(const Shard& shard, double now_s,
                                std::vector<MasterOutput>* out) {
  if (failed_ || shard.count == 0 || shard_complete(shard)) return;
  if (attempts_[shard.first] >= max_attempts_) {
    fail_run("shard " + shard_name(shard) + " failed after " +
                 std::to_string(attempts_[shard.first]) + " attempt(s)",
             out);
    return;
  }
  // Front of the queue: the retry runs next, so a sick shard fails fast
  // instead of hiding behind the healthy backlog.
  queue_.push_front(shard);
  // Hand it to an idle survivor immediately — without this the shard
  // would wait for the next kShardDone, and if every other worker is
  // already drained (queue empty, run almost done) it would wait
  // forever.
  for (auto& [wid, winfo] : workers_) {
    if (winfo.state != WorkerState::kIdle) continue;
    assign_or_idle(wid, now_s, out);
    break;
  }
}

void SweepMaster::accept_record(WorkerId id, const RecordFrame& record,
                                double now_s,
                                std::vector<MasterOutput>* out) {
  const auto index = static_cast<std::size_t>(record.case_index);
  if (pushed_[index]) return;  // duplicate from a reassigned shard
  runtime::CaseSpec spec;
  spec.index = index;
  spec.seed = runtime::derive_seed(master_seed_, index);
  spec.params = plan_.at(index);
  sink_->push(spec, from_wire(record));
  pushed_[index] = true;
  ++n_pushed_;
  if (done() && !bye_sent_) {
    // The run completes on this record, not on its trailing kShardDone —
    // the bye below retires every worker before that frame is read. Count
    // the final shard's round trip here so shard_s_ covers all shards.
    const auto it = workers_.find(id);
    if (it != workers_.end() && it->second.state == WorkerState::kRunning)
      shard_s_.push_back(now_s - it->second.assigned_at);
    broadcast_bye(out);
  }
}

void SweepMaster::fail_run(const std::string& why,
                           std::vector<MasterOutput>* out) {
  if (failed_) return;
  failed_ = true;
  error_ = why;
  for (auto& [id, info] : workers_) {
    if (info.state == WorkerState::kGone) continue;
    info.state = WorkerState::kGone;
    out->push_back(MasterOutput{id, Frame{ErrorFrame{why}}, true});
  }
}

void SweepMaster::broadcast_bye(std::vector<MasterOutput>* out) {
  bye_sent_ = true;
  for (auto& [id, info] : workers_) {
    if (info.state == WorkerState::kGone) continue;
    info.state = WorkerState::kGone;
    out->push_back(MasterOutput{id, Frame{ByeFrame{}}, true});
  }
}

void SweepMaster::drop_worker(WorkerId id, std::vector<MasterOutput>* out,
                              const std::string& message) {
  WorkerInfo& info = workers_[id];
  if (info.state == WorkerState::kGone) return;
  info.state = WorkerState::kGone;
  out->push_back(MasterOutput{id, Frame{ErrorFrame{message}}, true});
}

std::size_t SweepMaster::live_workers() const {
  std::size_t live = 0;
  for (const auto& [id, info] : workers_)
    if (info.state != WorkerState::kGone) ++live;
  return live;
}

bool SweepMaster::shard_complete(const Shard& shard) const {
  for (std::uint64_t i = shard.first; i < shard.first + shard.count; ++i)
    if (!pushed_[static_cast<std::size_t>(i)]) return false;
  return true;
}

}  // namespace thinair::dist
