#pragma once
// SweepWorker: the sans-io worker side of a distributed sweep. Feed it
// the master's frames; it parses the spec out of kHello (the spec IS the
// wire format — the describe()/parse() round-trip from the spec
// front-end), compiles it with the same compile() every local run uses,
// answers the SHA-256 handshake, and runs each kShard's case range
// through the existing engine path (per-case arena reset + SplitMix64
// seed derivation), emitting one kRecord per case and a kShardDone.
//
// No sockets, no threads: on_frame runs cases synchronously on the
// calling thread, which is the whole worker process's job. The IO driver
// (dist/runner.cpp) just moves bytes and honours finished().

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dist/frame.h"
#include "runtime/scenario.h"
#include "runtime/sweep_plan.h"

namespace thinair::dist {

class SweepWorker {
 public:
  /// Handle one master frame, appending any reply frames (in send
  /// order) to `out`. kShard runs its whole case range before
  /// returning. Protocol violations and spec failures emit kError and
  /// set finished(); they never throw.
  void on_frame(const Frame& frame, std::vector<Frame>* out);

  /// True once the conversation is over: kBye received, or a fatal
  /// error was emitted/received.
  [[nodiscard]] bool finished() const { return finished_; }

  /// Non-empty when finished() was reached through a failure; the IO
  /// driver turns it into a nonzero exit code.
  [[nodiscard]] const std::string& error() const { return error_; }

  /// kRecord frames emitted so far (the runner's --exit-after-records
  /// test hook counts these).
  [[nodiscard]] std::size_t records_emitted() const { return records_; }

 private:
  void on_hello(const HelloFrame& hello, std::vector<Frame>* out);
  void on_shard(const ShardFrame& shard, std::vector<Frame>* out);
  void fail(const std::string& why, std::vector<Frame>* out);

  bool finished_ = false;
  std::string error_;
  std::uint64_t master_seed_ = 0;
  std::uint64_t n_cases_ = 0;
  std::optional<runtime::Scenario> scenario_;
  std::optional<runtime::SweepPlan> plan_;
  std::size_t records_ = 0;
};

}  // namespace thinair::dist
