#pragma once
// IO drivers for the distributed sweep — the only layer that owns
// sockets, fork/exec and the poll loop. Everything decision-shaped
// lives in the sans-io SweepMaster/SweepWorker cores; these functions
// move bytes between them and the OS, mirroring how netd::Daemon wraps
// netd::SessionHub.
//
//   run_distributed_local  — `thinair run NAME --workers N`: fork/exec
//     N local worker processes of this same binary over AF_UNIX
//     socketpairs, drive the master loop, reap the children.
//   run_distributed_listen — `thinair sweep-master --listen`: accept N
//     TCP workers, then the same master loop.
//   run_worker_on_fd / run_worker_connect — `thinair sweep-worker`:
//     the blocking worker loop over an inherited fd or a TCP connect.
//
// Determinism: the master pushes every record into the caller's
// ResultSink, whose drainer re-orders by case index — so the NDJSON and
// summaries are byte-identical to run_scenario() at any worker count,
// with any shard size, and across worker deaths (the master dedups
// retried cases). tests/cli_dist_smoke.sh pins this with cmp.

#include <cstdint>
#include <iosfwd>
#include <string>

#include "dist/master.h"
#include "dist/stream.h"
#include "runtime/engine.h"
#include "runtime/result_sink.h"
#include "runtime/scenario.h"

namespace thinair::dist {

struct LocalSpawnOptions {
  std::size_t workers = 1;
  /// Worker executable; empty = this binary (/proc/self/exe).
  std::string worker_binary;
  /// Test hook (--test-kill-worker-after): worker 0 is spawned with
  /// --exit-after-records K and dies mid-shard, exercising the
  /// reassignment path deterministically. 0 = off.
  std::size_t kill_worker0_after_records = 0;
};

/// Run `scenario` across `spawn.workers` forked local workers, feeding
/// every case into `sink` (finished on return, like run_scenario).
/// Throws std::runtime_error when the master fails (retry cap, all
/// workers dead), std::system_error on transport errors. When
/// `shard_round_trips_s` is non-null it receives every completed
/// shard's assignment-to-done time (bench/micro_dist's p50/p99 source).
runtime::RunStats run_distributed_local(
    const runtime::Scenario& scenario, const runtime::RunOptions& options,
    MasterTuning tuning, const LocalSpawnOptions& spawn,
    runtime::ResultSink& sink,
    std::vector<double>* shard_round_trips_s = nullptr);

/// Accept `expected_workers` TCP connections on `listener`, then run
/// the same master loop. `log` (may be null) gets one line per
/// connected worker — the smoke test greps it.
runtime::RunStats run_distributed_listen(const runtime::Scenario& scenario,
                                         const runtime::RunOptions& options,
                                         MasterTuning tuning,
                                         TcpListener& listener,
                                         std::size_t expected_workers,
                                         runtime::ResultSink& sink,
                                         std::ostream* log);

/// Blocking worker loop over a connected stream. `exit_after_records`
/// is the kill-test hook: after sending that many kRecord frames the
/// process dies abruptly (std::_Exit) as if it crashed mid-shard.
/// Returns a process exit code: 0 clean, nonzero on error or a master
/// that vanished.
int run_worker_on_fd(StreamSocket conn, std::size_t exit_after_records);

/// TCP-connect variant of run_worker_on_fd.
int run_worker_connect(const std::string& host, std::uint16_t port,
                       std::size_t exit_after_records);

}  // namespace thinair::dist
