#pragma once
// Byte-stream transport for the distributed sweep: an RAII stream
// socket (a TCP connection or one end of an AF_UNIX socketpair to a
// forked worker), a TCP listener for the multi-machine mode, and the
// socketpair factory the local fork/exec spawner uses. Mirrors
// netd/udp.h: thin, throwing-on-real-errors wrappers; every sockaddr
// cast and errno branch lives here so the layers above handle Frames
// and fds only.

#include <cstdint>
#include <span>
#include <string>

namespace thinair::dist {

/// Move-only owner of one connected stream fd.
class StreamSocket {
 public:
  StreamSocket() = default;
  explicit StreamSocket(int fd) : fd_(fd) {}
  ~StreamSocket();

  StreamSocket(const StreamSocket&) = delete;
  StreamSocket& operator=(const StreamSocket&) = delete;
  StreamSocket(StreamSocket&& other) noexcept;
  StreamSocket& operator=(StreamSocket&& other) noexcept;

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void close();

  /// Blocking write of the whole span (MSG_NOSIGNAL — a dead peer must
  /// not SIGPIPE the master). Returns false when the peer is gone
  /// (EPIPE/ECONNRESET); throws std::system_error on anything else.
  bool send_all(std::span<const std::uint8_t> data);

  /// One blocking recv into `scratch`; retries EINTR. Returns the byte
  /// count, 0 on orderly EOF or connection reset (both mean "peer
  /// gone"); throws std::system_error on anything else.
  [[nodiscard]] std::size_t recv_some(std::span<std::uint8_t> scratch);

 private:
  int fd_ = -1;
};

/// A connected AF_UNIX stream pair for master <-> forked worker. The
/// parent end carries FD_CLOEXEC (it must not leak into sibling
/// workers); the child end is inherited across exec by design.
struct SocketPair {
  StreamSocket parent;
  StreamSocket child;
};
[[nodiscard]] SocketPair make_socket_pair();

/// Listening TCP socket for `thinair sweep-master --listen`. Port 0
/// binds an ephemeral port; port() reports the real one.
class TcpListener {
 public:
  TcpListener(const std::string& host, std::uint16_t port);

  [[nodiscard]] std::uint16_t port() const;
  [[nodiscard]] int fd() const { return sock_.fd(); }

  /// Block until one worker connects.
  [[nodiscard]] StreamSocket accept_one();

 private:
  StreamSocket sock_;
};

/// Blocking TCP connect for `thinair sweep-worker --connect`.
[[nodiscard]] StreamSocket tcp_connect(const std::string& host,
                                       std::uint16_t port);

}  // namespace thinair::dist
