#include "dist/worker.h"

#include <exception>
#include <utility>

#include "runtime/engine.h"
#include "runtime/scenario_spec.h"
#include "runtime/seed.h"
#include "runtime/spec_parse.h"
#include "util/sha256.h"

namespace thinair::dist {

void SweepWorker::on_frame(const Frame& frame, std::vector<Frame>* out) {
  if (finished_) return;
  switch (frame.type()) {
    case FrameType::kHello:
      on_hello(std::get<HelloFrame>(frame.body), out);
      break;
    case FrameType::kShard:
      on_shard(std::get<ShardFrame>(frame.body), out);
      break;
    case FrameType::kBye:
      finished_ = true;
      break;
    case FrameType::kError:
      finished_ = true;
      error_ = std::get<ErrorFrame>(frame.body).message;
      break;
    case FrameType::kRecord:
    case FrameType::kShardDone:
      fail("unexpected frame type from master", out);
      break;
  }
}

void SweepWorker::on_hello(const HelloFrame& hello, std::vector<Frame>* out) {
  if (scenario_.has_value()) {
    fail("duplicate kHello", out);
    return;
  }
  if (hello.proto_version != kProtoVersion) {
    fail("protocol version mismatch: master " +
             std::to_string(hello.proto_version) + ", worker " +
             std::to_string(kProtoVersion),
         out);
    return;
  }
  std::string round_trip;
  try {
    const runtime::ScenarioSpec spec = runtime::parse_spec(hello.spec_text);
    // Hash what *this* binary would serialize, not the received bytes:
    // equality then proves the round-trip is a fixed point here too, so
    // master and worker agree on every spec field, not just the text.
    round_trip = runtime::serialize_spec(spec);
    scenario_ = runtime::compile(spec);
    plan_ = scenario_->plan();
  } catch (const std::exception& e) {
    fail(std::string("spec rejected: ") + e.what(), out);
    return;
  }
  const std::string sha = util::sha256_hex(round_trip);
  if (sha != hello.spec_sha256) {
    fail("spec hash mismatch after round-trip", out);
    return;
  }
  if (hello.n_cases > plan_->size()) {
    fail("master case count exceeds the plan", out);
    return;
  }
  master_seed_ = hello.master_seed;
  n_cases_ = hello.n_cases;
  HelloFrame reply;
  reply.proto_version = kProtoVersion;
  reply.spec_sha256 = sha;
  out->push_back(Frame{std::move(reply)});
}

void SweepWorker::on_shard(const ShardFrame& shard, std::vector<Frame>* out) {
  if (!scenario_.has_value()) {
    fail("kShard before kHello", out);
    return;
  }
  if (shard.count == 0 || shard.first + shard.count > n_cases_ ||
      shard.first + shard.count < shard.first) {
    fail("shard range outside [0, n_cases)", out);
    return;
  }
  for (std::uint64_t i = shard.first; i < shard.first + shard.count; ++i) {
    const auto index = static_cast<std::size_t>(i);
    runtime::CaseSpec spec;
    spec.index = index;
    spec.seed = runtime::derive_seed(master_seed_, index);
    spec.params = plan_->at(index);
    runtime::CaseResult result;
    try {
      runtime::worker_arena().reset();
      result = scenario_->run(spec);
    } catch (const std::exception& e) {
      fail("case " + std::to_string(index) + " threw: " + e.what(), out);
      return;
    }
    out->push_back(Frame{to_wire(index, result)});
    ++records_;
  }
  out->push_back(Frame{ShardDoneFrame{shard.first, shard.count}});
}

void SweepWorker::fail(const std::string& why, std::vector<Frame>* out) {
  finished_ = true;
  error_ = why;
  out->push_back(Frame{ErrorFrame{why}});
}

}  // namespace thinair::dist
