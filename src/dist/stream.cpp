#include "dist/stream.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace thinair::dist {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::invalid_argument("not an IPv4 address: " + host);
  return addr;
}

}  // namespace

StreamSocket::~StreamSocket() { close(); }

StreamSocket::StreamSocket(StreamSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

StreamSocket& StreamSocket::operator=(StreamSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void StreamSocket::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool StreamSocket::send_all(std::span<const std::uint8_t> data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return false;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::size_t StreamSocket::recv_some(std::span<std::uint8_t> scratch) {
  for (;;) {
    const ssize_t n = ::recv(fd_, scratch.data(), scratch.size(), 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) return 0;  // peer gone == EOF for our purposes
    throw_errno("recv");
  }
}

SocketPair make_socket_pair() {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
    throw_errno("socketpair");
  SocketPair pair{StreamSocket(fds[0]), StreamSocket(fds[1])};
  // The parent end must not leak into any exec'd worker; the child end
  // is deliberately inheritable (the worker finds it via --connect-fd).
  if (::fcntl(pair.parent.fd(), F_SETFD, FD_CLOEXEC) != 0)
    throw_errno("fcntl(FD_CLOEXEC)");
  return pair;
}

TcpListener::TcpListener(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");
  sock_ = StreamSocket(fd);
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const sockaddr_in addr = make_addr(host, port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0)
    throw_errno("bind");
  if (::listen(fd, SOMAXCONN) != 0) throw_errno("listen");
}

std::uint16_t TcpListener::port() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(sock_.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0)
    throw_errno("getsockname");
  return ntohs(addr.sin_port);
}

StreamSocket TcpListener::accept_one() {
  for (;;) {
    const int fd = ::accept4(sock_.fd(), nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) {
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return StreamSocket(fd);
    }
    if (errno == EINTR) continue;
    throw_errno("accept");
  }
}

StreamSocket tcp_connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");
  StreamSocket sock(fd);
  const sockaddr_in addr = make_addr(host, port);
  for (;;) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      break;
    if (errno == EINTR) continue;
    throw_errno("connect");
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

}  // namespace thinair::dist
