#include "dist/runner.h"

#include <array>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <map>
#include <ostream>
#include <stdexcept>
#include <system_error>
#include <utility>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "dist/frame.h"
#include "dist/worker.h"
#include "netd/poller.h"
#include "util/mutex.h"

namespace thinair::dist {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string self_exe() {
  std::array<char, 4096> path{};
  const ssize_t n =
      ::readlink("/proc/self/exe", path.data(), path.size() - 1);
  if (n <= 0) throw_errno("readlink(/proc/self/exe)");
  return std::string(path.data(), static_cast<std::size_t>(n));
}

pid_t spawn_worker(const std::string& binary, int child_fd,
                   std::size_t exit_after_records) {
  std::vector<std::string> args = {binary, "sweep-worker", "--connect-fd",
                                   std::to_string(child_fd)};
  if (exit_after_records != 0) {
    args.emplace_back("--exit-after-records");
    args.emplace_back(std::to_string(exit_after_records));
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) throw_errno("fork");
  if (pid == 0) {
    ::execv(binary.c_str(), argv.data());
    // exec failed — nothing sane to do in the child but vanish; the
    // master sees the socket close and reassigns.
    std::_Exit(127);
  }
  return pid;
}

struct Conn {
  StreamSocket sock;
  FrameReader reader;
  bool open = true;
};

/// Drive `master` over the given connections until it is done or has
/// failed. Claims the master's loop role for the duration — this thread
/// IS the IO loop. Throws std::runtime_error on master failure.
void run_master_loop(SweepMaster& master,
                     std::map<WorkerId, Conn>& conns) {
  const util::RoleLock role(master.loop_role());
  netd::Poller poller;
  std::map<int, WorkerId> by_fd;
  std::vector<MasterOutput> out;
  std::vector<int> ready;
  std::array<std::uint8_t, 64 * 1024> scratch{};

  const auto close_conn = [&](WorkerId id) {
    Conn& conn = conns.at(id);
    if (!conn.open) return;
    poller.remove(conn.sock.fd());
    by_fd.erase(conn.sock.fd());
    conn.sock.close();
    conn.open = false;
  };

  // Perform the master's queued actions. Index loop: handlers invoked
  // on a send failure append to `out` while we iterate.
  const auto flush = [&] {
    for (std::size_t i = 0; i < out.size(); ++i) {
      const MasterOutput o = std::move(out[i]);
      const auto it = conns.find(o.to);
      if (it == conns.end() || !it->second.open) continue;
      const std::vector<std::uint8_t> wire = encode_frame(o.frame);
      if (!it->second.sock.send_all(wire)) {
        close_conn(o.to);
        master.on_worker_closed(o.to, now_s(), &out);
        continue;
      }
      if (o.close) close_conn(o.to);
    }
    out.clear();
  };

  for (auto& [id, conn] : conns) {
    poller.add(conn.sock.fd());
    by_fd[conn.sock.fd()] = id;
    master.on_worker_connected(id, now_s(), &out);
  }
  flush();

  while (!master.done() && !master.failed()) {
    ready.clear();
    poller.wait(100, ready);
    for (const int fd : ready) {
      const auto fd_it = by_fd.find(fd);
      if (fd_it == by_fd.end()) continue;
      const WorkerId id = fd_it->second;
      Conn& conn = conns.at(id);
      if (!conn.open) continue;
      const double now = now_s();
      const std::size_t n = conn.sock.recv_some(scratch);
      if (n == 0) {
        close_conn(id);
        master.on_worker_closed(id, now, &out);
        continue;
      }
      conn.reader.feed(std::span<const std::uint8_t>(scratch.data(), n));
      while (std::optional<Frame> frame = conn.reader.next())
        master.on_frame(id, *frame, now, &out);
      if (conn.reader.error() != DecodeError::kNone) {
        close_conn(id);
        master.on_worker_closed(id, now, &out);
      }
    }
    master.on_tick(now_s(), &out);
    flush();
  }
  flush();
  for (auto& [id, conn] : conns)
    if (conn.open) close_conn(id);

  if (master.failed())
    throw std::runtime_error("distributed run failed: " + master.error());
}

void reap(const std::vector<pid_t>& pids) {
  // Workers exit on kBye or socket EOF; the kill-test worker is already
  // gone. Exit statuses are deliberately ignored — the master's own
  // bookkeeping (every case pushed exactly once) is the success signal.
  for (const pid_t pid : pids) {
    int status = 0;
    (void)::waitpid(pid, &status, 0);
  }
}

runtime::RunStats finish_stats(SweepMaster& master, runtime::ResultSink& sink,
                               std::size_t workers, double t0) {
  std::size_t cases = 0;
  std::size_t plan_cases = 0;
  {
    const util::RoleLock role(master.loop_role());
    cases = master.cases();
    plan_cases = master.plan_cases();
  }
  if (cases < plan_cases) sink.mark_truncated(cases, plan_cases);
  sink.finish();
  runtime::RunStats stats;
  stats.cases = cases;
  stats.plan_cases = plan_cases;
  stats.threads = workers;
  stats.wall_s = now_s() - t0;
  return stats;
}

}  // namespace

runtime::RunStats run_distributed_local(
    const runtime::Scenario& scenario, const runtime::RunOptions& options,
    MasterTuning tuning, const LocalSpawnOptions& spawn,
    runtime::ResultSink& sink, std::vector<double>* shard_round_trips_s) {
  const double t0 = now_s();
  std::size_t workers = std::max<std::size_t>(spawn.workers, 1);
  tuning.workers_hint = workers;
  SweepMaster master(scenario, options, tuning, &sink);

  std::size_t cases = 0;
  {
    const util::RoleLock role(master.loop_role());
    cases = master.cases();
  }
  // More workers than cases is pure fork overhead; like the engine's
  // thread clamp this cannot change any output byte.
  workers = std::min(workers, std::max<std::size_t>(cases, 1));

  std::map<WorkerId, Conn> conns;
  std::vector<pid_t> pids;
  if (cases > 0) {
    const std::string binary =
        spawn.worker_binary.empty() ? self_exe() : spawn.worker_binary;
    for (std::size_t i = 0; i < workers; ++i) {
      SocketPair pair = make_socket_pair();
      const std::size_t kill_after =
          i == 0 ? spawn.kill_worker0_after_records : 0;
      pids.push_back(spawn_worker(binary, pair.child.fd(), kill_after));
      pair.child.close();  // only the worker may hold this end now
      conns[static_cast<WorkerId>(i)] =
          Conn{std::move(pair.parent), FrameReader{}, true};
    }
  }

  try {
    run_master_loop(master, conns);
  } catch (...) {
    conns.clear();  // EOF tells every surviving worker to exit
    reap(pids);
    throw;
  }
  conns.clear();
  reap(pids);
  if (shard_round_trips_s != nullptr) {
    const util::RoleLock role(master.loop_role());
    *shard_round_trips_s = master.shard_round_trips_s();
  }
  return finish_stats(master, sink, workers, t0);
}

runtime::RunStats run_distributed_listen(const runtime::Scenario& scenario,
                                         const runtime::RunOptions& options,
                                         MasterTuning tuning,
                                         TcpListener& listener,
                                         std::size_t expected_workers,
                                         runtime::ResultSink& sink,
                                         std::ostream* log) {
  const double t0 = now_s();
  const std::size_t workers = std::max<std::size_t>(expected_workers, 1);
  tuning.workers_hint = workers;
  SweepMaster master(scenario, options, tuning, &sink);

  std::map<WorkerId, Conn> conns;
  for (std::size_t i = 0; i < workers; ++i) {
    conns[static_cast<WorkerId>(i)] =
        Conn{listener.accept_one(), FrameReader{}, true};
    if (log != nullptr)
      *log << "sweep-master: worker " << i + 1 << "/" << workers
           << " connected\n"
           << std::flush;
  }

  run_master_loop(master, conns);
  return finish_stats(master, sink, workers, t0);
}

int run_worker_on_fd(StreamSocket conn, std::size_t exit_after_records) {
  SweepWorker worker;
  FrameReader reader;
  std::array<std::uint8_t, 64 * 1024> scratch{};
  std::vector<Frame> replies;
  std::size_t records_sent = 0;

  while (!worker.finished()) {
    const std::size_t n = conn.recv_some(scratch);
    if (n == 0) return worker.finished() ? 0 : 1;  // master vanished
    reader.feed(std::span<const std::uint8_t>(scratch.data(), n));
    while (std::optional<Frame> frame = reader.next()) {
      replies.clear();
      worker.on_frame(*frame, &replies);
      for (const Frame& reply : replies) {
        if (!conn.send_all(encode_frame(reply))) return 1;
        if (reply.type() == FrameType::kRecord) {
          ++records_sent;
          if (exit_after_records != 0 && records_sent >= exit_after_records) {
            // Kill-test hook: die abruptly mid-shard, as a crashed or
            // OOM-killed worker would. send() already handed the bytes
            // to the kernel, so the master sees a partial shard + EOF.
            std::_Exit(1);
          }
        }
      }
      if (worker.finished()) break;
    }
    if (reader.error() != DecodeError::kNone) return 2;
  }
  return worker.error().empty() ? 0 : 3;
}

int run_worker_connect(const std::string& host, std::uint16_t port,
                       std::size_t exit_after_records) {
  return run_worker_on_fd(tcp_connect(host, port), exit_after_records);
}

}  // namespace thinair::dist
