#pragma once
// Shard arithmetic for the distributed sweep: how a master cuts a
// SweepPlan's dense case range [0, n) into contiguous work units. Pure
// functions — tests/dist_test.cpp holds make_shards to an exact cover of
// the range at every (n, shard_size) combination.

#include <cstdint>
#include <vector>

namespace thinair::dist {

/// One contiguous case range [first, first + count). `count` is never 0
/// for shards produced by make_shards.
struct Shard {
  std::uint64_t first = 0;
  std::uint64_t count = 0;

  friend bool operator==(const Shard&, const Shard&) = default;
};

/// Cut [0, n_cases) into consecutive shards of `shard_size` cases (the
/// final shard may be shorter). Returns an exact, ordered, disjoint
/// cover: empty for n_cases == 0. Throws std::invalid_argument when
/// shard_size == 0.
[[nodiscard]] std::vector<Shard> make_shards(std::uint64_t n_cases,
                                             std::uint64_t shard_size);

/// Default shard size for `workers` workers: aim for ~8 shards per
/// worker so reassignment after a death loses little work and the
/// master's reorder window stays small, clamped to [1, 4096]. Never 0,
/// even for degenerate inputs (0 cases, 0 workers).
[[nodiscard]] std::uint64_t default_shard_size(std::uint64_t n_cases,
                                               std::uint64_t workers);

}  // namespace thinair::dist
