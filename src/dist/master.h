#pragma once
// SweepMaster: the sans-io brain of a distributed sweep. It compiles
// nothing and owns no sockets — an IO driver (dist/runner.cpp, or a test
// harness feeding frames by hand) reports transport events and performs
// the MasterOutput actions the master emits. The split mirrors
// netd::SessionHub vs netd::Daemon: every scheduling decision lives here
// where it is deterministic and unit-testable; the driver only moves
// bytes.
//
// Protocol per worker: on connect the master sends kHello carrying the
// canonical spec text, the master seed, the case count and the spec's
// SHA-256; the worker replies kHello with the SHA-256 of its own
// re-serialization (handshake — binary/spec skew fails fast). A
// handshake-clean worker is then fed one shard at a time (bounded
// in-flight work: workers x shard_size cases); each kShardDone hands it
// the next shard until the queue drains. kBye goes out to everyone once
// every case has been pushed.
//
// Fault policy: a worker that dies (connection closed), misbehaves
// (protocol violation) or times out forfeits its shard; the shard goes
// back to the *front* of the queue and is reassigned. Each shard gets
// max_shard_attempts assignments, then the run fails loudly. Records are
// deduplicated by case index — a reassigned shard re-runs whole, and any
// records the first attempt already delivered are dropped — so retries
// cannot violate the sink's push-exactly-once contract and the merged
// bytes stay identical.
//
// Threading: single IO thread by contract. All state is guarded by a
// util::Role claimed by the driver's loop (PR 8 idiom), so any touch
// from outside the loop fails -Wthread-safety at compile time.

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "dist/frame.h"
#include "dist/shard.h"
#include "runtime/engine.h"
#include "runtime/result_sink.h"
#include "runtime/scenario.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace thinair::dist {

using WorkerId = std::uint32_t;

struct MasterTuning {
  /// Cases per shard; 0 = default_shard_size(n_cases, workers_hint).
  std::uint64_t shard_size = 0;
  /// Expected worker count — only shapes the default shard size.
  std::uint64_t workers_hint = 1;
  /// A shard outstanding longer than this is reassigned and its worker
  /// dropped. <= 0 disables the timeout.
  double shard_timeout_s = 300.0;
  /// Assignments one shard may consume before the run fails loudly.
  int max_shard_attempts = 3;
};

/// One action the IO driver must perform on behalf of the master.
struct MasterOutput {
  WorkerId to = 0;
  Frame frame;
  bool close = false;  // drop the connection after writing the frame
};

class SweepMaster {
 public:
  /// `scenario` must have a spec (compile()-produced); `sink` receives
  /// every case exactly once, in arbitrary order — its drainer reorders
  /// by index, which is what makes the merged bytes identical to a
  /// single-process run. Both must outlive the master. Throws
  /// std::invalid_argument for a spec-less scenario.
  SweepMaster(const runtime::Scenario& scenario,
              const runtime::RunOptions& options, const MasterTuning& tuning,
              runtime::ResultSink* sink);

  // -- transport events, reported by the IO driver (all times are one
  //    monotonic clock, seconds; tests pass synthetic values) --

  void on_worker_connected(WorkerId id, double now_s,
                           std::vector<MasterOutput>* out)
      THINAIR_REQUIRES(loop_role_);

  void on_frame(WorkerId id, const Frame& frame, double now_s,
                std::vector<MasterOutput>* out) THINAIR_REQUIRES(loop_role_);

  /// Connection closed (worker death, or driver-observed protocol
  /// violation). Idempotent.
  void on_worker_closed(WorkerId id, double now_s,
                        std::vector<MasterOutput>* out)
      THINAIR_REQUIRES(loop_role_);

  /// Periodic timeout scan; call every poll-loop iteration.
  void on_tick(double now_s, std::vector<MasterOutput>* out)
      THINAIR_REQUIRES(loop_role_);

  // -- results --

  /// Every case pushed into the sink (the driver then finishes the sink).
  [[nodiscard]] bool done() const THINAIR_REQUIRES(loop_role_) {
    return n_pushed_ == n_cases_;
  }
  [[nodiscard]] bool failed() const THINAIR_REQUIRES(loop_role_) {
    return failed_;
  }
  [[nodiscard]] const std::string& error() const
      THINAIR_REQUIRES(loop_role_) {
    return error_;
  }
  [[nodiscard]] std::size_t cases() const THINAIR_REQUIRES(loop_role_) {
    return n_cases_;
  }
  [[nodiscard]] std::size_t plan_cases() const THINAIR_REQUIRES(loop_role_) {
    return plan_.size();
  }
  /// Completed-shard round-trip times (assignment to kShardDone),
  /// seconds — bench/micro_dist's p50/p99 source.
  [[nodiscard]] const std::vector<double>& shard_round_trips_s() const
      THINAIR_REQUIRES(loop_role_) {
    return shard_s_;
  }

  /// The capability the IO loop claims (util::RoleLock) before calling
  /// any event handler. THINAIR_RETURN_CAPABILITY lets the analysis
  /// unify RoleLock(master.loop_role()) with the REQUIRES clauses above.
  [[nodiscard]] const util::Role* loop_role() const
      THINAIR_RETURN_CAPABILITY(loop_role_) {
    return &loop_role_;
  }

 private:
  enum class WorkerState : std::uint8_t {
    kAwaitHello,  // kHello sent, reply outstanding
    kIdle,        // handshake done, no shard assigned
    kRunning,     // shard outstanding
    kGone,        // closed / failed handshake / timed out
  };

  struct WorkerInfo {
    WorkerState state = WorkerState::kAwaitHello;
    Shard shard{};           // valid when kRunning
    double assigned_at = 0;  // valid when kRunning
  };

  void assign_or_idle(WorkerId id, double now_s,
                      std::vector<MasterOutput>* out)
      THINAIR_REQUIRES(loop_role_);
  void forfeit_shard(const Shard& shard, double now_s,
                     std::vector<MasterOutput>* out)
      THINAIR_REQUIRES(loop_role_);
  void accept_record(WorkerId id, const RecordFrame& record, double now_s,
                     std::vector<MasterOutput>* out)
      THINAIR_REQUIRES(loop_role_);
  void fail_run(const std::string& why, std::vector<MasterOutput>* out)
      THINAIR_REQUIRES(loop_role_);
  void broadcast_bye(std::vector<MasterOutput>* out)
      THINAIR_REQUIRES(loop_role_);
  void drop_worker(WorkerId id, std::vector<MasterOutput>* out,
                   const std::string& message) THINAIR_REQUIRES(loop_role_);
  [[nodiscard]] std::size_t live_workers() const
      THINAIR_REQUIRES(loop_role_);
  [[nodiscard]] bool shard_complete(const Shard& shard) const
      THINAIR_REQUIRES(loop_role_);

  util::Role loop_role_;

  runtime::ResultSink* sink_ THINAIR_GUARDED_BY(loop_role_);
  runtime::SweepPlan plan_ THINAIR_GUARDED_BY(loop_role_);
  std::uint64_t master_seed_ THINAIR_GUARDED_BY(loop_role_);
  std::size_t n_cases_ THINAIR_GUARDED_BY(loop_role_) = 0;
  std::string spec_text_ THINAIR_GUARDED_BY(loop_role_);
  std::string spec_sha_ THINAIR_GUARDED_BY(loop_role_);
  double timeout_s_ THINAIR_GUARDED_BY(loop_role_);
  int max_attempts_ THINAIR_GUARDED_BY(loop_role_);

  std::map<WorkerId, WorkerInfo> workers_ THINAIR_GUARDED_BY(loop_role_);
  std::deque<Shard> queue_ THINAIR_GUARDED_BY(loop_role_);
  /// shard.first -> assignments so far (the retry cap's ledger).
  std::map<std::uint64_t, int> attempts_ THINAIR_GUARDED_BY(loop_role_);
  /// Case-index dedup for reassigned shards: pushed_[i] == case i is
  /// already in the sink.
  std::vector<bool> pushed_ THINAIR_GUARDED_BY(loop_role_);
  std::size_t n_pushed_ THINAIR_GUARDED_BY(loop_role_) = 0;
  std::vector<double> shard_s_ THINAIR_GUARDED_BY(loop_role_);
  bool bye_sent_ THINAIR_GUARDED_BY(loop_role_) = false;
  bool failed_ THINAIR_GUARDED_BY(loop_role_) = false;
  std::string error_ THINAIR_GUARDED_BY(loop_role_);
};

}  // namespace thinair::dist
