#pragma once
// The distributed-sweep shard protocol: length-prefixed frames over a
// byte stream (TCP or a socketpair to a forked worker).
//
//   [u32 body_len LE][u8 type][body]
//
// Six frame types carry a whole master<->worker conversation: kHello
// (spec handshake, both directions), kShard (a case range to run),
// kRecord (one case's result), kShardDone, kBye and kError. Strings are
// [u32 len LE][bytes]; doubles travel as their IEEE-754 bit pattern in a
// u64, so a metric value re-materialises bit-exactly on the master and
// the merged NDJSON cannot differ from a single-process run.
//
// Decoding is strict and total, the same discipline the netd wire codec
// sets (src/netd/wire.h) and thinair_lint.py's netd-wire-decode rule
// enforces: decode_frame() never throws, never reads out of bounds, and
// classifies every malformed input. kNeedMore is the one non-fatal
// verdict — a stream buffer that ends mid-frame just needs more bytes.
// Everything outside this codec handles Frame values, never raw stream
// indices; the lint rule holds src/dist/ to that.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "runtime/scenario.h"

namespace thinair::dist {

inline constexpr std::uint32_t kProtoVersion = 1;
/// Bytes of the body-length prefix in front of every frame.
inline constexpr std::size_t kLengthPrefixBytes = 4;
/// Hard cap on one frame's body (type byte + fields). Sized for kHello's
/// serialized spec text (specs are a few KiB) with two orders of margin;
/// a length prefix past this is a protocol violation, not a big frame.
inline constexpr std::size_t kMaxFrameBody = 1 << 20;
/// Bound on metrics per kRecord — scenarios emit a handful; a count past
/// this is malformed input, not a real record.
inline constexpr std::size_t kMaxMetricsPerRecord = 4096;

enum class FrameType : std::uint8_t {
  kHello = 0,      // master -> worker: spec + seed; worker -> master: ack
  kShard = 1,      // master -> worker: run cases [first, first + count)
  kRecord = 2,     // worker -> master: one case's result
  kShardDone = 3,  // worker -> master: every record of the shard was sent
  kBye = 4,        // master -> worker: run complete, exit cleanly
  kError = 5,      // either direction: fatal, close the connection
};
inline constexpr std::uint8_t kMaxFrameType = 5;

/// Spec handshake. Master -> worker carries the run parameters and the
/// canonical spec text; the worker parses it, re-serializes, and replies
/// with the SHA-256 of what *it* would describe — so a worker binary
/// whose parse/serialize round-trip disagrees with the master's (version
/// skew, spec-semantics drift) fails the handshake instead of silently
/// computing different cases.
struct HelloFrame {
  std::uint32_t proto_version = kProtoVersion;
  std::uint64_t master_seed = 0;  // master -> worker only; 0 in replies
  std::uint64_t n_cases = 0;      // cases this run covers (after --limit)
  std::string spec_sha256;        // sha256_hex of the canonical spec text
  std::string spec_text;          // master -> worker only; empty in replies

  friend bool operator==(const HelloFrame&, const HelloFrame&) = default;
};

struct ShardFrame {
  std::uint64_t first = 0;
  std::uint64_t count = 0;

  friend bool operator==(const ShardFrame&, const ShardFrame&) = default;
};

/// One metric on the wire: the name plus the value's bit pattern
/// (std::bit_cast<std::uint64_t>(double) — exact, NaN-safe).
struct WireMetric {
  std::string name;
  std::uint64_t value_bits = 0;

  friend bool operator==(const WireMetric&, const WireMetric&) = default;
};

/// One case's result. Only (index, group, metrics) travel: the master
/// recomputes the parameter point and seed from its own plan, so the
/// frame stays small and the merged output cannot depend on a worker's
/// idea of the plan.
struct RecordFrame {
  std::uint64_t case_index = 0;
  std::string group;
  std::vector<WireMetric> metrics;

  friend bool operator==(const RecordFrame&, const RecordFrame&) = default;
};

struct ShardDoneFrame {
  std::uint64_t first = 0;
  std::uint64_t count = 0;

  friend bool operator==(const ShardDoneFrame&,
                         const ShardDoneFrame&) = default;
};

struct ByeFrame {
  friend bool operator==(const ByeFrame&, const ByeFrame&) = default;
};

struct ErrorFrame {
  std::string message;

  friend bool operator==(const ErrorFrame&, const ErrorFrame&) = default;
};

/// A decoded frame. The variant index is the FrameType by construction
/// (the alternatives are declared in enum order).
struct Frame {
  std::variant<HelloFrame, ShardFrame, RecordFrame, ShardDoneFrame, ByeFrame,
               ErrorFrame>
      body;

  [[nodiscard]] FrameType type() const {
    return static_cast<FrameType>(body.index());
  }

  friend bool operator==(const Frame&, const Frame&) = default;
};

enum class DecodeError : std::uint8_t {
  kNone = 0,
  kNeedMore,   // buffer ends mid-frame — feed more bytes, not an error
  kOversized,  // length prefix exceeds kMaxFrameBody
  kBadType,    // type byte > kMaxFrameType
  kMalformed,  // a field runs past the declared body or breaks a bound
  kTrailing,   // fields end before the declared body does
};

[[nodiscard]] std::string_view to_string(DecodeError e);

struct DecodeResult {
  std::optional<Frame> frame;  // engaged iff error == kNone
  std::size_t consumed = 0;    // bytes to drop from the stream front
  DecodeError error = DecodeError::kNone;
};

/// Serialize one frame (length prefix included). Throws
/// std::invalid_argument if the body would exceed kMaxFrameBody.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Decode one frame from the front of a stream buffer. Total: never
/// throws, never reads out of bounds. kNeedMore means wait for more
/// bytes; every other non-kNone verdict is a protocol violation and the
/// connection must be dropped.
[[nodiscard]] DecodeResult decode_frame(std::span<const std::uint8_t> stream);

/// Accumulates stream bytes and yields complete frames — the only
/// legitimate way for IO drivers to turn recv() bytes into frames.
class FrameReader {
 public:
  void feed(std::span<const std::uint8_t> data);

  /// Next complete frame, or nullopt when the buffered bytes end
  /// mid-frame. After a protocol violation error() is set and next()
  /// returns nullopt forever.
  [[nodiscard]] std::optional<Frame> next();

  [[nodiscard]] DecodeError error() const { return error_; }

 private:
  std::vector<std::uint8_t> stream_;
  std::size_t consumed_ = 0;
  DecodeError error_ = DecodeError::kNone;
};

/// CaseResult -> wire record (doubles to bit patterns).
[[nodiscard]] RecordFrame to_wire(std::size_t case_index,
                                  const runtime::CaseResult& result);

/// Wire record -> CaseResult. Exact inverse of to_wire.
[[nodiscard]] runtime::CaseResult from_wire(const RecordFrame& record);

}  // namespace thinair::dist
