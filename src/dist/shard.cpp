#include "dist/shard.h"

#include <algorithm>
#include <stdexcept>

namespace thinair::dist {

std::vector<Shard> make_shards(std::uint64_t n_cases,
                               std::uint64_t shard_size) {
  if (shard_size == 0)
    throw std::invalid_argument("make_shards: shard_size must be > 0");
  std::vector<Shard> shards;
  shards.reserve(static_cast<std::size_t>((n_cases + shard_size - 1) /
                                          shard_size));
  for (std::uint64_t first = 0; first < n_cases; first += shard_size)
    shards.push_back(Shard{first, std::min(shard_size, n_cases - first)});
  return shards;
}

std::uint64_t default_shard_size(std::uint64_t n_cases,
                                 std::uint64_t workers) {
  const std::uint64_t w = std::max<std::uint64_t>(workers, 1);
  // ~8 shards per worker; round up so tiny plans still get size >= 1.
  const std::uint64_t target = (n_cases + w * 8 - 1) / (w * 8);
  return std::clamp<std::uint64_t>(target, 1, 4096);
}

}  // namespace thinair::dist
