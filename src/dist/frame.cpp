#include "dist/frame.h"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace thinair::dist {

namespace {

// ---------------------------------------------------------------- encode

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_string(std::vector<std::uint8_t>& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

// ---------------------------------------------------------------- decode

/// Bounds-checked sequential reader over one frame body. Every take_*
/// checks the remaining length first; ok() goes false (and stays false)
/// on the first out-of-bounds read, which decode_frame maps to
/// kMalformed. This cursor is the single place raw body indices live.
class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> body) : body_(body) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool at_end() const { return pos_ == body_.size(); }

  std::uint8_t take_u8() {
    if (!check(1)) return 0;
    return body_[pos_++];
  }

  std::uint32_t take_u32() {
    if (!check(4)) return 0;
    std::uint32_t v = 0;
    v |= static_cast<std::uint32_t>(body_[pos_ + 0]);
    v |= static_cast<std::uint32_t>(body_[pos_ + 1]) << 8;
    v |= static_cast<std::uint32_t>(body_[pos_ + 2]) << 16;
    v |= static_cast<std::uint32_t>(body_[pos_ + 3]) << 24;
    pos_ += 4;
    return v;
  }

  std::uint64_t take_u64() {
    const std::uint64_t lo = take_u32();
    const std::uint64_t hi = take_u32();
    return lo | (hi << 32);
  }

  std::string take_string() {
    const std::uint32_t len = take_u32();
    if (!check(len)) return {};
    std::string s(reinterpret_cast<const char*>(body_.data()) + pos_, len);
    pos_ += len;
    return s;
  }

 private:
  bool check(std::size_t n) {
    if (!ok_ || body_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> body_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

DecodeResult fail(DecodeError error, std::size_t consumed = 0) {
  DecodeResult r;
  r.error = error;
  r.consumed = consumed;
  return r;
}

std::optional<Frame> decode_body(FrameType type, Cursor& c) {
  Frame frame;
  switch (type) {
    case FrameType::kHello: {
      HelloFrame f;
      f.proto_version = c.take_u32();
      f.master_seed = c.take_u64();
      f.n_cases = c.take_u64();
      f.spec_sha256 = c.take_string();
      f.spec_text = c.take_string();
      frame.body = std::move(f);
      break;
    }
    case FrameType::kShard: {
      ShardFrame f;
      f.first = c.take_u64();
      f.count = c.take_u64();
      frame.body = f;
      break;
    }
    case FrameType::kRecord: {
      RecordFrame f;
      f.case_index = c.take_u64();
      f.group = c.take_string();
      const std::uint32_t n_metrics = c.take_u32();
      if (n_metrics > kMaxMetricsPerRecord) return std::nullopt;
      f.metrics.reserve(c.ok() ? n_metrics : 0);
      for (std::uint32_t i = 0; c.ok() && i < n_metrics; ++i) {
        WireMetric m;
        m.name = c.take_string();
        m.value_bits = c.take_u64();
        f.metrics.push_back(std::move(m));
      }
      frame.body = std::move(f);
      break;
    }
    case FrameType::kShardDone: {
      ShardDoneFrame f;
      f.first = c.take_u64();
      f.count = c.take_u64();
      frame.body = f;
      break;
    }
    case FrameType::kBye:
      frame.body = ByeFrame{};
      break;
    case FrameType::kError: {
      ErrorFrame f;
      f.message = c.take_string();
      frame.body = std::move(f);
      break;
    }
  }
  if (!c.ok()) return std::nullopt;
  return frame;
}

}  // namespace

std::string_view to_string(DecodeError e) {
  switch (e) {
    case DecodeError::kNone:
      return "ok";
    case DecodeError::kNeedMore:
      return "incomplete frame";
    case DecodeError::kOversized:
      return "body length exceeds kMaxFrameBody";
    case DecodeError::kBadType:
      return "unknown frame type";
    case DecodeError::kMalformed:
      return "field runs past the declared body";
    case DecodeError::kTrailing:
      return "trailing bytes after the last field";
  }
  return "?";
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::vector<std::uint8_t> out;
  // Placeholder length prefix, patched once the body is built.
  put_u32(out, 0);
  put_u8(out, static_cast<std::uint8_t>(frame.type()));
  switch (frame.type()) {
    case FrameType::kHello: {
      const auto& f = std::get<HelloFrame>(frame.body);
      put_u32(out, f.proto_version);
      put_u64(out, f.master_seed);
      put_u64(out, f.n_cases);
      put_string(out, f.spec_sha256);
      put_string(out, f.spec_text);
      break;
    }
    case FrameType::kShard: {
      const auto& f = std::get<ShardFrame>(frame.body);
      put_u64(out, f.first);
      put_u64(out, f.count);
      break;
    }
    case FrameType::kRecord: {
      const auto& f = std::get<RecordFrame>(frame.body);
      if (f.metrics.size() > kMaxMetricsPerRecord)
        throw std::invalid_argument("dist::encode_frame: too many metrics");
      put_u64(out, f.case_index);
      put_string(out, f.group);
      put_u32(out, static_cast<std::uint32_t>(f.metrics.size()));
      for (const WireMetric& m : f.metrics) {
        put_string(out, m.name);
        put_u64(out, m.value_bits);
      }
      break;
    }
    case FrameType::kShardDone: {
      const auto& f = std::get<ShardDoneFrame>(frame.body);
      put_u64(out, f.first);
      put_u64(out, f.count);
      break;
    }
    case FrameType::kBye:
      break;
    case FrameType::kError: {
      const auto& f = std::get<ErrorFrame>(frame.body);
      put_string(out, f.message);
      break;
    }
  }
  const std::size_t body_len = out.size() - kLengthPrefixBytes;
  if (body_len > kMaxFrameBody)
    throw std::invalid_argument("dist::encode_frame: body exceeds cap");
  const auto len32 = static_cast<std::uint32_t>(body_len);
  out[0] = static_cast<std::uint8_t>(len32);
  out[1] = static_cast<std::uint8_t>(len32 >> 8);
  out[2] = static_cast<std::uint8_t>(len32 >> 16);
  out[3] = static_cast<std::uint8_t>(len32 >> 24);
  return out;
}

DecodeResult decode_frame(std::span<const std::uint8_t> stream) {
  if (stream.size() < kLengthPrefixBytes) return fail(DecodeError::kNeedMore);
  std::uint32_t body_len = 0;
  body_len |= static_cast<std::uint32_t>(stream[0]);
  body_len |= static_cast<std::uint32_t>(stream[1]) << 8;
  body_len |= static_cast<std::uint32_t>(stream[2]) << 16;
  body_len |= static_cast<std::uint32_t>(stream[3]) << 24;
  if (body_len > kMaxFrameBody) return fail(DecodeError::kOversized);
  if (body_len < 1) return fail(DecodeError::kMalformed);  // no type byte
  if (stream.size() - kLengthPrefixBytes < body_len)
    return fail(DecodeError::kNeedMore);

  const std::size_t total = kLengthPrefixBytes + body_len;
  Cursor cursor(stream.subspan(kLengthPrefixBytes, body_len));
  const std::uint8_t type = cursor.take_u8();
  if (type > kMaxFrameType) return fail(DecodeError::kBadType, total);

  std::optional<Frame> frame =
      decode_body(static_cast<FrameType>(type), cursor);
  if (!frame.has_value()) return fail(DecodeError::kMalformed, total);
  if (!cursor.at_end()) return fail(DecodeError::kTrailing, total);

  DecodeResult r;
  r.frame = std::move(frame);
  r.consumed = total;
  return r;
}

void FrameReader::feed(std::span<const std::uint8_t> data) {
  stream_.insert(stream_.end(), data.begin(), data.end());
}

std::optional<Frame> FrameReader::next() {
  if (error_ != DecodeError::kNone) return std::nullopt;
  DecodeResult r = decode_frame(
      std::span<const std::uint8_t>(stream_).subspan(consumed_));
  if (r.error == DecodeError::kNeedMore) {
    // Compact so a long-lived connection does not accumulate the whole
    // stream: drop the already-consumed prefix once it dominates.
    if (consumed_ > 0 && consumed_ >= stream_.size() / 2) {
      stream_.erase(stream_.begin(),
                    stream_.begin() + static_cast<std::ptrdiff_t>(consumed_));
      consumed_ = 0;
    }
    return std::nullopt;
  }
  if (r.error != DecodeError::kNone) {
    error_ = r.error;
    return std::nullopt;
  }
  consumed_ += r.consumed;
  return std::move(r.frame);
}

RecordFrame to_wire(std::size_t case_index,
                    const runtime::CaseResult& result) {
  RecordFrame record;
  record.case_index = case_index;
  record.group = result.group;
  record.metrics.reserve(result.metrics.size());
  for (const runtime::Metric& m : result.metrics)
    record.metrics.push_back(
        WireMetric{m.name, std::bit_cast<std::uint64_t>(m.value)});
  return record;
}

runtime::CaseResult from_wire(const RecordFrame& record) {
  runtime::CaseResult result;
  result.group = record.group;
  result.metrics.reserve(record.metrics.size());
  for (const WireMetric& m : record.metrics)
    result.metrics.push_back(
        runtime::Metric{m.name, std::bit_cast<double>(m.value_bits)});
  return result;
}

}  // namespace thinair::dist
