#pragma once
// Secret material handling.
//
// The protocol's output is a stream of shared secret bytes. SecretPool
// accumulates them and dispenses fixed-size keys, supporting the usage the
// paper's introduction motivates: continuously refreshing encryption keys
// "out of thin air" so that no long-lived key material exists that could
// be stolen ([4]'s dynamic-secrets model). Draws are destructive: bytes
// are handed out once and wiped, one-time-pad style.

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

namespace thinair::core {

class SecretPool {
 public:
  /// Append freshly agreed secret bytes.
  void deposit(const std::vector<std::uint8_t>& bytes);

  /// Bytes currently available.
  [[nodiscard]] std::size_t available() const { return buffer_.size(); }
  [[nodiscard]] std::size_t total_deposited() const { return deposited_; }

  /// Remove and return `count` bytes, or std::nullopt when fewer are
  /// available (never hands out partial keys).
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> draw(
      std::size_t count);

  /// Convenience: draw a 128-bit key.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> draw_key128() {
    return draw(16);
  }

 private:
  std::deque<std::uint8_t> buffer_;
  std::size_t deposited_ = 0;
};

}  // namespace thinair::core
