#include "core/pool.h"

#include <algorithm>
#include <limits>
#include <set>
#include <stdexcept>

#include "gf/mds.h"

namespace thinair::core {

YPool::YPool(std::size_t universe, std::vector<packet::NodeId> receivers)
    : universe_(universe), receivers_(std::move(receivers)) {}

void YPool::add(Entry entry) {
  for (const packet::Term& t : entry.combo.terms())
    if (t.index >= universe_)
      throw std::out_of_range("YPool::add: term index >= universe");
  entries_.push_back(std::move(entry));
}

std::size_t YPool::count_for(packet::NodeId t) const {
  std::size_t count = 0;
  for (const Entry& e : entries_)
    if (e.audience.contains(t)) ++count;
  return count;
}

std::vector<std::size_t> YPool::known_indices(packet::NodeId t) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < entries_.size(); ++i)
    if (entries_[i].audience.contains(t)) out.push_back(i);
  return out;
}

std::size_t YPool::group_secret_size() const {
  if (receivers_.empty()) return 0;
  std::size_t l = std::numeric_limits<std::size_t>::max();
  for (packet::NodeId r : receivers_) l = std::min(l, count_for(r));
  return l;
}

namespace {

void fill_rows(const std::vector<YPool::Entry>& entries, gf::Matrix& m) {
  for (std::size_t i = 0; i < entries.size(); ++i)
    for (const packet::Term& t : entries[i].combo.terms())
      m.set(i, t.index, t.coeff);
}

}  // namespace

gf::Matrix YPool::rows() const {
  gf::Matrix m(entries_.size(), universe_);
  fill_rows(entries_, m);
  return m;
}

gf::Matrix YPool::rows(packet::PayloadArena& arena) const {
  gf::Matrix m(entries_.size(), universe_, arena);
  fill_rows(entries_, m);
  return m;
}

std::vector<packet::Combination> YPool::combinations() const {
  std::vector<packet::Combination> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.combo);
  return out;
}

std::string_view to_string(PoolStrategy s) {
  switch (s) {
    case PoolStrategy::kClassShared: return "class-shared";
    case PoolStrategy::kTerminalMds: return "terminal-mds";
  }
  return "unknown";
}

std::optional<PoolStrategy> pool_strategy_from_string(std::string_view name) {
  for (const PoolStrategy s :
       {PoolStrategy::kClassShared, PoolStrategy::kTerminalMds})
    if (name == to_string(s)) return s;
  return std::nullopt;
}

namespace {

/// Pool-wide y-packet budget: phase 2 codes the whole pool with one square
/// MDS matrix over GF(2^8).
constexpr std::size_t kPoolLimit = gf::mds::kMaxColumns;

net::NodeSet exempt_set(packet::NodeId alice,
                        std::initializer_list<packet::NodeId> others) {
  net::NodeSet s;
  s.insert(alice);
  for (packet::NodeId o : others) s.insert(o);
  return s;
}

/// Per-terminal ceilings: the paper's M_i estimate for each receiver.
std::vector<std::size_t> terminal_ceilings(const ReceptionTable& table,
                                           const EveBoundEstimator& est) {
  std::vector<std::size_t> out;
  out.reserve(table.receivers().size());
  for (packet::NodeId r : table.receivers())
    out.push_back(
        est.missed_within(table.received(r), exempt_set(table.alice(), {r})));
  return out;
}

void build_class_shared(const ReceptionTable& table,
                        const EveBoundEstimator& estimator,
                        PoolBuildResult& result) {
  const auto& receivers = table.receivers();
  std::vector<std::size_t> remaining = result.ceilings;

  const auto receiver_index = [&](packet::NodeId t) {
    const auto it = std::find(receivers.begin(), receivers.end(), t);
    return static_cast<std::size_t>(it - receivers.begin());
  };

  // Classes arrive most-shared first so widely shared packets fill the
  // ceilings before narrowly shared ones.
  for (const ReceptionTable::Class& cls : table.classes()) {
    net::NodeSet exempt;
    exempt.insert(table.alice());
    std::vector<std::size_t> member_idx;
    for (packet::NodeId r : receivers)
      if (cls.members.contains(r)) {
        exempt.insert(r);
        member_idx.push_back(receiver_index(r));
      }

    // GF(2^8) Vandermonde generators support at most 255 columns; split
    // oversized classes into chunks, each coded independently (chunks keep
    // the disjoint-support property, so joint secrecy is unaffected).
    std::size_t class_cap_total = 0;
    std::size_t class_alloc_total = 0;
    bool class_limit_hit = false;
    for (std::size_t begin = 0; begin < cls.indices.size();
         begin += gf::mds::kMaxColumns) {
      const std::size_t end =
          std::min(begin + gf::mds::kMaxColumns, cls.indices.size());
      const std::vector<std::uint32_t> chunk(
          cls.indices.begin() + static_cast<std::ptrdiff_t>(begin),
          cls.indices.begin() + static_cast<std::ptrdiff_t>(end));

      const std::size_t cap = estimator.missed_within(chunk, exempt);
      const std::size_t pool_budget = kPoolLimit - result.pool.size();
      std::size_t ceiling_budget = std::numeric_limits<std::size_t>::max();
      for (std::size_t mi : member_idx)
        ceiling_budget = std::min(ceiling_budget, remaining[mi]);
      // What the estimator and the per-terminal ceilings would grant,
      // before the pool-wide budget truncates it.
      const std::size_t want = std::min({cap, chunk.size(), ceiling_budget});
      const std::size_t n_t = std::min(want, pool_budget);
      if (n_t < want) class_limit_hit = true;
      class_cap_total += cap;
      class_alloc_total += n_t;
      if (n_t == 0) continue;

      for (std::size_t mi : member_idx) remaining[mi] -= n_t;

      // MDS rows over the chunk's own x-packets: any n_t columns of the
      // generator are independent, so the n_t outputs stay jointly uniform
      // for any adversary missing at least n_t of the inputs.
      const gf::Matrix g = gf::mds::vandermonde(n_t, chunk.size());
      for (std::size_t row = 0; row < n_t; ++row) {
        packet::Combination combo;
        for (std::size_t col = 0; col < chunk.size(); ++col)
          combo.add(chunk[col], g.at(row, col));
        result.pool.add(YPool::Entry{std::move(combo), cls.members});
      }
    }
    result.allocations.push_back(PoolAllocation{cls.members,
                                                cls.indices.size(),
                                                class_cap_total,
                                                class_alloc_total,
                                                class_limit_hit});
  }
}

void build_terminal_mds(const ReceptionTable& table,
                        PoolBuildResult& result) {
  const auto& receivers = table.receivers();

  // Keep within the pool budget: scale every M_i down proportionally when
  // the naive total would overflow (conservative — shorter secrets).
  std::vector<std::size_t> quota = result.ceilings;
  std::size_t total = 0;
  for (std::size_t q : quota) total += q;
  if (total > kPoolLimit) {
    for (std::size_t& q : quota)
      q = q * kPoolLimit / total;  // floor scaling
  }

  // Audience of a row supported on R_i: every receiver whose reception set
  // contains the row's support. Identical reception sets produce identical
  // rows; dedup merges them (that is the only sharing this construction
  // yields, by design — count-robustness over R_i needs full-set support).
  const auto key_of = [](const packet::Combination& combo) {
    std::string key;
    key.reserve(combo.terms().size() * 5);
    for (const packet::Term& t : combo.terms()) {
      for (int b = 0; b < 4; ++b)
        key.push_back(static_cast<char>((t.index >> (8 * b)) & 0xFF));
      key.push_back(static_cast<char>(t.coeff.value()));
    }
    return key;
  };
  std::set<std::string> seen;

  for (std::size_t ri = 0; ri < receivers.size(); ++ri) {
    const std::vector<std::uint32_t> r_set = table.received(receivers[ri]);
    std::size_t added = 0;
    bool pool_full = false;  // the in-loop backstop tripped

    // Chunk reception sets wider than the field allows; quota is spent
    // chunk by chunk (earlier chunks first).
    std::size_t budget = quota[ri];
    for (std::size_t begin = 0;
         begin < r_set.size() && budget > 0 && !pool_full;
         begin += gf::mds::kMaxColumns) {
      const std::size_t end =
          std::min(begin + gf::mds::kMaxColumns, r_set.size());
      const std::vector<std::uint32_t> chunk(
          r_set.begin() + static_cast<std::ptrdiff_t>(begin),
          r_set.begin() + static_cast<std::ptrdiff_t>(end));
      const std::size_t m_i = std::min(budget, chunk.size());
      budget -= m_i;

      const gf::Matrix g = gf::mds::vandermonde(m_i, chunk.size());
      for (std::size_t row = 0; row < m_i; ++row) {
        packet::Combination combo;
        for (std::size_t col = 0; col < chunk.size(); ++col)
          combo.add(chunk[col], g.at(row, col));

        // A row already in the pool (a receiver with an identical chunk
        // went first) is shared, not re-added; its audience was computed
        // from every receiver at insert time and already covers us.
        const auto [it, is_new] = seen.insert(key_of(combo));
        if (!is_new) continue;
        // Only a genuinely new row can hit the pool budget. Un-record a
        // truncated row's key, so it never becomes a phantom entry that
        // masquerades later identical rows as duplicates.
        if (result.pool.size() >= kPoolLimit) {
          seen.erase(it);
          pool_full = true;
          break;
        }
        net::NodeSet audience;
        for (packet::NodeId other : receivers) {
          bool subset = true;
          for (const packet::Term& t : combo.terms())
            if (!table.has(other, t.index)) {
              subset = false;
              break;
            }
          if (subset) audience.insert(other);
        }
        result.pool.add(YPool::Entry{std::move(combo), audience});
        ++added;
      }
    }

    net::NodeSet self;
    self.insert(receivers[ri]);
    // Proportional scaling is the usual way the pool budget bites; the
    // in-loop backstop catches estimators that over-report. Both count
    // as a limit hit.
    const bool limit_hit = pool_full || quota[ri] < result.ceilings[ri];
    result.allocations.push_back(
        PoolAllocation{self, r_set.size(), quota[ri], added, limit_hit});
  }
}

}  // namespace

PoolBuildResult build_pool(const ReceptionTable& table,
                           const EveBoundEstimator& estimator,
                           PoolStrategy strategy) {
  PoolBuildResult result{YPool(table.universe(), table.receivers()), {}, {}};
  result.ceilings = terminal_ceilings(table, estimator);

  switch (strategy) {
    case PoolStrategy::kClassShared:
      build_class_shared(table, estimator, result);
      break;
    case PoolStrategy::kTerminalMds:
      build_terminal_mds(table, result);
      break;
  }
  return result;
}

}  // namespace thinair::core
