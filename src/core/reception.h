#pragma once
// Reception bookkeeping for one protocol round.
//
// After Alice transmits her N x-packets (phase 1 step 1) every terminal
// reliably broadcasts which of them it received (step 2). This table stores
// those reports and derives the structure the pool construction needs: the
// partition of x-indices into *classes* by exact reception pattern (the set
// of receivers that got the packet). Classes have disjoint x-support, which
// is what makes per-class MDS coding jointly secret (see pool.h).

#include <cstdint>
#include <vector>

#include "net/trace.h"
#include "packet/types.h"

namespace thinair::core {

/// Reception state of one round: Alice (who knows all N packets she sent)
/// plus the reports of the other terminals.
class ReceptionTable {
 public:
  /// `receivers` = the terminals other than Alice, in protocol order.
  ReceptionTable(packet::NodeId alice, std::vector<packet::NodeId> receivers,
                 std::size_t universe);

  [[nodiscard]] packet::NodeId alice() const { return alice_; }
  [[nodiscard]] const std::vector<packet::NodeId>& receivers() const {
    return receivers_;
  }
  [[nodiscard]] std::size_t universe() const { return universe_; }

  /// Record terminal t's report (indices must be < universe, any order).
  void set_received(packet::NodeId t, const std::vector<std::uint32_t>& idx);

  [[nodiscard]] bool has(packet::NodeId t, std::uint32_t index) const;
  [[nodiscard]] std::vector<std::uint32_t> received(packet::NodeId t) const;
  [[nodiscard]] std::size_t received_count(packet::NodeId t) const;

  /// |received(a) \ received(b)|: packets a got that b missed — the paper's
  /// "pretend Tb is Eve" quantity (Sec. 3.3).
  [[nodiscard]] std::size_t missed_by(packet::NodeId a,
                                      packet::NodeId b) const;

  /// One reception class: the x-indices received by exactly the receiver
  /// set `members` (Alice implicitly knows them all).
  struct Class {
    net::NodeSet members;
    std::vector<std::uint32_t> indices;
  };

  /// The classes with a non-empty receiver set, ordered by descending
  /// member count (ties broken by mask) — the order the pool builder
  /// allocates in. Packets nobody received are excluded: they can never
  /// contribute to a shared secret.
  [[nodiscard]] std::vector<Class> classes() const;

 private:
  [[nodiscard]] std::size_t receiver_index(packet::NodeId t) const;

  packet::NodeId alice_;
  std::vector<packet::NodeId> receivers_;
  std::size_t universe_;
  // bitmaps_[r][w]: words of the reception bitmap of receiver r.
  std::vector<std::vector<std::uint64_t>> bitmaps_;
};

}  // namespace thinair::core
