#include "core/session.h"

#include <algorithm>
#include <stdexcept>

#include "analysis/eve_view.h"
#include "net/reliable.h"
#include "packet/serialize.h"

namespace thinair::core {

double SessionResult::reliability() const {
  std::size_t total = 0;
  std::size_t hidden = 0;
  for (const RoundOutcome& r : rounds) {
    total += r.leakage.secret_dims;
    hidden += r.leakage.hidden_dims;
  }
  return total == 0 ? 1.0
                    : static_cast<double>(hidden) / static_cast<double>(total);
}

double SessionResult::efficiency() const {
  const std::size_t bits = ledger.total_bits();
  return bits == 0 ? 0.0
                   : static_cast<double>(secret_bits()) /
                         static_cast<double>(bits);
}

double SessionResult::data_efficiency(std::size_t payload_bytes) const {
  std::size_t packets = 0;
  for (const RoundOutcome& r : rounds) packets += r.data_packets;
  const std::size_t bits = packets * payload_bytes * 8;
  return bits == 0 ? 0.0
                   : static_cast<double>(secret_bits()) /
                         static_cast<double>(bits);
}

double SessionResult::secret_rate_bps() const {
  return duration_s <= 0.0
             ? 0.0
             : static_cast<double>(secret_bits()) / duration_s;
}

GroupSecretSession::GroupSecretSession(net::Medium& medium,
                                       SessionConfig config)
    : medium_(&medium) {
  reset(medium, std::move(config));
}

void GroupSecretSession::reset(net::Medium& medium, SessionConfig config) {
  if (medium.terminals().size() < 2)
    throw std::invalid_argument("GroupSecretSession: need >= 2 terminals");
  if (config.x_packets_per_round == 0)
    throw std::invalid_argument("GroupSecretSession: N == 0");
  if (config.payload_bytes == 0)
    throw std::invalid_argument("GroupSecretSession: empty payloads");
  medium_ = &medium;
  config_ = std::move(config);
  next_round_ = 0;
  // Keep the owned arena's blocks warm for the next lifecycle, but apply
  // the watermark policy so one pathological session cannot pin its peak.
  owned_arena_.reset();
  owned_arena_.trim_to_watermark();
}

SessionResult GroupSecretSession::run() {
  const auto terminals = medium_->terminals();
  const std::size_t rounds =
      config_.rounds == 0 ? terminals.size() : config_.rounds;

  SessionResult result;
  const net::Ledger ledger_before = medium_->ledger();
  const double time_before = medium_->now();

  for (std::size_t r = 0; r < rounds; ++r) {
    const packet::NodeId alice =
        config_.rotate_alice ? terminals[r % terminals.size()] : terminals[0];
    result.rounds.push_back(
        run_round(alice, packet::RoundId{next_round_++}, result));
  }

  result.ledger = medium_->ledger().since(ledger_before);
  result.duration_s = medium_->now() - time_before;
  return result;
}

RoundOutcome GroupSecretSession::run_round(packet::NodeId alice,
                                           packet::RoundId round,
                                           SessionResult& result) {
  const std::size_t n = config_.x_packets_per_round;
  const std::size_t payload = config_.payload_bytes;

  // All round payloads live in the arena; everything a later round needs
  // is copied out (the secret bytes, the outcome counters), so the round
  // boundary is the natural reclamation point.
  packet::PayloadArena& arena = this->arena();
  arena.reset();

  // Phase 1, steps 1-2.
  const RoundContext ctx =
      open_round(*medium_, alice, round, n, payload, arena);

  // Phase 1, steps 3-4: the y-pool and its public identities.
  receiver_cells_.clear();
  if (!config_.estimator.occupied_cells.empty())
    for (packet::NodeId r : ctx.receivers)
      receiver_cells_.push_back(config_.estimator.occupied_cells.at(r.value));
  const auto estimator =
      build_estimator(config_.estimator, ctx.table, ctx.eve_indices,
                      ctx.slot_of, receiver_cells_);
  const Phase1Result phase1 =
      run_phase1(ctx.table, *estimator, config_.pool_strategy);
  const YPool& pool = phase1.build.pool;

  // Broadcasts reuse one scratch packet: its payload buffer keeps its
  // capacity across rounds and pooled lifetimes.
  scratch_pkt_.kind = packet::Kind::kAnnouncement;
  scratch_pkt_.source = alice;
  scratch_pkt_.round = round;
  scratch_pkt_.seq = packet::PacketSeq{0};
  packet::encode_into(phase1.announcement, scratch_pkt_.payload);
  net::reliable_broadcast(*medium_, alice, scratch_pkt_,
                          net::TrafficClass::kControl);

  // Phase 2: z-packets (contents) and s-packet identities.
  const Phase2Plan plan = plan_phase2(pool);
  const std::vector<packet::ConstByteSpan> y_contents =
      all_y_contents(pool, ctx.x_payloads, payload, arena);
  const std::vector<packet::ConstByteSpan> z_payloads =
      make_z_payloads(plan, y_contents, payload, arena);

  scratch_pkt_.kind = packet::Kind::kCoded;
  for (std::size_t zi = 0; zi < z_payloads.size(); ++zi) {
    scratch_pkt_.seq = packet::PacketSeq{static_cast<std::uint32_t>(zi)};
    scratch_pkt_.payload.assign(z_payloads[zi].begin(), z_payloads[zi].end());
    net::reliable_broadcast(*medium_, alice, scratch_pkt_,
                            net::TrafficClass::kCoded);
  }
  if (plan.group_size > 0) {
    scratch_pkt_.kind = packet::Kind::kAnnouncement;
    scratch_pkt_.seq = packet::PacketSeq{1};
    packet::encode_into(plan.s_announcement, scratch_pkt_.payload);
    net::reliable_broadcast(*medium_, alice, scratch_pkt_,
                            net::TrafficClass::kControl);
  }

  const std::vector<packet::ConstByteSpan> s_payloads =
      plan.group_size > 0
          ? make_s_payloads(plan, y_contents, payload, arena)
          : std::vector<packet::ConstByteSpan>{};

  // Every receiver decodes the secret for real and must agree with Alice.
  // Per-receiver scratch is rewound after each check so the round's peak
  // footprint stays one receiver deep.
  if (plan.group_size > 0) {
    const auto spans_equal = [](std::span<const packet::ConstByteSpan> a,
                                std::span<const packet::ConstByteSpan> b) {
      if (a.size() != b.size()) return false;
      for (std::size_t i = 0; i < a.size(); ++i)
        if (!std::equal(a[i].begin(), a[i].end(), b[i].begin(), b[i].end()))
          return false;
      return true;
    };
    for (std::size_t ri = 0; ri < ctx.receivers.size(); ++ri) {
      const packet::PayloadArena::Mark mark = arena.mark();
      const auto own_y = reconstruct_y(pool, ctx.receivers[ri],
                                       ctx.rx_payloads[ri], payload, arena);
      const auto full_y =
          recover_all_y(plan, own_y, z_payloads, payload, arena);
      const auto own_s = make_s_payloads(plan, full_y, payload, arena);
      if (!spans_equal(own_s, s_payloads))
        throw std::logic_error(
            "GroupSecretSession: terminal decoded a different secret");
      arena.rewind(mark);
    }
  }

  // Eve's exact view and this round's score. The pool matrix and the
  // H*G / C*G products are per-round scratch: carve them from the arena.
  const gf::Matrix g = pool.rows(arena);
  analysis::EveView eve(n);
  eve.observe_x(ctx.eve_indices);
  if (plan.pool_size > 0 && plan.h.rows() > 0)
    eve.observe_coded(plan.h, g, arena);  // public z contents in x-space

  RoundOutcome outcome;
  outcome.alice = alice;
  outcome.universe = n;
  for (packet::NodeId r : ctx.receivers)
    outcome.pairwise_size.push_back(pool.count_for(r));
  outcome.pool_size = pool.size();
  outcome.group_packets = plan.group_size;
  outcome.secret_bits = secret_bits(plan, payload);
  outcome.data_packets = n + (pool.size() - plan.group_size);
  const gf::Matrix secret_rows =
      plan.group_size > 0 ? plan.c.mul(g, arena) : gf::Matrix(0, n);
  outcome.leakage = analysis::compute_leakage(eve, secret_rows);

  for (const packet::ConstByteSpan s : s_payloads)
    result.secret.insert(result.secret.end(), s.begin(), s.end());

  return outcome;
}

}  // namespace thinair::core
