#pragma once
// Phase 1: pair-wise secrets (Sec. 3.1).
//
// Inputs: the round's reception table (step 2's reports) and an estimator
// of Eve's losses. Output: the y-pool, the public announcement carrying
// the y-packet *identities* (step 3 — contents are never transmitted), and
// helpers for both sides of the computation:
//   - Alice, who knows every x-packet she sent, evaluates all y contents;
//   - terminal T_i reconstructs the y-packets whose combination support
//     lies inside its reception set (step 4).
//
// Content evaluation comes in two forms: the arena path (spans in, arena
// spans out — what the session and the sweep runtime use; empty input
// span = missed x-packet, empty output span = not in the audience) and
// the original owning-vector form kept for tests and external callers.

#include <optional>
#include <vector>

#include "core/pool.h"
#include "packet/arena.h"
#include "packet/serialize.h"

namespace thinair::core {

struct Phase1Result {
  PoolBuildResult build;
  packet::Announcement announcement;  // identities of all M y-packets
};

/// Run Alice's phase-1 computation (steps 3's construction, given step 2's
/// table). Pure function of its inputs.
[[nodiscard]] Phase1Result run_phase1(
    const ReceptionTable& table, const EveBoundEstimator& estimator,
    PoolStrategy strategy = PoolStrategy::kClassShared);

/// Evaluate every y-packet's content from the full x-payload vector
/// (Alice's side; she transmitted all N payloads). Arena path: results
/// are carved from `arena`, one span per y in pool order. Requires
/// payload_size > 0.
[[nodiscard]] std::vector<packet::ConstByteSpan> all_y_contents(
    const YPool& pool, std::span<const packet::ConstByteSpan> x_payloads,
    std::size_t payload_size, packet::PayloadArena& arena);

/// Owning-vector form of the above.
[[nodiscard]] std::vector<packet::Payload> all_y_contents(
    const YPool& pool, std::span<const packet::Payload> x_payloads,
    std::size_t payload_size);

/// Terminal-side reconstruction (step 4), arena path: x_payloads[i] must
/// view the payload of x_i for every received index (empty span =
/// missed). Returns, for each y in pool order, an arena span with the
/// content when the terminal is in the y's audience, an empty span
/// otherwise. Requires payload_size > 0.
[[nodiscard]] std::vector<packet::ConstByteSpan> reconstruct_y(
    const YPool& pool, packet::NodeId terminal,
    std::span<const packet::ConstByteSpan> x_payloads,
    std::size_t payload_size, packet::PayloadArena& arena);

/// Owning form: x_payloads[i] may be std::nullopt for missed packets;
/// result is std::nullopt outside the audience.
[[nodiscard]] std::vector<std::optional<packet::Payload>> reconstruct_y(
    const YPool& pool, packet::NodeId terminal,
    std::span<const std::optional<packet::Payload>> x_payloads,
    std::size_t payload_size);

}  // namespace thinair::core
