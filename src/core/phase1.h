#pragma once
// Phase 1: pair-wise secrets (Sec. 3.1).
//
// Inputs: the round's reception table (step 2's reports) and an estimator
// of Eve's losses. Output: the y-pool, the public announcement carrying
// the y-packet *identities* (step 3 — contents are never transmitted), and
// helpers for both sides of the computation:
//   - Alice, who knows every x-packet she sent, evaluates all y contents;
//   - terminal T_i reconstructs the y-packets whose combination support
//     lies inside its reception set (step 4).

#include <optional>
#include <vector>

#include "core/pool.h"
#include "packet/serialize.h"

namespace thinair::core {

struct Phase1Result {
  PoolBuildResult build;
  packet::Announcement announcement;  // identities of all M y-packets
};

/// Run Alice's phase-1 computation (steps 3's construction, given step 2's
/// table). Pure function of its inputs.
[[nodiscard]] Phase1Result run_phase1(
    const ReceptionTable& table, const EveBoundEstimator& estimator,
    PoolStrategy strategy = PoolStrategy::kClassShared);

/// Evaluate every y-packet's content from the full x-payload vector
/// (Alice's side; she transmitted all N payloads).
[[nodiscard]] std::vector<packet::Payload> all_y_contents(
    const YPool& pool, std::span<const packet::Payload> x_payloads,
    std::size_t payload_size);

/// Terminal-side reconstruction (step 4): x_payloads[i] must hold the
/// payload of x_i for every received index i (and may be std::nullopt for
/// missed packets). Returns, for each y in pool order, the content when
/// the terminal is in the y's audience, std::nullopt otherwise.
[[nodiscard]] std::vector<std::optional<packet::Payload>> reconstruct_y(
    const YPool& pool, packet::NodeId terminal,
    std::span<const std::optional<packet::Payload>> x_payloads,
    std::size_t payload_size);

}  // namespace thinair::core
