#include "core/round.h"

#include <stdexcept>

#include "channel/interference.h"
#include "net/reliable.h"
#include "packet/serialize.h"

namespace thinair::core {

RoundContext open_round(net::Medium& medium, packet::NodeId alice,
                        packet::RoundId round, std::size_t n,
                        std::size_t payload_bytes,
                        packet::PayloadArena& arena) {
  if (payload_bytes == 0)
    throw std::invalid_argument("open_round: payload_bytes == 0");
  const auto terminals = medium.terminals();
  const auto eavesdroppers = medium.eavesdroppers();

  std::vector<packet::NodeId> receivers;
  for (packet::NodeId t : terminals)
    if (t != alice) receivers.push_back(t);

  RoundContext ctx{
      .alice = alice,
      .receivers = receivers,
      .x_payloads = std::vector<packet::ConstByteSpan>(n),
      .rx_payloads = std::vector<std::vector<packet::ConstByteSpan>>(
          receivers.size(), std::vector<packet::ConstByteSpan>(n)),
      .rx_indices = std::vector<std::vector<std::uint32_t>>(receivers.size()),
      .eve_indices = {},
      .slot_of = std::vector<std::size_t>(n, 0),
      .table = ReceptionTable(alice, receivers, n),
  };

  // Step 1: N random payloads, broadcast once each. Payload bytes are
  // carved from the round arena (one bump per packet, contiguous across
  // the round); the frame reuses one Packet whose payload buffer keeps
  // its capacity across all N transmissions — this loop dominates every
  // experiment.
  packet::Packet pkt{.kind = packet::Kind::kData,
                     .source = alice,
                     .round = round,
                     .seq = packet::PacketSeq{0},
                     .payload = {}};
  pkt.payload.reserve(payload_bytes);
  for (std::uint32_t i = 0; i < n; ++i) {
    const packet::ByteSpan body = arena.alloc_uninit(payload_bytes);
    for (std::uint8_t& b : body) b = medium.rng().next_byte();
    ctx.x_payloads[i] = body;

    pkt.seq = packet::PacketSeq{i};
    pkt.payload.assign(body.begin(), body.end());
    ctx.slot_of[i] = medium.slot() % channel::InterferenceSchedule::kPatterns;
    const net::Medium::TxResult tx =
        medium.transmit(alice, pkt, net::TrafficClass::kData);

    for (std::size_t ri = 0; ri < receivers.size(); ++ri) {
      if (tx.delivered.contains(receivers[ri])) {
        ctx.rx_payloads[ri][i] = ctx.x_payloads[i];
        ctx.rx_indices[ri].push_back(i);
      }
    }
    for (packet::NodeId e : eavesdroppers) {
      if (tx.delivered.contains(e)) {
        ctx.eve_indices.push_back(i);
        break;  // union view: one antenna hearing it is enough
      }
    }
  }

  // Step 2: reliable reception reports.
  for (std::size_t ri = 0; ri < receivers.size(); ++ri) {
    ctx.table.set_received(receivers[ri], ctx.rx_indices[ri]);
    const packet::ReceptionReport report{static_cast<std::uint32_t>(n),
                                         ctx.rx_indices[ri]};
    const packet::Packet report_pkt{.kind = packet::Kind::kReport,
                                    .source = receivers[ri],
                                    .round = round,
                                    .seq = packet::PacketSeq{0},
                                    .payload = packet::encode(report)};
    net::reliable_broadcast(medium, receivers[ri], report_pkt,
                            net::TrafficClass::kControl);
  }

  return ctx;
}

}  // namespace thinair::core
