#include "core/phase2.h"

#include <stdexcept>

#include "gf/encode.h"
#include "gf/gather.h"
#include "gf/mds.h"

namespace thinair::core {

namespace {

packet::Announcement announcement_from(const gf::Matrix& rows) {
  packet::Announcement a;
  a.combinations.reserve(rows.rows());
  for (std::size_t i = 0; i < rows.rows(); ++i) {
    packet::Combination combo;
    for (std::size_t j = 0; j < rows.cols(); ++j)
      combo.add(static_cast<std::uint32_t>(j), rows.at(i, j));
    a.combinations.push_back(std::move(combo));
  }
  return a;
}

// Both forms of outputs = rows * inputs now run through the fused
// gf::encode tiling (each input streamed once per block of
// gf::kMaxFusedRows output rows).

std::vector<packet::Payload> apply_rows(
    const gf::Matrix& rows, std::span<const packet::Payload> inputs,
    std::size_t payload_size) {
  if (inputs.size() != rows.cols())
    throw std::invalid_argument("apply_rows: input count mismatch");
  std::vector<packet::Payload> out(rows.rows());
  for (packet::Payload& p : out) p.assign(payload_size, 0);
  if (payload_size == 0) return out;
  const std::vector<packet::ConstByteSpan> ins(inputs.begin(), inputs.end());
  std::vector<packet::ByteSpan> outs(out.begin(), out.end());
  gf::encode(rows, ins, outs, payload_size);
  return out;
}

std::vector<packet::ConstByteSpan> apply_rows(
    const gf::Matrix& rows, std::span<const packet::ConstByteSpan> inputs,
    std::size_t payload_size, packet::PayloadArena& arena) {
  if (payload_size == 0)
    throw std::invalid_argument("apply_rows: payload_size == 0");
  if (inputs.size() != rows.cols())
    throw std::invalid_argument("apply_rows: input count mismatch");
  return gf::encode(rows, inputs, payload_size, arena);
}

}  // namespace

Phase2Plan plan_phase2(const YPool& pool) {
  return plan_phase2(pool.size(), pool.group_secret_size());
}

Phase2Plan plan_phase2(std::size_t pool_size, std::size_t group_size) {
  Phase2Plan plan;
  plan.pool_size = pool_size;
  plan.group_size = group_size;

  const std::size_t m = plan.pool_size;
  const std::size_t l = plan.group_size;
  if (l > m) throw std::invalid_argument("plan_phase2: L > M");
  if (m == 0 || l == 0) {
    // No shared secret possible this round (the paper's worst case).
    plan.group_size = 0;
    plan.h = gf::Matrix(0, m);
    plan.c = gf::Matrix(0, m);
    return plan;
  }
  if (m > gf::mds::kMaxColumns)
    throw std::invalid_argument("plan_phase2: pool too large for GF(2^8)");

  const gf::Matrix v = gf::mds::vandermonde_square(m);
  std::vector<std::size_t> top(m - l), bottom(l);
  for (std::size_t i = 0; i < m - l; ++i) top[i] = i;
  for (std::size_t i = 0; i < l; ++i) bottom[i] = m - l + i;
  plan.h = v.select_rows(top);
  plan.c = v.select_rows(bottom);
  plan.z_announcement = announcement_from(plan.h);
  plan.s_announcement = announcement_from(plan.c);
  return plan;
}

std::vector<packet::Payload> make_z_payloads(
    const Phase2Plan& plan, std::span<const packet::Payload> y_contents,
    std::size_t payload_size) {
  return apply_rows(plan.h, y_contents, payload_size);
}

std::vector<packet::ConstByteSpan> make_z_payloads(
    const Phase2Plan& plan, std::span<const packet::ConstByteSpan> y_contents,
    std::size_t payload_size, packet::PayloadArena& arena) {
  return apply_rows(plan.h, y_contents, payload_size, arena);
}

std::vector<packet::Payload> recover_all_y(
    const Phase2Plan& plan,
    std::span<const std::optional<packet::Payload>> own_y,
    std::span<const packet::Payload> z_payloads, std::size_t payload_size) {
  const std::size_t m = plan.pool_size;
  if (own_y.size() != m)
    throw std::invalid_argument("recover_all_y: own_y size != pool size");
  if (z_payloads.size() != plan.h.rows())
    throw std::invalid_argument("recover_all_y: z count mismatch");

  std::vector<std::size_t> unknown;
  for (std::size_t j = 0; j < m; ++j)
    if (!own_y[j].has_value()) unknown.push_back(j);
  if (unknown.size() > plan.h.rows())
    throw std::invalid_argument(
        "recover_all_y: more unknowns than z-packets (M_i < L?)");

  std::vector<packet::Payload> y(m);
  std::vector<std::size_t> known;
  for (std::size_t j = 0; j < m; ++j)
    if (own_y[j].has_value()) {
      y[j] = *own_y[j];
      known.push_back(j);
    }
  if (unknown.empty()) return y;

  // Residual r_i = z_i - sum_{known j} H[i][j] * y_j  =  H[:,unknown] * y_u,
  // fused on the gather side: seed each residual with its z-content, then
  // one gather pass per residual row over the known y's accumulates the
  // subtraction (the residual row is loaded/stored once per block of
  // gf::kMaxFusedRows inputs).
  std::vector<packet::Payload> residual(z_payloads.begin(), z_payloads.end());
  for (const packet::Payload& r : residual)
    if (r.size() != payload_size)
      throw std::invalid_argument("recover_all_y: z payload size mismatch");
  {
    const gf::Matrix hk = plan.h.select_columns(known);
    std::vector<packet::ConstByteSpan> yk;
    yk.reserve(known.size());
    for (std::size_t j : known) yk.push_back(y[j]);
    for (std::size_t i = 0; i < residual.size(); ++i)
      gf::gather(hk.row(i), yk, residual[i]);
  }

  // Solve the (M - L) x |unknown| system; full column rank is guaranteed by
  // the Vandermonde structure. We invert a square |unknown| x |unknown|
  // subsystem built from the first |unknown| z-rows (any such subset of
  // Vandermonde rows 0..M-L-1 restricted to |unknown| columns is
  // invertible).
  std::vector<std::size_t> rows_used(unknown.size());
  for (std::size_t i = 0; i < unknown.size(); ++i) rows_used[i] = i;
  const gf::Matrix sub =
      plan.h.select_rows(rows_used).select_columns(unknown);
  const auto inv = sub.inverse();
  if (!inv.has_value())
    throw std::logic_error("recover_all_y: repair system singular");

  std::vector<packet::Payload> repaired(unknown.size());
  for (packet::Payload& p : repaired) p.assign(payload_size, 0);
  {
    std::vector<packet::ConstByteSpan> rc;
    rc.reserve(unknown.size());
    for (std::size_t i : rows_used) rc.push_back(residual[i]);
    for (std::size_t u = 0; u < repaired.size(); ++u)
      gf::gather(inv->row(u), rc, repaired[u]);
  }
  for (std::size_t u = 0; u < unknown.size(); ++u)
    y[unknown[u]] = std::move(repaired[u]);
  return y;
}

std::vector<packet::ConstByteSpan> recover_all_y(
    const Phase2Plan& plan, std::span<const packet::ConstByteSpan> own_y,
    std::span<const packet::ConstByteSpan> z_payloads,
    std::size_t payload_size, packet::PayloadArena& arena) {
  if (payload_size == 0)
    throw std::invalid_argument("recover_all_y: payload_size == 0");
  const std::size_t m = plan.pool_size;
  if (own_y.size() != m)
    throw std::invalid_argument("recover_all_y: own_y size != pool size");
  if (z_payloads.size() != plan.h.rows())
    throw std::invalid_argument("recover_all_y: z count mismatch");
  // Validate every broadcast z-packet (parity with the owning overload),
  // even though only the first |unknown| rows feed the solve below.
  for (const packet::ConstByteSpan z : z_payloads)
    if (z.size() != payload_size)
      throw std::invalid_argument("recover_all_y: z payload size mismatch");

  std::vector<std::size_t> unknown;
  for (std::size_t j = 0; j < m; ++j)
    if (own_y[j].empty()) unknown.push_back(j);
  if (unknown.size() > plan.h.rows())
    throw std::invalid_argument(
        "recover_all_y: more unknowns than z-packets (M_i < L?)");

  std::vector<packet::ConstByteSpan> y(own_y.begin(), own_y.end());
  if (unknown.empty()) return y;
  std::vector<std::size_t> known;
  for (std::size_t j = 0; j < m; ++j)
    if (!own_y[j].empty()) known.push_back(j);

  // Residual r_i = z_i - sum_{known j} H[i][j] * y_j  =  H[:,unknown] * y_u.
  // Only the first |unknown| z-rows feed the solve below; skip the rest.
  // Fused on the gather side: seed each residual with its z-content, then
  // one gather pass per residual row over the known y's.
  std::vector<std::size_t> rows_used(unknown.size());
  for (std::size_t i = 0; i < unknown.size(); ++i) rows_used[i] = i;
  std::vector<packet::ByteSpan> residual(unknown.size());
  for (std::size_t i = 0; i < unknown.size(); ++i)
    residual[i] = arena.copy(z_payloads[i]);
  {
    const gf::Matrix hk =
        plan.h.select_rows(rows_used).select_columns(known);
    std::vector<packet::ConstByteSpan> yk;
    yk.reserve(known.size());
    for (std::size_t j : known) yk.push_back(own_y[j]);
    for (std::size_t i = 0; i < residual.size(); ++i)
      gf::gather(hk.row(i), yk, residual[i]);
  }

  // Solve the square |unknown| x |unknown| subsystem built from the first
  // |unknown| z-rows (any such subset of Vandermonde rows 0..M-L-1
  // restricted to |unknown| columns is invertible).
  const gf::Matrix sub = plan.h.select_rows(rows_used).select_columns(unknown);
  const auto inv = sub.inverse();
  if (!inv.has_value())
    throw std::logic_error("recover_all_y: repair system singular");

  const std::vector<packet::ConstByteSpan> rc(residual.begin(),
                                              residual.end());
  std::vector<packet::ConstByteSpan> repaired(unknown.size());
  for (std::size_t u = 0; u < unknown.size(); ++u)
    repaired[u] = gf::gather(inv->row(u), rc, payload_size, arena);
  for (std::size_t u = 0; u < unknown.size(); ++u)
    y[unknown[u]] = repaired[u];
  return y;
}

std::vector<packet::Payload> make_s_payloads(
    const Phase2Plan& plan, std::span<const packet::Payload> y_contents,
    std::size_t payload_size) {
  return apply_rows(plan.c, y_contents, payload_size);
}

std::vector<packet::ConstByteSpan> make_s_payloads(
    const Phase2Plan& plan, std::span<const packet::ConstByteSpan> y_contents,
    std::size_t payload_size, packet::PayloadArena& arena) {
  return apply_rows(plan.c, y_contents, payload_size, arena);
}

}  // namespace thinair::core
