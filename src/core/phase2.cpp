#include "core/phase2.h"

#include <stdexcept>

#include "gf/mds.h"

namespace thinair::core {

namespace {

packet::Announcement announcement_from(const gf::Matrix& rows) {
  packet::Announcement a;
  a.combinations.reserve(rows.rows());
  for (std::size_t i = 0; i < rows.rows(); ++i) {
    packet::Combination combo;
    for (std::size_t j = 0; j < rows.cols(); ++j)
      combo.add(static_cast<std::uint32_t>(j), rows.at(i, j));
    a.combinations.push_back(std::move(combo));
  }
  return a;
}

std::vector<packet::Payload> apply_rows(
    const gf::Matrix& rows, std::span<const packet::Payload> inputs,
    std::size_t payload_size) {
  if (inputs.size() != rows.cols())
    throw std::invalid_argument("apply_rows: input count mismatch");
  std::vector<packet::Payload> out;
  out.reserve(rows.rows());
  for (std::size_t i = 0; i < rows.rows(); ++i) {
    packet::Payload p(payload_size, 0);
    for (std::size_t j = 0; j < rows.cols(); ++j) {
      const gf::GF256 coeff = rows.at(i, j);
      if (coeff.is_zero()) continue;
      if (inputs[j].size() != payload_size)
        throw std::invalid_argument("apply_rows: payload size mismatch");
      gf::axpy(coeff, inputs[j].data(), p.data(), payload_size);
    }
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<packet::ConstByteSpan> apply_rows(
    const gf::Matrix& rows, std::span<const packet::ConstByteSpan> inputs,
    std::size_t payload_size, packet::PayloadArena& arena) {
  if (payload_size == 0)
    throw std::invalid_argument("apply_rows: payload_size == 0");
  if (inputs.size() != rows.cols())
    throw std::invalid_argument("apply_rows: input count mismatch");
  std::vector<packet::ConstByteSpan> out;
  out.reserve(rows.rows());
  for (std::size_t i = 0; i < rows.rows(); ++i) {
    const packet::ByteSpan p = arena.alloc(payload_size);
    for (std::size_t j = 0; j < rows.cols(); ++j) {
      const gf::GF256 coeff = rows.at(i, j);
      if (coeff.is_zero()) continue;
      if (inputs[j].size() != payload_size)
        throw std::invalid_argument("apply_rows: payload size mismatch");
      gf::axpy(coeff, inputs[j].data(), p.data(), payload_size);
    }
    out.push_back(p);
  }
  return out;
}

}  // namespace

Phase2Plan plan_phase2(const YPool& pool) {
  Phase2Plan plan;
  plan.pool_size = pool.size();
  plan.group_size = pool.group_secret_size();

  const std::size_t m = plan.pool_size;
  const std::size_t l = plan.group_size;
  if (m == 0 || l == 0) {
    // No shared secret possible this round (the paper's worst case).
    plan.group_size = 0;
    plan.h = gf::Matrix(0, m);
    plan.c = gf::Matrix(0, m);
    return plan;
  }
  if (m > gf::mds::kMaxColumns)
    throw std::invalid_argument("plan_phase2: pool too large for GF(2^8)");

  const gf::Matrix v = gf::mds::vandermonde_square(m);
  std::vector<std::size_t> top(m - l), bottom(l);
  for (std::size_t i = 0; i < m - l; ++i) top[i] = i;
  for (std::size_t i = 0; i < l; ++i) bottom[i] = m - l + i;
  plan.h = v.select_rows(top);
  plan.c = v.select_rows(bottom);
  plan.z_announcement = announcement_from(plan.h);
  plan.s_announcement = announcement_from(plan.c);
  return plan;
}

std::vector<packet::Payload> make_z_payloads(
    const Phase2Plan& plan, std::span<const packet::Payload> y_contents,
    std::size_t payload_size) {
  return apply_rows(plan.h, y_contents, payload_size);
}

std::vector<packet::ConstByteSpan> make_z_payloads(
    const Phase2Plan& plan, std::span<const packet::ConstByteSpan> y_contents,
    std::size_t payload_size, packet::PayloadArena& arena) {
  return apply_rows(plan.h, y_contents, payload_size, arena);
}

std::vector<packet::Payload> recover_all_y(
    const Phase2Plan& plan,
    std::span<const std::optional<packet::Payload>> own_y,
    std::span<const packet::Payload> z_payloads, std::size_t payload_size) {
  const std::size_t m = plan.pool_size;
  if (own_y.size() != m)
    throw std::invalid_argument("recover_all_y: own_y size != pool size");
  if (z_payloads.size() != plan.h.rows())
    throw std::invalid_argument("recover_all_y: z count mismatch");

  std::vector<std::size_t> unknown;
  for (std::size_t j = 0; j < m; ++j)
    if (!own_y[j].has_value()) unknown.push_back(j);
  if (unknown.size() > plan.h.rows())
    throw std::invalid_argument(
        "recover_all_y: more unknowns than z-packets (M_i < L?)");

  std::vector<packet::Payload> y(m);
  for (std::size_t j = 0; j < m; ++j)
    if (own_y[j].has_value()) y[j] = *own_y[j];
  if (unknown.empty()) return y;

  // Residual r_i = z_i - sum_{known j} H[i][j] * y_j  =  H[:,unknown] * y_u.
  std::vector<packet::Payload> residual(plan.h.rows());
  for (std::size_t i = 0; i < plan.h.rows(); ++i) {
    packet::Payload r = z_payloads[i];
    if (r.size() != payload_size)
      throw std::invalid_argument("recover_all_y: z payload size mismatch");
    for (std::size_t j = 0; j < m; ++j) {
      if (!own_y[j].has_value()) continue;
      const gf::GF256 coeff = plan.h.at(i, j);
      if (!coeff.is_zero()) gf::axpy(coeff, y[j].data(), r.data(), payload_size);
    }
    residual[i] = std::move(r);
  }

  // Solve the (M - L) x |unknown| system; full column rank is guaranteed by
  // the Vandermonde structure. We invert a square |unknown| x |unknown|
  // subsystem built from the first |unknown| z-rows (any such subset of
  // Vandermonde rows 0..M-L-1 restricted to |unknown| columns is
  // invertible).
  std::vector<std::size_t> rows_used(unknown.size());
  for (std::size_t i = 0; i < unknown.size(); ++i) rows_used[i] = i;
  const gf::Matrix sub =
      plan.h.select_rows(rows_used).select_columns(unknown);
  const auto inv = sub.inverse();
  if (!inv.has_value())
    throw std::logic_error("recover_all_y: repair system singular");

  for (std::size_t u = 0; u < unknown.size(); ++u) {
    packet::Payload p(payload_size, 0);
    for (std::size_t i = 0; i < unknown.size(); ++i) {
      const gf::GF256 coeff = inv->at(u, i);
      if (!coeff.is_zero())
        gf::axpy(coeff, residual[rows_used[i]].data(), p.data(), payload_size);
    }
    y[unknown[u]] = std::move(p);
  }
  return y;
}

std::vector<packet::ConstByteSpan> recover_all_y(
    const Phase2Plan& plan, std::span<const packet::ConstByteSpan> own_y,
    std::span<const packet::ConstByteSpan> z_payloads,
    std::size_t payload_size, packet::PayloadArena& arena) {
  if (payload_size == 0)
    throw std::invalid_argument("recover_all_y: payload_size == 0");
  const std::size_t m = plan.pool_size;
  if (own_y.size() != m)
    throw std::invalid_argument("recover_all_y: own_y size != pool size");
  if (z_payloads.size() != plan.h.rows())
    throw std::invalid_argument("recover_all_y: z count mismatch");
  // Validate every broadcast z-packet (parity with the owning overload),
  // even though only the first |unknown| rows feed the solve below.
  for (const packet::ConstByteSpan z : z_payloads)
    if (z.size() != payload_size)
      throw std::invalid_argument("recover_all_y: z payload size mismatch");

  std::vector<std::size_t> unknown;
  for (std::size_t j = 0; j < m; ++j)
    if (own_y[j].empty()) unknown.push_back(j);
  if (unknown.size() > plan.h.rows())
    throw std::invalid_argument(
        "recover_all_y: more unknowns than z-packets (M_i < L?)");

  std::vector<packet::ConstByteSpan> y(own_y.begin(), own_y.end());
  if (unknown.empty()) return y;

  // Residual r_i = z_i - sum_{known j} H[i][j] * y_j  =  H[:,unknown] * y_u.
  // Only the first |unknown| z-rows feed the solve below; skip the rest.
  std::vector<packet::ByteSpan> residual(unknown.size());
  for (std::size_t i = 0; i < unknown.size(); ++i) {
    const packet::ByteSpan r = arena.copy(z_payloads[i]);
    for (std::size_t j = 0; j < m; ++j) {
      if (own_y[j].empty()) continue;
      const gf::GF256 coeff = plan.h.at(i, j);
      if (!coeff.is_zero())
        gf::axpy(coeff, own_y[j].data(), r.data(), payload_size);
    }
    residual[i] = r;
  }

  // Solve the square |unknown| x |unknown| subsystem built from the first
  // |unknown| z-rows (any such subset of Vandermonde rows 0..M-L-1
  // restricted to |unknown| columns is invertible).
  std::vector<std::size_t> rows_used(unknown.size());
  for (std::size_t i = 0; i < unknown.size(); ++i) rows_used[i] = i;
  const gf::Matrix sub = plan.h.select_rows(rows_used).select_columns(unknown);
  const auto inv = sub.inverse();
  if (!inv.has_value())
    throw std::logic_error("recover_all_y: repair system singular");

  for (std::size_t u = 0; u < unknown.size(); ++u) {
    const packet::ByteSpan p = arena.alloc(payload_size);
    for (std::size_t i = 0; i < unknown.size(); ++i) {
      const gf::GF256 coeff = inv->at(u, i);
      if (!coeff.is_zero())
        gf::axpy(coeff, residual[i].data(), p.data(), payload_size);
    }
    y[unknown[u]] = p;
  }
  return y;
}

std::vector<packet::Payload> make_s_payloads(
    const Phase2Plan& plan, std::span<const packet::Payload> y_contents,
    std::size_t payload_size) {
  return apply_rows(plan.c, y_contents, payload_size);
}

std::vector<packet::ConstByteSpan> make_s_payloads(
    const Phase2Plan& plan, std::span<const packet::ConstByteSpan> y_contents,
    std::size_t payload_size, packet::PayloadArena& arena) {
  return apply_rows(plan.c, y_contents, payload_size, arena);
}

}  // namespace thinair::core
