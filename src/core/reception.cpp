#include "core/reception.h"

#include <algorithm>
#include <bit>
#include <map>
#include <stdexcept>

namespace thinair::core {

ReceptionTable::ReceptionTable(packet::NodeId alice,
                               std::vector<packet::NodeId> receivers,
                               std::size_t universe)
    : alice_(alice), receivers_(std::move(receivers)), universe_(universe) {
  for (packet::NodeId r : receivers_)
    if (r == alice_)
      throw std::invalid_argument("ReceptionTable: Alice among receivers");
  const std::size_t words = (universe_ + 63) / 64;
  bitmaps_.assign(receivers_.size(), std::vector<std::uint64_t>(words, 0));
}

std::size_t ReceptionTable::receiver_index(packet::NodeId t) const {
  const auto it = std::find(receivers_.begin(), receivers_.end(), t);
  if (it == receivers_.end())
    throw std::out_of_range("ReceptionTable: unknown receiver");
  return static_cast<std::size_t>(it - receivers_.begin());
}

void ReceptionTable::set_received(packet::NodeId t,
                                  const std::vector<std::uint32_t>& idx) {
  auto& bm = bitmaps_[receiver_index(t)];
  std::fill(bm.begin(), bm.end(), 0);
  for (std::uint32_t i : idx) {
    if (i >= universe_)
      throw std::out_of_range("ReceptionTable: index >= universe");
    bm[i / 64] |= (std::uint64_t{1} << (i % 64));
  }
}

bool ReceptionTable::has(packet::NodeId t, std::uint32_t index) const {
  if (index >= universe_) return false;
  const auto& bm = bitmaps_[receiver_index(t)];
  return (bm[index / 64] >> (index % 64)) & 1;
}

std::vector<std::uint32_t> ReceptionTable::received(packet::NodeId t) const {
  const auto& bm = bitmaps_[receiver_index(t)];
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < universe_; ++i)
    if ((bm[i / 64] >> (i % 64)) & 1) out.push_back(i);
  return out;
}

std::size_t ReceptionTable::received_count(packet::NodeId t) const {
  const auto& bm = bitmaps_[receiver_index(t)];
  std::size_t count = 0;
  for (std::uint64_t w : bm) count += static_cast<std::size_t>(std::popcount(w));
  return count;
}

std::size_t ReceptionTable::missed_by(packet::NodeId a,
                                      packet::NodeId b) const {
  const auto& ba = bitmaps_[receiver_index(a)];
  const auto& bb = bitmaps_[receiver_index(b)];
  std::size_t count = 0;
  for (std::size_t w = 0; w < ba.size(); ++w)
    count += static_cast<std::size_t>(std::popcount(ba[w] & ~bb[w]));
  return count;
}

std::vector<ReceptionTable::Class> ReceptionTable::classes() const {
  std::map<std::uint64_t, std::vector<std::uint32_t>> by_mask;
  for (std::uint32_t i = 0; i < universe_; ++i) {
    net::NodeSet members;
    for (std::size_t r = 0; r < receivers_.size(); ++r)
      if ((bitmaps_[r][i / 64] >> (i % 64)) & 1) members.insert(receivers_[r]);
    if (!members.empty()) by_mask[members.mask()].push_back(i);
  }
  std::vector<Class> out;
  out.reserve(by_mask.size());
  for (auto& [mask, indices] : by_mask) {
    net::NodeSet members;
    for (packet::NodeId r : receivers_)
      if ((mask >> r.value) & 1) members.insert(r);
    out.push_back(Class{members, std::move(indices)});
  }
  std::sort(out.begin(), out.end(), [](const Class& a, const Class& b) {
    if (a.members.size() != b.members.size())
      return a.members.size() > b.members.size();
    return a.members.mask() < b.members.mask();
  });
  return out;
}

}  // namespace thinair::core
