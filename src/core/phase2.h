#pragma once
// Phase 2: from pair-wise secrets to a group secret (Sec. 3.2).
//
// Step 1/2 (redistribution): Alice reliably broadcasts M - L z-packets
// (contents included), coded so that any terminal holding M_i >= L
// y-packets can solve for its M - M_i missing ones. Step 3/4 (privacy
// amplification): she announces the identities of L s-packets; every
// terminal — now holding all M y-packets — evaluates them locally. The
// group secret is the concatenation of the s-packets.
//
// Construction: take the M x M (invertible) Vandermonde matrix V over the
// y-indices. H = the first M - L rows defines the z-packets, C = the last
// L rows defines the s-packets.
//  - Repair: any M - L columns of H are independent (Vandermonde rows
//    0..M-L-1), so a terminal with d <= M - L unknowns solves them from
//    the z-contents.
//  - Secrecy: [H; C] = V is invertible, so when the y-pool is uniform to
//    Eve, conditioning on z = H y leaves s = C y exactly uniform: the
//    z-broadcast "redistributes" secret bits without leaking the s-packets
//    (the paper's key point: phase 2 does not increase M_i, it reshapes it).

#include <optional>
#include <span>
#include <vector>

#include "core/pool.h"
#include "gf/matrix.h"
#include "packet/arena.h"
#include "packet/serialize.h"

namespace thinair::core {

struct Phase2Plan {
  std::size_t pool_size = 0;   // M
  std::size_t group_size = 0;  // L
  gf::Matrix h;                // (M - L) x M: z-packet combinations over y
  gf::Matrix c;                // L x M:       s-packet combinations over y
  packet::Announcement z_announcement;  // identities of the z combinations
  packet::Announcement s_announcement;  // identities of the s combinations
};

/// Derive the phase-2 coding plan from the pool. Pure function.
[[nodiscard]] Phase2Plan plan_phase2(const YPool& pool);

/// The same plan from (M, L) alone. The construction depends only on the
/// pool's size and its group-secret size, which is what lets a remote
/// terminal rebuild Alice's exact plan from public information: M is the
/// length of the y-announcement and L the length of the s-announcement.
[[nodiscard]] Phase2Plan plan_phase2(std::size_t pool_size,
                                     std::size_t group_size);

/// Alice's side of step 1: evaluate the z-packet contents.
[[nodiscard]] std::vector<packet::Payload> make_z_payloads(
    const Phase2Plan& plan, std::span<const packet::Payload> y_contents,
    std::size_t payload_size);

/// Arena path: one span per z-packet, carved from `arena`.
[[nodiscard]] std::vector<packet::ConstByteSpan> make_z_payloads(
    const Phase2Plan& plan, std::span<const packet::ConstByteSpan> y_contents,
    std::size_t payload_size, packet::PayloadArena& arena);

/// Terminal's side of step 2: combine its reconstructed y-packets with the
/// broadcast z-contents to recover the full y vector. `own_y` is the
/// output of reconstruct_y(). Throws when the inputs are inconsistent
/// (more unknowns than z-packets — impossible for a pool-derived plan).
[[nodiscard]] std::vector<packet::Payload> recover_all_y(
    const Phase2Plan& plan,
    std::span<const std::optional<packet::Payload>> own_y,
    std::span<const packet::Payload> z_payloads, std::size_t payload_size);

/// Arena path: `own_y` uses empty spans for the y-packets the terminal
/// could not reconstruct (reconstruct_y's arena convention). The returned
/// views alias `own_y` where it was known and fresh arena spans where the
/// packet had to be repaired.
[[nodiscard]] std::vector<packet::ConstByteSpan> recover_all_y(
    const Phase2Plan& plan, std::span<const packet::ConstByteSpan> own_y,
    std::span<const packet::ConstByteSpan> z_payloads,
    std::size_t payload_size, packet::PayloadArena& arena);

/// Steps 3/4: evaluate the s-packets (both sides run this once they hold
/// every y-packet). The group secret is the concatenation of the result.
[[nodiscard]] std::vector<packet::Payload> make_s_payloads(
    const Phase2Plan& plan, std::span<const packet::Payload> y_contents,
    std::size_t payload_size);

/// Arena path: one span per s-packet, carved from `arena`.
[[nodiscard]] std::vector<packet::ConstByteSpan> make_s_payloads(
    const Phase2Plan& plan, std::span<const packet::ConstByteSpan> y_contents,
    std::size_t payload_size, packet::PayloadArena& arena);

/// Secret bits produced by this plan for a given payload size.
[[nodiscard]] inline std::size_t secret_bits(const Phase2Plan& plan,
                                             std::size_t payload_size) {
  return plan.group_size * payload_size * 8;
}

}  // namespace thinair::core
