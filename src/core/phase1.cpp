#include "core/phase1.h"

#include <stdexcept>

#include "gf/encode.h"
#include "gf/kernels.h"

namespace thinair::core {

Phase1Result run_phase1(const ReceptionTable& table,
                        const EveBoundEstimator& estimator,
                        PoolStrategy strategy) {
  Phase1Result result{build_pool(table, estimator, strategy), {}};
  result.announcement.combinations = result.build.pool.combinations();
  return result;
}

std::vector<packet::ConstByteSpan> all_y_contents(
    const YPool& pool, std::span<const packet::ConstByteSpan> x_payloads,
    std::size_t payload_size, packet::PayloadArena& arena) {
  if (payload_size == 0)
    throw std::invalid_argument("all_y_contents: payload_size == 0");
  if (x_payloads.size() != pool.universe())
    throw std::invalid_argument("all_y_contents: payload count != universe");
  // Fused path: the dense pool matrix and every output live in the arena;
  // each x-payload is streamed once per block of gf::kMaxFusedRows y-rows
  // instead of once per row.
  const gf::Matrix m = pool.rows(arena);
  return gf::encode(m, x_payloads, payload_size, arena);
}

std::vector<packet::Payload> all_y_contents(
    const YPool& pool, std::span<const packet::Payload> x_payloads,
    std::size_t payload_size) {
  if (x_payloads.size() != pool.universe())
    throw std::invalid_argument("all_y_contents: payload count != universe");
  std::vector<packet::Payload> out(pool.size());
  for (packet::Payload& p : out) p.assign(payload_size, 0);
  if (payload_size == 0) return out;
  const std::vector<packet::ConstByteSpan> ins(x_payloads.begin(),
                                               x_payloads.end());
  std::vector<packet::ByteSpan> outs(out.begin(), out.end());
  gf::encode(pool.rows(), ins, outs, payload_size);
  return out;
}

std::vector<packet::ConstByteSpan> reconstruct_y(
    const YPool& pool, packet::NodeId terminal,
    std::span<const packet::ConstByteSpan> x_payloads,
    std::size_t payload_size, packet::PayloadArena& arena) {
  if (payload_size == 0)
    throw std::invalid_argument("reconstruct_y: payload_size == 0");
  if (x_payloads.size() != pool.universe())
    throw std::invalid_argument("reconstruct_y: payload count != universe");

  std::vector<packet::ConstByteSpan> out(pool.size());
  for (std::size_t j = 0; j < pool.size(); ++j) {
    const YPool::Entry& e = pool.entries()[j];
    if (!e.audience.contains(terminal)) continue;
    const packet::ByteSpan y = arena.alloc(payload_size);
    // Fused gather: the y-row is the shared output, blocks of
    // gf::kMaxFusedRows x-payloads the inputs.
    gf::DotBatch batch(y.data(), payload_size);
    for (const packet::Term& t : e.combo.terms()) {
      const packet::ConstByteSpan x = x_payloads[t.index];
      if (x.empty())
        throw std::logic_error(
            "reconstruct_y: terminal in audience but missing an x-packet "
            "(inconsistent reception report)");
      if (x.size() != payload_size)
        throw std::invalid_argument("reconstruct_y: payload size mismatch");
      batch.add(t.coeff.value(), x.data());
    }
    batch.flush();
    out[j] = y;
  }
  return out;
}

std::vector<std::optional<packet::Payload>> reconstruct_y(
    const YPool& pool, packet::NodeId terminal,
    std::span<const std::optional<packet::Payload>> x_payloads,
    std::size_t payload_size) {
  if (x_payloads.size() != pool.universe())
    throw std::invalid_argument("reconstruct_y: payload count != universe");

  std::vector<std::optional<packet::Payload>> out(pool.size());
  for (std::size_t j = 0; j < pool.size(); ++j) {
    const YPool::Entry& e = pool.entries()[j];
    if (!e.audience.contains(terminal)) continue;
    packet::Payload y(payload_size, 0);
    gf::DotBatch batch(y.data(), payload_size);
    for (const packet::Term& t : e.combo.terms()) {
      const auto& x = x_payloads[t.index];
      if (!x.has_value())
        throw std::logic_error(
            "reconstruct_y: terminal in audience but missing an x-packet "
            "(inconsistent reception report)");
      if (x->size() != payload_size)
        throw std::invalid_argument("reconstruct_y: payload size mismatch");
      batch.add(t.coeff.value(), x->data());
    }
    batch.flush();
    out[j] = std::move(y);
  }
  return out;
}

}  // namespace thinair::core
