#include "core/estimator.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "channel/geometry.h"
#include "channel/interference.h"
#include "util/ksubset.h"

namespace thinair::core {

OracleEstimator::OracleEstimator(const std::vector<std::uint32_t>& eve_received,
                                 std::size_t universe)
    : eve_has_(universe, false) {
  for (std::uint32_t i : eve_received) {
    if (i >= universe)
      throw std::out_of_range("OracleEstimator: index >= universe");
    eve_has_[i] = true;
  }
}

std::size_t OracleEstimator::missed_within(
    const std::vector<std::uint32_t>& indices, const net::NodeSet&) const {
  std::size_t missed = 0;
  for (std::uint32_t i : indices)
    if (i >= eve_has_.size() || !eve_has_[i]) ++missed;
  return missed;
}

FractionEstimator::FractionEstimator(double delta) : delta_(delta) {
  if (delta < 0.0 || delta > 1.0)
    throw std::invalid_argument("FractionEstimator: delta outside [0, 1]");
}

std::size_t FractionEstimator::missed_within(
    const std::vector<std::uint32_t>& indices, const net::NodeSet&) const {
  return static_cast<std::size_t>(
      std::floor(delta_ * static_cast<double>(indices.size())));
}

KSubsetEstimator::KSubsetEstimator(const ReceptionTable& table, std::size_t k)
    : table_(table), k_(k) {
  if (k == 0) throw std::invalid_argument("KSubsetEstimator: k == 0");
}

std::size_t KSubsetEstimator::missed_within(
    const std::vector<std::uint32_t>& indices,
    const net::NodeSet& exempt) const {
  // Adversary stand-ins: every receiver not exempted.
  std::vector<packet::NodeId> candidates;
  for (packet::NodeId r : table_.receivers())
    if (!exempt.contains(r)) candidates.push_back(r);
  if (candidates.empty()) return 0;  // nothing to compare against: assume Eve got all

  const std::size_t k = std::min(k_, candidates.size());

  // Enumerate k-subsets; for each, count indices missed by *all* members
  // (the subset's union reception is what a k-antenna Eve would hold).
  std::size_t best = indices.size();
  std::vector<std::size_t> pick(k);
  for (std::size_t i = 0; i < k; ++i) pick[i] = i;
  do {
    std::size_t missed = 0;
    for (std::uint32_t idx : indices) {
      bool any_has = false;
      for (std::size_t p : pick)
        if (table_.has(candidates[p], idx)) {
          any_has = true;
          break;
        }
      if (!any_has) ++missed;
    }
    best = std::min(best, missed);
  } while (util::next_k_subset(pick, candidates.size()));
  return best;
}

std::unique_ptr<EveBoundEstimator> make_leave_one_out(
    const ReceptionTable& table) {
  return std::make_unique<KSubsetEstimator>(table, 1);
}

LooFractionEstimator::LooFractionEstimator(const ReceptionTable& table,
                                           double safety)
    : table_(table), safety_(safety) {
  if (safety <= 0.0 || safety > 1.0)
    throw std::invalid_argument("LooFractionEstimator: safety outside (0, 1]");
}

double LooFractionEstimator::delta() const {
  // The miss *rate* is a global channel-quality property, so every
  // terminal's rate is a valid hypothesis sample for Eve's — unlike the
  // count estimator, no exemptions apply (exempting a class's members
  // would leave wide classes without hypotheses at all).
  const double n = static_cast<double>(table_.universe());
  if (n == 0.0 || table_.receivers().empty()) return 0.0;
  double min_miss = 1.0;
  for (packet::NodeId j : table_.receivers()) {
    const double miss =
        1.0 - static_cast<double>(table_.received_count(j)) / n;
    min_miss = std::min(min_miss, miss);
  }
  return safety_ * min_miss;
}

std::size_t LooFractionEstimator::missed_within(
    const std::vector<std::uint32_t>& indices, const net::NodeSet&) const {
  return static_cast<std::size_t>(
      std::floor(delta() * static_cast<double>(indices.size())));
}

SlotFractionEstimator::SlotFractionEstimator(const ReceptionTable& table,
                                             std::vector<std::size_t> slot_of,
                                             double safety)
    : slot_of_(std::move(slot_of)) {
  if (safety <= 0.0 || safety > 1.0)
    throw std::invalid_argument("SlotFractionEstimator: safety outside (0, 1]");
  if (slot_of_.empty())
    slot_of_.assign(table.universe(), 0);  // degenerate: one global slot
  if (slot_of_.size() != table.universe())
    throw std::invalid_argument("SlotFractionEstimator: slot_of size");

  std::size_t slots = 0;
  for (std::size_t s : slot_of_) slots = std::max(slots, s + 1);

  // Per slot, per receiver: miss count within the slot's packets.
  std::vector<std::size_t> slot_size(slots, 0);
  for (std::size_t s : slot_of_) ++slot_size[s];

  delta_.assign(slots, 0.0);
  for (std::size_t s = 0; s < slots; ++s) {
    if (slot_size[s] == 0 || table.receivers().empty()) continue;
    double min_rate = 1.0;
    for (packet::NodeId j : table.receivers()) {
      std::size_t missed = 0;
      for (std::uint32_t i = 0; i < table.universe(); ++i)
        if (slot_of_[i] == s && !table.has(j, i)) ++missed;
      min_rate = std::min(min_rate, static_cast<double>(missed) /
                                        static_cast<double>(slot_size[s]));
    }
    delta_[s] = safety * min_rate;
  }
}

std::size_t SlotFractionEstimator::missed_within(
    const std::vector<std::uint32_t>& indices, const net::NodeSet&) const {
  // Like the global fraction bound, this estimates a channel property, so
  // no hypothesis exemptions apply (see LooFractionEstimator).
  double expected = 0.0;
  for (std::uint32_t i : indices) {
    if (i >= slot_of_.size())
      throw std::out_of_range("SlotFractionEstimator: index out of range");
    expected += delta_[slot_of_[i]];
  }
  // Epsilon guards against accumulated floating-point shortfall turning an
  // exact integral bound into the next integer down.
  return static_cast<std::size_t>(std::floor(expected + 1e-9));
}

GeometryEstimator::GeometryEstimator(
    const ReceptionTable& table, std::vector<std::size_t> slot_of,
    const std::vector<std::size_t>& occupied_cells,
    const std::vector<std::size_t>& receiver_cells, double safety,
    std::size_t eve_antennas)
    : slot_of_(std::move(slot_of)), safety_(safety),
      eve_antennas_(eve_antennas) {
  if (safety <= 0.0 || safety > 1.0)
    throw std::invalid_argument("GeometryEstimator: safety outside (0, 1]");
  if (eve_antennas == 0)
    throw std::invalid_argument("GeometryEstimator: zero antennas");
  if (slot_of_.empty()) slot_of_.assign(table.universe(), 0);
  if (slot_of_.size() != table.universe())
    throw std::invalid_argument("GeometryEstimator: slot_of size");
  if (receiver_cells.size() != table.receivers().size())
    throw std::invalid_argument("GeometryEstimator: receiver_cells size");

  // Eve hypotheses: every cell no terminal occupies (the paper's placement
  // rule guarantees Eve is in one of them).
  std::array<bool, channel::CellGrid::kCells> occupied{};
  for (std::size_t c : occupied_cells) {
    if (c >= channel::CellGrid::kCells)
      throw std::out_of_range("GeometryEstimator: cell index");
    occupied[c] = true;
  }
  for (std::size_t c = 0; c < channel::CellGrid::kCells; ++c)
    if (!occupied[c]) candidates_.push_back(c);
  if (candidates_.empty())
    throw std::invalid_argument("GeometryEstimator: no free cell for Eve");

  // Measure the two channel regimes from the receivers' own reports.
  const channel::InterferenceSchedule schedule{channel::CellGrid{}};
  std::size_t jam_missed = 0, jam_total = 0;
  std::size_t clear_missed = 0, clear_total = 0;
  for (std::size_t ri = 0; ri < table.receivers().size(); ++ri) {
    const channel::CellIndex cell{receiver_cells[ri]};
    for (std::uint32_t i = 0; i < table.universe(); ++i) {
      const bool jammed = channel::InterferenceSchedule::is_jammed(
          cell, schedule.pattern(slot_of_[i]));
      const bool missed = !table.has(table.receivers()[ri], i);
      if (jammed) {
        ++jam_total;
        jam_missed += missed ? 1u : 0u;
      } else {
        ++clear_total;
        clear_missed += missed ? 1u : 0u;
      }
    }
  }
  jam_rate_ = jam_total == 0 ? 1.0
                             : static_cast<double>(jam_missed) /
                                   static_cast<double>(jam_total);
  clear_rate_ = clear_total == 0 ? 0.0
                                 : static_cast<double>(clear_missed) /
                                       static_cast<double>(clear_total);
}

std::size_t GeometryEstimator::missed_within(
    const std::vector<std::uint32_t>& indices, const net::NodeSet&) const {
  const channel::InterferenceSchedule schedule{channel::CellGrid{}};
  const std::size_t k = std::min(eve_antennas_, candidates_.size());

  // Enumerate k-subsets of candidate cells; a k-antenna Eve misses a
  // packet only when every antenna misses it, so per-slot rates multiply.
  double worst = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> pick(k);
  for (std::size_t i = 0; i < k; ++i) pick[i] = i;
  do {
    double expected = 0.0;
    for (std::uint32_t i : indices) {
      if (i >= slot_of_.size())
        throw std::out_of_range("GeometryEstimator: index out of range");
      double miss = 1.0;
      for (std::size_t p : pick) {
        const bool jammed = channel::InterferenceSchedule::is_jammed(
            channel::CellIndex{candidates_[p]},
            schedule.pattern(slot_of_[i]));
        miss *= jammed ? jam_rate_ : clear_rate_;
      }
      expected += miss;
    }
    worst = std::min(worst, expected);
  } while (util::next_k_subset(pick, candidates_.size()));
  return static_cast<std::size_t>(std::floor(safety_ * worst + 1e-9));
}

std::string_view to_string(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kOracle: return "oracle";
    case EstimatorKind::kLeaveOneOut: return "leave-one-out";
    case EstimatorKind::kKSubset: return "k-subset";
    case EstimatorKind::kFraction: return "fraction";
    case EstimatorKind::kLooFraction: return "loo-fraction";
    case EstimatorKind::kSlotFraction: return "slot-fraction";
    case EstimatorKind::kGeometry: return "geometry";
  }
  return "unknown";
}

namespace {

// The one list both string functions derive from; to_string's switch is
// exhaustive (compiler-checked), so a kind added there only needs one
// entry here to become parseable and show up in help text.
constexpr EstimatorKind kAllEstimatorKinds[] = {
    EstimatorKind::kOracle,      EstimatorKind::kLeaveOneOut,
    EstimatorKind::kKSubset,     EstimatorKind::kFraction,
    EstimatorKind::kLooFraction, EstimatorKind::kSlotFraction,
    EstimatorKind::kGeometry};

}  // namespace

std::optional<EstimatorKind> estimator_kind_from_string(
    std::string_view name) {
  for (const EstimatorKind kind : kAllEstimatorKinds)
    if (name == to_string(kind)) return kind;
  return std::nullopt;
}

const std::vector<std::string_view>& estimator_kind_names() {
  static const std::vector<std::string_view> names = [] {
    std::vector<std::string_view> out;
    for (const EstimatorKind kind : kAllEstimatorKinds)
      out.push_back(to_string(kind));
    return out;
  }();
  return names;
}

std::unique_ptr<EveBoundEstimator> build_estimator(
    const EstimatorSpec& spec, const ReceptionTable& table,
    const std::vector<std::uint32_t>& eve_received,
    const std::vector<std::size_t>& slot_of,
    const std::vector<std::size_t>& receiver_cells) {
  switch (spec.kind) {
    case EstimatorKind::kOracle:
      return std::make_unique<OracleEstimator>(eve_received,
                                               table.universe());
    case EstimatorKind::kLeaveOneOut:
      return std::make_unique<KSubsetEstimator>(table, 1);
    case EstimatorKind::kKSubset:
      return std::make_unique<KSubsetEstimator>(table, spec.k_antennas);
    case EstimatorKind::kFraction:
      return std::make_unique<FractionEstimator>(spec.fraction_delta);
    case EstimatorKind::kLooFraction:
      return std::make_unique<LooFractionEstimator>(table, spec.loo_safety);
    case EstimatorKind::kSlotFraction:
      return std::make_unique<SlotFractionEstimator>(table, slot_of,
                                                     spec.loo_safety);
    case EstimatorKind::kGeometry:
      return std::make_unique<GeometryEstimator>(
          table, slot_of, spec.occupied_cells, receiver_cells,
          spec.loo_safety, spec.k_antennas);
  }
  throw std::logic_error("build_estimator: unknown estimator kind");
}

}  // namespace thinair::core
