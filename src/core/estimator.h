#pragma once
// Lower-bounding what Eve is missing (Sec. 3.3 of the paper).
//
// To size the secret safely, Alice needs — for any set A of x-packets — a
// lower bound on how many packets of A Eve missed. The protocol queries
// the bound for each terminal's reception set (to size the pair-wise
// secrets M_i) and for each reception class (to cap how many y-packets may
// be drawn from it). The paper proposes several strategies; each is an
// EveBoundEstimator:
//
//  - OracleEstimator: knows Eve's actual receptions. Not realisable, but it
//    is the paper's Figure-1 assumption ("Alice guesses exactly the number
//    of x-packets ... missed by Eve") and the yardstick for the others.
//  - FractionEstimator: "artificial interference ... causes Eve to miss
//    some minimum fraction of the packets" — bound = floor(delta * |A|).
//  - KSubsetEstimator: "pretend that each set of k terminals together are
//    Eve"; k = 1 is the paper's main empirical strategy ("pretend each
//    terminal Tj is Eve"), larger k defends against a k-antenna Eve.
//  - LeaveOneOutEstimator: alias for k = 1.

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "channel/geometry.h"
#include "core/reception.h"
#include "net/trace.h"

namespace thinair::core {

class EveBoundEstimator {
 public:
  virtual ~EveBoundEstimator() = default;

  /// Estimated number of packets in `indices` that Eve missed. `exempt`
  /// lists nodes that must not be treated as adversary stand-ins (the
  /// intended recipients of the secret drawn from this set, plus Alice).
  [[nodiscard]] virtual std::size_t missed_within(
      const std::vector<std::uint32_t>& indices,
      const net::NodeSet& exempt) const = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// Ideal bound: counts the packets Eve actually missed. Requires Eve's
/// reception set, so it is usable only inside the simulator.
class OracleEstimator final : public EveBoundEstimator {
 public:
  /// `eve_received` = x-indices Eve got; `universe` = N.
  OracleEstimator(const std::vector<std::uint32_t>& eve_received,
                  std::size_t universe);

  [[nodiscard]] std::size_t missed_within(
      const std::vector<std::uint32_t>& indices,
      const net::NodeSet& exempt) const override;
  [[nodiscard]] std::string_view name() const override { return "oracle"; }

 private:
  std::vector<bool> eve_has_;
};

/// Interference-guarantee bound: Eve misses at least `delta` of any set.
class FractionEstimator final : public EveBoundEstimator {
 public:
  explicit FractionEstimator(double delta);

  [[nodiscard]] std::size_t missed_within(
      const std::vector<std::uint32_t>& indices,
      const net::NodeSet& exempt) const override;
  [[nodiscard]] std::string_view name() const override { return "fraction"; }

 private:
  double delta_;
};

/// Empirical bound: pretend every k-subset of the other terminals is Eve
/// (their combined receptions = a k-antenna adversary) and take the worst
/// case. The table must outlive the estimator.
class KSubsetEstimator final : public EveBoundEstimator {
 public:
  KSubsetEstimator(const ReceptionTable& table, std::size_t k);

  [[nodiscard]] std::size_t missed_within(
      const std::vector<std::uint32_t>& indices,
      const net::NodeSet& exempt) const override;
  [[nodiscard]] std::string_view name() const override { return "k-subset"; }

  [[nodiscard]] std::size_t k() const { return k_; }

 private:
  const ReceptionTable& table_;
  std::size_t k_;
};

/// The paper's main strategy: pretend each single other terminal is Eve.
[[nodiscard]] std::unique_ptr<EveBoundEstimator> make_leave_one_out(
    const ReceptionTable& table);

/// Empirical fraction bound: measure each pretend-Eve's overall miss rate,
/// take the most pessimistic (smallest) one, derate it by a safety factor,
/// and apply it to any queried set:
///     missed_within(A) = floor(safety * min_j (1 - |R_j|/N) * |A|).
/// This marries the paper's two Sec. 3.3 ideas — "empirically estimate the
/// amount of information missed by Eve based on the amount missed by the
/// terminals" and "interference guarantees Eve misses a minimum *fraction*
/// of any packet set" — and, unlike the raw count estimator, it yields
/// non-vacuous per-class caps, which joint (group) secrecy needs.
class LooFractionEstimator final : public EveBoundEstimator {
 public:
  /// `safety` in (0, 1]: margin against Eve being luckier than every
  /// pretend-Eve. The table must outlive the estimator.
  LooFractionEstimator(const ReceptionTable& table, double safety);

  [[nodiscard]] std::size_t missed_within(
      const std::vector<std::uint32_t>& indices,
      const net::NodeSet& exempt) const override;
  [[nodiscard]] std::string_view name() const override {
    return "loo-fraction";
  }

  /// The derated miss fraction currently implied by the table.
  [[nodiscard]] double delta() const;

 private:
  const ReceptionTable& table_;
  double safety_;
};

/// The slot-stratified refinement of the empirical fraction bound, and the
/// library's default for deployments with artificial interference.
///
/// The interference schedule is public (Sec. 4: patterns rotate through
/// known time slots), so the terminals know which noise pattern governed
/// each x-packet. Within one slot every receiver — wherever it stands —
/// faces one of a few channel regimes (in a jammed corridor or not), and
/// the terminals' own per-slot miss rates are hypotheses for Eve's. Taking
/// the *minimum* miss rate over all terminals per slot bounds what any
/// receiver, Eve included, must have missed in that slot's packets:
///     missed_within(A) = floor(sum_s safety * min_j missrate_j(s) * |A_s|).
/// The more terminals, the more hypotheses per slot, the safer the bound —
/// which is exactly the paper's explanation of Figure 2's n-trend ("the
/// fewer the terminals, the less accurate the estimate").
class SlotFractionEstimator final : public EveBoundEstimator {
 public:
  /// `slot_of[i]` = interference slot in which x_i was transmitted. The
  /// table must outlive the estimator.
  SlotFractionEstimator(const ReceptionTable& table,
                        std::vector<std::size_t> slot_of, double safety);

  [[nodiscard]] std::size_t missed_within(
      const std::vector<std::uint32_t>& indices,
      const net::NodeSet& exempt) const override;
  [[nodiscard]] std::string_view name() const override {
    return "slot-fraction";
  }

  /// The derated per-slot miss-fraction bounds (indexed by slot id).
  [[nodiscard]] const std::vector<double>& slot_delta() const {
    return delta_;
  }

 private:
  std::vector<std::size_t> slot_of_;
  std::vector<double> delta_;
};

/// The geometry-aware bound: the paper's artificial-interference design
/// made sound by its own minimum-distance rule.
///
/// The paper requires every node — Eve included — to stand in its own
/// logical cell ("each cell is occupied by at most one node", min distance
/// 1.75 m), and the 9-pattern jamming schedule is public. Therefore Eve
/// sits in one of the cells the terminals do NOT occupy, and for each such
/// hypothesis the terminals know exactly which slots jam her. Combining
/// that with measured per-regime loss rates (how much their own jammed /
/// clear members missed per slot) bounds Eve's misses in any packet set:
///     missed(A) >= min over free cells e of
///                  sum_s rate(e jammed in s ? jam : clear) * |A_s|.
/// This is the only estimator here whose caps are sound per *class* under
/// location-structured channels, so it is the testbed default; the price
/// is that it needs the placement discipline the paper already assumes.
class GeometryEstimator final : public EveBoundEstimator {
 public:
  /// `occupied_cells` = cell index of every terminal (Alice + receivers);
  /// `receiver_cells` = cell index per table.receivers() entry (used to
  /// classify each receiver as jammed/clear per slot when measuring
  /// rates). `slot_of` as in SlotFractionEstimator. `eve_antennas` > 1
  /// defends against a multi-antenna Eve occupying that many free cells
  /// at once (Sec. 6's challenge): a packet is missed only when *every*
  /// antenna misses it, so per-slot rates multiply across the hypothesis
  /// subset and the bound minimises over all k-subsets of free cells.
  GeometryEstimator(const ReceptionTable& table,
                    std::vector<std::size_t> slot_of,
                    const std::vector<std::size_t>& occupied_cells,
                    const std::vector<std::size_t>& receiver_cells,
                    double safety, std::size_t eve_antennas = 1);

  [[nodiscard]] std::size_t missed_within(
      const std::vector<std::uint32_t>& indices,
      const net::NodeSet& exempt) const override;
  [[nodiscard]] std::string_view name() const override { return "geometry"; }

  [[nodiscard]] double jam_rate() const { return jam_rate_; }
  [[nodiscard]] double clear_rate() const { return clear_rate_; }
  [[nodiscard]] const std::vector<std::size_t>& candidate_cells() const {
    return candidates_;
  }

 private:
  std::vector<std::size_t> slot_of_;
  std::vector<std::size_t> candidates_;  // free cells = Eve hypotheses
  double safety_;
  std::size_t eve_antennas_;
  double jam_rate_ = 1.0;    // measured miss rate of jammed receivers
  double clear_rate_ = 0.0;  // measured miss rate of clear receivers
};

/// Which Sec. 3.3 strategy sizes the secrets.
enum class EstimatorKind : std::uint8_t {
  kOracle,        // Figure 1's assumption: exact knowledge of Eve's misses
  kLeaveOneOut,   // pretend each other terminal is Eve (raw counts)
  kKSubset,       // pretend each k-subset of terminals is a k-antenna Eve
  kFraction,      // fixed interference guarantee: Eve misses >= delta
  kLooFraction,   // measured min miss-rate with safety margin
  kSlotFraction,  // per-noise-pattern min miss-rate
  kGeometry,      // free-cell hypotheses + schedule geometry (testbed default)
};

[[nodiscard]] std::string_view to_string(EstimatorKind kind);

/// Inverse of to_string: "oracle", "leave-one-out", "k-subset", ... .
/// nullopt when `name` keys no estimator.
[[nodiscard]] std::optional<EstimatorKind> estimator_kind_from_string(
    std::string_view name);

/// All valid estimator names, in enum order (for error messages and docs).
[[nodiscard]] const std::vector<std::string_view>& estimator_kind_names();

/// Declarative estimator choice carried inside session configs.
struct EstimatorSpec {
  EstimatorKind kind = EstimatorKind::kGeometry;
  /// Adversary antennas to defend against (kKSubset and kGeometry).
  std::size_t k_antennas = 1;
  double fraction_delta = 0.30;  // for kFraction
  double loo_safety = 0.75;      // safety margin for the fraction/geometry kinds
  /// Cell of every terminal (Alice first is not required; order matches
  /// terminal node-id order). Required by kGeometry; filled automatically
  /// by testbed::run_experiment.
  std::vector<std::size_t> occupied_cells;
};

/// Instantiate the estimator a spec describes. `table` must outlive the
/// estimator; `eve_received` is consulted only by the oracle; `slot_of`
/// (x-index -> interference slot) only by the slot-aware kinds, which fall
/// back to a single slot when it is empty; `receiver_cells` (cell per
/// table.receivers() entry) only by kGeometry.
[[nodiscard]] std::unique_ptr<EveBoundEstimator> build_estimator(
    const EstimatorSpec& spec, const ReceptionTable& table,
    const std::vector<std::uint32_t>& eve_received,
    const std::vector<std::size_t>& slot_of = {},
    const std::vector<std::size_t>& receiver_cells = {});

}  // namespace thinair::core
