#pragma once
// The common opening of every protocol round (phase 1 steps 1-2): Alice
// broadcasts N random x-packets over the lossy channel and every other
// terminal reliably reports what it received. Shared by the group
// algorithm (session.h) and the unicast baseline (unicast.h).
//
// All round payloads live in a caller-provided PayloadArena: the N
// x-payloads are carved out of one contiguous region and every
// receiver's view is a span aliasing that same storage (a receiver used
// to hold a deep copy of each payload it heard — n_receivers * N * 100 B
// of churn per round). The context stays valid until the arena is reset.

#include <vector>

#include "core/reception.h"
#include "net/medium.h"
#include "packet/arena.h"

namespace thinair::core {

struct RoundContext {
  packet::NodeId alice;
  std::vector<packet::NodeId> receivers;  // terminals other than Alice
  // All N x-payloads as Alice sent them, backed by the round arena.
  std::vector<packet::ConstByteSpan> x_payloads;
  // Per receiver, aligned with x index: a view of the payload it received,
  // or an empty span for a miss. Views alias x_payloads' storage.
  std::vector<std::vector<packet::ConstByteSpan>> rx_payloads;
  std::vector<std::vector<std::uint32_t>> rx_indices;
  std::vector<std::uint32_t> eve_indices;  // union over eavesdroppers
  std::vector<std::size_t> slot_of;  // interference slot of each x-packet
  ReceptionTable table;
};

/// Run steps 1-2 on the medium: transmit the x-packets (kData), collect
/// per-node receptions, and reliably broadcast every receiver's report
/// (kControl). Returns the full bookkeeping for the rest of the round.
/// Requires payload_bytes > 0 (an empty span encodes "missed").
[[nodiscard]] RoundContext open_round(net::Medium& medium,
                                      packet::NodeId alice,
                                      packet::RoundId round, std::size_t n,
                                      std::size_t payload_bytes,
                                      packet::PayloadArena& arena);

}  // namespace thinair::core
