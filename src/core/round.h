#pragma once
// The common opening of every protocol round (phase 1 steps 1-2): Alice
// broadcasts N random x-packets over the lossy channel and every other
// terminal reliably reports what it received. Shared by the group
// algorithm (session.h) and the unicast baseline (unicast.h).

#include <optional>
#include <vector>

#include "core/reception.h"
#include "net/medium.h"

namespace thinair::core {

struct RoundContext {
  packet::NodeId alice;
  std::vector<packet::NodeId> receivers;    // terminals other than Alice
  std::vector<packet::Payload> x_payloads;  // all N, as Alice sent them
  // Per receiver: the payloads it actually received (nullopt = missed).
  std::vector<std::vector<std::optional<packet::Payload>>> rx_payloads;
  std::vector<std::vector<std::uint32_t>> rx_indices;
  std::vector<std::uint32_t> eve_indices;  // union over eavesdroppers
  std::vector<std::size_t> slot_of;  // interference slot of each x-packet
  ReceptionTable table;
};

/// Run steps 1-2 on the medium: transmit the x-packets (kData), collect
/// per-node receptions, and reliably broadcast every receiver's report
/// (kControl). Returns the full bookkeeping for the rest of the round.
[[nodiscard]] RoundContext open_round(net::Medium& medium,
                                      packet::NodeId alice,
                                      packet::RoundId round, std::size_t n,
                                      std::size_t payload_bytes);

}  // namespace thinair::core
