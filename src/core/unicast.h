#pragma once
// The unicast baseline of Sec. 3.2 / Figure 1.
//
// After phase 1, Alice holds a pair-wise secret with each terminal. The
// naive way to a group secret is to pick one (the first terminal's) as the
// group secret and unicast it to every other terminal, one-time-padded
// with that terminal's own pair-wise secret. Correct and perfectly secret
// when the pads are — but it costs (n - 2) * L extra packet transmissions,
// so its efficiency L / (N + (n-2)L) collapses as n grows. That collapse
// is the motivation for phase 2's coded redistribution.

#include "core/session.h"

namespace thinair::core {

/// Runs phase 1 identically to GroupSecretSession, then distributes the
/// group secret by pad-and-unicast instead of phase 2. Produces the same
/// result/metrics types so benches can compare the two algorithms
/// side by side.
class UnicastSession {
 public:
  UnicastSession(net::Medium& medium, SessionConfig config);

  /// Restore construction-equivalent state on a new medium/config —
  /// the same pooled-lifecycle contract as GroupSecretSession::reset().
  void reset(net::Medium& medium, SessionConfig config);

  SessionResult run();

  [[nodiscard]] const SessionConfig& config() const { return config_; }

 private:
  RoundOutcome run_round(packet::NodeId alice, packet::RoundId round,
                         SessionResult& result);

  [[nodiscard]] packet::PayloadArena& arena() {
    return config_.arena != nullptr ? *config_.arena : owned_arena_;
  }

  net::Medium* medium_;  // never null; reset() rebinds
  SessionConfig config_;
  packet::PayloadArena owned_arena_;  // used when config_.arena is null
  std::uint32_t next_round_ = 0;
  std::vector<std::size_t> receiver_cells_;  // per-round scratch
};

}  // namespace thinair::core
