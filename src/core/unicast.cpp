#include "core/unicast.h"

#include <algorithm>
#include <stdexcept>

#include "gf/kernels.h"

#include "analysis/eve_view.h"
#include "net/reliable.h"
#include "packet/serialize.h"

namespace thinair::core {

UnicastSession::UnicastSession(net::Medium& medium, SessionConfig config)
    : medium_(&medium) {
  reset(medium, std::move(config));
}

void UnicastSession::reset(net::Medium& medium, SessionConfig config) {
  if (medium.terminals().size() < 2)
    throw std::invalid_argument("UnicastSession: need >= 2 terminals");
  if (config.x_packets_per_round == 0)
    throw std::invalid_argument("UnicastSession: N == 0");
  if (config.payload_bytes == 0)
    throw std::invalid_argument("UnicastSession: empty payloads");
  medium_ = &medium;
  config_ = std::move(config);
  next_round_ = 0;
  owned_arena_.reset();
  owned_arena_.trim_to_watermark();
}

SessionResult UnicastSession::run() {
  const auto terminals = medium_->terminals();
  const std::size_t rounds =
      config_.rounds == 0 ? terminals.size() : config_.rounds;

  SessionResult result;
  const net::Ledger ledger_before = medium_->ledger();
  const double time_before = medium_->now();

  for (std::size_t r = 0; r < rounds; ++r) {
    const packet::NodeId alice =
        config_.rotate_alice ? terminals[r % terminals.size()] : terminals[0];
    result.rounds.push_back(
        run_round(alice, packet::RoundId{next_round_++}, result));
  }

  result.ledger = medium_->ledger().since(ledger_before);
  result.duration_s = medium_->now() - time_before;
  return result;
}

RoundOutcome UnicastSession::run_round(packet::NodeId alice,
                                       packet::RoundId round,
                                       SessionResult& result) {
  const std::size_t n = config_.x_packets_per_round;
  const std::size_t payload = config_.payload_bytes;

  packet::PayloadArena& arena = this->arena();
  arena.reset();

  // Phase 1 is identical to the group algorithm.
  const RoundContext ctx =
      open_round(*medium_, alice, round, n, payload, arena);
  receiver_cells_.clear();
  if (!config_.estimator.occupied_cells.empty())
    for (packet::NodeId r : ctx.receivers)
      receiver_cells_.push_back(config_.estimator.occupied_cells.at(r.value));
  const auto estimator =
      build_estimator(config_.estimator, ctx.table, ctx.eve_indices,
                      ctx.slot_of, receiver_cells_);
  const Phase1Result phase1 =
      run_phase1(ctx.table, *estimator, config_.pool_strategy);
  const YPool& pool = phase1.build.pool;

  {
    packet::Packet pkt{.kind = packet::Kind::kAnnouncement,
                       .source = alice,
                       .round = round,
                       .seq = packet::PacketSeq{0},
                       .payload = packet::encode(phase1.announcement)};
    net::reliable_broadcast(*medium_, alice, pkt, net::TrafficClass::kControl);
  }

  // The group secret is L y-packets known to the first receiver; every
  // other receiver gets it one-time-padded with its own pair-wise secret.
  // Pads must be *disjoint pool rows*: reusing a y-packet in two pads (or
  // in a pad and the secret) hands Eve linear relations between
  // ciphertexts. Rows are therefore assigned exclusively, each to the
  // audience member with the thinnest assignment so far, and L is the
  // minimum number of rows any receiver ends up owning — the operational
  // price the unicast baseline pays for not coding (its Figure-1 curve is
  // an upper bound that assumes fully independent pair-wise secrets).
  const gf::Matrix g = pool.rows(arena);
  std::vector<std::vector<std::size_t>> assigned(ctx.receivers.size());
  for (std::size_t row = 0; row < pool.size(); ++row) {
    std::size_t best = ctx.receivers.size();
    for (std::size_t ri = 0; ri < ctx.receivers.size(); ++ri) {
      if (!pool.entries()[row].audience.contains(ctx.receivers[ri])) continue;
      if (best == ctx.receivers.size() ||
          assigned[ri].size() < assigned[best].size())
        best = ri;
    }
    if (best != ctx.receivers.size()) assigned[best].push_back(row);
  }
  std::size_t l = pool.size();
  for (const auto& rows : assigned) l = std::min(l, rows.size());
  if (ctx.receivers.empty()) l = 0;

  RoundOutcome outcome;
  outcome.alice = alice;
  outcome.universe = n;
  for (packet::NodeId r : ctx.receivers)
    outcome.pairwise_size.push_back(pool.count_for(r));
  outcome.pool_size = pool.size();
  outcome.group_packets = l;
  outcome.secret_bits = l * payload * 8;
  outcome.data_packets =
      n + (ctx.receivers.size() < 2 ? 0 : (ctx.receivers.size() - 1) * l);

  if (l == 0 || ctx.receivers.empty()) {
    analysis::EveView eve(n);
    eve.observe_x(ctx.eve_indices);
    outcome.leakage = analysis::compute_leakage(eve, gf::Matrix(0, n));
    return outcome;
  }

  const std::vector<packet::ConstByteSpan> y_contents =
      all_y_contents(pool, ctx.x_payloads, payload, arena);

  const auto secret_indices_of = [&](std::size_t ri) {
    auto rows = assigned[ri];
    rows.resize(l);  // first L exclusively-assigned rows
    return rows;
  };

  const std::vector<std::size_t> group_idx = secret_indices_of(0);
  std::vector<packet::ConstByteSpan> s_payloads;
  s_payloads.reserve(l);
  for (std::size_t j : group_idx) s_payloads.push_back(y_contents[j]);

  analysis::EveView eve(n);
  eve.observe_x(ctx.eve_indices);

  const gf::Matrix secret_rows = g.select_rows(group_idx);

  // Unicast the padded secret to receivers 1..n-2 (receiver 0 holds it
  // already). Ciphertext c_j = s_j + pad_j is public: feed it to Eve.
  for (std::size_t ri = 1; ri < ctx.receivers.size(); ++ri) {
    const std::vector<std::size_t> pad_idx = secret_indices_of(ri);
    gf::Matrix cipher_rows(l, n);
    for (std::size_t j = 0; j < l; ++j) {
      packet::Payload body(s_payloads[j].begin(), s_payloads[j].end());
      gf::xor_into(y_contents[pad_idx[j]].data(), body.data(), payload);

      for (std::size_t c = 0; c < n; ++c)
        cipher_rows.set(j, c,
                        secret_rows.at(j, c) + g.at(pad_idx[j], c));

      packet::Packet pkt{
          .kind = packet::Kind::kCipher,
          .source = alice,
          .round = round,
          .seq = packet::PacketSeq{static_cast<std::uint32_t>(j)},
          .payload = std::move(body)};
      net::reliable_unicast(*medium_, alice, ctx.receivers[ri], pkt,
                            net::TrafficClass::kCipher);
    }
    eve.observe_combinations(cipher_rows);
  }

  // Verification: each receiver strips its pad and must obtain the secret.
  // Per-receiver reconstruction scratch is rewound once checked.
  for (std::size_t ri = 1; ri < ctx.receivers.size(); ++ri) {
    const packet::PayloadArena::Mark mark = arena.mark();
    const auto own_y = reconstruct_y(pool, ctx.receivers[ri],
                                     ctx.rx_payloads[ri], payload, arena);
    const std::vector<std::size_t> pad_idx = secret_indices_of(ri);
    for (std::size_t j = 0; j < l; ++j) {
      // Ciphertext as transmitted:
      const packet::ByteSpan cipher = arena.copy(s_payloads[j]);
      gf::xor_into(y_contents[pad_idx[j]].data(), cipher.data(), payload);
      // Receiver-side decryption with its reconstructed pad:
      if (own_y[pad_idx[j]].empty())
        throw std::logic_error("UnicastSession: receiver lacks its pad");
      gf::xor_into(own_y[pad_idx[j]].data(), cipher.data(), payload);
      if (!std::equal(cipher.begin(), cipher.end(), s_payloads[j].begin(),
                      s_payloads[j].end()))
        throw std::logic_error(
            "UnicastSession: receiver decoded a different secret");
    }
    arena.rewind(mark);
  }

  outcome.leakage = analysis::compute_leakage(eve, secret_rows);
  for (const packet::ConstByteSpan s : s_payloads)
    result.secret.insert(result.secret.end(), s.begin(), s.end());
  return outcome;
}

}  // namespace thinair::core
