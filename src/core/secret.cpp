#include "core/secret.h"

namespace thinair::core {

void SecretPool::deposit(const std::vector<std::uint8_t>& bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  deposited_ += bytes.size();
}

std::optional<std::vector<std::uint8_t>> SecretPool::draw(std::size_t count) {
  if (buffer_.size() < count) return std::nullopt;
  std::vector<std::uint8_t> out(buffer_.begin(),
                                buffer_.begin() + static_cast<std::ptrdiff_t>(count));
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(count));
  return out;
}

}  // namespace thinair::core
