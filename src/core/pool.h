#pragma once
// The y-packet pool: phase 1's privacy amplification (Sec. 3.1).
//
// Alice condenses the x-packets she shares with the other terminals into M
// y-packets — linear combinations chosen so that (a) each terminal T_i can
// reconstruct a known subset of M_i of them from the x-packets it holds,
// and (b) the whole pool is jointly unknown to Eve with high probability.
// The same y-packet may be reconstructible by several terminals (the
// paper's 3-terminal example shares y1 between Bob and Calvin), which is
// what phase 2's redistribution exploits.
//
// Construction (our instantiation of the MDS constructions of [9]):
//   1. Partition x-indices into *classes* by exact reception pattern; the
//      packets of a class are shared by precisely the receiver set T.
//   2. Ask the estimator (Sec. 3.3) for two bounds:
//        cap_T    — packets of class T that Eve missed (the class cap);
//        ceil_i   — packets of R_i that Eve missed (the per-terminal
//                   ceiling, the paper's M_i estimate).
//   3. Walk classes from most- to least-shared, allocating
//        n_T = min(cap_T, min over members' remaining ceiling)
//      y-packets to class T.
//   4. Encode each class with an n_T x |X_T| Vandermonde MDS generator
//      over its own x-packets.
//
// Why this is jointly secret when the bounds hold: classes have disjoint
// x-support, so the pool's combination matrix is block-diagonal across
// classes; within a class, any n_T <= |X_T \ Eve| rows of a Vandermonde
// generator stay full-rank when restricted to the columns Eve misses. The
// bounds are *estimates*, so the property is verified empirically — that
// is exactly the paper's reliability metric.

#include <cstdint>
#include <optional>
#include <vector>

#include "core/estimator.h"
#include "core/reception.h"
#include "gf/matrix.h"
#include "packet/combination.h"

namespace thinair::core {

/// The pool of y-packets for one round.
class YPool {
 public:
  struct Entry {
    packet::Combination combo;  // over x-packet indices
    net::NodeSet audience;      // receivers able to reconstruct this y
  };

  YPool(std::size_t universe, std::vector<packet::NodeId> receivers);

  void add(Entry entry);

  [[nodiscard]] std::size_t universe() const { return universe_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }  // M
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  [[nodiscard]] const std::vector<packet::NodeId>& receivers() const {
    return receivers_;
  }

  /// M_i: how many y-packets terminal t can reconstruct.
  [[nodiscard]] std::size_t count_for(packet::NodeId t) const;

  /// Indices (into entries()) of the y-packets terminal t can reconstruct.
  [[nodiscard]] std::vector<std::size_t> known_indices(
      packet::NodeId t) const;

  /// L = min over receivers of M_i: the group-secret size phase 2 can
  /// extract (0 when there are no receivers or some M_i is 0).
  [[nodiscard]] std::size_t group_secret_size() const;

  /// The M x N combination matrix over x-space (row j = y_j).
  [[nodiscard]] gf::Matrix rows() const;
  /// Arena path: the same matrix carved from `arena` (per-round scratch),
  /// the form the fused encode and analysis paths consume.
  [[nodiscard]] gf::Matrix rows(packet::PayloadArena& arena) const;

  /// Combination identities of every y, in pool order — the content of
  /// Alice's phase-1 announcement.
  [[nodiscard]] std::vector<packet::Combination> combinations() const;

 private:
  std::size_t universe_;
  std::vector<packet::NodeId> receivers_;
  std::vector<Entry> entries_;
};

/// One allocation decided by the builder — per reception class for
/// kClassShared, per receiver for kTerminalMds; exposed for tests and for
/// the ablation benches.
struct PoolAllocation {
  net::NodeSet members;
  std::size_t class_size = 0;
  std::size_t cap = 0;        // estimator's class cap / receiver's quota
  std::size_t allocated = 0;  // n_T actually used
  /// True when the pool-wide kPoolLimit budget (not the estimator) cut
  /// this allocation short — previously a silent truncation.
  bool limit_hit = false;
};

/// How the y-pool is constructed. Two instantiations of [9]'s MDS ideas
/// with different robustness/efficiency trade-offs:
///
///  - kClassShared (above): codes each reception class separately and
///    shares y-packets across every terminal of the class. Maximum
///    sharing, hence maximum efficiency — this is the construction behind
///    Figure 1's closed forms and it is *provably* jointly secret when the
///    estimator's class caps hold (e.g. under the oracle). With empirical
///    estimators its secrecy is sensitive to *where* Eve's receptions sit.
///
///  - kTerminalMds: the technical report's pair-wise construction. Each
///    terminal gets M_i rows of an MDS generator spanning its *entire*
///    reception set, so the rows stay uniform against any adversary that
///    missed at least M_i packets of R_i — regardless of which ones. This
///    is the count-robust construction the paper's empirical estimator
///    (Sec. 3.3) is sound for; it shares y-packets only between terminals
///    with nested reception sets, so it costs more z-packets.
enum class PoolStrategy : std::uint8_t { kClassShared, kTerminalMds };

[[nodiscard]] std::string_view to_string(PoolStrategy s);

/// Inverse of to_string: "class-shared" or "terminal-mds". nullopt when
/// `name` keys no strategy.
[[nodiscard]] std::optional<PoolStrategy> pool_strategy_from_string(
    std::string_view name);

struct PoolBuildResult {
  YPool pool;
  /// Per class (kClassShared) or per receiver (kTerminalMds).
  std::vector<PoolAllocation> allocations;
  std::vector<std::size_t> ceilings;  // per receiver, estimator's M_i bound
};

/// Build the y-pool for a round. `table` must contain every receiver's
/// report; `estimator` provides the Sec. 3.3 bounds. The pool never
/// exceeds 255 y-packets (GF(2^8)'s limit for phase 2's square MDS code);
/// allocations are trimmed if necessary.
[[nodiscard]] PoolBuildResult build_pool(
    const ReceptionTable& table, const EveBoundEstimator& estimator,
    PoolStrategy strategy = PoolStrategy::kClassShared);

}  // namespace thinair::core
