#pragma once
// The full secret-agreement protocol, end to end (Sec. 3).
//
// A GroupSecretSession drives one or more protocol rounds over a Medium:
//
//   per round (one terminal playing Alice; the role rotates by default —
//   Sec. 3.2's "avoiding the worst-case scenario"):
//     1. Alice broadcasts N random x-packets over the lossy channel.
//     2. Every other terminal reliably broadcasts its reception report.
//     3. Alice builds the y-pool (phase 1) and reliably broadcasts the
//        y identities.
//     4. Alice reliably broadcasts the M - L z-packets (contents) and the
//        s identities (phase 2); every terminal decodes the group secret.
//
// The session performs the *real* computation on every side — terminals
// reconstruct their y-packets from the x-payloads they actually received,
// repair the missing ones from the z-contents and evaluate the s-packets —
// and verifies that all terminals agree on the secret bit-for-bit. In
// parallel it accumulates Eve's exact view (analysis::EveView) and scores
// each round's reliability, the paper's Figure-2 metric.

#include <cstdint>
#include <vector>

#include "analysis/leakage.h"
#include "core/phase1.h"
#include "core/phase2.h"
#include "core/round.h"
#include "net/medium.h"
#include "packet/packet.h"

namespace thinair::core {

struct SessionConfig {
  std::size_t x_packets_per_round = 90;  // N; 90 spreads over all 9 patterns
  std::size_t payload_bytes = packet::kPaperPayloadBytes;  // 100 B
  std::size_t rounds = 0;        // 0 = one round per terminal
  bool rotate_alice = true;      // Sec. 3.2's worst-case avoidance
  EstimatorSpec estimator;       // Sec. 3.3 strategy (default loo-fraction)
  PoolStrategy pool_strategy = PoolStrategy::kClassShared;
  /// Backing storage for all round payloads. When set, the session resets
  /// and reuses it at every round boundary (so a sweep worker running
  /// thousands of sessions allocates its payload memory once); the arena
  /// must outlive the session and not be shared with a concurrently
  /// running one. When null the session owns a private arena.
  packet::PayloadArena* arena = nullptr;
};

/// Outcome of a single round.
struct RoundOutcome {
  packet::NodeId alice;
  std::size_t universe = 0;                // N
  std::vector<std::size_t> pairwise_size;  // M_i, aligned with receivers
  std::size_t pool_size = 0;               // M
  std::size_t group_packets = 0;           // L
  std::size_t secret_bits = 0;             // L * payload * 8
  /// Distinct data-plane packets the algorithm fundamentally needs
  /// (N + (M - L) for the group algorithm, N + (n-2)L for unicast) —
  /// retransmissions excluded; this is what the Figure-1 forms count.
  std::size_t data_packets = 0;
  analysis::LeakageReport leakage;         // vs. the (union) eavesdropper
};

/// Outcome of a whole session.
struct SessionResult {
  std::vector<RoundOutcome> rounds;
  std::vector<std::uint8_t> secret;  // concatenated s-payloads, all rounds
  net::Ledger ledger;                // every byte transmitted in this run
  double duration_s = 0.0;           // virtual airtime incl. gaps

  [[nodiscard]] std::size_t secret_bits() const { return secret.size() * 8; }

  /// Equivocation-weighted reliability across rounds (the per-experiment
  /// number aggregated in Figure 2).
  [[nodiscard]] double reliability() const;

  /// Paper's efficiency: secret bits / all transmitted bits.
  [[nodiscard]] double efficiency() const;

  /// Secret bits / data-plane payload bits (x- and z-payloads only) — the
  /// quantity the Figure-1 closed forms model.
  [[nodiscard]] double data_efficiency(std::size_t payload_bytes) const;

  /// Secret generation rate in bits per second of channel time.
  [[nodiscard]] double secret_rate_bps() const;
};

class GroupSecretSession {
 public:
  /// The medium must have >= 2 attached terminals. Eavesdroppers attached
  /// to the medium are scored as one (multi-antenna) adversary holding the
  /// union of their receptions.
  GroupSecretSession(net::Medium& medium, SessionConfig config);

  /// Restore construction-equivalent state on a new medium/config: the
  /// round counter restarts at 0 and the owned arena is rewound (blocks
  /// retained, then trimmed to the watermark policy), so a pooled session
  /// behaves bit-for-bit like a freshly constructed one — the contract
  /// runtime::ObjectPool relies on and the golden-NDJSON suites pin.
  /// Validates before mutating: on throw the previous state is intact.
  void reset(net::Medium& medium, SessionConfig config);

  /// Run the configured number of rounds and return the result. May be
  /// called repeatedly; each call continues the same virtual clock and
  /// round counter but returns an independent result (ledger delta of
  /// this run only). reset() restarts the lifecycle instead.
  SessionResult run();

  [[nodiscard]] const SessionConfig& config() const { return config_; }

 private:
  RoundOutcome run_round(packet::NodeId alice, packet::RoundId round,
                         SessionResult& result);

  [[nodiscard]] packet::PayloadArena& arena() {
    return config_.arena != nullptr ? *config_.arena : owned_arena_;
  }

  net::Medium* medium_;  // never null; reset() rebinds
  SessionConfig config_;
  packet::PayloadArena owned_arena_;  // used when config_.arena is null
  std::uint32_t next_round_ = 0;
  // Round-loop scratch reused across rounds and (via reset()) across
  // pooled lifetimes: contents are rewritten every use, only capacity
  // survives, so reuse cannot change observable bytes.
  packet::Packet scratch_pkt_;
  std::vector<std::size_t> receiver_cells_;
};

}  // namespace thinair::core
