#include "net/ledger.h"

#include <ostream>
#include <stdexcept>

namespace thinair::net {

namespace {
constexpr const char* kNames[kTrafficClassCount] = {"data", "coded", "control",
                                                    "ack", "cipher"};
}

void Ledger::add(TrafficClass cls, std::size_t bytes, double airtime_s) {
  const auto i = static_cast<std::size_t>(cls);
  bytes_[i] += bytes;
  frames_[i] += 1;
  airtime_s_ += airtime_s;
}

std::size_t Ledger::bytes(TrafficClass cls) const {
  return bytes_[static_cast<std::size_t>(cls)];
}

std::size_t Ledger::frames(TrafficClass cls) const {
  return frames_[static_cast<std::size_t>(cls)];
}

std::size_t Ledger::total_bytes() const {
  std::size_t total = 0;
  for (std::size_t b : bytes_) total += b;
  return total;
}

void Ledger::reset() {
  bytes_.fill(0);
  frames_.fill(0);
  airtime_s_ = 0.0;
}

Ledger& Ledger::operator+=(const Ledger& other) {
  for (std::size_t i = 0; i < kTrafficClassCount; ++i) {
    bytes_[i] += other.bytes_[i];
    frames_[i] += other.frames_[i];
  }
  airtime_s_ += other.airtime_s_;
  return *this;
}

Ledger Ledger::since(const Ledger& snapshot) const {
  Ledger out = *this;
  for (std::size_t i = 0; i < kTrafficClassCount; ++i) {
    if (snapshot.bytes_[i] > out.bytes_[i] ||
        snapshot.frames_[i] > out.frames_[i])
      throw std::invalid_argument("Ledger::since: snapshot is not a prefix");
    out.bytes_[i] -= snapshot.bytes_[i];
    out.frames_[i] -= snapshot.frames_[i];
  }
  out.airtime_s_ -= snapshot.airtime_s_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Ledger& ledger) {
  os << "ledger{";
  for (std::size_t i = 0; i < kTrafficClassCount; ++i) {
    const auto cls = static_cast<TrafficClass>(i);
    if (ledger.bytes(cls) == 0) continue;
    os << kNames[i] << "=" << ledger.bytes(cls) << "B/"
       << ledger.frames(cls) << "f ";
  }
  os << "airtime=" << ledger.total_airtime_s() << "s}";
  return os;
}

}  // namespace thinair::net
