#include "net/medium.h"

#include <cmath>
#include <stdexcept>

namespace thinair::net {

Medium::Medium(channel::Rng rng, MacParams params)
    : rng_(rng), params_(params) {
  if (!(params_.data_rate_bps > 0.0))
    throw std::invalid_argument("Medium: data rate must be positive");
  if (!(params_.slot_duration_s > 0.0))
    throw std::invalid_argument("Medium: slot duration must be positive");
}

void Medium::attach(packet::NodeId node, Role role) {
  if (nodes_.contains(node)) throw std::invalid_argument("Medium: re-attach");
  nodes_.emplace(node, role);
  order_.push_back(node);
}

std::vector<packet::NodeId> Medium::terminals() const {
  std::vector<packet::NodeId> out;
  for (packet::NodeId id : order_)
    if (nodes_.at(id) == Role::kTerminal) out.push_back(id);
  return out;
}

std::vector<packet::NodeId> Medium::eavesdroppers() const {
  std::vector<packet::NodeId> out;
  for (packet::NodeId id : order_)
    if (nodes_.at(id) == Role::kEavesdropper) out.push_back(id);
  return out;
}

bool Medium::is_attached(packet::NodeId node) const {
  return nodes_.contains(node);
}

double Medium::frame_airtime_s(std::size_t wire_bytes) const {
  return params_.per_frame_overhead_s +
         static_cast<double>(wire_bytes) * 8.0 / params_.data_rate_bps;
}

void Medium::wait(double seconds) {
  if (seconds < 0.0) throw std::invalid_argument("Medium::wait: negative");
  now_s_ += seconds;
}

void Medium::wait_for_next_slot() {
  const double dur = params_.slot_duration_s;
  const double next =
      (std::floor(now_s_ / dur) + 1.0) * dur + params_.inter_frame_gap_s;
  now_s_ = next;
}

void Medium::account_transmit(packet::NodeId source, const packet::Packet& pkt,
                              TrafficClass cls, const TxResult& result,
                              std::size_t tx_slot) {
  ledger_.add(cls, pkt.wire_size(), result.airtime_s);
  trace_.record(TraceEntry{
      .time_s = now_s_,
      .slot = tx_slot,
      .cls = cls,
      .kind = pkt.kind,
      .source = source,
      .round = pkt.round,
      .seq = pkt.seq,
      .payload_bytes = pkt.payload.size(),
      .delivered = result.delivered,
      .reliable = false,
      .attempt = 0,
  });
  now_s_ += result.airtime_s + params_.inter_frame_gap_s;
}

SimMedium::SimMedium(const channel::ErasureModel& model, channel::Rng rng,
                     MacParams params)
    : Medium(rng, params), model_(model) {}

Medium::TxResult SimMedium::transmit(packet::NodeId source,
                                     const packet::Packet& pkt,
                                     TrafficClass cls) {
  if (!is_attached(source))
    throw std::invalid_argument("Medium::transmit: unknown source");

  const std::size_t tx_slot = slot();
  TxResult result;
  result.airtime_s = frame_airtime_s(pkt.wire_size());

  for (packet::NodeId rx : attach_order()) {
    if (rx == source) continue;
    const channel::LinkContext link{source, rx, tx_slot};
    if (!model_.erased(rng(), link)) result.delivered.insert(rx);
  }

  account_transmit(source, pkt, cls, result, tx_slot);
  return result;
}

}  // namespace thinair::net
