#pragma once
// Reliable broadcast (Sec. 2: "it ensures that all other terminals receive
// it, e.g., through acknowledgments and retransmissions; to be
// conservative, we assume that Eve receives all reliably broadcast
// packets").
//
// Implementation: the sender retransmits until every terminal has the
// frame; after each attempt, each terminal that newly received the frame
// answers with a short acknowledgement (charged to the ledger). The trace
// entries of all attempts are marked `reliable`, which is how the secrecy
// analysis learns that the content is public.

#include "net/medium.h"

namespace thinair::net {

struct ReliableParams {
  std::size_t max_attempts = 1000;
  std::size_t ack_payload_bytes = 2;
  /// Back off to the next interference slot after a failed attempt instead
  /// of retrying into the same noise pattern. Costs idle time, saves the
  /// transmitted bytes the efficiency metric counts.
  bool slot_backoff = true;
};

struct ReliableResult {
  unsigned attempts = 0;
  NodeSet delivered;  // all terminals, plus any eavesdropper that drew lucky
};

/// Reliably broadcast `pkt` from `source` to every terminal attached to
/// `medium`. Throws std::runtime_error when max_attempts is exhausted
/// (possible only on pathological channels).
ReliableResult reliable_broadcast(Medium& medium, packet::NodeId source,
                                  const packet::Packet& pkt, TrafficClass cls,
                                  ReliableParams params = {});

/// Reliably deliver `pkt` from `source` to the single terminal `dest`
/// (802.11-style acked unicast). On a broadcast medium everyone may still
/// overhear the frames, and the conservative model treats the content as
/// public; used by the unicast baseline of Figure 1.
ReliableResult reliable_unicast(Medium& medium, packet::NodeId source,
                                packet::NodeId dest, const packet::Packet& pkt,
                                TrafficClass cls, ReliableParams params = {});

}  // namespace thinair::net
