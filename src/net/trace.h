#pragma once
// Reception trace: who received what.
//
// The medium records, for every frame it carries, the set of nodes that
// received it and whether it was part of a *reliable* broadcast (whose
// content the paper conservatively assumes Eve always obtains, Sec. 2).
// The secrecy analysis replays this trace to build Eve's exact view.

#include <cstdint>
#include <vector>

#include "net/ledger.h"
#include "packet/packet.h"

namespace thinair::net {

/// A set of nodes as a bitmask over node-id values (< 64).
class NodeSet {
 public:
  void insert(packet::NodeId id);
  [[nodiscard]] bool contains(packet::NodeId id) const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool empty() const { return mask_ == 0; }
  [[nodiscard]] std::uint64_t mask() const { return mask_; }

  friend bool operator==(const NodeSet&, const NodeSet&) = default;

 private:
  std::uint64_t mask_ = 0;
};

/// One frame on the air.
struct TraceEntry {
  double time_s = 0.0;
  std::size_t slot = 0;
  TrafficClass cls = TrafficClass::kData;
  packet::Kind kind = packet::Kind::kData;
  packet::NodeId source;
  packet::RoundId round;
  packet::PacketSeq seq;
  std::size_t payload_bytes = 0;
  NodeSet delivered;      // nodes whose erasure draw succeeded
  bool reliable = false;  // content is public (Eve gets it regardless)
  unsigned attempt = 0;   // retransmission index within a reliable broadcast
};

class Trace {
 public:
  void record(TraceEntry entry) { entries_.push_back(std::move(entry)); }
  [[nodiscard]] const std::vector<TraceEntry>& entries() const {
    return entries_;
  }
  /// Mark the most recent `count` entries as reliable-broadcast attempts.
  void mark_reliable(std::size_t count);
  void clear() { entries_.clear(); }

 private:
  std::vector<TraceEntry> entries_;
};

}  // namespace thinair::net
