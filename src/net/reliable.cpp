#include "net/reliable.h"

#include <stdexcept>

namespace thinair::net {

ReliableResult reliable_broadcast(Medium& medium, packet::NodeId source,
                                  const packet::Packet& pkt, TrafficClass cls,
                                  ReliableParams params) {
  const auto terminals = medium.terminals();

  ReliableResult result;
  std::size_t pending = 0;
  for (packet::NodeId t : terminals)
    if (t != source) ++pending;

  std::size_t reliable_frames = 0;
  while (pending > 0) {
    if (result.attempts >= params.max_attempts)
      throw std::runtime_error(
          "reliable_broadcast: channel too lossy, attempts exhausted");
    ++result.attempts;

    const Medium::TxResult tx = medium.transmit(source, pkt, cls);
    ++reliable_frames;

    for (packet::NodeId rx : terminals) {
      if (rx == source || result.delivered.contains(rx)) continue;
      if (tx.delivered.contains(rx)) {
        result.delivered.insert(rx);
        --pending;
        // Acknowledgement frame from the new receiver; acks are short and
        // assumed reliable (they carry no secret-relevant content).
        packet::Packet ack{.kind = packet::Kind::kAck,
                           .source = rx,
                           .round = pkt.round,
                           .seq = pkt.seq,
                           .payload = packet::Payload(params.ack_payload_bytes,
                                                      std::uint8_t{0})};
        medium.ledger().add(TrafficClass::kAck, ack.wire_size(),
                            medium.frame_airtime_s(ack.wire_size()));
      }
    }
    // Any eavesdropper that happened to receive an attempt is noted, though
    // the conservative model treats the content as public anyway.
    for (packet::NodeId e : medium.eavesdroppers())
      if (tx.delivered.contains(e)) result.delivered.insert(e);

    if (pending > 0 && params.slot_backoff) medium.wait_for_next_slot();
  }

  medium.trace().mark_reliable(reliable_frames);
  return result;
}

ReliableResult reliable_unicast(Medium& medium, packet::NodeId source,
                                packet::NodeId dest, const packet::Packet& pkt,
                                TrafficClass cls, ReliableParams params) {
  if (!medium.is_attached(dest))
    throw std::invalid_argument("reliable_unicast: unknown destination");

  ReliableResult result;
  std::size_t reliable_frames = 0;
  while (!result.delivered.contains(dest)) {
    if (result.attempts >= params.max_attempts)
      throw std::runtime_error(
          "reliable_unicast: channel too lossy, attempts exhausted");
    ++result.attempts;

    const Medium::TxResult tx = medium.transmit(source, pkt, cls);
    if (tx.delivered.contains(dest)) {
      result.delivered.insert(dest);
      packet::Packet ack{.kind = packet::Kind::kAck,
                         .source = dest,
                         .round = pkt.round,
                         .seq = pkt.seq,
                         .payload = packet::Payload(params.ack_payload_bytes,
                                                    std::uint8_t{0})};
      medium.ledger().add(TrafficClass::kAck, ack.wire_size(),
                          medium.frame_airtime_s(ack.wire_size()));
    }
    ++reliable_frames;
    for (packet::NodeId e : medium.eavesdroppers())
      if (tx.delivered.contains(e)) result.delivered.insert(e);

    if (!result.delivered.contains(dest) && params.slot_backoff)
      medium.wait_for_next_slot();
  }

  medium.trace().mark_reliable(reliable_frames);
  return result;
}

}  // namespace thinair::net
