#pragma once
// The broadcast medium: the simulator's stand-in for the paper's 802.11g
// ad-hoc network (Sec. 2 and 4).
//
// A single shared channel: when a node transmits, every other attached node
// independently either receives the frame or loses it according to the
// ErasureModel. The medium keeps a virtual clock (frames occupy airtime at
// the configured rate, 1 Mbps with 100-byte packets in the paper), derives
// the interference-schedule slot from the clock, appends every frame to the
// reception trace, and charges every byte to the ledger.
//
// The medium is sequential and deterministic given the Rng — terminals take
// turns transmitting under the protocol, so no collision model is needed
// (the paper's terminals likewise defer to the 802.11 MAC).

#include <unordered_map>
#include <vector>

#include "channel/erasure.h"
#include "channel/rng.h"
#include "net/ledger.h"
#include "net/trace.h"
#include "packet/packet.h"

namespace thinair::net {

/// Role of an attached node; terminals participate in the protocol (and
/// must be reached by reliable broadcasts), the eavesdropper only listens.
enum class Role : std::uint8_t { kTerminal, kEavesdropper };

struct MacParams {
  double data_rate_bps = 1e6;        // paper: 1 Mbps
  double per_frame_overhead_s = 192e-6;  // PLCP preamble + header at 1 Mbps
  double inter_frame_gap_s = 50e-6;      // DIFS-like spacing
  double slot_duration_s = 12e-3;        // interference rotation period

  friend bool operator==(const MacParams&, const MacParams&) = default;
};

class Medium {
 public:
  struct TxResult {
    NodeSet delivered;   // excludes the sender
    double airtime_s = 0.0;
  };

  /// The erasure model must outlive the medium.
  Medium(const channel::ErasureModel& model, channel::Rng rng,
         MacParams params = {});

  void attach(packet::NodeId node, Role role);
  [[nodiscard]] std::vector<packet::NodeId> terminals() const;
  [[nodiscard]] std::vector<packet::NodeId> eavesdroppers() const;
  [[nodiscard]] bool is_attached(packet::NodeId node) const;

  /// Broadcast a frame once (the paper's "transmits"). Every other attached
  /// node draws independently from the erasure model.
  TxResult transmit(packet::NodeId source, const packet::Packet& pkt,
                    TrafficClass cls);

  /// Current virtual time and interference slot.
  [[nodiscard]] double now() const { return now_s_; }
  [[nodiscard]] std::size_t slot() const {
    return static_cast<std::size_t>(now_s_ / params_.slot_duration_s);
  }

  [[nodiscard]] const Ledger& ledger() const { return ledger_; }
  [[nodiscard]] Ledger& ledger() { return ledger_; }
  [[nodiscard]] const Trace& trace() const { return trace_; }
  [[nodiscard]] Trace& trace() { return trace_; }
  [[nodiscard]] const MacParams& params() const { return params_; }
  [[nodiscard]] channel::Rng& rng() { return rng_; }

  /// Airtime of a frame with the given wire size.
  [[nodiscard]] double frame_airtime_s(std::size_t wire_bytes) const;

  /// Let the virtual clock idle for `seconds` (no bytes transmitted).
  void wait(double seconds);

  /// Idle until just after the next interference-slot boundary — the
  /// backoff reliable broadcast uses between retransmissions so retries do
  /// not burn airtime into the same noise pattern that just erased them.
  void wait_for_next_slot();

 private:
  const channel::ErasureModel& model_;
  channel::Rng rng_;
  MacParams params_;
  std::unordered_map<packet::NodeId, Role> nodes_;
  std::vector<packet::NodeId> order_;  // attachment order, for determinism
  double now_s_ = 0.0;
  Ledger ledger_;
  Trace trace_;
};

}  // namespace thinair::net
