#pragma once
// The broadcast-medium seam: the paper's 802.11g ad-hoc network (Sec. 2
// and 4) as an abstract interface plus the in-process simulation.
//
// `Medium` is the transport seam the protocol code is written against: a
// single shared channel where a node transmits a frame once and every
// other attached node either receives it or loses it. The base class owns
// everything transport-independent — the node registry, the virtual clock
// (frames occupy airtime at the configured rate, 1 Mbps with 100-byte
// packets in the paper), the byte ledger and the reception trace — and
// leaves one question to the implementation: who received this frame?
//
//   - SimMedium (below) answers it by drawing from an ErasureModel — the
//     in-process simulator every scenario and test runs on.
//   - netd::SocketMedium (src/netd/socket_medium.h) answers it by asking a
//     live `thinaird` daemon over UDP, so the same unmodified session code
//     runs against a real network face.
//
// The medium is sequential and deterministic given the Rng — terminals
// take turns transmitting under the protocol, so no collision model is
// needed (the paper's terminals likewise defer to the 802.11 MAC).

#include <unordered_map>
#include <vector>

#include "channel/erasure.h"
#include "channel/rng.h"
#include "net/ledger.h"
#include "net/trace.h"
#include "packet/packet.h"

namespace thinair::net {

/// Role of an attached node; terminals participate in the protocol (and
/// must be reached by reliable broadcasts), the eavesdropper only listens.
enum class Role : std::uint8_t { kTerminal, kEavesdropper };

struct MacParams {
  double data_rate_bps = 1e6;        // paper: 1 Mbps
  double per_frame_overhead_s = 192e-6;  // PLCP preamble + header at 1 Mbps
  double inter_frame_gap_s = 50e-6;      // DIFS-like spacing
  double slot_duration_s = 12e-3;        // interference rotation period

  friend bool operator==(const MacParams&, const MacParams&) = default;
};

class Medium {
 public:
  struct TxResult {
    NodeSet delivered;   // excludes the sender
    double airtime_s = 0.0;
  };

  virtual ~Medium() = default;

  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  virtual void attach(packet::NodeId node, Role role);
  [[nodiscard]] std::vector<packet::NodeId> terminals() const;
  [[nodiscard]] std::vector<packet::NodeId> eavesdroppers() const;
  [[nodiscard]] bool is_attached(packet::NodeId node) const;

  /// Broadcast a frame once (the paper's "transmits"). Every other attached
  /// node independently either receives it or loses it; how that is decided
  /// is the implementation's contract (erasure draws for SimMedium, the
  /// daemon's seeded relay for SocketMedium).
  virtual TxResult transmit(packet::NodeId source, const packet::Packet& pkt,
                            TrafficClass cls) = 0;

  /// Current virtual time and interference slot.
  [[nodiscard]] double now() const { return now_s_; }
  [[nodiscard]] std::size_t slot() const {
    return static_cast<std::size_t>(now_s_ / params_.slot_duration_s);
  }

  [[nodiscard]] const Ledger& ledger() const { return ledger_; }
  [[nodiscard]] Ledger& ledger() { return ledger_; }
  [[nodiscard]] const Trace& trace() const { return trace_; }
  [[nodiscard]] Trace& trace() { return trace_; }
  [[nodiscard]] const MacParams& params() const { return params_; }
  [[nodiscard]] channel::Rng& rng() { return rng_; }

  /// Airtime of a frame with the given wire size.
  [[nodiscard]] double frame_airtime_s(std::size_t wire_bytes) const;

  /// Let the virtual clock idle for `seconds` (no bytes transmitted).
  void wait(double seconds);

  /// Idle until just after the next interference-slot boundary — the
  /// backoff reliable broadcast uses between retransmissions so retries do
  /// not burn airtime into the same noise pattern that just erased them.
  void wait_for_next_slot();

 protected:
  Medium(channel::Rng rng, MacParams params);

  /// Shared post-transmit bookkeeping: charge the ledger, append the trace
  /// entry and advance the virtual clock past the frame + inter-frame gap.
  void account_transmit(packet::NodeId source, const packet::Packet& pkt,
                        TrafficClass cls, const TxResult& result,
                        std::size_t tx_slot);

  [[nodiscard]] const std::vector<packet::NodeId>& attach_order() const {
    return order_;
  }

 private:
  channel::Rng rng_;
  MacParams params_;
  std::unordered_map<packet::NodeId, Role> nodes_;
  std::vector<packet::NodeId> order_;  // attachment order, for determinism
  double now_s_ = 0.0;
  Ledger ledger_;
  Trace trace_;
};

/// The in-process simulation: one Bernoulli draw per attached node per
/// frame from the ErasureModel, interleaved with payload generation on the
/// medium's single Rng stream (the determinism contract every golden
/// suite pins).
class SimMedium final : public Medium {
 public:
  /// The erasure model must outlive the medium.
  SimMedium(const channel::ErasureModel& model, channel::Rng rng,
            MacParams params = {});

  TxResult transmit(packet::NodeId source, const packet::Packet& pkt,
                    TrafficClass cls) override;

 private:
  const channel::ErasureModel& model_;
};

}  // namespace thinair::net
