#include "net/trace.h"

#include <bit>
#include <stdexcept>

namespace thinair::net {

void NodeSet::insert(packet::NodeId id) {
  if (id.value >= 64) throw std::out_of_range("NodeSet: id >= 64");
  mask_ |= (std::uint64_t{1} << id.value);
}

bool NodeSet::contains(packet::NodeId id) const {
  if (id.value >= 64) return false;
  return (mask_ >> id.value) & 1;
}

std::size_t NodeSet::size() const {
  return static_cast<std::size_t>(std::popcount(mask_));
}

void Trace::mark_reliable(std::size_t count) {
  if (count > entries_.size())
    throw std::out_of_range("Trace::mark_reliable: count");
  for (std::size_t i = entries_.size() - count; i < entries_.size(); ++i)
    entries_[i].reliable = true;
}

}  // namespace thinair::net
