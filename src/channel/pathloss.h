#pragma once
// Log-distance path-loss model.
//
// The paper's testbed uses 802.11g at 2.472 GHz, 3 dBm transmit power,
// indoors and in line of sight (Sec. 4). We model received power with the
// standard log-distance law
//     Prx(d) = Ptx - PL(d0) - 10 * eta * log10(d / d0)
// with a reference loss at d0 = 1 m taken from the free-space value at
// 2.472 GHz (~40.3 dB) and an indoor LOS exponent eta ~= 2.0-3.0.

#include <cstddef>

namespace thinair::channel {

/// Decibel <-> linear helpers (power quantities).
[[nodiscard]] double db_to_linear(double db);
[[nodiscard]] double linear_to_db(double linear);

struct PathLossParams {
  double tx_power_dbm = 3.0;     // paper: 3 dBm
  double ref_loss_db = 40.3;     // free-space loss at 1 m, 2.472 GHz
  double exponent = 2.0;         // small-room line of sight (waveguiding)
  double min_distance_m = 0.1;   // clamp to avoid singularities

  friend bool operator==(const PathLossParams&,
                         const PathLossParams&) = default;
};

class LogDistancePathLoss {
 public:
  explicit LogDistancePathLoss(PathLossParams params = {});

  /// Received power in dBm at the given distance in metres.
  [[nodiscard]] double rx_power_dbm(double distance_m) const;

  /// Received power in milliwatts.
  [[nodiscard]] double rx_power_mw(double distance_m) const;

  [[nodiscard]] const PathLossParams& params() const { return params_; }

 private:
  PathLossParams params_;
};

}  // namespace thinair::channel
