#include "channel/geometry.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace thinair::channel {

double distance(Vec2 a, Vec2 b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << "(" << v.x << ", " << v.y << ")";
}

CellGrid::CellGrid(double area_m2) : side_(std::sqrt(area_m2)) {
  if (!(area_m2 > 0.0))
    throw std::invalid_argument("CellGrid: area must be positive");
}

double CellGrid::min_distance() const {
  return cell_side() * std::sqrt(2.0);
}

Vec2 CellGrid::center(CellIndex cell) const {
  if (cell.value >= kCells) throw std::out_of_range("CellGrid::center");
  const double cs = cell_side();
  return {(static_cast<double>(cell.col()) + 0.5) * cs,
          (static_cast<double>(cell.row()) + 0.5) * cs};
}

CellIndex CellGrid::cell_of(Vec2 p) const {
  const double cs = cell_side();
  const auto clamp_idx = [&](double v) {
    const auto i = static_cast<long>(std::floor(v / cs));
    return static_cast<std::size_t>(std::clamp(i, 0L, 2L));
  };
  return CellIndex{3 * clamp_idx(p.y) + clamp_idx(p.x)};
}

std::vector<Vec2> CellGrid::centers() const {
  std::vector<Vec2> out;
  out.reserve(kCells);
  for (std::size_t i = 0; i < kCells; ++i) out.push_back(center(CellIndex{i}));
  return out;
}

}  // namespace thinair::channel
