#pragma once
// String-keyed erasure-model construction.
//
// The declarative scenario layer (runtime/scenario_spec.h) names channel
// models by string — "iid", "per-link", "testbed" — so spec files can
// pick a model without compiling anything. This header owns the keying:
// the ChannelModelKind enum, its to/from-string mapping, and a factory
// for the placement-free kinds. The testbed kind is geometric — it needs
// node placements before it can exist — so it is materialised by
// testbed::build_channel, not here; the factory still validates its name.

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "channel/erasure.h"

namespace thinair::channel {

enum class ChannelModelKind : std::uint8_t {
  kIid,      // one erasure probability on every link (Figure 1)
  kPerLink,  // per-(tx, rx) table with a default (asymmetric studies)
  kTestbed,  // geometry + interference + SINR (Sec. 4 deployment)
};

[[nodiscard]] std::string_view to_string(ChannelModelKind kind);

/// nullopt when `name` keys no model.
[[nodiscard]] std::optional<ChannelModelKind> channel_model_from_string(
    std::string_view name);

/// All valid model names, in enum order (for error messages and docs).
[[nodiscard]] const std::vector<std::string_view>& channel_model_names();

/// One entry of a per-link erasure table.
struct LinkErasure {
  std::uint16_t tx = 0;
  std::uint16_t rx = 0;
  double p = 0.0;

  friend bool operator==(const LinkErasure&, const LinkErasure&) = default;
};

/// Build a placement-free model: IidErasure for kIid, PerLinkErasure for
/// kPerLink (`default_p` for unlisted links). Throws std::invalid_argument
/// for kTestbed — that model needs placements (testbed::build_channel) —
/// and for probabilities outside [0, 1].
[[nodiscard]] std::unique_ptr<ErasureModel> make_erasure_model(
    ChannelModelKind kind, double iid_p, double default_p = 0.0,
    const std::vector<LinkErasure>& links = {});

}  // namespace thinair::channel
