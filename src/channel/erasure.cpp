#include "channel/erasure.h"

#include <stdexcept>

namespace thinair::channel {

IidErasure::IidErasure(double p) : p_(p) {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("IidErasure: p outside [0, 1]");
}

PerLinkErasure::PerLinkErasure(double default_p) : default_p_(default_p) {
  if (default_p < 0.0 || default_p > 1.0)
    throw std::invalid_argument("PerLinkErasure: p outside [0, 1]");
}

void PerLinkErasure::set(packet::NodeId tx, packet::NodeId rx, double p) {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("PerLinkErasure::set: p outside [0, 1]");
  links_[{tx.value, rx.value}] = p;
}

double PerLinkErasure::erasure_probability(const LinkContext& link) const {
  const auto it = links_.find({link.tx.value, link.rx.value});
  return it == links_.end() ? default_p_ : it->second;
}

}  // namespace thinair::channel
