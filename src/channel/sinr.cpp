#include "channel/sinr.h"

#include <algorithm>
#include <cmath>

#include "channel/pathloss.h"

namespace thinair::channel {

double packet_error_rate(double sinr, const SinrParams& params) {
  const double z = (sinr - params.per_threshold_db) / params.per_scale_db;
  const double per = 1.0 / (1.0 + std::exp(z));
  return std::clamp(per, params.floor, params.ceiling);
}

double sinr_db(double signal_mw, double interference_mw,
               const SinrParams& params) {
  const double denom_mw =
      db_to_linear(params.noise_floor_dbm) + interference_mw;
  return linear_to_db(signal_mw) - linear_to_db(denom_mw);
}

}  // namespace thinair::channel
