#pragma once
// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulation (packet payloads, erasure
// draws, placement sampling) draws from an explicitly passed Rng so that
// experiments are reproducible from a single seed. The generator is
// xoshiro256** seeded through splitmix64, which has excellent statistical
// quality and lets us fork independent streams cheaply.
//
// NOTE: this is a *simulation* RNG. A production deployment must source
// x-packet payloads from a cryptographically secure generator; the
// protocol's secrecy argument assumes the payloads are uniform and
// unpredictable.

#include <cstdint>

namespace thinair::channel {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias. Precondition: bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli draw with success probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Uniform byte.
  std::uint8_t next_byte() { return static_cast<std::uint8_t>(next_u64()); }

  /// A statistically independent generator derived from this one's stream;
  /// used to give each experiment its own stream.
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace thinair::channel
