#include "channel/rng.h"

#include <stdexcept>

namespace thinair::channel {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound == 0");
  // Rejection sampling on the top of the range to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace thinair::channel
