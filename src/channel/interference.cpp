#include "channel/interference.h"

namespace thinair::channel {

InterferenceSchedule::InterferenceSchedule(CellGrid grid,
                                           InterfererParams params)
    : grid_(grid), params_(params) {}

std::array<Vec2, 2> InterferenceSchedule::row_antennas(std::size_t r) const {
  const double y = (static_cast<double>(r) + 0.5) * grid_.cell_side();
  return {Vec2{0.0, y}, Vec2{grid_.side(), y}};
}

std::array<Vec2, 2> InterferenceSchedule::col_antennas(std::size_t c) const {
  const double x = (static_cast<double>(c) + 0.5) * grid_.cell_side();
  return {Vec2{x, 0.0}, Vec2{x, grid_.side()}};
}

double InterferenceSchedule::interference_mw(
    Vec2 rx, std::size_t slot, const LogDistancePathLoss& pl) const {
  const NoisePattern p = pattern(slot);
  const CellIndex rx_cell = grid_.cell_of(rx);

  // Jammer antennas radiate with their own transmit power through the same
  // path-loss law; we re-use `pl`'s reference loss and exponent but
  // substitute the jammer's power by scaling in the linear domain.
  const double power_offset_db =
      params_.tx_power_dbm - pl.params().tx_power_dbm;

  double total_mw = 0.0;
  const auto add_antennas = [&](const std::array<Vec2, 2>& ants,
                                bool in_beam) {
    for (const Vec2& a : ants) {
      double rx_dbm = pl.rx_power_dbm(distance(rx, a)) + power_offset_db;
      if (!in_beam) rx_dbm -= params_.sidelobe_rejection_db;
      total_mw += db_to_linear(rx_dbm);
    }
  };
  add_antennas(row_antennas(p.row), rx_cell.row() == p.row);
  add_antennas(col_antennas(p.col), rx_cell.col() == p.col);
  return total_mw;
}

std::size_t InterferenceSchedule::patterns_jamming(CellIndex cell) {
  std::size_t count = 0;
  for (std::size_t s = 0; s < kPatterns; ++s) {
    const NoisePattern p{s / 3, s % 3};
    if (is_jammed(cell, p)) ++count;
  }
  return count;
}

}  // namespace thinair::channel
