#pragma once
// Planar geometry for the testbed: node positions and the paper's 3x3
// logical cell grid over a 14 m^2 square area (Sec. 4).

#include <cstddef>
#include <iosfwd>
#include <vector>

namespace thinair::channel {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;
  friend constexpr bool operator==(Vec2, Vec2) = default;
};

[[nodiscard]] double distance(Vec2 a, Vec2 b);

std::ostream& operator<<(std::ostream& os, Vec2 v);

/// Index of one of the paper's 9 logical cells, row-major: cell (r, c) has
/// index 3*r + c with r, c in {0, 1, 2}.
struct CellIndex {
  std::size_t value = 0;
  [[nodiscard]] constexpr std::size_t row() const { return value / 3; }
  [[nodiscard]] constexpr std::size_t col() const { return value % 3; }
  friend constexpr auto operator<=>(CellIndex, CellIndex) = default;
};

/// The paper's testbed floor plan: a square of `area` m^2 divided into a
/// 3x3 grid of logical cells. The cell diagonal (1.75 m for 14 m^2) is the
/// minimum separation the paper requires between Eve and any terminal.
class CellGrid {
 public:
  static constexpr std::size_t kRows = 3;
  static constexpr std::size_t kCols = 3;
  static constexpr std::size_t kCells = kRows * kCols;

  /// Default: the paper's 14 m^2 floor plan.
  CellGrid() : CellGrid(14.0) {}
  explicit CellGrid(double area_m2);

  [[nodiscard]] double side() const { return side_; }
  [[nodiscard]] double cell_side() const { return side_ / 3.0; }
  /// Diagonal of one cell: the paper's minimum terminal-Eve distance.
  [[nodiscard]] double min_distance() const;

  /// Centre of the given cell.
  [[nodiscard]] Vec2 center(CellIndex cell) const;

  /// Cell containing the given point (points on the boundary go to the
  /// higher-index cell; out-of-area points clamp to the nearest cell).
  [[nodiscard]] CellIndex cell_of(Vec2 p) const;

  /// All 9 cell centres, by index.
  [[nodiscard]] std::vector<Vec2> centers() const;

  friend bool operator==(const CellGrid&, const CellGrid&) = default;

 private:
  double side_;
};

}  // namespace thinair::channel
