#include "channel/pathloss.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace thinair::channel {

double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }

double linear_to_db(double linear) {
  if (!(linear > 0.0))
    throw std::invalid_argument("linear_to_db: non-positive power");
  return 10.0 * std::log10(linear);
}

LogDistancePathLoss::LogDistancePathLoss(PathLossParams params)
    : params_(params) {
  if (!(params_.min_distance_m > 0.0))
    throw std::invalid_argument("LogDistancePathLoss: min_distance_m <= 0");
}

double LogDistancePathLoss::rx_power_dbm(double distance_m) const {
  const double d = std::max(distance_m, params_.min_distance_m);
  return params_.tx_power_dbm - params_.ref_loss_db -
         10.0 * params_.exponent * std::log10(d);
}

double LogDistancePathLoss::rx_power_mw(double distance_m) const {
  return db_to_linear(rx_power_dbm(distance_m));
}

}  // namespace thinair::channel
