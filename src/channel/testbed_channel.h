#pragma once
// The composite channel of the paper's deployment (Sec. 4): geometry-driven
// path loss + rotating artificial interference + SINR-based packet loss.
//
// Nodes are placed at positions in the 14 m^2 area (usually cell centres);
// for each (tx, rx, slot) the model computes the received signal power, the
// jammers' interference power under the slot's noise pattern, and maps the
// resulting SINR to an erasure probability.

#include <optional>
#include <unordered_map>

#include "channel/erasure.h"
#include "channel/geometry.h"
#include "channel/interference.h"
#include "channel/pathloss.h"
#include "channel/sinr.h"

namespace thinair::channel {

class TestbedChannel final : public ErasureModel {
 public:
  struct Config {
    CellGrid grid{14.0};
    PathLossParams pathloss{};
    InterfererParams interferer{};
    SinrParams sinr{};
    bool interference_enabled = true;

    friend bool operator==(const Config&, const Config&) = default;
  };

  TestbedChannel() : TestbedChannel(Config{}) {}
  explicit TestbedChannel(Config config);

  /// Place (or move) a node. Positions default to cell centres via
  /// place_in_cell.
  void place(packet::NodeId node, Vec2 position);
  void place_in_cell(packet::NodeId node, CellIndex cell);

  [[nodiscard]] Vec2 position_of(packet::NodeId node) const;
  [[nodiscard]] CellIndex cell_of(packet::NodeId node) const;

  [[nodiscard]] double erasure_probability(
      const LinkContext& link) const override;

  /// SINR (dB) on a link during a slot; exposed for calibration and tests.
  [[nodiscard]] double link_sinr_db(packet::NodeId tx, packet::NodeId rx,
                                    std::size_t slot) const;

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const InterferenceSchedule& schedule() const {
    return schedule_;
  }

 private:
  Config config_;
  LogDistancePathLoss pathloss_;
  InterferenceSchedule schedule_;
  std::unordered_map<packet::NodeId, Vec2> positions_;
};

}  // namespace thinair::channel
