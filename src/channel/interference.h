#pragma once
// Artificial interference: the paper's jamming substrate (Sec. 3.3 / 4).
//
// The testbed uses 6 WARP nodes with two directional antennas each (narrow
// 22-degree beams) placed along the perimeter. At any time one pair of
// antennas jams one *row* of the 3x3 cell grid while another pair jams one
// *column*; rotating through all 3 x 3 = 9 (row, column) combinations gives
// the paper's 9 noise patterns. The purpose is to guarantee that *any*
// receiver — in particular Eve, wherever she stands — is jammed during
// 5 of the 9 patterns (3 with her row + 3 with her column - 1 overlap), so
// she misses a minimum fraction of packets regardless of natural channel
// conditions.
//
// We model each beam as a corridor of elevated noise aligned with a row or
// column, fed by two antennas at the corridor's ends; receivers inside the
// corridor receive the jammers' power through the path-loss model,
// receivers outside receive it attenuated by the beam's side-lobe rejection.

#include <array>
#include <cstddef>
#include <vector>

#include "channel/geometry.h"
#include "channel/pathloss.h"

namespace thinair::channel {

/// One of the 9 noise patterns: a jammed row and a jammed column.
struct NoisePattern {
  std::size_t row = 0;
  std::size_t col = 0;
  friend constexpr bool operator==(NoisePattern, NoisePattern) = default;
};

struct InterfererParams {
  double tx_power_dbm = 10.0;  // WARP jammer transmit power
  // Attenuation outside the 22-degree beam. Indoors, reflections keep
  // side-lobe rejection modest, so off-corridor receivers also see some
  // noise — that residual randomness is what makes every receiver
  // (including Eve) miss a nonzero fraction of every packet class.
  double sidelobe_rejection_db = 26.0;

  friend bool operator==(const InterfererParams&,
                         const InterfererParams&) = default;
};

/// The rotating row/column jamming schedule.
class InterferenceSchedule {
 public:
  static constexpr std::size_t kPatterns = 9;

  explicit InterferenceSchedule(CellGrid grid, InterfererParams params = {});

  /// Pattern active in the given slot (slots rotate round-robin).
  [[nodiscard]] NoisePattern pattern(std::size_t slot) const {
    const std::size_t p = slot % kPatterns;
    return {p / 3, p % 3};
  }

  /// True when the given cell lies inside a jammed corridor of `pattern`.
  [[nodiscard]] static bool is_jammed(CellIndex cell, NoisePattern pattern) {
    return cell.row() == pattern.row || cell.col() == pattern.col;
  }

  /// Total interference power (mW) delivered to a receiver at `rx` during
  /// `slot`, through the path-loss model `pl`. Includes side-lobe leakage
  /// when the receiver is outside the jammed corridors.
  [[nodiscard]] double interference_mw(Vec2 rx, std::size_t slot,
                                       const LogDistancePathLoss& pl) const;

  /// Number of the 9 patterns that jam the given cell (always 5: the
  /// paper's minimum-fraction guarantee).
  [[nodiscard]] static std::size_t patterns_jamming(CellIndex cell);

  [[nodiscard]] const CellGrid& grid() const { return grid_; }
  [[nodiscard]] const InterfererParams& params() const { return params_; }

  /// Antenna positions feeding the corridor of row r (both ends).
  [[nodiscard]] std::array<Vec2, 2> row_antennas(std::size_t r) const;
  /// Antenna positions feeding the corridor of column c (both ends).
  [[nodiscard]] std::array<Vec2, 2> col_antennas(std::size_t c) const;

 private:
  CellGrid grid_;
  InterfererParams params_;
};

}  // namespace thinair::channel
