#include "channel/testbed_channel.h"

#include <stdexcept>

namespace thinair::channel {

TestbedChannel::TestbedChannel(Config config)
    : config_(config),
      pathloss_(config.pathloss),
      schedule_(config.grid, config.interferer) {}

void TestbedChannel::place(packet::NodeId node, Vec2 position) {
  positions_[node] = position;
}

void TestbedChannel::place_in_cell(packet::NodeId node, CellIndex cell) {
  place(node, config_.grid.center(cell));
}

Vec2 TestbedChannel::position_of(packet::NodeId node) const {
  const auto it = positions_.find(node);
  if (it == positions_.end())
    throw std::out_of_range("TestbedChannel: node not placed");
  return it->second;
}

CellIndex TestbedChannel::cell_of(packet::NodeId node) const {
  return config_.grid.cell_of(position_of(node));
}

double TestbedChannel::link_sinr_db(packet::NodeId tx, packet::NodeId rx,
                                    std::size_t slot) const {
  const Vec2 tx_pos = position_of(tx);
  const Vec2 rx_pos = position_of(rx);
  const double signal_mw = pathloss_.rx_power_mw(distance(tx_pos, rx_pos));
  const double interference_mw =
      config_.interference_enabled
          ? schedule_.interference_mw(rx_pos, slot, pathloss_)
          : 0.0;
  return sinr_db(signal_mw, interference_mw, config_.sinr);
}

double TestbedChannel::erasure_probability(const LinkContext& link) const {
  return packet_error_rate(link_sinr_db(link.tx, link.rx, link.slot),
                           config_.sinr);
}

}  // namespace thinair::channel
