#pragma once
// SINR -> packet-error-rate mapping.
//
// A 100-byte 802.11g frame at 1 Mbps (DSSS/CCK-style robust rate, as used
// by the testbed) survives when its SINR clears a threshold; per-packet
// fading smears the threshold into a smooth sigmoid. We use a logistic
// curve in the dB domain — the standard abstraction when per-packet fading
// in dB is approximately logistic/normal — parameterised by the 50%-loss
// threshold and a scale that encodes fading variance.

#include <cstddef>

namespace thinair::channel {

struct SinrParams {
  double noise_floor_dbm = -90.0;  // thermal + receiver noise figure
  double per_threshold_db = 5.0;   // SINR with 50% packet loss
  double per_scale_db = 3.5;       // indoor multipath fading spread
  double floor = 0.005;            // residual loss on perfect links
  double ceiling = 0.94;           // capture effect: jamming rarely hits 100%

  friend bool operator==(const SinrParams&, const SinrParams&) = default;
};

/// Packet error rate for the given SINR (dB) under `params`; monotonically
/// decreasing in SINR, clamped to [floor, ceiling].
[[nodiscard]] double packet_error_rate(double sinr_db,
                                       const SinrParams& params);

/// SINR (dB) from received signal power and interference power (both mW).
[[nodiscard]] double sinr_db(double signal_mw, double interference_mw,
                             const SinrParams& params);

}  // namespace thinair::channel
