#pragma once
// Packet-erasure channel abstraction.
//
// The protocol consumes the wireless medium purely as a packet-erasure
// process: for every transmission, each receiver either gets the packet
// intact (802.11 FCS passes) or loses it. An ErasureModel maps a link and
// a time slot to an erasure probability; the broadcast medium draws one
// independent Bernoulli per receiver per packet, which mirrors how
// per-packet fading and interference act on short 100-byte frames.

#include <cstddef>
#include <map>
#include <memory>

#include "channel/rng.h"
#include "packet/types.h"

namespace thinair::channel {

/// Identifies one directed link at one point in (slotted) time.
struct LinkContext {
  packet::NodeId tx;
  packet::NodeId rx;
  std::size_t slot = 0;  // interference-schedule slot of the transmission
};

/// Interface: probability that a packet on the given link in the given slot
/// is erased (lost).
class ErasureModel {
 public:
  virtual ~ErasureModel() = default;

  [[nodiscard]] virtual double erasure_probability(
      const LinkContext& link) const = 0;

  /// One Bernoulli draw from this model.
  [[nodiscard]] bool erased(Rng& rng, const LinkContext& link) const {
    return rng.bernoulli(erasure_probability(link));
  }
};

/// Every link erases independently with the same probability p — the
/// idealized symmetric channel used for Figure 1 ("the packet erasure
/// probability between Alice and each terminal, as well as Alice and Eve,
/// is the same").
class IidErasure final : public ErasureModel {
 public:
  explicit IidErasure(double p);
  [[nodiscard]] double erasure_probability(const LinkContext&) const override {
    return p_;
  }

 private:
  double p_;
};

/// Per-(tx, rx) erasure probabilities with a default for unlisted links.
/// Useful for tests and for asymmetric-channel studies.
class PerLinkErasure final : public ErasureModel {
 public:
  explicit PerLinkErasure(double default_p = 0.0);

  void set(packet::NodeId tx, packet::NodeId rx, double p);
  [[nodiscard]] double erasure_probability(
      const LinkContext& link) const override;

 private:
  double default_p_;
  std::map<std::pair<std::uint16_t, std::uint16_t>, double> links_;
};

}  // namespace thinair::channel
