#include "channel/factory.h"

#include <stdexcept>
#include <string>

namespace thinair::channel {

std::string_view to_string(ChannelModelKind kind) {
  switch (kind) {
    case ChannelModelKind::kIid: return "iid";
    case ChannelModelKind::kPerLink: return "per-link";
    case ChannelModelKind::kTestbed: return "testbed";
  }
  return "unknown";
}

std::optional<ChannelModelKind> channel_model_from_string(
    std::string_view name) {
  for (const ChannelModelKind kind :
       {ChannelModelKind::kIid, ChannelModelKind::kPerLink,
        ChannelModelKind::kTestbed})
    if (name == to_string(kind)) return kind;
  return std::nullopt;
}

const std::vector<std::string_view>& channel_model_names() {
  static const std::vector<std::string_view> names = {
      to_string(ChannelModelKind::kIid), to_string(ChannelModelKind::kPerLink),
      to_string(ChannelModelKind::kTestbed)};
  return names;
}

namespace {

void check_probability(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0))
    throw std::invalid_argument(std::string("make_erasure_model: ") + what +
                                " outside [0, 1]");
}

}  // namespace

std::unique_ptr<ErasureModel> make_erasure_model(
    ChannelModelKind kind, double iid_p, double default_p,
    const std::vector<LinkErasure>& links) {
  switch (kind) {
    case ChannelModelKind::kIid:
      check_probability(iid_p, "iid p");
      return std::make_unique<IidErasure>(iid_p);
    case ChannelModelKind::kPerLink: {
      check_probability(default_p, "default p");
      auto model = std::make_unique<PerLinkErasure>(default_p);
      for (const LinkErasure& link : links) {
        check_probability(link.p, "link p");
        model->set(packet::NodeId{link.tx}, packet::NodeId{link.rx}, link.p);
      }
      return model;
    }
    case ChannelModelKind::kTestbed:
      throw std::invalid_argument(
          "make_erasure_model: the testbed model needs placements — use "
          "testbed::build_channel");
  }
  throw std::logic_error("make_erasure_model: unknown kind");
}

}  // namespace thinair::channel
