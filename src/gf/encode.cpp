#include "gf/encode.h"

#include <algorithm>
#include <stdexcept>

#include "gf/kernels.h"

namespace thinair::gf {

void encode(const Matrix& m,
            std::span<const std::span<const std::uint8_t>> inputs,
            std::span<const std::span<std::uint8_t>> outputs,
            std::size_t payload_size) {
  if (inputs.size() != m.cols())
    throw std::invalid_argument("gf::encode: input count != matrix cols");
  if (outputs.size() != m.rows())
    throw std::invalid_argument("gf::encode: output count != matrix rows");
  for (const std::span<std::uint8_t> out : outputs)
    if (out.size() != payload_size)
      throw std::invalid_argument("gf::encode: output size mismatch");

  const Kernel& kernel = active_kernel();
  for (std::size_t r0 = 0; r0 < m.rows(); r0 += kMaxFusedRows) {
    const std::size_t kb = std::min(kMaxFusedRows, m.rows() - r0);
    for (std::size_t j = 0; j < m.cols(); ++j) {
      // Gather the block's live rows for input j; all-zero columns cost
      // kb byte loads and never touch the input payload.
      std::uint8_t cc[kMaxFusedRows];
      std::uint8_t* ys[kMaxFusedRows];
      std::size_t live = 0;
      for (std::size_t r = 0; r < kb; ++r) {
        const std::uint8_t c = m.at(r0 + r, j).value();
        if (c == 0) continue;
        cc[live] = c;
        ys[live] = outputs[r0 + r].data();
        ++live;
      }
      if (live == 0) continue;
      if (inputs[j].size() != payload_size)
        throw std::invalid_argument("gf::encode: input size mismatch");
      kernel.mad_multi(cc, live, inputs[j].data(), ys, payload_size);
    }
  }
}

std::vector<std::span<const std::uint8_t>> encode(
    const Matrix& m, std::span<const std::span<const std::uint8_t>> inputs,
    std::size_t payload_size, packet::PayloadArena& arena) {
  if (payload_size == 0)
    throw std::invalid_argument("gf::encode: payload_size == 0");
  const std::vector<std::span<std::uint8_t>> outs =
      arena.alloc_rows(m.rows(), payload_size);
  encode(m, inputs, outs, payload_size);
  return {outs.begin(), outs.end()};
}

}  // namespace thinair::gf
