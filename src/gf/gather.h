#pragma once
// Fused payload gathering — the decode-direction mirror of gf::encode.
//
// Receivers reconstructing pool rows from overheard x-packets, the repair
// path solving for missing y's, and the analysis reducing Eve's
// observations all compute out ^= sum_j c[j] * inputs[j]: ONE output row
// accumulated from many scaled input payloads. Done coefficient by
// coefficient (one axpy per nonzero term) the output row is re-streamed
// through the cache once per input; gather() instead hands blocks of
// kMaxFusedRows inputs to the active kernel's dot_multi, which loads and
// stores the accumulator once per block — cutting output traffic by up
// to 8x, exactly as gf::encode cuts input traffic on the scatter side.
// GF(2^8) arithmetic is exact and XOR accumulation is order-independent,
// so the output bytes are identical to the repeated-axpy formulation —
// the runtime's cross-kernel/cross-thread NDJSON contract is unaffected.
//
// gather() *accumulates* into the caller's output span (callers seed it
// with zeros, or with the z-content in the repair path); the arena
// overload allocates a zeroed output itself. Zero coefficients are
// skipped, and the input spans under them may be empty — they are never
// dereferenced (the reconstruct_y convention for missed x-packets).

#include <cstddef>
#include <cstdint>
#include <span>

#include "packet/arena.h"

namespace thinair::gf {

/// out ^= sum_j coeffs[j] * inputs[j], fused over input blocks.
/// Requires coeffs.size() == inputs.size() and every input span under a
/// nonzero coefficient of size out.size() (inputs under zero coefficients
/// may be empty and are never dereferenced). `out` must not alias any
/// input referenced by a nonzero coefficient.
void gather(std::span<const std::uint8_t> coeffs,
            std::span<const std::span<const std::uint8_t>> inputs,
            std::span<std::uint8_t> out);

/// Arena path: allocate one zeroed payload span of `payload_size` bytes
/// from `arena`, gather into it and return it.
[[nodiscard]] std::span<const std::uint8_t> gather(
    std::span<const std::uint8_t> coeffs,
    std::span<const std::span<const std::uint8_t>> inputs,
    std::size_t payload_size, packet::PayloadArena& arena);

}  // namespace thinair::gf
