#pragma once
// GF(2^64) arithmetic for the authentication extension.
//
// The one-time message authentication codes that defend the protocol's
// public discussion against an *active* Eve (Sec. 2 of the paper, detailed
// in the technical report [9]) need unconditional security with forgery
// probability ~ L / 2^64 per message, which a byte-sized field cannot give.
// GF(2^64) is represented in polynomial basis modulo
// x^64 + x^4 + x^3 + x + 1 (a standard primitive pentanomial).

#include <cstdint>
#include <iosfwd>

namespace thinair::gf {

/// A GF(2^64) field element. Value type, 8 bytes.
class GF64 {
 public:
  constexpr GF64() = default;
  explicit constexpr GF64(std::uint64_t v) : v_(v) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return v_; }
  [[nodiscard]] constexpr bool is_zero() const { return v_ == 0; }

  friend constexpr GF64 operator+(GF64 a, GF64 b) { return GF64(a.v_ ^ b.v_); }
  friend constexpr GF64 operator-(GF64 a, GF64 b) { return a + b; }

  friend constexpr GF64 operator*(GF64 a, GF64 b) {
    // Carry-less shift-and-add with on-the-fly modular reduction.
    std::uint64_t acc = 0;
    std::uint64_t x = a.v_;
    std::uint64_t y = b.v_;
    while (y != 0) {
      if (y & 1) acc ^= x;
      y >>= 1;
      const bool carry = (x >> 63) & 1;
      x <<= 1;
      if (carry) x ^= kReduction;
    }
    return GF64(acc);
  }

  /// this^e by square-and-multiply.
  [[nodiscard]] constexpr GF64 pow(std::uint64_t e) const {
    GF64 base = *this;
    GF64 acc(1);
    while (e != 0) {
      if (e & 1) acc = acc * base;
      base = base * base;
      e >>= 1;
    }
    return acc;
  }

  /// Multiplicative inverse via Fermat: a^(2^64 - 2). Precondition: != 0.
  [[nodiscard]] constexpr GF64 inv() const {
    return pow(~std::uint64_t{0} - 1);  // 2^64 - 2
  }

  friend constexpr GF64 operator/(GF64 a, GF64 b) { return a * b.inv(); }

  constexpr GF64& operator+=(GF64 o) { return *this = *this + o; }
  constexpr GF64& operator*=(GF64 o) { return *this = *this * o; }

  friend constexpr bool operator==(GF64, GF64) = default;

 private:
  // Low-order terms of x^64 + x^4 + x^3 + x + 1.
  static constexpr std::uint64_t kReduction = 0x1B;
  std::uint64_t v_ = 0;
};

std::ostream& operator<<(std::ostream& os, GF64 v);

}  // namespace thinair::gf
