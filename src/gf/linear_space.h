#pragma once
// Incrementally maintained row space over GF(2^8).
//
// The secrecy analysis (Sec. 4's reliability metric) models everything Eve
// has seen as a set of linear functionals of the round's x-packets. This
// class keeps that set as a row-reduced basis so that
//   - inserting an observation is O(rank * dim),
//   - "does this functional add information?" is a residual test,
//   - equivocation queries reduce to rank arithmetic.

#include <cstddef>
#include <span>
#include <vector>

#include "gf/matrix.h"

namespace thinair::gf {

/// A subspace of F_256^dim maintained as a reduced row-echelon basis.
class LinearSpace {
 public:
  explicit LinearSpace(std::size_t dim) : dim_(dim) {}

  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] std::size_t rank() const { return basis_.size(); }

  /// Insert a vector; returns true when it was independent of (and thus
  /// enlarged) the space. Vector length must equal dim(). The return
  /// value is the rank-growth signal the secrecy analysis is built on —
  /// callers that genuinely only want the side effect must say so with
  /// std::ignore.
  [[nodiscard]] bool insert(std::span<const std::uint8_t> v);

  /// Insert every row of m (m.cols() must equal dim()); returns the number
  /// of rows that enlarged the space. Discardable: bulk observation
  /// feeds routinely ignore the per-batch count (rank() has the total).
  std::size_t insert_rows(const Matrix& m);

  /// Insert the `index`-th unit vector (an observation of one raw symbol).
  [[nodiscard]] bool insert_unit(std::size_t index);

  /// True when v lies in the span.
  [[nodiscard]] bool contains(std::span<const std::uint8_t> v) const;

  /// rank(space + rows of m) - rank(space): how many dimensions of m remain
  /// unknown given this space. This is exactly the per-symbol equivocation
  /// of a secret with combination matrix m given these observations.
  [[nodiscard]] std::size_t residual_rank(const Matrix& m) const;

  /// The current basis as a matrix (rank() x dim()).
  [[nodiscard]] Matrix basis() const;

 private:
  /// Reduce v against the basis in place; returns the column of its leading
  /// nonzero entry, or dim_ when v reduces to zero.
  std::size_t reduce(std::vector<std::uint8_t>& v) const;

  /// insert() taking ownership of the candidate row (no defensive copy).
  [[nodiscard]] bool insert_owned(std::vector<std::uint8_t> w);

  std::size_t dim_;
  // Rows kept sorted by pivot column; each row is normalised (pivot == 1)
  // and fully reduced against the others.
  std::vector<std::vector<std::uint8_t>> basis_;
  std::vector<std::size_t> pivots_;
};

}  // namespace thinair::gf
