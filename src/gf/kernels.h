#pragma once
// Bulk GF(2^8) kernels over raw byte spans.
//
// Every linear operation in the protocol — y/z/s-packet formation,
// Gaussian elimination at the terminals, the secrecy analysis — bottoms
// out in one of three primitives applied to whole payloads:
//
//   axpy      y[i] ^= c * x[i]      (packet combining, the workhorse)
//   mul_row   y[i]  = c * x[i]      (row normalisation; x == y allowed)
//   xor_into  y[i] ^= x[i]          (the c == 1 fast path)
//
// This header exposes them as a small vtable so the hot loops can be
// retargeted at runtime: a scalar log/exp baseline, a portable 64-bit
// SWAR (bit-sliced xtime) kernel, and SSSE3/AVX2 `pshufb` split-nibble
// kernels in the style of ISA-L's Reed-Solomon routines. The active
// kernel is chosen once by CPUID dispatch and can be overridden — for
// testing and for the cross-kernel determinism checks — with the
// THINAIR_GF_KERNEL environment variable or set_active_kernel().
//
// Contract: all kernels compute the exact same field arithmetic, so their
// output bytes are identical for identical inputs (GF(2^8) is exact —
// there is no rounding to diverge on). The differential test in
// tests/kernel_test.cpp and the CI cross-kernel cmp enforce this.
//
// Aliasing: x and y must either not overlap or be exactly equal
// (mul_row's in-place scale). Partial overlap is undefined.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

#include "gf/gf256.h"

namespace thinair::gf {

/// One retargetable implementation of the bulk primitives.
struct Kernel {
  const char* name;  // "scalar" | "portable" | "ssse3" | "avx2"
  void (*axpy)(std::uint8_t c, const std::uint8_t* x, std::uint8_t* y,
               std::size_t n);
  void (*mul_row)(std::uint8_t c, const std::uint8_t* x, std::uint8_t* y,
                  std::size_t n);
  void (*xor_into)(const std::uint8_t* x, std::uint8_t* y, std::size_t n);
};

/// The byte-at-a-time log/exp baseline (always available).
[[nodiscard]] const Kernel& scalar_kernel();

/// Portable 64-bit SWAR kernel: eight bytes per step via a bit-sliced
/// xtime ladder (always available).
[[nodiscard]] const Kernel& portable_kernel();

/// Best SIMD kernel this CPU supports (AVX2 preferred over SSSE3), or
/// nullptr when the build/CPU has none.
[[nodiscard]] const Kernel* simd_kernel();

/// Every kernel usable on this machine, scalar first.
[[nodiscard]] std::span<const Kernel* const> all_kernels();

/// The kernel behind gf::axpy / gf::mul_row / gf::xor_into. Resolution
/// order: set_active_kernel() override, then THINAIR_GF_KERNEL, then the
/// best CPUID-supported kernel.
[[nodiscard]] const Kernel& active_kernel();

/// Select by name ("auto" restores CPUID dispatch). Returns false — and
/// leaves the selection unchanged — when the name is unknown or names a
/// kernel this CPU cannot run.
bool set_active_kernel(std::string_view name);

/// y[i] = c * x[i] over n bytes through the active kernel (x == y allowed).
inline void mul_row(GF256 c, const std::uint8_t* x, std::uint8_t* y,
                    std::size_t n) {
  active_kernel().mul_row(c.value(), x, y, n);
}

/// y[i] ^= x[i] over n bytes through the active kernel.
inline void xor_into(const std::uint8_t* x, std::uint8_t* y, std::size_t n) {
  active_kernel().xor_into(x, y, n);
}

}  // namespace thinair::gf
