#pragma once
// Bulk GF(2^8) kernels over raw byte spans.
//
// Every linear operation in the protocol — y/z/s-packet formation,
// Gaussian elimination at the terminals, the secrecy analysis — bottoms
// out in one of three primitives applied to whole payloads:
//
//   axpy      y[i] ^= c * x[i]      (packet combining, the workhorse)
//   mul_row   y[i]  = c * x[i]      (row normalisation; x == y allowed)
//   xor_into  y[i] ^= x[i]          (the c == 1 fast path)
//   mad_multi ys[r][i] ^= c[r]*x[i] (fused scatter: encode up to
//                                    kMaxFusedRows output rows per pass
//                                    over the shared input, ISA-L
//                                    gf_vect_mad-style)
//   dot_multi y[i] ^= Σ c[r]*xs[r][i] (fused gather: decode one output row
//                                    from up to kMaxFusedRows inputs per
//                                    pass, ISA-L gf_vect_dot_prod-style —
//                                    the mirror of mad_multi for the
//                                    reconstruct/repair/analysis side)
//
// This header exposes them as a small vtable so the hot loops can be
// retargeted at runtime: a scalar log/exp baseline, a portable 64-bit
// SWAR (bit-sliced xtime) kernel, SSSE3/AVX2 `pshufb` split-nibble
// kernels in the style of ISA-L's Reed-Solomon routines, and a
// GFNI+AVX-512 kernel (`gf2p8affineqb`: a full GF(2^8) multiply per byte
// lane from one 8x8 bit matrix per coefficient). The active kernel is
// chosen once by CPUID dispatch and can be overridden — for testing and
// for the cross-kernel determinism checks — with the THINAIR_GF_KERNEL
// environment variable or set_active_kernel().
//
// Contract: all kernels compute the exact same field arithmetic, so their
// output bytes are identical for identical inputs (GF(2^8) is exact —
// there is no rounding to diverge on). The differential test in
// tests/kernel_test.cpp and the CI cross-kernel cmp enforce this.
//
// Aliasing: x and y must either not overlap or be exactly equal
// (mul_row's in-place scale). Partial overlap is undefined. For mad_multi
// the output rows must be pairwise disjoint and none may overlap x; for
// dot_multi the output must not overlap any input (inputs may repeat).

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

#include "gf/gf256.h"

namespace thinair::gf {

/// Rows one mad_multi pass fuses at most. Larger batches are tiled into
/// blocks of this size (by the kernels themselves and by gf::encode); the
/// value is chosen so the AVX2 kernel's per-row nibble tables still fit
/// the register file with modest spilling.
inline constexpr std::size_t kMaxFusedRows = 8;

/// One retargetable implementation of the bulk primitives.
struct Kernel {
  const char* name;  // "scalar" | "portable" | "ssse3" | "avx2" | "gfni"
  void (*axpy)(std::uint8_t c, const std::uint8_t* x, std::uint8_t* y,
               std::size_t n);
  void (*mul_row)(std::uint8_t c, const std::uint8_t* x, std::uint8_t* y,
                  std::size_t n);
  void (*xor_into)(const std::uint8_t* x, std::uint8_t* y, std::size_t n);
  /// ys[r][i] ^= c[r] * x[i] for every r < k — byte-exact equal to k
  /// repeated axpy calls, but streaming x once per kMaxFusedRows outputs.
  /// Any k is accepted (tiled internally); c[r] == 0 rows are skipped.
  void (*mad_multi)(const std::uint8_t* c, std::size_t k,
                    const std::uint8_t* x, std::uint8_t* const* ys,
                    std::size_t n);
  /// y[i] ^= sum over r < k of c[r] * xs[r][i] — byte-exact equal to k
  /// repeated axpy calls into the shared output, but loading/storing y
  /// once per kMaxFusedRows inputs. Any k is accepted (tiled internally);
  /// c[r] == 0 inputs are skipped and never dereferenced.
  void (*dot_multi)(const std::uint8_t* c, std::size_t k,
                    const std::uint8_t* const* xs, std::uint8_t* y,
                    std::size_t n);
};

/// The byte-at-a-time log/exp baseline (always available).
[[nodiscard]] const Kernel& scalar_kernel();

/// Portable 64-bit SWAR kernel: eight bytes per step via a bit-sliced
/// xtime ladder (always available).
[[nodiscard]] const Kernel& portable_kernel();

/// Best SIMD kernel this CPU supports (GFNI+AVX-512 > AVX2 > SSSE3), or
/// nullptr when the build/CPU has none.
[[nodiscard]] const Kernel* simd_kernel();

/// Every kernel usable on this machine, scalar first.
[[nodiscard]] std::span<const Kernel* const> all_kernels();

/// The kernel behind gf::axpy / gf::mul_row / gf::xor_into. Resolution
/// order: set_active_kernel() override, then THINAIR_GF_KERNEL, then the
/// best CPUID-supported kernel.
[[nodiscard]] const Kernel& active_kernel();

/// Select by name ("auto" restores CPUID dispatch). Returns false — and
/// leaves the selection unchanged — when the name is unknown or names a
/// kernel this CPU cannot run. Thread-safe (the selection is one relaxed
/// atomic slot; kernel tables themselves are immutable after init), but
/// switching mid-computation interleaves kernels across calls — callers
/// sequence selection before spawning workers, as the CLI does.
[[nodiscard]] bool set_active_kernel(std::string_view name);

/// y[i] = c * x[i] over n bytes through the active kernel (x == y allowed).
inline void mul_row(GF256 c, const std::uint8_t* x, std::uint8_t* y,
                    std::size_t n) {
  active_kernel().mul_row(c.value(), x, y, n);
}

/// y[i] ^= x[i] over n bytes through the active kernel.
inline void xor_into(const std::uint8_t* x, std::uint8_t* y, std::size_t n) {
  active_kernel().xor_into(x, y, n);
}

/// ys[r][i] ^= c[r] * x[i] for every r < k through the active kernel.
inline void mad_multi(const std::uint8_t* c, std::size_t k,
                      const std::uint8_t* x, std::uint8_t* const* ys,
                      std::size_t n) {
  active_kernel().mad_multi(c, k, x, ys, n);
}

/// y[i] ^= sum_r c[r] * xs[r][i] through the active kernel.
inline void dot_multi(const std::uint8_t* c, std::size_t k,
                      const std::uint8_t* const* xs, std::uint8_t* y,
                      std::size_t n) {
  active_kernel().dot_multi(c, k, xs, y, n);
}

/// Batches (coefficient, output-row) pairs against one shared input and
/// flushes them through mad_multi in blocks of kMaxFusedRows — the
/// elimination-loop shape (Matrix::row_reduce, LinearSpace back-
/// substitution) where the live rows are discovered one at a time. Zero
/// coefficients are dropped on add(). The destructor flushes whatever is
/// pending; call flush() explicitly where the results must be visible
/// before the batch goes out of scope.
class MadBatch {
 public:
  MadBatch(const std::uint8_t* x, std::size_t n)
      : x_(x), n_(n), kernel_(active_kernel()) {}
  ~MadBatch() { flush(); }
  MadBatch(const MadBatch&) = delete;
  MadBatch& operator=(const MadBatch&) = delete;

  void add(std::uint8_t c, std::uint8_t* y) {
    if (c == 0) return;
    cc_[live_] = c;
    ys_[live_] = y;
    if (++live_ == kMaxFusedRows) flush();
  }

  void flush() {
    if (live_ == 0) return;
    kernel_.mad_multi(cc_, live_, x_, ys_, n_);
    live_ = 0;
  }

 private:
  const std::uint8_t* x_;
  std::size_t n_;
  const Kernel& kernel_;
  std::uint8_t cc_[kMaxFusedRows];
  std::uint8_t* ys_[kMaxFusedRows];
  std::size_t live_ = 0;
};

/// The gather-direction mirror of MadBatch: batches (coefficient, input-
/// row) pairs against one shared output and flushes them through
/// dot_multi in blocks of kMaxFusedRows — the decode-loop shape
/// (reconstruct_y, LinearSpace::reduce, the repair back-substitutions)
/// where the live inputs are discovered one at a time. Zero coefficients
/// are dropped on add(). The destructor flushes whatever is pending; call
/// flush() explicitly where the result must be visible before the batch
/// goes out of scope.
class DotBatch {
 public:
  DotBatch(std::uint8_t* y, std::size_t n)
      : y_(y), n_(n), kernel_(active_kernel()) {}
  ~DotBatch() { flush(); }
  DotBatch(const DotBatch&) = delete;
  DotBatch& operator=(const DotBatch&) = delete;

  void add(std::uint8_t c, const std::uint8_t* x) {
    if (c == 0) return;
    cc_[live_] = c;
    xs_[live_] = x;
    if (++live_ == kMaxFusedRows) flush();
  }

  void flush() {
    if (live_ == 0) return;
    kernel_.dot_multi(cc_, live_, xs_, y_, n_);
    live_ = 0;
  }

 private:
  std::uint8_t* y_;
  std::size_t n_;
  const Kernel& kernel_;
  std::uint8_t cc_[kMaxFusedRows];
  const std::uint8_t* xs_[kMaxFusedRows];
  std::size_t live_ = 0;
};

}  // namespace thinair::gf
