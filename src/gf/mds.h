#pragma once
// Maximum Distance Separable (MDS) code constructions over GF(2^8).
//
// The paper derives its y-, z- and s-packets from MDS codes [10]: the
// property actually consumed by the protocol is that *any* k columns of a
// k x n generator matrix form an invertible k x k matrix. Consequences:
//  - privacy amplification (y- and s-packets): if the adversary misses at
//    least k of the n combined inputs, the k outputs are jointly uniform
//    from her point of view;
//  - erasure repair (z-packets): a receiver that already knows all but
//    d <= k of the inputs can recover them from any d of the k outputs.
//
// Two classic constructions are provided: Vandermonde matrices (rows are
// powers of distinct evaluation points) and Cauchy matrices. Both are MDS
// for any k <= n <= 255 over GF(2^8).

#include <cstddef>

#include "gf/matrix.h"

namespace thinair::gf::mds {

/// Maximum number of columns (distinct nonzero evaluation points) any of
/// these constructions supports over GF(2^8).
inline constexpr std::size_t kMaxColumns = 255;

/// k x n Vandermonde generator: entry (i, j) = alpha_j^i where
/// alpha_j = alpha^j are distinct nonzero points. Any k columns are
/// linearly independent. Requires k <= n <= 255.
[[nodiscard]] Matrix vandermonde(std::size_t k, std::size_t n);

/// Square n x n Vandermonde matrix (invertible); vandermonde(n, n).
[[nodiscard]] Matrix vandermonde_square(std::size_t n);

/// k x n Cauchy generator: entry (i, j) = 1 / (x_i + y_j) with all
/// x_i, y_j distinct. Every square submatrix (not just k x k) is
/// invertible. Requires k + n <= 256.
[[nodiscard]] Matrix cauchy(std::size_t k, std::size_t n);

/// Systematic form [I_k | P] of the Vandermonde code: the row space is
/// unchanged, so the any-k-columns property is preserved. Requires
/// k <= n <= 255.
[[nodiscard]] Matrix systematic(std::size_t k, std::size_t n);

/// Exhaustively verify that every k-column subset of g (k = g.rows()) is
/// invertible. Exponential in the worst case; intended for tests with
/// small dimensions.
[[nodiscard]] bool is_mds(const Matrix& g);

}  // namespace thinair::gf::mds
