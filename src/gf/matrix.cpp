#include "gf/matrix.h"

#include <ostream>
#include <stdexcept>

#include "gf/gather.h"
#include "gf/kernels.h"

namespace thinair::gf {

Matrix::Matrix(std::initializer_list<std::initializer_list<unsigned>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  owned_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_)
      throw std::invalid_argument("Matrix: ragged initializer");
    for (unsigned v : r) owned_.push_back(static_cast<std::uint8_t>(v));
  }
  data_ = owned_.data();
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.set(i, i, kOne);
  return m;
}

namespace {

// out += lhs * rhs: each output row IS a fused gather of rhs's rows (the
// "payloads") under the matching lhs row's coefficients, so the inner
// accumulation runs through gf::gather / dot_multi — the decode-direction
// shape (the analysis products H*G and C*G are tall-input, short-output).
// XOR accumulation over exact field products is order-independent, so the
// bytes match the axpy-per-coefficient formulation exactly.
void mul_into(const Matrix& lhs, const Matrix& rhs, Matrix& out) {
  std::vector<std::span<const std::uint8_t>> ins(rhs.rows());
  for (std::size_t k = 0; k < rhs.rows(); ++k) ins[k] = rhs.row(k);
  for (std::size_t i = 0; i < out.rows(); ++i)
    gather(lhs.row(i), ins, out.row(i));
}

}  // namespace

Matrix Matrix::mul(const Matrix& rhs) const {
  if (cols_ != rhs.rows_)
    throw std::invalid_argument("Matrix::mul: dimension mismatch");
  Matrix out(rows_, rhs.cols_);
  mul_into(*this, rhs, out);
  return out;
}

Matrix Matrix::mul(const Matrix& rhs, packet::PayloadArena& arena) const {
  if (cols_ != rhs.rows_)
    throw std::invalid_argument("Matrix::mul: dimension mismatch");
  Matrix out(rows_, rhs.cols_, arena);
  mul_into(*this, rhs, out);
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out.set(j, i, at(i, j));
  return out;
}

Matrix Matrix::vstack(const Matrix& below) const {
  if (empty()) return below;
  if (below.empty()) return *this;
  if (cols_ != below.cols_)
    throw std::invalid_argument("Matrix::vstack: column mismatch");
  Matrix out(rows_ + below.rows_, cols_);
  std::copy(data_, data_ + rows_ * cols_, out.data_);
  std::copy(below.data_, below.data_ + below.rows_ * below.cols_,
            out.data_ + rows_ * cols_);
  return out;
}

Matrix Matrix::hstack(const Matrix& right) const {
  if (rows_ != right.rows_)
    throw std::invalid_argument("Matrix::hstack: row mismatch");
  Matrix out(rows_, cols_ + right.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    auto dst = out.row(i);
    auto a = row(i);
    auto b = right.row(i);
    std::copy(a.begin(), a.end(), dst.begin());
    std::copy(b.begin(), b.end(),
              dst.begin() + static_cast<std::ptrdiff_t>(cols_));
  }
  return out;
}

Matrix Matrix::select_columns(std::span<const std::size_t> cols) const {
  Matrix out(rows_, cols.size());
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols.size(); ++j) {
      if (cols[j] >= cols_)
        throw std::out_of_range("Matrix::select_columns: index");
      out.set(i, j, at(i, cols[j]));
    }
  return out;
}

Matrix Matrix::select_rows(std::span<const std::size_t> rows) const {
  Matrix out(rows.size(), cols_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i] >= rows_) throw std::out_of_range("Matrix::select_rows: index");
    auto src = row(rows[i]);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  return out;
}

std::vector<std::size_t> Matrix::row_reduce() {
  std::vector<std::size_t> pivots;
  std::size_t r = 0;
  for (std::size_t c = 0; c < cols_ && r < rows_; ++c) {
    std::size_t pivot = r;
    while (pivot < rows_ && at(pivot, c).is_zero()) ++pivot;
    if (pivot == rows_) continue;
    if (pivot != r) {
      for (std::size_t j = 0; j < cols_; ++j) {
        const GF256 tmp = at(r, j);
        set(r, j, at(pivot, j));
        set(pivot, j, tmp);
      }
    }
    const GF256 inv = at(r, c).inv();
    mul_row(inv, row(r).data(), row(r).data(), cols_);
    // Eliminate column c from every other row, fused: the pivot row is
    // the shared input, batches of kMaxFusedRows rows the outputs.
    MadBatch batch(row(r).data(), cols_);
    for (std::size_t i = 0; i < rows_; ++i)
      if (i != r) batch.add(at(i, c).value(), row(i).data());
    batch.flush();
    pivots.push_back(c);
    ++r;
  }
  return pivots;
}

std::size_t Matrix::rank() const {
  Matrix tmp = *this;
  return tmp.row_reduce().size();
}

std::optional<Matrix> Matrix::inverse() const {
  if (rows_ != cols_) return std::nullopt;
  Matrix aug = hstack(identity(rows_));
  const auto pivots = aug.row_reduce();
  if (pivots.size() != rows_) return std::nullopt;
  for (std::size_t i = 0; i < rows_; ++i)
    if (pivots[i] != i) return std::nullopt;  // rank deficiency in left block
  Matrix out(rows_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < rows_; ++j) out.set(i, j, aug.at(i, cols_ + j));
  return out;
}

std::optional<Matrix> Matrix::solve(const Matrix& b) const {
  if (b.rows_ != rows_)
    throw std::invalid_argument("Matrix::solve: rhs row mismatch");
  Matrix aug = hstack(b);
  const auto pivots = aug.row_reduce();
  // Unique solution requires every column of *this* to be a pivot column,
  // and no pivot may fall in the augmented block (inconsistency).
  std::size_t lhs_pivots = 0;
  for (std::size_t p : pivots) {
    if (p < cols_)
      ++lhs_pivots;
    else
      return std::nullopt;  // 0 = nonzero row -> inconsistent
  }
  if (lhs_pivots != cols_) return std::nullopt;  // underdetermined
  Matrix x(cols_, b.cols_);
  for (std::size_t i = 0; i < cols_; ++i)
    for (std::size_t j = 0; j < b.cols_; ++j) x.set(i, j, aug.at(i, cols_ + j));
  return x;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  os << "[" << m.rows() << "x" << m.cols() << "]\n";
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j)
      os << static_cast<unsigned>(m.at(i, j).value())
         << (j + 1 == m.cols() ? "" : " ");
    os << "\n";
  }
  return os;
}

}  // namespace thinair::gf
