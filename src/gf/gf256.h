#pragma once
// GF(2^8) arithmetic.
//
// The protocol's linear combinations (y-, z- and s-packets, Sec. 3 of the
// paper) and the MDS constructions of the technical report [9] require a
// finite field large enough to index every packet in a round with a distinct
// evaluation point. GF(2^8) supports up to 255 distinct nonzero points and
// lets payload bytes act directly as field symbols.
//
// Representation: polynomial basis modulo the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the conventional Reed-Solomon choice;
// x (= 0x02) is a primitive element. Multiplication and inversion use
// compile-time generated log/exp tables.

#include <array>
#include <cstdint>
#include <iosfwd>

namespace thinair::gf {

namespace detail {

inline constexpr unsigned kPrimitivePoly = 0x11D;  // x^8+x^4+x^3+x^2+1
inline constexpr unsigned kGenerator = 0x02;

struct Tables {
  // exp_[i] = alpha^i for i in [0, 509]; doubled range avoids a modular
  // reduction in mul(). log_[v] = discrete log of v (log_[0] unused).
  std::array<std::uint8_t, 510> exp_{};
  std::array<std::uint8_t, 256> log_{};
};

consteval Tables make_tables() {
  Tables t{};
  unsigned v = 1;
  for (unsigned i = 0; i < 255; ++i) {
    t.exp_[i] = static_cast<std::uint8_t>(v);
    t.log_[v] = static_cast<std::uint8_t>(i);
    v <<= 1;
    if (v & 0x100) v ^= kPrimitivePoly;
  }
  for (unsigned i = 255; i < 510; ++i) t.exp_[i] = t.exp_[i - 255];
  t.log_[0] = 0;  // sentinel, never consulted for zero operands
  return t;
}

inline constexpr Tables kTables = make_tables();

}  // namespace detail

/// A GF(2^8) field element. Value type, trivially copyable, 1 byte.
///
/// Addition is bytewise XOR; multiplication is polynomial multiplication
/// modulo 0x11D. Division by zero is a precondition violation and asserts
/// in debug builds (returns 0 in release builds rather than invoking UB).
class GF256 {
 public:
  constexpr GF256() = default;
  explicit constexpr GF256(std::uint8_t v) : v_(v) {}

  /// alpha^i for the primitive element alpha = 0x02.
  static constexpr GF256 alpha_pow(unsigned i) {
    return GF256(detail::kTables.exp_[i % 255]);
  }

  [[nodiscard]] constexpr std::uint8_t value() const { return v_; }
  [[nodiscard]] constexpr bool is_zero() const { return v_ == 0; }

  friend constexpr GF256 operator+(GF256 a, GF256 b) {
    return GF256(static_cast<std::uint8_t>(a.v_ ^ b.v_));
  }
  friend constexpr GF256 operator-(GF256 a, GF256 b) { return a + b; }

  friend constexpr GF256 operator*(GF256 a, GF256 b) {
    if (a.v_ == 0 || b.v_ == 0) return GF256(0);
    const unsigned s = detail::kTables.log_[a.v_] + detail::kTables.log_[b.v_];
    return GF256(detail::kTables.exp_[s]);
  }

  /// Multiplicative inverse. Precondition: *this != 0.
  [[nodiscard]] constexpr GF256 inv() const {
    if (v_ == 0) return GF256(0);  // precondition violation; keep total
    return GF256(detail::kTables.exp_[255 - detail::kTables.log_[v_]]);
  }

  friend constexpr GF256 operator/(GF256 a, GF256 b) { return a * b.inv(); }

  /// this^e with e >= 0 (0^0 == 1 by convention).
  [[nodiscard]] constexpr GF256 pow(unsigned e) const {
    if (e == 0) return GF256(1);
    if (v_ == 0) return GF256(0);
    const unsigned l = (detail::kTables.log_[v_] * (e % 255u)) % 255u;
    return GF256(detail::kTables.exp_[l]);
  }

  constexpr GF256& operator+=(GF256 o) { return *this = *this + o; }
  constexpr GF256& operator-=(GF256 o) { return *this = *this + o; }
  constexpr GF256& operator*=(GF256 o) { return *this = *this * o; }
  constexpr GF256& operator/=(GF256 o) { return *this = *this / o; }

  friend constexpr bool operator==(GF256, GF256) = default;

 private:
  std::uint8_t v_ = 0;
};

inline constexpr GF256 kZero{0};
inline constexpr GF256 kOne{1};

std::ostream& operator<<(std::ostream& os, GF256 v);

/// y[i] += c * x[i] over a span of raw bytes; the workhorse of packet
/// combining. Lengths must match.
void axpy(GF256 c, const std::uint8_t* x, std::uint8_t* y, std::size_t n);

/// y[i] = c * y[i].
void scale(GF256 c, std::uint8_t* y, std::size_t n);

}  // namespace thinair::gf
