#include "gf/gf2_64.h"

#include <ostream>

namespace thinair::gf {

std::ostream& operator<<(std::ostream& os, GF64 v) {
  return os << "G" << v.value();
}

}  // namespace thinair::gf
