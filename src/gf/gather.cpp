#include "gf/gather.h"

#include <stdexcept>

#include "gf/kernels.h"

namespace thinair::gf {

void gather(std::span<const std::uint8_t> coeffs,
            std::span<const std::span<const std::uint8_t>> inputs,
            std::span<std::uint8_t> out) {
  if (coeffs.size() != inputs.size())
    throw std::invalid_argument("gf::gather: coeff count != input count");
  DotBatch batch(out.data(), out.size());
  for (std::size_t j = 0; j < coeffs.size(); ++j) {
    if (coeffs[j] == 0) continue;  // dead inputs may be empty spans
    if (inputs[j].size() != out.size())
      throw std::invalid_argument("gf::gather: input size mismatch");
    batch.add(coeffs[j], inputs[j].data());
  }
  batch.flush();
}

std::span<const std::uint8_t> gather(
    std::span<const std::uint8_t> coeffs,
    std::span<const std::span<const std::uint8_t>> inputs,
    std::size_t payload_size, packet::PayloadArena& arena) {
  if (payload_size == 0)
    throw std::invalid_argument("gf::gather: payload_size == 0");
  const std::span<std::uint8_t> out = arena.alloc(payload_size);
  gather(coeffs, inputs, out);
  return out;
}

}  // namespace thinair::gf
