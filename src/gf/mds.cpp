#include "gf/mds.h"

#include <stdexcept>
#include <vector>

namespace thinair::gf::mds {

Matrix vandermonde(std::size_t k, std::size_t n) {
  if (k > n) throw std::invalid_argument("mds::vandermonde: k > n");
  if (n > kMaxColumns) throw std::invalid_argument("mds::vandermonde: n > 255");
  Matrix g(k, n);
  for (std::size_t j = 0; j < n; ++j) {
    const GF256 x = GF256::alpha_pow(static_cast<unsigned>(j));
    GF256 p = kOne;
    for (std::size_t i = 0; i < k; ++i) {
      g.set(i, j, p);
      p = p * x;
    }
  }
  return g;
}

Matrix vandermonde_square(std::size_t n) { return vandermonde(n, n); }

Matrix cauchy(std::size_t k, std::size_t n) {
  if (k + n > 256) throw std::invalid_argument("mds::cauchy: k + n > 256");
  Matrix g(k, n);
  // x_i = i, y_j = k + j as field elements: disjoint by construction.
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      const GF256 d = GF256(static_cast<std::uint8_t>(i)) +
                      GF256(static_cast<std::uint8_t>(k + j));
      g.set(i, j, d.inv());
    }
  return g;
}

Matrix systematic(std::size_t k, std::size_t n) {
  Matrix g = vandermonde(k, n);
  const auto pivots = g.row_reduce();
  if (pivots.size() != k)
    throw std::logic_error("mds::systematic: unexpected rank deficiency");
  return g;
}

namespace {

bool is_mds_rec(const Matrix& g, std::vector<std::size_t>& picked,
                std::size_t next) {
  const std::size_t k = g.rows();
  if (picked.size() == k) {
    return g.select_columns(picked).rank() == k;
  }
  const std::size_t remaining = k - picked.size();
  for (std::size_t c = next; c + remaining <= g.cols(); ++c) {
    picked.push_back(c);
    if (!is_mds_rec(g, picked, c + 1)) return false;
    picked.pop_back();
  }
  return true;
}

}  // namespace

bool is_mds(const Matrix& g) {
  std::vector<std::size_t> picked;
  picked.reserve(g.rows());
  return is_mds_rec(g, picked, 0);
}

}  // namespace thinair::gf::mds
