#pragma once
// Dense matrices over GF(2^8) with the linear algebra the protocol needs:
// multiplication (packet combining), Gaussian elimination (decoding at the
// terminals), rank (secrecy/equivocation analysis) and inversion (MDS
// sub-matrix checks).
//
// Storage is either heap-owned (the default) or carved from a
// packet::PayloadArena: the per-round coefficient matrices of the encode
// and analysis paths live in the runtime's per-worker arenas, so building
// and row-reducing them allocates nothing. An arena-backed matrix must not
// outlive a reset()/rewind() past its span; copying one (copy ctor,
// assignment, or any derived-matrix method) always yields a heap-owning
// result, so only the original aliases the arena.

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "gf/gf256.h"
#include "packet/arena.h"

namespace thinair::gf {

/// Row-major dense matrix over GF(2^8).
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), owned_(rows * cols, std::uint8_t{0}),
        data_(owned_.data()) {}

  /// Arena-backed: rows*cols zeroed bytes bump-allocated from `arena`.
  Matrix(std::size_t rows, std::size_t cols, packet::PayloadArena& arena)
      : rows_(rows), cols_(cols), data_(arena.alloc(rows * cols).data()) {}

  Matrix(const Matrix& o)
      : rows_(o.rows_), cols_(o.cols_),
        owned_(o.data_, o.data_ + o.rows_ * o.cols_), data_(owned_.data()) {}
  Matrix& operator=(const Matrix& o) {
    if (this != &o) *this = Matrix(o);  // copy then move
    return *this;
  }
  Matrix(Matrix&& o) noexcept
      : rows_(o.rows_), cols_(o.cols_), owned_(std::move(o.owned_)),
        data_(owned_.empty() ? o.data_ : owned_.data()) {
    o.rows_ = o.cols_ = 0;
    o.data_ = nullptr;
  }
  Matrix& operator=(Matrix&& o) noexcept {
    if (this != &o) {
      rows_ = o.rows_;
      cols_ = o.cols_;
      owned_ = std::move(o.owned_);
      data_ = owned_.empty() ? o.data_ : owned_.data();
      o.rows_ = o.cols_ = 0;
      o.data_ = nullptr;
    }
    return *this;
  }

  /// Build from nested initializer lists of raw byte values; all inner
  /// lists must have equal length.
  Matrix(std::initializer_list<std::initializer_list<unsigned>> rows);

  static Matrix identity(std::size_t n);
  static Matrix zero(std::size_t rows, std::size_t cols) {
    return Matrix(rows, cols);
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }

  [[nodiscard]] GF256 at(std::size_t r, std::size_t c) const {
    return GF256(data_[r * cols_ + c]);
  }
  void set(std::size_t r, std::size_t c, GF256 v) {
    data_[r * cols_ + c] = v.value();
  }

  [[nodiscard]] std::span<const std::uint8_t> row(std::size_t r) const {
    return {data_ + r * cols_, cols_};
  }
  [[nodiscard]] std::span<std::uint8_t> row(std::size_t r) {
    return {data_ + r * cols_, cols_};
  }

  /// C = (*this) * rhs. Requires cols() == rhs.rows(). Runs through the
  /// fused mad_multi kernels (each rhs row streamed once per block of
  /// kMaxFusedRows output rows).
  [[nodiscard]] Matrix mul(const Matrix& rhs) const;
  /// As mul(), with the result carved from `arena`.
  [[nodiscard]] Matrix mul(const Matrix& rhs, packet::PayloadArena& arena) const;

  [[nodiscard]] Matrix transpose() const;

  /// Rows of `below` appended under this matrix (column counts must match).
  [[nodiscard]] Matrix vstack(const Matrix& below) const;
  /// Columns of `right` appended to the right (row counts must match).
  [[nodiscard]] Matrix hstack(const Matrix& right) const;

  /// New matrix keeping only the given columns, in the given order.
  [[nodiscard]] Matrix select_columns(std::span<const std::size_t> cols) const;
  /// New matrix keeping only the given rows, in the given order.
  [[nodiscard]] Matrix select_rows(std::span<const std::size_t> rows) const;

  /// In-place reduction to reduced row-echelon form; returns pivot columns.
  std::vector<std::size_t> row_reduce();

  [[nodiscard]] std::size_t rank() const;
  [[nodiscard]] bool invertible() const {
    return rows_ == cols_ && rank() == rows_;
  }

  /// Inverse; std::nullopt when singular or non-square.
  [[nodiscard]] std::optional<Matrix> inverse() const;

  /// Solve (*this) * X = B for X. Returns std::nullopt when inconsistent or
  /// underdetermined (the solution must be unique).
  [[nodiscard]] std::optional<Matrix> solve(const Matrix& b) const;

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ &&
           std::equal(a.data_, a.data_ + a.rows_ * a.cols_, b.data_);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint8_t> owned_;  // empty when arena-backed
  std::uint8_t* data_ = nullptr;     // owned_.data() or the arena span
};

std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace thinair::gf
