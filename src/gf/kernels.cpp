#include "gf/kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#if defined(__GNUC__) || defined(__clang__)
#define THINAIR_GF_X86_SIMD 1
#include <immintrin.h>
#endif
#endif

namespace thinair::gf {

namespace {

using detail::kTables;

// ------------------------------------------------------------- scalar
// The original byte-at-a-time log/exp loops (moved here from gf256.cpp).
// Baseline for the differential tests and the portable fallback for the
// word kernels' tails.

void scalar_axpy(std::uint8_t c, const std::uint8_t* x, std::uint8_t* y,
                 std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < n; ++i) y[i] ^= x[i];
    return;
  }
  const unsigned lc = kTables.log_[c];
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t xv = x[i];
    if (xv != 0) y[i] ^= kTables.exp_[lc + kTables.log_[xv]];
  }
}

void scalar_mul_row(std::uint8_t c, const std::uint8_t* x, std::uint8_t* y,
                    std::size_t n) {
  if (c == 0) {
    std::memset(y, 0, n);
    return;
  }
  if (c == 1) {
    if (x != y) std::memcpy(y, x, n);
    return;
  }
  const unsigned lc = kTables.log_[c];
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t xv = x[i];
    y[i] = xv == 0 ? std::uint8_t{0} : kTables.exp_[lc + kTables.log_[xv]];
  }
}

void scalar_xor_into(const std::uint8_t* x, std::uint8_t* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] ^= x[i];
}

// ----------------------------------------------------------- portable
// 64-bit SWAR: eight field elements per machine word, bit-sliced over the
// *input* bits. Multiplication by c is GF(2)-linear, so
//   c * x = XOR over set bits k of x of (c * alpha^k)
// and the eight per-bit contributions c * alpha^k are computed once per
// call with a scalar xtime ladder (0x1D is the low byte of the primitive
// polynomial 0x11D). Per word the loop is branch-free: isolate bit k of
// every lane ((v >> k) & 0x01...), multiply by the contribution byte
// (0x01 * t = t, no cross-lane carries), accumulate with XOR.

struct BitTable {
  std::uint8_t t[8];  // t[k] = c * alpha^k
};

inline BitTable make_bit_table(std::uint8_t c) {
  BitTable bt;
  std::uint8_t t = c;
  for (int k = 0; k < 8; ++k) {
    bt.t[k] = t;
    t = static_cast<std::uint8_t>((t << 1) ^ ((t & 0x80) != 0 ? 0x1D : 0));
  }
  return bt;
}

inline std::uint64_t mul64(std::uint64_t v, const BitTable& bt) {
  constexpr std::uint64_t kLsb = 0x0101010101010101ull;
  std::uint64_t acc = 0;
  for (int k = 0; k < 8; ++k) acc ^= ((v >> k) & kLsb) * bt.t[k];
  return acc;
}

inline std::uint64_t load64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void store64(std::uint8_t* p, std::uint64_t v) {
  std::memcpy(p, &v, sizeof(v));
}

void portable_axpy(std::uint8_t c, const std::uint8_t* x, std::uint8_t* y,
                   std::size_t n) {
  if (c == 0) return;
  std::size_t i = 0;
  if (c == 1) {
    for (; i + 8 <= n; i += 8) store64(y + i, load64(y + i) ^ load64(x + i));
  } else {
    const BitTable bt = make_bit_table(c);
    for (; i + 8 <= n; i += 8)
      store64(y + i, load64(y + i) ^ mul64(load64(x + i), bt));
  }
  scalar_axpy(c, x + i, y + i, n - i);
}

void portable_mul_row(std::uint8_t c, const std::uint8_t* x, std::uint8_t* y,
                      std::size_t n) {
  if (c == 0) {
    std::memset(y, 0, n);
    return;
  }
  if (c == 1) {
    if (x != y) std::memmove(y, x, n);
    return;
  }
  const BitTable bt = make_bit_table(c);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) store64(y + i, mul64(load64(x + i), bt));
  scalar_mul_row(c, x + i, y + i, n - i);
}

void portable_xor_into(const std::uint8_t* x, std::uint8_t* y, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) store64(y + i, load64(y + i) ^ load64(x + i));
  for (; i < n; ++i) y[i] ^= x[i];
}

constexpr Kernel kScalar{"scalar", scalar_axpy, scalar_mul_row,
                         scalar_xor_into};
constexpr Kernel kPortable{"portable", portable_axpy, portable_mul_row,
                           portable_xor_into};

// --------------------------------------------------------------- SIMD
// ISA-L-style split-nibble tables: for every constant c two 16-entry
// tables give c * low_nibble and c * (high_nibble << 4); the product of a
// full byte is their XOR (multiplication by c is linear over GF(2)).
// `pshufb` performs 16 (SSSE3) or 2 x 16 (AVX2) of those lookups per
// instruction.

#ifdef THINAIR_GF_X86_SIMD

struct NibbleTables {
  alignas(16) std::uint8_t lo[256][16];
  alignas(16) std::uint8_t hi[256][16];
};

consteval NibbleTables make_nibble_tables() {
  NibbleTables t{};
  for (unsigned c = 0; c < 256; ++c)
    for (unsigned i = 0; i < 16; ++i) {
      t.lo[c][i] = (GF256(static_cast<std::uint8_t>(c)) *
                    GF256(static_cast<std::uint8_t>(i)))
                       .value();
      t.hi[c][i] = (GF256(static_cast<std::uint8_t>(c)) *
                    GF256(static_cast<std::uint8_t>(i << 4)))
                       .value();
    }
  return t;
}

constexpr NibbleTables kNibble = make_nibble_tables();

__attribute__((target("ssse3"))) inline __m128i mul16(__m128i v, __m128i lo,
                                                      __m128i hi,
                                                      __m128i mask) {
  const __m128i l = _mm_shuffle_epi8(lo, _mm_and_si128(v, mask));
  const __m128i h =
      _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(v, 4), mask));
  return _mm_xor_si128(l, h);
}

__attribute__((target("ssse3"))) void ssse3_axpy(std::uint8_t c,
                                                 const std::uint8_t* x,
                                                 std::uint8_t* y,
                                                 std::size_t n) {
  if (c == 0) return;
  const __m128i lo =
      _mm_load_si128(reinterpret_cast<const __m128i*>(kNibble.lo[c]));
  const __m128i hi =
      _mm_load_si128(reinterpret_cast<const __m128i*>(kNibble.hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i));
    const __m128i o = _mm_loadu_si128(reinterpret_cast<const __m128i*>(y + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(y + i),
                     _mm_xor_si128(o, mul16(v, lo, hi, mask)));
  }
  scalar_axpy(c, x + i, y + i, n - i);
}

__attribute__((target("ssse3"))) void ssse3_mul_row(std::uint8_t c,
                                                    const std::uint8_t* x,
                                                    std::uint8_t* y,
                                                    std::size_t n) {
  if (c == 0) {
    std::memset(y, 0, n);
    return;
  }
  const __m128i lo =
      _mm_load_si128(reinterpret_cast<const __m128i*>(kNibble.lo[c]));
  const __m128i hi =
      _mm_load_si128(reinterpret_cast<const __m128i*>(kNibble.hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(y + i),
                     mul16(v, lo, hi, mask));
  }
  scalar_mul_row(c, x + i, y + i, n - i);
}

__attribute__((target("ssse3"))) void ssse3_xor_into(const std::uint8_t* x,
                                                     std::uint8_t* y,
                                                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i));
    const __m128i o = _mm_loadu_si128(reinterpret_cast<const __m128i*>(y + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(y + i), _mm_xor_si128(o, v));
  }
  portable_xor_into(x + i, y + i, n - i);
}

__attribute__((target("avx2"))) inline __m256i mul32(__m256i v, __m256i lo,
                                                     __m256i hi,
                                                     __m256i mask) {
  const __m256i l = _mm256_shuffle_epi8(lo, _mm256_and_si256(v, mask));
  const __m256i h = _mm256_shuffle_epi8(
      hi, _mm256_and_si256(_mm256_srli_epi64(v, 4), mask));
  return _mm256_xor_si256(l, h);
}

__attribute__((target("avx2"))) void avx2_axpy(std::uint8_t c,
                                               const std::uint8_t* x,
                                               std::uint8_t* y,
                                               std::size_t n) {
  if (c == 0) return;
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(kNibble.lo[c])));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(kNibble.hi[c])));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i o =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + i),
                        _mm256_xor_si256(o, mul32(v, lo, hi, mask)));
  }
  ssse3_axpy(c, x + i, y + i, n - i);
}

__attribute__((target("avx2"))) void avx2_mul_row(std::uint8_t c,
                                                  const std::uint8_t* x,
                                                  std::uint8_t* y,
                                                  std::size_t n) {
  if (c == 0) {
    std::memset(y, 0, n);
    return;
  }
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(kNibble.lo[c])));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(kNibble.hi[c])));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + i),
                        mul32(v, lo, hi, mask));
  }
  ssse3_mul_row(c, x + i, y + i, n - i);
}

__attribute__((target("avx2"))) void avx2_xor_into(const std::uint8_t* x,
                                                   std::uint8_t* y,
                                                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i o =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + i),
                        _mm256_xor_si256(o, v));
  }
  ssse3_xor_into(x + i, y + i, n - i);
}

constexpr Kernel kSsse3{"ssse3", ssse3_axpy, ssse3_mul_row, ssse3_xor_into};
constexpr Kernel kAvx2{"avx2", avx2_axpy, avx2_mul_row, avx2_xor_into};

bool cpu_has_ssse3() { return __builtin_cpu_supports("ssse3") != 0; }
bool cpu_has_avx2() { return __builtin_cpu_supports("avx2") != 0; }

#endif  // THINAIR_GF_X86_SIMD

// ----------------------------------------------------------- dispatch

const std::vector<const Kernel*>& kernel_list() {
  static const std::vector<const Kernel*> kernels = [] {
    std::vector<const Kernel*> v{&kScalar, &kPortable};
#ifdef THINAIR_GF_X86_SIMD
    if (cpu_has_ssse3()) v.push_back(&kSsse3);
    if (cpu_has_avx2()) v.push_back(&kAvx2);
#endif
    return v;
  }();
  return kernels;
}

const Kernel* find_kernel(std::string_view name) {
  for (const Kernel* k : kernel_list())
    if (name == k->name) return k;
  return nullptr;
}

const Kernel* best_kernel() {
  const Kernel* s = simd_kernel();
  return s != nullptr ? s : &kPortable;
}

const Kernel* resolve_default() {
  if (const char* env = std::getenv("THINAIR_GF_KERNEL");
      env != nullptr && *env != '\0' && std::string_view(env) != "auto") {
    if (const Kernel* k = find_kernel(env)) return k;
    std::fprintf(stderr,
                 "thinair: THINAIR_GF_KERNEL=%s is unknown or unsupported "
                 "on this CPU; using %s\n",
                 env, best_kernel()->name);
  }
  return best_kernel();
}

std::atomic<const Kernel*>& active_slot() {
  static std::atomic<const Kernel*> slot{resolve_default()};
  return slot;
}

}  // namespace

const Kernel& scalar_kernel() { return kScalar; }
const Kernel& portable_kernel() { return kPortable; }

const Kernel* simd_kernel() {
#ifdef THINAIR_GF_X86_SIMD
  if (cpu_has_avx2()) return &kAvx2;
  if (cpu_has_ssse3()) return &kSsse3;
#endif
  return nullptr;
}

std::span<const Kernel* const> all_kernels() { return kernel_list(); }

const Kernel& active_kernel() {
  return *active_slot().load(std::memory_order_relaxed);
}

bool set_active_kernel(std::string_view name) {
  const Kernel* k = name == "auto" ? best_kernel() : find_kernel(name);
  if (k == nullptr) return false;
  active_slot().store(k, std::memory_order_relaxed);
  return true;
}

}  // namespace thinair::gf
