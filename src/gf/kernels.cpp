#include "gf/kernels.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#if defined(__GNUC__) || defined(__clang__)
#define THINAIR_GF_X86_SIMD 1
#include <immintrin.h>
#endif
#endif

namespace thinair::gf {

namespace {

using detail::kTables;

// ------------------------------------------------------------- scalar
// The original byte-at-a-time log/exp loops (moved here from gf256.cpp).
// Baseline for the differential tests and the portable fallback for the
// word kernels' tails.

void scalar_axpy(std::uint8_t c, const std::uint8_t* x, std::uint8_t* y,
                 std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < n; ++i) y[i] ^= x[i];
    return;
  }
  const unsigned lc = kTables.log_[c];
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t xv = x[i];
    if (xv != 0) y[i] ^= kTables.exp_[lc + kTables.log_[xv]];
  }
}

void scalar_mul_row(std::uint8_t c, const std::uint8_t* x, std::uint8_t* y,
                    std::size_t n) {
  if (c == 0) {
    std::memset(y, 0, n);
    return;
  }
  if (c == 1) {
    if (x != y) std::memcpy(y, x, n);
    return;
  }
  const unsigned lc = kTables.log_[c];
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t xv = x[i];
    y[i] = xv == 0 ? std::uint8_t{0} : kTables.exp_[lc + kTables.log_[xv]];
  }
}

void scalar_xor_into(const std::uint8_t* x, std::uint8_t* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] ^= x[i];
}

// The reference semantics of mad_multi: literally k repeated axpy passes.
// Every other kernel must be byte-equivalent to this.
void scalar_mad_multi(const std::uint8_t* c, std::size_t k,
                      const std::uint8_t* x, std::uint8_t* const* ys,
                      std::size_t n) {
  for (std::size_t r = 0; r < k; ++r) scalar_axpy(c[r], x, ys[r], n);
}

// The reference semantics of dot_multi: k repeated axpy passes into the
// shared output. Every other kernel must be byte-equivalent to this.
void scalar_dot_multi(const std::uint8_t* c, std::size_t k,
                      const std::uint8_t* const* xs, std::uint8_t* y,
                      std::size_t n) {
  for (std::size_t r = 0; r < k; ++r) scalar_axpy(c[r], xs[r], y, n);
}

// Drops c == 0 rows from a fused block; returns the compacted row count.
// The word kernels pay per-row table setup and per-word work, so skipping
// dead rows up front is worth the pass.
std::size_t compact_rows(const std::uint8_t* c, std::size_t k,
                         std::uint8_t* const* ys, std::uint8_t* cc,
                         std::uint8_t** yr) {
  std::size_t m = 0;
  for (std::size_t r = 0; r < k; ++r) {
    if (c[r] == 0) continue;
    cc[m] = c[r];
    yr[m] = ys[r];
    ++m;
  }
  return m;
}

// Gather-direction twin of compact_rows over the (const) input pointers.
std::size_t compact_inputs(const std::uint8_t* c, std::size_t k,
                           const std::uint8_t* const* xs, std::uint8_t* cc,
                           const std::uint8_t** xr) {
  std::size_t m = 0;
  for (std::size_t r = 0; r < k; ++r) {
    if (c[r] == 0) continue;
    cc[m] = c[r];
    xr[m] = xs[r];
    ++m;
  }
  return m;
}

// ----------------------------------------------------------- portable
// 64-bit SWAR: eight field elements per machine word, bit-sliced over the
// *input* bits. Multiplication by c is GF(2)-linear, so
//   c * x = XOR over set bits k of x of (c * alpha^k)
// and the eight per-bit contributions c * alpha^k are computed once per
// call with a scalar xtime ladder (0x1D is the low byte of the primitive
// polynomial 0x11D). Per word the loop is branch-free: isolate bit k of
// every lane ((v >> k) & 0x01...), multiply by the contribution byte
// (0x01 * t = t, no cross-lane carries), accumulate with XOR.

struct BitTable {
  std::uint8_t t[8];  // t[k] = c * alpha^k
};

inline BitTable make_bit_table(std::uint8_t c) {
  BitTable bt;
  std::uint8_t t = c;
  for (int k = 0; k < 8; ++k) {
    bt.t[k] = t;
    t = static_cast<std::uint8_t>((t << 1) ^ ((t & 0x80) != 0 ? 0x1D : 0));
  }
  return bt;
}

inline std::uint64_t mul64(std::uint64_t v, const BitTable& bt) {
  constexpr std::uint64_t kLsb = 0x0101010101010101ull;
  std::uint64_t acc = 0;
  for (int k = 0; k < 8; ++k) acc ^= ((v >> k) & kLsb) * bt.t[k];
  return acc;
}

inline std::uint64_t load64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void store64(std::uint8_t* p, std::uint64_t v) {
  std::memcpy(p, &v, sizeof(v));
}

void portable_axpy(std::uint8_t c, const std::uint8_t* x, std::uint8_t* y,
                   std::size_t n) {
  if (c == 0) return;
  std::size_t i = 0;
  if (c == 1) {
    for (; i + 8 <= n; i += 8) store64(y + i, load64(y + i) ^ load64(x + i));
  } else {
    const BitTable bt = make_bit_table(c);
    for (; i + 8 <= n; i += 8)
      store64(y + i, load64(y + i) ^ mul64(load64(x + i), bt));
  }
  scalar_axpy(c, x + i, y + i, n - i);
}

void portable_mul_row(std::uint8_t c, const std::uint8_t* x, std::uint8_t* y,
                      std::size_t n) {
  if (c == 0) {
    std::memset(y, 0, n);
    return;
  }
  if (c == 1) {
    if (x != y) std::memmove(y, x, n);
    return;
  }
  const BitTable bt = make_bit_table(c);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) store64(y + i, mul64(load64(x + i), bt));
  scalar_mul_row(c, x + i, y + i, n - i);
}

void portable_xor_into(const std::uint8_t* x, std::uint8_t* y, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) store64(y + i, load64(y + i) ^ load64(x + i));
  for (; i < n; ++i) y[i] ^= x[i];
}

// Fused SWAR accumulate: one bit table per live row, each input word
// loaded once and scattered into every output row.
void portable_mad_multi(const std::uint8_t* c, std::size_t k,
                        const std::uint8_t* x, std::uint8_t* const* ys,
                        std::size_t n) {
  for (std::size_t r0 = 0; r0 < k; r0 += kMaxFusedRows) {
    const std::size_t kb = std::min(kMaxFusedRows, k - r0);
    std::uint8_t cc[kMaxFusedRows];
    std::uint8_t* yr[kMaxFusedRows];
    const std::size_t m = compact_rows(c + r0, kb, ys + r0, cc, yr);
    if (m == 0) continue;
    BitTable bt[kMaxFusedRows];
    for (std::size_t r = 0; r < m; ++r) bt[r] = make_bit_table(cc[r]);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const std::uint64_t v = load64(x + i);
      for (std::size_t r = 0; r < m; ++r)
        store64(yr[r] + i, load64(yr[r] + i) ^ mul64(v, bt[r]));
    }
    for (std::size_t r = 0; r < m; ++r)
      scalar_axpy(cc[r], x + i, yr[r] + i, n - i);
  }
}

// Fused SWAR gather: one bit table per live input, the accumulator word
// loaded and stored once per kMaxFusedRows inputs.
void portable_dot_multi(const std::uint8_t* c, std::size_t k,
                        const std::uint8_t* const* xs, std::uint8_t* y,
                        std::size_t n) {
  for (std::size_t r0 = 0; r0 < k; r0 += kMaxFusedRows) {
    const std::size_t kb = std::min(kMaxFusedRows, k - r0);
    std::uint8_t cc[kMaxFusedRows];
    const std::uint8_t* xr[kMaxFusedRows];
    const std::size_t m = compact_inputs(c + r0, kb, xs + r0, cc, xr);
    if (m == 0) continue;
    BitTable bt[kMaxFusedRows];
    for (std::size_t r = 0; r < m; ++r) bt[r] = make_bit_table(cc[r]);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      std::uint64_t acc = load64(y + i);
      for (std::size_t r = 0; r < m; ++r)
        acc ^= mul64(load64(xr[r] + i), bt[r]);
      store64(y + i, acc);
    }
    for (std::size_t r = 0; r < m; ++r)
      scalar_axpy(cc[r], xr[r] + i, y + i, n - i);
  }
}

constexpr Kernel kScalar{"scalar", scalar_axpy, scalar_mul_row,
                         scalar_xor_into, scalar_mad_multi,
                         scalar_dot_multi};
constexpr Kernel kPortable{"portable", portable_axpy, portable_mul_row,
                           portable_xor_into, portable_mad_multi,
                           portable_dot_multi};

// --------------------------------------------------------------- SIMD
// ISA-L-style split-nibble tables: for every constant c two 16-entry
// tables give c * low_nibble and c * (high_nibble << 4); the product of a
// full byte is their XOR (multiplication by c is linear over GF(2)).
// `pshufb` performs 16 (SSSE3) or 2 x 16 (AVX2) of those lookups per
// instruction.

#ifdef THINAIR_GF_X86_SIMD

struct NibbleTables {
  alignas(16) std::uint8_t lo[256][16];
  alignas(16) std::uint8_t hi[256][16];
};

consteval NibbleTables make_nibble_tables() {
  NibbleTables t{};
  for (unsigned c = 0; c < 256; ++c)
    for (unsigned i = 0; i < 16; ++i) {
      t.lo[c][i] = (GF256(static_cast<std::uint8_t>(c)) *
                    GF256(static_cast<std::uint8_t>(i)))
                       .value();
      t.hi[c][i] = (GF256(static_cast<std::uint8_t>(c)) *
                    GF256(static_cast<std::uint8_t>(i << 4)))
                       .value();
    }
  return t;
}

constexpr NibbleTables kNibble = make_nibble_tables();

__attribute__((target("ssse3"))) inline __m128i mul16(__m128i v, __m128i lo,
                                                      __m128i hi,
                                                      __m128i mask) {
  const __m128i l = _mm_shuffle_epi8(lo, _mm_and_si128(v, mask));
  const __m128i h =
      _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(v, 4), mask));
  return _mm_xor_si128(l, h);
}

__attribute__((target("ssse3"))) void ssse3_axpy(std::uint8_t c,
                                                 const std::uint8_t* x,
                                                 std::uint8_t* y,
                                                 std::size_t n) {
  if (c == 0) return;
  const __m128i lo =
      _mm_load_si128(reinterpret_cast<const __m128i*>(kNibble.lo[c]));
  const __m128i hi =
      _mm_load_si128(reinterpret_cast<const __m128i*>(kNibble.hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i));
    const __m128i o = _mm_loadu_si128(reinterpret_cast<const __m128i*>(y + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(y + i),
                     _mm_xor_si128(o, mul16(v, lo, hi, mask)));
  }
  scalar_axpy(c, x + i, y + i, n - i);
}

__attribute__((target("ssse3"))) void ssse3_mul_row(std::uint8_t c,
                                                    const std::uint8_t* x,
                                                    std::uint8_t* y,
                                                    std::size_t n) {
  if (c == 0) {
    std::memset(y, 0, n);
    return;
  }
  const __m128i lo =
      _mm_load_si128(reinterpret_cast<const __m128i*>(kNibble.lo[c]));
  const __m128i hi =
      _mm_load_si128(reinterpret_cast<const __m128i*>(kNibble.hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(y + i),
                     mul16(v, lo, hi, mask));
  }
  scalar_mul_row(c, x + i, y + i, n - i);
}

__attribute__((target("ssse3"))) void ssse3_xor_into(const std::uint8_t* x,
                                                     std::uint8_t* y,
                                                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i));
    const __m128i o = _mm_loadu_si128(reinterpret_cast<const __m128i*>(y + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(y + i), _mm_xor_si128(o, v));
  }
  portable_xor_into(x + i, y + i, n - i);
}

__attribute__((target("avx2"))) inline __m256i mul32(__m256i v, __m256i lo,
                                                     __m256i hi,
                                                     __m256i mask) {
  const __m256i l = _mm256_shuffle_epi8(lo, _mm256_and_si256(v, mask));
  const __m256i h = _mm256_shuffle_epi8(
      hi, _mm256_and_si256(_mm256_srli_epi64(v, 4), mask));
  return _mm256_xor_si256(l, h);
}

__attribute__((target("avx2"))) void avx2_axpy(std::uint8_t c,
                                               const std::uint8_t* x,
                                               std::uint8_t* y,
                                               std::size_t n) {
  if (c == 0) return;
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(kNibble.lo[c])));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(kNibble.hi[c])));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i o =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + i),
                        _mm256_xor_si256(o, mul32(v, lo, hi, mask)));
  }
  ssse3_axpy(c, x + i, y + i, n - i);
}

__attribute__((target("avx2"))) void avx2_mul_row(std::uint8_t c,
                                                  const std::uint8_t* x,
                                                  std::uint8_t* y,
                                                  std::size_t n) {
  if (c == 0) {
    std::memset(y, 0, n);
    return;
  }
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(kNibble.lo[c])));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(kNibble.hi[c])));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + i),
                        mul32(v, lo, hi, mask));
  }
  ssse3_mul_row(c, x + i, y + i, n - i);
}

__attribute__((target("avx2"))) void avx2_xor_into(const std::uint8_t* x,
                                                   std::uint8_t* y,
                                                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i o =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + i),
                        _mm256_xor_si256(o, v));
  }
  ssse3_xor_into(x + i, y + i, n - i);
}

// Fused split-nibble accumulate. The live-row count is a template
// parameter so the per-row lo/hi tables become register-resident locals
// (fully for M <= 4, with modest spilling at M == 8); the runtime wrapper
// compacts away zero rows and switches over the count. Work shared per
// input vector: the x load and the two nibble extractions. Work per row:
// two pshufb, two xor and the y load/store — the structure of ISA-L's
// gf_Nvect_mad family.

template <std::size_t M>
__attribute__((target("ssse3"))) void ssse3_mad_rows(const std::uint8_t* cc,
                                                     const std::uint8_t* x,
                                                     std::uint8_t* const* yr,
                                                     std::size_t n) {
  __m128i lo[M], hi[M];
  for (std::size_t r = 0; r < M; ++r) {
    lo[r] =
        _mm_load_si128(reinterpret_cast<const __m128i*>(kNibble.lo[cc[r]]));
    hi[r] =
        _mm_load_si128(reinterpret_cast<const __m128i*>(kNibble.hi[cc[r]]));
  }
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i));
    const __m128i vl = _mm_and_si128(v, mask);
    const __m128i vh = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
    for (std::size_t r = 0; r < M; ++r) {
      const __m128i o =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(yr[r] + i));
      const __m128i p = _mm_xor_si128(_mm_shuffle_epi8(lo[r], vl),
                                      _mm_shuffle_epi8(hi[r], vh));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(yr[r] + i),
                       _mm_xor_si128(o, p));
    }
  }
  for (std::size_t r = 0; r < M; ++r)
    scalar_axpy(cc[r], x + i, yr[r] + i, n - i);
}

template <std::size_t M>
__attribute__((target("avx2"))) void avx2_mad_rows(const std::uint8_t* cc,
                                                   const std::uint8_t* x,
                                                   std::uint8_t* const* yr,
                                                   std::size_t n) {
  __m256i lo[M], hi[M];
  for (std::size_t r = 0; r < M; ++r) {
    lo[r] = _mm256_broadcastsi128_si256(
        _mm_load_si128(reinterpret_cast<const __m128i*>(kNibble.lo[cc[r]])));
    hi[r] = _mm256_broadcastsi128_si256(
        _mm_load_si128(reinterpret_cast<const __m128i*>(kNibble.hi[cc[r]])));
  }
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  // 64 bytes per iteration: at M == 8 the sixteen tables cannot all stay
  // register-resident, so the compiler reloads spilled ones per row — two
  // input vectors per pass amortise those reloads (and the loop overhead)
  // over twice the bytes.
  for (; i + 64 <= n; i += 64) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i + 32));
    const __m256i vl0 = _mm256_and_si256(v0, mask);
    const __m256i vh0 = _mm256_and_si256(_mm256_srli_epi64(v0, 4), mask);
    const __m256i vl1 = _mm256_and_si256(v1, mask);
    const __m256i vh1 = _mm256_and_si256(_mm256_srli_epi64(v1, 4), mask);
    for (std::size_t r = 0; r < M; ++r) {
      const __m256i o0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(yr[r] + i));
      const __m256i p0 = _mm256_xor_si256(_mm256_shuffle_epi8(lo[r], vl0),
                                          _mm256_shuffle_epi8(hi[r], vh0));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(yr[r] + i),
                          _mm256_xor_si256(o0, p0));
      const __m256i o1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(yr[r] + i + 32));
      const __m256i p1 = _mm256_xor_si256(_mm256_shuffle_epi8(lo[r], vl1),
                                          _mm256_shuffle_epi8(hi[r], vh1));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(yr[r] + i + 32),
                          _mm256_xor_si256(o1, p1));
    }
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i vl = _mm256_and_si256(v, mask);
    const __m256i vh = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
    for (std::size_t r = 0; r < M; ++r) {
      const __m256i o =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(yr[r] + i));
      const __m256i p = _mm256_xor_si256(_mm256_shuffle_epi8(lo[r], vl),
                                         _mm256_shuffle_epi8(hi[r], vh));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(yr[r] + i),
                          _mm256_xor_si256(o, p));
    }
  }
  if (i < n) {
    // 16-byte step plus scalar tail via the SSSE3 row kernel.
    std::uint8_t* tail[M];
    for (std::size_t r = 0; r < M; ++r) tail[r] = yr[r] + i;
    ssse3_mad_rows<M>(cc, x + i, tail, n - i);
  }
}

// Fused split-nibble gather, the mirror of the *_mad_rows family above
// with input/output roles swapped: the live-input count is a template
// parameter so the per-input lo/hi tables stay register-resident, the
// accumulator vector is loaded and stored once per pass, and every input
// vector costs two pshufb + two xor — the structure of ISA-L's
// gf_vect_dot_prod family.

template <std::size_t M>
__attribute__((target("ssse3"))) void ssse3_dot_rows(
    const std::uint8_t* cc, const std::uint8_t* const* xr, std::uint8_t* y,
    std::size_t n) {
  __m128i lo[M], hi[M];
  for (std::size_t r = 0; r < M; ++r) {
    lo[r] =
        _mm_load_si128(reinterpret_cast<const __m128i*>(kNibble.lo[cc[r]]));
    hi[r] =
        _mm_load_si128(reinterpret_cast<const __m128i*>(kNibble.hi[cc[r]]));
  }
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i acc = _mm_loadu_si128(reinterpret_cast<const __m128i*>(y + i));
    for (std::size_t r = 0; r < M; ++r) {
      const __m128i v =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(xr[r] + i));
      acc = _mm_xor_si128(acc, mul16(v, lo[r], hi[r], mask));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(y + i), acc);
  }
  for (std::size_t r = 0; r < M; ++r)
    scalar_axpy(cc[r], xr[r] + i, y + i, n - i);
}

template <std::size_t M>
__attribute__((target("avx2"))) void avx2_dot_rows(const std::uint8_t* cc,
                                                   const std::uint8_t* const* xr,
                                                   std::uint8_t* y,
                                                   std::size_t n) {
  __m256i lo[M], hi[M];
  for (std::size_t r = 0; r < M; ++r) {
    lo[r] = _mm256_broadcastsi128_si256(
        _mm_load_si128(reinterpret_cast<const __m128i*>(kNibble.lo[cc[r]])));
    hi[r] = _mm256_broadcastsi128_si256(
        _mm_load_si128(reinterpret_cast<const __m128i*>(kNibble.hi[cc[r]])));
  }
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  // 64 bytes per iteration for the same reason as avx2_mad_rows: at
  // M == 8 the sixteen tables spill, and two accumulator streams amortise
  // the reloads over twice the bytes.
  for (; i + 64 <= n; i += 64) {
    __m256i acc0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    __m256i acc1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i + 32));
    for (std::size_t r = 0; r < M; ++r) {
      const __m256i v0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xr[r] + i));
      const __m256i v1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(xr[r] + i + 32));
      acc0 = _mm256_xor_si256(acc0, mul32(v0, lo[r], hi[r], mask));
      acc1 = _mm256_xor_si256(acc1, mul32(v1, lo[r], hi[r], mask));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + i), acc0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + i + 32), acc1);
  }
  for (; i + 32 <= n; i += 32) {
    __m256i acc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    for (std::size_t r = 0; r < M; ++r) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xr[r] + i));
      acc = _mm256_xor_si256(acc, mul32(v, lo[r], hi[r], mask));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + i), acc);
  }
  if (i < n) {
    // 16-byte step plus scalar tail via the SSSE3 row kernel.
    const std::uint8_t* tail[M];
    for (std::size_t r = 0; r < M; ++r) tail[r] = xr[r] + i;
    ssse3_dot_rows<M>(cc, tail, y + i, n - i);
  }
}

using MadRowsFn = void (*)(const std::uint8_t*, const std::uint8_t*,
                           std::uint8_t* const*, std::size_t);
using DotRowsFn = void (*)(const std::uint8_t*, const std::uint8_t* const*,
                           std::uint8_t*, std::size_t);

// Shared tile-compact-dispatch wrapper behind every SIMD mad_multi:
// split the batch into kMaxFusedRows blocks, drop zero rows, and jump to
// the width-specialised row kernel for the live count.
void tiled_mad_multi(const MadRowsFn* rows_fns, const std::uint8_t* c,
                     std::size_t k, const std::uint8_t* x,
                     std::uint8_t* const* ys, std::size_t n) {
  for (std::size_t r0 = 0; r0 < k; r0 += kMaxFusedRows) {
    const std::size_t kb = std::min(kMaxFusedRows, k - r0);
    std::uint8_t cc[kMaxFusedRows];
    std::uint8_t* yr[kMaxFusedRows];
    const std::size_t m = compact_rows(c + r0, kb, ys + r0, cc, yr);
    if (m != 0) rows_fns[m - 1](cc, x, yr, n);
  }
}

// The same wrapper for the gather direction.
void tiled_dot_multi(const DotRowsFn* rows_fns, const std::uint8_t* c,
                     std::size_t k, const std::uint8_t* const* xs,
                     std::uint8_t* y, std::size_t n) {
  for (std::size_t r0 = 0; r0 < k; r0 += kMaxFusedRows) {
    const std::size_t kb = std::min(kMaxFusedRows, k - r0);
    std::uint8_t cc[kMaxFusedRows];
    const std::uint8_t* xr[kMaxFusedRows];
    const std::size_t m = compact_inputs(c + r0, kb, xs + r0, cc, xr);
    if (m != 0) rows_fns[m - 1](cc, xr, y, n);
  }
}

// Below ~half a KiB the fused pshufb row kernels lose: at M > 4 their
// 2*M nibble tables spill, and the per-call spill/setup outweighs the
// shared-input savings (the paper's 100 B payloads hit this on every
// round). Repeated axpy is byte-equivalent by contract, so fall back.
constexpr std::size_t kPshufbFusedMinBytes = 512;

void ssse3_mad_multi(const std::uint8_t* c, std::size_t k,
                     const std::uint8_t* x, std::uint8_t* const* ys,
                     std::size_t n) {
  if (n < kPshufbFusedMinBytes) {
    for (std::size_t r = 0; r < k; ++r) ssse3_axpy(c[r], x, ys[r], n);
    return;
  }
  static constexpr MadRowsFn kRows[kMaxFusedRows] = {
      ssse3_mad_rows<1>, ssse3_mad_rows<2>, ssse3_mad_rows<3>,
      ssse3_mad_rows<4>, ssse3_mad_rows<5>, ssse3_mad_rows<6>,
      ssse3_mad_rows<7>, ssse3_mad_rows<8>};
  tiled_mad_multi(kRows, c, k, x, ys, n);
}

void avx2_mad_multi(const std::uint8_t* c, std::size_t k,
                    const std::uint8_t* x, std::uint8_t* const* ys,
                    std::size_t n) {
  if (n < kPshufbFusedMinBytes) {
    for (std::size_t r = 0; r < k; ++r) avx2_axpy(c[r], x, ys[r], n);
    return;
  }
  static constexpr MadRowsFn kRows[kMaxFusedRows] = {
      avx2_mad_rows<1>, avx2_mad_rows<2>, avx2_mad_rows<3>,
      avx2_mad_rows<4>, avx2_mad_rows<5>, avx2_mad_rows<6>,
      avx2_mad_rows<7>, avx2_mad_rows<8>};
  tiled_mad_multi(kRows, c, k, x, ys, n);
}

// The gather direction shares mad_multi's small-payload policy: below
// ~half a KiB the 2*M nibble tables spill and repeated axpy wins.
void ssse3_dot_multi(const std::uint8_t* c, std::size_t k,
                     const std::uint8_t* const* xs, std::uint8_t* y,
                     std::size_t n) {
  if (n < kPshufbFusedMinBytes) {
    for (std::size_t r = 0; r < k; ++r) ssse3_axpy(c[r], xs[r], y, n);
    return;
  }
  static constexpr DotRowsFn kRows[kMaxFusedRows] = {
      ssse3_dot_rows<1>, ssse3_dot_rows<2>, ssse3_dot_rows<3>,
      ssse3_dot_rows<4>, ssse3_dot_rows<5>, ssse3_dot_rows<6>,
      ssse3_dot_rows<7>, ssse3_dot_rows<8>};
  tiled_dot_multi(kRows, c, k, xs, y, n);
}

void avx2_dot_multi(const std::uint8_t* c, std::size_t k,
                    const std::uint8_t* const* xs, std::uint8_t* y,
                    std::size_t n) {
  if (n < kPshufbFusedMinBytes) {
    for (std::size_t r = 0; r < k; ++r) avx2_axpy(c[r], xs[r], y, n);
    return;
  }
  static constexpr DotRowsFn kRows[kMaxFusedRows] = {
      avx2_dot_rows<1>, avx2_dot_rows<2>, avx2_dot_rows<3>,
      avx2_dot_rows<4>, avx2_dot_rows<5>, avx2_dot_rows<6>,
      avx2_dot_rows<7>, avx2_dot_rows<8>};
  tiled_dot_multi(kRows, c, k, xs, y, n);
}

constexpr Kernel kSsse3{"ssse3", ssse3_axpy, ssse3_mul_row, ssse3_xor_into,
                        ssse3_mad_multi, ssse3_dot_multi};
constexpr Kernel kAvx2{"avx2", avx2_axpy, avx2_mul_row, avx2_xor_into,
                       avx2_mad_multi, avx2_dot_multi};

// ------------------------------------------------------- GFNI + AVX-512
// gf2p8affineqb applies an arbitrary 8x8 GF(2) bit matrix to every byte
// lane. Multiplication by a constant c is GF(2)-linear, so one 64-bit
// matrix per coefficient replaces the 32 bytes of split-nibble tables —
// a full GF(2^8) multiply in ONE instruction per 64 input bytes, and
// with AVX-512's 32 zmm registers all kMaxFusedRows matrices of a fused
// block stay register-resident (the pshufb kernels spill at M == 8).
//
// Matrix layout (Intel SDM affine_byte): qword byte (7 - i) holds the
// row computing output bit i; its bit k must be bit i of c * alpha^k,
// with alpha reduction over OUR modulus 0x11D (gf2p8mulb is useless here:
// it hardwires the AES polynomial 0x11B, gf2p8affineqb is polynomial-
// agnostic).

consteval std::array<std::uint64_t, 256> make_gfni_matrices() {
  std::array<std::uint64_t, 256> t{};
  for (unsigned c = 0; c < 256; ++c) {
    std::uint8_t col[8];  // col[k] = c * alpha^k
    auto v = static_cast<std::uint8_t>(c);
    for (int k = 0; k < 8; ++k) {
      col[k] = v;
      v = static_cast<std::uint8_t>((v << 1) ^ ((v & 0x80) != 0 ? 0x1D : 0));
    }
    std::uint64_t m = 0;
    for (int i = 0; i < 8; ++i) {
      std::uint8_t row = 0;
      for (int k = 0; k < 8; ++k)
        row = static_cast<std::uint8_t>(row | (((col[k] >> i) & 1) << k));
      m |= static_cast<std::uint64_t>(row) << (8 * (7 - i));
    }
    t[c] = m;
  }
  return t;
}

constexpr std::array<std::uint64_t, 256> kGfniMat = make_gfni_matrices();

#define THINAIR_GFNI_TARGET \
  __attribute__((target("gfni,avx512f,avx512bw,avx512vl")))

// All-ones mask for the r in [1, 63] tail bytes.
THINAIR_GFNI_TARGET inline __mmask64 tail_mask(std::size_t r) {
  return ~std::uint64_t{0} >> (64 - r);
}

THINAIR_GFNI_TARGET void gfni_axpy(std::uint8_t c, const std::uint8_t* x,
                                   std::uint8_t* y, std::size_t n) {
  if (c == 0) return;
  const __m512i a = _mm512_set1_epi64(static_cast<long long>(kGfniMat[c]));
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i v = _mm512_loadu_si512(x + i);
    const __m512i o = _mm512_loadu_si512(y + i);
    _mm512_storeu_si512(
        y + i, _mm512_xor_si512(o, _mm512_gf2p8affine_epi64_epi8(v, a, 0)));
  }
  if (i < n) {
    const __mmask64 m = tail_mask(n - i);
    const __m512i v = _mm512_maskz_loadu_epi8(m, x + i);
    const __m512i o = _mm512_maskz_loadu_epi8(m, y + i);
    _mm512_mask_storeu_epi8(
        y + i, m,
        _mm512_xor_si512(o, _mm512_gf2p8affine_epi64_epi8(v, a, 0)));
  }
}

THINAIR_GFNI_TARGET void gfni_mul_row(std::uint8_t c, const std::uint8_t* x,
                                      std::uint8_t* y, std::size_t n) {
  if (c == 0) {
    std::memset(y, 0, n);
    return;
  }
  if (c == 1) {
    if (x != y) std::memmove(y, x, n);
    return;
  }
  const __m512i a = _mm512_set1_epi64(static_cast<long long>(kGfniMat[c]));
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i v = _mm512_loadu_si512(x + i);
    _mm512_storeu_si512(y + i, _mm512_gf2p8affine_epi64_epi8(v, a, 0));
  }
  if (i < n) {
    const __mmask64 m = tail_mask(n - i);
    const __m512i v = _mm512_maskz_loadu_epi8(m, x + i);
    _mm512_mask_storeu_epi8(y + i, m,
                            _mm512_gf2p8affine_epi64_epi8(v, a, 0));
  }
}

THINAIR_GFNI_TARGET void gfni_xor_into(const std::uint8_t* x, std::uint8_t* y,
                                       std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i v = _mm512_loadu_si512(x + i);
    const __m512i o = _mm512_loadu_si512(y + i);
    _mm512_storeu_si512(y + i, _mm512_xor_si512(o, v));
  }
  if (i < n) {
    const __mmask64 m = tail_mask(n - i);
    const __m512i v = _mm512_maskz_loadu_epi8(m, x + i);
    const __m512i o = _mm512_maskz_loadu_epi8(m, y + i);
    _mm512_mask_storeu_epi8(y + i, m, _mm512_xor_si512(o, v));
  }
}

template <std::size_t M>
THINAIR_GFNI_TARGET void gfni_mad_rows(const std::uint8_t* cc,
                                       const std::uint8_t* x,
                                       std::uint8_t* const* yr,
                                       std::size_t n) {
  __m512i a[M];
  for (std::size_t r = 0; r < M; ++r)
    a[r] = _mm512_set1_epi64(static_cast<long long>(kGfniMat[cc[r]]));
  std::size_t i = 0;
  // 128 bytes per iteration: two independent zmm streams per row keep
  // the load/store ports busy while the affine results retire.
  for (; i + 128 <= n; i += 128) {
    const __m512i v0 = _mm512_loadu_si512(x + i);
    const __m512i v1 = _mm512_loadu_si512(x + i + 64);
    for (std::size_t r = 0; r < M; ++r) {
      const __m512i o0 = _mm512_loadu_si512(yr[r] + i);
      const __m512i o1 = _mm512_loadu_si512(yr[r] + i + 64);
      _mm512_storeu_si512(
          yr[r] + i,
          _mm512_xor_si512(o0, _mm512_gf2p8affine_epi64_epi8(v0, a[r], 0)));
      _mm512_storeu_si512(
          yr[r] + i + 64,
          _mm512_xor_si512(o1, _mm512_gf2p8affine_epi64_epi8(v1, a[r], 0)));
    }
  }
  for (; i + 64 <= n; i += 64) {
    const __m512i v = _mm512_loadu_si512(x + i);
    for (std::size_t r = 0; r < M; ++r) {
      const __m512i o = _mm512_loadu_si512(yr[r] + i);
      _mm512_storeu_si512(
          yr[r] + i,
          _mm512_xor_si512(o, _mm512_gf2p8affine_epi64_epi8(v, a[r], 0)));
    }
  }
  if (i < n) {
    const __mmask64 m = tail_mask(n - i);
    const __m512i v = _mm512_maskz_loadu_epi8(m, x + i);
    for (std::size_t r = 0; r < M; ++r) {
      const __m512i o = _mm512_maskz_loadu_epi8(m, yr[r] + i);
      _mm512_mask_storeu_epi8(
          yr[r] + i, m,
          _mm512_xor_si512(o, _mm512_gf2p8affine_epi64_epi8(v, a[r], 0)));
    }
  }
}

void gfni_mad_multi(const std::uint8_t* c, std::size_t k,
                    const std::uint8_t* x, std::uint8_t* const* ys,
                    std::size_t n) {
  // No small-n fallback: one 64-bit matrix per row means no spills and
  // near-zero setup, so fusion wins at every size.
  static constexpr MadRowsFn kRows[kMaxFusedRows] = {
      gfni_mad_rows<1>, gfni_mad_rows<2>, gfni_mad_rows<3>,
      gfni_mad_rows<4>, gfni_mad_rows<5>, gfni_mad_rows<6>,
      gfni_mad_rows<7>, gfni_mad_rows<8>};
  tiled_mad_multi(kRows, c, k, x, ys, n);
}

// Gather mirror of gfni_mad_rows: all M affine matrices plus two
// accumulator streams stay register-resident out of the 32 zmm registers,
// so every 64 input bytes cost one load and one gf2p8affineqb.
template <std::size_t M>
THINAIR_GFNI_TARGET void gfni_dot_rows(const std::uint8_t* cc,
                                       const std::uint8_t* const* xr,
                                       std::uint8_t* y, std::size_t n) {
  __m512i a[M];
  for (std::size_t r = 0; r < M; ++r)
    a[r] = _mm512_set1_epi64(static_cast<long long>(kGfniMat[cc[r]]));
  std::size_t i = 0;
  for (; i + 128 <= n; i += 128) {
    __m512i acc0 = _mm512_loadu_si512(y + i);
    __m512i acc1 = _mm512_loadu_si512(y + i + 64);
    for (std::size_t r = 0; r < M; ++r) {
      const __m512i v0 = _mm512_loadu_si512(xr[r] + i);
      const __m512i v1 = _mm512_loadu_si512(xr[r] + i + 64);
      acc0 = _mm512_xor_si512(acc0, _mm512_gf2p8affine_epi64_epi8(v0, a[r], 0));
      acc1 = _mm512_xor_si512(acc1, _mm512_gf2p8affine_epi64_epi8(v1, a[r], 0));
    }
    _mm512_storeu_si512(y + i, acc0);
    _mm512_storeu_si512(y + i + 64, acc1);
  }
  for (; i + 64 <= n; i += 64) {
    __m512i acc = _mm512_loadu_si512(y + i);
    for (std::size_t r = 0; r < M; ++r) {
      const __m512i v = _mm512_loadu_si512(xr[r] + i);
      acc = _mm512_xor_si512(acc, _mm512_gf2p8affine_epi64_epi8(v, a[r], 0));
    }
    _mm512_storeu_si512(y + i, acc);
  }
  if (i < n) {
    const __mmask64 m = tail_mask(n - i);
    __m512i acc = _mm512_maskz_loadu_epi8(m, y + i);
    for (std::size_t r = 0; r < M; ++r) {
      const __m512i v = _mm512_maskz_loadu_epi8(m, xr[r] + i);
      acc = _mm512_xor_si512(acc, _mm512_gf2p8affine_epi64_epi8(v, a[r], 0));
    }
    _mm512_mask_storeu_epi8(y + i, m, acc);
  }
}

void gfni_dot_multi(const std::uint8_t* c, std::size_t k,
                    const std::uint8_t* const* xs, std::uint8_t* y,
                    std::size_t n) {
  // As with gfni_mad_multi: no small-n fallback needed.
  static constexpr DotRowsFn kRows[kMaxFusedRows] = {
      gfni_dot_rows<1>, gfni_dot_rows<2>, gfni_dot_rows<3>,
      gfni_dot_rows<4>, gfni_dot_rows<5>, gfni_dot_rows<6>,
      gfni_dot_rows<7>, gfni_dot_rows<8>};
  tiled_dot_multi(kRows, c, k, xs, y, n);
}

#undef THINAIR_GFNI_TARGET

constexpr Kernel kGfni{"gfni", gfni_axpy, gfni_mul_row, gfni_xor_into,
                       gfni_mad_multi, gfni_dot_multi};

bool cpu_has_ssse3() { return __builtin_cpu_supports("ssse3") != 0; }
bool cpu_has_avx2() { return __builtin_cpu_supports("avx2") != 0; }
bool cpu_has_gfni_avx512() {
  return __builtin_cpu_supports("gfni") != 0 &&
         __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0 &&
         __builtin_cpu_supports("avx512vl") != 0;
}

#endif  // THINAIR_GF_X86_SIMD

// ----------------------------------------------------------- dispatch

const std::vector<const Kernel*>& kernel_list() {
  static const std::vector<const Kernel*> kernels = [] {
    std::vector<const Kernel*> v{&kScalar, &kPortable};
#ifdef THINAIR_GF_X86_SIMD
    if (cpu_has_ssse3()) v.push_back(&kSsse3);
    if (cpu_has_avx2()) v.push_back(&kAvx2);
    if (cpu_has_gfni_avx512()) v.push_back(&kGfni);
#endif
    return v;
  }();
  return kernels;
}

const Kernel* find_kernel(std::string_view name) {
  for (const Kernel* k : kernel_list())
    if (name == k->name) return k;
  return nullptr;
}

const Kernel* best_kernel() {
  const Kernel* s = simd_kernel();
  return s != nullptr ? s : &kPortable;
}

const Kernel* resolve_default() {
  if (const char* env = std::getenv("THINAIR_GF_KERNEL");
      env != nullptr && *env != '\0' && std::string_view(env) != "auto") {
    if (const Kernel* k = find_kernel(env)) return k;
    std::fprintf(stderr,
                 "thinair: THINAIR_GF_KERNEL=%s is unknown or unsupported "
                 "on this CPU; using %s\n",
                 env, best_kernel()->name);
  }
  return best_kernel();
}

// The dispatch singleton. Everything reachable from it is immutable
// after first use — the kernel vtables are constinit-style statics and
// kernel_list() is a magic static — so the only mutable state in the
// whole dispatch layer is this one pointer slot, and it is atomic.
// Relaxed ordering suffices: a kernel pointer is self-contained (no
// data is published through the store), and torn selection is
// impossible. This is the lock-free pattern thinair_lint's RNG and
// allocation rules assume when they exempt this file; the thread-safety
// contract is documented on set_active_kernel() in the header.
std::atomic<const Kernel*>& active_slot() {
  static std::atomic<const Kernel*> slot{resolve_default()};
  return slot;
}

}  // namespace

const Kernel& scalar_kernel() { return kScalar; }
const Kernel& portable_kernel() { return kPortable; }

const Kernel* simd_kernel() {
#ifdef THINAIR_GF_X86_SIMD
  if (cpu_has_gfni_avx512()) return &kGfni;
  if (cpu_has_avx2()) return &kAvx2;
  if (cpu_has_ssse3()) return &kSsse3;
#endif
  return nullptr;
}

std::span<const Kernel* const> all_kernels() { return kernel_list(); }

const Kernel& active_kernel() {
  return *active_slot().load(std::memory_order_relaxed);
}

bool set_active_kernel(std::string_view name) {
  const Kernel* k = name == "auto" ? best_kernel() : find_kernel(name);
  if (k == nullptr) return false;
  active_slot().store(k, std::memory_order_relaxed);
  return true;
}

}  // namespace thinair::gf
