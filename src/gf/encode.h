#pragma once
// Fused matrix-times-payload-vector encoding.
//
// Phase 1 codes the y-pool, phase 2 the z- and s-packets, and the repair
// path the missing y's — all as outputs[i] ^= sum_j m(i, j) * inputs[j]
// with whole payloads as the vector elements. Done row by row (one axpy
// per nonzero coefficient) every input payload is re-streamed once per
// output row; encode() instead tiles the rows into blocks of
// kMaxFusedRows and hands each input to the active kernel's mad_multi
// exactly once per block, cutting input traffic by up to 8x. GF(2^8)
// arithmetic is exact and XOR accumulation is order-independent, so the
// output bytes are identical to the row-by-row formulation — the
// runtime's cross-kernel/cross-thread NDJSON contract is unaffected.
//
// encode() *accumulates* into the caller's output spans (callers seed
// them with zeros, or with z-contents in the repair path); the arena
// overload allocates zeroed outputs itself. Zero coefficients are
// skipped per (block, input) pair, so block-diagonal pool matrices pay
// only for their support.
//
// Layering note: PayloadArena is packet-level plumbing with no gf
// dependency; including it here creates no cycle.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "gf/matrix.h"
#include "packet/arena.h"

namespace thinair::gf {

/// outputs[i] ^= sum_j m(i, j) * inputs[j], fused over row blocks.
/// Requires inputs.size() == m.cols(), outputs.size() == m.rows(), every
/// output span of size payload_size, and every input span referenced by a
/// nonzero coefficient of size payload_size (inputs under all-zero
/// columns may be empty and are never dereferenced). Output spans must
/// not alias inputs or each other.
void encode(const Matrix& m,
            std::span<const std::span<const std::uint8_t>> inputs,
            std::span<const std::span<std::uint8_t>> outputs,
            std::size_t payload_size);

/// Arena path: allocate m.rows() zeroed payload spans from `arena`,
/// encode into them and return them in row order.
[[nodiscard]] std::vector<std::span<const std::uint8_t>> encode(
    const Matrix& m, std::span<const std::span<const std::uint8_t>> inputs,
    std::size_t payload_size, packet::PayloadArena& arena);

}  // namespace thinair::gf
