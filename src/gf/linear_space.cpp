#include "gf/linear_space.h"

#include <algorithm>
#include <stdexcept>

#include "gf/kernels.h"

namespace thinair::gf {

std::size_t LinearSpace::reduce(std::vector<std::uint8_t>& v) const {
  // Fused gather: v is the shared output, blocks of kMaxFusedRows basis
  // rows the inputs. Reading every coefficient v[pivot] up front (rather
  // than interleaved with the eliminations) is sound because the basis is
  // fully reduced — each basis row is zero at every *other* basis row's
  // pivot, so eliminating with row b never changes v at another row's
  // pivot column. This is the one elimination loop behind insert(),
  // contains() and residual_rank()'s fixed-basis phase.
  DotBatch batch(v.data(), dim_);
  for (std::size_t b = 0; b < basis_.size(); ++b)
    batch.add(v[pivots_[b]], basis_[b].data());
  batch.flush();
  for (std::size_t i = 0; i < dim_; ++i)
    if (v[i] != 0) return i;
  return dim_;
}

bool LinearSpace::insert(std::span<const std::uint8_t> v) {
  if (v.size() != dim_) throw std::invalid_argument("LinearSpace: bad length");
  return insert_owned({v.begin(), v.end()});
}

bool LinearSpace::insert_owned(std::vector<std::uint8_t> w) {
  const std::size_t pivot = reduce(w);
  if (pivot == dim_) return false;
  mul_row(GF256{w[pivot]}.inv(), w.data(), w.data(), dim_);
  // Back-substitute into existing rows to stay fully reduced — fused: the
  // new row is the shared input, batches of kMaxFusedRows basis rows the
  // outputs.
  MadBatch batch(w.data(), dim_);
  for (std::size_t b = 0; b < basis_.size(); ++b)
    batch.add(basis_[b][pivot], basis_[b].data());
  batch.flush();
  const auto pos = std::lower_bound(pivots_.begin(), pivots_.end(), pivot);
  const auto idx = static_cast<std::size_t>(pos - pivots_.begin());
  pivots_.insert(pos, pivot);
  basis_.insert(basis_.begin() + static_cast<std::ptrdiff_t>(idx),
                std::move(w));
  return true;
}

std::size_t LinearSpace::insert_rows(const Matrix& m) {
  if (m.cols() != dim_)
    throw std::invalid_argument("LinearSpace: matrix width");
  std::size_t added = 0;
  for (std::size_t i = 0; i < m.rows(); ++i)
    if (insert(m.row(i))) ++added;
  return added;
}

bool LinearSpace::insert_unit(std::size_t index) {
  if (index >= dim_) throw std::out_of_range("LinearSpace: unit index");
  std::vector<std::uint8_t> v(dim_, 0);
  v[index] = 1;
  return insert_owned(std::move(v));
}

bool LinearSpace::contains(std::span<const std::uint8_t> v) const {
  if (v.size() != dim_) throw std::invalid_argument("LinearSpace: bad length");
  std::vector<std::uint8_t> w(v.begin(), v.end());
  return reduce(w) == dim_;
}

std::size_t LinearSpace::residual_rank(const Matrix& m) const {
  // Rank counting only — no copy of the basis, no normalisation of the
  // probe rows beyond what elimination needs. Each candidate row is
  // reduced against the fixed basis, then against the previously accepted
  // candidates (kept normalised and sorted by pivot; rows are zero before
  // their pivot and zero at every fixed-basis pivot, so one monotone walk
  // eliminates every matching pivot).
  if (m.cols() != dim_)
    throw std::invalid_argument("LinearSpace: matrix width");
  std::vector<std::vector<std::uint8_t>> fresh;  // sorted by pivot
  std::vector<std::size_t> fresh_pivots;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const auto row = m.row(i);
    std::vector<std::uint8_t> w(row.begin(), row.end());
    std::size_t p = reduce(w);
    for (std::size_t b = 0; b < fresh.size() && p < dim_; ++b) {
      if (fresh_pivots[b] < p) continue;
      if (fresh_pivots[b] > p) break;  // nothing can clear column p
      axpy(GF256{w[p]}, fresh[b].data(), w.data(), dim_);
      while (p < dim_ && w[p] == 0) ++p;
    }
    if (p == dim_) continue;
    mul_row(GF256{w[p]}.inv(), w.data(), w.data(), dim_);
    const auto pos =
        std::lower_bound(fresh_pivots.begin(), fresh_pivots.end(), p);
    const auto idx = static_cast<std::size_t>(pos - fresh_pivots.begin());
    fresh_pivots.insert(pos, p);
    fresh.insert(fresh.begin() + static_cast<std::ptrdiff_t>(idx),
                 std::move(w));
  }
  return fresh.size();
}

Matrix LinearSpace::basis() const {
  Matrix out(basis_.size(), dim_);
  for (std::size_t i = 0; i < basis_.size(); ++i)
    std::copy(basis_[i].begin(), basis_[i].end(), out.row(i).begin());
  return out;
}

}  // namespace thinair::gf
