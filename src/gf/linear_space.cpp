#include "gf/linear_space.h"

#include <algorithm>
#include <stdexcept>

#include "gf/kernels.h"

namespace thinair::gf {

std::size_t LinearSpace::reduce(std::vector<std::uint8_t>& v) const {
  for (std::size_t b = 0; b < basis_.size(); ++b) {
    const std::size_t p = pivots_[b];
    const GF256 c{v[p]};
    if (!c.is_zero()) axpy(c, basis_[b].data(), v.data(), dim_);
  }
  for (std::size_t i = 0; i < dim_; ++i)
    if (v[i] != 0) return i;
  return dim_;
}

bool LinearSpace::insert(std::span<const std::uint8_t> v) {
  if (v.size() != dim_) throw std::invalid_argument("LinearSpace: bad length");
  std::vector<std::uint8_t> w(v.begin(), v.end());
  const std::size_t pivot = reduce(w);
  if (pivot == dim_) return false;
  mul_row(GF256{w[pivot]}.inv(), w.data(), w.data(), dim_);
  // Back-substitute into existing rows to stay fully reduced.
  for (std::size_t b = 0; b < basis_.size(); ++b) {
    const GF256 c{basis_[b][pivot]};
    if (!c.is_zero()) axpy(c, w.data(), basis_[b].data(), dim_);
  }
  const auto pos = std::lower_bound(pivots_.begin(), pivots_.end(), pivot);
  const auto idx = static_cast<std::size_t>(pos - pivots_.begin());
  pivots_.insert(pos, pivot);
  basis_.insert(basis_.begin() + static_cast<std::ptrdiff_t>(idx),
                std::move(w));
  return true;
}

std::size_t LinearSpace::insert_rows(const Matrix& m) {
  if (m.cols() != dim_)
    throw std::invalid_argument("LinearSpace: matrix width");
  std::size_t added = 0;
  for (std::size_t i = 0; i < m.rows(); ++i)
    if (insert(m.row(i))) ++added;
  return added;
}

bool LinearSpace::insert_unit(std::size_t index) {
  if (index >= dim_) throw std::out_of_range("LinearSpace: unit index");
  std::vector<std::uint8_t> v(dim_, 0);
  v[index] = 1;
  return insert(v);
}

bool LinearSpace::contains(std::span<const std::uint8_t> v) const {
  if (v.size() != dim_) throw std::invalid_argument("LinearSpace: bad length");
  std::vector<std::uint8_t> w(v.begin(), v.end());
  return reduce(w) == dim_;
}

std::size_t LinearSpace::residual_rank(const Matrix& m) const {
  LinearSpace tmp = *this;
  return tmp.insert_rows(m);
}

Matrix LinearSpace::basis() const {
  Matrix out(basis_.size(), dim_);
  for (std::size_t i = 0; i < basis_.size(); ++i)
    std::copy(basis_[i].begin(), basis_[i].end(), out.row(i).begin());
  return out;
}

}  // namespace thinair::gf
