#include "gf/gf256.h"

#include <ostream>

#include "gf/kernels.h"

namespace thinair::gf {

std::ostream& operator<<(std::ostream& os, GF256 v) {
  return os << "g" << static_cast<unsigned>(v.value());
}

// The bulk span primitives dispatch through the retargetable kernel layer
// (gf/kernels.h): scalar log/exp, portable 64-bit SWAR, or pshufb SIMD,
// chosen at runtime. All kernels compute identical bytes.

void axpy(GF256 c, const std::uint8_t* x, std::uint8_t* y, std::size_t n) {
  active_kernel().axpy(c.value(), x, y, n);
}

void scale(GF256 c, std::uint8_t* y, std::size_t n) {
  active_kernel().mul_row(c.value(), y, y, n);
}

}  // namespace thinair::gf
