#include "gf/gf256.h"

#include <ostream>

namespace thinair::gf {

std::ostream& operator<<(std::ostream& os, GF256 v) {
  return os << "g" << static_cast<unsigned>(v.value());
}

void axpy(GF256 c, const std::uint8_t* x, std::uint8_t* y, std::size_t n) {
  if (c.is_zero()) return;
  if (c == kOne) {
    for (std::size_t i = 0; i < n; ++i) y[i] ^= x[i];
    return;
  }
  const unsigned lc = detail::kTables.log_[c.value()];
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t xv = x[i];
    if (xv != 0) y[i] ^= detail::kTables.exp_[lc + detail::kTables.log_[xv]];
  }
}

void scale(GF256 c, std::uint8_t* y, std::size_t n) {
  if (c == kOne) return;
  if (c.is_zero()) {
    for (std::size_t i = 0; i < n; ++i) y[i] = 0;
    return;
  }
  const unsigned lc = detail::kTables.log_[c.value()];
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t yv = y[i];
    y[i] = yv == 0 ? std::uint8_t{0}
                   : detail::kTables.exp_[lc + detail::kTables.log_[yv]];
  }
}

}  // namespace thinair::gf
