#pragma once
// Packet representation.
//
// The paper's protocol exchanges several kinds of packets (Sec. 3):
//   x  random payloads broadcast unreliably over the lossy channel;
//   z  coded payloads sent by *reliable* broadcast in phase 2;
//   reception reports, combination announcements and acks: control
//      messages, also reliably broadcast.
// y- and s-packets never appear on the air (only their combination
// *identities* do) — that is the whole point of the scheme — so they are
// not Packet instances; they live as decoded payloads at each terminal.

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "packet/types.h"

namespace thinair::packet {

enum class Kind : std::uint8_t {
  kData = 0,         // x-packet (random payload)
  kCoded = 1,        // z-packet (coded payload, phase 2 step 1)
  kReport = 2,       // reception report (phase 1 step 2)
  kAnnouncement = 3, // combination identities (phase 1 step 3 / phase 2 step 3)
  kAck = 4,          // link-layer ack used by reliable broadcast
  kCipher = 5,       // encrypted application payload (unicast baseline)
};

[[nodiscard]] std::string_view to_string(Kind k);
std::ostream& operator<<(std::ostream& os, Kind k);

using Payload = std::vector<std::uint8_t>;

/// On-air representation of a frame. `payload` carries the body whose size
/// is what the efficiency metric charges; `header_size()` adds the fixed
/// per-frame overhead (kind, source, round, sequence, length, FCS) modeled
/// after a slim 802.11-style header.
struct Packet {
  Kind kind = Kind::kData;
  NodeId source;
  RoundId round;
  PacketSeq seq;
  Payload payload;

  /// Fixed per-frame header + trailer bytes used for byte accounting.
  [[nodiscard]] static constexpr std::size_t header_size() { return 16; }

  [[nodiscard]] std::size_t wire_size() const {
    return header_size() + payload.size();
  }
};

/// The payload size used throughout the paper's testbed: 100-byte packets
/// (Sec. 4), i.e. 800 secret bits per fully-secret packet.
inline constexpr std::size_t kPaperPayloadBytes = 100;

}  // namespace thinair::packet
