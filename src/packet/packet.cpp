#include "packet/packet.h"

#include <ostream>

namespace thinair::packet {

std::string_view to_string(Kind k) {
  switch (k) {
    case Kind::kData: return "data";
    case Kind::kCoded: return "coded";
    case Kind::kReport: return "report";
    case Kind::kAnnouncement: return "announcement";
    case Kind::kAck: return "ack";
    case Kind::kCipher: return "cipher";
  }
  return "unknown";
}

std::ostream& operator<<(std::ostream& os, Kind k) { return os << to_string(k); }

std::ostream& operator<<(std::ostream& os, NodeId id) {
  return os << "T" << id.value;
}
std::ostream& operator<<(std::ostream& os, PacketSeq id) {
  return os << "#" << id.value;
}
std::ostream& operator<<(std::ostream& os, RoundId id) {
  return os << "r" << id.value;
}

}  // namespace thinair::packet
