#pragma once
// Wire encodings for the protocol's control messages.
//
// The efficiency metric of Sec. 4 divides secret bits by *all* transmitted
// bits, so control messages must have a concrete size. We define compact,
// round-trippable encodings for the two control payloads:
//   - reception reports (phase 1 step 2): a bitmap over the N x-packets;
//   - combination announcements (phase 1 step 3 / phase 2 steps 1 & 3):
//     a list of Combination descriptors.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "packet/combination.h"
#include "packet/packet.h"

namespace thinair::packet {

/// Which of the N x-packets a terminal received, as indices in [0, N).
struct ReceptionReport {
  std::uint32_t universe = 0;           // N
  std::vector<std::uint32_t> received;  // strictly increasing indices
  friend bool operator==(const ReceptionReport&,
                         const ReceptionReport&) = default;
};

[[nodiscard]] Payload encode(const ReceptionReport& r);
/// encode() into a caller-owned payload (cleared first): a pooled session
/// re-encoding into the same buffer every round reuses its capacity.
void encode_into(const ReceptionReport& r, Payload& out);
[[nodiscard]] std::optional<ReceptionReport> decode_report(
    std::span<const std::uint8_t> bytes);

/// A batch of combination identities (one per derived packet).
struct Announcement {
  std::vector<Combination> combinations;
  friend bool operator==(const Announcement&, const Announcement&) = default;
};

[[nodiscard]] Payload encode(const Announcement& a);
/// encode() into a caller-owned payload (cleared first), reusing capacity.
void encode_into(const Announcement& a, Payload& out);
[[nodiscard]] std::optional<Announcement> decode_announcement(
    std::span<const std::uint8_t> bytes);

}  // namespace thinair::packet
