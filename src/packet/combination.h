#pragma once
// Linear-combination descriptors.
//
// When Alice announces y-/s-packet *identities* (phase 1 step 3 and phase 2
// step 3 in the paper) she publishes, for each derived packet, which inputs
// were combined and with which GF(2^8) coefficients — but never the
// contents. This file defines that descriptor, the operation that applies
// it to payloads, and its serialized size (which the efficiency metric
// charges as control traffic).

#include <cstdint>
#include <span>
#include <vector>

#include "gf/gf256.h"
#include "packet/arena.h"
#include "packet/packet.h"

namespace thinair::packet {

/// One term of a linear combination: coefficient times the input with the
/// given index (an x-packet sequence number in phase 1, a y-packet index in
/// phase 2).
struct Term {
  std::uint32_t index = 0;
  gf::GF256 coeff;
  friend bool operator==(const Term&, const Term&) = default;
};

/// A sparse linear combination of input payloads.
class Combination {
 public:
  Combination() = default;
  explicit Combination(std::vector<Term> terms) : terms_(std::move(terms)) {}

  [[nodiscard]] const std::vector<Term>& terms() const { return terms_; }
  [[nodiscard]] bool empty() const { return terms_.empty(); }

  void add(std::uint32_t index, gf::GF256 coeff) {
    if (!coeff.is_zero()) terms_.push_back({index, coeff});
  }

  /// Evaluate over `inputs`, where inputs[t.index] must be a payload of
  /// size `payload_size` for every term t.
  [[nodiscard]] Payload apply(std::span<const Payload> inputs,
                              std::size_t payload_size) const;

  /// Arena path: evaluate into a fresh zeroed span from `arena` of size
  /// `payload_size`. Inputs are raw views (typically other arena spans).
  [[nodiscard]] ConstByteSpan apply(std::span<const ConstByteSpan> inputs,
                                    std::size_t payload_size,
                                    PayloadArena& arena) const;

  /// Accumulating core: out += sum of coeff * inputs[index] over every
  /// term, where each referenced input must have out.size() bytes. A
  /// zero-length `out` is a no-op — empty inputs are never dereferenced.
  void apply_into(std::span<const ConstByteSpan> inputs, ByteSpan out) const;
  void apply_into(std::span<const Payload> inputs, ByteSpan out) const;

  /// Dense coefficient row of width `universe` (index -> coefficient),
  /// used by the secrecy analysis.
  [[nodiscard]] std::vector<std::uint8_t> dense_row(std::size_t universe) const;

  /// Bytes this descriptor occupies inside an announcement: 2-byte count +
  /// 4-byte index + 1-byte coefficient per term (mirrors serialize.h).
  [[nodiscard]] std::size_t serialized_size() const {
    return 2 + terms_.size() * 5;
  }

  friend bool operator==(const Combination&, const Combination&) = default;

 private:
  std::vector<Term> terms_;
};

}  // namespace thinair::packet
