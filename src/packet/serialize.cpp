#include "packet/serialize.h"

namespace thinair::packet {

namespace {

void put_u16(Payload& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(Payload& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v & 0xFF));
    v >>= 8;
  }
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::optional<std::uint8_t> u8() {
    if (pos_ + 1 > bytes_.size()) return std::nullopt;
    return bytes_[pos_++];
  }
  std::optional<std::uint16_t> u16() {
    if (pos_ + 2 > bytes_.size()) return std::nullopt;
    const std::uint16_t v = static_cast<std::uint16_t>(
        bytes_[pos_] | (static_cast<std::uint16_t>(bytes_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }
  std::optional<std::uint32_t> u32() {
    if (pos_ + 4 > bytes_.size()) return std::nullopt;
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
      v = (v << 8) | bytes_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 4;
    return v;
  }
  [[nodiscard]] bool done() const { return pos_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

Payload encode(const ReceptionReport& r) {
  Payload out;
  encode_into(r, out);
  return out;
}

void encode_into(const ReceptionReport& r, Payload& out) {
  out.clear();
  put_u32(out, r.universe);
  // Bitmap over the universe: ceil(N / 8) bytes, appended zeroed then set
  // in place (no temporary).
  const std::size_t head = out.size();
  out.resize(head + (r.universe + 7) / 8, 0);
  for (std::uint32_t idx : r.received) {
    if (idx < r.universe)
      out[head + idx / 8] |= static_cast<std::uint8_t>(1u << (idx % 8));
  }
}

std::optional<ReceptionReport> decode_report(
    std::span<const std::uint8_t> bytes) {
  Reader in(bytes);
  const auto universe = in.u32();
  if (!universe) return std::nullopt;
  ReceptionReport r;
  r.universe = *universe;
  const std::size_t nbytes = (r.universe + 7) / 8;
  std::vector<std::uint8_t> bitmap;
  bitmap.reserve(nbytes);
  for (std::size_t i = 0; i < nbytes; ++i) {
    const auto b = in.u8();
    if (!b) return std::nullopt;
    bitmap.push_back(*b);
  }
  if (!in.done()) return std::nullopt;
  for (std::uint32_t idx = 0; idx < r.universe; ++idx)
    if (bitmap[idx / 8] & (1u << (idx % 8))) r.received.push_back(idx);
  return r;
}

Payload encode(const Announcement& a) {
  Payload out;
  encode_into(a, out);
  return out;
}

void encode_into(const Announcement& a, Payload& out) {
  out.clear();
  put_u16(out, static_cast<std::uint16_t>(a.combinations.size()));
  for (const Combination& c : a.combinations) {
    put_u16(out, static_cast<std::uint16_t>(c.terms().size()));
    for (const Term& t : c.terms()) {
      put_u32(out, t.index);
      out.push_back(t.coeff.value());
    }
  }
}

std::optional<Announcement> decode_announcement(
    std::span<const std::uint8_t> bytes) {
  Reader in(bytes);
  const auto count = in.u16();
  if (!count) return std::nullopt;
  Announcement a;
  a.combinations.reserve(*count);
  for (std::uint16_t i = 0; i < *count; ++i) {
    const auto nterms = in.u16();
    if (!nterms) return std::nullopt;
    std::vector<Term> terms;
    terms.reserve(*nterms);
    for (std::uint16_t t = 0; t < *nterms; ++t) {
      const auto index = in.u32();
      const auto coeff = in.u8();
      if (!index || !coeff) return std::nullopt;
      terms.push_back({*index, gf::GF256(*coeff)});
    }
    a.combinations.emplace_back(std::move(terms));
  }
  if (!in.done()) return std::nullopt;
  return a;
}

}  // namespace thinair::packet
