#include "packet/combination.h"

#include <stdexcept>

namespace thinair::packet {

Payload Combination::apply(std::span<const Payload> inputs,
                           std::size_t payload_size) const {
  Payload out(payload_size, 0);
  for (const Term& t : terms_) {
    if (t.index >= inputs.size())
      throw std::out_of_range("Combination::apply: index out of range");
    const Payload& in = inputs[t.index];
    if (in.size() != payload_size)
      throw std::invalid_argument("Combination::apply: payload size mismatch");
    gf::axpy(t.coeff, in.data(), out.data(), payload_size);
  }
  return out;
}

std::vector<std::uint8_t> Combination::dense_row(std::size_t universe) const {
  std::vector<std::uint8_t> row(universe, 0);
  for (const Term& t : terms_) {
    if (t.index >= universe)
      throw std::out_of_range("Combination::dense_row: index out of range");
    row[t.index] = static_cast<std::uint8_t>(row[t.index] ^
                                             t.coeff.value());  // accumulate
  }
  return row;
}

}  // namespace thinair::packet
