#include "packet/combination.h"

#include <cassert>
#include <stdexcept>

#include "gf/kernels.h"

namespace thinair::packet {

namespace {

// Shared accumulation loop for both input representations. `Inputs` only
// needs size() and operator[] returning something with size()/data().
// Fused on the gather side: the combination's terms batch through
// gf::DotBatch so the output payload is loaded/stored once per block of
// gf::kMaxFusedRows terms instead of once per term.
template <typename Inputs>
void accumulate(const std::vector<Term>& terms, const Inputs& inputs,
                ByteSpan out) {
  if (out.empty()) {
    // Zero-length payloads carry no bytes to combine; return before any
    // in.data() is formed (an empty vector's data() may be null). The
    // throwing bounds check below is skipped here, so keep the index
    // invariant visible to debug builds.
    for ([[maybe_unused]] const Term& t : terms)
      assert(t.index < inputs.size() &&
             "Combination term index out of range");
    return;
  }
  gf::DotBatch batch(out.data(), out.size());
  for (const Term& t : terms) {
    if (t.index >= inputs.size())
      throw std::out_of_range("Combination::apply: index out of range");
    const auto& in = inputs[t.index];
    if (in.size() != out.size())
      throw std::invalid_argument("Combination::apply: payload size mismatch");
    batch.add(t.coeff.value(), in.data());
  }
  batch.flush();
}

}  // namespace

Payload Combination::apply(std::span<const Payload> inputs,
                           std::size_t payload_size) const {
  Payload out(payload_size, 0);
  accumulate(terms_, inputs, ByteSpan(out));
  return out;
}

ConstByteSpan Combination::apply(std::span<const ConstByteSpan> inputs,
                                 std::size_t payload_size,
                                 PayloadArena& arena) const {
  ByteSpan out = arena.alloc(payload_size);
  accumulate(terms_, inputs, out);
  return out;
}

void Combination::apply_into(std::span<const ConstByteSpan> inputs,
                             ByteSpan out) const {
  accumulate(terms_, inputs, out);
}

void Combination::apply_into(std::span<const Payload> inputs,
                             ByteSpan out) const {
  accumulate(terms_, inputs, out);
}

std::vector<std::uint8_t> Combination::dense_row(std::size_t universe) const {
  std::vector<std::uint8_t> row(universe, 0);
  for (const Term& t : terms_) {
    if (t.index >= universe)
      throw std::out_of_range("Combination::dense_row: index out of range");
    row[t.index] = static_cast<std::uint8_t>(row[t.index] ^
                                             t.coeff.value());  // accumulate
  }
  return row;
}

}  // namespace thinair::packet
