#pragma once
// Strong identifier types shared across the library.

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>

namespace thinair::packet {

/// Identifies a node attached to the broadcast network. Terminals are
/// numbered 0..n-1 (terminal 0 plays "Alice" in the paper's exposition);
/// the eavesdropper and interferers receive ids outside that range.
struct NodeId {
  std::uint16_t value = 0;
  friend constexpr auto operator<=>(NodeId, NodeId) = default;
};

/// Identifies a packet within one protocol round: x-packets are numbered
/// 0..N-1 in transmission order, and derived packets (y/z/s) are numbered
/// within their own kind.
struct PacketSeq {
  std::uint32_t value = 0;
  friend constexpr auto operator<=>(PacketSeq, PacketSeq) = default;
};

/// Identifies one protocol round (one terminal playing Alice once).
struct RoundId {
  std::uint32_t value = 0;
  friend constexpr auto operator<=>(RoundId, RoundId) = default;
};

std::ostream& operator<<(std::ostream& os, NodeId id);
std::ostream& operator<<(std::ostream& os, PacketSeq id);
std::ostream& operator<<(std::ostream& os, RoundId id);

}  // namespace thinair::packet

template <>
struct std::hash<thinair::packet::NodeId> {
  std::size_t operator()(thinair::packet::NodeId id) const noexcept {
    return std::hash<std::uint16_t>{}(id.value);
  }
};
