#pragma once
// Contiguous per-round payload storage.
//
// A protocol round touches hundreds of equally-sized payloads — N
// x-packets, M y-packets, z/s-packets, and every receiver's
// reconstruction scratch. Allocating each as its own std::vector puts a
// malloc/free pair and a cache-cold header on the hottest loops in the
// codebase. A PayloadArena instead hands out spans carved from a small
// number of large blocks: allocation is a bump of a cursor, deallocation
// is a single reset() at the next round boundary, and payloads that are
// combined together sit contiguously in memory for the GF kernels
// (gf/kernels.h) to stream over.
//
// Lifetime rules:
//   - spans stay valid until reset() / rewind() past them (blocks are
//     never reallocated, so growth does not invalidate earlier spans);
//   - reset() keeps the blocks, so a reused arena stops allocating once
//     it has seen its high-water mark — the runtime engine keeps one
//     arena per worker thread for exactly this reason;
//   - the arena is single-threaded; give each worker its own.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace thinair::packet {

using ByteSpan = std::span<std::uint8_t>;
using ConstByteSpan = std::span<const std::uint8_t>;

class PayloadArena {
 public:
  /// `block_bytes` is the granularity of backing allocations; requests
  /// larger than it get a dedicated block.
  explicit PayloadArena(std::size_t block_bytes = std::size_t{1} << 16);

  PayloadArena(const PayloadArena&) = delete;
  PayloadArena& operator=(const PayloadArena&) = delete;
  PayloadArena(PayloadArena&&) noexcept = default;
  PayloadArena& operator=(PayloadArena&&) noexcept = default;

  /// `n` zero-initialised bytes, 16-byte aligned. n == 0 returns an empty
  /// span (never a null-deref hazard: empty spans are the arena's "no
  /// payload" representation).
  ByteSpan alloc(std::size_t n);

  /// Like alloc(), but uninitialised — for spans the caller fully writes.
  ByteSpan alloc_uninit(std::size_t n);

  /// `count` zeroed spans of `n` bytes each — the "one span per output
  /// row" allocation of the fused encode paths (gf::encode and friends).
  [[nodiscard]] std::vector<ByteSpan> alloc_rows(std::size_t count,
                                                 std::size_t n);

  /// Allocate and copy `src` into the arena.
  ByteSpan copy(ConstByteSpan src);

  /// Drop every allocation but keep the blocks for reuse. Also folds the
  /// ending epoch's peak into the decaying high-watermark that drives
  /// trim_to_watermark().
  void reset();

  /// Release trailing blocks until at most `max_retained_bytes` of backing
  /// storage remain. Blocks at or before the current cursor are always
  /// kept (spans carved from them may still be live), so the full effect
  /// needs a reset() first. Returns the bytes released.
  std::size_t trim(std::size_t max_retained_bytes);

  /// The trim policy for pooled reuse: keep roughly twice the recent
  /// per-epoch peak (the decaying high-watermark) so steady-state reuse
  /// never reallocates, while one pathological epoch stops pinning its
  /// peak for the process lifetime. Returns the bytes released.
  std::size_t trim_to_watermark();

  /// A position in the allocation stream; rewind(mark()) frees everything
  /// allocated after the mark (used to bound per-receiver scratch inside
  /// a round).
  struct Mark {
    std::size_t block = 0;
    std::size_t offset = 0;
  };
  [[nodiscard]] Mark mark() const { return {cursor_, offset_}; }
  void rewind(Mark m);

  /// Live bytes since the last reset (excluding alignment padding).
  [[nodiscard]] std::size_t bytes_allocated() const { return allocated_; }
  /// Total backing storage held.
  [[nodiscard]] std::size_t capacity() const;
  /// Decaying per-epoch peak of bytes_allocated(): bumped to the epoch's
  /// peak at every reset(), decaying by a quarter when epochs shrink —
  /// so it tracks the recent steady state, not the all-time spike.
  [[nodiscard]] std::size_t high_watermark() const { return watermark_; }
  /// Cumulative backing bytes released by trim()/trim_to_watermark().
  [[nodiscard]] std::uint64_t trimmed_bytes() const { return trimmed_; }

 private:
  struct Block {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size = 0;
  };

  std::uint8_t* grow(std::size_t n);  // ensure space, return cursor pointer

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t cursor_ = 0;  // index of the block being bumped
  std::size_t offset_ = 0;  // bump position within blocks_[cursor_]
  std::size_t allocated_ = 0;
  std::size_t watermark_ = 0;   // decaying per-epoch peak (see reset())
  std::uint64_t trimmed_ = 0;   // cumulative bytes released by trims
};

}  // namespace thinair::packet
