#include "packet/arena.h"

#include <algorithm>
#include <cstring>

namespace thinair::packet {

namespace {

constexpr std::size_t kAlign = 16;  // SIMD-kernel friendly

constexpr std::size_t align_up(std::size_t v) {
  return (v + (kAlign - 1)) & ~(kAlign - 1);
}

}  // namespace

PayloadArena::PayloadArena(std::size_t block_bytes)
    : block_bytes_(std::max(block_bytes, kAlign)) {}

std::uint8_t* PayloadArena::grow(std::size_t n) {
  // Advance to an existing block that can hold n bytes at an aligned
  // cursor, or append one. All comparisons are additions against the
  // block size — offset_ can legally sit past an alignment bump, so
  // `size - offset_` style subtraction would underflow.
  while (cursor_ < blocks_.size()) {
    const Block& blk = blocks_[cursor_];
    std::uint8_t* base = blk.data.get();
    std::size_t aligned = offset_;
    const auto misalign =
        reinterpret_cast<std::uintptr_t>(base + aligned) & (kAlign - 1);
    if (misalign != 0) aligned += kAlign - misalign;
    if (aligned <= blk.size && blk.size - aligned >= n) {
      offset_ = aligned;
      return base + aligned;
    }
    ++cursor_;
    offset_ = 0;
  }
  // new[] of uint8_t carries only fundamental alignment; over-allocate
  // by kAlign so an aligned cursor plus n always fits.
  const std::size_t size = std::max(block_bytes_, n) + kAlign;
  Block b;
  b.data = std::make_unique_for_overwrite<std::uint8_t[]>(size);
  b.size = size;
  blocks_.push_back(std::move(b));
  cursor_ = blocks_.size() - 1;  // also repairs a stale (e.g. moved-from) cursor
  std::uint8_t* base = blocks_[cursor_].data.get();
  offset_ = 0;
  const auto misalign =
      reinterpret_cast<std::uintptr_t>(base) & (kAlign - 1);
  if (misalign != 0) offset_ = kAlign - misalign;
  return base + offset_;
}

ByteSpan PayloadArena::alloc_uninit(std::size_t n) {
  if (n == 0) return {};
  std::uint8_t* p = grow(n);
  offset_ += n;
  allocated_ += n;
  return {p, n};
}

ByteSpan PayloadArena::alloc(std::size_t n) {
  if (n == 0) return {};  // memset's pointer is declared nonnull
  ByteSpan s = alloc_uninit(n);
  std::memset(s.data(), 0, s.size());
  return s;
}

std::vector<ByteSpan> PayloadArena::alloc_rows(std::size_t count,
                                               std::size_t n) {
  std::vector<ByteSpan> rows(count);
  for (ByteSpan& row : rows) row = alloc(n);
  return rows;
}

ByteSpan PayloadArena::copy(ConstByteSpan src) {
  if (src.empty()) return {};
  ByteSpan s = alloc_uninit(src.size());
  std::memcpy(s.data(), src.data(), src.size());
  return s;
}

void PayloadArena::reset() {
  // allocated_ is this epoch's peak (rewind never lowers it). Raise the
  // watermark to it immediately, but let it *decay* geometrically when
  // epochs shrink: after a handful of small epochs the watermark — and
  // with it the retained capacity under trim_to_watermark() — converges
  // back down instead of remembering one pathological epoch forever.
  watermark_ = std::max(allocated_, watermark_ - watermark_ / 4);
  cursor_ = 0;
  offset_ = 0;
  allocated_ = 0;
}

std::size_t PayloadArena::trim(std::size_t max_retained_bytes) {
  std::size_t held = capacity();
  std::size_t freed = 0;
  // Only trailing blocks strictly past the cursor are provably free of
  // live spans; blocks [0, cursor_] stay (so after reset() everything
  // but the first block is eligible).
  while (blocks_.size() > cursor_ + 1 &&
         held - blocks_.back().size >= max_retained_bytes) {
    held -= blocks_.back().size;
    freed += blocks_.back().size;
    blocks_.pop_back();
  }
  trimmed_ += freed;
  return freed;
}

std::size_t PayloadArena::trim_to_watermark() {
  // 2x slack over the recent peak: enough that a steady-state epoch never
  // re-grows (freeing and re-allocating every cycle would defeat the
  // pool), small enough that a spike's capacity drains within a few
  // epochs of the decaying watermark.
  return trim(2 * watermark_ + block_bytes_ + kAlign);
}

void PayloadArena::rewind(Mark m) {
  cursor_ = m.block;
  offset_ = m.offset;
  // bytes_allocated() is a monotone counter within a reset epoch; rewind
  // is about reclaiming space, not accounting, so leave it as the
  // high-water count of this epoch.
}

std::size_t PayloadArena::capacity() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

}  // namespace thinair::packet
