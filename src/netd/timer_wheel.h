#pragma once
// A hashed timer wheel for session idle expiry.
//
// The hub schedules one deadline per session; sessions are touched on
// every frame, far more often than they expire, so the wheel uses *lazy
// reinsertion*: touching a session only updates its bookkeeping, and when
// the stale wheel entry comes due the owner decides whether the deadline
// really passed (and reschedules otherwise). That keeps the hot path —
// one frame in, one deadline pushed back — allocation- and scan-free.
//
// Entries hash into `slots` buckets of width `tick_s`; advance() walks the
// buckets the clock has crossed since the last call and emits every entry
// whose recorded deadline is due. Deadlines farther than one lap away stay
// in their bucket across laps (each entry carries its absolute deadline,
// so a lapped entry is simply re-examined and kept until its time comes).

#include <cstdint>
#include <vector>

namespace thinair::netd {

class TimerWheel {
 public:
  struct Entry {
    std::uint64_t id = 0;
    double deadline_s = 0.0;
  };

  TimerWheel(double tick_s, std::size_t slots)
      : tick_s_(tick_s), buckets_(slots == 0 ? 1 : slots) {}

  /// Register `id` to fire at `deadline_s`. Duplicate registrations are
  /// fine — the owner disambiguates when the entry fires.
  void schedule(std::uint64_t id, double deadline_s) {
    buckets_[bucket_of(deadline_s)].push_back({id, deadline_s});
    ++size_;
  }

  /// Collect every entry whose deadline is <= now_s. Entries remain in
  /// insertion order within a bucket; cross-bucket order follows the wheel.
  [[nodiscard]] std::vector<Entry> advance(double now_s) {
    std::vector<Entry> due;
    if (size_ == 0) {
      cursor_ = tick_index(now_s);
      return due;
    }
    const std::int64_t target = tick_index(now_s);
    // Walk at most one full lap; older ticks map onto the same buckets.
    const std::int64_t begin = cursor_;
    const std::int64_t end =
        (target - begin >= static_cast<std::int64_t>(buckets_.size()))
            ? begin + static_cast<std::int64_t>(buckets_.size())
            : target + 1;
    for (std::int64_t t = begin; t < end; ++t) {
      auto& bucket = buckets_[static_cast<std::size_t>(t) % buckets_.size()];
      for (std::size_t i = 0; i < bucket.size();) {
        if (bucket[i].deadline_s <= now_s) {
          due.push_back(bucket[i]);
          bucket[i] = bucket.back();
          bucket.pop_back();
          --size_;
        } else {
          ++i;
        }
      }
    }
    cursor_ = target;
    return due;
  }

  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  [[nodiscard]] std::int64_t tick_index(double t_s) const {
    return static_cast<std::int64_t>(t_s / tick_s_);
  }
  [[nodiscard]] std::size_t bucket_of(double t_s) const {
    return static_cast<std::size_t>(tick_index(t_s)) % buckets_.size();
  }

  double tick_s_;
  std::vector<std::vector<Entry>> buckets_;
  std::int64_t cursor_ = 0;
  std::size_t size_ = 0;
};

}  // namespace thinair::netd
