#include "netd/socket_medium.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace thinair::netd {

namespace {

double monotonic_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

WirePhase phase_of(net::TrafficClass cls) {
  switch (cls) {
    case net::TrafficClass::kData: return WirePhase::kXData;
    case net::TrafficClass::kCoded: return WirePhase::kZCoded;
    default: return WirePhase::kReport;  // any control-accounted phase
  }
}

}  // namespace

HubBackedMedium::HubBackedMedium(std::uint64_t session_id, channel::Rng rng,
                                 net::MacParams params)
    : net::Medium(rng, params), session_id_(session_id) {}

void HubBackedMedium::attach(packet::NodeId node, net::Role role) {
  if (joined_)
    throw std::logic_error(
        "HubBackedMedium: cannot attach after the first transmit");
  if (node.value >= 32)
    throw std::invalid_argument(
        "HubBackedMedium: node id must be < 32 (delivery-mask width)");
  net::Medium::attach(node, role);
  pending_.emplace_back(node.value, role == net::Role::kEavesdropper);
}

std::vector<std::uint8_t> HubBackedMedium::make_attach(std::uint16_t node,
                                                       bool eve) const {
  Frame f;
  f.header.type = static_cast<std::uint8_t>(FrameType::kAttach);
  f.header.session = session_id_;
  f.header.node = node;
  f.header.flags = eve ? kFlagEve : 0;
  f.header.aux = static_cast<std::uint32_t>(pending_.size());
  return encode(f);
}

net::Medium::TxResult HubBackedMedium::transmit(packet::NodeId source,
                                                const packet::Packet& pkt,
                                                net::TrafficClass cls) {
  if (!is_attached(source))
    throw std::invalid_argument("Medium::transmit: unknown source");
  if (!joined_) {
    if (pending_.size() < 2)
      throw std::logic_error("HubBackedMedium: need >= 2 attached nodes");
    std::sort(pending_.begin(), pending_.end());
    mask_order_.clear();
    for (const auto& [id, eve] : pending_) mask_order_.push_back(id);
    join();
    joined_ = true;
  }

  Frame f;
  f.header.type = static_cast<std::uint8_t>(FrameType::kData);
  f.header.flags = kFlagNoRelay;
  f.header.phase = static_cast<std::uint8_t>(phase_of(cls));
  f.header.node = source.value;
  f.header.session = session_id_;
  f.header.round = pkt.round.value;
  // Transport-level sequence: unique per transmit so reliable-broadcast
  // *retries* draw fresh erasures, while ARQ *retransmits* (same seq) hit
  // the hub's ack cache and stay draw-neutral.
  f.header.seq = next_wire_seq_++;
  f.payload = pkt.payload;

  const std::size_t tx_slot = slot();
  const std::uint32_t mask = exchange(encode(f), source.value, f.header.seq);

  TxResult result;
  result.airtime_s = frame_airtime_s(pkt.wire_size());
  for (std::size_t i = 0; i < mask_order_.size(); ++i) {
    if (mask_order_[i] == source.value) continue;
    if ((mask & (1u << i)) != 0)
      result.delivered.insert(packet::NodeId{mask_order_[i]});
  }
  account_transmit(source, pkt, cls, result, tx_slot);
  return result;
}

// ---------------------------------------------------------------- HubMedium

HubMedium::HubMedium(SessionHub& hub, std::uint64_t session_id,
                     channel::Rng rng, net::MacParams params)
    : HubBackedMedium(session_id, rng, params), hub_(hub) {}

std::uint32_t HubMedium::feed_expect(const std::vector<std::uint8_t>& datagram,
                                     FrameType want, std::uint16_t node,
                                     std::uint32_t wire_seq) {
  std::vector<Outgoing> out;
  hub_.on_datagram(datagram, 0.0, out);
  for (const Outgoing& o : out) {
    const DecodeResult d = decode(o.datagram);
    if (!d.frame.has_value()) continue;
    const Frame& f = *d.frame;
    const auto type = static_cast<FrameType>(f.header.type);
    if (type == FrameType::kError)
      throw std::runtime_error("HubMedium: hub error: " +
                               std::string(f.payload.begin(),
                                           f.payload.end()));
    if (type == want && f.header.node == node &&
        (want != FrameType::kTxReport || f.header.seq == wire_seq))
      return f.header.aux;
  }
  throw std::logic_error("HubMedium: hub did not produce the expected reply");
}

void HubMedium::join() {
  // mask_order() is the sorted roster; replay the sorted (node, eve) list.
  const std::vector<packet::NodeId> eves = eavesdroppers();
  for (std::uint16_t id : mask_order()) {
    const bool eve =
        std::find(eves.begin(), eves.end(), packet::NodeId{id}) != eves.end();
    feed_expect(make_attach(id, eve), FrameType::kAttachOk, id, 0);
  }
}

std::uint32_t HubMedium::exchange(const std::vector<std::uint8_t>& datagram,
                                  std::uint16_t node,
                                  std::uint32_t wire_seq) {
  return feed_expect(datagram, FrameType::kTxReport, node, wire_seq);
}

// ------------------------------------------------------------- SocketMedium

SocketMedium::SocketMedium(std::string host, std::uint16_t port,
                           std::uint64_t session_id, channel::Rng rng,
                           net::MacParams params, double rto_s,
                           double deadline_s)
    : HubBackedMedium(session_id, rng, params),
      // Wildcard bind: `host` may be another box, and a loopback-bound
      // socket cannot send off-box.
      socket_(UdpSocket::bind("0.0.0.0", 0)),
      daemon_(make_addr(host, port)),
      rto_s_(rto_s),
      deadline_s_(deadline_s) {}

std::uint32_t SocketMedium::await(const std::vector<std::uint8_t>& datagram,
                                  FrameType want, std::uint16_t node,
                                  std::uint32_t wire_seq) {
  const double start = monotonic_s();
  double last_send = -1.0;
  std::vector<std::uint8_t> buf;
  sockaddr_in from{};
  while (true) {
    const double now = monotonic_s();
    if (now - start > deadline_s_)
      throw std::runtime_error("SocketMedium: daemon unreachable (deadline)");
    if (last_send < 0.0 || now - last_send >= rto_s_) {
      (void)socket_.send_to(daemon_, datagram);
      last_send = now;
    }
    if (!socket_.wait_readable(5)) continue;
    while (socket_.recv_from(buf, from)) {
      const DecodeResult d = decode(buf);
      if (!d.frame.has_value()) continue;
      const Frame& f = *d.frame;
      if (f.header.session != session_id()) continue;
      const auto type = static_cast<FrameType>(f.header.type);
      if (type == FrameType::kError)
        throw std::runtime_error("SocketMedium: hub error: " +
                                 std::string(f.payload.begin(),
                                             f.payload.end()));
      if (type == FrameType::kExpired)
        throw std::runtime_error("SocketMedium: session expired at hub");
      if (type == want && f.header.node == node &&
          (want != FrameType::kTxReport || f.header.seq == wire_seq))
        return f.header.aux;
    }
  }
}

void SocketMedium::join() {
  const std::vector<packet::NodeId> eves = eavesdroppers();
  for (std::uint16_t id : mask_order()) {
    const bool eve =
        std::find(eves.begin(), eves.end(), packet::NodeId{id}) != eves.end();
    await(make_attach(id, eve), FrameType::kAttachOk, id, 0);
  }
}

std::uint32_t SocketMedium::exchange(const std::vector<std::uint8_t>& datagram,
                                     std::uint16_t node,
                                     std::uint32_t wire_seq) {
  return await(datagram, FrameType::kTxReport, node, wire_seq);
}

}  // namespace thinair::netd
