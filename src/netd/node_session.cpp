#include "netd/node_session.h"

#include <algorithm>
#include <utility>

#include "core/estimator.h"
#include "core/phase1.h"
#include "core/phase2.h"
#include "core/pool.h"
#include "net/trace.h"

namespace thinair::netd {

namespace {

/// Upper bound on N accepted from the wire (sanity, not a protocol limit).
constexpr std::uint32_t kMaxUniverse = 4096;

}  // namespace

NodeSession::NodeSession(NodeConfig config)
    : config_(config), payload_rng_(config.payload_seed) {
  reset(config);
}

void NodeSession::reset(NodeConfig config) {
  config_ = config;
  state_ = State::kIdle;
  error_.clear();
  payload_rng_ = channel::Rng(config.payload_seed);
  // Keep the arena's blocks for the next lifecycle; the watermark trim
  // stops one oversized session from pinning its peak.
  arena_.reset();
  arena_.trim_to_watermark();
  queue_.clear();
  inflight_.reset();
  inflight_wire_.clear();
  last_send_s_ = 0.0;
  retries_ = 0;
  outbox_.clear();
  next_relay_ = 0;
  pending_relays_.clear();
  last_rx_s_ = 0.0;
  last_probe_s_ = 0.0;
  attached_ = false;
  roster_.clear();
  round_ = 0;
  round_active_ = false;
  rx_.clear();
  alice_.reset();
  secret_.clear();
  if (config_.node >= 64) fail("node id must be < 64 (NodeSet range)");
  if (config_.members < 2) fail("need at least 2 members");
  if (config_.payload_bytes == 0 || config_.payload_bytes > kMaxPayload)
    fail("payload_bytes out of range");
  if (config_.x_packets_per_round == 0 ||
      config_.x_packets_per_round > kMaxUniverse)
    fail("x_packets_per_round out of range");
}

void NodeSession::fail(std::string why) {
  if (state_ == State::kFailed) return;
  state_ = State::kFailed;
  error_ = std::move(why);
  queue_.clear();
  inflight_.reset();
  outbox_.clear();
}

void NodeSession::queue_frame(Frame f) {
  f.header.session = config_.session_id;
  f.header.node = config_.node;
  queue_.push_back(std::move(f));
}

void NodeSession::send_immediate(const Frame& f) {
  Frame out = f;
  out.header.session = config_.session_id;
  out.header.node = config_.node;
  outbox_.push_back(encode(out));
}

void NodeSession::start(double now_s) {
  if (state_ != State::kIdle) return;
  state_ = State::kJoining;
  Frame attach;
  attach.header.type = static_cast<std::uint8_t>(FrameType::kAttach);
  attach.header.aux = config_.members;
  queue_frame(std::move(attach));
  last_rx_s_ = now_s;
  pump(now_s);
}

void NodeSession::pump(double now_s) {
  if (state_ == State::kFailed || state_ == State::kDone) return;
  if (!inflight_.has_value() && !queue_.empty()) {
    inflight_ = std::move(queue_.front());
    queue_.pop_front();
    inflight_wire_ = encode(*inflight_);
    outbox_.push_back(inflight_wire_);
    last_send_s_ = now_s;
    retries_ = 0;
  }
}

bool NodeSession::poll_datagram(std::vector<std::uint8_t>& out) {
  if (outbox_.empty()) return false;
  out = std::move(outbox_.front());
  outbox_.pop_front();
  return true;
}

void NodeSession::on_tick(double now_s) {
  if (state_ == State::kFailed || state_ == State::kDone ||
      state_ == State::kIdle)
    return;
  if (inflight_.has_value() && now_s - last_send_s_ >= config_.rto_s) {
    if (++retries_ > config_.max_retries) {
      fail("ARQ retries exhausted");
      return;
    }
    outbox_.push_back(inflight_wire_);
    last_send_s_ = now_s;
  }
  // Join probe: the hub sends kReady exactly once per member, and that one
  // datagram has no ARQ of its own. If it is lost, re-send the kAttach —
  // the hub treats a repeat attach as an idempotent replay and re-sends
  // kReady once the roster is complete.
  if (state_ == State::kJoining && attached_ && !inflight_.has_value() &&
      now_s - last_rx_s_ >= config_.probe_s &&
      now_s - last_probe_s_ >= config_.probe_s) {
    Frame attach;
    attach.header.type = static_cast<std::uint8_t>(FrameType::kAttach);
    attach.header.aux = config_.members;
    send_immediate(attach);
    last_probe_s_ = now_s;
  }
  // Idle probe: a kNack carrying the next expected relay seq. The hub
  // resends anything newer we lost; if nothing is newer it ignores the
  // probe. This is what un-wedges a round whose *final* relay was lost.
  if (state_ == State::kRunning && !inflight_.has_value() &&
      now_s - last_rx_s_ >= config_.probe_s &&
      now_s - last_probe_s_ >= config_.probe_s) {
    Frame probe;
    probe.header.type = static_cast<std::uint8_t>(FrameType::kNack);
    probe.header.aux = next_relay_;
    send_immediate(probe);
    last_probe_s_ = now_s;
  }
  pump(now_s);
}

void NodeSession::on_datagram(std::span<const std::uint8_t> bytes,
                              double now_s) {
  if (state_ == State::kFailed || state_ == State::kDone) return;
  DecodeResult decoded = decode(bytes);
  if (!decoded.frame.has_value()) return;  // not ours / corrupt: drop
  const Frame& f = *decoded.frame;
  if (f.header.session != config_.session_id) return;
  last_rx_s_ = now_s;
  on_hub_frame(f, now_s);
  pump(now_s);
}

void NodeSession::on_hub_frame(const Frame& f, double now_s) {
  const auto type = static_cast<FrameType>(f.header.type);
  switch (type) {
    case FrameType::kAttachOk:
      if (inflight_.has_value() &&
          inflight_->header.type ==
              static_cast<std::uint8_t>(FrameType::kAttach)) {
        inflight_.reset();
        attached_ = true;
        maybe_start_round(now_s);
      }
      return;
    case FrameType::kReady: {
      // Payload: u16 count, then per member u16 id + u8 flags.
      const auto& p = f.payload;
      if (p.size() < 2) return fail("malformed kReady");
      const std::size_t count = p[0] | (p[1] << 8);
      if (p.size() != 2 + count * 3) return fail("malformed kReady");
      std::vector<std::uint16_t> terminals;
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint16_t id = static_cast<std::uint16_t>(
            p[2 + i * 3] | (p[3 + i * 3] << 8));
        const bool eve = (p[4 + i * 3] & kFlagEve) != 0;
        if (!eve) terminals.push_back(id);
      }
      if (terminals.size() < 2) return fail("roster has < 2 terminals");
      if (std::find(terminals.begin(), terminals.end(), config_.node) ==
          terminals.end())
        return fail("roster does not contain this node");
      roster_ = std::move(terminals);  // std::map order: already ascending
      maybe_start_round(now_s);
      drain_relays(now_s);  // relays that overtook this kReady
      return;
    }
    case FrameType::kTxReport:
      if (inflight_.has_value() &&
          inflight_->header.type ==
              static_cast<std::uint8_t>(FrameType::kData) &&
          inflight_->header.phase == f.header.phase &&
          inflight_->header.round == f.header.round &&
          inflight_->header.seq == f.header.seq)
        inflight_.reset();
      return;
    case FrameType::kCtrlAck:
      if (inflight_.has_value() &&
          inflight_->header.type ==
              static_cast<std::uint8_t>(FrameType::kCtrl) &&
          inflight_->header.phase == f.header.phase &&
          inflight_->header.round == f.header.round &&
          inflight_->header.seq == f.header.seq)
        inflight_.reset();
      return;
    case FrameType::kBye:
      if (state_ == State::kClosing) {
        inflight_.reset();
        state_ = State::kDone;
      }
      return;
    case FrameType::kRelay:
      on_relay(f, now_s);
      return;
    case FrameType::kError:
      fail("hub error: " + std::string(f.payload.begin(), f.payload.end()));
      return;
    case FrameType::kExpired:
      fail("session expired at hub");
      return;
    default:
      return;  // client-origin types echoed back: noise
  }
}

void NodeSession::on_relay(const Frame& f, double now_s) {
  const std::uint32_t seq = f.header.aux;
  if (seq < next_relay_) return;  // duplicate
  // Hold relays until the roster is known: a relay can overtake the single
  // kReady datagram (UDP reorders, or kReady is lost outright) and
  // deliver() needs the roster to attribute frames to the round's Alice.
  if (roster_.empty()) {
    pending_relays_.emplace(seq, f);
    return;
  }
  if (seq > next_relay_) {
    // Gap: buffer and ask the hub to resend from the first missing seq.
    pending_relays_.emplace(seq, f);
    if (now_s - last_probe_s_ >= config_.rto_s / 2.0) {
      Frame nack;
      nack.header.type = static_cast<std::uint8_t>(FrameType::kNack);
      nack.header.aux = next_relay_;
      send_immediate(nack);
      last_probe_s_ = now_s;
    }
    return;
  }
  deliver(f, now_s);
  ++next_relay_;
  drain_relays(now_s);
}

void NodeSession::drain_relays(double now_s) {
  if (roster_.empty()) return;
  auto it = pending_relays_.begin();
  while (it != pending_relays_.end() && state_ != State::kFailed) {
    if (it->first < next_relay_) {
      it = pending_relays_.erase(it);
      continue;
    }
    if (it->first != next_relay_) break;
    deliver(it->second, now_s);
    ++next_relay_;
    it = pending_relays_.erase(it);
  }
}

void NodeSession::deliver(const Frame& f, double now_s) {
  // A relayed frame preserves the original sender's phase/round/seq; the
  // original type is recovered from the phase (kXData came in as kData,
  // everything else as kCtrl).
  const auto phase = static_cast<WirePhase>(f.header.phase);
  const std::uint32_t round = f.header.round;
  if (round >= total_rounds() && state_ == State::kRunning)
    return;  // stray frame past the agreed horizon
  if (phase == WirePhase::kXData) {
    if (f.header.node != alice_of(round)) return;
    RoundRx& rr = rx_[round];
    if (f.payload.size() != config_.payload_bytes) return;
    rr.x.emplace(f.header.seq, f.payload);
    return;
  }
  on_ctrl(f, now_s);
}

void NodeSession::on_ctrl(const Frame& f, double now_s) {
  const auto phase = static_cast<WirePhase>(f.header.phase);
  const std::uint32_t round = f.header.round;
  const bool from_alice = f.header.node == alice_of(round);

  switch (phase) {
    case WirePhase::kEndOfX: {
      if (!from_alice) return;
      RoundRx& rr = rx_[round];
      if (f.payload.size() != 4) return fail("malformed kEndOfX");
      const std::uint32_t n = static_cast<std::uint32_t>(f.payload[0]) |
                              (static_cast<std::uint32_t>(f.payload[1]) << 8) |
                              (static_cast<std::uint32_t>(f.payload[2]) << 16) |
                              (static_cast<std::uint32_t>(f.payload[3]) << 24);
      if (n == 0 || n > kMaxUniverse) return fail("bad universe in kEndOfX");
      rr.universe = n;
      if (rr.reported) return;
      rr.reported = true;
      packet::ReceptionReport report;
      report.universe = n;
      for (const auto& [seq, payload] : rr.x)
        if (seq < n) report.received.push_back(seq);
      Frame rf;
      rf.header.type = static_cast<std::uint8_t>(FrameType::kCtrl);
      rf.header.phase = static_cast<std::uint8_t>(WirePhase::kReport);
      rf.header.round = round;
      rf.payload = packet::encode(report);
      queue_frame(std::move(rf));
      return;
    }
    case WirePhase::kReport: {
      // Only the round's Alice consumes peer reports.
      if (alice_of(round) != config_.node || !alice_.has_value() ||
          round_ != round)
        return;
      auto decoded = packet::decode_report(f.payload);
      if (!decoded.has_value()) return fail("undecodable reception report");
      if (decoded->universe != config_.x_packets_per_round)
        return fail("report universe mismatch (got " +
                    std::to_string(decoded->universe) + ", expected " +
                    std::to_string(config_.x_packets_per_round) + ")");
      alice_->reports.emplace(f.header.node, std::move(*decoded));
      if (alice_->reports.size() == roster_.size() - 1)
        finish_alice_round(now_s);
      return;
    }
    case WirePhase::kYAnnouncement: {
      if (!from_alice) return;
      auto decoded = packet::decode_announcement(f.payload);
      if (!decoded.has_value()) return fail("undecodable y-announcement");
      rx_[round].y_ann = std::move(*decoded);
      return;
    }
    case WirePhase::kZCoded: {
      if (!from_alice) return;
      if (f.payload.size() != config_.payload_bytes)
        return fail("z payload size mismatch");
      rx_[round].z.emplace(f.header.seq, f.payload);
      return;
    }
    case WirePhase::kSAnnouncement: {
      if (!from_alice) return;
      auto decoded = packet::decode_announcement(f.payload);
      if (!decoded.has_value()) return fail("undecodable s-announcement");
      finish_receiver_round(round, *decoded, now_s);
      return;
    }
    default:
      return;
  }
}

void NodeSession::maybe_start_round(double now_s) {
  if (state_ == State::kJoining && attached_ && !roster_.empty())
    state_ = State::kRunning;
  if (state_ != State::kRunning || round_active_) return;
  if (round_ >= total_rounds()) {
    state_ = State::kClosing;
    Frame bye;
    bye.header.type = static_cast<std::uint8_t>(FrameType::kBye);
    queue_frame(std::move(bye));
    return;
  }
  round_active_ = true;
  if (alice_of(round_) == config_.node) start_alice_round(now_s);
  // Receivers are stream-driven: nothing to do until relays arrive.
}

void NodeSession::start_alice_round(double /*now_s*/) {
  const std::size_t n = config_.x_packets_per_round;
  alice_.emplace();
  alice_->x.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto& payload = alice_->x[i];
    payload.resize(config_.payload_bytes);
    for (auto& b : payload) b = payload_rng_.next_byte();
    Frame f;
    f.header.type = static_cast<std::uint8_t>(FrameType::kData);
    f.header.phase = static_cast<std::uint8_t>(WirePhase::kXData);
    f.header.round = round_;
    f.header.seq = static_cast<std::uint32_t>(i);
    f.payload = payload;
    queue_frame(std::move(f));
  }
  Frame end;
  end.header.type = static_cast<std::uint8_t>(FrameType::kCtrl);
  end.header.phase = static_cast<std::uint8_t>(WirePhase::kEndOfX);
  end.header.round = round_;
  // N travels in the payload: relays repurpose aux for the stream seq.
  const auto n32 = static_cast<std::uint32_t>(n);
  end.payload = {static_cast<std::uint8_t>(n32),
                 static_cast<std::uint8_t>(n32 >> 8),
                 static_cast<std::uint8_t>(n32 >> 16),
                 static_cast<std::uint8_t>(n32 >> 24)};
  queue_frame(std::move(end));
}

void NodeSession::finish_alice_round(double now_s) {
  const std::size_t n = config_.x_packets_per_round;
  const std::size_t payload = config_.payload_bytes;
  arena_.reset();

  std::vector<packet::NodeId> receivers;
  for (std::uint16_t id : roster_)
    if (id != config_.node) receivers.push_back(packet::NodeId{id});
  core::ReceptionTable table(packet::NodeId{config_.node}, receivers, n);
  for (const auto& [id, report] : alice_->reports)
    table.set_received(packet::NodeId{id}, report.received);

  // The daemon path has no oracle and no interference schedule, so size
  // the secret with the paper's empirical strategy (loo-fraction).
  core::EstimatorSpec spec;
  spec.kind = core::EstimatorKind::kLooFraction;
  const auto estimator = core::build_estimator(spec, table, {});
  const core::Phase1Result phase1 = core::run_phase1(table, *estimator);
  const core::YPool& pool = phase1.build.pool;
  const core::Phase2Plan plan = core::plan_phase2(pool);

  std::vector<packet::ConstByteSpan> x_spans(alice_->x.begin(),
                                             alice_->x.end());
  const std::vector<packet::ConstByteSpan> y_contents =
      core::all_y_contents(pool, x_spans, payload, arena_);
  const std::vector<packet::ConstByteSpan> z_payloads =
      plan.h.rows() > 0
          ? core::make_z_payloads(plan, y_contents, payload, arena_)
          : std::vector<packet::ConstByteSpan>{};

  Frame ya;
  ya.header.type = static_cast<std::uint8_t>(FrameType::kCtrl);
  ya.header.phase = static_cast<std::uint8_t>(WirePhase::kYAnnouncement);
  ya.header.round = round_;
  ya.payload = packet::encode(phase1.announcement);
  if (ya.payload.size() > kMaxPayload)
    return fail("y-announcement exceeds frame cap (reduce N)");
  queue_frame(std::move(ya));

  for (std::size_t zi = 0; zi < z_payloads.size(); ++zi) {
    Frame zf;
    zf.header.type = static_cast<std::uint8_t>(FrameType::kCtrl);
    zf.header.phase = static_cast<std::uint8_t>(WirePhase::kZCoded);
    zf.header.round = round_;
    zf.header.seq = static_cast<std::uint32_t>(zi);
    zf.payload.assign(z_payloads[zi].begin(), z_payloads[zi].end());
    queue_frame(std::move(zf));
  }

  Frame sa;
  sa.header.type = static_cast<std::uint8_t>(FrameType::kCtrl);
  sa.header.phase = static_cast<std::uint8_t>(WirePhase::kSAnnouncement);
  sa.header.round = round_;
  sa.payload = packet::encode(plan.s_announcement);
  if (sa.payload.size() > kMaxPayload)
    return fail("s-announcement exceeds frame cap (reduce N)");
  queue_frame(std::move(sa));

  if (plan.group_size > 0) {
    const std::vector<packet::ConstByteSpan> s_payloads =
        core::make_s_payloads(plan, y_contents, payload, arena_);
    for (const packet::ConstByteSpan s : s_payloads)
      secret_.insert(secret_.end(), s.begin(), s.end());
  }
  alice_.reset();
  round_complete(now_s);
}

void NodeSession::finish_receiver_round(std::uint32_t round,
                                        const packet::Announcement& s_ann,
                                        double now_s) {
  auto it = rx_.find(round);
  if (it == rx_.end() || !it->second.y_ann.has_value())
    return fail("s-announcement before y-announcement");
  RoundRx& rr = it->second;
  const std::size_t payload = config_.payload_bytes;
  const std::uint32_t n = rr.universe;
  if (n == 0) return fail("s-announcement before kEndOfX");

  const std::size_t m = rr.y_ann->combinations.size();
  const std::size_t l = s_ann.combinations.size();
  if (l > m) return fail("announced L > M");

  // Rebuild Alice's plan from public sizes alone, and the own pool view
  // from the y identities: this terminal can reconstruct y_j iff the
  // combination's support lies inside its reception set.
  const core::Phase2Plan plan = core::plan_phase2(m, l);
  if (rr.z.size() != plan.h.rows() ||
      (!rr.z.empty() && rr.z.rbegin()->first != rr.z.size() - 1))
    return fail("z-packet set incomplete at s-announcement");

  if (l > 0) {
    arena_.reset();
    const packet::NodeId self{config_.node};
    core::YPool pool(n, {self});
    for (const packet::Combination& combo : rr.y_ann->combinations) {
      bool have_all = true;
      for (const packet::Term& t : combo.terms()) {
        if (t.index >= n) return fail("y combination index out of range");
        if (!rr.x.contains(t.index)) have_all = false;
      }
      net::NodeSet audience;
      if (have_all && !combo.empty()) audience.insert(self);
      pool.add({combo, audience});
    }

    std::vector<packet::ConstByteSpan> x_spans(n);
    for (const auto& [seq, bytes] : rr.x)
      if (seq < n) x_spans[seq] = bytes;

    std::vector<packet::ConstByteSpan> z_spans;
    z_spans.reserve(rr.z.size());
    for (const auto& [seq, bytes] : rr.z) z_spans.push_back(bytes);

    try {
      const auto own_y =
          core::reconstruct_y(pool, self, x_spans, payload, arena_);
      const auto full_y =
          core::recover_all_y(plan, own_y, z_spans, payload, arena_);
      const auto own_s =
          core::make_s_payloads(plan, full_y, payload, arena_);
      for (const packet::ConstByteSpan s : own_s)
        secret_.insert(secret_.end(), s.begin(), s.end());
    } catch (const std::exception& e) {
      return fail(std::string("secret reconstruction failed: ") + e.what());
    }
  }

  rx_.erase(it);
  round_complete(now_s);
}

void NodeSession::round_complete(double now_s) {
  ++round_;
  round_active_ = false;
  maybe_start_round(now_s);
}

}  // namespace thinair::netd
