#pragma once
// The thinaird wire protocol: a fixed 32-byte little-endian frame header
// followed by an optional payload, carried one frame per UDP datagram.
//
// The daemon plays the paper's broadcast medium over real sockets, so the
// frame header carries exactly what the medium seam needs to route and
// account a transmission: which session, which node, which protocol phase,
// which round, and a sequence number — plus an `aux` word whose meaning
// depends on the frame type (delivery mask for kTxReport, relay stream
// position for kRelay, first missing relay seq for kNack).
//
// Decoding is strict and total: decode() never reads out of bounds, never
// throws, and classifies every malformed input (short header, bad magic or
// version, unknown type, length mismatch with the datagram, oversized
// payload) — the fuzz suite in tests/wire_test.cpp holds it to that under
// ASan/UBSan.

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace thinair::netd {

inline constexpr std::uint16_t kMagic = 0x5441;  // "TA" little-endian
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kHeaderSize = 32;
/// Hard cap on payload bytes per frame: one frame per UDP datagram. Sized
/// for combination announcements (the largest control payload — M combos
/// of up to N 5-byte terms each); well under the 64 KiB UDP limit, though
/// frames past ~1.4 KiB will IP-fragment off loopback.
inline constexpr std::size_t kMaxPayload = 8192;

/// Every kind of frame the daemon or a client can emit.
enum class FrameType : std::uint8_t {
  kAttach = 0,    // client -> hub: join a session (payload: AttachRequest)
  kAttachOk = 1,  // hub -> client: attach accepted (aux = members so far)
  kReady = 2,     // hub -> client: roster complete (payload: member ids)
  kData = 3,      // client -> hub: lossy broadcast (erasure-drawn relay)
  kTxReport = 4,  // hub -> sender: kData accounted (aux = delivered mask)
  kCtrl = 5,      // client -> hub: reliable broadcast (relayed to all)
  kCtrlAck = 6,   // hub -> sender: kCtrl accepted and relayed
  kRelay = 7,     // hub -> peer: relayed frame (aux = per-member relay seq)
  kNack = 8,      // client -> hub: relay gap (aux = first missing seq)
  kBye = 9,       // client -> hub: done with the session
  kError = 10,    // hub -> client: protocol violation (payload: message)
  kExpired = 11,  // hub -> client: session idle-expired
};
inline constexpr std::uint8_t kMaxFrameType = 11;

/// Protocol phase of a relayed frame, so a receiving state machine can
/// dispatch without decoding payloads it does not expect.
enum class WirePhase : std::uint8_t {
  kXData = 0,          // phase 1 step 1: an x-packet payload
  kReport = 1,         // phase 1 step 2: a reception report
  kYAnnouncement = 2,  // phase 1 step 3: y identities
  kSAnnouncement = 3,  // phase 2 step 3: s identities
  kZCoded = 4,         // phase 2 step 1: a z-packet payload
  kEndOfX = 5,         // Alice's end-of-x marker (payload = u32 universe N;
                       // relays repurpose aux for the stream seq)
};

/// Header flag bits.
inline constexpr std::uint8_t kFlagEve = 0x01;      // attach as eavesdropper
inline constexpr std::uint8_t kFlagNoRelay = 0x02;  // kData: draw + account
                                                    // only, do not relay

struct FrameHeader {
  std::uint16_t magic = kMagic;
  std::uint8_t version = kVersion;
  std::uint8_t type = 0;   // FrameType
  std::uint8_t flags = 0;  // kFlag* bits
  std::uint8_t phase = 0;  // WirePhase (kData/kCtrl/kRelay frames)
  std::uint16_t node = 0;  // sender's node id (client->hub) or relay source
  std::uint64_t session = 0;
  std::uint32_t round = 0;
  std::uint32_t seq = 0;  // per-(phase, round) packet sequence
  std::uint32_t aux = 0;  // type-dependent (see FrameType)
  std::uint16_t payload_len = 0;
  std::uint16_t reserved = 0;

  friend bool operator==(const FrameHeader&, const FrameHeader&) = default;
};

struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;

  friend bool operator==(const Frame&, const Frame&) = default;
};

enum class DecodeError : std::uint8_t {
  kNone = 0,
  kTooShort,        // datagram shorter than the fixed header
  kBadMagic,        // first two bytes are not kMagic
  kBadVersion,      // version byte != kVersion
  kBadType,         // type byte > kMaxFrameType
  kLengthMismatch,  // payload_len != datagram size - header size
  kOversized,       // payload_len > kMaxPayload
};

[[nodiscard]] std::string_view to_string(DecodeError e);

struct DecodeResult {
  std::optional<Frame> frame;  // engaged iff error == kNone
  DecodeError error = DecodeError::kNone;
};

/// Serialize a frame into one datagram. header.payload_len is taken from
/// payload.size() (the field value in `header` is ignored). Throws
/// std::invalid_argument when the payload exceeds kMaxPayload.
[[nodiscard]] std::vector<std::uint8_t> encode(const Frame& frame);

/// Parse one datagram. Total: never throws, never reads out of bounds.
[[nodiscard]] DecodeResult decode(std::span<const std::uint8_t> datagram);

}  // namespace thinair::netd
