#include "netd/daemon.h"

#include <chrono>

namespace thinair::netd {

namespace {

double monotonic_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Daemon::Daemon(DaemonConfig config)
    : config_(std::move(config)),
      socket_(UdpSocket::bind(config_.host, config_.port)),
      hub_(config_.hub) {
  poller_.add(socket_.fd());
}

void Daemon::flush(std::vector<Outgoing>& out) {
  for (const Outgoing& o : out) {
    const auto it = peers_.find(PeerKey{o.session, o.node});
    if (it == peers_.end()) continue;  // member never spoke: nowhere to send
    (void)socket_.send_to(it->second, o.datagram);
  }
  out.clear();
}

void Daemon::run(const std::function<void()>& on_ready) {
  // One loop thread at a time: claim the loop role for the body so every
  // peer-book touch below is statically tied to this region.
  util::RoleLock role(&loop_role_);
  if (on_ready) on_ready();

  std::vector<int> ready;
  std::vector<std::uint8_t> buf;
  std::vector<Outgoing> out;
  sockaddr_in from{};
  double last_tick = monotonic_s();
  double last_prune = last_tick;

  while (!stop_.load(std::memory_order_relaxed)) {
    ready.clear();
    // Short timeout so stop() and the expiry wheel are serviced promptly
    // even on a silent socket.
    poller_.wait(50, ready);

    const double now = monotonic_s();
    if (!ready.empty()) {
      // Drain until EAGAIN (level-triggered wake, non-blocking socket).
      while (socket_.recv_from(buf, from)) {
        // Learn/refresh the sender's address before the hub replies to it.
        const DecodeResult peek = decode(buf);
        if (!peek.frame.has_value()) {
          hub_.on_datagram(buf, now, out);  // counts the decode error
          continue;
        }
        const PeerKey key{peek.frame->header.session,
                          peek.frame->header.node};
        peers_[key] = from;
        hub_.on_datagram(buf, now, out);
        flush(out);
        // Keep the entry only while the hub tracks the session: frames for
        // rejected or unknown sessions (spoofed floods included) must not
        // grow the peer book between prunes. The reply, if any, already
        // went out above.
        if (hub_.session_ledger(key.session) == nullptr) peers_.erase(key);
      }
    }
    if (now - last_tick >= 0.1) {
      hub_.on_tick(now, out);
      flush(out);
      last_tick = now;
    }
    if (now - last_prune >= 5.0) {
      // Drop peer-book entries whose session the hub has since closed.
      for (auto it = peers_.begin(); it != peers_.end();)
        it = hub_.session_ledger(it->first.session) == nullptr
                 ? peers_.erase(it)
                 : std::next(it);
      last_prune = now;
    }
  }
}

}  // namespace thinair::netd
