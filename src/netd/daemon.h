#pragma once
// thinaird: the UDP face of the session hub.
//
// A single-threaded event loop: one UDP socket, one Poller (epoll with a
// poll fallback), one SessionHub. Datagrams in, hub-addressed datagrams
// out; the daemon's only transport state is the peer book mapping
// (session, node) -> last-seen source address, learned from each client
// frame. Idle-session expiry runs on the hub's timer wheel, driven by a
// monotonic clock sampled once per loop iteration.
//
// The loop is embeddable (tests and the bench run it on a background
// thread via stop()/run(); the CLI runs it on the main thread until
// SIGINT/SIGTERM).

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "netd/hub.h"
#include "netd/poller.h"
#include "netd/udp.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace thinair::netd {

struct DaemonConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = kernel-assigned (see Daemon::port())
  HubConfig hub;
};

class Daemon {
 public:
  /// Binds the socket immediately (throws std::system_error on failure).
  explicit Daemon(DaemonConfig config);

  /// Run the event loop until stop() is called. `on_ready`, when set, is
  /// invoked once the loop is about to enter service (after binding).
  void run(const std::function<void()>& on_ready = {});

  /// Ask a running loop to exit; safe from other threads/signal context.
  void stop() { stop_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] std::uint16_t port() const { return socket_.local_port(); }
  [[nodiscard]] const SessionHub& hub() const { return hub_; }
  [[nodiscard]] bool using_epoll() const { return poller_.using_epoll(); }

 private:
  void flush(std::vector<Outgoing>& out) THINAIR_REQUIRES(loop_role_);

  DaemonConfig config_;
  UdpSocket socket_;
  Poller poller_;
  SessionHub hub_;  // internally locked (thread-safe for monitors)
  // The peer book belongs to the event-loop thread alone: run() claims
  // loop_role_ for its whole body, so any new code path touching peers_
  // from outside the loop fails -Wthread-safety instead of racing. The
  // only cross-thread entry points are stop() (atomic flag) and the
  // const accessors above, none of which reach loop state.
  util::Role loop_role_;
  std::map<PeerKey, sockaddr_in> peers_ THINAIR_GUARDED_BY(loop_role_);
  std::atomic<bool> stop_{false};
};

}  // namespace thinair::netd
