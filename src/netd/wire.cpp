#include "netd/wire.h"

#include <cstring>
#include <stdexcept>

namespace thinair::netd {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

std::string_view to_string(DecodeError e) {
  switch (e) {
    case DecodeError::kNone: return "none";
    case DecodeError::kTooShort: return "too-short";
    case DecodeError::kBadMagic: return "bad-magic";
    case DecodeError::kBadVersion: return "bad-version";
    case DecodeError::kBadType: return "bad-type";
    case DecodeError::kLengthMismatch: return "length-mismatch";
    case DecodeError::kOversized: return "oversized";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode(const Frame& frame) {
  if (frame.payload.size() > kMaxPayload)
    throw std::invalid_argument("netd::encode: payload exceeds kMaxPayload");

  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + frame.payload.size());
  const FrameHeader& h = frame.header;
  put_u16(out, h.magic);
  out.push_back(h.version);
  out.push_back(h.type);
  out.push_back(h.flags);
  out.push_back(h.phase);
  put_u16(out, h.node);
  put_u64(out, h.session);
  put_u32(out, h.round);
  put_u32(out, h.seq);
  put_u32(out, h.aux);
  put_u16(out, static_cast<std::uint16_t>(frame.payload.size()));
  put_u16(out, h.reserved);
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  return out;
}

DecodeResult decode(std::span<const std::uint8_t> datagram) {
  if (datagram.size() < kHeaderSize)
    return {std::nullopt, DecodeError::kTooShort};

  const std::uint8_t* p = datagram.data();
  FrameHeader h;
  h.magic = get_u16(p);
  if (h.magic != kMagic) return {std::nullopt, DecodeError::kBadMagic};
  h.version = p[2];
  if (h.version != kVersion) return {std::nullopt, DecodeError::kBadVersion};
  h.type = p[3];
  if (h.type > kMaxFrameType) return {std::nullopt, DecodeError::kBadType};
  h.flags = p[4];
  h.phase = p[5];
  h.node = get_u16(p + 6);
  h.session = get_u64(p + 8);
  h.round = get_u32(p + 16);
  h.seq = get_u32(p + 20);
  h.aux = get_u32(p + 24);
  h.payload_len = get_u16(p + 28);
  h.reserved = get_u16(p + 30);

  if (h.payload_len > kMaxPayload)
    return {std::nullopt, DecodeError::kOversized};
  if (static_cast<std::size_t>(h.payload_len) != datagram.size() - kHeaderSize)
    return {std::nullopt, DecodeError::kLengthMismatch};

  Frame frame;
  frame.header = h;
  frame.payload.assign(datagram.begin() + kHeaderSize, datagram.end());
  return {std::move(frame), DecodeError::kNone};
}

}  // namespace thinair::netd
