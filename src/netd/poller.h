#pragma once
// Readiness polling for the daemon's event loop: epoll on Linux, with a
// portable poll(2) fallback selected at build time (or at runtime when
// epoll_create1 fails, e.g. under exotic sandboxes). The daemon is
// single-threaded and level-triggered: wait() returns the readable fds
// and the loop drains each with non-blocking reads until EAGAIN.

#include <cstdint>
#include <vector>

namespace thinair::netd {

class Poller {
 public:
  Poller();
  ~Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  /// Register `fd` for readability. Throws std::system_error on failure.
  void add(int fd);
  void remove(int fd);

  /// Block up to `timeout_ms` (-1 = forever) and append every readable fd
  /// to `ready`. Returns the number appended (0 on timeout).
  std::size_t wait(int timeout_ms, std::vector<int>& ready);

  /// True when the epoll backend is active (false = poll fallback).
  [[nodiscard]] bool using_epoll() const { return epoll_fd_ >= 0; }

 private:
  int epoll_fd_ = -1;           // -1 = poll(2) fallback
  std::vector<int> fallback_;   // registered fds for the fallback
};

}  // namespace thinair::netd
