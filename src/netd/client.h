#pragma once
// Blocking client runner: drives one NodeSession over a real UDP socket
// until the key agreement completes (or fails / times out). This is what
// `thinair client` runs — one process, one terminal, one socket.

#include <cstdint>
#include <string>
#include <vector>

#include "netd/node_session.h"

namespace thinair::netd {

struct ClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  NodeConfig node;
  double deadline_s = 30.0;  // overall wall-clock budget
};

struct ClientResult {
  bool ok = false;
  std::string error;
  std::vector<std::uint8_t> secret;
  std::size_t rounds = 0;
};

/// Run the session to completion. Never throws on protocol failures
/// (reported in the result); throws std::system_error on socket setup
/// failures.
[[nodiscard]] ClientResult run_client(const ClientConfig& config);

}  // namespace thinair::netd
