#include "netd/poller.h"

#include <cerrno>
#include <cstring>
#include <system_error>

#include <poll.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#define THINAIR_HAVE_EPOLL 1
#else
#define THINAIR_HAVE_EPOLL 0
#endif

namespace thinair::netd {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

Poller::Poller() {
#if THINAIR_HAVE_EPOLL
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  // epoll failing is survivable: fall back to poll(2).
#endif
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void Poller::add(int fd) {
#if THINAIR_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0)
      throw_errno("epoll_ctl(ADD)");
    return;
  }
#endif
  fallback_.push_back(fd);
}

void Poller::remove(int fd) {
#if THINAIR_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    (void)epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &ev);
    return;
  }
#endif
  std::erase(fallback_, fd);
}

std::size_t Poller::wait(int timeout_ms, std::vector<int>& ready) {
#if THINAIR_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    epoll_event events[64];
    const int n = epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return 0;
      throw_errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) ready.push_back(events[i].data.fd);
    return static_cast<std::size_t>(n);
  }
#endif
  std::vector<pollfd> fds;
  fds.reserve(fallback_.size());
  for (int fd : fallback_) fds.push_back({fd, POLLIN, 0});
  const int n = ::poll(fds.data(), fds.size(), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    throw_errno("poll");
  }
  std::size_t appended = 0;
  for (const pollfd& p : fds)
    if ((p.revents & POLLIN) != 0) {
      ready.push_back(p.fd);
      ++appended;
    }
  return appended;
}

}  // namespace thinair::netd
