#pragma once
// net::Medium implementations backed by the session hub, so the
// *unmodified* protocol stack (open_round, GroupSecretSession,
// reliable_broadcast) runs with the daemon deciding who hears what.
//
// Both media drive all terminals from one process (the in-process
// session's model) and use the hub purely as the erasure-drawing,
// airtime-accounting channel: every transmit goes up as a kData frame
// flagged kFlagNoRelay — the hub draws the per-peer erasures from the
// session's seeded Rng, charges the session ledger, and answers with the
// delivery mask; nothing is relayed because the driving process already
// holds every payload. Each transmit carries a fresh wire-level sequence
// number so reliable-broadcast retries get fresh draws (the hub's ack
// cache otherwise absorbs same-key retransmits by design).
//
//   HubMedium    calls a SessionHub directly — the in-process reference.
//   SocketMedium speaks to a live thinaird over UDP with stop-and-wait
//                ARQ; retransmits reuse the wire seq, so the hub's ack
//                cache makes them draw-neutral.
//
// Under the same hub seed, session id and roster, both media produce the
// identical delivery-mask sequence — which is exactly how the e2e test
// checks a daemon-backed key agreement against the in-process simulation.

#include <cstdint>
#include <string>
#include <vector>

#include "net/medium.h"
#include "netd/hub.h"
#include "netd/udp.h"

namespace thinair::netd {

/// Common drive-all logic: roster bookkeeping, frame construction and
/// delivery-mask decoding. Subclasses implement one round trip.
class HubBackedMedium : public net::Medium {
 public:
  void attach(packet::NodeId node, net::Role role) override;

 protected:
  HubBackedMedium(std::uint64_t session_id, channel::Rng rng,
                  net::MacParams params);

  TxResult transmit(packet::NodeId source, const packet::Packet& pkt,
                    net::TrafficClass cls) final;

  /// One hub round trip: send `datagram`, return the matching kTxReport's
  /// delivery mask (or the attach-phase frames' progression). Implemented
  /// synchronously (HubMedium) or over a socket (SocketMedium).
  virtual std::uint32_t exchange(const std::vector<std::uint8_t>& datagram,
                                 std::uint16_t node,
                                 std::uint32_t wire_seq) = 0;

  /// Attach the full roster at the hub (first transmit triggers this).
  virtual void join() = 0;

  [[nodiscard]] std::uint64_t session_id() const { return session_id_; }
  /// Ascending node-id roster (the hub's mask bit order), eves included.
  [[nodiscard]] const std::vector<std::uint16_t>& mask_order() const {
    return mask_order_;
  }
  [[nodiscard]] bool joined() const { return joined_; }
  void mark_joined() { joined_ = true; }

  [[nodiscard]] std::vector<std::uint8_t> make_attach(std::uint16_t node,
                                                      bool eve) const;

 private:
  std::uint64_t session_id_;
  bool joined_ = false;
  std::vector<std::uint16_t> mask_order_;
  std::vector<std::pair<std::uint16_t, bool>> pending_;  // (node, eve)
  std::uint32_t next_wire_seq_ = 0;
};

/// The in-process reference: same hub code, no sockets.
class HubMedium final : public HubBackedMedium {
 public:
  /// The hub must outlive the medium.
  HubMedium(SessionHub& hub, std::uint64_t session_id, channel::Rng rng,
            net::MacParams params = {});

 private:
  std::uint32_t exchange(const std::vector<std::uint8_t>& datagram,
                         std::uint16_t node, std::uint32_t wire_seq) override;
  void join() override;
  /// Feed a datagram to the hub and scan the replies for (type, node, seq).
  std::uint32_t feed_expect(const std::vector<std::uint8_t>& datagram,
                            FrameType want, std::uint16_t node,
                            std::uint32_t wire_seq);

  SessionHub& hub_;
};

/// The live-daemon client: every transmit is one ARQ round trip over UDP.
class SocketMedium final : public HubBackedMedium {
 public:
  SocketMedium(std::string host, std::uint16_t port, std::uint64_t session_id,
               channel::Rng rng, net::MacParams params = {},
               double rto_s = 0.05, double deadline_s = 30.0);

 private:
  std::uint32_t exchange(const std::vector<std::uint8_t>& datagram,
                         std::uint16_t node, std::uint32_t wire_seq) override;
  void join() override;
  std::uint32_t await(const std::vector<std::uint8_t>& datagram,
                      FrameType want, std::uint16_t node,
                      std::uint32_t wire_seq);

  UdpSocket socket_;
  sockaddr_in daemon_;
  double rto_s_;
  double deadline_s_;
};

}  // namespace thinair::netd
