#include "netd/udp.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace thinair::netd {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

UdpSocket UdpSocket::bind(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");
  UdpSocket sock(fd);

  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0)
    throw_errno("fcntl(O_NONBLOCK)");

  // Generous buffers: the daemon funnels every session through one socket.
  const int buf = 1 << 21;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &buf, sizeof(buf));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &buf, sizeof(buf));

  const sockaddr_in addr = make_addr(host, port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0)
    throw_errno("bind");
  return sock;
}

std::uint16_t UdpSocket::local_port() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throw_errno("getsockname");
  return ntohs(addr.sin_port);
}

bool UdpSocket::send_to(const sockaddr_in& to,
                        std::span<const std::uint8_t> bytes) {
  const ssize_t n =
      ::sendto(fd_, bytes.data(), bytes.size(), 0,
               reinterpret_cast<const sockaddr*>(&to), sizeof(to));
  if (n >= 0) return true;
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS ||
      errno == ECONNREFUSED)
    return false;  // dropped; ARQ recovers
  throw_errno("sendto");
}

bool UdpSocket::recv_from(std::vector<std::uint8_t>& buf, sockaddr_in& from) {
  buf.resize(1 << 14);
  socklen_t len = sizeof(from);
  const ssize_t n = ::recvfrom(fd_, buf.data(), buf.size(), 0,
                               reinterpret_cast<sockaddr*>(&from), &len);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNREFUSED)
      return false;
    throw_errno("recvfrom");
  }
  buf.resize(static_cast<std::size_t>(n));
  return true;
}

bool UdpSocket::wait_readable(int timeout_ms) {
  pollfd p{fd_, POLLIN, 0};
  const int n = ::poll(&p, 1, timeout_ms);
  return n > 0 && (p.revents & POLLIN) != 0;
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved =
      (host.empty() || host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1)
    throw std::invalid_argument("make_addr: unparseable IPv4 host: " + host);
  return addr;
}

}  // namespace thinair::netd
