#pragma once
// The session hub: thinaird's transport-independent core.
//
// A hub plays the paper's broadcast medium for many concurrent sessions.
// Clients attach to a session (kAttach, declaring the expected roster
// size); once the roster is complete the hub tells everyone (kReady) and
// from then on relays each member's frames to the session's peers:
//
//   kData  — the lossy channel. The hub draws one Bernoulli erasure per
//            peer per frame from the session's own seeded Rng (members
//            visited in ascending node-id order, so the draw sequence is
//            a pure function of the session seed and the frame order),
//            relays to the survivors and reports the delivery mask back
//            to the sender (kTxReport). This is what makes loopback
//            exhibit the paper's erasure-driven secrecy.
//   kCtrl  — the reliable broadcast. Relayed to every peer, no draws,
//            acknowledged with kCtrlAck.
//
// Every relay carries a per-receiver sequence number (aux) so receivers
// detect UDP loss as a gap and recover via kNack from the hub's per-member
// relay ring. Retransmitted client frames are absorbed by a per-member
// last-ack cache: the cached acknowledgement is replayed and *no* new
// erasure draws happen, so client-side ARQ cannot perturb the draw
// sequence. Each session also runs the medium's virtual clock: relayed
// frames are charged airtime under MacParams and recorded in a Ledger,
// mirroring the in-process simulation's accounting.
//
// The hub is sans-io: it consumes raw datagrams and emits datagrams
// addressed by (session, node); the UDP daemon (daemon.h), the in-process
// reference harness (tests) and HubMedium (socket_medium.h) all drive the
// same code, which is what makes daemon runs comparable to in-process
// runs under the same seeds. Idle sessions expire through a hashed timer
// wheel (timer_wheel.h).

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "channel/erasure.h"
#include "channel/rng.h"
#include "net/ledger.h"
#include "net/medium.h"
#include "netd/timer_wheel.h"
#include "netd/wire.h"
#include "runtime/object_pool.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace thinair::netd {

struct HubConfig {
  double loss_p = 0.2;  // iid per-link erasure probability (default model)
  /// Overrides loss_p with an arbitrary per-link model when set (e.g.
  /// channel::PerLinkErasure). Must be thread-compatible with the hub.
  std::shared_ptr<const channel::ErasureModel> model;
  std::uint64_t seed = 1;        // base seed; per-session streams derive
  double idle_timeout_s = 30.0;  // expire sessions idle this long
  /// Relay ring depth per member (kNack recovery horizon). A member that
  /// NACKs a seq already evicted from the ring gets kError immediately —
  /// the gap is unrecoverable.
  std::size_t relay_window = 64;
  std::size_t max_sessions = 0;   // 0 = unlimited
  net::MacParams mac;             // virtual-airtime accounting model
};

/// Daemon-visible counters. Each atomic sits on its own cache line so the
/// event-loop thread and any monitoring reader never false-share.
struct HubStats {
  alignas(64) std::atomic<std::uint64_t> datagrams_in{0};
  alignas(64) std::atomic<std::uint64_t> decode_errors{0};
  alignas(64) std::atomic<std::uint64_t> sessions_opened{0};
  alignas(64) std::atomic<std::uint64_t> sessions_closed{0};
  alignas(64) std::atomic<std::uint64_t> sessions_expired{0};
  alignas(64) std::atomic<std::uint64_t> frames_relayed{0};
  alignas(64) std::atomic<std::uint64_t> nack_retransmits{0};
};

/// A datagram the hub wants delivered to (session, node); the transport
/// owns the mapping to an actual peer address.
struct Outgoing {
  std::uint64_t session = 0;
  std::uint16_t node = 0;
  std::vector<std::uint8_t> datagram;
};

class SessionHub {
 public:
  explicit SessionHub(HubConfig config);

  /// Feed one received datagram; `now_s` is the transport's monotonic
  /// clock (drives idle expiry only — erasures and airtime run on the
  /// session's virtual clock). Responses are appended to `out`.
  void on_datagram(std::span<const std::uint8_t> bytes, double now_s,
                   std::vector<Outgoing>& out);

  /// Advance the idle-expiry wheel to `now_s`, emitting kExpired to the
  /// members of any session that timed out.
  void on_tick(double now_s, std::vector<Outgoing>& out);

  [[nodiscard]] const HubStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t session_count() const {
    util::MutexLock lock(&mu_);
    return sessions_.size();
  }
  [[nodiscard]] const HubConfig& config() const { return config_; }

  /// Virtual airtime ledger of a live session (nullptr when unknown) —
  /// exposed for tests and the bench's sanity checks.
  [[nodiscard]] const net::Ledger* session_ledger(std::uint64_t id) const;

  /// Counters of the session free-list pool (create/destroy churn reuses
  /// session records instead of rebuilding them).
  [[nodiscard]] runtime::PoolCounters session_pool_counters() const;

 private:
  struct AckKey {
    std::uint8_t type = 0;
    std::uint8_t phase = 0;
    std::uint32_t round = 0;
    std::uint32_t seq = 0;
    friend bool operator==(const AckKey&, const AckKey&) = default;
  };

  struct Member {
    bool eve = false;
    bool bye = false;
    std::uint32_t next_relay_seq = 0;  // next seq this member will be sent
    std::optional<AckKey> last_key;    // retransmit-absorbing ack cache
    std::vector<std::uint8_t> last_ack;
    std::deque<std::pair<std::uint32_t, std::vector<std::uint8_t>>> ring;
  };

  struct Session {
    std::uint16_t expected = 0;
    bool ready = false;
    channel::Rng rng;
    double air_s = 0.0;          // virtual clock (airtime accounting)
    double last_active_s = 0.0;  // transport clock (idle expiry)
    net::Ledger ledger;
    // Ascending node-id order — the erasure-draw iteration order.
    std::map<std::uint16_t, Member> members;

    explicit Session(channel::Rng r) : rng(r) {}

    /// Construction-equivalent state for pooled reuse (every field a
    /// fresh Session(r) would hold — the runtime::ObjectPool contract).
    void reset(channel::Rng r) {
      expected = 0;
      ready = false;
      rng = r;
      air_s = 0.0;
      last_active_s = 0.0;
      ledger = net::Ledger{};
      members.clear();
    }
  };
  using SessionHandle = runtime::ObjectPool<Session>::Handle;

  void handle_attach(const Frame& f, double now_s, std::vector<Outgoing>& out)
      THINAIR_REQUIRES(mu_);
  void handle_broadcast(Session& s, const Frame& f, std::vector<Outgoing>& out)
      THINAIR_REQUIRES(mu_);
  void handle_nack(Session& s, const Frame& f, std::vector<Outgoing>& out)
      THINAIR_REQUIRES(mu_);
  void handle_bye(std::uint64_t id, Session& s, const Frame& f,
                  std::vector<Outgoing>& out) THINAIR_REQUIRES(mu_);
  void expire_session(std::uint64_t id, std::vector<Outgoing>& out)
      THINAIR_REQUIRES(mu_);

  /// Relay `wire` to member `node`, stamping the per-member relay seq.
  void relay_to(std::uint64_t session_id, std::uint16_t node, Member& member,
                Frame wire, std::vector<Outgoing>& out) THINAIR_REQUIRES(mu_);

  void account(Session& s, const Frame& f) THINAIR_REQUIRES(mu_);
  [[nodiscard]] static Frame make_control(FrameType type, std::uint64_t session,
                                          std::uint16_t node,
                                          std::uint32_t aux = 0);

  HubConfig config_;  // immutable after construction
  HubStats stats_;    // per-line atomics, updated without the mutex
  // The session table and expiry wheel are the hub's mutable core. The
  // mutex makes the hub thread-safe for embedders (the single-threaded
  // daemon pays one uncontended lock per datagram — noise against the
  // recvfrom syscall) and, more importantly here, lets the thread-safety
  // analysis machine-check that every handler runs with the table held:
  // the erasure-draw determinism argument assumes kData frames are
  // processed one at a time per session.
  mutable util::Mutex mu_;
  // Session records are pooled: close/expire releases the record to the
  // free list and the next attach reuses it via reset() — at the 10k
  // target, attach/bye churn must not allocate per session. Declared
  // before sessions_ so the handles release into a live pool during
  // destruction.
  runtime::ObjectPool<Session> session_pool_ THINAIR_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, SessionHandle> sessions_
      THINAIR_GUARDED_BY(mu_);
  TimerWheel wheel_ THINAIR_GUARDED_BY(mu_);
};

}  // namespace thinair::netd
