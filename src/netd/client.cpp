#include "netd/client.h"

#include <chrono>

#include "netd/udp.h"

namespace thinair::netd {

namespace {

double monotonic_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ClientResult run_client(const ClientConfig& config) {
  ClientResult result;
  // Wildcard bind: the daemon may live on another host (config.host), and
  // a loopback-bound socket cannot send off-box.
  UdpSocket socket = UdpSocket::bind("0.0.0.0", 0);
  const sockaddr_in daemon = make_addr(config.host, config.port);

  NodeSession session(config.node);
  const double start = monotonic_s();
  session.start(start);

  std::vector<std::uint8_t> dgram;
  sockaddr_in from{};
  while (!session.done() && !session.failed()) {
    const double now = monotonic_s();
    if (now - start > config.deadline_s) {
      result.error = "client deadline exceeded";
      return result;
    }
    while (session.poll_datagram(dgram)) (void)socket.send_to(daemon, dgram);
    if (socket.wait_readable(10)) {
      while (socket.recv_from(dgram, from))
        session.on_datagram(dgram, monotonic_s());
    }
    session.on_tick(monotonic_s());
  }

  if (session.failed()) {
    result.error = session.error();
    return result;
  }
  result.ok = true;
  result.secret = session.secret();
  result.rounds = session.rounds_completed();
  return result;
}

}  // namespace thinair::netd
